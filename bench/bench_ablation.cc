// Ablation study (beyond the paper; DESIGN.md section 5): disable one design
// element of the estimator at a time and measure the accuracy impact on the
// unseen-traffic queries the full design is built for:
//   - no API-aware mask      (paper Eq. 1)
//   - no cross-expert attention (paper Eq. 3)
//   - no recurrence          (paper Eq. 2; feed-forward experts)
//   - no linear bypass       (this implementation's extrapolation path)
#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

namespace {

struct Variant {
  std::string name;
  void (*apply)(EstimatorConfig&);
};

}  // namespace

int main() {
  PrintBenchHeader("ablation", "contribution of each DeepRest design element");
  const std::vector<Variant> variants = {
      {"full model", [](EstimatorConfig&) {}},
      {"no API mask", [](EstimatorConfig& c) { c.use_api_mask = false; }},
      {"no attention", [](EstimatorConfig& c) { c.use_attention = false; }},
      {"no recurrence", [](EstimatorConfig& c) { c.use_recurrence = false; }},
      {"no linear bypass", [](EstimatorConfig& c) { c.use_linear_bypass = false; }},
  };

  // Queries: (1) 2.5x user scale, (2) read-heavy composition shift. The
  // resources probed stress different elements: disk usage needs recurrence,
  // the scale query needs the bypass, the composition query needs the mask.
  const std::vector<MetricKey> probes = {
      {"FrontendNGINX", ResourceKind::kCpu},
      {"ComposePostService", ResourceKind::kCpu},
      {"PostStorageMongoDB", ResourceKind::kWriteIops},
      {"PostStorageMongoDB", ResourceKind::kDiskUsage},
  };

  std::vector<std::vector<std::string>> rows;
  for (const auto& variant : variants) {
    HarnessConfig config = SocialBenchConfig();
    variant.apply(config.estimator);
    ExperimentHarness harness(config);
    harness.deeprest();  // trains (or loads) the variant before the queries

    // Query 1: unseen scale.
    TrafficSpec scale_spec = harness.QuerySpec(1);
    scale_spec.user_scale = 2.5;
    Rng rng_a(111);
    const auto scale_query = harness.RunQuery(GenerateTraffic(scale_spec, rng_a));
    const EstimateMap scale_estimates = harness.EstimateDeepRest(scale_query);

    // Query 2: unseen composition (read-heavy).
    TrafficSpec mix_spec = harness.QuerySpec(1);
    for (auto& share : mix_spec.mix) {
      if (share.api == "/composePost") {
        share.weight = 0.06;
      } else if (share.api == "/readTimeline") {
        share.weight = 0.60;
      }
    }
    Rng rng_b(113);
    const auto mix_query = harness.RunQuery(GenerateTraffic(mix_spec, rng_b));
    const EstimateMap mix_estimates = harness.EstimateDeepRest(mix_query);

    double scale_mape = 0.0;
    double mix_mape = 0.0;
    for (const auto& key : probes) {
      scale_mape += harness.QueryMape(scale_estimates, scale_query, key) / probes.size();
      mix_mape += harness.QueryMape(mix_estimates, mix_query, key) / probes.size();
    }
    rows.push_back({variant.name, FormatDouble(scale_mape, 1) + "%",
                    FormatDouble(mix_mape, 1) + "%"});
    std::printf("  trained '%s'\n", variant.name.c_str());
  }

  std::printf("\nMean MAPE over probe resources (lower is better):\n\n%s\n",
              RenderTable({"variant", "2.5x scale query", "read-heavy mix query"}, rows)
                  .c_str());
  std::printf("Reading guide: the API-aware mask and the linear bypass carry most of the\n"
              "composition-shift accuracy (dropping either degrades the read-heavy query\n"
              "sharply). Attention is roughly neutral on these aggregate probes — its\n"
              "value is in cross-resource couplings like disk<-CPU. Recurrence trades a\n"
              "little scale-extrapolation accuracy for temporal effects (caching, disk\n"
              "accumulation), mirroring the paper's motivation for a recurrent design.\n");
  return 0;
}
