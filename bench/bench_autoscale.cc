// Closed-loop autoscaling evaluation (extension; Sinan / DeepScaler
// methodology on top of the paper's estimator). Three policies — reactive
// threshold baseline, predictive DeepRest what-if, and a true-demand oracle —
// drive the capacity-model simulator through three traffic scenarios
// (diurnal at unseen scale, flash crowd, API-mix drift). Reported per cell:
// request-weighted SLO-violation rate vs. provisioned core-hours, the two
// axes an autoscaler trades against each other.
//
// The headline claim this bench gates on (full mode): the predictive policy
// achieves a LOWER violation rate than the reactive baseline at
// equal-or-lower provisioned core-hours on the diurnal and flash-crowd
// scenarios — scaling ahead of the forecast beats chasing the last sample
// without buying the win with over-provisioning.
//
// Flags: --smoke (tiny config, structural exit gates, for ctest)
//        --out <path> (JSON path; default BENCH_autoscale.json)
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/autoscale/scenario.h"
#include "src/eval/autoscale_harness.h"
#include "src/serve/whatif.h"

using namespace deeprest;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_autoscale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  PrintBenchHeader("closed-loop autoscaling (extension)",
                   "reactive vs. DeepRest-predictive vs. oracle across scenarios");
  HarnessConfig config = SocialBenchConfig();
  if (smoke) {
    config.learn_days = 1;
    config.estimator.hidden_dim = 8;
    config.estimator.epochs = 2;
  }
  ExperimentHarness harness(config);
  std::printf("Training the estimator (%zu learn windows)...\n\n", harness.learn_windows());
  EstimatorWhatIf whatif(harness.deeprest());

  ScenarioSpec base_scenario;
  base_scenario.days = smoke ? 1 : 2;
  base_scenario.user_scale = 3.0;  // unseen-scale territory: sizing must move

  ClosedLoopConfig loop;
  loop.windows_per_day = config.windows_per_day;
  // Small replica slices relative to the hot components' peak demand, so the
  // replica count (not a monolithic floor) is what tracks the traffic.
  loop.default_capacity_cpu = 10.0;
  loop.policy_config.sizing.min_capacity_cpu = 10.0;
  loop.policy_config.sizing.capacity_step_cpu = 10.0;
  loop.controller.control_interval = 4;
  // Scaling is applied at the tick that opens an interval, so sizing for the
  // interval's own forecast peak already lands capacity before demand does.
  // Extra lookahead would only buy insurance against actuation latency (none
  // here) while holding peak capacity longer on every descent.
  loop.controller.lookahead = 0;
  // The forecast arrives AHEAD of demand, so the predictive policy does not
  // need the reaction slack baked into the shared target utilization.
  // Headroom < 1 runs it hotter: sizing demand*h at target u is sizing at
  // effective utilization u/h (0.60/0.71 ~ 0.845, just under the 0.85 SLO
  // knee). At unseen scale the upper CI is loose insurance the live-evidence
  // floor already covers, so provision for the expected head.
  loop.policy_config.predictive_headroom = 0.71;
  loop.forecast_upper_weight = 0.0;

  std::map<std::string, std::map<std::string, ClosedLoopResult>> results;
  std::vector<std::vector<std::string>> rows;
  for (ScenarioKind scenario_kind : AllScenarioKinds()) {
    ScenarioSpec scenario = base_scenario;
    scenario.kind = scenario_kind;
    const std::string scenario_name = ScenarioKindName(scenario_kind);
    const TrafficSeries traffic =
        BuildScenarioTraffic(harness.QuerySpec(scenario.days), scenario, config.seed + 71);
    for (PolicyKind policy_kind : AllPolicyKinds()) {
      ClosedLoopConfig cell = loop;
      cell.policy = policy_kind;
      const ClosedLoopResult r =
          RunClosedLoop(harness.app(), harness.simulator(), harness.learn_windows(),
                        traffic, &whatif, cell, scenario_name);
      rows.push_back({scenario_name, r.policy,
                      FormatDouble(100.0 * r.slo_violation_rate, 2),
                      FormatDouble(r.provisioned_core_hours, 1),
                      FormatDouble(r.demand_core_hours, 1),
                      FormatDouble(r.over_provision_ratio, 2),
                      std::to_string(r.actions)});
      results[scenario_name][r.policy] = r;
    }
  }
  std::printf("%s\n",
              RenderTable({"scenario", "policy", "SLO viol %", "prov core-h",
                           "demand core-h", "over-prov", "actions"},
                          rows)
                  .c_str());

  // Full-mode gate: predictive beats reactive on violations WITHOUT spending
  // more core-hours, on the two scenarios where forecastable structure
  // exists. (API-mix drift is reported but not gated: when the composition
  // rotates away from the training distribution, the forecast degrades by
  // design and the honest result is whatever it is.)
  bool predictive_wins = true;
  for (const std::string scenario_name : {"diurnal", "flash_crowd"}) {
    const ClosedLoopResult& reactive = results[scenario_name]["reactive"];
    const ClosedLoopResult& predictive = results[scenario_name]["predictive"];
    const bool wins =
        predictive.slo_violation_rate < reactive.slo_violation_rate &&
        predictive.provisioned_core_hours <= reactive.provisioned_core_hours + 1e-9;
    std::printf("%s: predictive %.3f%% viol @ %.1f core-h vs reactive %.3f%% @ %.1f -> %s\n",
                scenario_name.c_str(), 100.0 * predictive.slo_violation_rate,
                predictive.provisioned_core_hours, 100.0 * reactive.slo_violation_rate,
                reactive.provisioned_core_hours, wins ? "PASS" : "FAIL");
    predictive_wins = predictive_wins && wins;
  }
  std::printf("\n");

  // Structural gates (smoke and full): every cell ran the whole scenario,
  // accounted sane numbers, and the oracle never violates more than the
  // policies it upper-bounds.
  bool structure_ok = true;
  for (const auto& [scenario_name, cells] : results) {
    for (const auto& [policy_name, r] : cells) {
      structure_ok = structure_ok && r.windows > 0 && r.counters.ticks > 0 &&
                     r.provisioned_core_hours > 0.0 && r.demand_core_hours > 0.0 &&
                     r.slo_violation_rate >= 0.0 && r.slo_violation_rate <= 1.0;
    }
    // The oracle sizes true demand right at the knee (cost-optimal, not
    // violation-optimal), so it can carry trace violations — but it must
    // never do worse than the baseline that guesses.
    structure_ok = structure_ok && cells.at("oracle").slo_violation_rate <=
                                       cells.at("reactive").slo_violation_rate + 1e-9;
  }
  std::printf("structural check (all cells complete, oracle is the lower envelope): %s\n\n",
              structure_ok ? "PASS" : "FAIL");

  // Machine-readable summary for regression tracking (tools/bench_diff).
  {
    std::ofstream json(out_path);
    json << "{\n  \"smoke\": " << (smoke ? 1 : 0) << ",\n";
    json << "  \"scenarios\": {\n";
    size_t si = 0;
    for (const auto& [scenario_name, cells] : results) {
      json << "    \"" << scenario_name << "\": {\n";
      size_t pi = 0;
      for (const auto& [policy_name, r] : cells) {
        json << "      \"" << policy_name << "\": {"
             << "\"slo_violation_rate\": " << FormatDouble(r.slo_violation_rate, 4)
             << ", \"provisioned_core_hours\": " << FormatDouble(r.provisioned_core_hours, 2)
             << ", \"demand_core_hours\": " << FormatDouble(r.demand_core_hours, 2)
             << ", \"over_provisioned_core_hours\": "
             << FormatDouble(r.provisioned_core_hours - r.demand_core_hours, 2)
             << ", \"mean_utilization\": " << FormatDouble(r.mean_utilization, 3)
             << ", \"peak_replicas\": " << FormatDouble(r.peak_replicas, 0)
             << ", \"actions\": " << r.actions
             << ", \"blank_holds\": " << r.counters.blank_holds << "}"
             << (++pi < cells.size() ? "," : "") << "\n";
      }
      json << "    }" << (++si < results.size() ? "," : "") << "\n";
    }
    json << "  },\n";
    json << "  \"predictive_wins\": " << (predictive_wins ? 1 : 0) << "\n";
    json << "}\n";
  }
  std::printf("wrote %s\n", out_path.c_str());

  // Smoke runs exercise the plumbing with a barely-trained model, so the
  // predictive-vs-reactive ordering is not meaningful there.
  if (smoke) {
    return structure_ok ? 0 : 1;
  }
  return structure_ok && predictive_wins ? 0 : 1;
}
