// Concept-drift adaptation (beyond the paper's evaluation; section 6 cites
// drift adaptation [62] as the mechanism for keeping DeepRest current as
// application behaviour changes). Scenario: after the learning phase, the
// user base permanently shifts to a read-heavy mix. A frozen model keeps
// estimating with stale API-mix assumptions baked into its synthesizer-era
// calibration; a model that ContinueLearning()s on the first drifted day
// tracks the new regime.
#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

namespace {

TrafficSpec DriftedSpec(const ExperimentHarness& harness, size_t days) {
  TrafficSpec spec = harness.QuerySpec(days);
  for (auto& share : spec.mix) {
    if (share.api == "/composePost") {
      share.weight = 0.05;
    } else if (share.api == "/readTimeline") {
      share.weight = 0.58;
    } else if (share.api == "/getMedia") {
      share.weight = 0.20;
    }
  }
  spec.user_scale = 1.4;  // the shift also brought more users
  return spec;
}

}  // namespace

int main() {
  PrintBenchHeader("drift adaptation (extension)",
                   "incremental ContinueLearning under a permanent workload shift");
  HarnessConfig config = SocialBenchConfig();
  config.cache_models = false;  // this bench mutates the model
  ExperimentHarness harness(config);
  DeepRestEstimator& estimator = harness.deeprest();

  // Day 1 of the new regime: serve it, then fine-tune on its telemetry.
  Rng rng(131);
  const auto drift_day1 = harness.RunQuery(GenerateTraffic(DriftedSpec(harness, 1), rng));
  const EstimateMap stale_day1 = harness.EstimateDeepRestFromRealTraces(drift_day1);

  // Day 2 estimated by the STALE model...
  const auto drift_day2 = harness.RunQuery(GenerateTraffic(DriftedSpec(harness, 1), rng));
  const EstimateMap stale_day2 = harness.EstimateDeepRestFromRealTraces(drift_day2);

  // ...then adapt on day 1's telemetry and re-estimate day 2.
  estimator.ContinueLearning(harness.traces(), harness.metrics(), drift_day1.from,
                             drift_day1.to, 6);
  const EstimateMap adapted_day2 = harness.EstimateDeepRestFromRealTraces(drift_day2);

  const std::vector<MetricKey> probes = {
      {"FrontendNGINX", ResourceKind::kCpu},
      {"ComposePostService", ResourceKind::kCpu},
      {"HomeTimelineService", ResourceKind::kCpu},
      {"PostStorageMongoDB", ResourceKind::kCpu},
      {"PostStorageMongoDB", ResourceKind::kWriteIops},
  };
  std::vector<std::vector<std::string>> rows;
  double stale_total = 0.0;
  double adapted_total = 0.0;
  for (const auto& key : probes) {
    const double stale = harness.QueryMape(stale_day2, drift_day2, key);
    const double adapted = harness.QueryMape(adapted_day2, drift_day2, key);
    stale_total += stale / probes.size();
    adapted_total += adapted / probes.size();
    rows.push_back({key.ToString(), FormatDouble(stale, 1) + "%",
                    FormatDouble(adapted, 1) + "%"});
  }
  rows.push_back({"MEAN", FormatDouble(stale_total, 1) + "%",
                  FormatDouble(adapted_total, 1) + "%"});
  std::printf("MAPE on drifted day 2 (read-heavy mix at 1.4x users):\n\n%s\n",
              RenderTable({"resource", "frozen model", "after ContinueLearning"}, rows)
                  .c_str());
  std::printf("Reading guide: because DeepRest estimates as a function of traffic, even\n"
              "the frozen model follows much of the shift (its features see the new mix);\n"
              "fine-tuning recalibrates the operating point (CPU rows improve sharply).\n"
              "PostStorageMongoDB write IOps is near-zero under this read-heavy mix, so\n"
              "its MAPE is dominated by background-churn noise either way.\n");
  return 0;
}
