// Paper Fig. 9: the 7-day API traffic used for application learning — three
// representative APIs (/composePost, /readTimeline, /uploadMedia), two
// peak-hours per day, with day-to-day variation.
#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

int main() {
  PrintBenchHeader("Fig. 9", "7-day application-learning traffic (two peak-hours per day)");
  ExperimentHarness harness(SocialBenchConfig());
  const TrafficSeries& traffic = harness.learn_traffic();

  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  for (const char* api : {"/composePost", "/readTimeline", "/uploadMedia"}) {
    size_t index = 0;
    if (!traffic.ApiIndex(api, index)) {
      continue;
    }
    names.push_back(api);
    std::vector<double> rates;
    for (size_t w = 0; w < traffic.windows(); ++w) {
      rates.push_back(traffic.rate(w, index));
    }
    series.push_back(std::move(rates));
  }
  std::printf("Requests per window over 7 days (%zu windows/day):\n\n",
              harness.config().windows_per_day);
  std::printf("%s\n", RenderSeries(names, series, 14, 98).c_str());

  std::printf("Per-day totals (day-to-day variation):\n");
  const size_t windows_per_day = harness.config().windows_per_day;
  for (size_t day = 0; day < harness.config().learn_days; ++day) {
    double total = 0.0;
    for (size_t w = 0; w < windows_per_day; ++w) {
      total += traffic.TotalAt(day * windows_per_day + w);
    }
    std::printf("  day %zu: %.0f requests\n", day + 1, total);
  }
  return 0;
}
