// Paper Fig. 10: estimation quality under a /composePost-dominated query —
// one day of traffic with ~2x the requests, the additional ones primarily
// /composePost. Plots (a) the query traffic, (b) ComposePostService CPU and
// (c) PostStorageMongoDB write IOps for all four algorithms vs the actual
// measurements.
#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

int main() {
  PrintBenchHeader("Fig. 10", "/composePost-dominated query traffic (2x requests)");
  ExperimentHarness harness(SocialBenchConfig());

  TrafficSpec spec = harness.QuerySpec(1);
  spec.user_scale = 2.0;
  // Shift the mix so the additional requests are primarily /composePost.
  for (auto& share : spec.mix) {
    if (share.api == "/composePost") {
      share.weight = 0.48;
    } else if (share.api == "/readTimeline") {
      share.weight = 0.20;
    }
  }
  Rng rng(17);
  const auto query = harness.RunQuery(GenerateTraffic(spec, rng));

  // (a) query traffic
  {
    std::vector<std::string> names = {"/composePost", "/readTimeline", "/uploadMedia"};
    std::vector<std::vector<double>> series;
    for (const auto& api : names) {
      size_t index = 0;
      query.traffic.ApiIndex(api, index);
      std::vector<double> rates;
      for (size_t w = 0; w < query.traffic.windows(); ++w) {
        rates.push_back(query.traffic.rate(w, index));
      }
      series.push_back(std::move(rates));
    }
    std::printf("(a) Query API traffic:\n%s\n", RenderSeries(names, series, 10, 96).c_str());
  }

  const auto estimates = EstimateAll(harness, query);
  for (const auto& [label, key] :
       {std::pair<std::string, MetricKey>{"(b) ComposePostService CPU [%]",
                                          {"ComposePostService", ResourceKind::kCpu}},
        std::pair<std::string, MetricKey>{"(c) PostStorageMongoDB write IOps",
                                          {"PostStorageMongoDB", ResourceKind::kWriteIops}}}) {
    const auto actual = harness.metrics().Series(key, query.from, query.to);
    std::vector<std::string> names = {"actual"};
    std::vector<std::vector<double>> series = {actual};
    std::vector<std::vector<std::string>> rows;
    for (size_t a = 0; a < estimates.size(); ++a) {
      names.push_back(AlgorithmNames()[a]);
      series.push_back(estimates[a].at(key).expected);
      rows.push_back({AlgorithmNames()[a],
                      FormatDouble(harness.QueryMape(estimates[a], query, key), 1) + "%"});
    }
    std::printf("%s\n%s\n", label.c_str(), RenderSeries(names, series, 12, 96).c_str());
    std::printf("%s\n", RenderTable({"algorithm", "MAPE"}, rows).c_str());
  }
  std::printf(
      "Expected shape (paper): resrc-aware DL misses the burst entirely; the\n"
      "scaling baselines follow it but with magnitude errors; DeepRest tracks\n"
      "the actual measurements most closely.\n");
  return 0;
}
