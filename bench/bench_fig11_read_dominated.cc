// Paper Fig. 11: estimation quality under a /readTimeline-dominated query.
// The total request count resembles Fig. 10's, but /readTimeline never
// invokes ComposePostService and performs no writes on PostStorageMongoDB —
// so (b) CPU must stay near baseline and (c) write IOps must not surge.
// Simple scaling mistakenly scales both; component-aware scaling fixes (b)
// but overshoots (c); DeepRest gets both right.
#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

int main() {
  PrintBenchHeader("Fig. 11", "/readTimeline-dominated query traffic (2x requests)");
  ExperimentHarness harness(SocialBenchConfig());

  TrafficSpec spec = harness.QuerySpec(1);
  spec.user_scale = 2.0;
  for (auto& share : spec.mix) {
    if (share.api == "/composePost") {
      share.weight = 0.06;
    } else if (share.api == "/readTimeline") {
      share.weight = 0.62;
    }
  }
  Rng rng(19);
  const auto query = harness.RunQuery(GenerateTraffic(spec, rng));
  const auto estimates = EstimateAll(harness, query);

  for (const auto& [label, key] :
       {std::pair<std::string, MetricKey>{"(b) ComposePostService CPU [%]",
                                          {"ComposePostService", ResourceKind::kCpu}},
        std::pair<std::string, MetricKey>{"(c) PostStorageMongoDB write IOps",
                                          {"PostStorageMongoDB", ResourceKind::kWriteIops}}}) {
    const auto actual = harness.metrics().Series(key, query.from, query.to);
    std::vector<std::string> names = {"actual"};
    std::vector<std::vector<double>> series = {actual};
    std::vector<std::vector<std::string>> rows;
    for (size_t a = 0; a < estimates.size(); ++a) {
      names.push_back(AlgorithmNames()[a]);
      series.push_back(estimates[a].at(key).expected);
      rows.push_back({AlgorithmNames()[a],
                      FormatDouble(harness.QueryMape(estimates[a], query, key), 1) + "%"});
    }
    std::printf("%s\n%s\n", label.c_str(), RenderSeries(names, series, 12, 96).c_str());
    std::printf("%s\n", RenderTable({"algorithm", "MAPE"}, rows).c_str());
  }

  // Quantify the paper's two headline observations directly.
  const MetricKey compose_cpu{"ComposePostService", ResourceKind::kCpu};
  const MetricKey iops{"PostStorageMongoDB", ResourceKind::kWriteIops};
  std::printf("Key orderings (lower MAPE is better):\n");
  std::printf("  ComposePostService CPU : DeepRest %.1f%% vs SimpleScaling %.1f%%"
              " (simple scaling cannot know /readTimeline skips the component)\n",
              harness.QueryMape(estimates[0], query, compose_cpu),
              harness.QueryMape(estimates[2], query, compose_cpu));
  std::printf("  PostStorageMongoDB IOps: DeepRest %.1f%% vs ComponentAware %.1f%%"
              " (component-aware scales the write path for read-only traffic)\n",
              harness.QueryMape(estimates[0], query, iops),
              harness.QueryMape(estimates[3], query, iops));
  return 0;
}
