// Paper Fig. 12 + section 5.2 aggregate numbers: estimation-quality heatmap
// over four components (columns) x five resource types (rows) for the four
// algorithms, measured as MAPE on a mixed unseen query. Stateless components
// have no IO resources (printed as '-').
#include <cmath>

#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

int main() {
  PrintBenchHeader("Fig. 12 / sec. 5.2",
                   "MAPE heatmaps: 4 components x 5 resources x 4 algorithms");
  ExperimentHarness harness(SocialBenchConfig());

  TrafficSpec spec = harness.QuerySpec(1);
  spec.user_scale = 1.6;
  Rng rng(23);
  const auto query = harness.RunQuery(GenerateTraffic(spec, rng));
  const auto estimates = EstimateAll(harness, query);

  const std::vector<std::string> components = {"FrontendNGINX", "ComposePostService",
                                               "UserTimelineService", "PostStorageMongoDB"};
  const std::vector<std::pair<std::string, ResourceKind>> resources = {
      {"cpu", ResourceKind::kCpu},
      {"memory", ResourceKind::kMemory},
      {"write_iops", ResourceKind::kWriteIops},
      {"write_thr", ResourceKind::kWriteThroughput},
      {"disk_usage", ResourceKind::kDiskUsage},
  };

  // Per-algorithm heatmap + aggregate ranges for the section 5.2 numbers.
  std::vector<std::pair<double, double>> cpu_range(estimates.size(), {1e9, -1e9});
  std::vector<std::pair<double, double>> mem_range(estimates.size(), {1e9, -1e9});
  for (size_t a = 0; a < estimates.size(); ++a) {
    std::vector<std::vector<double>> grid;
    std::vector<std::string> row_names;
    for (const auto& [resource_name, kind] : resources) {
      row_names.push_back(resource_name);
      std::vector<double> row;
      for (const auto& component : components) {
        const bool stateful = harness.app().FindComponent(component)->stateful;
        if (IsStatefulOnly(kind) && !stateful) {
          row.push_back(std::nan(""));
          continue;
        }
        const double mape =
            harness.QueryMape(estimates[a], query, MetricKey{component, kind});
        row.push_back(mape);
        if (kind == ResourceKind::kCpu) {
          cpu_range[a].first = std::min(cpu_range[a].first, mape);
          cpu_range[a].second = std::max(cpu_range[a].second, mape);
        }
        if (kind == ResourceKind::kMemory) {
          mem_range[a].first = std::min(mem_range[a].first, mape);
          mem_range[a].second = std::max(mem_range[a].second, mape);
        }
      }
      grid.push_back(std::move(row));
    }
    std::printf("--- (%c) %s ---\n%s\n", static_cast<char>('a' + a),
                AlgorithmNames()[a].c_str(),
                RenderHeatmap(row_names, components, grid).c_str());
  }

  std::printf("Aggregate MAPE ranges (paper sec. 5.2 reports DeepRest CPU 7.86-11.19%%,\n"
              "memory 1.12-8.04%%, with every baseline worse):\n\n");
  std::vector<std::vector<std::string>> rows;
  for (size_t a = 0; a < estimates.size(); ++a) {
    rows.push_back({AlgorithmNames()[a],
                    FormatDouble(cpu_range[a].first, 2) + " - " +
                        FormatDouble(cpu_range[a].second, 2) + "%",
                    FormatDouble(mem_range[a].first, 2) + " - " +
                        FormatDouble(mem_range[a].second, 2) + "%"});
  }
  std::printf("%s\n", RenderTable({"algorithm", "CPU MAPE range", "memory MAPE range"}, rows)
                          .c_str());
  return 0;
}
