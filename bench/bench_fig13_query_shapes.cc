// Paper Fig. 13: example one-day query traffic for the three business
// scenarios — (a) unseen scales of users (1x/2x/3x), (b) an unseen API
// composition, (c) an unseen (flat) traffic shape.
#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

int main() {
  PrintBenchHeader("Fig. 13", "the three unseen-query scenarios (example traffic)");
  ExperimentHarness harness(SocialBenchConfig());

  // (a) Unseen user scales.
  {
    std::vector<std::string> names;
    std::vector<std::vector<double>> series;
    for (double scale : {1.0, 2.0, 3.0}) {
      TrafficSpec spec = harness.QuerySpec(1);
      spec.user_scale = scale;
      Rng rng(29);
      const TrafficSeries traffic = GenerateTraffic(spec, rng);
      names.push_back(FormatDouble(scale, 0) + "x users");
      std::vector<double> totals;
      for (size_t w = 0; w < traffic.windows(); ++w) {
        totals.push_back(traffic.TotalAt(w));
      }
      series.push_back(std::move(totals));
    }
    std::printf("(a) Unseen scales of application users (total requests/window):\n%s\n",
                RenderSeries(names, series, 12, 96).c_str());
  }

  // (b) Unseen API composition: 10% compose / 85% read / 5% upload.
  {
    TrafficSpec spec = harness.QuerySpec(1);
    spec.mix = {{"/composePost", 0.10}, {"/readTimeline", 0.85}, {"/uploadMedia", 0.05}};
    Rng rng(31);
    const TrafficSeries traffic = GenerateTraffic(spec, rng);
    std::vector<std::string> names;
    std::vector<std::vector<double>> series;
    for (size_t a = 0; a < traffic.api_count(); ++a) {
      names.push_back(traffic.apis()[a]);
      std::vector<double> rates;
      for (size_t w = 0; w < traffic.windows(); ++w) {
        rates.push_back(traffic.rate(w, a));
      }
      series.push_back(std::move(rates));
    }
    std::printf("(b) Unseen API composition (10%% / 85%% / 5%%):\n%s\n",
                RenderSeries(names, series, 12, 96).c_str());
  }

  // (c) Unseen traffic shape: flat.
  {
    TrafficSpec spec = harness.QuerySpec(1);
    spec.shape = ShapeKind::kFlat;
    Rng rng(37);
    const TrafficSeries traffic = GenerateTraffic(spec, rng);
    std::vector<double> totals;
    for (size_t w = 0; w < traffic.windows(); ++w) {
      totals.push_back(traffic.TotalAt(w));
    }
    std::printf("(c) Unseen traffic shape (flat vs the two-peak learning shape):\n%s\n",
                RenderSeries({"flat query"}, {totals}, 10, 96).c_str());
  }
  return 0;
}
