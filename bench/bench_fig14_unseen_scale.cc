// Paper Fig. 14: CPU-estimation MAPE for query traffic with unseen scales of
// application users (1x, 2x, 3x the learning phase), on four components, for
// the four algorithms. Each scale is repeated with minor variations and the
// WORST case is recorded, as in the paper.
#include <algorithm>

#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

int main() {
  PrintBenchHeader("Fig. 14", "CPU MAPE under unseen user scales (worst of repeated runs)");
  ExperimentHarness harness(SocialBenchConfig());
  harness.deeprest();  // train up front so per-query time is visible

  const std::vector<std::string> components = {"FrontendNGINX", "ComposePostService",
                                               "UserTimelineService", "PostStorageMongoDB"};
  const int reps = BenchRepetitions();

  for (const auto& component : components) {
    std::printf("--- %s CPU ---\n", component.c_str());
    std::vector<std::vector<std::string>> rows;
    for (double scale : {1.0, 2.0, 3.0}) {
      // worst[algorithm] over repetitions.
      std::vector<double> worst(AlgorithmNames().size(), 0.0);
      std::vector<double> mean(AlgorithmNames().size(), 0.0);
      for (int rep = 0; rep < reps; ++rep) {
        TrafficSpec spec = harness.QuerySpec(1);
        spec.user_scale = scale * (1.0 + 0.05 * rep);  // minor variations
        // Slight composition variation per repetition.
        spec.mix[rep % spec.mix.size()].weight *= 1.15;
        Rng rng(41 + 13 * static_cast<uint64_t>(rep) + static_cast<uint64_t>(scale * 100));
        const auto query = harness.RunQuery(GenerateTraffic(spec, rng));
        const auto estimates = EstimateAll(harness, query);
        for (size_t a = 0; a < estimates.size(); ++a) {
          const double mape =
              harness.QueryMape(estimates[a], query, {component, ResourceKind::kCpu});
          worst[a] = std::max(worst[a], mape);
          mean[a] += mape / reps;
        }
      }
      std::vector<std::string> row = {FormatDouble(scale, 0) + "x"};
      for (size_t a = 0; a < worst.size(); ++a) {
        row.push_back(FormatDouble(worst[a], 1) + "% (avg " + FormatDouble(mean[a], 1) + ")");
      }
      rows.push_back(std::move(row));
    }
    std::vector<std::string> header = {"scale"};
    header.insert(header.end(), AlgorithmNames().begin(), AlgorithmNames().end());
    std::printf("%s\n", RenderTable(header, rows).c_str());
  }
  std::printf("Expected shape (paper): error grows with scale for everyone, but DeepRest\n"
              "stays lowest by a large margin; simple/component scaling overestimate\n"
              "badly at 3x because small errors magnify with scale.\n");
  return 0;
}
