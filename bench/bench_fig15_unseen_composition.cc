// Paper Fig. 15: CPU-estimation MAPE under unseen API compositions — query
// mixes never observed during application learning (e.g. 10% compose / 85%
// read / 5% upload) vs. a seen composition, on four components.
#include <algorithm>

#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

namespace {

// Applies a composition to the social-network mix, keeping minor APIs at a
// small shared remainder.
void SetComposition(TrafficSpec& spec, double compose, double read, double upload) {
  const double remainder = std::max(0.0, 1.0 - compose - read - upload);
  for (auto& share : spec.mix) {
    if (share.api == "/composePost") {
      share.weight = compose;
    } else if (share.api == "/readTimeline") {
      share.weight = read;
    } else if (share.api == "/uploadMedia") {
      share.weight = upload;
    } else {
      share.weight = remainder / 8.0;
    }
  }
}

}  // namespace

int main() {
  PrintBenchHeader("Fig. 15", "CPU MAPE under unseen API compositions");
  ExperimentHarness harness(SocialBenchConfig());
  harness.deeprest();

  const std::vector<std::string> components = {"FrontendNGINX", "ComposePostService",
                                               "UserTimelineService", "PostStorageMongoDB"};
  struct Scenario {
    std::string name;
    double compose, read, upload;
  };
  // The learning mix is ~22/34/6; the first scenario stays near it.
  const std::vector<Scenario> scenarios = {
      {"seen mix (22/34/6)", 0.22, 0.34, 0.06},
      {"unseen (10/85/5)", 0.10, 0.85, 0.05},
      {"unseen (50/25/15)", 0.50, 0.25, 0.15},
  };
  const int reps = BenchRepetitions();

  for (const auto& component : components) {
    std::printf("--- %s CPU ---\n", component.c_str());
    std::vector<std::vector<std::string>> rows;
    for (const auto& scenario : scenarios) {
      std::vector<double> worst(AlgorithmNames().size(), 0.0);
      for (int rep = 0; rep < reps; ++rep) {
        TrafficSpec spec = harness.QuerySpec(1);
        SetComposition(spec, scenario.compose, scenario.read, scenario.upload);
        spec.user_scale = 1.0 + 0.1 * rep;
        Rng rng(53 + 7 * static_cast<uint64_t>(rep) +
                std::hash<std::string>{}(scenario.name) % 1000);
        const auto query = harness.RunQuery(GenerateTraffic(spec, rng));
        const auto estimates = EstimateAll(harness, query);
        for (size_t a = 0; a < estimates.size(); ++a) {
          worst[a] = std::max(
              worst[a], harness.QueryMape(estimates[a], query, {component, ResourceKind::kCpu}));
        }
      }
      std::vector<std::string> row = {scenario.name};
      for (double mape : worst) {
        row.push_back(FormatDouble(mape, 1) + "%");
      }
      rows.push_back(std::move(row));
    }
    std::vector<std::string> header = {"composition"};
    header.insert(header.end(), AlgorithmNames().begin(), AlgorithmNames().end());
    std::printf("%s\n", RenderTable(header, rows).c_str());
  }
  std::printf("Expected shape (paper): DeepRest most accurate in both settings; simple\n"
              "scaling suffers most because it cannot tell which APIs changed.\n");
  return 0;
}
