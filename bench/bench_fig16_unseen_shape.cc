// Paper Fig. 16: CPU-estimation MAPE under unseen traffic shapes. The model
// learns on two-peak days and is queried with flat traffic (and, using a
// flat-trained model, queried with two-peak traffic).
#include <algorithm>

#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

namespace {

void RunDirection(const std::string& label, ShapeKind learn_shape, ShapeKind query_shape,
                  uint64_t seed) {
  HarnessConfig config = SocialBenchConfig();
  config.seed = seed;
  ExperimentHarness harness(config);
  // Note: the harness's LearnSpec is two-peak by default; for the reverse
  // direction we retrain on flat traffic via a custom harness below.
  (void)learn_shape;

  const std::vector<std::string> components = {"FrontendNGINX", "ComposePostService",
                                               "UserTimelineService", "PostStorageMongoDB"};
  const int reps = BenchRepetitions();
  std::printf("=== %s ===\n", label.c_str());
  std::vector<std::vector<std::string>> rows;
  for (const auto& component : components) {
    std::vector<double> worst(AlgorithmNames().size(), 0.0);
    for (int rep = 0; rep < reps; ++rep) {
      TrafficSpec spec = harness.QuerySpec(1);
      spec.shape = query_shape;
      spec.user_scale = 1.0 + 0.1 * rep;
      Rng rng(seed * 101 + static_cast<uint64_t>(rep));
      const auto query = harness.RunQuery(GenerateTraffic(spec, rng));
      const auto estimates = EstimateAll(harness, query);
      for (size_t a = 0; a < estimates.size(); ++a) {
        worst[a] = std::max(
            worst[a], harness.QueryMape(estimates[a], query, {component, ResourceKind::kCpu}));
      }
    }
    std::vector<std::string> row = {component};
    for (double mape : worst) {
      row.push_back(FormatDouble(mape, 1) + "%");
    }
    rows.push_back(std::move(row));
  }
  std::vector<std::string> header = {"component CPU"};
  header.insert(header.end(), AlgorithmNames().begin(), AlgorithmNames().end());
  std::printf("%s\n", RenderTable(header, rows).c_str());
}

}  // namespace

int main() {
  PrintBenchHeader("Fig. 16", "CPU MAPE under unseen traffic shapes");
  // Direction 1: learn two-peak -> query flat (harness default learning).
  RunDirection("2-peak/day -> flat", ShapeKind::kTwoPeak, ShapeKind::kFlat, 1);

  // Direction 2: learn flat -> query two-peak. Needs a flat learning phase,
  // which the stock harness does not produce; rebuild with a custom spec by
  // reusing the harness seed machinery through a modified config.
  {
    // A flat learning phase: emulate by treating a flat-shape harness. The
    // harness derives the learning spec internally, so we approximate the
    // reverse direction with a dedicated harness whose learning traffic is
    // flattened via the shape override below.
    HarnessConfig config = SocialBenchConfig();
    config.seed = 2;
    config.learn_shape = ShapeKind::kFlat;
    ExperimentHarness harness(config);
    const std::vector<std::string> components = {"FrontendNGINX", "ComposePostService",
                                                 "UserTimelineService",
                                                 "PostStorageMongoDB"};
    const int reps = BenchRepetitions();
    std::printf("=== flat -> 2-peak/day ===\n");
    std::vector<std::vector<std::string>> rows;
    for (const auto& component : components) {
      std::vector<double> worst(AlgorithmNames().size(), 0.0);
      for (int rep = 0; rep < reps; ++rep) {
        TrafficSpec spec = harness.QuerySpec(1);
        spec.shape = ShapeKind::kTwoPeak;
        spec.user_scale = 1.0 + 0.1 * rep;
        Rng rng(777 + static_cast<uint64_t>(rep));
        const auto query = harness.RunQuery(GenerateTraffic(spec, rng));
        const auto estimates = EstimateAll(harness, query);
        for (size_t a = 0; a < estimates.size(); ++a) {
          worst[a] = std::max(worst[a], harness.QueryMape(estimates[a], query,
                                                          {component, ResourceKind::kCpu}));
        }
      }
      std::vector<std::string> row = {component};
      for (double mape : worst) {
        row.push_back(FormatDouble(mape, 1) + "%");
      }
      rows.push_back(std::move(row));
    }
    std::vector<std::string> header = {"component CPU"};
    header.insert(header.end(), AlgorithmNames().begin(), AlgorithmNames().end());
    std::printf("%s\n", RenderTable(header, rows).c_str());
  }
  std::printf("Expected shape (paper): resrc-aware DL reproduces the learned shape no\n"
              "matter what the query looks like; DeepRest follows the query shape.\n");
  return 0;
}
