// Paper Fig. 17: applicability to a second application — estimating the CPU
// of the hotel reservation system's FrontendService for a query with 3x more
// users than ever observed, plus the absolute-percentage-error distribution.
#include <algorithm>
#include <cmath>
#include <numeric>

#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

int main() {
  PrintBenchHeader("Fig. 17", "hotel reservation: FrontendService CPU at 3x users");
  ExperimentHarness harness(HotelBenchConfig());

  TrafficSpec spec = harness.QuerySpec(1);
  spec.user_scale = 3.0;
  Rng rng(61);
  const auto query = harness.RunQuery(GenerateTraffic(spec, rng));
  const auto estimates = EstimateAll(harness, query);

  const MetricKey key{"FrontendService", ResourceKind::kCpu};
  const auto actual = harness.metrics().Series(key, query.from, query.to);
  std::vector<std::string> names = {"actual"};
  std::vector<std::vector<double>> series = {actual};
  for (size_t a = 0; a < estimates.size(); ++a) {
    names.push_back(AlgorithmNames()[a]);
    series.push_back(estimates[a].at(key).expected);
  }
  std::printf("(a) FrontendService CPU, 3x users:\n%s\n",
              RenderSeries(names, series, 12, 96).c_str());

  // (b) absolute percentage error per algorithm: mean and p95.
  std::vector<std::vector<std::string>> rows;
  for (size_t a = 0; a < estimates.size(); ++a) {
    const auto& expected = estimates[a].at(key).expected;
    std::vector<double> errors;
    for (size_t t = 0; t < actual.size(); ++t) {
      errors.push_back(100.0 * std::fabs(expected[t] - actual[t]) /
                       std::max(actual[t], 1.0));
    }
    std::sort(errors.begin(), errors.end());
    const double mean =
        std::accumulate(errors.begin(), errors.end(), 0.0) / static_cast<double>(errors.size());
    const double p95 = errors[static_cast<size_t>(0.95 * (errors.size() - 1))];
    rows.push_back({AlgorithmNames()[a], FormatDouble(mean, 1) + "%",
                    FormatDouble(p95, 1) + "%"});
  }
  std::printf("(b) Absolute percentage error:\n%s\n",
              RenderTable({"algorithm", "mean APE", "p95 APE"}, rows).c_str());
  std::printf("Expected shape (paper): both scaling baselines significantly OVER-estimate\n"
              "at 3x (small errors magnify with user count); DeepRest stays closest.\n");
  return 0;
}
