// Paper Fig. 18: detail series for the "2-peak/day -> flat" scenario —
// (a) ComposePostService CPU allocation and (b) PostStorageMongoDB write
// IOps. Resrc-aware DL keeps predicting two peaks even though the query is
// flat; the traffic-connected algorithms follow the flat shape.
#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

int main() {
  PrintBenchHeader("Fig. 18", "2-peak -> flat: per-window series of two resources");
  ExperimentHarness harness(SocialBenchConfig());

  TrafficSpec spec = harness.QuerySpec(1);
  spec.shape = ShapeKind::kFlat;
  Rng rng(67);
  const auto query = harness.RunQuery(GenerateTraffic(spec, rng));
  const auto estimates = EstimateAll(harness, query);

  for (const auto& [label, key] :
       {std::pair<std::string, MetricKey>{"(a) ComposePostService CPU [%]",
                                          {"ComposePostService", ResourceKind::kCpu}},
        std::pair<std::string, MetricKey>{"(b) PostStorageMongoDB write IOps",
                                          {"PostStorageMongoDB", ResourceKind::kWriteIops}}}) {
    const auto actual = harness.metrics().Series(key, query.from, query.to);
    std::vector<std::string> names = {"actual"};
    std::vector<std::vector<double>> series = {actual};
    std::vector<std::vector<std::string>> rows;
    for (size_t a = 0; a < estimates.size(); ++a) {
      names.push_back(AlgorithmNames()[a]);
      series.push_back(estimates[a].at(key).expected);
      rows.push_back({AlgorithmNames()[a],
                      FormatDouble(harness.QueryMape(estimates[a], query, key), 1) + "%"});
    }
    std::printf("%s\n%s\n", label.c_str(), RenderSeries(names, series, 12, 96).c_str());
    std::printf("%s\n", RenderTable({"algorithm", "MAPE"}, rows).c_str());
  }

  // Quantify resrc-aware DL's residual periodicity: ratio of its prediction's
  // peak-to-mean vs the actual flat series'.
  const MetricKey cpu{"ComposePostService", ResourceKind::kCpu};
  auto peak_to_mean = [](const std::vector<double>& xs) {
    double peak = 0.0;
    double mean = 0.0;
    for (double v : xs) {
      peak = std::max(peak, v);
      mean += v;
    }
    return peak / std::max(mean / static_cast<double>(xs.size()), 1e-9);
  };
  std::printf("Peak-to-mean ratio on ComposePostService CPU (1.0 = perfectly flat):\n");
  std::printf("  actual         : %.2f\n",
              peak_to_mean(harness.metrics().Series(cpu, query.from, query.to)));
  std::printf("  DeepRest       : %.2f\n", peak_to_mean(estimates[0].at(cpu).expected));
  std::printf("  resrc-aware DL : %.2f  <- still two-peaked, the paper's key observation\n",
              peak_to_mean(estimates[1].at(cpu).expected));
  return 0;
}
