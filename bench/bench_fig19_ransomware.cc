// Paper Fig. 19: application sanity check against a ransomware attack.
// Learning on 7 days of production traffic, then 9 days of checking that
// include (i) a benign day with unusually flat-high traffic, (ii) a benign
// single-peak day, and (iii) a ransomware attack on PostStorageMongoDB.
// Resource-history baselines flag all three; DeepRest's traffic-justified
// interval flags only the attack.
#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

int main() {
  PrintBenchHeader("Fig. 19", "sanity check: ransomware on PostStorageMongoDB");
  HarnessConfig config = SocialBenchConfig();
  config.seed = 3;
  ExperimentHarness harness(config);
  harness.deeprest();
  const size_t windows_per_day = config.windows_per_day;

  // Build 9 checking days: days 1 and 5 have benign anomalous-looking
  // traffic; day 7 carries the ransomware.
  TrafficSeries nine_days({}, 0);
  {
    Rng rng(91);
    for (size_t day = 0; day < 9; ++day) {
      TrafficSpec spec = harness.QuerySpec(1);
      if (day == 1) {
        spec.shape = ShapeKind::kFlat;  // constantly-high day (benign)
        spec.user_scale = 1.5;
      } else if (day == 4) {
        spec.shape = ShapeKind::kSinglePeak;  // one-peak day (benign)
      }
      const TrafficSeries day_traffic = GenerateTraffic(spec, rng);
      if (day == 0) {
        nine_days = day_traffic;
      } else {
        nine_days.Append(day_traffic);
      }
    }
  }

  AttackSpec attack;
  attack.kind = AttackSpec::Kind::kRansomware;
  attack.component = "PostStorageMongoDB";
  attack.start_window = harness.learn_windows() + 6 * windows_per_day + windows_per_day / 2;
  attack.end_window = attack.start_window + windows_per_day / 6;  // a few hours
  harness.simulator().AddAttack(attack);

  const auto query = harness.RunQuery(nine_days);
  const EstimateMap expected = harness.EstimateDeepRestFromRealTraces(query);

  // Series plot of the attacked resource with its expected interval.
  const MetricKey thr{"PostStorageMongoDB", ResourceKind::kWriteThroughput};
  const auto actual = harness.metrics().Series(thr, query.from, query.to);
  std::printf("PostStorageMongoDB write throughput over the 9 checking days\n");
  std::printf("(day 2 flat-high benign, day 5 single-peak benign, day 7 attack):\n\n%s\n",
              RenderSeries({"actual", "expected upper (p90)"},
                           {actual, expected.at(thr).upper}, 12, 108)
                  .c_str());

  // 1-D anomaly heatmap per day.
  SanityChecker checker;
  const auto scores = checker.ComponentScores(expected, harness.metrics(),
                                              "PostStorageMongoDB", query.from, query.to);
  std::printf("Anomaly-score timeline (one char per window, '#' anomalous):\n");
  for (size_t day = 0; day < 9; ++day) {
    std::printf("  day %zu: ", day + 1);
    for (size_t w = 0; w < windows_per_day; ++w) {
      const double s = scores[day * windows_per_day + w];
      std::printf("%c", s > 2.0 ? '#' : s > 0.5 ? '+' : '.');
    }
    std::printf("\n");
  }

  const auto events = checker.Detect(expected, harness.metrics(), query.from, query.to);
  std::printf("\nDetected events (the paper expects exactly the day-7 attack, with the\n"
              "benign days 2 and 5 NOT flagged despite violating historical patterns):\n\n");
  if (events.empty()) {
    std::printf("  (none)\n");
  }
  for (const auto& event : events) {
    std::printf("%s\n", event.Describe(windows_per_day).c_str());
  }

  // Score summary per day to make false-positive checking explicit.
  std::printf("Mean anomaly score per day:\n");
  for (size_t day = 0; day < 9; ++day) {
    double mean = 0.0;
    for (size_t w = 0; w < windows_per_day; ++w) {
      mean += scores[day * windows_per_day + w];
    }
    mean /= static_cast<double>(windows_per_day);
    std::printf("  day %zu: %.3f%s\n", day + 1, mean,
                day == 6 ? "  <- ransomware" : (day == 1 || day == 4) ? "  (benign outlier)"
                                                                      : "");
  }
  return 0;
}
