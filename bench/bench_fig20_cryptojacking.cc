// Paper Fig. 20: application sanity check against a cryptojacking attack —
// a resident miner steals CPU on PostStorageMongoDB from day 6 of an 8-day
// checking period that also contains benign traffic growth.
#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

int main() {
  PrintBenchHeader("Fig. 20", "sanity check: cryptojacking on PostStorageMongoDB");
  HarnessConfig config = SocialBenchConfig();
  config.seed = 4;
  ExperimentHarness harness(config);
  harness.deeprest();
  const size_t windows_per_day = config.windows_per_day;

  // 8 checking days with organic growth (benign) and a miner from day 6.
  TrafficSeries days({}, 0);
  {
    Rng rng(97);
    for (size_t day = 0; day < 8; ++day) {
      TrafficSpec spec = harness.QuerySpec(1);
      spec.user_scale = 1.0 + 0.08 * static_cast<double>(day);  // growing user base
      if (day == 2) {
        spec.user_scale *= 1.35;  // benign surge day
      }
      const TrafficSeries day_traffic = GenerateTraffic(spec, rng);
      if (day == 0) {
        days = day_traffic;
      } else {
        days.Append(day_traffic);
      }
    }
  }

  AttackSpec attack;
  attack.kind = AttackSpec::Kind::kCryptojacking;
  attack.component = "PostStorageMongoDB";
  attack.start_window = harness.learn_windows() + 5 * windows_per_day;
  attack.end_window = harness.learn_windows() + 8 * windows_per_day;  // until the end
  harness.simulator().AddAttack(attack);

  const auto query = harness.RunQuery(days);
  const EstimateMap expected = harness.EstimateDeepRestFromRealTraces(query);

  const MetricKey cpu{"PostStorageMongoDB", ResourceKind::kCpu};
  const auto actual = harness.metrics().Series(cpu, query.from, query.to);
  std::printf("PostStorageMongoDB CPU over 8 checking days (miner from day 6):\n\n%s\n",
              RenderSeries({"actual", "expected upper (p90)", "expected lower"},
                           {actual, expected.at(cpu).upper, expected.at(cpu).lower}, 12, 104)
                  .c_str());

  SanityChecker checker;
  const auto scores = checker.ComponentScores(expected, harness.metrics(),
                                              "PostStorageMongoDB", query.from, query.to);
  std::printf("Anomaly-score timeline:\n");
  for (size_t day = 0; day < 8; ++day) {
    std::printf("  day %zu: ", day + 1);
    for (size_t w = 0; w < windows_per_day; ++w) {
      const double s = scores[day * windows_per_day + w];
      std::printf("%c", s > 2.0 ? '#' : s > 0.5 ? '+' : '.');
    }
    std::printf("%s\n", day >= 5 ? "  <- miner active" : "");
  }

  const auto events = checker.Detect(expected, harness.metrics(), query.from, query.to);
  std::printf("\nDetected events (expected: a sustained event starting day 6; the benign\n"
              "growth and the day-3 surge are justified by traffic and stay quiet):\n\n");
  if (events.empty()) {
    std::printf("  (none)\n");
  }
  for (const auto& event : events) {
    std::printf("%s\n", event.Describe(windows_per_day).c_str());
  }
  return 0;
}
