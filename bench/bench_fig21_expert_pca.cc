// Paper Fig. 21: PCA embedding of the trained DNN experts — experts
// responsible for MongoDB components form a cluster, evidence that they
// learned similar remember/forget dynamics (motivating transfer learning,
// paper section 6).
//
// Deviation note (see EXPERIMENTS.md): the paper projects the raw GRU
// parameters. Our training runs ~3 orders of magnitude fewer optimizer steps
// than the paper's 7-day/5-second-window setup, so raw weights remain
// dominated by their random initialization. We therefore embed each expert
// by its FUNCTION — its hidden-state trajectory on a shared probe input —
// which is the property the paper's parameter-space clustering is standing
// in for. The raw-parameter ratio is also reported for transparency.
#include <algorithm>
#include <cmath>

#include "bench/common.h"
#include "src/nn/pca.h"

using namespace deeprest;  // NOLINT(build/namespaces)

namespace {

double ClusterRatio(const PcaResult& pca, const std::vector<bool>& is_mongo) {
  double within = 0.0;
  double across = 0.0;
  size_t within_pairs = 0;
  size_t across_pairs = 0;
  for (size_t i = 0; i < pca.projections.size(); ++i) {
    for (size_t j = i + 1; j < pca.projections.size(); ++j) {
      const double dx = pca.projections[i][0] - pca.projections[j][0];
      const double dy = pca.projections[i][1] - pca.projections[j][1];
      const double distance = std::sqrt(dx * dx + dy * dy);
      if (is_mongo[i] && is_mongo[j]) {
        within += distance;
        ++within_pairs;
      } else if (is_mongo[i] != is_mongo[j]) {
        across += distance;
        ++across_pairs;
      }
    }
  }
  within /= std::max<size_t>(1, within_pairs);
  across /= std::max<size_t>(1, across_pairs);
  return within / std::max(across, 1e-12);
}

}  // namespace

int main() {
  PrintBenchHeader("Fig. 21", "PCA of the DNN experts (MongoDB experts cluster)");
  ExperimentHarness harness(SocialBenchConfig());
  DeepRestEstimator& estimator = harness.deeprest();

  // Functional embedding: hidden trajectories on the first learning day.
  const auto trajectories =
      estimator.HiddenTrajectoriesOnLearnData(harness.config().windows_per_day);
  std::vector<std::vector<float>> samples;
  std::vector<bool> is_mongo;
  for (const auto& [key, trajectory] : trajectories) {
    if (key.resource != ResourceKind::kCpu) {
      continue;  // one expert per component keeps the plot legible
    }
    std::vector<float> v = trajectory;
    double norm = 0.0;
    for (float f : v) {
      norm += static_cast<double>(f) * f;
    }
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (auto& f : v) {
        f = static_cast<float>(f / norm);
      }
    }
    samples.push_back(std::move(v));
    is_mongo.push_back(key.component.find("MongoDB") != std::string::npos);
  }
  const PcaResult pca = ComputePca(samples, 2);

  // Scatter plot.
  float min_x = 1e9f, max_x = -1e9f, min_y = 1e9f, max_y = -1e9f;
  for (const auto& p : pca.projections) {
    min_x = std::min(min_x, p[0]);
    max_x = std::max(max_x, p[0]);
    min_y = std::min(min_y, p[1]);
    max_y = std::max(max_y, p[1]);
  }
  const size_t kW = 84, kH = 22;
  std::vector<std::string> grid(kH, std::string(kW, ' '));
  for (size_t i = 0; i < pca.projections.size(); ++i) {
    const size_t gx = static_cast<size_t>((pca.projections[i][0] - min_x) /
                                          std::max(1e-9f, max_x - min_x) * (kW - 1));
    const size_t gy = static_cast<size_t>((pca.projections[i][1] - min_y) /
                                          std::max(1e-9f, max_y - min_y) * (kH - 1));
    grid[kH - 1 - gy][gx] = is_mongo[i] ? 'M' : 'o';
  }
  std::printf("'M' = MongoDB expert, 'o' = other expert (CPU experts only):\n\n");
  for (const auto& line : grid) {
    std::printf("  |%s\n", line.c_str());
  }
  std::printf("  +%s\n", std::string(kW, '-').c_str());
  std::printf("\nExplained variance: PC1 %.1f%%, PC2 %.1f%%\n\n",
              100.0f * pca.explained_variance_ratio[0],
              100.0f * pca.explained_variance_ratio[1]);

  const double functional_ratio = ClusterRatio(pca, is_mongo);
  std::printf("MongoDB-cluster tightness (within / across mean PCA distance, < 1 means\n"
              "MongoDB experts sit closer to each other than to the rest):\n");
  std::printf("  functional (hidden-trajectory) embedding: %.2f\n", functional_ratio);

  // Raw-parameter embedding, for transparency about the deviation.
  {
    std::vector<std::vector<float>> raw_samples;
    std::vector<bool> raw_mongo;
    for (const auto& key : estimator.resources()) {
      if (key.resource != ResourceKind::kCpu) {
        continue;
      }
      raw_samples.push_back(estimator.ExpertParameterDelta(key));
      raw_mongo.push_back(key.component.find("MongoDB") != std::string::npos);
    }
    const PcaResult raw_pca = ComputePca(raw_samples, 2);
    std::printf("  raw parameter-delta embedding          : %.2f"
                "  (paper-style; needs far longer training to sharpen)\n",
                ClusterRatio(raw_pca, raw_mongo));
  }
  return 0;
}
