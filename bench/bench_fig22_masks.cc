// Paper Fig. 22: interpreting the learned API-aware masks — which API
// endpoints influence which resource? Reproduces the paper's four example
// resources:
//   MediaMongoDB memory            <- /uploadMedia (+ /getMedia reads)
//   ComposePostService CPU         <- /composePost only
//   PostStorageMongoDB write IOps  <- /composePost only
//   PostStorageMongoDB CPU         <- /composePost AND /readTimeline
//
// Attribution here is trained with stronger mask sparsity than the default
// estimator configuration, which sharpens the per-API separation the same
// way longer training does in the paper's PyTorch setup.
#include <algorithm>

#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

int main() {
  PrintBenchHeader("Fig. 22", "learned API-aware masks (API -> resource attribution)");
  HarnessConfig config = SocialBenchConfig();
  config.estimator.epochs = 22;
  config.estimator.mask_decay = 0.05f;
  ExperimentHarness harness(config);
  DeepRestEstimator& estimator = harness.deeprest();

  const std::vector<MetricKey> resources = {
      {"MediaMongoDB", ResourceKind::kMemory},
      {"ComposePostService", ResourceKind::kCpu},
      {"PostStorageMongoDB", ResourceKind::kWriteIops},
      {"PostStorageMongoDB", ResourceKind::kCpu},
  };
  for (const auto& key : resources) {
    auto influence = estimator.ApiInfluence(key);
    double max_weight = 1e-12;
    for (const auto& [api, weight] : influence) {
      max_weight = std::max(max_weight, weight);
    }
    std::vector<std::pair<std::string, double>> sorted(influence.begin(), influence.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::printf("%s:\n", key.ToString().c_str());
    for (const auto& [api, weight] : sorted) {
      const double normalized = weight / max_weight;
      const int bar = static_cast<int>(normalized * 44.0);
      std::printf("  %-18s %-44s %.2f\n", api.c_str(), std::string(bar, '#').c_str(),
                  normalized);
    }
    std::printf("\n");
  }
  std::printf("Reading guide: each resource's influence profile should be dominated by\n"
              "the API(s) whose invocation paths actually consume it (header comment).\n");
  return 0;
}
