// Hot-path benchmark: tiled GEMM kernels vs the preserved reference kernels,
// fused vs reference GRU step, end-to-end training/inference wall-clock, and
// the parallel training harness. Writes every measurement to a JSON file
// (default BENCH_kernels.json) so tools/bench_diff can compare runs.
//
// Usage: bench_kernels [--smoke] [--out <path>]
//   --smoke  tiny configuration for the perf-smoke ctest label (seconds, not
//            minutes; the numbers are NOT representative, only the plumbing)
//   --out    output JSON path (default: BENCH_kernels.json in the cwd)
//
// The "reference" training run flips SetKernelMode(kReference) and
// use_fused_graph = false, i.e. the pre-optimization kernels and the
// per-elementary-op graph on the same binary. The node arena cannot be
// toggled off, so the end-to-end speedup reported here slightly understates
// the true before/after against the pre-PR tree.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/core/estimator.h"
#include "src/eval/parallel.h"
#include "src/nn/layers.h"
#include "src/nn/matrix.h"
#include "src/nn/ops.h"
#include "src/nn/quant.h"
#include "src/nn/rng.h"
#include "src/nn/simd/dispatch.h"
#include "src/telemetry/metrics.h"
#include "src/trace/collector.h"

namespace deeprest {
namespace {

struct BenchOptions {
  bool smoke = false;
  std::string out = "BENCH_kernels.json";
};

// Synthetic workload: `fan` sibling operations spread over `components`
// services under one root, Poisson-sized windows. Mirrors the shape of the
// paper's fan-out APIs while staying fully deterministic (seed 7).
struct KernelFixture {
  TraceCollector traces;
  MetricsStore metrics;
  size_t windows = 96;
  std::vector<MetricKey> resources;

  KernelFixture(size_t components, size_t fan, uint64_t seed = 7) {
    Rng rng(seed);
    for (size_t c = 0; c < components; ++c) {
      resources.push_back({"Svc" + std::to_string(c), ResourceKind::kCpu});
    }
    for (size_t w = 0; w < windows; ++w) {
      const int count = rng.NextPoisson(18.0);
      for (int i = 0; i < count; ++i) {
        Trace t(w * 1000 + static_cast<uint64_t>(i), "/fan");
        const SpanIndex root = t.AddSpan("Frontend", "fan", kNoParent);
        for (size_t d = 0; d < fan; ++d) {
          t.AddSpan("Svc" + std::to_string(d % components), "op" + std::to_string(d), root);
        }
        traces.Collect(w, t);
      }
      for (size_t c = 0; c < components; ++c) {
        metrics.Record(resources[c], w, 5.0 + 0.1 * rng.Uniform(0, 10) + 0.2 * c);
      }
    }
  }
};

// ---- GEMM micro-benchmarks ----

struct GemmResult {
  std::string name;
  double tiled_ns = 0;
  double reference_ns = 0;
  double speedup() const { return reference_ns > 0 ? reference_ns / tiled_ns : 0; }
};

template <typename Fn>
double TimeNs(int iters, Fn&& fn) {
  // One untimed warm-up call settles allocations inside `out`.
  fn();
  const WallTimer timer;
  for (int i = 0; i < iters; ++i) {
    fn();
  }
  return timer.Nanos() / iters;
}

GemmResult BenchMatMul(size_t m, size_t k, size_t n, int iters, Rng& rng) {
  Matrix a(m, k), b(k, n), out;
  a.FillUniform(rng, 1.0f);
  b.FillUniform(rng, 1.0f);
  GemmResult result;
  result.name = "MatMulInto " + std::to_string(m) + "x" + std::to_string(k) + "*" +
                std::to_string(k) + "x" + std::to_string(n);
  result.tiled_ns = TimeNs(iters, [&] { MatMulInto(a, b, out); });
  result.reference_ns = TimeNs(iters, [&] { reference::MatMulInto(a, b, out); });
  return result;
}

GemmResult BenchAccATB(size_t m, size_t k, size_t n, int iters, Rng& rng) {
  // out(k,n) += a(m,k)^T * b(m,n) — the weight-gradient shape.
  Matrix a(m, k), b(m, n), out(k, n);
  a.FillUniform(rng, 1.0f);
  b.FillUniform(rng, 1.0f);
  GemmResult result;
  result.name = "AccumulateATransposeB " + std::to_string(m) + "x" + std::to_string(k) +
                "^T*" + std::to_string(m) + "x" + std::to_string(n);
  result.tiled_ns = TimeNs(iters, [&] { AccumulateATransposeB(a, b, out); });
  out.Zero();
  result.reference_ns = TimeNs(iters, [&] { reference::AccumulateATransposeB(a, b, out); });
  return result;
}

GemmResult BenchAccABT(size_t m, size_t k, size_t n, int iters, Rng& rng) {
  // out(m,k) += a(m,n) * b(k,n)^T — the input-gradient shape.
  Matrix a(m, n), b(k, n), out(m, k);
  a.FillUniform(rng, 1.0f);
  b.FillUniform(rng, 1.0f);
  GemmResult result;
  result.name = "AccumulateABTranspose " + std::to_string(m) + "x" + std::to_string(n) + "*" +
                std::to_string(k) + "x" + std::to_string(n) + "^T";
  result.tiled_ns = TimeNs(iters, [&] { AccumulateABTranspose(a, b, out); });
  out.Zero();
  result.reference_ns = TimeNs(iters, [&] { reference::AccumulateABTranspose(a, b, out); });
  return result;
}

// Batch-major payoff: B columns stacked into one GEMM vs B separate GEMVs of
// the same recurrent shape. Identical flops and identical per-column
// reduction order (each output element accumulates its k-products in
// ascending order either way), so the results are bit-identical and the
// difference is pure memory behavior: the GEMM streams the weight matrix
// once instead of B times.
struct BatchMajorResult {
  size_t batch = 0;
  double gemv_ns = 0;  // B sequential mat-vec products
  double gemm_ns = 0;  // one mat-mat product with B columns
  double speedup() const { return gemm_ns > 0 ? gemv_ns / gemm_ns : 0; }
};

BatchMajorResult BenchBatchMajor(size_t h, size_t b, int iters, Rng& rng) {
  Matrix w(h, h), xb(h, b), out;
  std::vector<Matrix> xs(b, Matrix(h, 1));
  std::vector<Matrix> outs(b);
  w.FillUniform(rng, 1.0f);
  xb.FillUniform(rng, 1.0f);
  for (size_t c = 0; c < b; ++c) {
    for (size_t r = 0; r < h; ++r) {
      xs[c].At(r, 0) = xb.At(r, c);
    }
  }
  BatchMajorResult result;
  result.batch = b;
  result.gemv_ns = TimeNs(iters, [&] {
    for (size_t c = 0; c < b; ++c) {
      MatMulInto(w, xs[c], outs[c]);
    }
  });
  result.gemm_ns = TimeNs(iters, [&] { MatMulInto(w, xb, out); });
  return result;
}

// ---- SIMD dispatch micro-benchmarks ----

// One shape, four kernel paths: dispatch-selected SIMD, forced-scalar SIMD
// (the portable fallback the ci.sh simd-off leg pins), the tiled default,
// and the preserved reference. All timed through the SAME Matrix-level entry
// points so the numbers include dispatch overhead.
struct SimdResult {
  std::string name;
  double simd_ns = 0;
  double scalar_ns = 0;
  double tiled_ns = 0;
  double reference_ns = 0;
  double speedup() const { return simd_ns > 0 ? tiled_ns / simd_ns : 0; }
};

template <typename Fn>
SimdResult BenchSimdOp(const std::string& name, int iters, Fn&& fn) {
  SimdResult result;
  result.name = name;
  SetKernelMode(KernelMode::kTiled);
  result.tiled_ns = TimeNs(iters, fn);
  SetKernelMode(KernelMode::kReference);
  result.reference_ns = TimeNs(iters, fn);
  SetKernelMode(KernelMode::kSimd);
  simd::ResetIsa();
  result.simd_ns = TimeNs(iters, fn);
  simd::ForceIsa(simd::Isa::kScalar);
  result.scalar_ns = TimeNs(iters, fn);
  simd::ResetIsa();
  SetKernelMode(KernelMode::kTiled);
  return result;
}

SimdResult BenchSimdMatMul(size_t m, size_t k, size_t n, int iters, Rng& rng) {
  Matrix a(m, k), b(k, n), out;
  a.FillUniform(rng, 1.0f);
  b.FillUniform(rng, 1.0f);
  return BenchSimdOp("MatMulInto " + std::to_string(m) + "x" + std::to_string(k) + "*" +
                         std::to_string(k) + "x" + std::to_string(n),
                     iters, [&] { MatMulInto(a, b, out); });
}

SimdResult BenchSimdAccATB(size_t m, size_t k, size_t n, int iters, Rng& rng) {
  Matrix a(m, k), b(m, n), out(k, n);
  a.FillUniform(rng, 1.0f);
  b.FillUniform(rng, 1.0f);
  return BenchSimdOp("AccumulateATransposeB " + std::to_string(m) + "x" + std::to_string(k) +
                         "^T*" + std::to_string(m) + "x" + std::to_string(n),
                     iters, [&] { AccumulateATransposeB(a, b, out); });
}

SimdResult BenchSimdAccABT(size_t m, size_t k, size_t n, int iters, Rng& rng) {
  Matrix a(m, n), b(k, n), out(m, k);
  a.FillUniform(rng, 1.0f);
  b.FillUniform(rng, 1.0f);
  return BenchSimdOp("AccumulateABTranspose " + std::to_string(m) + "x" + std::to_string(n) +
                         "*" + std::to_string(k) + "x" + std::to_string(n) + "^T",
                     iters, [&] { AccumulateABTranspose(a, b, out); });
}

// The ISSUE acceptance gate: on AVX2-capable hardware the dispatch-selected
// GEMM must be at least 2x faster than tiled on the representative mat-mat
// shapes. Measured as the MINIMUM speedup across those shapes — the honest
// (weakest) claim. On hosts without AVX2 the check is an explicit SKIP, not
// a vacuous pass.
struct SimdGemmCheck {
  double required = 2.0;
  double measured_min = 0;
  std::string verdict;  // "PASS" | "FAIL" | "SKIP (no avx2)"
};

SimdGemmCheck CheckSimdGemm(const std::vector<SimdResult>& rows,
                            const std::vector<std::string>& representative) {
  SimdGemmCheck check;
  if (!simd::IsaSupported(simd::Isa::kAvx2)) {
    check.verdict = "SKIP (no avx2)";
    return check;
  }
  check.measured_min = 1e100;
  for (const SimdResult& row : rows) {
    for (const std::string& name : representative) {
      if (row.name == name) {
        check.measured_min = std::min(check.measured_min, row.speedup());
      }
    }
  }
  check.verdict = check.measured_min >= check.required ? "PASS" : "FAIL";
  return check;
}

// ---- Quantized inference leg ----

struct QuantBenchResult {
  double fp32_ns = 0;
  double int8_ns = 0;
  double max_rel_error = 0;     // vs the fp32 product, worst element
  double weight_mem_ratio = 0;  // fp32 weight bytes / int8 weight+scale bytes
  double speedup() const { return int8_ns > 0 ? fp32_ns / int8_ns : 0; }
};

QuantBenchResult BenchQuantized(int iters, Rng& rng) {
  // The shape quantization serves in production: the batch-major GRU input
  // projection, w(16 x 256) @ x(256 x 16). The int8 timing includes dynamic
  // per-column activation quantization, exactly as the estimator pays it.
  Matrix w(16, 256), x(256, 16), fp32_out, int8_out;
  w.FillUniform(rng, 1.0f);
  x.FillUniform(rng, 1.0f);
  const QuantizedMatrix q = QuantizeRowwise(w);
  QuantScratch scratch;
  SetKernelMode(KernelMode::kSimd);
  simd::ResetIsa();
  QuantBenchResult result;
  result.fp32_ns = TimeNs(iters, [&] { MatMulInto(w, x, fp32_out); });
  result.int8_ns = TimeNs(iters, [&] { QuantizedMatMul(q, x, int8_out, scratch); });
  SetKernelMode(KernelMode::kTiled);
  float max_abs = 0.0f, max_err = 0.0f;
  for (size_t i = 0; i < fp32_out.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(fp32_out[i]));
    max_err = std::max(max_err, std::fabs(int8_out[i] - fp32_out[i]));
  }
  result.max_rel_error = max_abs > 0 ? max_err / max_abs : 0;
  const double fp32_bytes = static_cast<double>(w.size()) * sizeof(float);
  const double int8_bytes = static_cast<double>(q.data.size()) * sizeof(int8_t) +
                            static_cast<double>(q.scales.size()) * sizeof(float);
  result.weight_mem_ratio = fp32_bytes / int8_bytes;
  return result;
}

// ---- Single GRU step forward + backward ----

struct StepResult {
  double fused_ns = 0;
  double reference_ns = 0;
  uint64_t fused_nodes = 0;      // graph nodes per step (fused path)
  uint64_t reference_nodes = 0;  // graph nodes per step (elementary ops)
  double speedup() const { return fused_ns > 0 ? reference_ns / fused_ns : 0; }
};

StepResult BenchGruStep(size_t in_dim, size_t hidden, size_t unroll, int iters) {
  Rng rng(11);
  ParameterStore store;
  GruCell gru(store, "bench_gru", in_dim, hidden, rng);
  Matrix x_value(in_dim, 1);
  x_value.FillUniform(rng, 1.0f);
  const Tensor x = Tensor::Constant(x_value);

  const auto run = [&](bool fused) {
    Tensor h = gru.InitialState();
    for (size_t t = 0; t < unroll; ++t) {
      h = fused ? gru.Step(x, h) : gru.StepReference(x, h);
    }
    Tensor loss = SumAll(h);
    loss.Backward();
    store.ZeroGrad();
  };

  StepResult result;
  uint64_t before = TensorNodesCreated();
  run(true);
  result.fused_nodes = (TensorNodesCreated() - before) / unroll;
  before = TensorNodesCreated();
  run(false);
  result.reference_nodes = (TensorNodesCreated() - before) / unroll;

  result.fused_ns = TimeNs(iters, [&] { run(true); }) / unroll;
  result.reference_ns = TimeNs(iters, [&] { run(false); }) / unroll;
  return result;
}

// ---- End-to-end training / inference ----

struct TrainResult {
  double optimized_s = 0;
  double reference_s = 0;
  double infer_optimized_s = 0;  // one full-series estimation pass
  double infer_reference_s = 0;
  std::vector<float> optimized_losses;
  std::vector<float> reference_losses;
  double train_speedup() const {
    return optimized_s > 0 ? reference_s / optimized_s : 0;
  }
  double infer_speedup() const {
    return infer_optimized_s > 0 ? infer_reference_s / infer_optimized_s : 0;
  }
};

EstimatorConfig TrainConfig(const BenchOptions& options) {
  EstimatorConfig config;
  config.hidden_dim = 16;
  config.epochs = options.smoke ? 2 : 10;
  config.bptt_chunk = 48;
  config.warm_start = false;
  config.seed = 3;
  return config;
}

TrainResult BenchTraining(const KernelFixture& fixture, const BenchOptions& options) {
  const EstimatorConfig config = TrainConfig(options);
  const int reps = options.smoke ? 1 : 5;  // best-of-5: the box is noisy
  TrainResult result;

  const auto train_once = [&](bool optimized, double& best, std::vector<float>& losses,
                              double& infer) {
    SetKernelMode(optimized ? KernelMode::kTiled : KernelMode::kReference);
    EstimatorConfig run_config = config;
    run_config.use_fused_graph = optimized;
    best = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
      DeepRestEstimator estimator(run_config);
      const WallTimer timer;
      estimator.Learn(fixture.traces, fixture.metrics, 0, fixture.windows, fixture.resources);
      best = std::min(best, timer.Seconds());
      losses = estimator.epoch_losses();
    }
    DeepRestEstimator estimator(run_config);
    estimator.Learn(fixture.traces, fixture.metrics, 0, fixture.windows, fixture.resources);
    const auto features =
        estimator.features().ExtractSeries(fixture.traces, 0, fixture.windows);
    const int infer_reps = options.smoke ? 2 : 10;
    const WallTimer timer;
    for (int i = 0; i < infer_reps; ++i) {
      const auto estimates = estimator.EstimateFromFeatures(features);
      (void)estimates;
    }
    infer = timer.Seconds() / infer_reps;
  };

  train_once(true, result.optimized_s, result.optimized_losses, result.infer_optimized_s);
  train_once(false, result.reference_s, result.reference_losses, result.infer_reference_s);
  SetKernelMode(KernelMode::kTiled);
  return result;
}

// ---- Parallel training harness ----

struct ParallelResult {
  size_t jobs = 0;
  size_t threads = 0;
  bool skipped = false;  // 1-core host: the leg would only measure noise
  double sequential_s = 0;
  double parallel_s = 0;
  double speedup() const { return parallel_s > 0 ? sequential_s / parallel_s : 0; }
};

ParallelResult BenchParallelTraining(const KernelFixture& fixture,
                                     const BenchOptions& options) {
  ParallelResult result;
  result.jobs = options.smoke ? 2 : 4;
  // At least two workers: DefaultTrainThreads() follows the core count, and
  // on a single-core box that made the "parallel" leg a 1-thread rerun of
  // the baseline, reporting speedup ~1.0 by construction.
  result.threads = std::max<size_t>(2, DefaultTrainThreads());
  // On a single hardware core even the 2-thread run is just the baseline
  // with context-switch overhead: any "speedup" it reports is timing noise
  // dressed up as a result. Emit an explicit SKIP verdict instead (the JSON
  // omits the timing keys; bench_diff treats missing keys as informational).
  if (std::thread::hardware_concurrency() <= 1) {
    result.skipped = true;
    return result;
  }

  std::vector<TrainJob> jobs;
  for (size_t i = 0; i < result.jobs; ++i) {
    TrainJob job;
    job.config = TrainConfig(options);
    job.config.seed = 3 + i;  // independent models: distinct seeds
    job.traces = &fixture.traces;
    job.metrics = &fixture.metrics;
    job.from = 0;
    job.to = fixture.windows;
    job.resources = fixture.resources;
    jobs.push_back(job);
  }

  {
    const WallTimer timer;
    const auto models = TrainEstimatorsParallel(jobs, 1);
    result.sequential_s = timer.Seconds();
  }
  {
    const WallTimer timer;
    const auto models = TrainEstimatorsParallel(jobs, result.threads);
    result.parallel_s = timer.Seconds();
  }
  return result;
}

// ---- JSON output ----

void WriteJson(const BenchOptions& options, const KernelFixture& fixture,
               const std::vector<GemmResult>& gemm, const BatchMajorResult& batch_major,
               const std::vector<SimdResult>& simd_rows, const SimdGemmCheck& simd_check,
               const QuantBenchResult& quant, const StepResult& step,
               const TrainResult& train, const ParallelResult& par) {
  std::FILE* f = std::fopen(options.out.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", options.out.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"smoke\": %s,\n", options.smoke ? "true" : "false");
  std::fprintf(f, "  \"windows\": %zu,\n", fixture.windows);
  std::fprintf(f, "  \"gemm\": {\n");
  for (size_t i = 0; i < gemm.size(); ++i) {
    std::fprintf(f,
                 "    \"%s\": {\"tiled_ns\": %.1f, \"reference_ns\": %.1f, "
                 "\"speedup\": %.3f}%s\n",
                 gemm[i].name.c_str(), gemm[i].tiled_ns, gemm[i].reference_ns,
                 gemm[i].speedup(), i + 1 < gemm.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f,
               "  \"batch_major\": {\"batch\": %zu, \"gemv_ns\": %.1f, \"gemm_ns\": %.1f, "
               "\"speedup\": %.3f},\n",
               batch_major.batch, batch_major.gemv_ns, batch_major.gemm_ns,
               batch_major.speedup());
  std::fprintf(f, "  \"simd\": {\n");
  std::fprintf(f, "    \"host_best_isa\": \"%s\",\n", simd::IsaName(simd::BestSupportedIsa()));
  std::fprintf(f, "    \"active_isa\": \"%s\",\n", simd::IsaName(simd::ActiveIsa()));
  std::fprintf(f, "    \"rows\": [\n");
  for (size_t i = 0; i < simd_rows.size(); ++i) {
    const SimdResult& r = simd_rows[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"simd_ns\": %.1f, \"scalar_ns\": %.1f, "
                 "\"tiled_ns\": %.1f, \"reference_ns\": %.1f, \"speedup\": %.3f}%s\n",
                 r.name.c_str(), r.simd_ns, r.scalar_ns, r.tiled_ns, r.reference_ns,
                 r.speedup(), i + 1 < simd_rows.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n");
  std::fprintf(f, "  },\n");
  if (simd_check.verdict == "PASS" || simd_check.verdict == "FAIL") {
    std::fprintf(f,
                 "  \"simd_gemm_check\": {\"required\": %.1f, \"measured_min\": %.3f, "
                 "\"verdict\": \"%s\"},\n",
                 simd_check.required, simd_check.measured_min, simd_check.verdict.c_str());
  } else {
    // Honest SKIP: no numbers that could be mistaken for a measurement.
    std::fprintf(f, "  \"simd_gemm_check\": {\"verdict\": \"%s\"},\n",
                 simd_check.verdict.c_str());
  }
  std::fprintf(f,
               "  \"quantized\": {\"fp32_ns\": %.1f, \"int8_ns\": %.1f, \"speedup\": %.3f, "
               "\"max_rel_error\": %.6f, \"weight_mem_ratio\": %.2f},\n",
               quant.fp32_ns, quant.int8_ns, quant.speedup(), quant.max_rel_error,
               quant.weight_mem_ratio);
  std::fprintf(f,
               "  \"gru_step\": {\"fused_ns\": %.1f, \"reference_ns\": %.1f, "
               "\"speedup\": %.3f, \"fused_nodes\": %llu, \"reference_nodes\": %llu},\n",
               step.fused_ns, step.reference_ns, step.speedup(),
               static_cast<unsigned long long>(step.fused_nodes),
               static_cast<unsigned long long>(step.reference_nodes));
  std::fprintf(f,
               "  \"train\": {\"optimized_s\": %.4f, \"reference_s\": %.4f, "
               "\"speedup\": %.3f, \"optimized_ns_per_window\": %.0f},\n",
               train.optimized_s, train.reference_s, train.train_speedup(),
               train.optimized_s * 1e9 / fixture.windows);
  std::fprintf(f,
               "  \"inference\": {\"optimized_s\": %.5f, \"reference_s\": %.5f, "
               "\"speedup\": %.3f, \"optimized_ns_per_window\": %.0f},\n",
               train.infer_optimized_s, train.infer_reference_s, train.infer_speedup(),
               train.infer_optimized_s * 1e9 / fixture.windows);
  if (par.skipped) {
    // No sequential_s/parallel_s/speedup keys: a 1-core "speedup" is noise,
    // and bench_diff reports missing keys as informational, not regressed.
    std::fprintf(f,
                 "  \"parallel_train\": {\"jobs\": %zu, \"threads\": %zu, "
                 "\"hardware_concurrency\": %u, \"verdict\": \"SKIP (1 hardware core)\"},\n",
                 par.jobs, par.threads, std::thread::hardware_concurrency());
  } else {
    std::fprintf(f,
                 "  \"parallel_train\": {\"jobs\": %zu, \"threads\": %zu, "
                 "\"hardware_concurrency\": %u, \"sequential_s\": %.4f, "
                 "\"parallel_s\": %.4f, \"speedup\": %.3f, \"verdict\": \"ok\"},\n",
                 par.jobs, par.threads, std::thread::hardware_concurrency(),
                 par.sequential_s, par.parallel_s, par.speedup());
  }
  std::fprintf(f, "  \"losses_bit_identical\": %s\n",
               train.optimized_losses == train.reference_losses ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Run(const BenchOptions& options) {
  PrintBenchHeader("hot-path kernels (perf)",
                   "tiled GEMM / fused GRU / arena vs the preserved reference path");

  // GEMM shapes from the actual model hot loops: the input projection
  // (hidden x feature_dim matvec), the recurrent matvec, the attention
  // mixing product, and the two gradient-accumulation kernels.
  Rng rng(19);
  const int small = options.smoke ? 500 : 20000;
  const int medium = options.smoke ? 100 : 2000;
  std::vector<GemmResult> gemm;
  gemm.push_back(BenchMatMul(16, 256, 1, small, rng));
  gemm.push_back(BenchMatMul(16, 16, 1, small, rng));
  gemm.push_back(BenchMatMul(12, 12, 16, medium, rng));
  gemm.push_back(BenchMatMul(16, 256, 16, medium, rng));  // batch-major input projection
  gemm.push_back(BenchMatMul(64, 64, 64, medium, rng));
  gemm.push_back(BenchAccATB(16, 256, 1, small, rng));
  gemm.push_back(BenchAccABT(16, 256, 1, small, rng));
  std::printf("%-44s %12s %12s %8s\n", "kernel", "tiled ns", "reference ns", "speedup");
  for (const GemmResult& g : gemm) {
    std::printf("%-44s %12.1f %12.1f %7.2fx\n", g.name.c_str(), g.tiled_ns, g.reference_ns,
                g.speedup());
  }

  const BatchMajorResult batch_major = BenchBatchMajor(/*h=*/16, /*b=*/16, small, rng);
  std::printf("\nbatch-major 16x16 recurrent step, batch %zu:\n", batch_major.batch);
  std::printf("  %zu GEMVs  %10.1f ns    one GEMM %10.1f ns    speedup %5.2fx\n",
              batch_major.batch, batch_major.gemv_ns, batch_major.gemm_ns,
              batch_major.speedup());

  // Same shapes through the runtime-dispatched SIMD kernels: dispatch-
  // selected vs forced-scalar vs tiled vs reference, all via the Matrix
  // entry points in kSimd mode.
  std::vector<SimdResult> simd_rows;
  simd_rows.push_back(BenchSimdMatMul(16, 256, 1, small, rng));
  simd_rows.push_back(BenchSimdMatMul(16, 16, 1, small, rng));
  simd_rows.push_back(BenchSimdMatMul(12, 12, 16, medium, rng));
  simd_rows.push_back(BenchSimdMatMul(16, 256, 16, medium, rng));
  simd_rows.push_back(BenchSimdMatMul(64, 64, 64, medium, rng));
  simd_rows.push_back(BenchSimdAccATB(16, 256, 1, small, rng));
  simd_rows.push_back(BenchSimdAccABT(16, 256, 1, small, rng));
  std::printf("\nSIMD dispatch (host best: %s, active: %s):\n",
              simd::IsaName(simd::BestSupportedIsa()), simd::IsaName(simd::ActiveIsa()));
  std::printf("%-44s %10s %10s %10s %10s %8s\n", "kernel", "simd ns", "scalar ns",
              "tiled ns", "ref ns", "vs tiled");
  for (const SimdResult& r : simd_rows) {
    std::printf("%-44s %10.1f %10.1f %10.1f %10.1f %7.2fx\n", r.name.c_str(), r.simd_ns,
                r.scalar_ns, r.tiled_ns, r.reference_ns, r.speedup());
  }
  const SimdGemmCheck simd_check = CheckSimdGemm(
      simd_rows, {"MatMulInto 16x256*256x16", "MatMulInto 64x64*64x64"});
  if (simd_check.verdict == "SKIP (no avx2)") {
    std::printf("  gemm >=2x check: SKIP (no avx2 on this host)\n");
  } else {
    std::printf("  gemm >=2x check: %s (min %.2fx over representative mat-mat shapes)\n",
                simd_check.verdict.c_str(), simd_check.measured_min);
  }

  const QuantBenchResult quant = BenchQuantized(medium, rng);
  std::printf("\nQuantized GEMM (16x256 @ 256x16, incl. activation quantization):\n");
  std::printf("  fp32 %10.1f ns    int8 %10.1f ns    speedup %5.2fx    max rel err %.4f\n",
              quant.fp32_ns, quant.int8_ns, quant.speedup(), quant.max_rel_error);
  std::printf("  weight memory %.2fx smaller (int8's win at this shape: the per-call\n"
              "  activation packing outweighs the kernel saving vs peak fp32 simd)\n",
              quant.weight_mem_ratio);

  const StepResult step =
      BenchGruStep(/*in_dim=*/64, /*hidden=*/16, /*unroll=*/48, options.smoke ? 20 : 400);
  std::printf("\nGRU step fwd+bwd (64->16, unroll 48):\n");
  std::printf("  fused     %10.1f ns/step  (%llu graph nodes)\n", step.fused_ns,
              static_cast<unsigned long long>(step.fused_nodes));
  std::printf("  reference %10.1f ns/step  (%llu graph nodes)\n", step.reference_ns,
              static_cast<unsigned long long>(step.reference_nodes));
  std::printf("  speedup   %9.2fx\n", step.speedup());

  const KernelFixture fixture(options.smoke ? 4 : 12, options.smoke ? 12 : 48);
  const TrainResult train = BenchTraining(fixture, options);
  std::printf("\nEnd-to-end (%zu windows, %zu epochs, best of %d):\n", fixture.windows,
              TrainConfig(options).epochs, options.smoke ? 1 : 5);
  PrintTimed("  train optimized", train.optimized_s, fixture.windows);
  PrintTimed("  train reference", train.reference_s, fixture.windows);
  std::printf("  train speedup %.2fx\n", train.train_speedup());
  PrintTimed("  inference optimized", train.infer_optimized_s, fixture.windows);
  PrintTimed("  inference reference", train.infer_reference_s, fixture.windows);
  std::printf("  inference speedup %.2fx\n", train.infer_speedup());
  std::printf("  epoch losses bit-identical: %s\n",
              train.optimized_losses == train.reference_losses ? "yes" : "NO");

  const ParallelResult par = BenchParallelTraining(fixture, options);
  std::printf("\nParallel harness (%zu jobs, %zu threads):\n", par.jobs, par.threads);
  if (par.skipped) {
    std::printf("  SKIP (1 hardware core): a parallel run here measures context-switch "
                "noise, not scaling\n");
  } else {
    PrintTimed("  sequential", par.sequential_s, 0);
    PrintTimed("  parallel", par.parallel_s, 0);
    std::printf("  speedup %.2fx\n", par.speedup());
  }

  WriteJson(options, fixture, gemm, batch_major, simd_rows, simd_check, quant, step, train,
            par);
  std::printf("\nwrote %s\n", options.out.c_str());
  // Exit nonzero on a bit-exactness break always; on a failed SIMD gemm
  // check only in full mode (smoke iteration counts are too noisy to gate).
  const bool simd_ok = options.smoke || simd_check.verdict != "FAIL";
  return train.optimized_losses == train.reference_losses && simd_ok ? 0 : 1;
}

}  // namespace
}  // namespace deeprest

int main(int argc, char** argv) {
  deeprest::BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      options.smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      options.out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }
  return deeprest::Run(options);
}
