// Self-healing scorecard (robustness extension): MTTR, availability, and
// post-recovery correctness of the serving stack under scripted chaos
// schedules, with and without the supervision layer.
//
// Each schedule (worker_stall, worker_crash, mixed) runs twice over the same
// deterministic fault timeline:
//
//   baseline    2 estimation workers, no health registry, no watchdog, no
//               hedging — the pre-supervision stack. A crashed worker stays
//               dead for the rest of the run.
//   supervised  the same service wired into a HealthRegistry, scanned by a
//               Watchdog-driven Supervisor (capped-exponential restarts,
//               budget 8, escalation to degraded mode), plus hedged
//               estimate requests to the sibling shard.
//
// The driver advances a logical window every window_len of wall time and
// submits a fixed batch of deadline-carrying estimate requests per window;
// the chaos schedule is keyed off that same window counter through the
// workers' fault hook (crash = thread exits, stall = the hook blocks for the
// scheduled magnitude). Scoring:
//
//   availability       fraction of requests resolving kOk within their
//                      deadline, measured from the first scheduled fault
//                      window to the end of the run (faults like a crash
//                      have effects that long outlive their start window)
//   MTTR               Supervisor incident clocks: fault (last heartbeat)
//                      -> recovery (heartbeats resume), per incident
//   bit-exactness      every kOk result — including everything served
//                      across restarts — must equal the unfaulted oracle
//                      (model->EstimateFromFeatures on the same features)
//                      bit for bit, plus a post-chaos probe request
//
// Full-mode gates: supervised availability-under-faults strictly beats the
// baseline on the crash-bearing schedules and in the mean; every supervised
// cell records a watchdog-led recovery (>=1 incident recovered, and a
// successful restart where a worker actually died); every recovered
// incident's MTTR is under kMttrBoundUs; zero correctness loss. A stalled
// worker cannot be killed from inside the process, so the stall-only
// schedule demonstrates detection + MTTR measurement (the sibling worker
// and the steal sweep carry availability in both modes) rather than an
// availability gap — that is the honest shape of stall recovery.
//
// Flags: --smoke (tiny timeline, structural gates only, for ctest)
//        --out <path> (JSON path; default BENCH_resilience.json)
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/serve/estimation_service.h"
#include "src/serve/supervisor.h"
#include "src/sim/chaos_schedule.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"

using namespace deeprest;  // NOLINT(build/namespaces)

namespace {

// Documented MTTR bound (full-mode gate): a crash recovers in roughly the
// stall threshold (100ms) plus a watchdog poll; a scheduled stall's clock
// runs for the stall itself (<=400ms per sweep). 2s covers both with slack
// for loaded machines without hiding a broken watchdog.
constexpr uint64_t kMttrBoundUs = 2000000;

// The same tiny three-component app the serve tests train on (see
// tests/serve/test_app.h; restated here because bench binaries do not link
// gtest): models train in milliseconds, so the bench measures the
// supervision layer, not the estimator.
Application TinyApp() {
  Application app("tiny");
  ComponentSpec frontend;
  frontend.name = "Frontend";
  frontend.cpu_baseline = 2.0;
  app.AddComponent(frontend);
  ComponentSpec worker;
  worker.name = "Worker";
  worker.cpu_baseline = 1.0;
  app.AddComponent(worker);
  ComponentSpec db;
  db.name = "DB";
  db.stateful = true;
  db.cpu_baseline = 1.5;
  db.initial_disk_mb = 100.0;
  db.write_noise_ops = 0.2;
  db.write_noise_kb = 2.0;
  app.AddComponent(db);

  CostTerm cpu_small;
  cpu_small.base = 0.05;
  CostTerm cpu_mid;
  cpu_mid.base = 0.12;
  CostTerm db_read_cpu;
  db_read_cpu.base = 0.10;
  CostTerm db_write_cpu;
  db_write_cpu.base = 0.08;
  CostTerm iops;
  iops.resource = ResourceKind::kWriteIops;
  iops.base = 1.0;
  CostTerm thr;
  thr.resource = ResourceKind::kWriteThroughput;
  thr.base = 1.5;

  ApiEndpoint read;
  read.name = "/read";
  OpNode read_db{"DB", "find", 1.0, "", {db_read_cpu}, {}};
  OpNode read_worker{"Worker", "get", 1.0, "", {cpu_mid}, {read_db}};
  read.root = OpNode{"Frontend", "read", 1.0, "", {cpu_small}, {read_worker}};
  app.AddApi(read);

  ApiEndpoint write;
  write.name = "/write";
  OpNode write_db{"DB", "insert", 1.0, "", {db_write_cpu, iops, thr}, {}};
  OpNode write_worker{"Worker", "put", 1.0, "", {cpu_mid}, {write_db}};
  write.root = OpNode{"Frontend", "write", 1.0, "", {cpu_small}, {write_worker}};
  app.AddApi(write);
  return app;
}

TrafficSeries RandomTraffic(size_t windows, uint64_t seed) {
  TrafficSeries series({"/read", "/write"}, windows);
  Rng rng(seed);
  for (size_t w = 0; w < windows; ++w) {
    series.set_rate(w, 0, rng.Uniform(10.0, 120.0));
    series.set_rate(w, 1, rng.Uniform(5.0, 60.0));
  }
  return series;
}

bool SameEstimates(const EstimateMap& a, const EstimateMap& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (const auto& [key, estimate] : a) {
    const auto it = b.find(key);
    if (it == b.end() || estimate.expected != it->second.expected ||
        estimate.lower != it->second.lower || estimate.upper != it->second.upper) {
      return false;
    }
  }
  return true;
}

// Bridges the window-addressed schedule into the service's per-sweep fault
// hook. The main thread advances `window` on the wall-clock timeline; the
// FaultInjector's own mutex makes the deal queries safe from every worker.
struct ChaosDriver {
  explicit ChaosDriver(const ChaosSchedule& schedule) : injector({.seed = 11}, schedule) {}

  WorkerFault Hook(size_t worker) {
    const size_t w = window.load(std::memory_order_acquire);
    if (injector.TakeCrash(w, static_cast<int>(worker))) {
      return WorkerFault::kCrash;
    }
    double stall_ms = 0.0;
    if (injector.TakeStall(w, static_cast<int>(worker), &stall_ms)) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(stall_ms));
      return WorkerFault::kStall;
    }
    return WorkerFault::kNone;
  }

  FaultInjector injector;
  std::atomic<size_t> window{0};
};

struct BenchParams {
  size_t windows = 14;
  size_t per_window = 6;
  std::chrono::milliseconds window_len{300};
  std::chrono::milliseconds timeout{250};
};

struct CellResult {
  // Client-side scoring.
  size_t submitted = 0;
  size_t ok = 0;
  size_t submitted_fault = 0;  // requests submitted at/after the first fault
  size_t ok_fault = 0;
  bool served_bit_exact = true;   // every kOk result matched the oracle
  bool post_recovery_ok = false;  // post-chaos probe served and bit-exact
  // Server-side accounting.
  ServiceCounters service;
  FaultCounters faults;
  // Supervision (supervised mode only).
  SupervisorCounters sup;
  uint64_t mttr_max_us = 0;
  uint64_t mttr_sum_us = 0;
  uint64_t detect_max_us = 0;
  bool degraded = false;

  double AvailabilityFault() const {
    return submitted_fault > 0 ? static_cast<double>(ok_fault) / submitted_fault : 1.0;
  }
  double AvailabilityOverall() const {
    return submitted > 0 ? static_cast<double>(ok) / submitted : 1.0;
  }
  bool AccountingHolds() const {
    return service.requests_submitted ==
           service.requests_served + service.requests_shed + service.requests_expired +
               service.requests_rejected + service.hedged_duplicates;
  }
};

CellResult RunCell(const DeepRestEstimator& model,
                   const std::vector<std::vector<float>>& features, const EstimateMap& oracle,
                   const ChaosSchedule& schedule, bool supervised, const BenchParams& p) {
  CellResult cell;
  ChaosDriver driver(schedule);
  size_t first_fault = p.windows;
  for (const ChaosEvent& event : schedule.events) {
    first_fault = std::min(first_fault, event.start_window);
  }

  ModelRegistry registry;
  IngestPipeline pipeline(model.features(), {.shards = 2});
  registry.Publish(model.Clone());

  HealthRegistry health;
  EstimationServiceConfig config;
  config.workers = 2;
  config.worker_fault_hook = [&driver](size_t worker) { return driver.Hook(worker); };
  if (supervised) {
    config.health = &health;
    // Must exceed the workers' 64ms max idle sweep wait, else healthy-idle
    // looks stale; crashes and the scheduled stalls both blow well past it.
    config.worker_stall_threshold_us = 100000;
    config.hedge.enabled = true;
    config.hedge.min_delay = std::chrono::milliseconds(1);
    config.hedge.max_delay = std::chrono::milliseconds(20);
  }
  EstimationService service(registry, pipeline, config);

  // Budget 8 rides out a full scheduled stall (restart attempts against a
  // live-but-wedged thread fail by design and burn budget) without
  // escalating; a permanent livelock would still exhaust it.
  SupervisorConfig sup_config;
  sup_config.base_backoff = std::chrono::milliseconds(10);
  sup_config.max_backoff = std::chrono::milliseconds(200);
  sup_config.restart_budget = 8;
  Supervisor supervisor(health, sup_config);
  Watchdog watchdog(supervisor, health, {});
  if (supervised) {
    supervisor.SetEscalationHandler(
        [&service](const std::string&) { service.SetDegraded(true); });
    for (size_t i = 0; i < config.workers; ++i) {
      const size_t id =
          health.Register("estimation-worker-" + std::to_string(i), 1).id();
      supervisor.Watch(id, [&service, i] { return service.RestartWorker(i); });
    }
    watchdog.Start();
  }

  for (size_t w = 0; w < p.windows; ++w) {
    const auto window_start = std::chrono::steady_clock::now();
    driver.window.store(w, std::memory_order_release);
    std::vector<std::future<EstimationService::EstimateResult>> futures;
    futures.reserve(p.per_window);
    for (size_t r = 0; r < p.per_window; ++r) {
      futures.push_back(service.SubmitFeatures(features, p.timeout));
    }
    const auto wait_deadline = window_start + p.timeout;
    const bool in_fault = w >= first_fault;
    for (auto& future : futures) {
      ++cell.submitted;
      if (in_fault) {
        ++cell.submitted_fault;
      }
      if (future.wait_until(wait_deadline) != std::future_status::ready) {
        continue;  // deadline missed; resolves later as expired/rejected
      }
      const auto result = future.get();
      if (result.status != RequestStatus::kOk) {
        continue;
      }
      ++cell.ok;
      if (in_fault) {
        ++cell.ok_fault;
      }
      if (!SameEstimates(result.estimates, oracle)) {
        cell.served_bit_exact = false;
      }
    }
    std::this_thread::sleep_until(window_start + p.window_len);
  }

  // Post-chaos probe: every scheduled fault is behind us, so a supervised
  // stack must serve this bit-exactly — the "recovers, and recovers to the
  // SAME answers" gate. The baseline gets the same probe (it documents the
  // outage a dead stack leaves behind) with a shorter leash.
  driver.window.store(p.windows, std::memory_order_release);
  auto probe = service.SubmitFeatures(features);
  const auto probe_wait = supervised ? std::chrono::seconds(30) : std::chrono::seconds(2);
  if (probe.wait_for(probe_wait) == std::future_status::ready) {
    const auto result = probe.get();
    cell.post_recovery_ok =
        result.status == RequestStatus::kOk && SameEstimates(result.estimates, oracle);
  }

  watchdog.Stop();
  service.Stop();
  cell.service = service.Counters();
  cell.faults = driver.injector.counters();
  cell.sup = supervisor.counters();
  cell.degraded = supervisor.degraded();
  for (const RecoveryIncident& incident : supervisor.Incidents()) {
    if (!incident.recovered()) {
      continue;
    }
    cell.mttr_max_us = std::max(cell.mttr_max_us, incident.mttr_us());
    cell.mttr_sum_us += incident.mttr_us();
    cell.detect_max_us = std::max(cell.detect_max_us, incident.detect_us());
  }
  return cell;
}

void WriteFaultCounters(std::ofstream& json, const FaultCounters& f, const char* indent) {
  json << indent << "\"faults\": {"
       << "\"traces_in\": " << f.traces_in << ", \"delivered\": " << f.delivered
       << ", \"dropped\": " << f.dropped << ", \"corrupted\": " << f.corrupted
       << ", \"truncated\": " << f.truncated << ", \"delayed\": " << f.delayed
       << ", \"duplicated\": " << f.duplicated << ", \"metrics_in\": " << f.metrics_in
       << ", \"metric_gaps\": " << f.metric_gaps << ", \"worker_stalls\": " << f.worker_stalls
       << ", \"worker_crashes\": " << f.worker_crashes << ", \"clock_skews\": " << f.clock_skews
       << ", \"alloc_fails\": " << f.alloc_fails << "}";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_resilience.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  PrintBenchHeader("self-healing scorecard (extension)",
                   "MTTR / availability / bit-exactness under scripted chaos schedules");

  BenchParams params;
  // Schedules are window-addressed (`kind@start[-end][:target][*magnitude]`);
  // magnitudes are stall milliseconds. The mixed schedule is the supervision
  // showcase: with worker 0 dead, only a supervised stack still has a
  // healthy sibling when worker 1 wedges.
  std::vector<std::pair<std::string, std::string>> specs;
  if (smoke) {
    params.windows = 8;
    params.per_window = 3;
    params.window_len = std::chrono::milliseconds(120);
    params.timeout = std::chrono::milliseconds(100);
    specs = {{"worker_stall", "worker_stall@2-5:0*150"},
             {"worker_crash", "worker_crash@2:0;worker_crash@2:1"},
             {"mixed", "worker_crash@2:0;worker_stall@3-5:1*150;worker_crash@6-8:1"}};
  } else {
    specs = {{"worker_stall", "worker_stall@3-7:0*400"},
             {"worker_crash", "worker_crash@3:0;worker_crash@3:1"},
             {"mixed", "worker_crash@3:0;worker_stall@5-9:1*400;worker_crash@10-12:1"}};
  }

  // One tiny model, cloned into each cell's registry; the oracle is the
  // unfaulted answer every served request must reproduce bit for bit.
  Application app = TinyApp();
  TraceCollector traces;
  MetricsStore metrics;
  const size_t learn_windows = 96;
  const size_t query_windows = 32;
  Simulator sim(app, {.seed = 1});
  sim.Run(RandomTraffic(learn_windows, 1), 0, &traces, &metrics);
  sim.Run(RandomTraffic(query_windows, 101), learn_windows, &traces, &metrics);
  EstimatorConfig estimator_config;
  estimator_config.hidden_dim = 8;
  estimator_config.epochs = 12;
  estimator_config.bptt_chunk = 24;
  estimator_config.seed = 3;
  auto model = std::make_unique<DeepRestEstimator>(estimator_config);
  std::printf("Training the estimator (%zu learn windows)...\n\n", learn_windows);
  model->Learn(traces, metrics, 0, learn_windows, app.MetricCatalog());
  const auto features =
      model->features().ExtractSeries(traces, learn_windows, learn_windows + query_windows);
  const EstimateMap oracle = model->EstimateFromFeatures(features);

  struct ScheduleRow {
    std::string name;
    std::string spec;
    ChaosSchedule schedule;
    CellResult baseline;
    CellResult supervised;
    bool has_crash = false;
  };
  std::vector<ScheduleRow> rows;
  for (const auto& [name, spec] : specs) {
    ScheduleRow row;
    row.name = name;
    row.spec = spec;
    std::string error;
    if (!ParseChaosSchedule(spec, &row.schedule, &error)) {
      std::printf("FATAL: bad schedule %s: %s\n", spec.c_str(), error.c_str());
      return 1;
    }
    for (const ChaosEvent& event : row.schedule.events) {
      row.has_crash = row.has_crash || event.kind == ChaosFaultKind::kWorkerCrash;
    }
    std::printf("schedule %-12s  %s\n", name.c_str(), spec.c_str());
    row.baseline = RunCell(*model, features, oracle, row.schedule, false, params);
    row.supervised = RunCell(*model, features, oracle, row.schedule, true, params);
    rows.push_back(std::move(row));
  }
  std::printf("\n");

  std::vector<std::vector<std::string>> table;
  for (const ScheduleRow& row : rows) {
    for (const bool supervised : {false, true}) {
      const CellResult& cell = supervised ? row.supervised : row.baseline;
      table.push_back(
          {row.name, supervised ? "supervised" : "baseline",
           FormatDouble(100.0 * cell.AvailabilityFault(), 1),
           FormatDouble(100.0 * cell.AvailabilityOverall(), 1),
           std::to_string(cell.service.requests_served),
           std::to_string(cell.service.requests_expired),
           std::to_string(cell.service.worker_restarts),
           std::to_string(cell.sup.incidents_recovered),
           supervised ? FormatDouble(cell.mttr_max_us / 1000.0, 0) : "-",
           cell.post_recovery_ok ? "yes" : "no"});
    }
  }
  std::printf("%s\n", RenderTable({"schedule", "mode", "avail@fault %", "avail %", "served",
                                   "expired", "restarts", "recovered", "MTTR max ms",
                                   "post-recovery"},
                                  table)
                          .c_str());

  // Structural gates (smoke and full): every cell completed the timeline,
  // the terminal-state accounting balances, and a fresh supervised stack
  // never degrades or loses bit-exactness while serving.
  bool structure_ok = true;
  for (const ScheduleRow& row : rows) {
    for (const CellResult* cell : {&row.baseline, &row.supervised}) {
      structure_ok = structure_ok && cell->submitted > 0 && cell->submitted_fault > 0 &&
                     cell->AccountingHolds() && cell->served_bit_exact;
    }
  }
  std::printf("structural check (all cells complete, accounting balances, served bit-exact): %s\n",
              structure_ok ? "PASS" : "FAIL");

  // Full-mode gates. Availability: strict win on every crash-bearing
  // schedule and in the mean (the stall-only schedule ties by design — see
  // the header comment). Recovery: watchdog-led, bit-exact, MTTR bounded.
  double base_mean = 0.0;
  double sup_mean = 0.0;
  bool availability_win = true;
  bool recovery_ok = true;
  bool mttr_ok = true;
  for (const ScheduleRow& row : rows) {
    base_mean += row.baseline.AvailabilityFault() / rows.size();
    sup_mean += row.supervised.AvailabilityFault() / rows.size();
    if (row.has_crash) {
      availability_win = availability_win && row.supervised.AvailabilityFault() >
                                                 row.baseline.AvailabilityFault();
    }
    const CellResult& sup = row.supervised;
    recovery_ok = recovery_ok && sup.sup.incidents_recovered >= 1 && sup.post_recovery_ok &&
                  (!row.has_crash || sup.sup.restarts_succeeded >= 1);
    if (sup.sup.incidents_recovered >= 1) {
      mttr_ok = mttr_ok && sup.mttr_max_us <= kMttrBoundUs;
    }
  }
  availability_win = availability_win && sup_mean > base_mean;
  std::printf("availability under faults: supervised mean %.1f%% vs baseline %.1f%% -> %s\n",
              100.0 * sup_mean, 100.0 * base_mean, availability_win ? "PASS" : "FAIL");
  std::printf("watchdog-led recovery, post-recovery bit-exact: %s\n",
              recovery_ok ? "PASS" : "FAIL");
  std::printf("MTTR within %.0fms bound: %s\n\n", kMttrBoundUs / 1000.0,
              mttr_ok ? "PASS" : "FAIL");

  // Machine-readable scorecard for regression tracking (tools/bench_diff).
  {
    FaultCounters total;
    std::ofstream json(out_path);
    json << "{\n  \"smoke\": " << (smoke ? 1 : 0) << ",\n";
    json << "  \"mttr_bound_us\": " << kMttrBoundUs << ",\n";
    json << "  \"schedules\": {\n";
    size_t si = 0;
    for (const ScheduleRow& row : rows) {
      json << "    \"" << row.name << "\": {\n";
      json << "      \"spec\": \"" << row.spec << "\",\n";
      size_t mi = 0;
      for (const bool supervised : {false, true}) {
        const CellResult& cell = supervised ? row.supervised : row.baseline;
        total.Merge(cell.faults);
        json << "      \"" << (supervised ? "supervised" : "baseline") << "\": {\n";
        json << "        \"availability_during_faults\": "
             << FormatDouble(cell.AvailabilityFault(), 4) << ",\n";
        json << "        \"availability_overall\": "
             << FormatDouble(cell.AvailabilityOverall(), 4) << ",\n";
        json << "        \"requests\": {\"submitted\": " << cell.service.requests_submitted
             << ", \"served\": " << cell.service.requests_served
             << ", \"shed\": " << cell.service.requests_shed
             << ", \"expired\": " << cell.service.requests_expired
             << ", \"rejected\": " << cell.service.requests_rejected
             << ", \"hedged_duplicates\": " << cell.service.hedged_duplicates << "},\n";
        json << "        \"hedges\": {\"launched\": " << cell.service.hedges_launched
             << ", \"won\": " << cell.service.hedges_won
             << ", \"cancelled\": " << cell.service.hedges_cancelled << "},\n";
        json << "        \"worker_restarts\": " << cell.service.worker_restarts << ",\n";
        json << "        \"post_recovery_bit_exact\": " << (cell.post_recovery_ok ? 1 : 0)
             << ",\n";
        if (supervised) {
          json << "        \"incidents\": {\"opened\": " << cell.sup.incidents_opened
               << ", \"recovered\": " << cell.sup.incidents_recovered
               << ", \"restarts_attempted\": " << cell.sup.restarts_attempted
               << ", \"restarts_succeeded\": " << cell.sup.restarts_succeeded
               << ", \"restarts_failed\": " << cell.sup.restarts_failed
               << ", \"escalations\": " << cell.sup.escalations << "},\n";
          json << "        \"mttr_max_us\": " << cell.mttr_max_us
               << ", \"mttr_mean_us\": "
               << (cell.sup.incidents_recovered > 0
                       ? cell.mttr_sum_us / cell.sup.incidents_recovered
                       : 0)
               << ", \"detect_max_us\": " << cell.detect_max_us << ",\n";
          json << "        \"degraded\": " << (cell.degraded ? 1 : 0) << ",\n";
        }
        WriteFaultCounters(json, cell.faults, "        ");
        json << "\n      }" << (++mi < 2 ? "," : "") << "\n";
      }
      json << "    }" << (++si < rows.size() ? "," : "") << "\n";
    }
    json << "  },\n";
    WriteFaultCounters(json, total, "  ");
    json << ",\n";
    json << "  \"availability_win\": " << (availability_win ? 1 : 0) << ",\n";
    json << "  \"recovery_ok\": " << (recovery_ok ? 1 : 0) << ",\n";
    json << "  \"mttr_ok\": " << (mttr_ok ? 1 : 0) << "\n";
    json << "}\n";
  }
  std::printf("wrote %s\n", out_path.c_str());

  // Smoke timelines are too short for the availability ordering to be
  // trustworthy on a loaded machine; the plumbing gates still hold.
  if (smoke) {
    return structure_ok ? 0 : 1;
  }
  return structure_ok && availability_win && recovery_ok && mttr_ok ? 0 : 1;
}
