// Paper section 6 (Scalability): per-expert model size, training time per
// expert, inference latency for one day of traffic, and the sub-linear growth
// of inference time with input dimensionality (paper: 10x and 100x larger
// inputs cost only 1.08x and 1.21x).
//
// Uses google-benchmark for the timing-sensitive parts.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "src/nn/serialize.h"

namespace deeprest {
namespace {

// Builds a synthetic single-expert workload with the given feature dim.
struct ScalingFixture {
  TraceCollector traces;
  MetricsStore metrics;
  size_t windows = 96;

  explicit ScalingFixture(size_t dim, uint64_t seed = 1) {
    // One API whose trace fans out to `dim` sibling operations under the
    // root, producing ~dim feature dimensions.
    Rng rng(seed);
    for (size_t w = 0; w < windows; ++w) {
      const int count = rng.NextPoisson(20.0);
      for (int i = 0; i < count; ++i) {
        Trace t(w * 1000 + static_cast<uint64_t>(i), "/fan");
        const SpanIndex root = t.AddSpan("Frontend", "fan", kNoParent);
        for (size_t d = 0; d < dim; ++d) {
          t.AddSpan("Svc" + std::to_string(d), "op", root);
        }
        traces.Collect(w, t);
      }
      metrics.Record({"Frontend", ResourceKind::kCpu}, w, 5.0 + 0.1 * rng.Uniform(0, 10));
    }
  }
};

DeepRestEstimator TrainSingleExpert(const ScalingFixture& fixture, size_t epochs = 2) {
  EstimatorConfig config;
  config.hidden_dim = 16;
  config.epochs = epochs;
  config.warm_start = false;
  DeepRestEstimator estimator(config);
  estimator.Learn(fixture.traces, fixture.metrics, 0, fixture.windows,
                  {{"Frontend", ResourceKind::kCpu}});
  return estimator;
}

void BM_InferenceOneDay(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  ScalingFixture fixture(dim);
  DeepRestEstimator estimator = TrainSingleExpert(fixture);
  const auto features = estimator.features().ExtractSeries(fixture.traces, 0, 48);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.EstimateFromFeatures(features));
  }
  state.counters["feature_dim"] = static_cast<double>(estimator.features().dimension());
}
BENCHMARK(BM_InferenceOneDay)->Arg(4)->Arg(40)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_TrainingPerExpertEpoch(benchmark::State& state) {
  ScalingFixture fixture(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrainSingleExpert(fixture, 1));
  }
}
BENCHMARK(BM_TrainingPerExpertEpoch)->Unit(benchmark::kMillisecond);

void BM_FeatureExtractionPerWindow(benchmark::State& state) {
  ScalingFixture fixture(16);
  FeatureExtractor extractor;
  extractor.LearnRange(fixture.traces, 0, fixture.windows);
  std::vector<const Trace*> window;
  for (const Trace& t : fixture.traces.TracesAt(0)) {
    window.push_back(&t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(window));
  }
}
BENCHMARK(BM_FeatureExtractionPerWindow)->Unit(benchmark::kMicrosecond);

void BM_TraceSynthesisPerRequest(benchmark::State& state) {
  ScalingFixture fixture(16);
  TraceSynthesizer synthesizer;
  synthesizer.LearnRange(fixture.traces, 0, fixture.windows);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesizer.Synthesize("/fan", rng));
  }
}
BENCHMARK(BM_TraceSynthesisPerRequest)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace deeprest

int main(int argc, char** argv) {
  deeprest::PrintBenchHeader(
      "sec. 6 scalability",
      "model size, train/inference cost, input-dimensionality scaling");

  // Static model-size numbers from the full social-network model.
  {
    deeprest::ExperimentHarness harness(deeprest::SocialBenchConfig());
    deeprest::DeepRestEstimator& estimator = harness.deeprest();
    const double total_params = static_cast<double>(estimator.TotalParameters());
    const double experts = static_cast<double>(estimator.expert_count());
    std::printf("Social-network model: %zu experts, %zu parameters total\n",
                estimator.expert_count(), estimator.TotalParameters());
    std::printf("  ~%.1f kB per expert (paper: 801.5 kB with H=128; ours uses H=%zu)\n",
                total_params / experts * sizeof(float) / 1024.0,
                harness.config().estimator.hidden_dim);
    if (estimator.train_seconds() > 0.0) {
      std::printf("  training: %.2f s total, %.3f s per expert (paper: 5.4 s/expert)\n",
                  estimator.train_seconds(), estimator.train_seconds() / experts);
    } else {
      std::printf("  training: loaded from cache (delete .deeprest_cache to re-measure)\n");
    }
    std::printf("\nInference-dimensionality claim (paper: 10x dims -> 1.08x time, 100x ->\n"
                "1.21x): compare BM_InferenceOneDay/4, /40 and /400 below. Exact ratios\n"
                "differ (our matvec is dense CPU code), but growth stays well below\n"
                "linear in the input dimensionality.\n\n");
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
