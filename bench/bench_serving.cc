// Serving-layer throughput and latency (extension; paper section 6 discusses
// estimation cost at production scale). Measures the online EstimationService
// over a batch-major on/off x worker-count x micro-batch grid. With
// batch_major off, every request replays the sequential reference path
// (warm-start replay + one GEMV per step); on, a batch of B requests starts
// from the cached warm state and runs as column-stacked GEMMs, so batch-major
// at batch=16 must beat the reference path by a wide margin at every worker
// count. A final run hot-swaps a fine-tuned model mid-flight and verifies no
// request observed torn weights: every result must be bit-identical to
// exactly one published version's single-threaded reference.
//
// Flags: --smoke (tiny config, correctness-only exit gates, for ctest)
//        --out <path> (JSON path; default BENCH_serving.json)
#include <chrono>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/serve/continual_learner.h"
#include "src/serve/estimation_service.h"
#include "src/serve/ingest_pipeline.h"
#include "src/serve/model_registry.h"

using namespace deeprest;  // NOLINT(build/namespaces)

namespace {

bool SameEstimates(const EstimateMap& a, const EstimateMap& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (const auto& [key, estimate] : a) {
    const auto it = b.find(key);
    if (it == b.end() || estimate.expected != it->second.expected ||
        estimate.lower != it->second.lower || estimate.upper != it->second.upper) {
      return false;
    }
  }
  return true;
}

struct CellResult {
  double requests_per_sec = 0.0;
  ServiceCounters counters;
};

// Injected overload: a burst far beyond serving capacity against a bounded
// queue with per-request deadlines. The service must shed or expire the
// excess instead of growing without limit, and every accepted result must be
// bit-identical to the single-threaded reference.
struct OverloadResult {
  size_t ok = 0;
  size_t shed = 0;
  size_t expired = 0;
  size_t torn = 0;
  double shed_rate = 0.0;
  ServiceCounters counters;
};

OverloadResult RunOverload(std::shared_ptr<const DeepRestEstimator> model,
                           const std::vector<std::vector<float>>& features,
                           size_t burst) {
  const EstimateMap reference = model->EstimateFromFeatures(features);
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));
  EstimationServiceConfig config;
  config.workers = 1;  // capacity pinned far below the burst
  config.max_batch = 4;
  config.max_queue = 8;
  config.shed_policy = ShedPolicy::kRejectNew;
  EstimationService service(registry, pipeline, config);

  std::vector<std::future<EstimationService::EstimateResult>> futures;
  futures.reserve(burst);
  for (size_t i = 0; i < burst; ++i) {
    // Every fourth request carries a tight deadline, so both shedding (queue
    // full) and expiry (deadline passed while queued) are exercised.
    const auto deadline =
        i % 4 == 3 ? std::chrono::milliseconds(1) : std::chrono::milliseconds(0);
    futures.push_back(service.SubmitFeatures(features, deadline));
  }
  OverloadResult result;
  for (auto& future : futures) {
    const auto r = future.get();
    switch (r.status) {
      case RequestStatus::kOk:
        ++result.ok;
        result.torn += SameEstimates(r.estimates, reference) ? 0 : 1;
        break;
      case RequestStatus::kShed:
        ++result.shed;
        break;
      case RequestStatus::kExpired:
        ++result.expired;
        break;
      default:
        ++result.torn;  // kRejectedStopped must not happen here
        break;
    }
  }
  result.shed_rate =
      static_cast<double>(result.shed + result.expired) / static_cast<double>(burst);
  result.counters = service.Counters();
  return result;
}

CellResult RunCell(std::shared_ptr<const DeepRestEstimator> model,
                   const std::vector<std::vector<float>>& features, bool batch_major,
                   size_t workers, size_t batch, size_t requests) {
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));
  EstimationServiceConfig config;
  config.workers = workers;
  config.max_batch = batch;
  config.batch_major = batch_major;
  EstimationService service(registry, pipeline, config);

  std::vector<std::future<EstimationService::EstimateResult>> futures;
  futures.reserve(requests);
  const WallTimer timer;
  for (size_t i = 0; i < requests; ++i) {
    futures.push_back(service.SubmitFeatures(features));
  }
  for (auto& future : futures) {
    (void)future.get();
  }
  const double seconds = timer.Seconds();
  CellResult result;
  result.requests_per_sec = static_cast<double>(requests) / seconds;
  result.counters = service.Counters();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  PrintBenchHeader("online serving (extension)",
                   "batch-major sharded estimation + hot-swap consistency");
  HarnessConfig config = SocialBenchConfig();
  config.learn_days = smoke ? 1 : 2;  // keep the warm-start replay bench-sized
  config.estimator.hidden_dim = 8;
  config.estimator.epochs = smoke ? 2 : 6;
  ExperimentHarness harness(config);

  std::printf("Training the serving model (%zu learn windows)...\n\n", harness.learn_windows());
  std::shared_ptr<const DeepRestEstimator> v1(harness.deeprest().Clone());

  // One fixed 8-window query. The reference path replays the learning-phase
  // history per request before stepping the 8 windows; the batch-major path
  // starts from the cached warm state and stacks the batch into GEMM columns
  // — the grid quantifies both wins separately.
  Rng rng(config.seed + 53);
  const auto query = harness.RunQuery(GenerateTraffic(harness.QuerySpec(1), rng));
  const auto features =
      v1->features().ExtractSeries(harness.traces(), query.from, query.from + 8);

  const size_t requests_per_cell = smoke ? 12 : 48;
  const std::vector<size_t> worker_grid = smoke ? std::vector<size_t>{1, 2}
                                                : std::vector<size_t>{1, 4, 8};
  const std::vector<size_t> batch_grid = {1, 16};
  struct GridCell {
    bool batch_major;
    size_t workers;
    size_t batch;
    CellResult result;
  };
  std::vector<GridCell> cells;
  std::vector<std::vector<std::string>> rows;
  for (const bool bm : {false, true}) {
    for (const size_t w : worker_grid) {
      for (const size_t b : batch_grid) {
        GridCell cell{bm, w, b, RunCell(v1, features, bm, w, b, requests_per_cell)};
        rows.push_back({bm ? "on" : "off", std::to_string(w), std::to_string(b),
                        FormatDouble(cell.result.requests_per_sec, 1),
                        FormatDouble(cell.result.counters.mean_batch_size, 2),
                        FormatDouble(cell.result.counters.p50_latency_ms, 1),
                        FormatDouble(cell.result.counters.p99_latency_ms, 1)});
        cells.push_back(std::move(cell));
      }
    }
  }
  std::printf(
      "%zu requests per cell, 8 query windows each:\n%s\n", requests_per_cell,
      RenderTable(
          {"batch-major", "workers", "max batch", "req/s", "mean batch", "p50 ms", "p99 ms"},
          rows)
          .c_str());

  const auto cell_rps = [&](bool bm, size_t w, size_t b) {
    for (const GridCell& cell : cells) {
      if (cell.batch_major == bm && cell.workers == w && cell.batch == b) {
        return cell.result.requests_per_sec;
      }
    }
    return 0.0;
  };
  const size_t max_workers = worker_grid.back();
  const double speedup_1w = cell_rps(false, 1, 16) > 0.0
                                ? cell_rps(true, 1, 16) / cell_rps(false, 1, 16)
                                : 0.0;
  const double worker_scaling = cell_rps(true, 1, 16) > 0.0
                                    ? cell_rps(true, max_workers, 16) / cell_rps(true, 1, 16)
                                    : 0.0;
  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("batch-major speedup at 1 worker, batch 16 (on vs off): %.2fx\n", speedup_1w);
  std::printf("worker scaling with batch-major on (1 -> %zu workers): %.2fx on %u cores\n\n",
              max_workers, worker_scaling, hardware);

  // The full curve, not just the endpoint ratio: per worker count with
  // batch-major on at batch 16, throughput and its ratio to the 1-worker
  // cell. Downstream tooling tracks the whole shape (a mid-grid plateau is
  // invisible in the endpoint scalar).
  struct ScalingPoint {
    size_t workers;
    double req_per_sec;
    double scaling;
  };
  std::vector<ScalingPoint> scaling_curve;
  for (const size_t w : worker_grid) {
    const double base = cell_rps(true, 1, 16);
    scaling_curve.push_back({w, cell_rps(true, w, 16),
                             base > 0.0 ? cell_rps(true, w, 16) / base : 0.0});
  }

  // Scalability verdict: more workers must never lose to one worker. Only
  // meaningful with real parallelism — on a 1-core host the workers time-share
  // and the ratio measures scheduler overhead, so the verdict is skipped.
  const bool scaling_applicable = hardware > 1;
  const bool scaling_ok = worker_scaling >= 1.0;
  std::printf("scalability check (1 -> %zu workers does not regress): %s\n\n", max_workers,
              !scaling_applicable ? "SKIP (1 hardware core)" : scaling_ok ? "PASS" : "FAIL");

  // Batch-major must beat batch=1 at every worker count (GEMM columns beat
  // one-at-a-time passes even with the warm replay already cached). The off
  // rows carry the per-request replay at every batch size, so no such win is
  // expected there; they exist as the baseline for speedup_1w.
  bool batching_wins = true;
  for (const size_t w : worker_grid) {
    if (cell_rps(true, w, 16) <= cell_rps(true, w, 1)) {
      batching_wins = false;
    }
  }
  std::printf("batching check (batch-major on: batch=16 beats batch=1 at every worker count): %s\n\n",
              batching_wins ? "PASS" : "FAIL");

  // Hot-swap consistency: publish a fine-tuned clone mid-run and verify no
  // request mixed weights from two versions.
  std::unique_ptr<DeepRestEstimator> v2 = v1->Clone();
  v2->ContinueLearning(harness.traces(), harness.metrics(), query.from, query.to, 1);
  const EstimateMap ref_v1 = v1->EstimateFromFeatures(features);
  const EstimateMap ref_v2 = v2->EstimateFromFeatures(features);

  ModelRegistry registry;
  IngestPipeline pipeline(v1->features(), {.shards = 2});
  registry.Publish(v1);
  // Two workers so the requests are claimed batch by batch: the swap lands
  // between batch pickups and both versions serve traffic.
  EstimationServiceConfig swap_config;
  swap_config.workers = 2;
  swap_config.max_batch = 8;
  EstimationService service(registry, pipeline, swap_config);

  const size_t kSwapRequests = smoke ? 32 : 64;
  std::vector<std::shared_future<EstimationService::EstimateResult>> futures;
  futures.reserve(kSwapRequests);
  for (size_t i = 0; i < kSwapRequests; ++i) {
    futures.push_back(service.SubmitFeatures(features).share());
  }
  // Swap once the first results are in flight: everything already batched
  // keeps v1, everything still queued picks up v2.
  (void)futures[kSwapRequests / 8].get();
  registry.Publish(std::move(v2));
  size_t torn = 0;
  size_t v1_count = 0;
  size_t v2_count = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    const bool matches_v1 = result.model_version == 1 && SameEstimates(result.estimates, ref_v1);
    const bool matches_v2 = result.model_version == 2 && SameEstimates(result.estimates, ref_v2);
    v1_count += matches_v1;
    v2_count += matches_v2;
    torn += !matches_v1 && !matches_v2;
  }
  std::printf("hot swap mid-run: %zu requests served by v1, %zu by v2, torn results: %zu\n\n",
              v1_count, v2_count, torn);

  // Overload protection: a burst against one worker and a queue of 8.
  // Healthy behavior is a high shed rate with bounded p99 on the accepted
  // requests — not an unbounded queue.
  const size_t kBurst = smoke ? 64 : 256;
  const OverloadResult overload = RunOverload(v1, features, kBurst);
  std::printf("injected overload (%zu-request burst, 1 worker, queue bound 8):\n%s\n", kBurst,
              RenderTable({"served", "shed", "expired", "shed rate", "p99 ms", "torn"},
                          {{std::to_string(overload.ok), std::to_string(overload.shed),
                            std::to_string(overload.expired),
                            FormatDouble(overload.shed_rate, 3),
                            FormatDouble(overload.counters.p99_latency_ms, 1),
                            std::to_string(overload.torn)}})
                  .c_str());
  const bool overload_ok = overload.shed > 0 && overload.torn == 0 &&
                           overload.ok + overload.shed + overload.expired == kBurst;
  std::printf("overload check (excess shed/expired, accepted results bit-exact): %s\n\n",
              overload_ok ? "PASS" : "FAIL");

  // Machine-readable summary for regression tracking (tools/bench_diff).
  {
    std::ofstream json(out_path);
    json << "{\n  \"smoke\": " << (smoke ? 1 : 0) << ",\n";
    json << "  \"hardware_concurrency\": " << hardware << ",\n";
    json << "  \"requests_per_cell\": " << requests_per_cell << ",\n";
    json << "  \"grid\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
      const GridCell& cell = cells[i];
      json << "    {\"batch_major\": " << (cell.batch_major ? 1 : 0)
           << ", \"workers\": " << cell.workers << ", \"max_batch\": " << cell.batch
           << ", \"req_per_sec\": " << FormatDouble(cell.result.requests_per_sec, 1)
           << ", \"mean_batch\": " << FormatDouble(cell.result.counters.mean_batch_size, 2)
           << ", \"p50_ms\": " << FormatDouble(cell.result.counters.p50_latency_ms, 1)
           << ", \"p99_ms\": " << FormatDouble(cell.result.counters.p99_latency_ms, 1) << "}"
           << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    json << "  \"batch_major_speedup_1w\": " << FormatDouble(speedup_1w, 2) << ",\n";
    json << "  \"worker_scaling\": " << FormatDouble(worker_scaling, 2) << ",\n";
    json << "  \"worker_scaling_curve\": [\n";
    for (size_t i = 0; i < scaling_curve.size(); ++i) {
      const ScalingPoint& p = scaling_curve[i];
      json << "    {\"workers\": " << p.workers
           << ", \"req_per_sec\": " << FormatDouble(p.req_per_sec, 1)
           << ", \"scaling\": " << FormatDouble(p.scaling, 2) << "}"
           << (i + 1 < scaling_curve.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    json << "  \"hot_swap\": {\"v1_served\": " << v1_count << ", \"v2_served\": " << v2_count
         << ", \"torn\": " << torn << "},\n";
    json << "  \"overload\": {\"burst\": " << kBurst << ", \"served\": " << overload.ok
         << ", \"shed\": " << overload.shed << ", \"expired\": " << overload.expired
         << ", \"shed_rate\": " << FormatDouble(overload.shed_rate, 4)
         << ", \"p99_ms\": " << FormatDouble(overload.counters.p99_latency_ms, 3)
         << ", \"torn\": " << overload.torn << "}\n";
    json << "}\n";
  }
  std::printf("wrote %s\n", out_path.c_str());

  // Smoke runs gate on correctness only (tiny configs make the perf ratios
  // noisy); full runs additionally require the batch-major win, plus the
  // scalability verdict when the host actually has parallel cores.
  const bool correctness_ok = torn == 0 && overload_ok;
  if (smoke) {
    return correctness_ok ? 0 : 1;
  }
  return correctness_ok && batching_wins && speedup_1w >= 3.0 &&
                 (!scaling_applicable || scaling_ok)
             ? 0
             : 1;
}
