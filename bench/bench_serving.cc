// Serving-layer throughput and latency (extension; paper section 6 discusses
// estimation cost at production scale). Measures the online EstimationService
// over a batch-major on/off x worker-count x micro-batch grid. With
// batch_major off, every request replays the sequential reference path
// (warm-start replay + one GEMV per step); on, a batch of B requests starts
// from the cached warm state and runs as column-stacked GEMMs, so batch-major
// at batch=16 must beat the reference path by a wide margin at every worker
// count. A final run hot-swaps a fine-tuned model mid-flight and verifies no
// request observed torn weights: every result must be bit-identical to
// exactly one published version's single-threaded reference.
//
// A soft-memory leg serves 10^6 distinct stream contexts through the tiered
// StateCache inside a fixed budget that could not hold them uncompressed,
// under Zipf-skewed popularity, and compares tail latency against an
// unbounded cache; a streamful end-to-end leg proves budgeted serving stays
// bit-identical to direct cursor resume.
//
// Flags: --smoke (tiny config, correctness-only exit gates, for ctest)
//        --out <path> (JSON path; default BENCH_serving.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/nn/quant.h"
#include "src/serve/continual_learner.h"
#include "src/serve/estimation_service.h"
#include "src/serve/ingest_pipeline.h"
#include "src/serve/model_registry.h"
#include "src/serve/state_cache.h"

using namespace deeprest;  // NOLINT(build/namespaces)

namespace {

bool SameEstimates(const EstimateMap& a, const EstimateMap& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (const auto& [key, estimate] : a) {
    const auto it = b.find(key);
    if (it == b.end() || estimate.expected != it->second.expected ||
        estimate.lower != it->second.lower || estimate.upper != it->second.upper) {
      return false;
    }
  }
  return true;
}

struct CellResult {
  double requests_per_sec = 0.0;
  ServiceCounters counters;
};

// Injected overload: a burst far beyond serving capacity against a bounded
// queue with per-request deadlines. The service must shed or expire the
// excess instead of growing without limit, and every accepted result must be
// bit-identical to the single-threaded reference.
struct OverloadResult {
  size_t ok = 0;
  size_t shed = 0;
  size_t expired = 0;
  size_t torn = 0;
  double shed_rate = 0.0;
  ServiceCounters counters;
};

OverloadResult RunOverload(std::shared_ptr<const DeepRestEstimator> model,
                           const std::vector<std::vector<float>>& features,
                           size_t burst) {
  const EstimateMap reference = model->EstimateFromFeatures(features);
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));
  EstimationServiceConfig config;
  config.workers = 1;  // capacity pinned far below the burst
  config.max_batch = 4;
  config.max_queue = 8;
  config.shed_policy = ShedPolicy::kRejectNew;
  EstimationService service(registry, pipeline, config);

  std::vector<std::future<EstimationService::EstimateResult>> futures;
  futures.reserve(burst);
  for (size_t i = 0; i < burst; ++i) {
    // Every fourth request carries a tight deadline, so both shedding (queue
    // full) and expiry (deadline passed while queued) are exercised.
    const auto deadline =
        i % 4 == 3 ? std::chrono::milliseconds(1) : std::chrono::milliseconds(0);
    futures.push_back(service.SubmitFeatures(features, deadline));
  }
  OverloadResult result;
  for (auto& future : futures) {
    const auto r = future.get();
    switch (r.status) {
      case RequestStatus::kOk:
        ++result.ok;
        result.torn += SameEstimates(r.estimates, reference) ? 0 : 1;
        break;
      case RequestStatus::kShed:
        ++result.shed;
        break;
      case RequestStatus::kExpired:
        ++result.expired;
        break;
      default:
        ++result.torn;  // kRejectedStopped must not happen here
        break;
    }
  }
  result.shed_rate =
      static_cast<double>(result.shed + result.expired) / static_cast<double>(burst);
  result.counters = service.Counters();
  return result;
}

// --- Soft-memory tiered state leg -----------------------------------------

// Deterministic per-context payload: what the recompute fallback rebuilds and
// what every access verifies against (exact, or fp16-rounded after a
// compressed cold round trip).
std::vector<float> ContextPayload(uint64_t key, size_t floats) {
  std::vector<float> payload(floats);
  uint64_t x = key * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL;
  for (size_t i = 0; i < floats; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    payload[i] =
        static_cast<float>(static_cast<double>(x >> 11) / 9007199254740992.0);
  }
  return payload;
}

struct TierResult {
  size_t contexts = 0;
  size_t accesses = 0;
  double hit_rate = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  size_t resident_bytes = 0;
  size_t wrong_values = 0;
  StateCacheCounters counters;
};

// Serves every distinct context once (first touch recomputes and installs),
// then runs a Zipf(s=1)-skewed re-access phase via the inverse CDF
// k = floor(exp(u ln N)), timing each access and verifying its payload.
TierResult RunContextLeg(StateCache& cache, size_t contexts, size_t accesses,
                         size_t floats, uint64_t seed) {
  cache.SetRecompute([floats](uint64_t key, StreamState* out) {
    out->hidden = ContextPayload(key, floats);
    out->steps = key;
    return true;
  });
  for (uint64_t key = 0; key < contexts; ++key) {
    StateCache::Lease lease = cache.Acquire(key);
  }
  const StateCacheCounters before = cache.Counters();
  Rng rng(seed);
  const double ln_n = std::log(static_cast<double>(contexts));
  std::vector<double> lat_us;
  lat_us.reserve(accesses);
  TierResult r;
  r.contexts = contexts;
  r.accesses = accesses;
  for (size_t i = 0; i < accesses; ++i) {
    uint64_t key = static_cast<uint64_t>(std::exp(rng.NextDouble() * ln_n));
    if (key >= contexts) {
      key = contexts - 1;
    }
    const auto t0 = std::chrono::steady_clock::now();
    bool ok;
    {
      StateCache::Lease lease = cache.Acquire(key);
      ok = lease.valid() && lease.state().hidden.size() == floats;
      if (ok) {
        const std::vector<float> expected = ContextPayload(key, floats);
        for (size_t j = 0; j < floats; ++j) {
          const float exact = expected[j];
          const float got = lease.state().hidden[j];
          if (got != exact && got != HalfToFloat(FloatToHalf(exact))) {
            ok = false;
            break;
          }
        }
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    r.wrong_values += ok ? 0 : 1;
    lat_us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  const StateCacheCounters after = cache.Counters();
  r.hit_rate = static_cast<double>((after.hot_hits - before.hot_hits) +
                                   (after.cold_hits - before.cold_hits)) /
               static_cast<double>(accesses);
  std::sort(lat_us.begin(), lat_us.end());
  r.p50_us = lat_us[lat_us.size() / 2];
  r.p99_us = lat_us[std::min(lat_us.size() - 1, (lat_us.size() * 99) / 100)];
  r.resident_bytes = after.hot_resident_bytes + after.cold_resident_bytes;
  r.counters = after;
  return r;
}

// Cold round trip with compression off (disk slab) must be bit-exact: a hot
// tier below one entry forces every release through the slab.
bool DiskRoundTripExact(const std::string& slab_path) {
  StateCacheConfig config;
  config.hot_bytes = 64;
  config.cold_tier = ColdTier::kDisk;
  config.slab_path = slab_path;
  config.slab_slot_payload_bytes = 1 << 12;
  config.slab_slots = 256;
  StateCache cache(config);
  if (!cache.disk_ok()) {
    return false;
  }
  constexpr size_t kKeys = 64;
  constexpr size_t kFloats = 48;
  for (uint64_t key = 0; key < kKeys; ++key) {
    StateCache::Lease lease = cache.AcquireOrCreate(key);
    lease.state().hidden = ContextPayload(key, kFloats);
    lease.state().steps = key;
  }
  bool exact = cache.Counters().spills >= kKeys;
  for (uint64_t key = 0; key < kKeys; ++key) {
    StateCache::Lease lease = cache.Acquire(key);
    exact = exact && lease.valid() && lease.state().steps == key &&
            lease.state().hidden == ContextPayload(key, kFloats);
  }
  return exact;
}

// --- Streamful end-to-end leg ----------------------------------------------

std::vector<std::vector<std::vector<float>>> SplitSeries(
    const std::vector<std::vector<float>>& series, size_t chunks) {
  std::vector<std::vector<std::vector<float>>> out(chunks);
  const size_t per = (series.size() + chunks - 1) / chunks;
  for (size_t i = 0; i < series.size(); ++i) {
    out[std::min(i / per, chunks - 1)].push_back(series[i]);
  }
  return out;
}

struct StreamLegResult {
  size_t streams = 0;
  size_t chunks = 0;
  size_t requests = 0;
  size_t mismatches = 0;
  double req_per_sec = 0.0;
  ServiceCounters counters;
};

// Many concurrent streams consume the same chunked series through a budgeted
// cache whose hot tier cannot hold them all, so states round-trip through the
// disk slab between requests. Every chunk result must be bit-identical to the
// direct EstimateFromFeaturesBatchResume cursor walk.
StreamLegResult RunStreamLeg(std::shared_ptr<const DeepRestEstimator> model,
                             const std::vector<std::vector<float>>& features,
                             StateCache& cache, size_t streams) {
  const auto chunks = SplitSeries(features, 4);
  DeepRestEstimator::StreamCursor cursor;
  std::vector<EstimateMap> expected;
  expected.reserve(chunks.size());
  for (const auto& chunk : chunks) {
    expected.push_back(
        model->EstimateFromFeaturesBatchResume({&chunk}, {&cursor})[0]);
  }

  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));
  EstimationServiceConfig config;
  config.workers = 2;
  config.max_batch = 8;
  config.stream_states = &cache;
  EstimationService service(registry, pipeline, config);

  StreamLegResult r;
  r.streams = streams;
  r.chunks = chunks.size();
  const WallTimer timer;
  for (size_t c = 0; c < chunks.size(); ++c) {
    std::vector<std::future<EstimationService::EstimateResult>> futures;
    futures.reserve(streams);
    for (size_t s = 0; s < streams; ++s) {
      futures.push_back(service.SubmitStreamFeatures(1000 + s, chunks[c]));
    }
    for (auto& future : futures) {
      const auto result = future.get();
      ++r.requests;
      if (result.status != RequestStatus::kOk ||
          !SameEstimates(result.estimates, expected[c])) {
        ++r.mismatches;
      }
    }
  }
  r.req_per_sec = static_cast<double>(r.requests) / timer.Seconds();
  r.counters = service.Counters();
  service.Stop();
  return r;
}

CellResult RunCell(std::shared_ptr<const DeepRestEstimator> model,
                   const std::vector<std::vector<float>>& features, bool batch_major,
                   size_t workers, size_t batch, size_t requests) {
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));
  EstimationServiceConfig config;
  config.workers = workers;
  config.max_batch = batch;
  config.batch_major = batch_major;
  EstimationService service(registry, pipeline, config);

  std::vector<std::future<EstimationService::EstimateResult>> futures;
  futures.reserve(requests);
  const WallTimer timer;
  for (size_t i = 0; i < requests; ++i) {
    futures.push_back(service.SubmitFeatures(features));
  }
  for (auto& future : futures) {
    (void)future.get();
  }
  const double seconds = timer.Seconds();
  CellResult result;
  result.requests_per_sec = static_cast<double>(requests) / seconds;
  result.counters = service.Counters();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  PrintBenchHeader("online serving (extension)",
                   "batch-major sharded estimation + hot-swap consistency");
  HarnessConfig config = SocialBenchConfig();
  config.learn_days = smoke ? 1 : 2;  // keep the warm-start replay bench-sized
  config.estimator.hidden_dim = 8;
  config.estimator.epochs = smoke ? 2 : 6;
  ExperimentHarness harness(config);

  std::printf("Training the serving model (%zu learn windows)...\n\n", harness.learn_windows());
  std::shared_ptr<const DeepRestEstimator> v1(harness.deeprest().Clone());

  // One fixed 8-window query. The reference path replays the learning-phase
  // history per request before stepping the 8 windows; the batch-major path
  // starts from the cached warm state and stacks the batch into GEMM columns
  // — the grid quantifies both wins separately.
  Rng rng(config.seed + 53);
  const auto query = harness.RunQuery(GenerateTraffic(harness.QuerySpec(1), rng));
  const auto features =
      v1->features().ExtractSeries(harness.traces(), query.from, query.from + 8);

  const size_t requests_per_cell = smoke ? 12 : 48;
  const std::vector<size_t> worker_grid = smoke ? std::vector<size_t>{1, 2}
                                                : std::vector<size_t>{1, 4, 8};
  const std::vector<size_t> batch_grid = {1, 16};
  struct GridCell {
    bool batch_major;
    size_t workers;
    size_t batch;
    CellResult result;
  };
  std::vector<GridCell> cells;
  std::vector<std::vector<std::string>> rows;
  for (const bool bm : {false, true}) {
    for (const size_t w : worker_grid) {
      for (const size_t b : batch_grid) {
        GridCell cell{bm, w, b, RunCell(v1, features, bm, w, b, requests_per_cell)};
        rows.push_back({bm ? "on" : "off", std::to_string(w), std::to_string(b),
                        FormatDouble(cell.result.requests_per_sec, 1),
                        FormatDouble(cell.result.counters.mean_batch_size, 2),
                        FormatDouble(cell.result.counters.p50_latency_ms, 1),
                        FormatDouble(cell.result.counters.p99_latency_ms, 1)});
        cells.push_back(std::move(cell));
      }
    }
  }
  std::printf(
      "%zu requests per cell, 8 query windows each:\n%s\n", requests_per_cell,
      RenderTable(
          {"batch-major", "workers", "max batch", "req/s", "mean batch", "p50 ms", "p99 ms"},
          rows)
          .c_str());

  const auto cell_rps = [&](bool bm, size_t w, size_t b) {
    for (const GridCell& cell : cells) {
      if (cell.batch_major == bm && cell.workers == w && cell.batch == b) {
        return cell.result.requests_per_sec;
      }
    }
    return 0.0;
  };
  const size_t max_workers = worker_grid.back();
  const double speedup_1w = cell_rps(false, 1, 16) > 0.0
                                ? cell_rps(true, 1, 16) / cell_rps(false, 1, 16)
                                : 0.0;
  const double worker_scaling = cell_rps(true, 1, 16) > 0.0
                                    ? cell_rps(true, max_workers, 16) / cell_rps(true, 1, 16)
                                    : 0.0;
  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("batch-major speedup at 1 worker, batch 16 (on vs off): %.2fx\n", speedup_1w);
  std::printf("worker scaling with batch-major on (1 -> %zu workers): %.2fx on %u cores\n\n",
              max_workers, worker_scaling, hardware);

  // The full curve, not just the endpoint ratio: per worker count with
  // batch-major on at batch 16, throughput and its ratio to the 1-worker
  // cell. Downstream tooling tracks the whole shape (a mid-grid plateau is
  // invisible in the endpoint scalar).
  struct ScalingPoint {
    size_t workers;
    double req_per_sec;
    double scaling;
  };
  std::vector<ScalingPoint> scaling_curve;
  for (const size_t w : worker_grid) {
    const double base = cell_rps(true, 1, 16);
    scaling_curve.push_back({w, cell_rps(true, w, 16),
                             base > 0.0 ? cell_rps(true, w, 16) / base : 0.0});
  }

  // Scalability verdict: more workers must never lose to one worker. Only
  // meaningful with real parallelism — on a 1-core host the workers time-share
  // and the ratio measures scheduler overhead, so the verdict is skipped.
  const bool scaling_applicable = hardware > 1;
  const bool scaling_ok = worker_scaling >= 1.0;
  std::printf("scalability check (1 -> %zu workers does not regress): %s\n\n", max_workers,
              !scaling_applicable ? "SKIP (1 hardware core)" : scaling_ok ? "PASS" : "FAIL");

  // Batch-major must beat batch=1 at every worker count (GEMM columns beat
  // one-at-a-time passes even with the warm replay already cached). The off
  // rows carry the per-request replay at every batch size, so no such win is
  // expected there; they exist as the baseline for speedup_1w.
  bool batching_wins = true;
  for (const size_t w : worker_grid) {
    if (cell_rps(true, w, 16) <= cell_rps(true, w, 1)) {
      batching_wins = false;
    }
  }
  std::printf("batching check (batch-major on: batch=16 beats batch=1 at every worker count): %s\n\n",
              batching_wins ? "PASS" : "FAIL");

  // Hot-swap consistency: publish a fine-tuned clone mid-run and verify no
  // request mixed weights from two versions.
  std::unique_ptr<DeepRestEstimator> v2 = v1->Clone();
  v2->ContinueLearning(harness.traces(), harness.metrics(), query.from, query.to, 1);
  const EstimateMap ref_v1 = v1->EstimateFromFeatures(features);
  const EstimateMap ref_v2 = v2->EstimateFromFeatures(features);

  ModelRegistry registry;
  IngestPipeline pipeline(v1->features(), {.shards = 2});
  registry.Publish(v1);
  // Two workers so the requests are claimed batch by batch: the swap lands
  // between batch pickups and both versions serve traffic.
  EstimationServiceConfig swap_config;
  swap_config.workers = 2;
  swap_config.max_batch = 8;
  EstimationService service(registry, pipeline, swap_config);

  const size_t kSwapRequests = smoke ? 32 : 64;
  std::vector<std::shared_future<EstimationService::EstimateResult>> futures;
  futures.reserve(kSwapRequests);
  for (size_t i = 0; i < kSwapRequests; ++i) {
    futures.push_back(service.SubmitFeatures(features).share());
  }
  // Swap once the first results are in flight: everything already batched
  // keeps v1, everything still queued picks up v2.
  (void)futures[kSwapRequests / 8].get();
  registry.Publish(std::move(v2));
  size_t torn = 0;
  size_t v1_count = 0;
  size_t v2_count = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    const bool matches_v1 = result.model_version == 1 && SameEstimates(result.estimates, ref_v1);
    const bool matches_v2 = result.model_version == 2 && SameEstimates(result.estimates, ref_v2);
    v1_count += matches_v1;
    v2_count += matches_v2;
    torn += !matches_v1 && !matches_v2;
  }
  std::printf("hot swap mid-run: %zu requests served by v1, %zu by v2, torn results: %zu\n\n",
              v1_count, v2_count, torn);

  // Overload protection: a burst against one worker and a queue of 8.
  // Healthy behavior is a high shed rate with bounded p99 on the accepted
  // requests — not an unbounded queue.
  const size_t kBurst = smoke ? 64 : 256;
  const OverloadResult overload = RunOverload(v1, features, kBurst);
  std::printf("injected overload (%zu-request burst, 1 worker, queue bound 8):\n%s\n", kBurst,
              RenderTable({"served", "shed", "expired", "shed rate", "p99 ms", "torn"},
                          {{std::to_string(overload.ok), std::to_string(overload.shed),
                            std::to_string(overload.expired),
                            FormatDouble(overload.shed_rate, 3),
                            FormatDouble(overload.counters.p99_latency_ms, 1),
                            std::to_string(overload.torn)}})
                  .c_str());
  const bool overload_ok = overload.shed > 0 && overload.torn == 0 &&
                           overload.ok + overload.shed + overload.expired == kBurst;
  std::printf("overload check (excess shed/expired, accepted results bit-exact): %s\n\n",
              overload_ok ? "PASS" : "FAIL");

  // Soft-memory tiered state: N distinct stream contexts under a fixed RAM
  // budget that could not hold them uncompressed (hot fp32 halves, cold fp16
  // halves), Zipf-skewed popularity, recompute on miss. The unbounded
  // baseline holds everything hot — its resident footprint is the proof the
  // budget is real, its latencies the regression yardstick.
  const size_t kContexts = smoke ? 20000 : 1000000;
  const size_t kZipfAccesses = smoke ? 40000 : 1000000;
  const size_t kStateFloats = 32;
  const size_t budget_bytes = smoke ? (size_t{1} << 19) : (size_t{32} << 20);
  MemoryBudget budget(budget_bytes);
  StateCacheConfig tiered_config;
  tiered_config.hot_bytes = budget_bytes / 2;
  tiered_config.cold_tier = ColdTier::kFp16;
  tiered_config.cold_bytes = budget_bytes / 2;
  tiered_config.budget = &budget;
  TierResult tier;
  bool gauge_balanced = false;
  {
    StateCache tiered_cache(tiered_config);
    tier = RunContextLeg(tiered_cache, kContexts, kZipfAccesses, kStateFloats,
                         config.seed + 71);
    gauge_balanced = budget.used() == tier.resident_bytes;
  }
  gauge_balanced = gauge_balanced && budget.used() == 0;  // destructor returned all

  StateCacheConfig unbounded_config;
  unbounded_config.hot_bytes = ~size_t{0} / 2;
  unbounded_config.cold_tier = ColdTier::kRecompute;
  StateCache unbounded_cache(unbounded_config);
  const TierResult baseline = RunContextLeg(unbounded_cache, kContexts, kZipfAccesses,
                                            kStateFloats, config.seed + 71);

  std::printf(
      "soft-memory tiered state (%zu contexts, %zu Zipf accesses, budget %.1f MB):\n%s\n",
      kContexts, kZipfAccesses, static_cast<double>(budget_bytes) / (1 << 20),
      RenderTable({"cache", "resident MB", "hit rate", "p50 us", "p99 us", "evict",
                   "recompute", "wrong"},
                  {{"budgeted",
                    FormatDouble(static_cast<double>(tier.resident_bytes) / (1 << 20), 2),
                    FormatDouble(tier.hit_rate, 3), FormatDouble(tier.p50_us, 1),
                    FormatDouble(tier.p99_us, 1), std::to_string(tier.counters.evictions),
                    std::to_string(tier.counters.recomputes),
                    std::to_string(tier.wrong_values)},
                   {"unbounded",
                    FormatDouble(static_cast<double>(baseline.resident_bytes) / (1 << 20), 2),
                    FormatDouble(baseline.hit_rate, 3), FormatDouble(baseline.p50_us, 1),
                    FormatDouble(baseline.p99_us, 1),
                    std::to_string(baseline.counters.evictions),
                    std::to_string(baseline.counters.recomputes),
                    std::to_string(baseline.wrong_values)}})
          .c_str());
  const bool under_budget = tier.resident_bytes <= budget_bytes;
  const bool budget_is_real = baseline.resident_bytes > budget_bytes;
  const bool disk_exact = DiskRoundTripExact(out_path + ".slab");
  std::remove((out_path + ".slab").c_str());
  const bool tier_values_ok = tier.wrong_values == 0 && baseline.wrong_values == 0;
  // Tail regression bound: misses recompute and promotions decode fp16, so
  // the budgeted p99 may cost more than an all-hot hit — but boundedly so.
  const double p99_bound = std::max(50.0, 25.0 * baseline.p99_us);
  const bool tail_bounded = tier.p99_us <= p99_bound;
  const bool tier_ok =
      under_budget && budget_is_real && tier_values_ok && disk_exact && gauge_balanced;
  std::printf(
      "tiered-state check (under budget, baseline would not fit, values exact-or-fp16, "
      "disk round trip bit-exact, gauge balanced): %s\n",
      tier_ok ? "PASS" : "FAIL");
  std::printf("tail check (budgeted p99 %.1f us <= max(50 us, 25x unbounded p99 %.1f us)): %s\n\n",
              tier.p99_us, baseline.p99_us, tail_bounded ? "PASS" : "FAIL");

  // Streamful serving end to end: budgeted cache with a disk cold tier too
  // small to keep every stream hot, results gated bit-identical to direct
  // cursor resume.
  const size_t kStreams = smoke ? 8 : 32;
  StateCacheConfig stream_cache_config;
  stream_cache_config.hot_bytes = 1024;  // a couple of streams at most
  stream_cache_config.cold_tier = ColdTier::kDisk;
  stream_cache_config.slab_path = out_path + ".stream_slab";
  stream_cache_config.slab_slot_payload_bytes = 1 << 14;
  stream_cache_config.slab_slots = 1024;
  StateCache stream_cache(stream_cache_config);
  const StreamLegResult stream_leg =
      RunStreamLeg(v1, features, stream_cache, kStreams);
  std::remove(stream_cache_config.slab_path.c_str());
  std::printf(
      "streamful serving (%zu streams x %zu chunks through a %zu-byte hot tier + disk slab):\n%s\n",
      stream_leg.streams, stream_leg.chunks, stream_cache_config.hot_bytes,
      RenderTable({"requests", "req/s", "p99 ms", "spills", "cold hits", "mismatches"},
                  {{std::to_string(stream_leg.requests),
                    FormatDouble(stream_leg.req_per_sec, 1),
                    FormatDouble(stream_leg.counters.p99_latency_ms, 1),
                    std::to_string(stream_leg.counters.state_spills),
                    std::to_string(stream_leg.counters.state_cold_hits),
                    std::to_string(stream_leg.mismatches)}})
          .c_str());
  const bool stream_ok = stream_leg.mismatches == 0 &&
                         stream_leg.counters.state_spills > 0 &&
                         stream_leg.counters.state_cold_hits > 0;
  std::printf(
      "stream check (bit-identical to direct resume, states actually tiered): %s\n\n",
      stream_ok ? "PASS" : "FAIL");

  // Machine-readable summary for regression tracking (tools/bench_diff).
  {
    std::ofstream json(out_path);
    json << "{\n  \"smoke\": " << (smoke ? 1 : 0) << ",\n";
    json << "  \"hardware_concurrency\": " << hardware << ",\n";
    json << "  \"requests_per_cell\": " << requests_per_cell << ",\n";
    json << "  \"grid\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
      const GridCell& cell = cells[i];
      json << "    {\"batch_major\": " << (cell.batch_major ? 1 : 0)
           << ", \"workers\": " << cell.workers << ", \"max_batch\": " << cell.batch
           << ", \"req_per_sec\": " << FormatDouble(cell.result.requests_per_sec, 1)
           << ", \"mean_batch\": " << FormatDouble(cell.result.counters.mean_batch_size, 2)
           << ", \"p50_ms\": " << FormatDouble(cell.result.counters.p50_latency_ms, 1)
           << ", \"p99_ms\": " << FormatDouble(cell.result.counters.p99_latency_ms, 1) << "}"
           << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    json << "  \"batch_major_speedup_1w\": " << FormatDouble(speedup_1w, 2) << ",\n";
    json << "  \"worker_scaling\": " << FormatDouble(worker_scaling, 2) << ",\n";
    json << "  \"worker_scaling_curve\": [\n";
    for (size_t i = 0; i < scaling_curve.size(); ++i) {
      const ScalingPoint& p = scaling_curve[i];
      json << "    {\"workers\": " << p.workers
           << ", \"req_per_sec\": " << FormatDouble(p.req_per_sec, 1)
           << ", \"scaling\": " << FormatDouble(p.scaling, 2) << "}"
           << (i + 1 < scaling_curve.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    json << "  \"hot_swap\": {\"v1_served\": " << v1_count << ", \"v2_served\": " << v2_count
         << ", \"torn\": " << torn << "},\n";
    json << "  \"overload\": {\"burst\": " << kBurst << ", \"served\": " << overload.ok
         << ", \"shed\": " << overload.shed << ", \"expired\": " << overload.expired
         << ", \"shed_rate\": " << FormatDouble(overload.shed_rate, 4)
         << ", \"p99_ms\": " << FormatDouble(overload.counters.p99_latency_ms, 3)
         << ", \"torn\": " << overload.torn << "},\n";
    json << "  \"state_cache\": {\"contexts\": " << kContexts
         << ", \"accesses\": " << kZipfAccesses << ", \"budget_bytes\": " << budget_bytes
         << ", \"resident_bytes\": " << tier.resident_bytes
         << ", \"baseline_resident_bytes\": " << baseline.resident_bytes
         << ", \"hit_rate\": " << FormatDouble(tier.hit_rate, 4)
         << ", \"p50_us\": " << FormatDouble(tier.p50_us, 2)
         << ", \"p99_us\": " << FormatDouble(tier.p99_us, 2)
         << ", \"baseline_p50_us\": " << FormatDouble(baseline.p50_us, 2)
         << ", \"baseline_p99_us\": " << FormatDouble(baseline.p99_us, 2)
         << ", \"evictions\": " << tier.counters.evictions
         << ", \"compressions\": " << tier.counters.compressions
         << ", \"recomputes\": " << tier.counters.recomputes
         << ", \"cold_drops\": " << tier.counters.drops
         << ", \"wrong_values\": " << tier.wrong_values
         << ", \"under_budget\": " << (under_budget ? 1 : 0)
         << ", \"disk_roundtrip_exact\": " << (disk_exact ? 1 : 0)
         << ", \"gauge_balanced\": " << (gauge_balanced ? 1 : 0) << "},\n";
    json << "  \"stream_serving\": {\"streams\": " << stream_leg.streams
         << ", \"chunks\": " << stream_leg.chunks
         << ", \"requests\": " << stream_leg.requests
         << ", \"req_per_sec\": " << FormatDouble(stream_leg.req_per_sec, 1)
         << ", \"p99_ms\": " << FormatDouble(stream_leg.counters.p99_latency_ms, 3)
         << ", \"spills\": " << stream_leg.counters.state_spills
         << ", \"cold_hits\": " << stream_leg.counters.state_cold_hits
         << ", \"mismatches\": " << stream_leg.mismatches << "}\n";
    json << "}\n";
  }
  std::printf("wrote %s\n", out_path.c_str());

  // Smoke runs gate on correctness only (tiny configs make the perf ratios
  // noisy); full runs additionally require the batch-major win, the tail
  // bound on budgeted state serving, plus the scalability verdict when the
  // host actually has parallel cores.
  const bool correctness_ok = torn == 0 && overload_ok && tier_ok && stream_ok;
  if (smoke) {
    return correctness_ok ? 0 : 1;
  }
  return correctness_ok && batching_wins && speedup_1w >= 3.0 && tail_bounded &&
                 (!scaling_applicable || scaling_ok)
             ? 0
             : 1;
}
