// Serving-layer throughput and latency (extension; paper section 6 discusses
// estimation cost at production scale). Measures the online EstimationService
// over a worker-count x micro-batch grid: every request replays the
// learning-phase history to warm the hidden state before stepping its query
// windows, so a batch of B requests amortizes that replay B ways — batching
// must strictly beat batch=1 at every worker count. A final run hot-swaps a
// fine-tuned model mid-flight and verifies no request observed torn weights:
// every result must be bit-identical to exactly one published version's
// single-threaded reference.
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/serve/continual_learner.h"
#include "src/serve/estimation_service.h"
#include "src/serve/ingest_pipeline.h"
#include "src/serve/model_registry.h"

using namespace deeprest;  // NOLINT(build/namespaces)

namespace {

constexpr size_t kRequestsPerCell = 48;

bool SameEstimates(const EstimateMap& a, const EstimateMap& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (const auto& [key, estimate] : a) {
    const auto it = b.find(key);
    if (it == b.end() || estimate.expected != it->second.expected ||
        estimate.lower != it->second.lower || estimate.upper != it->second.upper) {
      return false;
    }
  }
  return true;
}

struct CellResult {
  double requests_per_sec = 0.0;
  ServiceCounters counters;
};

CellResult RunCell(std::shared_ptr<const DeepRestEstimator> model,
                   const std::vector<std::vector<float>>& features, size_t workers,
                   size_t batch) {
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));
  EstimationServiceConfig config;
  config.workers = workers;
  config.max_batch = batch;
  EstimationService service(registry, pipeline, config);

  std::vector<std::future<EstimationService::EstimateResult>> futures;
  futures.reserve(kRequestsPerCell);
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < kRequestsPerCell; ++i) {
    futures.push_back(service.SubmitFeatures(features));
  }
  for (auto& future : futures) {
    (void)future.get();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  CellResult result;
  result.requests_per_sec = static_cast<double>(kRequestsPerCell) / seconds;
  result.counters = service.Counters();
  return result;
}

}  // namespace

int main() {
  PrintBenchHeader("online serving (extension)",
                   "micro-batched concurrent estimation + hot-swap consistency");
  HarnessConfig config = SocialBenchConfig();
  config.learn_days = 2;  // keep the warm-start replay bench-sized
  config.estimator.hidden_dim = 8;
  config.estimator.epochs = 6;
  ExperimentHarness harness(config);

  std::printf("Training the serving model (%zu learn windows)...\n\n", harness.learn_windows());
  std::shared_ptr<const DeepRestEstimator> v1(harness.deeprest().Clone());

  // One fixed 8-window query: short enough that the warm-start replay
  // dominates, which is exactly the cost micro-batching amortizes.
  Rng rng(config.seed + 53);
  const auto query = harness.RunQuery(GenerateTraffic(harness.QuerySpec(1), rng));
  const auto features =
      v1->features().ExtractSeries(harness.traces(), query.from, query.from + 8);

  const std::vector<size_t> worker_grid = {1, 4, 8};
  const std::vector<size_t> batch_grid = {1, 4, 16};
  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<double>> throughput(worker_grid.size());
  for (size_t w = 0; w < worker_grid.size(); ++w) {
    for (size_t b = 0; b < batch_grid.size(); ++b) {
      const CellResult cell = RunCell(v1, features, worker_grid[w], batch_grid[b]);
      throughput[w].push_back(cell.requests_per_sec);
      rows.push_back({std::to_string(worker_grid[w]), std::to_string(batch_grid[b]),
                      FormatDouble(cell.requests_per_sec, 1),
                      FormatDouble(cell.counters.mean_batch_size, 2),
                      FormatDouble(cell.counters.p50_latency_ms, 1),
                      FormatDouble(cell.counters.p99_latency_ms, 1)});
    }
  }
  std::printf("%zu requests per cell, 8 query windows each:\n%s\n", kRequestsPerCell,
              RenderTable({"workers", "max batch", "req/s", "mean batch", "p50 ms", "p99 ms"},
                          rows)
                  .c_str());

  bool batching_wins = true;
  for (size_t w = 0; w < worker_grid.size(); ++w) {
    for (size_t b = 1; b < batch_grid.size(); ++b) {
      if (throughput[w][b] <= throughput[w][0]) {
        batching_wins = false;
      }
    }
  }
  std::printf("batching check (batch>=4 beats batch=1 at every worker count): %s\n\n",
              batching_wins ? "PASS" : "FAIL");

  // Hot-swap consistency: publish a fine-tuned clone mid-run and verify no
  // request mixed weights from two versions.
  std::unique_ptr<DeepRestEstimator> v2 = v1->Clone();
  v2->ContinueLearning(harness.traces(), harness.metrics(), query.from, query.to, 1);
  const EstimateMap ref_v1 = v1->EstimateFromFeatures(features);
  const EstimateMap ref_v2 = v2->EstimateFromFeatures(features);

  ModelRegistry registry;
  IngestPipeline pipeline(v1->features(), {.shards = 2});
  registry.Publish(v1);
  // Two workers so the 64 requests are claimed batch by batch: the swap
  // lands between batch pickups and both versions serve traffic.
  EstimationServiceConfig swap_config;
  swap_config.workers = 2;
  swap_config.max_batch = 8;
  EstimationService service(registry, pipeline, swap_config);

  constexpr size_t kSwapRequests = 64;
  std::vector<std::shared_future<EstimationService::EstimateResult>> futures;
  futures.reserve(kSwapRequests);
  for (size_t i = 0; i < kSwapRequests; ++i) {
    futures.push_back(service.SubmitFeatures(features).share());
  }
  // Swap once the first results are in flight: everything already batched
  // keeps v1, everything still queued picks up v2.
  (void)futures[kSwapRequests / 8].get();
  registry.Publish(std::move(v2));
  size_t torn = 0;
  size_t v1_count = 0;
  size_t v2_count = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    const bool matches_v1 = result.model_version == 1 && SameEstimates(result.estimates, ref_v1);
    const bool matches_v2 = result.model_version == 2 && SameEstimates(result.estimates, ref_v2);
    v1_count += matches_v1;
    v2_count += matches_v2;
    torn += !matches_v1 && !matches_v2;
  }
  std::printf("hot swap mid-run: %zu requests served by v1, %zu by v2, torn results: %zu\n",
              v1_count, v2_count, torn);
  return torn == 0 && batching_wins ? 0 : 1;
}
