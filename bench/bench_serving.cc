// Serving-layer throughput and latency (extension; paper section 6 discusses
// estimation cost at production scale). Measures the online EstimationService
// over a worker-count x micro-batch grid: every request replays the
// learning-phase history to warm the hidden state before stepping its query
// windows, so a batch of B requests amortizes that replay B ways — batching
// must strictly beat batch=1 at every worker count. A final run hot-swaps a
// fine-tuned model mid-flight and verifies no request observed torn weights:
// every result must be bit-identical to exactly one published version's
// single-threaded reference.
#include <chrono>
#include <fstream>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/serve/continual_learner.h"
#include "src/serve/estimation_service.h"
#include "src/serve/ingest_pipeline.h"
#include "src/serve/model_registry.h"

using namespace deeprest;  // NOLINT(build/namespaces)

namespace {

constexpr size_t kRequestsPerCell = 48;

bool SameEstimates(const EstimateMap& a, const EstimateMap& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (const auto& [key, estimate] : a) {
    const auto it = b.find(key);
    if (it == b.end() || estimate.expected != it->second.expected ||
        estimate.lower != it->second.lower || estimate.upper != it->second.upper) {
      return false;
    }
  }
  return true;
}

struct CellResult {
  double requests_per_sec = 0.0;
  ServiceCounters counters;
};

// Injected overload: a burst far beyond serving capacity against a bounded
// queue with per-request deadlines. The service must shed or expire the
// excess instead of growing without limit, and every accepted result must be
// bit-identical to the single-threaded reference.
struct OverloadResult {
  size_t ok = 0;
  size_t shed = 0;
  size_t expired = 0;
  size_t torn = 0;
  double shed_rate = 0.0;
  ServiceCounters counters;
};

OverloadResult RunOverload(std::shared_ptr<const DeepRestEstimator> model,
                           const std::vector<std::vector<float>>& features,
                           size_t burst) {
  const EstimateMap reference = model->EstimateFromFeatures(features);
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));
  EstimationServiceConfig config;
  config.workers = 1;  // capacity pinned far below the burst
  config.max_batch = 4;
  config.max_queue = 8;
  config.shed_policy = ShedPolicy::kRejectNew;
  EstimationService service(registry, pipeline, config);

  std::vector<std::future<EstimationService::EstimateResult>> futures;
  futures.reserve(burst);
  for (size_t i = 0; i < burst; ++i) {
    // Every fourth request carries a tight deadline, so both shedding (queue
    // full) and expiry (deadline passed while queued) are exercised.
    const auto deadline =
        i % 4 == 3 ? std::chrono::milliseconds(1) : std::chrono::milliseconds(0);
    futures.push_back(service.SubmitFeatures(features, deadline));
  }
  OverloadResult result;
  for (auto& future : futures) {
    const auto r = future.get();
    switch (r.status) {
      case RequestStatus::kOk:
        ++result.ok;
        result.torn += SameEstimates(r.estimates, reference) ? 0 : 1;
        break;
      case RequestStatus::kShed:
        ++result.shed;
        break;
      case RequestStatus::kExpired:
        ++result.expired;
        break;
      default:
        ++result.torn;  // kRejectedStopped must not happen here
        break;
    }
  }
  result.shed_rate =
      static_cast<double>(result.shed + result.expired) / static_cast<double>(burst);
  result.counters = service.Counters();
  return result;
}

CellResult RunCell(std::shared_ptr<const DeepRestEstimator> model,
                   const std::vector<std::vector<float>>& features, size_t workers,
                   size_t batch) {
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));
  EstimationServiceConfig config;
  config.workers = workers;
  config.max_batch = batch;
  EstimationService service(registry, pipeline, config);

  std::vector<std::future<EstimationService::EstimateResult>> futures;
  futures.reserve(kRequestsPerCell);
  const WallTimer timer;
  for (size_t i = 0; i < kRequestsPerCell; ++i) {
    futures.push_back(service.SubmitFeatures(features));
  }
  for (auto& future : futures) {
    (void)future.get();
  }
  const double seconds = timer.Seconds();
  CellResult result;
  result.requests_per_sec = static_cast<double>(kRequestsPerCell) / seconds;
  result.counters = service.Counters();
  return result;
}

}  // namespace

int main() {
  PrintBenchHeader("online serving (extension)",
                   "micro-batched concurrent estimation + hot-swap consistency");
  HarnessConfig config = SocialBenchConfig();
  config.learn_days = 2;  // keep the warm-start replay bench-sized
  config.estimator.hidden_dim = 8;
  config.estimator.epochs = 6;
  ExperimentHarness harness(config);

  std::printf("Training the serving model (%zu learn windows)...\n\n", harness.learn_windows());
  std::shared_ptr<const DeepRestEstimator> v1(harness.deeprest().Clone());

  // One fixed 8-window query: short enough that the warm-start replay
  // dominates, which is exactly the cost micro-batching amortizes.
  Rng rng(config.seed + 53);
  const auto query = harness.RunQuery(GenerateTraffic(harness.QuerySpec(1), rng));
  const auto features =
      v1->features().ExtractSeries(harness.traces(), query.from, query.from + 8);

  const std::vector<size_t> worker_grid = {1, 4, 8};
  const std::vector<size_t> batch_grid = {1, 4, 16};
  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<double>> throughput(worker_grid.size());
  for (size_t w = 0; w < worker_grid.size(); ++w) {
    for (size_t b = 0; b < batch_grid.size(); ++b) {
      const CellResult cell = RunCell(v1, features, worker_grid[w], batch_grid[b]);
      throughput[w].push_back(cell.requests_per_sec);
      rows.push_back({std::to_string(worker_grid[w]), std::to_string(batch_grid[b]),
                      FormatDouble(cell.requests_per_sec, 1),
                      FormatDouble(cell.counters.mean_batch_size, 2),
                      FormatDouble(cell.counters.p50_latency_ms, 1),
                      FormatDouble(cell.counters.p99_latency_ms, 1)});
    }
  }
  std::printf("%zu requests per cell, 8 query windows each:\n%s\n", kRequestsPerCell,
              RenderTable({"workers", "max batch", "req/s", "mean batch", "p50 ms", "p99 ms"},
                          rows)
                  .c_str());

  bool batching_wins = true;
  for (size_t w = 0; w < worker_grid.size(); ++w) {
    for (size_t b = 1; b < batch_grid.size(); ++b) {
      if (throughput[w][b] <= throughput[w][0]) {
        batching_wins = false;
      }
    }
  }
  std::printf("batching check (batch>=4 beats batch=1 at every worker count): %s\n\n",
              batching_wins ? "PASS" : "FAIL");

  // Hot-swap consistency: publish a fine-tuned clone mid-run and verify no
  // request mixed weights from two versions.
  std::unique_ptr<DeepRestEstimator> v2 = v1->Clone();
  v2->ContinueLearning(harness.traces(), harness.metrics(), query.from, query.to, 1);
  const EstimateMap ref_v1 = v1->EstimateFromFeatures(features);
  const EstimateMap ref_v2 = v2->EstimateFromFeatures(features);

  ModelRegistry registry;
  IngestPipeline pipeline(v1->features(), {.shards = 2});
  registry.Publish(v1);
  // Two workers so the 64 requests are claimed batch by batch: the swap
  // lands between batch pickups and both versions serve traffic.
  EstimationServiceConfig swap_config;
  swap_config.workers = 2;
  swap_config.max_batch = 8;
  EstimationService service(registry, pipeline, swap_config);

  constexpr size_t kSwapRequests = 64;
  std::vector<std::shared_future<EstimationService::EstimateResult>> futures;
  futures.reserve(kSwapRequests);
  for (size_t i = 0; i < kSwapRequests; ++i) {
    futures.push_back(service.SubmitFeatures(features).share());
  }
  // Swap once the first results are in flight: everything already batched
  // keeps v1, everything still queued picks up v2.
  (void)futures[kSwapRequests / 8].get();
  registry.Publish(std::move(v2));
  size_t torn = 0;
  size_t v1_count = 0;
  size_t v2_count = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    const bool matches_v1 = result.model_version == 1 && SameEstimates(result.estimates, ref_v1);
    const bool matches_v2 = result.model_version == 2 && SameEstimates(result.estimates, ref_v2);
    v1_count += matches_v1;
    v2_count += matches_v2;
    torn += !matches_v1 && !matches_v2;
  }
  std::printf("hot swap mid-run: %zu requests served by v1, %zu by v2, torn results: %zu\n\n",
              v1_count, v2_count, torn);

  // Overload protection: a 256-request burst against one worker and a queue
  // of 8. Healthy behavior is a high shed rate with bounded p99 on the
  // accepted requests — not an unbounded queue.
  constexpr size_t kBurst = 256;
  const OverloadResult overload = RunOverload(v1, features, kBurst);
  std::printf("injected overload (%zu-request burst, 1 worker, queue bound 8):\n%s\n", kBurst,
              RenderTable({"served", "shed", "expired", "shed rate", "p99 ms", "torn"},
                          {{std::to_string(overload.ok), std::to_string(overload.shed),
                            std::to_string(overload.expired),
                            FormatDouble(overload.shed_rate, 3),
                            FormatDouble(overload.counters.p99_latency_ms, 1),
                            std::to_string(overload.torn)}})
                  .c_str());
  const bool overload_ok = overload.shed > 0 && overload.torn == 0 &&
                           overload.ok + overload.shed + overload.expired == kBurst;
  std::printf("overload check (excess shed/expired, accepted results bit-exact): %s\n\n",
              overload_ok ? "PASS" : "FAIL");

  // Machine-readable summary for regression tracking.
  {
    std::ofstream json("BENCH_serving.json");
    json << "{\n  \"grid\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      json << "    {\"workers\": " << rows[i][0] << ", \"max_batch\": " << rows[i][1]
           << ", \"req_per_sec\": " << rows[i][2] << ", \"mean_batch\": " << rows[i][3]
           << ", \"p50_ms\": " << rows[i][4] << ", \"p99_ms\": " << rows[i][5] << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    json << "  \"hot_swap\": {\"v1_served\": " << v1_count << ", \"v2_served\": " << v2_count
         << ", \"torn\": " << torn << "},\n";
    json << "  \"overload\": {\"burst\": " << kBurst << ", \"served\": " << overload.ok
         << ", \"shed\": " << overload.shed << ", \"expired\": " << overload.expired
         << ", \"shed_rate\": " << FormatDouble(overload.shed_rate, 4)
         << ", \"p99_ms\": " << FormatDouble(overload.counters.p99_latency_ms, 3)
         << ", \"torn\": " << overload.torn << "}\n";
    json << "}\n";
  }
  std::printf("wrote BENCH_serving.json\n");
  return torn == 0 && batching_wins && overload_ok ? 0 : 1;
}
