// Paper Table 1: trace-synthesizer quality across the six unseen-query
// settings — synthesized traces must reproduce the distribution of traces the
// application would actually record if the query traffic were served
// (the paper reports > 91% in every setting).
#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

namespace {

double ScenarioQuality(ExperimentHarness& harness, const TrafficSpec& spec, uint64_t seed) {
  Rng rng(seed);
  const auto query = harness.RunQuery(GenerateTraffic(spec, rng));
  DeepRestEstimator& estimator = harness.deeprest();

  Rng synth_rng(seed * 3 + 1);
  TraceCollector synthetic;
  estimator.synthesizer().SynthesizeSeries(query.traffic, 0, synth_rng, synthetic);
  const auto synth_features =
      estimator.features().ExtractSeries(synthetic, 0, query.traffic.windows());
  const auto real_features =
      estimator.features().ExtractSeries(harness.traces(), query.from, query.to);
  return SynthesisQuality(synth_features, real_features);
}

}  // namespace

int main() {
  PrintBenchHeader("Table 1", "trace-synthesizer quality on the six query scenarios");
  ExperimentHarness harness(SocialBenchConfig());
  harness.deeprest();

  std::vector<std::vector<std::string>> rows;
  auto add_row = [&](const std::string& scenario, const std::string& setting,
                     double quality) {
    rows.push_back({scenario, setting, FormatDouble(quality, 2) + "%"});
  };

  // Unseen scales: 1x, 2x, 3x.
  for (double scale : {1.0, 2.0, 3.0}) {
    TrafficSpec spec = harness.QuerySpec(1);
    spec.user_scale = scale;
    add_row("Unseen Scale", FormatDouble(scale, 0) + "x",
            ScenarioQuality(harness, spec, 71 + static_cast<uint64_t>(scale)));
  }
  // Unseen API composition.
  {
    TrafficSpec spec = harness.QuerySpec(1);
    for (auto& share : spec.mix) {
      if (share.api == "/composePost") {
        share.weight = 0.10;
      } else if (share.api == "/readTimeline") {
        share.weight = 0.85;
      } else if (share.api == "/uploadMedia") {
        share.weight = 0.05;
      } else {
        share.weight = 0.0;
      }
    }
    add_row("Unseen API Composition", "10/85/5", ScenarioQuality(harness, spec, 79));
  }
  // Unseen shapes, both directions.
  {
    TrafficSpec spec = harness.QuerySpec(1);
    spec.shape = ShapeKind::kFlat;
    add_row("Unseen Shape", "2-peak/day -> flat", ScenarioQuality(harness, spec, 83));
  }
  {
    HarnessConfig config = SocialBenchConfig();
    config.seed = 2;
    config.learn_shape = ShapeKind::kFlat;
    ExperimentHarness flat_harness(config);
    flat_harness.deeprest();
    TrafficSpec spec = flat_harness.QuerySpec(1);
    spec.shape = ShapeKind::kTwoPeak;
    add_row("Unseen Shape", "flat -> 2-peak/day", ScenarioQuality(flat_harness, spec, 89));
  }

  std::printf("%s\n", RenderTable({"query scenario", "setting", "synthesis quality"}, rows)
                          .c_str());
  std::printf("Paper Table 1 reports 91.03-93.54%% across these settings; the synthesizer\n"
              "is distribution-faithful, so quality should sit in the same band.\n");
  return 0;
}
