// Transfer learning exploration (paper section 6): the paper observes that
// experts for similar component roles learn similar GRU dynamics and
// suggests initializing new models from pre-trained ones to accelerate
// convergence — within an application (new components) and across
// applications. This bench quantifies that: train on the social network,
// transfer the application-independent recurrent blocks into a hotel
// reservation model, and compare its training-loss trajectory and query
// accuracy against a cold start at the same epoch budget.
#include "bench/common.h"

using namespace deeprest;  // NOLINT(build/namespaces)

namespace {

struct Outcome {
  std::vector<float> losses;
  double query_mape = 0.0;
};

Outcome TrainHotel(const DeepRestEstimator* donor, size_t epochs) {
  HarnessConfig config = HotelBenchConfig();
  config.cache_models = false;  // the comparison is the training run itself
  config.estimator.epochs = 0;  // build without training
  ExperimentHarness harness(config);
  DeepRestEstimator& estimator = harness.deeprest();
  if (donor != nullptr) {
    const size_t transferred = estimator.TransferRecurrentWeightsFrom(*donor);
    std::printf("  transferred recurrent blocks into %zu/%zu experts\n", transferred,
                estimator.expert_count());
  }
  estimator.ContinueLearning(harness.traces(), harness.metrics(), 0,
                             harness.learn_windows(), epochs);

  // Accuracy probe: in-distribution next-day query on FrontendService CPU.
  Rng rng(7);
  const auto query = harness.RunQuery(GenerateTraffic(harness.QuerySpec(1), rng));
  const EstimateMap estimates = harness.EstimateDeepRestFromRealTraces(query);
  Outcome outcome;
  outcome.losses = estimator.epoch_losses();
  outcome.query_mape =
      harness.QueryMape(estimates, query, {"FrontendService", ResourceKind::kCpu});
  return outcome;
}

}  // namespace

int main() {
  PrintBenchHeader("sec. 6 transfer learning",
                   "social-network -> hotel-reservation recurrent-weight transfer");
  std::printf("Training (or loading) the social-network donor model...\n");
  ExperimentHarness donor_harness(SocialBenchConfig());
  DeepRestEstimator& donor = donor_harness.deeprest();

  const size_t kEpochs = 6;  // deliberately small budget: where init matters
  std::printf("Cold-start hotel training (%zu epochs):\n", kEpochs);
  const Outcome cold = TrainHotel(nullptr, kEpochs);
  std::printf("Transfer-initialized hotel training (%zu epochs):\n", kEpochs);
  const Outcome warm = TrainHotel(&donor, kEpochs);

  std::vector<std::vector<std::string>> rows;
  for (size_t e = 0; e < kEpochs; ++e) {
    rows.push_back({"epoch " + std::to_string(e + 1), FormatDouble(cold.losses[e], 4),
                    FormatDouble(warm.losses[e], 4)});
  }
  rows.push_back({"query CPU MAPE", FormatDouble(cold.query_mape, 1) + "%",
                  FormatDouble(warm.query_mape, 1) + "%"});
  std::printf("\n%s\n", RenderTable({"", "cold start", "transfer-initialized"}, rows).c_str());
  std::printf("Reading guide: the paper's hypothesis predicts the transfer column should\n"
              "converge at least as fast as the cold start in the early epochs. The\n"
              "transferable surface is only the recurrent blocks (~H^2 of each expert);\n"
              "input projections must still be learned from the hotel's own traces.\n");
  return 0;
}
