// Shared configuration and output helpers for the benchmark binaries.
//
// Every bench reproducing a paper artifact uses the same learning-phase
// configuration so the expensive DeepRest training runs once and is shared
// through the on-disk model cache (.deeprest_cache/). Deleting that
// directory forces retraining.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "src/eval/ascii.h"
#include "src/eval/harness.h"

namespace deeprest {

// Monotonic wall-clock timer for the hand-rolled (non-google-benchmark)
// timing sections. steady_clock, not system_clock: NTP slews and DST jumps
// must not show up as speedups.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

  double Nanos() const { return Seconds() * 1e9; }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Uniform "wall-clock + per-window" report line used by every bench target
// that times a phase over a window range.
inline void PrintTimed(const std::string& label, double seconds, size_t windows) {
  if (windows > 0) {
    std::printf("%-32s %8.3f s  (%10.0f ns/window over %zu windows)\n", label.c_str(),
                seconds, seconds * 1e9 / static_cast<double>(windows), windows);
  } else {
    std::printf("%-32s %8.3f s\n", label.c_str(), seconds);
  }
}

inline HarnessConfig SocialBenchConfig() {
  HarnessConfig config;
  config.app = HarnessConfig::AppKind::kSocialNetwork;
  config.learn_days = 7;  // paper: seven days of application learning
  config.windows_per_day = 48;
  config.base_requests_per_window = 110.0;
  config.seed = 1;
  config.estimator.hidden_dim = 12;
  config.estimator.epochs = 12;
  config.estimator.bptt_chunk = 48;
  config.resource_aware_dl.epochs = 10;
  config.resource_aware_dl.hidden_dim = 8;
  config.cache_models = true;
  config.cache_dir = ".deeprest_cache";
  std::filesystem::create_directories(config.cache_dir);
  return config;
}

inline HarnessConfig HotelBenchConfig() {
  HarnessConfig config = SocialBenchConfig();
  config.app = HarnessConfig::AppKind::kHotelReservation;
  return config;
}

// Number of repetitions for the repeated-query experiments (paper: nine).
inline int BenchRepetitions() {
  if (const char* env = std::getenv("DEEPREST_BENCH_REPS")) {
    return std::max(1, std::atoi(env));
  }
  return 3;
}

inline void PrintBenchHeader(const std::string& artifact, const std::string& description) {
  std::printf("================================================================\n");
  std::printf("DeepRest reproduction — %s\n", artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("================================================================\n\n");
}

// The four algorithms in the paper's comparison, in its presentation order.
inline const std::vector<std::string>& AlgorithmNames() {
  static const std::vector<std::string> kNames = {"DeepRest", "ResrcDL", "SimpleScal",
                                                  "CompScal"};
  return kNames;
}

// Runs all four algorithms on one query; returns their estimates in
// AlgorithmNames() order.
inline std::vector<EstimateMap> EstimateAll(ExperimentHarness& harness,
                                            const ExperimentHarness::QueryResult& query) {
  std::vector<EstimateMap> all;
  all.push_back(harness.EstimateDeepRest(query));
  all.push_back(harness.EstimateResourceAwareDl(query));
  all.push_back(harness.EstimateSimpleScaling(query));
  all.push_back(harness.EstimateComponentAwareScaling(query));
  return all;
}

}  // namespace deeprest

#endif  // BENCH_COMMON_H_
