// Application sanity check: catching a ransomware attack (paper section 5.4).
//
// A miner-style workload change is easy to spot; what makes DeepRest's check
// interesting is the opposite case — resource consumption that LOOKS odd but
// is justified by traffic, and consumption that looks normal but is not.
// This example runs two post-learning days:
//   day 1: a benign traffic surge (more users — CPU up, but justified)
//   day 2: a ransomware attack on PostStorageMongoDB (unjustified)
// and shows that the checker stays quiet on day 1 and fires on day 2.
//
// Build & run:  ./build/examples/anomaly_detection
#include <cstdio>

#include "src/eval/ascii.h"
#include "src/eval/harness.h"

using namespace deeprest;  // NOLINT: example brevity

int main() {
  HarnessConfig config;
  config.learn_days = 5;
  config.windows_per_day = 48;
  config.seed = 33;
  config.cache_models = false;
  config.estimator.hidden_dim = 12;
  config.estimator.epochs = 10;
  ExperimentHarness harness(config);
  std::printf("Training DeepRest on %zu learning windows...\n", harness.learn_windows());
  harness.deeprest();

  // Day 1: benign surge (1.6x users). Day 2: normal traffic + ransomware.
  TrafficSpec surge_spec = harness.QuerySpec(1);
  surge_spec.user_scale = 1.6;
  TrafficSpec normal_spec = harness.QuerySpec(1);
  Rng rng(3);
  TrafficSeries two_days = GenerateTraffic(surge_spec, rng);
  two_days.Append(GenerateTraffic(normal_spec, rng));

  AttackSpec attack;
  attack.kind = AttackSpec::Kind::kRansomware;
  attack.component = "PostStorageMongoDB";
  attack.start_window = harness.learn_windows() + config.windows_per_day + 20;
  attack.end_window = attack.start_window + 10;
  harness.simulator().AddAttack(attack);

  const auto query = harness.RunQuery(two_days);
  std::printf("Served 2 days of traffic; ransomware active in windows %zu-%zu\n\n",
              attack.start_window - query.from, attack.end_window - query.from);

  // Mode 2: estimate expected utilization from the REAL traces.
  const EstimateMap expected = harness.EstimateDeepRestFromRealTraces(query);

  // Visualize the attacked resource: actual vs expected interval.
  const MetricKey thr{"PostStorageMongoDB", ResourceKind::kWriteThroughput};
  const auto actual_thr = harness.metrics().Series(thr, query.from, query.to);
  std::printf("--- PostStorageMongoDB write throughput: actual vs expected interval ---\n");
  std::printf("%s\n", RenderSeries({"actual", "expected(p90 upper)", "expected(p90 lower)"},
                                   {actual_thr, expected.at(thr).upper,
                                    expected.at(thr).lower},
                                   10, 96)
                          .c_str());

  // Anomaly timeline for the component (1-D heatmap in the paper).
  SanityChecker checker;
  const auto scores = checker.ComponentScores(expected, harness.metrics(),
                                              "PostStorageMongoDB", query.from, query.to);
  std::printf("Anomaly score timeline (PostStorageMongoDB):\n  ");
  for (size_t t = 0; t < scores.size(); ++t) {
    const char* shade = scores[t] > 2.0 ? "#" : scores[t] > 0.5 ? "+" : ".";
    std::printf("%s", shade);
  }
  std::printf("\n   day 1: benign 1.6x surge %*s day 2: ransomware\n\n",
              static_cast<int>(config.windows_per_day) - 18, "");

  // Interpretable alerts.
  const auto events = checker.Detect(expected, harness.metrics(), query.from, query.to);
  if (events.empty()) {
    std::printf("No anomalies detected.\n");
  }
  for (const auto& event : events) {
    std::printf("%s\n", event.Describe(config.windows_per_day).c_str());
  }
  return 0;
}
