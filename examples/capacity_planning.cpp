// Capacity planning for a marketing event (paper section 5.3 use case).
//
// Scenario: the social network expects a "holiday burst" — 2.5x the users AND
// a composition shift towards browsing (/readTimeline-heavy). The operator
// asks DeepRest for a per-component allocation plan before the event, using
// the 90%-confidence upper bound as the provisioning target.
//
// Build & run:  ./build/examples/capacity_planning
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/eval/ascii.h"
#include "src/eval/harness.h"

using namespace deeprest;  // NOLINT: example brevity

int main() {
  HarnessConfig config;
  config.learn_days = 5;
  config.windows_per_day = 48;
  config.seed = 21;
  config.cache_models = false;
  config.estimator.hidden_dim = 12;
  config.estimator.epochs = 10;
  ExperimentHarness harness(config);
  std::printf("Learning from %zu windows of production telemetry...\n",
              harness.learn_windows());
  DeepRestEstimator& estimator = harness.deeprest();

  // The event: browsing-dominated traffic at 2.5x scale for one day.
  TrafficSpec event_spec = harness.QuerySpec(1);
  event_spec.user_scale = 2.5;
  event_spec.mix = {
      {"/composePost", 0.10},  {"/readTimeline", 0.52}, {"/readUserTimeline", 0.12},
      {"/uploadMedia", 0.03},  {"/getMedia", 0.13},     {"/login", 0.04},
      {"/register", 0.005},    {"/followUser", 0.02},   {"/unfollowUser", 0.005},
      {"/searchUser", 0.02},   {"/readPost", 0.01},
  };
  Rng rng(5);
  const TrafficSeries event_traffic = GenerateTraffic(event_spec, rng);
  const EstimateMap plan = estimator.EstimateFromTraffic(event_traffic, 3);

  // Allocation plan: for each component's CPU, compare today's peak with the
  // event-day peak upper bound.
  std::printf("\n=== CPU allocation plan for the event day (2.5x users, read-heavy) ===\n\n");
  std::vector<std::vector<std::string>> rows;
  for (const auto& component : harness.app().components()) {
    const MetricKey key{component.name, ResourceKind::kCpu};
    const auto it = plan.find(key);
    if (it == plan.end()) {
      continue;
    }
    const auto learn_series = harness.metrics().Series(key, 0, harness.learn_windows());
    const double current_peak = *std::max_element(learn_series.begin(), learn_series.end());
    const double planned_peak =
        *std::max_element(it->second.upper.begin(), it->second.upper.end());
    const double change = 100.0 * (planned_peak - current_peak) / std::max(current_peak, 1.0);
    if (planned_peak < 8.0) {
      continue;  // idle components are uninteresting in the report
    }
    rows.push_back({component.name, FormatDouble(current_peak, 1) + "%",
                    FormatDouble(planned_peak, 1) + "%",
                    (change >= 0 ? "+" : "") + FormatDouble(change, 0) + "%"});
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return std::stod(b[2]) < std::stod(a[2]);
  });
  std::printf("%s\n", RenderTable({"component", "current peak", "plan (p90 upper)", "change"},
                                  rows)
                          .c_str());

  // Verify the plan against reality: serve the event and count violations of
  // the provisioned upper bound.
  std::printf("Validating: serving the event traffic on the live deployment...\n");
  const auto query = harness.RunQuery(event_traffic);
  size_t violations = 0;
  size_t samples = 0;
  for (const auto& [key, estimate] : plan) {
    if (key.resource != ResourceKind::kCpu) {
      continue;
    }
    const auto actual = harness.metrics().Series(key, query.from, query.to);
    const double provisioned =
        *std::max_element(estimate.upper.begin(), estimate.upper.end());
    for (double v : actual) {
      ++samples;
      if (v > provisioned * 1.05) {
        ++violations;
      }
    }
  }
  std::printf("Provisioning check: %zu/%zu samples exceeded the plan (%.2f%%)\n", violations,
              samples, 100.0 * static_cast<double>(violations) / static_cast<double>(samples));
  return 0;
}
