// Interpreting a trained DeepRest model (paper section 6).
//
// The learnable API-aware masks double as an explanation: which API endpoints
// drive which resource of which component? This example trains on the social
// network and prints the API-influence matrix for a few resources — the
// data-driven equivalent of static program analysis the paper highlights —
// plus the 2-D PCA embedding of the per-expert GRU parameters (Fig. 21)
// showing that MongoDB experts cluster.
//
// Build & run:  ./build/examples/model_interpretation
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/eval/ascii.h"
#include "src/eval/harness.h"
#include "src/nn/pca.h"

using namespace deeprest;  // NOLINT: example brevity

int main() {
  HarnessConfig config;
  config.learn_days = 5;
  config.windows_per_day = 48;
  config.seed = 44;
  config.cache_models = false;
  config.estimator.hidden_dim = 12;
  config.estimator.epochs = 12;
  ExperimentHarness harness(config);
  std::printf("Training DeepRest on the social network...\n\n");
  DeepRestEstimator& estimator = harness.deeprest();

  // --- API-aware masks (Fig. 22) ---
  const std::vector<MetricKey> interesting = {
      {"MediaMongoDB", ResourceKind::kMemory},
      {"ComposePostService", ResourceKind::kCpu},
      {"PostStorageMongoDB", ResourceKind::kWriteIops},
      {"PostStorageMongoDB", ResourceKind::kCpu},
  };
  std::printf("=== Learned API influence (normalized mask weight per API) ===\n\n");
  for (const auto& key : interesting) {
    auto influence = estimator.ApiInfluence(key);
    double max_weight = 1e-12;
    for (const auto& [api, weight] : influence) {
      max_weight = std::max(max_weight, weight);
    }
    std::printf("%s:\n", key.ToString().c_str());
    std::vector<std::pair<std::string, double>> sorted(influence.begin(), influence.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (const auto& [api, weight] : sorted) {
      const double normalized = weight / max_weight;
      const int bar = static_cast<int>(normalized * 40.0);
      std::printf("  %-18s %s %.2f\n", api.c_str(), std::string(bar, '#').c_str(),
                  normalized);
    }
    std::printf("\n");
  }

  // --- Expert PCA (Fig. 21) ---
  std::printf("=== PCA of per-expert GRU parameters (x = PC1, y = PC2) ===\n");
  std::printf("    'M' = MongoDB expert, '.' = other expert\n\n");
  std::vector<std::vector<float>> samples;
  std::vector<bool> is_mongo;
  for (const auto& key : estimator.resources()) {
    if (key.resource != ResourceKind::kCpu) {
      continue;  // one expert per component keeps the plot readable
    }
    samples.push_back(estimator.ExpertParameterDelta(key));
    is_mongo.push_back(key.component.find("MongoDB") != std::string::npos);
  }
  const PcaResult pca = ComputePca(samples, 2);

  // Scatter plot on a 60x20 grid.
  float min_x = 1e9f, max_x = -1e9f, min_y = 1e9f, max_y = -1e9f;
  for (const auto& p : pca.projections) {
    min_x = std::min(min_x, p[0]);
    max_x = std::max(max_x, p[0]);
    min_y = std::min(min_y, p[1]);
    max_y = std::max(max_y, p[1]);
  }
  const size_t kW = 64, kH = 18;
  std::vector<std::string> grid(kH, std::string(kW, ' '));
  for (size_t i = 0; i < pca.projections.size(); ++i) {
    const size_t gx = static_cast<size_t>((pca.projections[i][0] - min_x) /
                                          std::max(1e-9f, max_x - min_x) * (kW - 1));
    const size_t gy = static_cast<size_t>((pca.projections[i][1] - min_y) /
                                          std::max(1e-9f, max_y - min_y) * (kH - 1));
    grid[kH - 1 - gy][gx] = is_mongo[i] ? 'M' : '.';
  }
  for (const auto& line : grid) {
    std::printf("  |%s\n", line.c_str());
  }
  std::printf("  +%s\n", std::string(kW, '-').c_str());
  std::printf("\nExplained variance: PC1 %.0f%%, PC2 %.0f%%\n",
              100.0f * pca.explained_variance_ratio[0],
              100.0f * pca.explained_variance_ratio[1]);
  return 0;
}
