// Quickstart: the smallest useful DeepRest workflow.
//
// 1. Deploy an application (here: the simulated DeathStarBench social
//    network) and collect traces + metrics for a learning phase.
// 2. Train DeepRest on that telemetry.
// 3. Ask it how many resources a *hypothetical* future traffic pattern
//    (2x the users) will need, and compare against what actually happens.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/core/estimator.h"
#include "src/eval/ascii.h"
#include "src/eval/metrics.h"
#include "src/sim/simulator.h"
#include "src/workload/traffic.h"

using namespace deeprest;  // NOLINT: example brevity

int main() {
  // ---- 1. Application learning phase: 4 simulated days of production. ----
  const Application app = BuildSocialNetworkApp();
  Simulator sim(app, {.seed = 42});

  TrafficSpec learn_spec;
  learn_spec.days = 4;
  learn_spec.windows_per_day = 48;
  learn_spec.base_requests_per_window = 100.0;
  learn_spec.mix = {{"/composePost", 0.25}, {"/readTimeline", 0.45}, {"/uploadMedia", 0.10},
                    {"/getMedia", 0.20}};
  Rng traffic_rng(7);
  const TrafficSeries learn_traffic = GenerateTraffic(learn_spec, traffic_rng);

  TraceCollector traces;
  MetricsStore metrics;
  sim.Run(learn_traffic, 0, &traces, &metrics);
  const size_t learn_windows = learn_traffic.windows();
  std::printf("Learning phase: %zu windows, %zu traces, %zu resources\n", learn_windows,
              traces.total_traces(), app.MetricCatalog().size());

  // ---- 2. Train DeepRest. ----
  EstimatorConfig config;
  config.hidden_dim = 12;
  config.epochs = 10;
  config.verbose = true;
  DeepRestEstimator estimator(config);
  estimator.Learn(traces, metrics, 0, learn_windows, app.MetricCatalog());
  std::printf("Trained %zu experts (%zu parameters) in %.1f s\n", estimator.expert_count(),
              estimator.TotalParameters(), estimator.train_seconds());

  // ---- 3. Query: what if tomorrow has 2x the users? ----
  TrafficSpec query_spec = learn_spec;
  query_spec.days = 1;
  query_spec.user_scale = 2.0;
  Rng query_rng(11);
  const TrafficSeries query_traffic = GenerateTraffic(query_spec, query_rng);
  const EstimateMap estimates = estimator.EstimateFromTraffic(query_traffic, 1);

  // Ground truth: actually serve the 2x day on the same deployment.
  sim.Run(query_traffic, learn_windows, nullptr, &metrics);

  std::printf("\nEstimated vs actual, day at 2x users (never observed in learning):\n\n");
  for (const MetricKey& key : {MetricKey{"FrontendNGINX", ResourceKind::kCpu},
                              MetricKey{"ComposePostService", ResourceKind::kCpu},
                              MetricKey{"PostStorageMongoDB", ResourceKind::kWriteIops}}) {
    const auto actual =
        metrics.Series(key, learn_windows, learn_windows + query_traffic.windows());
    const auto& estimate = estimates.at(key);
    std::printf("--- %s (MAPE %.1f%%) ---\n", key.ToString().c_str(),
                Mape(estimate.expected, actual));
    std::printf("%s\n",
                RenderSeries({"estimated", "actual"}, {estimate.expected, actual}, 8, 72)
                    .c_str());
  }
  std::printf("Tip: estimate.upper is the %.0f%%-confidence allocation headroom.\n", 90.0);
  return 0;
}
