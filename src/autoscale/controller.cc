#include "src/autoscale/controller.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace deeprest {

std::string ScalingAction::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "w=%04zu %s replicas %zu->%zu cap %.0f->%.0f demand %.1f %s",
                window, component.c_str(), replicas_before, replicas_after,
                capacity_before, capacity_after, demand_cpu, reason.c_str());
  return buf;
}

AutoscaleController::AutoscaleController(const ScalingPolicy& policy,
                                         const AutoscaleControllerConfig& config)
    : policy_(&policy), config_(config) {}

void AutoscaleController::AddComponent(const std::string& name, bool stateful,
                                       size_t replicas, double capacity_cpu) {
  MutexLock lock(mu_);
  ComponentState state;
  state.scale.replicas = std::max<size_t>(1, replicas);
  state.scale.capacity_cpu = capacity_cpu;
  state.scale.stateful = stateful;
  state_[name] = state;
}

std::vector<ScalingAction> AutoscaleController::Tick(
    size_t window, const std::map<std::string, ComponentObservation>& observations,
    const PolicyInputs& inputs) {
  MutexLock lock(mu_);
  std::vector<ScalingAction> actions;
  const int64_t w = static_cast<int64_t>(window);
  for (auto& [name, state] : state_) {
    auto obs_it = observations.find(name);
    if (obs_it == observations.end() || obs_it->second.blank) {
      // Fail static: no data means no decision. The streak resets so a
      // scale-down needs fresh consecutive evidence after an outage.
      ++counters_.blank_holds;
      state.down_streak = 0;
      continue;
    }
    // The controller is the source of truth for the current deployment; the
    // caller only supplies telemetry.
    ComponentObservation obs = obs_it->second;
    obs.replicas = state.scale.replicas;
    obs.capacity_cpu = state.scale.capacity_cpu;
    obs.stateful = state.scale.stateful;

    const auto desired = policy_->Desired(name, obs, inputs);
    if (!desired.has_value()) {
      ++counters_.holds;
      state.down_streak = 0;
      continue;
    }

    // Clamp to the configured envelope, then quantify the change along the
    // component's one scaling axis.
    const SizingConfig& sizing = config_.sizing;
    ComponentTarget target = *desired;
    target.replicas = std::clamp(target.replicas, sizing.min_replicas, sizing.max_replicas);
    target.capacity_cpu =
        std::clamp(target.capacity_cpu, sizing.min_capacity_cpu, sizing.max_capacity_cpu);

    const bool vertical = state.scale.stateful;
    const bool up = vertical ? target.capacity_cpu > state.scale.capacity_cpu + 1e-9
                             : target.replicas > state.scale.replicas;
    const bool down = vertical ? target.capacity_cpu < state.scale.capacity_cpu - 1e-9
                               : target.replicas < state.scale.replicas;
    if (!up && !down) {
      ++counters_.holds;
      state.down_streak = 0;
      continue;
    }

    ScalingAction action;
    action.window = window;
    action.component = name;
    action.replicas_before = state.scale.replicas;
    action.capacity_before = state.scale.capacity_cpu;
    action.demand_cpu = obs.demand_cpu;

    if (up) {
      state.down_streak = 0;
      if (w < state.last_up + static_cast<int64_t>(config_.up_cooldown)) {
        ++counters_.cooldown_blocks;
        continue;
      }
      state.scale.replicas = target.replicas;
      state.scale.capacity_cpu = target.capacity_cpu;
      state.last_up = w;
      action.reason = vertical ? "grow" : "scale-out";
      vertical ? ++counters_.grows : ++counters_.scale_outs;
    } else {
      ++state.down_streak;
      if (state.down_streak < config_.down_patience) {
        ++counters_.patience_blocks;
        continue;
      }
      if (w < state.last_down + static_cast<int64_t>(config_.down_cooldown) ||
          w < state.last_up + static_cast<int64_t>(config_.down_cooldown)) {
        ++counters_.cooldown_blocks;
        continue;
      }
      state.scale.replicas = target.replicas;
      state.scale.capacity_cpu = target.capacity_cpu;
      state.last_down = w;
      state.down_streak = 0;
      action.reason = vertical ? "shrink" : "scale-in";
      vertical ? ++counters_.shrinks : ++counters_.scale_ins;
    }
    action.replicas_after = state.scale.replicas;
    action.capacity_after = state.scale.capacity_cpu;
    log_.push_back(action.ToString());
    actions.push_back(std::move(action));
  }
  ++counters_.ticks;
  return actions;
}

std::map<std::string, ComponentScale> AutoscaleController::CurrentScale() const {
  MutexLock lock(mu_);
  std::map<std::string, ComponentScale> out;
  for (const auto& [name, state] : state_) {
    out[name] = state.scale;
  }
  return out;
}

ControllerCounters AutoscaleController::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

std::vector<std::string> AutoscaleController::ActionLog() const {
  MutexLock lock(mu_);
  return log_;
}

}  // namespace deeprest
