// The closed-loop autoscale controller.
//
// Consumes per-component observations plus (policy-dependent) demand series
// each control tick and decides the deployment for the coming interval. The
// controller — not the policies — owns the damping machinery that keeps a
// control loop from oscillating:
//   * scale-up cooldown:  a component that just scaled up is not scaled up
//     again for up_cooldown windows (one decision per surge, not one per
//     noisy sample);
//   * scale-down patience + cooldown: capacity is released only after
//     down_patience CONSECUTIVE ticks proposed a lower target, and never
//     within down_cooldown windows of the last change — transient dips must
//     not shed the capacity a returning peak still needs (asymmetric on
//     purpose: adding capacity late costs SLO violations, removing it late
//     costs core-hours, and violations are the expensive side);
//   * blank-hold: a component whose telemetry went missing (scrape lost,
//     collector outage) keeps its last-known-good scale — a controller must
//     fail static, never react to an absence of data.
//
// Determinism: components live in a std::map (sorted iteration), decisions
// are pure functions of (window, observations, inputs), and the action log
// carries no timestamps — so the same seed and scenario produce a
// byte-identical log regardless of how many evaluation threads run cells
// concurrently.
//
// Thread-safety: Tick / CurrentScale / counters / ActionLog are safe to call
// from any thread; one mutex guards all controller state (see DESIGN.md
// "Concurrency invariants & lock hierarchy": AutoscaleLoop::tick_mu_ ->
// AutoscaleController::mu_, and mu_ is terminal — no lock is acquired while
// holding it).
#ifndef SRC_AUTOSCALE_CONTROLLER_H_
#define SRC_AUTOSCALE_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/autoscale/policy.h"
#include "src/core/thread_annotations.h"

namespace deeprest {

struct AutoscaleControllerConfig {
  SizingConfig sizing;
  // Windows between control decisions. Shorter reacts faster but acts on
  // noisier single-window evidence; the default matches a ~30-minute
  // interval at the paper's 48 windows/day.
  size_t control_interval = 4;
  // Extra windows beyond the interval the predictive policy peeks ahead.
  size_t lookahead = 4;
  // Damping (see file comment). Cooldowns are in windows, patience in ticks.
  size_t up_cooldown = 4;
  size_t down_cooldown = 8;
  size_t down_patience = 2;
};

struct ScalingAction {
  size_t window = 0;
  std::string component;
  size_t replicas_before = 1;
  size_t replicas_after = 1;
  double capacity_before = 0.0;
  double capacity_after = 0.0;
  double demand_cpu = 0.0;  // demand estimate the decision was based on
  std::string reason;       // "scale-out" | "scale-in" | "grow" | "shrink"

  // Deterministic log line, e.g.
  //   "w=0412 ComposePostService replicas 2->4 cap 40 demand 91.3 scale-out"
  std::string ToString() const;
};

struct ComponentScale {
  size_t replicas = 1;
  double capacity_cpu = 50.0;
  bool stateful = false;
};

struct ControllerCounters {
  uint64_t ticks = 0;
  uint64_t scale_outs = 0;        // horizontal up
  uint64_t scale_ins = 0;         // horizontal down
  uint64_t grows = 0;             // vertical up
  uint64_t shrinks = 0;           // vertical down
  uint64_t holds = 0;             // policy proposed no change
  uint64_t blank_holds = 0;       // held because telemetry was missing
  uint64_t cooldown_blocks = 0;   // change wanted, cooldown said no
  uint64_t patience_blocks = 0;   // scale-down wanted, streak not long enough
};

class AutoscaleController {
 public:
  // The policy must outlive the controller and be stateless across calls
  // (see ScalingPolicy).
  AutoscaleController(const ScalingPolicy& policy,
                      const AutoscaleControllerConfig& config);

  // Registers a component at its initial deployment. Not thread-safe against
  // Tick — register everything before the loop starts.
  void AddComponent(const std::string& name, bool stateful, size_t replicas,
                    double capacity_cpu);

  // One control decision at `window` (absolute). Observations missing a
  // registered component (or marked blank) hold that component's scale.
  // Returns the actions taken, already reflected in CurrentScale().
  std::vector<ScalingAction> Tick(
      size_t window, const std::map<std::string, ComponentObservation>& observations,
      const PolicyInputs& inputs);

  std::map<std::string, ComponentScale> CurrentScale() const;
  ControllerCounters counters() const;
  // Every action ever taken, as deterministic log lines in decision order.
  std::vector<std::string> ActionLog() const;

  const AutoscaleControllerConfig& config() const { return config_; }
  const char* policy_name() const { return policy_->name(); }

 private:
  struct ComponentState {
    ComponentScale scale;
    // Window of the last applied change in each direction; very negative so
    // the first tick is never cooldown-blocked.
    int64_t last_up = kNever;
    int64_t last_down = kNever;
    size_t down_streak = 0;  // consecutive ticks proposing a lower target
  };
  static constexpr int64_t kNever = -(int64_t(1) << 40);

  const ScalingPolicy* policy_;
  AutoscaleControllerConfig config_;

  // deeprest-lint: lock-level(after AutoscaleLoop::tick_mu_)
  mutable Mutex mu_;
  std::map<std::string, ComponentState> state_ DEEPREST_GUARDED_BY(mu_);
  std::vector<std::string> log_ DEEPREST_GUARDED_BY(mu_);
  ControllerCounters counters_ DEEPREST_GUARDED_BY(mu_);
};

}  // namespace deeprest

#endif  // SRC_AUTOSCALE_CONTROLLER_H_
