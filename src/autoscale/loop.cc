#include "src/autoscale/loop.h"

#include <algorithm>
#include <utility>

#include "src/autoscale/scenario.h"

namespace deeprest {

AutoscaleLoop::AutoscaleLoop(AutoscaleController& controller, WhatIfSource& whatif,
                             IngestPipeline& pipeline, const Application& app,
                             TrafficSeries planned, size_t plan_base,
                             const AutoscaleLoopConfig& config, ActionSink sink)
    : controller_(controller), whatif_(whatif), pipeline_(pipeline), app_(&app),
      planned_(std::move(planned)), plan_base_(plan_base), config_(config),
      sink_(std::move(sink)) {
  if (config_.health != nullptr) {
    health_ = config_.health->Register(config_.health_name, config_.stall_threshold_us);
  }
  MutexLock lock(tick_mu_);
  // First decision once a full interval beyond the plan base is sealed.
  next_tick_ = plan_base_ + config_.control_interval;
  controlled_through_.store(plan_base_, std::memory_order_release);
}

AutoscaleLoop::~AutoscaleLoop() { Stop(); }

void AutoscaleLoop::Start() {
  MutexLock lock(lifecycle_mu_);
  if (thread_.joinable()) {
    return;
  }
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void AutoscaleLoop::Stop() {
  // Same shape as ContinualLearner::Stop: the flag flips under lifecycle_mu_
  // so a racing Start cannot clear it between the store and the join.
  MutexLock lock(lifecycle_mu_);
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) {
    thread_.join();
  }
  health_.MarkStopped();
}

void AutoscaleLoop::Loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    health_.Heartbeat();
    TickOnce();
    std::this_thread::sleep_for(config_.poll_interval);
  }
}

bool AutoscaleLoop::TickOnce() {
  MutexLock lock(tick_mu_);
  const size_t frontier = pipeline_.WindowFrontier();
  if (frontier == 0) {
    return false;
  }
  // Live watermark: the frontier window may still be receiving events.
  pipeline_.Fold(frontier - 1);
  const size_t featured = pipeline_.featured_windows();
  if (featured < next_tick_) {
    return false;
  }
  const size_t decision_window = featured;  // first window the decision governs
  const size_t evidence_window = featured - 1;  // newest sealed window

  // Observations from the newest sealed window. In serve mode the ingested
  // CPU metric is the component's demand (the telemetry the estimator was
  // trained on), so the demand estimate is the metric itself and utilization
  // follows from the controller's current deployment.
  const MetricsStore metrics = pipeline_.MetricsCopy();
  const std::vector<DataQuality> quality =
      pipeline_.QualitySlice(evidence_window, featured);
  const bool blank = fail_static_.load(std::memory_order_acquire) ||
                     (!quality.empty() && quality.front().score < config_.min_quality);
  const std::map<std::string, ComponentScale> scale = controller_.CurrentScale();
  std::map<std::string, ComponentObservation> observations;
  for (const auto& spec : app_->components()) {
    ComponentObservation obs;
    auto it = scale.find(spec.name);
    if (it != scale.end()) {
      obs.replicas = it->second.replicas;
      obs.capacity_cpu = it->second.capacity_cpu;
      obs.stateful = it->second.stateful;
    }
    obs.demand_cpu = metrics.At({spec.name, ResourceKind::kCpu}, evidence_window);
    obs.utilization =
        obs.demand_cpu /
        std::max(1e-9, static_cast<double>(obs.replicas) * obs.capacity_cpu);
    obs.blank = blank;
    observations[spec.name] = obs;
  }

  // What-if forecast over the planned traffic for the coming interval plus
  // the lookahead. An empty estimate (no model yet, request shed) simply
  // leaves the predictive policy on its observational fallback.
  const size_t lookahead = controller_.config().lookahead;
  DemandSeries forecast;
  bool have_forecast = false;
  if (decision_window >= plan_base_) {
    const size_t plan_from = decision_window - plan_base_;
    const size_t plan_to =
        plan_from + controller_.config().control_interval + lookahead;
    const TrafficSeries slice = SliceTraffic(planned_, plan_from, plan_to);
    if (slice.windows() > 0) {
      const EstimateMap estimates =
          whatif_.Estimate(slice, config_.whatif_seed + decision_window);
      if (!estimates.empty()) {
        forecast = ForecastFromEstimates(estimates, decision_window);
        have_forecast = true;
      }
    }
  }

  PolicyInputs inputs;
  inputs.window = decision_window;
  inputs.horizon = controller_.config().control_interval;
  inputs.lookahead = lookahead;
  inputs.forecast = have_forecast ? &forecast : nullptr;

  const std::vector<ScalingAction> actions =
      controller_.Tick(decision_window, observations, inputs);
  if (sink_ && !actions.empty()) {
    sink_(actions);
  }
  next_tick_ = decision_window + controller_.config().control_interval;
  controlled_through_.store(next_tick_, std::memory_order_release);
  ticks_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace deeprest
