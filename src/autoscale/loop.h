// Background controller lifecycle for the serving stack.
//
// Runs alongside the ContinualLearner with the same shape: a single
// background thread polls the IngestPipeline and, every control_interval
// newly featured windows, builds observations from the folded metrics,
// fetches a what-if forecast for the operator's planned traffic through a
// WhatIfSource (EstimationService in production), and ticks the
// AutoscaleController. The actions land in a caller-provided sink — in a
// real deployment that would be the orchestrator API; in the simulator it is
// Simulator::SetReplicas / SetReplicaCapacity.
//
// Degraded telemetry: a window whose sealed DataQuality falls below
// min_quality marks its components' observations blank, so the controller
// fail-statics through collector outages instead of scaling on imputed data.
//
// Lock hierarchy (DESIGN.md "Concurrency invariants & lock hierarchy"):
//   lifecycle_mu_ — Start/Stop/destruction only, guards thread_; never held
//                   while ticking.
//   tick_mu_      — serializes TickOnce against the background tick, then
//                   calls into AutoscaleController::mu_ (tick_mu_ -> mu_).
#ifndef SRC_AUTOSCALE_LOOP_H_
#define SRC_AUTOSCALE_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "src/autoscale/controller.h"
#include "src/core/thread_annotations.h"
#include "src/serve/health.h"
#include "src/serve/ingest_pipeline.h"
#include "src/serve/whatif.h"
#include "src/sim/app.h"

namespace deeprest {

struct AutoscaleLoopConfig {
  // Tick once per this many newly featured windows.
  size_t control_interval = 4;
  // How often the background thread polls the pipeline.
  std::chrono::milliseconds poll_interval{20};
  // Base seed for the what-if queries; the tick window is folded in so every
  // forecast is deterministic AND distinct.
  uint64_t whatif_seed = 1;
  // Sealed windows below this DataQuality score yield blank observations.
  double min_quality = 0.5;
  // Supervision: when set, the background loop heartbeats into the registry
  // under this component name. Must outlive the loop.
  HealthRegistry* health = nullptr;
  std::string health_name = "autoscale-loop";
  uint64_t stall_threshold_us = 500000;
};

class AutoscaleLoop {
 public:
  using ActionSink = std::function<void(const std::vector<ScalingAction>&)>;

  // controller / whatif / pipeline must outlive the loop. `planned` is the
  // operator-declared traffic plan the predictive policy forecasts against;
  // window 0 of the plan is absolute window `plan_base`. The sink may be
  // empty (actions only recorded in the controller's log).
  AutoscaleLoop(AutoscaleController& controller, WhatIfSource& whatif,
                IngestPipeline& pipeline, const Application& app,
                TrafficSeries planned, size_t plan_base,
                const AutoscaleLoopConfig& config = {}, ActionSink sink = {});
  ~AutoscaleLoop();

  AutoscaleLoop(const AutoscaleLoop&) = delete;
  AutoscaleLoop& operator=(const AutoscaleLoop&) = delete;

  void Start();
  void Stop();

  // One synchronous control attempt (also what the background thread runs):
  // folds the pipeline and ticks the controller if control_interval new
  // windows have been featured since the last tick. Returns true iff a tick
  // ran.
  bool TickOnce();

  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  // One past the last window a control decision covered.
  size_t controlled_through() const {
    return controlled_through_.load(std::memory_order_acquire);
  }

  // Degraded mode (Supervisor escalation): while set, every observation is
  // marked blank so the controller fail-statics — scale is held rather than
  // adjusted on evidence the supervision layer no longer trusts.
  void SetFailStatic(bool on) { fail_static_.store(on, std::memory_order_release); }
  bool fail_static() const { return fail_static_.load(std::memory_order_acquire); }

 private:
  void Loop();

  AutoscaleController& controller_;
  WhatIfSource& whatif_;
  IngestPipeline& pipeline_;
  const Application* app_;
  TrafficSeries planned_;
  size_t plan_base_;
  AutoscaleLoopConfig config_;
  ActionSink sink_;

  // Serializes TickOnce vs. the background tick; acquired before
  // AutoscaleController::mu_ (via controller_.Tick), never after it.
  // deeprest-lint: lock-level(before AutoscaleController::mu_, IngestPipeline::fold_mu_)
  Mutex tick_mu_;
  // Absolute window of the next due tick.
  size_t next_tick_ DEEPREST_GUARDED_BY(tick_mu_) = 0;

  // Start/Stop/destruction only (same pattern as ContinualLearner: the loop
  // thread never takes this mutex, so Stop can join while holding it).
  Mutex lifecycle_mu_;  // deeprest-lint: lock-level(leaf)
  std::thread thread_ DEEPREST_GUARDED_BY(lifecycle_mu_);

  std::atomic<uint64_t> ticks_{0};
  std::atomic<size_t> controlled_through_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> fail_static_{false};
  HealthHandle health_;
};

}  // namespace deeprest

#endif  // SRC_AUTOSCALE_LOOP_H_
