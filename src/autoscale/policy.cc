#include "src/autoscale/policy.h"

#include <algorithm>
#include <cmath>

namespace deeprest {

double DemandSeries::At(const std::string& component, size_t window,
                        double fallback) const {
  auto it = cpu.find(component);
  if (it == cpu.end() || it->second.empty()) {
    return fallback;
  }
  const size_t index = window <= base ? 0 : std::min(window - base, it->second.size() - 1);
  return it->second[index];
}

double DemandSeries::MaxOver(const std::string& component, size_t from, size_t to,
                             double fallback) const {
  auto it = cpu.find(component);
  if (it == cpu.end() || it->second.empty() || to <= from) {
    return fallback;
  }
  double best = 0.0;
  for (size_t w = from; w < to; ++w) {
    best = std::max(best, At(component, w, 0.0));
  }
  return best;
}

DemandSeries ForecastFromEstimates(const EstimateMap& estimates, size_t base,
                                   double upper_weight) {
  DemandSeries series;
  series.base = base;
  const double weight = std::clamp(upper_weight, 0.0, 1.0);
  for (const auto& [key, estimate] : estimates) {
    if (key.resource != ResourceKind::kCpu) {
      continue;
    }
    // Expected head plus a weighted share of the CI spread above it. A
    // degenerate interval (upper below expected) must never size BELOW the
    // expected demand, so the spread is floored at zero.
    std::vector<double> demand(estimate.expected.size(), 0.0);
    for (size_t t = 0; t < demand.size(); ++t) {
      const double upper = t < estimate.upper.size() ? estimate.upper[t] : 0.0;
      const double spread = std::max(0.0, upper - estimate.expected[t]);
      demand[t] = estimate.expected[t] + weight * spread;
    }
    series.cpu[key.component] = std::move(demand);
  }
  return series;
}

ComponentTarget SizeForDemand(double demand_cpu, const ComponentObservation& obs,
                              const SizingConfig& sizing, double target_utilization) {
  const double target = std::max(1e-6, target_utilization);
  const double demand = std::max(0.0, demand_cpu);
  ComponentTarget out;
  if (obs.stateful) {
    // Vertical: replicas stay put, the instance grows in quantized steps.
    out.replicas = std::max<size_t>(1, obs.replicas);
    const double needed = demand / (static_cast<double>(out.replicas) * target);
    const double step = std::max(1e-6, sizing.capacity_step_cpu);
    double capacity = std::ceil(needed / step) * step;
    out.capacity_cpu =
        std::clamp(capacity, sizing.min_capacity_cpu, sizing.max_capacity_cpu);
  } else {
    // Horizontal: per-replica capacity stays put, the count changes.
    out.capacity_cpu = obs.capacity_cpu;
    const double per_replica = std::max(1e-6, obs.capacity_cpu) * target;
    const size_t needed = static_cast<size_t>(std::ceil(demand / per_replica));
    out.replicas = std::clamp(needed, sizing.min_replicas, sizing.max_replicas);
  }
  return out;
}

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kReactive:
      return "reactive";
    case PolicyKind::kPredictive:
      return "predictive";
    case PolicyKind::kOracle:
      return "oracle";
  }
  return "unknown";
}

bool ParsePolicyKind(const std::string& name, PolicyKind& out) {
  for (PolicyKind kind : AllPolicyKinds()) {
    if (name == PolicyKindName(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

const std::vector<PolicyKind>& AllPolicyKinds() {
  static const std::vector<PolicyKind> kAll = {
      PolicyKind::kReactive, PolicyKind::kPredictive, PolicyKind::kOracle};
  return kAll;
}

std::unique_ptr<ScalingPolicy> MakePolicy(PolicyKind kind, const PolicyConfig& config) {
  switch (kind) {
    case PolicyKind::kReactive:
      return std::make_unique<ReactiveThresholdPolicy>(
          config.sizing, config.reactive_high_watermark, config.reactive_low_watermark,
          config.reactive_headroom);
    case PolicyKind::kPredictive:
      return std::make_unique<PredictiveDeepRestPolicy>(config.sizing,
                                                        config.predictive_headroom);
    case PolicyKind::kOracle:
      return std::make_unique<OraclePolicy>(config.sizing, config.oracle_utilization);
  }
  return nullptr;
}

std::optional<ComponentTarget> ReactiveThresholdPolicy::Desired(
    const std::string& /*component*/, const ComponentObservation& obs,
    const PolicyInputs& /*in*/) const {
  if (obs.utilization <= high_ && obs.utilization >= low_) {
    return std::nullopt;  // inside the dead band: hold
  }
  return SizeForDemand(obs.demand_cpu * headroom_, obs, sizing_,
                       sizing_.target_utilization);
}

std::optional<ComponentTarget> PredictiveDeepRestPolicy::Desired(
    const std::string& component, const ComponentObservation& obs,
    const PolicyInputs& in) const {
  // Peak of the forecast over the coming interval plus the lookahead, so the
  // deployment is sized before demand arrives — floored by the live demand
  // evidence: a forecast that underpredicts what is already observably
  // happening must never shrink the deployment below it. Components the
  // forecast does not cover degrade to the reactive demand estimate.
  const double fallback = obs.demand_cpu;
  double demand = fallback;
  if (in.forecast != nullptr) {
    demand = std::max(fallback,
                      in.forecast->MaxOver(component, in.window,
                                           in.window + in.horizon + in.lookahead,
                                           fallback));
  }
  return SizeForDemand(demand * headroom_, obs, sizing_, sizing_.target_utilization);
}

std::optional<ComponentTarget> OraclePolicy::Desired(const std::string& component,
                                                     const ComponentObservation& obs,
                                                     const PolicyInputs& in) const {
  double demand = obs.demand_cpu;
  if (in.truth != nullptr) {
    demand = in.truth->MaxOver(component, in.window, in.window + in.horizon, demand);
  }
  return SizeForDemand(demand, obs, sizing_, utilization_);
}

}  // namespace deeprest
