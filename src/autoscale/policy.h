// Scaling policies for the closed-loop autoscale controller (ROADMAP item 1).
//
// A policy answers one question per component per control tick: "what should
// this component's deployment be for the coming interval?" The three
// implementations bracket the design space the evaluation harness measures
// (SLO-violation rate vs. over-provisioned core-hours, the Sinan/DeepScaler
// methodology):
//   * Reactive  — threshold baseline. Acts only on the LAST observed
//     per-replica utilization: scale when it crosses a watermark, hold
//     inside the dead band. Inherits the classic HPA weakness that a
//     saturated utilization gauge under-reports true demand, so catching up
//     with a surge takes several multiplicative ticks.
//   * Predictive — DeepRest-driven. Sizes for the upper-confidence what-if
//     forecast over the coming interval plus a lookahead, so capacity is in
//     place BEFORE the demand arrives and releases as the forecast falls.
//   * Oracle    — upper bound. Reads the simulator's true demand series and
//     sizes exactly to the SLO knee: the zero-violation minimum-cost line
//     other policies are judged against.
//
// Policies are pure functions of their inputs and hold no per-tick state;
// hysteresis, cooldowns, and clamping live in the AutoscaleController. That
// split is what makes the controller's action log deterministic and the
// policies trivially thread-compatible.
#ifndef SRC_AUTOSCALE_POLICY_H_
#define SRC_AUTOSCALE_POLICY_H_

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/estimator.h"

namespace deeprest {

// One component's telemetry as the controller sees it at a tick.
struct ComponentObservation {
  size_t replicas = 1;
  double capacity_cpu = 50.0;  // per-replica capacity, percent points
  // Total demand estimate reconstructed from the utilization scrape
  // (utilization * replicas * capacity). Saturates when the deployment is
  // overloaded — the gauge cannot see past 100% per replica.
  double demand_cpu = 0.0;
  double utilization = 0.0;  // per-replica, fraction of capacity
  bool stateful = false;
  bool blank = false;  // telemetry missing this tick (scrape lost / outage)
};

// Per-component CPU demand over a window range; index 0 of each series is
// absolute window `base`. Used for both the DeepRest what-if forecast and
// the oracle's ground truth.
struct DemandSeries {
  size_t base = 0;
  std::map<std::string, std::vector<double>> cpu;

  bool Has(const std::string& component) const { return cpu.count(component) > 0; }
  // Demand at an absolute window, clamped into the series range; `fallback`
  // when the component has no series at all.
  double At(const std::string& component, size_t window, double fallback) const;
  // Max demand over absolute windows [from, to), clamped; `fallback` when
  // the component has no series or the range is empty.
  double MaxOver(const std::string& component, size_t from, size_t to,
                 double fallback) const;
};

// Extracts a DemandSeries from a what-if estimate. `upper_weight` is the risk
// appetite: how much of the CI spread above the expected CPU head to provision
// for. 1.0 (default) takes the full upper CI — scaling for the expected value
// invites violations every time the interval estimate is honest about its
// uncertainty. Lower values trade that insurance for core-hours; at far
// extrapolations (unseen scale) the full CI can be very loose.
DemandSeries ForecastFromEstimates(const EstimateMap& estimates, size_t base,
                                   double upper_weight = 1.0);

struct PolicyInputs {
  size_t window = 0;     // first window the decision governs (absolute)
  size_t horizon = 1;    // windows until the next decision (control interval)
  size_t lookahead = 0;  // extra windows the predictive policy peeks ahead
  const DemandSeries* forecast = nullptr;  // what-if upper CI (predictive)
  const DemandSeries* truth = nullptr;     // ground-truth demand (oracle)
};

struct ComponentTarget {
  size_t replicas = 1;
  double capacity_cpu = 50.0;
};

struct SizingConfig {
  // Per-replica utilization the sizing aims at; below the capacity model's
  // SLO knee so ordinary window-to-window wobble does not violate.
  double target_utilization = 0.60;
  size_t min_replicas = 1;
  size_t max_replicas = 64;
  // Vertical scaling (stateful components: replicas stay fixed, the one
  // instance grows/shrinks) moves in quantized steps between the bounds.
  double min_capacity_cpu = 25.0;
  double max_capacity_cpu = 400.0;
  double capacity_step_cpu = 25.0;
};

// Smallest deployment keeping utilization at or below `target_utilization`
// for `demand_cpu`: more replicas for stateless components, a bigger replica
// (quantized, count unchanged) for stateful ones.
ComponentTarget SizeForDemand(double demand_cpu, const ComponentObservation& obs,
                              const SizingConfig& sizing, double target_utilization);

class ScalingPolicy {
 public:
  explicit ScalingPolicy(const SizingConfig& sizing) : sizing_(sizing) {}
  virtual ~ScalingPolicy() = default;

  virtual const char* name() const = 0;

  // Desired deployment for one component, or nullopt to hold. Must be a pure
  // function of its arguments: the controller owns hysteresis, cooldowns,
  // and clamping.
  virtual std::optional<ComponentTarget> Desired(const std::string& component,
                                                 const ComponentObservation& obs,
                                                 const PolicyInputs& in) const = 0;

  const SizingConfig& sizing() const { return sizing_; }

 protected:
  SizingConfig sizing_;
};

enum class PolicyKind { kReactive, kPredictive, kOracle };

const char* PolicyKindName(PolicyKind kind);
bool ParsePolicyKind(const std::string& name, PolicyKind& out);
const std::vector<PolicyKind>& AllPolicyKinds();

// Knobs for all three policies in one bundle, so benchmark cells differ only
// in the PolicyKind they pass to MakePolicy.
struct PolicyConfig {
  SizingConfig sizing;
  // Reactive dead band on observed per-replica utilization: act only
  // outside [low_watermark, high_watermark].
  double reactive_high_watermark = 0.80;
  double reactive_low_watermark = 0.45;
  // Margin on the reconstructed demand (a saturated gauge under-reports).
  double reactive_headroom = 1.10;
  // Margin on the forecast (usually 1.0 — the upper CI already carries it).
  double predictive_headroom = 1.0;
  // The oracle sizes to this utilization: just under the SLO knee.
  double oracle_utilization = 0.82;
};

std::unique_ptr<ScalingPolicy> MakePolicy(PolicyKind kind, const PolicyConfig& config);

// --- The three implementations (exposed for targeted unit tests) ---

class ReactiveThresholdPolicy : public ScalingPolicy {
 public:
  ReactiveThresholdPolicy(const SizingConfig& sizing, double high_watermark,
                          double low_watermark, double headroom)
      : ScalingPolicy(sizing), high_(high_watermark), low_(low_watermark),
        headroom_(headroom) {}

  const char* name() const override { return "reactive"; }
  std::optional<ComponentTarget> Desired(const std::string& component,
                                         const ComponentObservation& obs,
                                         const PolicyInputs& in) const override;

 private:
  double high_;
  double low_;
  double headroom_;
};

class PredictiveDeepRestPolicy : public ScalingPolicy {
 public:
  PredictiveDeepRestPolicy(const SizingConfig& sizing, double headroom)
      : ScalingPolicy(sizing), headroom_(headroom) {}

  const char* name() const override { return "predictive"; }
  std::optional<ComponentTarget> Desired(const std::string& component,
                                         const ComponentObservation& obs,
                                         const PolicyInputs& in) const override;

 private:
  double headroom_;
};

class OraclePolicy : public ScalingPolicy {
 public:
  OraclePolicy(const SizingConfig& sizing, double oracle_utilization)
      : ScalingPolicy(sizing), utilization_(oracle_utilization) {}

  const char* name() const override { return "oracle"; }
  std::optional<ComponentTarget> Desired(const std::string& component,
                                         const ComponentObservation& obs,
                                         const PolicyInputs& in) const override;

 private:
  double utilization_;
};

}  // namespace deeprest

#endif  // SRC_AUTOSCALE_POLICY_H_
