#include "src/autoscale/scenario.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace deeprest {

const char* ScenarioKindName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kDiurnal:
      return "diurnal";
    case ScenarioKind::kFlashCrowd:
      return "flash_crowd";
    case ScenarioKind::kApiMixDrift:
      return "api_mix_drift";
  }
  return "unknown";
}

bool ParseScenarioKind(const std::string& name, ScenarioKind& out) {
  for (ScenarioKind kind : AllScenarioKinds()) {
    if (name == ScenarioKindName(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

const std::vector<ScenarioKind>& AllScenarioKinds() {
  static const std::vector<ScenarioKind> kAll = {
      ScenarioKind::kDiurnal, ScenarioKind::kFlashCrowd, ScenarioKind::kApiMixDrift};
  return kAll;
}

TrafficSeries SliceTraffic(const TrafficSeries& series, size_t from, size_t to) {
  to = std::min(to, series.windows());
  from = std::min(from, to);
  TrafficSeries out(series.apis(), to - from);
  for (size_t w = from; w < to; ++w) {
    for (size_t a = 0; a < series.api_count(); ++a) {
      out.set_rate(w - from, a, series.rate(w, a));
    }
  }
  return out;
}

namespace {

TrafficSeries Diurnal(const TrafficSpec& base, const ScenarioSpec& scenario, Rng& rng) {
  TrafficSpec spec = base;
  spec.days = scenario.days;
  spec.user_scale *= scenario.user_scale;
  return GenerateTraffic(spec, rng);
}

}  // namespace

TrafficSeries BuildScenarioTraffic(const TrafficSpec& base, const ScenarioSpec& scenario,
                                   uint64_t seed) {
  Rng rng(seed);
  switch (scenario.kind) {
    case ScenarioKind::kDiurnal:
      return Diurnal(base, scenario, rng);

    case ScenarioKind::kFlashCrowd: {
      TrafficSeries series = Diurnal(base, scenario, rng);
      const size_t windows = series.windows();
      const size_t start = std::min(
          windows, static_cast<size_t>(scenario.flash_start_frac * windows));
      const size_t end = std::min(windows, start + scenario.flash_windows);
      for (size_t w = start; w < end; ++w) {
        // Half-strength shoulders so the surge has a one-window ramp.
        const bool shoulder = w == start || w + 1 == end;
        const double factor =
            shoulder ? 1.0 + (scenario.flash_factor - 1.0) * 0.5 : scenario.flash_factor;
        for (size_t a = 0; a < series.api_count(); ++a) {
          series.set_rate(w, a, series.rate(w, a) * factor);
        }
      }
      return series;
    }

    case ScenarioKind::kApiMixDrift: {
      // The composition rotates over the run: each API's share slides toward
      // its neighbour's, so read-heavy traffic turns write-heavy (or vice
      // versa) and the hot components move. Day-level granularity keeps the
      // drift smooth while reusing the generator's jitter model per day.
      assert(!base.mix.empty());
      TrafficSpec spec = base;
      spec.days = 1;
      spec.user_scale *= scenario.user_scale;
      TrafficSeries out;
      for (size_t day = 0; day < scenario.days; ++day) {
        const double t = scenario.days <= 1
                             ? 1.0
                             : static_cast<double>(day) /
                                   static_cast<double>(scenario.days - 1);
        const double blend = scenario.drift_strength * t;
        TrafficSpec day_spec = spec;
        for (size_t a = 0; a < base.mix.size(); ++a) {
          const double rotated = base.mix[(a + 1) % base.mix.size()].weight;
          day_spec.mix[a].weight =
              (1.0 - blend) * base.mix[a].weight + blend * rotated;
        }
        const TrafficSeries day_series = GenerateTraffic(day_spec, rng);
        if (day == 0) {
          out = day_series;
        } else {
          out.Append(day_series);
        }
      }
      return out;
    }
  }
  return TrafficSeries();
}

}  // namespace deeprest
