// Traffic scenarios for the closed-loop autoscaling evaluation.
//
// Three stressors, each probing a different controller weakness:
//   * diurnal      — the paper's two-peak day at an unseen user scale; the
//                    steady-state case every policy should handle.
//   * flash_crowd  — a diurnal day with a sudden multi-x surge (breaking
//                    news, a viral post): punishes policies that only react
//                    to the last sample.
//   * api_mix_drift— the API composition rotates over the run (paper
//                    section 5.3's unseen-composition queries): per-API
//                    resource attribution decides whether the forecast sees
//                    the hot components move.
#ifndef SRC_AUTOSCALE_SCENARIO_H_
#define SRC_AUTOSCALE_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/workload/traffic.h"

namespace deeprest {

enum class ScenarioKind { kDiurnal, kFlashCrowd, kApiMixDrift };

const char* ScenarioKindName(ScenarioKind kind);
bool ParseScenarioKind(const std::string& name, ScenarioKind& out);
const std::vector<ScenarioKind>& AllScenarioKinds();

struct ScenarioSpec {
  ScenarioKind kind = ScenarioKind::kDiurnal;
  size_t days = 2;
  // Multiplies the base spec's user_scale (unseen-scale territory, where
  // autoscaling decisions actually move replica counts).
  double user_scale = 2.0;
  // Flash crowd: the surge multiplier, where it starts (fraction of the
  // series), and how many windows it lasts (ramping half a window in/out).
  double flash_factor = 3.0;
  double flash_start_frac = 0.55;
  size_t flash_windows = 6;
  // API-mix drift: weight of the rotated mix at the END of the run (0 = no
  // drift, 1 = fully rotated).
  double drift_strength = 0.7;
};

// Builds the scenario on top of a base TrafficSpec (typically the harness's
// QuerySpec: same APIs, mix, and shape as the learning phase). Deterministic
// given the seed.
TrafficSeries BuildScenarioTraffic(const TrafficSpec& base, const ScenarioSpec& scenario,
                                   uint64_t seed);

// Copy of windows [from, to) of a series (same API set).
TrafficSeries SliceTraffic(const TrafficSeries& series, size_t from, size_t to);

}  // namespace deeprest

#endif  // SRC_AUTOSCALE_SCENARIO_H_
