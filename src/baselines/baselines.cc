#include "src/baselines/baselines.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/nn/optimizer.h"
#include "src/nn/ops.h"

namespace deeprest {

// ---- ResourceAwareDl ----

ResourceAwareDl::ResourceAwareDl(const ResourceAwareDlConfig& config) : config_(config) {}

Tensor ResourceAwareDl::InputAt(float prev_day_value, size_t window_of_day) const {
  const float phase = 2.0f * static_cast<float>(M_PI) * static_cast<float>(window_of_day) /
                      static_cast<float>(windows_per_day_);
  return Tensor::Constant(
      Matrix::Column({prev_day_value, std::sin(phase), std::cos(phase)}));
}

void ResourceAwareDl::Learn(const MetricsStore& metrics, size_t from, size_t to,
                            size_t windows_per_day, const std::vector<MetricKey>& resources) {
  windows_per_day_ = windows_per_day;
  const size_t total_windows = to - from;
  assert(total_windows / windows_per_day >= 2 &&
         "resource-aware DL needs at least two days of history");

  Rng rng(config_.seed);
  store_ = ParameterStore();
  experts_.clear();
  experts_.reserve(resources.size());
  std::vector<std::vector<float>> scaled_series(resources.size());
  for (size_t i = 0; i < resources.size(); ++i) {
    Expert expert;
    expert.key = resources[i];
    const std::string name = "rdl" + std::to_string(i);
    expert.gru = GruCell(store_, name + ".gru", 3, config_.hidden_dim, rng);
    expert.head = Linear(store_, name + ".head", config_.hidden_dim, 3, rng);
    const auto series = metrics.Series(resources[i], from, to);
    double max_value = 1e-9;
    for (double v : series) {
      max_value = std::max(max_value, v);
    }
    expert.y_scale = max_value;
    auto& scaled = scaled_series[i];
    scaled.reserve(series.size());
    for (double v : series) {
      scaled.push_back(static_cast<float>(v / max_value));
    }
    expert.last_day.assign(scaled.end() - static_cast<ptrdiff_t>(windows_per_day),
                           scaled.end());
    experts_.push_back(std::move(expert));
  }

  const float lo_q = (1.0f - config_.delta) / 2.0f;
  const float up_q = config_.delta + (1.0f - config_.delta) / 2.0f;
  const std::vector<float> deltas = {0.5f, lo_q, up_q};
  AdamOptimizer optimizer(store_, config_.learning_rate);

  // Training sequence: predict day d window w from day d-1 window w.
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (size_t i = 0; i < experts_.size(); ++i) {
      Expert& expert = experts_[i];
      const auto& scaled = scaled_series[i];
      optimizer.ZeroGrad();
      Tensor h = expert.gru.InitialState();
      std::vector<Tensor> losses;
      losses.reserve(total_windows - windows_per_day);
      for (size_t t = windows_per_day; t < total_windows; ++t) {
        Tensor x = InputAt(scaled[t - windows_per_day], t % windows_per_day);
        h = expert.gru.Step(x, h);
        losses.push_back(PinballLoss(expert.head.Forward(h), scaled[t], deltas));
        // Keep the graph bounded: detach every half-day.
        if (t % (windows_per_day / 2 + 1) == 0) {
          h = h.Detach();
        }
      }
      Tensor loss = Affine(AddN(losses), 1.0f / static_cast<float>(losses.size()), 0.0f);
      loss.Backward();
      ClipGradNorm(store_, config_.grad_clip);
      optimizer.Step();
    }
  }
}

EstimateMap ResourceAwareDl::Forecast(size_t horizon) const {
  assert(trained());
  NoGradGuard no_grad;
  EstimateMap out;
  for (const auto& expert : experts_) {
    std::vector<float> prev_day = expert.last_day;
    std::vector<float> next_day;
    next_day.reserve(windows_per_day_);
    Tensor h = expert.gru.InitialState();
    ResourceEstimate estimate;
    for (size_t t = 0; t < horizon; ++t) {
      const size_t window_of_day = t % windows_per_day_;
      Tensor x = InputAt(prev_day[window_of_day], window_of_day);
      h = expert.gru.Step(x, h);
      const Tensor output = expert.head.Forward(h);
      const Matrix& y = output.value();
      const double expected = std::max(0.0, static_cast<double>(y.At(0, 0)));
      double lower = std::max(0.0, static_cast<double>(y.At(1, 0)));
      double upper = std::max(0.0, static_cast<double>(y.At(2, 0)));
      lower = std::min(lower, expected);
      upper = std::max(upper, expected);
      estimate.expected.push_back(expected * expert.y_scale);
      estimate.lower.push_back(lower * expert.y_scale);
      estimate.upper.push_back(upper * expert.y_scale);
      next_day.push_back(static_cast<float>(expected));
      if (window_of_day + 1 == windows_per_day_) {
        // Roll into the following day on our own predictions.
        prev_day = next_day;
        next_day.clear();
      }
    }
    out.emplace(expert.key, std::move(estimate));
  }
  return out;
}

// ---- SimpleScaling ----

void SimpleScaling::Learn(const MetricsStore& metrics, const TrafficSeries& learn_traffic,
                          size_t from, size_t to, size_t windows_per_day,
                          const std::vector<MetricKey>& resources) {
  windows_per_day_ = windows_per_day;
  const size_t total_windows = to - from;
  const size_t days = std::max<size_t>(1, total_windows / windows_per_day);

  traffic_profile_.assign(windows_per_day, 0.0);
  for (size_t t = 0; t < total_windows && t < learn_traffic.windows(); ++t) {
    traffic_profile_[t % windows_per_day] += learn_traffic.TotalAt(t);
  }
  for (double& v : traffic_profile_) {
    v /= static_cast<double>(days);
  }

  for (const auto& key : resources) {
    auto& profile = utilization_profile_[key];
    profile.assign(windows_per_day, 0.0);
    const auto series = metrics.Series(key, from, to);
    for (size_t t = 0; t < series.size(); ++t) {
      profile[t % windows_per_day] += series[t];
    }
    for (double& v : profile) {
      v /= static_cast<double>(days);
    }
  }
}

EstimateMap SimpleScaling::Estimate(const TrafficSeries& query_traffic) const {
  EstimateMap out;
  for (const auto& [key, profile] : utilization_profile_) {
    ResourceEstimate estimate;
    for (size_t t = 0; t < query_traffic.windows(); ++t) {
      const size_t window_of_day = t % windows_per_day_;
      const double factor =
          query_traffic.TotalAt(t) / std::max(traffic_profile_[window_of_day], 1e-9);
      const double value = profile[window_of_day] * factor;
      estimate.expected.push_back(value);
      estimate.lower.push_back(value);
      estimate.upper.push_back(value);
    }
    out.emplace(key, std::move(estimate));
  }
  return out;
}

// ---- ComponentAwareScaling ----

std::map<std::string, double> ComponentAwareScaling::CountInvocations(
    const TraceCollector& traces, size_t window) {
  std::map<std::string, double> counts;
  for (const Trace& trace : traces.TracesAt(window)) {
    for (const Span& span : trace.spans()) {
      counts[span.component] += 1.0;
    }
  }
  return counts;
}

void ComponentAwareScaling::Learn(const MetricsStore& metrics,
                                  const TraceCollector& learn_traces, size_t from, size_t to,
                                  size_t windows_per_day,
                                  const std::vector<MetricKey>& resources) {
  windows_per_day_ = windows_per_day;
  const size_t total_windows = to - from;
  const size_t days = std::max<size_t>(1, total_windows / windows_per_day);

  invocation_profile_.clear();
  for (size_t t = 0; t < total_windows; ++t) {
    for (const auto& [component, count] : CountInvocations(learn_traces, from + t)) {
      auto& profile = invocation_profile_[component];
      if (profile.empty()) {
        profile.assign(windows_per_day, 0.0);
      }
      profile[t % windows_per_day] += count;
    }
  }
  for (auto& [component, profile] : invocation_profile_) {
    for (double& v : profile) {
      v /= static_cast<double>(days);
    }
  }

  for (const auto& key : resources) {
    auto& profile = utilization_profile_[key];
    profile.assign(windows_per_day, 0.0);
    const auto series = metrics.Series(key, from, to);
    for (size_t t = 0; t < series.size(); ++t) {
      profile[t % windows_per_day] += series[t];
    }
    for (double& v : profile) {
      v /= static_cast<double>(days);
    }
  }
}

EstimateMap ComponentAwareScaling::Estimate(const TraceCollector& query_traces, size_t from,
                                            size_t to) const {
  EstimateMap out;
  const size_t horizon = to - from;
  // Precompute per-window component factors.
  std::vector<std::map<std::string, double>> factors(horizon);
  for (size_t t = 0; t < horizon; ++t) {
    const auto counts = CountInvocations(query_traces, from + t);
    for (const auto& [component, count] : counts) {
      auto it = invocation_profile_.find(component);
      if (it == invocation_profile_.end()) {
        continue;
      }
      const double baseline = it->second[t % windows_per_day_];
      factors[t][component] = count / std::max(baseline, 1e-9);
    }
  }

  for (const auto& [key, profile] : utilization_profile_) {
    ResourceEstimate estimate;
    for (size_t t = 0; t < horizon; ++t) {
      const size_t window_of_day = t % windows_per_day_;
      double factor = 1.0;  // components never invoked keep their profile
      auto it = factors[t].find(key.component);
      if (it != factors[t].end()) {
        factor = it->second;
      } else if (invocation_profile_.count(key.component) > 0) {
        factor = 0.0;  // normally-invoked component saw no query traffic
      }
      const double value = profile[window_of_day] * factor;
      estimate.expected.push_back(value);
      estimate.lower.push_back(value);
      estimate.upper.push_back(value);
    }
    out.emplace(key, std::move(estimate));
  }
  return out;
}

}  // namespace deeprest
