// Comparison baselines (paper section 5.1).
//
//  * ResourceAwareDl — "resrc-aware DL": one recurrent network per resource
//    trained purely on historical utilization (represents [53, 64, 66, 69]).
//    It never sees the query traffic, which is exactly its documented flaw.
//  * SimpleScaling — scales every resource of every component by the same
//    total-traffic ratio w.r.t. the learning phase.
//  * ComponentAwareScaling — uses distributed traces to scale each component
//    by its own invocation ratio, but applies one factor to all resources of
//    the component.
#ifndef SRC_BASELINES_BASELINES_H_
#define SRC_BASELINES_BASELINES_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/estimator.h"
#include "src/nn/layers.h"
#include "src/telemetry/metrics.h"
#include "src/trace/collector.h"
#include "src/workload/traffic.h"

namespace deeprest {

struct ResourceAwareDlConfig {
  size_t hidden_dim = 10;
  size_t epochs = 25;
  float learning_rate = 0.02f;
  float delta = 0.90f;
  float grad_clip = 5.0f;
  uint64_t seed = 1;
};

// Forecasts next-day utilization from the previous day's utilization of the
// same resource plus a time-of-day encoding.
class ResourceAwareDl {
 public:
  explicit ResourceAwareDl(const ResourceAwareDlConfig& config = {});

  void Learn(const MetricsStore& metrics, size_t from, size_t to, size_t windows_per_day,
             const std::vector<MetricKey>& resources);

  // Forecast `horizon` windows following the learning range. Multi-day
  // horizons roll forward on the model's own predictions.
  EstimateMap Forecast(size_t horizon) const;

  bool trained() const { return !experts_.empty(); }

 private:
  struct Expert {
    MetricKey key;
    GruCell gru;
    Linear head;
    double y_scale = 1.0;
    std::vector<float> last_day;  // scaled utilization of the final learn day
  };

  Tensor InputAt(float prev_day_value, size_t window_of_day) const;

  ResourceAwareDlConfig config_;
  ParameterStore store_;
  std::vector<Expert> experts_;
  size_t windows_per_day_ = 0;
};

// Scales all resources by the total-request ratio per window-of-day.
class SimpleScaling {
 public:
  void Learn(const MetricsStore& metrics, const TrafficSeries& learn_traffic, size_t from,
             size_t to, size_t windows_per_day, const std::vector<MetricKey>& resources);

  // Requires only the query API traffic (no traces).
  EstimateMap Estimate(const TrafficSeries& query_traffic) const;

 private:
  size_t windows_per_day_ = 0;
  std::vector<double> traffic_profile_;  // mean total requests per window-of-day
  std::map<MetricKey, std::vector<double>> utilization_profile_;
};

// Scales each component by its own invocation ratio derived from traces.
class ComponentAwareScaling {
 public:
  void Learn(const MetricsStore& metrics, const TraceCollector& learn_traces, size_t from,
             size_t to, size_t windows_per_day, const std::vector<MetricKey>& resources);

  // Query traces (synthetic or real) provide per-component invocation counts.
  EstimateMap Estimate(const TraceCollector& query_traces, size_t from, size_t to) const;

 private:
  static std::map<std::string, double> CountInvocations(const TraceCollector& traces,
                                                        size_t window);

  size_t windows_per_day_ = 0;
  // invocation_profile_[component][window_of_day] = mean spans per window.
  std::map<std::string, std::vector<double>> invocation_profile_;
  std::map<MetricKey, std::vector<double>> utilization_profile_;
};

}  // namespace deeprest

#endif  // SRC_BASELINES_BASELINES_H_
