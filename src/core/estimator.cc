#include "src/core/estimator.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/nn/batched.h"
#include "src/nn/optimizer.h"
#include "src/nn/ops.h"
#include "src/nn/serialize.h"

namespace deeprest {

namespace {

std::string ExpertName(size_t index) { return "expert" + std::to_string(index); }

}  // namespace

DeepRestEstimator::DeepRestEstimator(const EstimatorConfig& config) : config_(config) {}

void DeepRestEstimator::BuildModel(size_t feature_dim,
                                   const std::vector<MetricKey>& resources) {
  Rng rng(config_.seed);
  experts_.clear();
  store_ = ParameterStore();
  experts_.reserve(resources.size());
  const size_t h = config_.hidden_dim;
  for (size_t i = 0; i < resources.size(); ++i) {
    Expert expert;
    expert.key = resources[i];
    const std::string name = ExpertName(i);
    // Mask logits start at +1 so sigmoid ~ 0.73: features begin mostly "on"
    // and irrelevant ones are learned away.
    expert.mask = store_.Create(name + ".mask", Matrix(feature_dim, 1, 1.0f));
    expert.gru = GruCell(store_, name + ".gru", feature_dim, h, rng);
    expert.ff = Linear(store_, name + ".ff", feature_dim, h, rng);
    expert.head = Linear(store_, name + ".head", 2 * h, 3, rng);
    expert.skip = Linear(store_, name + ".skip", feature_dim, 3, rng);
    expert.initial_gru = expert.gru.FlattenedParameters();
    experts_.push_back(std::move(expert));
  }
  expert_index_.clear();
  for (size_t i = 0; i < experts_.size(); ++i) {
    expert_index_.emplace(experts_[i].key, static_cast<int>(i));
  }
  const size_t e = experts_.size();
  // Attention starts at zero: experts begin independent and learn to listen.
  alpha_ = store_.Create("attention.alpha", Matrix(e, e));
  diag_zero_mask_ = Matrix(e, e, 1.0f);
  for (size_t i = 0; i < e; ++i) {
    diag_zero_mask_.At(i, i) = 0.0f;
  }
  diag_mask_tensor_ = Tensor::Constant(diag_zero_mask_);
}

Tensor DeepRestEstimator::ScaledInput(const std::vector<float>& raw) const {
  Tensor out = Tensor::NewConstant(feature_scale_.size(), 1);
  Matrix& x = out.mutable_value();
  const size_t n = std::min(raw.size(), feature_scale_.size());
  for (size_t d = 0; d < n; ++d) {
    x.At(d, 0) = raw[d] / feature_scale_[d];
  }
  for (size_t d = n; d < feature_scale_.size(); ++d) {
    x.At(d, 0) = 0.0f;
  }
  return out;
}

std::vector<Tensor> DeepRestEstimator::StepAll(const Tensor& x,
                                               std::vector<Tensor>& hidden) const {
  return config_.use_fused_graph ? StepAllFused(x, hidden) : StepAllReference(x, hidden);
}

std::vector<Tensor> DeepRestEstimator::StepAllFused(const Tensor& x,
                                                    std::vector<Tensor>& hidden) const {
  const size_t e = experts_.size();
  // Reused across steps: holding the previous step's handles until here is
  // harmless (the graph keeps them alive anyway via the loss).
  thread_local std::vector<Tensor> masked;
  masked.clear();
  masked.resize(e);
  for (size_t i = 0; i < e; ++i) {
    const Expert& expert = experts_[i];
    Tensor xm = config_.use_api_mask ? SigmoidMaskMul(expert.mask, x) : x;
    // Each expert reads only its own previous state, so replacing in place is
    // equivalent to building a separate new_hidden vector.
    if (config_.use_recurrence) {
      hidden[i] = expert.gru.Step(xm, hidden[i]);
    } else {
      hidden[i] = Tanh(expert.ff.Forward(xm));
    }
    masked[i] = std::move(xm);
  }
  Tensor attended;  // Stays undefined under the attention ablation.
  if (config_.use_attention) {
    attended = FusedAttention(alpha_, diag_mask_tensor_, hidden);
  }
  std::vector<Tensor> outputs(e);
  const Tensor undefined;
  for (size_t i = 0; i < e; ++i) {
    const Expert& expert = experts_[i];
    const bool bypass = config_.use_linear_bypass;
    outputs[i] = FusedExpertHead(attended, i, hidden[i], expert.head.weight(),
                                 expert.head.bias(), bypass ? masked[i] : undefined,
                                 bypass ? expert.skip.weight() : undefined,
                                 bypass ? expert.skip.bias() : undefined);
  }
  return outputs;
}

std::vector<Tensor> DeepRestEstimator::StepAllReference(const Tensor& x,
                                                        std::vector<Tensor>& hidden) const {
  const size_t e = experts_.size();
  std::vector<Tensor> new_hidden(e);
  std::vector<Tensor> masked_inputs(e);
  for (size_t i = 0; i < e; ++i) {
    const Expert& expert = experts_[i];
    Tensor x_masked = config_.use_api_mask ? Hadamard(Sigmoid(expert.mask), x) : x;
    if (config_.use_recurrence) {
      new_hidden[i] = expert.gru.StepReference(x_masked, hidden[i]);
    } else {
      new_hidden[i] = Tanh(expert.ff.Forward(x_masked));
    }
    masked_inputs[i] = std::move(x_masked);
  }

  std::vector<Tensor> outputs(e);
  Tensor zero_a;
  Tensor attended;
  if (config_.use_attention) {
    Tensor stacked = StackColumns(new_hidden);  // E x H
    attended = MatMul(Hadamard(alpha_, Tensor::Constant(diag_zero_mask_)), stacked);
  } else {
    zero_a = Tensor::Constant(Matrix(config_.hidden_dim, 1));
  }
  for (size_t i = 0; i < e; ++i) {
    Tensor a_i = config_.use_attention ? RowAsColumn(attended, i) : zero_a;
    Tensor head_out = experts_[i].head.Forward(ConcatRows(a_i, new_hidden[i]));
    outputs[i] = config_.use_linear_bypass
                     ? Add(head_out, experts_[i].skip.Forward(masked_inputs[i]))
                     : head_out;
  }
  hidden = std::move(new_hidden);
  return outputs;
}

void DeepRestEstimator::Learn(const TraceCollector& traces, const MetricsStore& metrics,
                              size_t from, size_t to,
                              const std::vector<MetricKey>& resources) {
  const auto start_time = std::chrono::steady_clock::now();

  // Phase 1: feature-space construction + synthesizer statistics (Alg. 1).
  extractor_ = FeatureExtractor();
  synthesizer_ = TraceSynthesizer();
  extractor_.LearnRange(traces, from, to);
  synthesizer_.LearnRange(traces, from, to);

  // Phase 2: feature extraction (Alg. 2) and scaling statistics.
  learn_features_ = extractor_.ExtractSeries(traces, from, to);
  const size_t dim = extractor_.dimension();
  feature_scale_.assign(dim, 1.0f);
  for (const auto& x : learn_features_) {
    for (size_t d = 0; d < dim; ++d) {
      feature_scale_[d] = std::max(feature_scale_[d], x[d]);
    }
  }

  // Phase 3: targets and their scales.
  BuildModel(dim, resources);
  std::vector<std::vector<float>> targets(experts_.size());
  for (size_t i = 0; i < experts_.size(); ++i) {
    const auto series = metrics.Series(experts_[i].key, from, to);
    double max_value = 1e-9;
    for (double v : series) {
      max_value = std::max(max_value, v);
    }
    experts_[i].y_scale = max_value;
    targets[i].reserve(series.size());
    for (double v : series) {
      targets[i].push_back(static_cast<float>(v / max_value));
    }
  }

  // Phase 4: joint quantile-regression training (Eq. 5-6).
  epoch_losses_.clear();
  RunTraining(learn_features_, targets, config_.epochs, config_.learning_rate,
              /*decay_masks=*/true);
  RefreshWarmStartCache();

  train_seconds_ = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time)
                       .count();
}

void DeepRestEstimator::RunTraining(const std::vector<std::vector<float>>& features,
                                    const std::vector<std::vector<float>>& targets,
                                    size_t epochs, float learning_rate, bool decay_masks) {
  // Truncated BPTT: hidden state values carry across chunk boundaries but
  // gradients do not flow past them.
  const float lo_q = (1.0f - config_.delta) / 2.0f;
  const float up_q = config_.delta + (1.0f - config_.delta) / 2.0f;
  const std::vector<float> deltas = {0.5f, lo_q, up_q};
  const size_t window_count = features.size();

  AdamOptimizer optimizer(store_, learning_rate);
  std::vector<Tensor> losses;  // Hoisted: one buffer reused by every chunk.
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    std::vector<Tensor> hidden(experts_.size());
    for (auto& state : hidden) {
      state = Tensor::Constant(Matrix(config_.hidden_dim, 1));
    }
    double epoch_loss = 0.0;
    size_t loss_terms = 0;
    for (size_t chunk_start = 0; chunk_start < window_count;
         chunk_start += config_.bptt_chunk) {
      const size_t chunk_end = std::min(window_count, chunk_start + config_.bptt_chunk);
      optimizer.ZeroGrad();
      losses.clear();
      losses.reserve((chunk_end - chunk_start) * experts_.size());
      for (size_t t = chunk_start; t < chunk_end; ++t) {
        Tensor x = ScaledInput(features[t]);
        std::vector<Tensor> outputs = StepAll(x, hidden);
        for (size_t i = 0; i < experts_.size(); ++i) {
          losses.push_back(PinballLoss(outputs[i], targets[i][t], deltas));
        }
      }
      Tensor loss = Affine(AddN(losses), 1.0f / static_cast<float>(losses.size()), 0.0f);
      loss.Backward();
      ClipGradNorm(store_, config_.grad_clip);
      optimizer.Step();
      if (decay_masks && config_.use_api_mask && config_.mask_decay > 0.0f) {
        for (auto& expert : experts_) {
          Matrix& logits = expert.mask.mutable_value();
          for (size_t d = 0; d < logits.size(); ++d) {
            logits[d] -= config_.mask_decay;
          }
        }
      }
      epoch_loss += static_cast<double>(loss.scalar()) * static_cast<double>(losses.size());
      loss_terms += losses.size();
      // Truncate gradient flow at the chunk boundary.
      for (auto& state : hidden) {
        state = state.Detach();
      }
    }
    epoch_losses_.push_back(static_cast<float>(epoch_loss / std::max<size_t>(1, loss_terms)));
    if (config_.verbose) {
      std::fprintf(stderr, "[deeprest] epoch %zu/%zu loss %.5f\n", epoch + 1, epochs,
                   epoch_losses_.back());
    }
  }
}

void DeepRestEstimator::ContinueLearning(const TraceCollector& traces,
                                         const MetricsStore& metrics, size_t from, size_t to,
                                         size_t epochs) {
  assert(trained() && "ContinueLearning requires a trained model; call Learn first");
  const auto start_time = std::chrono::steady_clock::now();

  // New telemetry drives sampling statistics too: the synthesizer keeps
  // adapting Prob(P | API) to the drifted behaviour. The feature space and
  // topology stay frozen (unknown paths are ignored by ExtractSeries).
  synthesizer_.LearnRange(traces, from, to);

  const std::vector<std::vector<float>> features = extractor_.ExtractSeries(traces, from, to);
  std::vector<std::vector<float>> targets(experts_.size());
  for (size_t i = 0; i < experts_.size(); ++i) {
    const auto series = metrics.Series(experts_[i].key, from, to);
    // Scales stay fixed so the heads keep their meaning; clamp-free scaling
    // lets drifted utilization exceed 1.0, which the bypass can represent.
    targets[i].reserve(series.size());
    for (double v : series) {
      targets[i].push_back(static_cast<float>(v / experts_[i].y_scale));
    }
  }
  // Fine-tuning uses a reduced learning rate and no mask decay: a full-rate
  // Adam restart on a short drifted segment causes catastrophic forgetting
  // of the base calibration, and the masks are already learned.
  RunTraining(features, targets, epochs == 0 ? config_.epochs : epochs,
              config_.learning_rate * 0.25f, /*decay_masks=*/false);

  // Extend the warm-start history with the new windows and recompute the
  // cached hidden state (both the weights and the history changed).
  learn_features_.insert(learn_features_.end(), features.begin(), features.end());
  RefreshWarmStartCache();
  train_seconds_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                  start_time)
                        .count();
}

EstimateMap DeepRestEstimator::EstimateFromFeatures(
    const std::vector<std::vector<float>>& feature_series) const {
  std::vector<EstimateMap> results = EstimateFromFeaturesBatch({&feature_series});
  return std::move(results.front());
}

std::vector<EstimateMap> DeepRestEstimator::EstimateFromFeaturesBatch(
    const std::vector<const std::vector<std::vector<float>>*>& batch) const {
  return EstimateFromFeaturesBatchResume(batch, {});
}

std::vector<EstimateMap> DeepRestEstimator::EstimateFromFeaturesBatchResume(
    const std::vector<const std::vector<std::vector<float>>*>& batch,
    const std::vector<StreamCursor*>& cursors) const {
  assert(trained());
  assert(warm_hidden_.size() == experts_.size());
  assert(cursors.empty() || cursors.size() == batch.size());

  std::vector<EstimateMap> results(batch.size());
  // Live queries, longest first: as shorter queries finish, the still-active
  // ones always occupy a prefix of the batch columns and the activation
  // matrices just shrink column-wise.
  std::vector<size_t> order;
  order.reserve(batch.size());
  for (size_t q = 0; q < batch.size(); ++q) {
    if (batch[q] == nullptr) {
      continue;
    }
    order.push_back(q);
    EstimateMap& out = results[q];
    for (const auto& expert : experts_) {
      ResourceEstimate estimate;
      estimate.expected.reserve(batch[q]->size());
      estimate.lower.reserve(batch[q]->size());
      estimate.upper.reserve(batch[q]->size());
      out.emplace(expert.key, std::move(estimate));
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return batch[a]->size() > batch[b]->size(); });
  size_t active = order.size();
  while (active > 0 && batch[order[active - 1]]->empty()) {
    --active;
  }
  if (active == 0) {
    return results;
  }

  const size_t e = experts_.size();
  const size_t hd = config_.hidden_dim;
  const size_t dim = feature_scale_.size();
  const size_t max_len = batch[order[0]]->size();

  // Every column starts from the warm-start hidden state cached at train /
  // load time — no per-call replay of learn_features_ — unless the query
  // carries a continuation cursor, which seeds the column with the stream's
  // saved hidden state instead (raw float bits, so a resumed series is
  // bit-identical to an unsplit one).
  auto cursor_for = [&](size_t b) -> StreamCursor* {
    return cursors.empty() ? nullptr : cursors[order[b]];
  };
  std::vector<Matrix> hidden(e);
  std::vector<Matrix> hidden_next(e);
  for (size_t i = 0; i < e; ++i) {
    hidden[i].SetShape(hd, active);
    for (size_t r = 0; r < hd; ++r) {
      const float warm = warm_hidden_[i][r];
      float* row = hidden[i].data() + r * active;
      for (size_t b = 0; b < active; ++b) {
        const StreamCursor* cursor = cursor_for(b);
        row[b] = (cursor != nullptr && cursor->hidden.size() == e * hd)
                     ? cursor->hidden[i * hd + r]
                     : warm;
      }
    }
  }
  // Writes column b's final hidden state back into its cursor. Called once
  // per cursor-carrying column, at retirement or at end of pass — always
  // AFTER the column's last GRU step and BEFORE ShrinkColumns discards it.
  auto export_column = [&](size_t b) {
    StreamCursor* cursor = cursor_for(b);
    if (cursor == nullptr) {
      return;
    }
    cursor->hidden.resize(e * hd);
    for (size_t i = 0; i < e; ++i) {
      for (size_t r = 0; r < hd; ++r) {
        cursor->hidden[i * hd + r] = hidden[i].At(r, b);
      }
    }
    cursor->steps += batch[order[b]]->size();
  };

  Matrix masked_alpha;  // alpha . diag mask, constant across steps
  if (config_.use_attention) {
    HadamardInto(alpha_.value(), diag_zero_mask_, masked_alpha);
  }

  BatchedScratch scratch;
  Matrix x;                      // dim x active scaled inputs
  Matrix y;                      // 3 x active head outputs
  std::vector<Matrix> sigs(e);   // per-expert sigmoid(mask) columns
  std::vector<Matrix> xms(e);    // per-expert masked inputs
  std::vector<Matrix> attended;  // per-expert attended states

  for (size_t t = 0; t < max_len; ++t) {
    // Retire queries whose series ended (a suffix, since sorted by length).
    size_t still = active;
    while (still > 0 && batch[order[still - 1]]->size() <= t) {
      --still;
    }
    if (still != active) {
      for (size_t b = still; b < active; ++b) {
        export_column(b);
      }
      if (still == 0) {
        active = 0;
        break;
      }
      for (size_t i = 0; i < e; ++i) {
        ShrinkColumns(hidden[i], still);
      }
      active = still;
    }
    x.SetShape(dim, active);
    for (size_t b = 0; b < active; ++b) {
      const std::vector<float>& raw = (*batch[order[b]])[t];
      const size_t n = std::min(raw.size(), dim);
      for (size_t d = 0; d < n; ++d) {
        x.At(d, b) = raw[d] / feature_scale_[d];
      }
      for (size_t d = n; d < dim; ++d) {
        x.At(d, b) = 0.0f;
      }
    }
    // quant_ is non-empty exactly when quantized inference is on (rebuilt at
    // every mutation point); the int8 shadow replaces the GEMV-heavy weight
    // operands and everything else stays fp32.
    const bool quantized = !quant_.empty();
    for (size_t i = 0; i < e; ++i) {
      const Expert& expert = experts_[i];
      const Matrix* xm = &x;
      if (config_.use_api_mask) {
        BatchedSigmoidMaskMul(expert.mask.value(), x, sigs[i], xms[i]);
        xm = &xms[i];
      }
      if (config_.use_recurrence) {
        const GruCell& gru = expert.gru;
        const WeightView wz = quantized ? WeightView(quant_[i].wz) : WeightView(gru.wz().value());
        const WeightView wk = quantized ? WeightView(quant_[i].wk) : WeightView(gru.wk().value());
        const WeightView wh = quantized ? WeightView(quant_[i].wh) : WeightView(gru.wh().value());
        BatchedGruStep(*xm, hidden[i], wz, gru.uz().value(), gru.bz().value(), wk,
                       gru.uk().value(), gru.bk().value(), wh, gru.uh().value(), gru.bh().value(),
                       scratch, hidden_next[i]);
      } else {
        const WeightView ff =
            quantized ? WeightView(quant_[i].ff) : WeightView(expert.ff.weight().value());
        BatchedLinearTanh(ff, expert.ff.bias().value(), *xm, scratch, hidden_next[i]);
      }
    }
    hidden.swap(hidden_next);
    if (config_.use_attention) {
      BatchedAttention(masked_alpha, hidden, attended);
    }
    for (size_t i = 0; i < e; ++i) {
      const Expert& expert = experts_[i];
      const bool bypass = config_.use_linear_bypass;
      const Matrix* xm = config_.use_api_mask ? &xms[i] : &x;
      const WeightView head_w =
          quantized ? WeightView(quant_[i].head) : WeightView(expert.head.weight().value());
      WeightView skip_w;  // invalid = no bypass
      if (bypass) {
        skip_w = quantized ? WeightView(quant_[i].skip) : WeightView(expert.skip.weight().value());
      }
      BatchedExpertHead(config_.use_attention ? &attended[i] : nullptr, hidden[i], head_w,
                        expert.head.bias().value(), bypass ? xm : nullptr, skip_w,
                        bypass ? &expert.skip.bias().value() : nullptr, scratch, y);
      const double scale = expert.y_scale;
      for (size_t b = 0; b < active; ++b) {
        double expected = std::max(0.0, static_cast<double>(y.At(0, b)) * scale);
        double lower = std::max(0.0, static_cast<double>(y.At(1, b)) * scale);
        double upper = std::max(0.0, static_cast<double>(y.At(2, b)) * scale);
        // Quantile heads are trained independently and can cross on rare
        // inputs; enforce lower <= expected <= upper on output.
        lower = std::min(lower, expected);
        upper = std::max(upper, expected);
        ResourceEstimate& estimate = results[order[b]].at(expert.key);
        estimate.expected.push_back(expected);
        estimate.lower.push_back(lower);
        estimate.upper.push_back(upper);
      }
    }
  }
  // Columns that ran the full max_len retire here rather than through the
  // shrink path above.
  for (size_t b = 0; b < active; ++b) {
    export_column(b);
  }
  return results;
}

EstimateMap DeepRestEstimator::EstimateFromFeaturesReference(
    const std::vector<std::vector<float>>& feature_series) const {
  assert(trained());
  NoGradGuard no_grad;

  // Full warm-start replay, every call — the pre-batch-major behavior this
  // method preserves as the bit-exactness oracle.
  std::vector<Tensor> hidden(experts_.size());
  for (auto& state : hidden) {
    state = Tensor::Constant(Matrix(config_.hidden_dim, 1));
  }
  if (config_.warm_start) {
    for (const auto& x_raw : learn_features_) {
      Tensor x = ScaledInput(x_raw);
      StepAll(x, hidden);
    }
  }

  EstimateMap out;
  for (const auto& expert : experts_) {
    ResourceEstimate estimate;
    estimate.expected.reserve(feature_series.size());
    estimate.lower.reserve(feature_series.size());
    estimate.upper.reserve(feature_series.size());
    out.emplace(expert.key, std::move(estimate));
  }
  for (const auto& x_raw : feature_series) {
    Tensor x = ScaledInput(x_raw);
    std::vector<Tensor> outputs = StepAll(x, hidden);
    for (size_t i = 0; i < experts_.size(); ++i) {
      const Matrix& y = outputs[i].value();
      const double scale = experts_[i].y_scale;
      double expected = std::max(0.0, static_cast<double>(y.At(0, 0)) * scale);
      double lower = std::max(0.0, static_cast<double>(y.At(1, 0)) * scale);
      double upper = std::max(0.0, static_cast<double>(y.At(2, 0)) * scale);
      lower = std::min(lower, expected);
      upper = std::max(upper, expected);
      ResourceEstimate& estimate = out.at(experts_[i].key);
      estimate.expected.push_back(expected);
      estimate.lower.push_back(lower);
      estimate.upper.push_back(upper);
    }
  }
  return out;
}

std::vector<Matrix> DeepRestEstimator::ReplayWarmStart() const {
  std::vector<Matrix> warm_values(experts_.size(), Matrix(config_.hidden_dim, 1));
  if (!config_.warm_start || experts_.empty() || learn_features_.empty()) {
    return warm_values;
  }
  NoGradGuard no_grad;
  std::vector<Tensor> warm(experts_.size());
  for (auto& state : warm) {
    state = Tensor::Constant(Matrix(config_.hidden_dim, 1));
  }
  for (const auto& x_raw : learn_features_) {
    Tensor x = ScaledInput(x_raw);
    StepAll(x, warm);
  }
  for (size_t i = 0; i < warm.size(); ++i) {
    warm_values[i] = warm[i].value();
  }
  return warm_values;
}

void DeepRestEstimator::RefreshWarmStartCache() {
  warm_hidden_ = ReplayWarmStart();
  // Same lifecycle as the warm-start cache: every mutation point funnels
  // through here, so the int8 shadow can never go stale against the fp32
  // parameters.
  RefreshQuantCache();
}

void DeepRestEstimator::RefreshQuantCache() {
  if (!config_.quantized_inference) {
    quant_.clear();
    return;
  }
  quant_.resize(experts_.size());
  for (size_t i = 0; i < experts_.size(); ++i) {
    const Expert& expert = experts_[i];
    QuantizedExpert& q = quant_[i];
    if (config_.use_recurrence) {
      q.wz = QuantizeRowwise(expert.gru.wz().value());
      q.wk = QuantizeRowwise(expert.gru.wk().value());
      q.wh = QuantizeRowwise(expert.gru.wh().value());
    } else {
      q.ff = QuantizeRowwise(expert.ff.weight().value());
    }
    q.head = QuantizeRowwise(expert.head.weight().value());
    if (config_.use_linear_bypass) {
      q.skip = QuantizeRowwise(expert.skip.weight().value());
    }
  }
}

void DeepRestEstimator::SetQuantizedInference(bool enabled) {
  if (config_.quantized_inference == enabled) {
    return;
  }
  config_.quantized_inference = enabled;
  RefreshQuantCache();
}

void DeepRestEstimator::CompressParametersToFp16() {
  for (auto& e : store_.entries()) {
    RoundMatrixToHalf(e.tensor.mutable_value());
  }
  // The rounded weights shift the warm-start trajectory and the int8 shadow;
  // rebuild both so inference sees a consistent model.
  RefreshWarmStartCache();
}

EstimateMap DeepRestEstimator::EstimateFromTraces(const TraceCollector& traces, size_t from,
                                                  size_t to) const {
  return EstimateFromFeatures(extractor_.ExtractSeries(traces, from, to));
}

EstimateMap DeepRestEstimator::EstimateFromTraffic(const TrafficSeries& traffic,
                                                   uint64_t seed) const {
  Rng rng(seed);
  TraceCollector synthetic;
  synthesizer_.SynthesizeSeries(traffic, 0, rng, synthetic);
  return EstimateFromTraces(synthetic, 0, traffic.windows());
}

std::vector<MetricKey> DeepRestEstimator::resources() const {
  std::vector<MetricKey> keys;
  keys.reserve(experts_.size());
  for (const auto& expert : experts_) {
    keys.push_back(expert.key);
  }
  return keys;
}

int DeepRestEstimator::ExpertIndex(const MetricKey& key) const {
  auto it = expert_index_.find(key);
  return it == expert_index_.end() ? -1 : it->second;
}

std::vector<double> DeepRestEstimator::FeatureMask(const MetricKey& key) const {
  const int index = ExpertIndex(key);
  if (index < 0) {
    return {};
  }
  const Matrix& logits = experts_[index].mask.value();
  std::vector<double> mask(logits.size());
  for (size_t d = 0; d < logits.size(); ++d) {
    mask[d] = 1.0 / (1.0 + std::exp(-static_cast<double>(logits[d])));
  }
  return mask;
}

std::map<std::string, double> DeepRestEstimator::ApiInfluence(const MetricKey& key) const {
  std::map<std::string, double> influence;
  const int index = ExpertIndex(key);
  if (index < 0) {
    return influence;
  }
  const Expert& expert = experts_[static_cast<size_t>(index)];
  const std::vector<double> mask = FeatureMask(key);

  // Effective input relevance of feature f: its mask activation times the
  // total magnitude of the weights that consume it (the linear bypass plus
  // the GRU/FF input projections). The mask alone can stay high for features
  // the network routes through near-zero weights; the product measures what
  // the expert actually uses.
  std::vector<double> weight_mass(mask.size(), 0.0);
  auto accumulate_columns = [&](const Tensor& weight) {
    if (!weight.defined()) {
      return;
    }
    const Matrix& w = weight.value();
    if (w.cols() != mask.size()) {
      return;
    }
    for (size_t r = 0; r < w.rows(); ++r) {
      for (size_t f = 0; f < w.cols(); ++f) {
        weight_mass[f] += std::fabs(static_cast<double>(w.At(r, f)));
      }
    }
  };
  if (config_.use_linear_bypass) {
    accumulate_columns(expert.skip.weight());
  }
  if (config_.use_recurrence) {
    for (const char* gate : {".gru.Wz", ".gru.Wk", ".gru.Wh"}) {
      accumulate_columns(store_.Find(ExpertName(static_cast<size_t>(index)) + gate));
    }
  } else {
    accumulate_columns(expert.ff.weight());
  }

  std::map<std::string, size_t> counts;
  for (size_t f = 0; f < mask.size(); ++f) {
    const std::string api = extractor_.DominantApiOf(f);
    if (api.empty()) {
      continue;
    }
    influence[api] += mask[f] * weight_mass[f];
    ++counts[api];
  }
  for (auto& [api, value] : influence) {
    value /= static_cast<double>(counts[api]);
  }
  return influence;
}

std::vector<float> DeepRestEstimator::ExpertParameters(const MetricKey& key) const {
  const int index = ExpertIndex(key);
  if (index < 0) {
    return {};
  }
  return experts_[index].gru.FlattenedParameters();
}

std::vector<float> DeepRestEstimator::ExpertParameterDelta(const MetricKey& key) const {
  const int index = ExpertIndex(key);
  if (index < 0) {
    return {};
  }
  const Expert& expert = experts_[static_cast<size_t>(index)];
  std::vector<float> delta = expert.gru.FlattenedParameters();
  for (size_t i = 0; i < delta.size() && i < expert.initial_gru.size(); ++i) {
    delta[i] -= expert.initial_gru[i];
  }
  return delta;
}

double DeepRestEstimator::AttentionWeight(const MetricKey& to, const MetricKey& from) const {
  const int i = ExpertIndex(to);
  const int j = ExpertIndex(from);
  if (i < 0 || j < 0 || i == j) {
    return 0.0;
  }
  return alpha_.value().At(static_cast<size_t>(i), static_cast<size_t>(j));
}

namespace {

// Coarse component families for transfer matching.
enum class ComponentFamily { kDatabase, kCache, kService };

ComponentFamily FamilyOf(const std::string& component) {
  if (component.find("MongoDB") != std::string::npos) {
    return ComponentFamily::kDatabase;
  }
  if (component.find("Memcached") != std::string::npos ||
      component.find("Redis") != std::string::npos) {
    return ComponentFamily::kCache;
  }
  return ComponentFamily::kService;
}

}  // namespace

size_t DeepRestEstimator::TransferRecurrentWeightsFrom(const DeepRestEstimator& donor) {
  if (!trained() || !donor.trained() || config_.hidden_dim != donor.config_.hidden_dim) {
    return 0;
  }
  static const char* kRecurrentBlocks[] = {".gru.Uz", ".gru.Uk", ".gru.Uh",
                                           ".gru.bz", ".gru.bk", ".gru.bh"};
  size_t transferred = 0;
  for (size_t i = 0; i < experts_.size(); ++i) {
    const MetricKey& key = experts_[i].key;
    // Best donor: exact key > same kind + family > same kind.
    int best = -1;
    int best_rank = 0;
    for (size_t j = 0; j < donor.experts_.size(); ++j) {
      const MetricKey& donor_key = donor.experts_[j].key;
      if (donor_key.resource != key.resource) {
        continue;
      }
      int rank = 1;
      if (FamilyOf(donor_key.component) == FamilyOf(key.component)) {
        rank = 2;
      }
      if (donor_key.component == key.component) {
        rank = 3;
      }
      if (rank > best_rank) {
        best_rank = rank;
        best = static_cast<int>(j);
      }
    }
    if (best < 0) {
      continue;
    }
    for (const char* block : kRecurrentBlocks) {
      Tensor mine = store_.Find(ExpertName(i) + block);
      Tensor theirs =
          donor.store_.Find(ExpertName(static_cast<size_t>(best)) + block);
      if (mine.defined() && theirs.defined() &&
          mine.value().SameShape(theirs.value())) {
        mine.mutable_value() = theirs.value();
      }
    }
    ++transferred;
  }
  if (transferred > 0) {
    RefreshWarmStartCache();  // the recurrent weights changed under the replay
  }
  return transferred;
}

std::map<MetricKey, std::vector<float>> DeepRestEstimator::HiddenTrajectories(
    const std::vector<std::vector<float>>& features) const {
  NoGradGuard no_grad;
  std::vector<Tensor> hidden(experts_.size());
  for (auto& state : hidden) {
    state = Tensor::Constant(Matrix(config_.hidden_dim, 1));
  }
  std::map<MetricKey, std::vector<float>> trajectories;
  for (const auto& expert : experts_) {
    trajectories[expert.key].reserve(features.size() * config_.hidden_dim);
  }
  for (const auto& raw : features) {
    Tensor x = ScaledInput(raw);
    StepAll(x, hidden);
    for (size_t i = 0; i < experts_.size(); ++i) {
      const Matrix& h = hidden[i].value();
      auto& out = trajectories[experts_[i].key];
      out.insert(out.end(), h.data(), h.data() + h.size());
    }
  }
  return trajectories;
}

std::map<MetricKey, std::vector<float>> DeepRestEstimator::HiddenTrajectoriesOnLearnData(
    size_t windows) const {
  std::vector<std::vector<float>> probe(
      learn_features_.begin(),
      learn_features_.begin() +
          static_cast<ptrdiff_t>(std::min(windows, learn_features_.size())));
  return HiddenTrajectories(probe);
}

// ---- Persistence ----

namespace {
constexpr uint32_t kEstimatorMagic = 0x44455245;  // "DERE"
}  // namespace

bool DeepRestEstimator::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  return SaveToStream(out);
}

bool DeepRestEstimator::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  return LoadFromStream(in);
}

std::unique_ptr<DeepRestEstimator> DeepRestEstimator::Clone() const {
  auto copy = std::make_unique<DeepRestEstimator>(config_);
  if (!trained()) {
    return copy;
  }
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  if (!SaveToStream(buffer) || !copy->LoadFromStream(buffer)) {
    return nullptr;
  }
  return copy;
}

bool DeepRestEstimator::SaveToStream(std::ostream& out) const {
  auto write_u64 = [&](uint64_t v) { out.write(reinterpret_cast<const char*>(&v), 8); };
  auto write_f64 = [&](double v) { out.write(reinterpret_cast<const char*>(&v), 8); };
  auto write_str = [&](const std::string& s) {
    write_u64(s.size());
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
  };
  write_u64(kEstimatorMagic);
  write_u64(config_.hidden_dim);
  write_u64((config_.use_api_mask ? 1u : 0u) | (config_.use_attention ? 2u : 0u) |
            (config_.use_recurrence ? 4u : 0u) | (config_.warm_start ? 8u : 0u) |
            (config_.use_linear_bypass ? 16u : 0u));
  write_f64(config_.delta);
  write_u64(experts_.size());
  for (const auto& expert : experts_) {
    write_str(expert.key.component);
    write_u64(static_cast<uint64_t>(expert.key.resource));
    write_f64(expert.y_scale);
  }
  extractor_.Save(out);
  synthesizer_.Save(out);
  write_u64(feature_scale_.size());
  for (float v : feature_scale_) {
    write_f64(v);
  }
  write_u64(learn_features_.size());
  for (const auto& x : learn_features_) {
    for (float v : x) {
      write_f64(v);
    }
  }
  return SaveParameters(store_, out);
}

bool DeepRestEstimator::LoadFromStream(std::istream& in) {
  auto read_u64 = [&](uint64_t& v) {
    in.read(reinterpret_cast<char*>(&v), 8);
    return static_cast<bool>(in);
  };
  auto read_f64 = [&](double& v) {
    in.read(reinterpret_cast<char*>(&v), 8);
    return static_cast<bool>(in);
  };
  auto read_str = [&](std::string& s) {
    uint64_t len = 0;
    if (!read_u64(len) || len > (1u << 24)) {
      return false;
    }
    s.resize(len);
    in.read(s.data(), static_cast<std::streamsize>(len));
    return static_cast<bool>(in);
  };

  uint64_t magic = 0;
  uint64_t hidden = 0;
  uint64_t flags = 0;
  double delta = 0.0;
  if (!read_u64(magic) || magic != kEstimatorMagic || !read_u64(hidden) ||
      !read_u64(flags) || !read_f64(delta)) {
    return false;
  }
  config_.hidden_dim = hidden;
  config_.use_api_mask = (flags & 1u) != 0;
  config_.use_attention = (flags & 2u) != 0;
  config_.use_recurrence = (flags & 4u) != 0;
  config_.warm_start = (flags & 8u) != 0;
  config_.use_linear_bypass = (flags & 16u) != 0;
  config_.delta = static_cast<float>(delta);

  uint64_t expert_count = 0;
  if (!read_u64(expert_count) || expert_count > (1u << 20)) {
    return false;
  }
  std::vector<MetricKey> resources(expert_count);
  std::vector<double> y_scales(expert_count);
  for (uint64_t i = 0; i < expert_count; ++i) {
    uint64_t kind = 0;
    if (!read_str(resources[i].component) || !read_u64(kind) || !read_f64(y_scales[i])) {
      return false;
    }
    resources[i].resource = static_cast<ResourceKind>(kind);
  }
  if (!extractor_.Load(in) || !synthesizer_.Load(in)) {
    return false;
  }
  uint64_t dim = 0;
  if (!read_u64(dim) || dim != extractor_.dimension()) {
    return false;
  }
  feature_scale_.resize(dim);
  for (auto& v : feature_scale_) {
    double value = 0.0;
    if (!read_f64(value)) {
      return false;
    }
    v = static_cast<float>(value);
  }
  uint64_t learn_windows = 0;
  if (!read_u64(learn_windows) || learn_windows > (1u << 24)) {
    return false;
  }
  learn_features_.assign(learn_windows, std::vector<float>(dim));
  for (auto& x : learn_features_) {
    for (auto& v : x) {
      double value = 0.0;
      if (!read_f64(value)) {
        return false;
      }
      v = static_cast<float>(value);
    }
  }
  BuildModel(dim, resources);
  for (uint64_t i = 0; i < expert_count; ++i) {
    experts_[i].y_scale = y_scales[i];
  }
  if (!LoadParameters(store_, in)) {
    return false;
  }
  RefreshWarmStartCache();
  return true;
}

}  // namespace deeprest
