// API-aware deep resource estimator (paper section 4.2-4.3).
//
// One DNN expert per (component, resource):
//   x~_t = sigmoid(m) . x_t                         (API-aware mask, Eq. 1)
//   h_t  = GRU(x~_t, h_{t-1})                       (recurrence, Eq. 2)
//   a_t  = sum_{(c',r') != (c,r)} alpha h_t^{c',r'} (cross-expert attention, Eq. 3)
//   y^_t = V (a_t || h_t)                           (3 heads, Eq. 4)
// trained jointly with the quantile loss of Eq. 5-6 so the three heads are
// the expected value and the delta-confidence interval.
#ifndef SRC_CORE_ESTIMATOR_H_
#define SRC_CORE_ESTIMATOR_H_

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/feature_extractor.h"
#include "src/core/trace_synthesizer.h"
#include "src/nn/layers.h"
#include "src/nn/quant.h"
#include "src/nn/rng.h"
#include "src/telemetry/metrics.h"
#include "src/trace/collector.h"
#include "src/workload/traffic.h"

namespace deeprest {

struct EstimatorConfig {
  size_t hidden_dim = 16;
  size_t epochs = 14;
  float learning_rate = 0.02f;  // Adam
  size_t bptt_chunk = 48;       // truncated-BPTT window
  float delta = 0.90f;          // confidence level of the interval heads
  float grad_clip = 5.0f;
  // Constant per-step decay applied to the mask logits after each optimizer
  // step. Features that consistently reduce the loss get pushed back up by
  // their gradients; features that do not drift toward zero weight. This is
  // what makes the learned masks interpretable as API -> resource
  // attribution (paper Fig. 22). (A graph-side L1 penalty is ineffective
  // here because Adam's per-parameter normalization drowns it out.)
  float mask_decay = 0.02f;
  uint64_t seed = 1;
  // Warm the hidden state on the learning-phase features before answering a
  // query, so stateful resources (e.g. cumulative disk usage) continue from
  // the production trajectory instead of restarting at zero history.
  bool warm_start = true;
  // Ablation switches (bench_ablation):
  bool use_api_mask = true;
  bool use_attention = true;
  bool use_recurrence = true;  // false -> feed-forward experts
  // Linear bypass from the masked features to the output heads. The GRU's
  // tanh-bounded hidden state cannot extrapolate past the utilization range
  // seen in training; the bypass carries the first-order traffic->resource
  // proportionality so unseen-scale queries (paper section 5.3) scale, while
  // the recurrent path models queueing, caching, and cumulative effects.
  bool use_linear_bypass = true;
  // Build each model step out of the fused graph nodes in ops.h (one node per
  // masked input / GRU step / attention / head) instead of the elementary-op
  // composition. Bit-identical results either way — this is a pure graph-size
  // optimization (~6x fewer nodes per step), kept switchable so tests can
  // assert the equivalence. Not serialized: a loaded model uses the loader's
  // setting.
  bool use_fused_graph = true;
  // Run the batch-major inference path (EstimateFromFeaturesBatch and
  // everything built on it) with int8 per-row-quantized weights for the
  // GEMV-heavy input projections and output heads (src/nn/quant.h). The
  // recurrent U matrices stay fp32 — error fed back through the hidden
  // state compounds step over step. Training, the tensor-graph reference
  // path, and the warm-start replay always run fp32, so
  // EstimateFromFeaturesReference remains the exact oracle and
  // tests/core/quantized_inference_test.cc bounds the quantile-loss delta.
  // Not serialized: a loaded model uses the loader's setting.
  bool quantized_inference = false;
  bool verbose = false;
};

struct ResourceEstimate {
  std::vector<double> expected;
  std::vector<double> lower;
  std::vector<double> upper;
};

using EstimateMap = std::map<MetricKey, ResourceEstimate>;

// Threading contract: all const member functions (the whole inference and
// introspection surface — EstimateFrom*, FeatureMask, HiddenTrajectories,
// Save, Clone, ...) only read model state and are safe to call from any
// number of threads concurrently, per the src/nn contract (see tensor.h).
// Learn / ContinueLearning / Load / TransferRecurrentWeightsFrom mutate the
// model and must be externally serialized against every other call. The
// serving layer (src/serve) never mutates a published model: ContinualLearner
// trains a Clone() and swaps it in through the ModelRegistry.
class DeepRestEstimator {
 public:
  explicit DeepRestEstimator(const EstimatorConfig& config = {});

  // Application learning phase: consumes the telemetry server's traces and
  // utilization for windows [from, to) and trains all experts jointly.
  void Learn(const TraceCollector& traces, const MetricsStore& metrics, size_t from,
             size_t to, const std::vector<MetricKey>& resources);

  // Incremental adaptation (paper section 6: concept drift / new behaviours
  // over time): fine-tunes the already-trained model on additional telemetry
  // without rebuilding the feature space. Paths or (component, operation)
  // pairs that never occurred during the original learning phase are ignored
  // — call Learn() again to grow the feature space instead. The new windows
  // are appended to the warm-start history. `epochs` defaults to the
  // configured epoch count when 0.
  void ContinueLearning(const TraceCollector& traces, const MetricsStore& metrics,
                        size_t from, size_t to, size_t epochs = 0);

  // Transfer learning (paper section 6): initializes this model's recurrent
  // blocks (U matrices and gate biases — the application-independent part of
  // each expert; the input projections depend on the feature space and are
  // not transferable) from a donor trained on another application. Experts
  // are matched by exact (component, resource), then by resource kind plus
  // component-family (MongoDB / cache / service), then by resource kind
  // alone. Hidden dimensions must match. Returns the number of experts
  // initialized. Typical use: Learn with epochs = 0 to build the model, call
  // this, then ContinueLearning to fine-tune.
  size_t TransferRecurrentWeightsFrom(const DeepRestEstimator& donor);

  // Mode 2 (sanity check): estimate expected utilization for real traces.
  EstimateMap EstimateFromTraces(const TraceCollector& traces, size_t from, size_t to) const;

  // Mode 1 (resource allocation): hypothetical traffic -> synthetic traces ->
  // estimate. `seed` controls the synthesizer's sampling.
  EstimateMap EstimateFromTraffic(const TrafficSeries& traffic, uint64_t seed) const;

  // Direct estimation from an already-built feature series (advanced use).
  EstimateMap EstimateFromFeatures(const std::vector<std::vector<float>>& features) const;

  // Batch-major micro-batched estimation: answers several feature-series
  // queries in one pass by stacking them as the columns of one activation
  // matrix, so every GRU / attention / head step is a (H x D) * (D x B) GEMM
  // instead of B GEMVs (src/nn/batched.h). Queries are grouped longest-first
  // so mixed-length batches shrink column-wise as short queries finish, and
  // every column starts from the warm-start hidden state cached at train /
  // load time (no per-call replay of learn_features_). Per query, results
  // are bit-identical to EstimateFromFeaturesReference — the GEMM kernels
  // keep each output element's reduction order, so a GEMM column equals the
  // corresponding GEMV bit for bit. Results are index-aligned with `batch`;
  // null entries are skipped and yield an empty map. This is the forward
  // path behind EstimationService's request coalescing (src/serve).
  std::vector<EstimateMap> EstimateFromFeaturesBatch(
      const std::vector<const std::vector<std::vector<float>>*>& batch) const;

  // Per-stream continuation cursor for EstimateFromFeaturesBatchResume. The
  // hidden state is flattened expert-major (expert_count() * hidden_dim()
  // floats: expert i's H-vector at [i*H, (i+1)*H)); `steps` counts the
  // windows the stream has consumed so far. An empty (or wrong-sized)
  // `hidden` means "fresh": the column starts from the warm-start cache
  // exactly like a stateless query. This is the unit the soft-memory state
  // cache stores, spills and restores (src/serve/state_cache.h).
  struct StreamCursor {
    std::vector<float> hidden;
    uint64_t steps = 0;
  };

  // EstimateFromFeaturesBatch with per-stream continuation: cursors is
  // index-aligned with `batch` (or empty = all stateless); a non-null cursor
  // seeds its column's initial hidden state and receives the column's FINAL
  // hidden state (plus the consumed window count) back when the query
  // retires. Splitting one feature series across successive resumed calls is
  // bit-identical to one pass over the whole series — the cursor round-trips
  // raw float bits, and the GEMM kernels keep per-column reduction order —
  // which is what makes state-cache eviction a non-event for correctness.
  std::vector<EstimateMap> EstimateFromFeaturesBatchResume(
      const std::vector<const std::vector<std::vector<float>>*>& batch,
      const std::vector<StreamCursor*>& cursors) const;

  size_t hidden_dim() const { return config_.hidden_dim; }

  // Sequential tensor-graph inference path (the pre-batch-major behavior):
  // replays the full learn_features_ warm-start trajectory, then steps the
  // query one window at a time through the fused/reference graph. Kept as
  // the correctness oracle for the batch-major path (see
  // batched_inference_test.cc) and as the serving baseline when
  // EstimationServiceConfig::batch_major is off.
  EstimateMap EstimateFromFeaturesReference(
      const std::vector<std::vector<float>>& features) const;

  // Recomputes the warm-start hidden state (one H x 1 column per expert) by
  // replaying learn_features_ through the tensor graph — the oracle for the
  // cached copy below. Returns zero columns when warm_start is disabled.
  std::vector<Matrix> ReplayWarmStart() const;
  // The cached warm-start hidden state the batch-major path starts from.
  // Refreshed on Learn / ContinueLearning / TransferRecurrentWeightsFrom /
  // LoadFromStream, so const inference never mutates model state.
  const std::vector<Matrix>& WarmStartCache() const { return warm_hidden_; }

  // --- Introspection / interpretation ---
  bool trained() const { return !experts_.empty(); }
  const FeatureExtractor& features() const { return extractor_; }
  const TraceSynthesizer& synthesizer() const { return synthesizer_; }
  std::vector<MetricKey> resources() const;

  // sigmoid(m) per feature dimension for one expert (paper Fig. 22 raw data).
  std::vector<double> FeatureMask(const MetricKey& key) const;
  // Mask weight aggregated per API (mean over the features each API owns).
  std::map<std::string, double> ApiInfluence(const MetricKey& key) const;
  // Flattened GRU parameters of one expert (input to the Fig. 21 PCA).
  std::vector<float> ExpertParameters(const MetricKey& key) const;
  // Training delta of the GRU parameters (current - initialization). The
  // delta is what encodes the learned remember/forget dynamics; raw
  // parameters are dominated by the per-expert random initialization.
  std::vector<float> ExpertParameterDelta(const MetricKey& key) const;
  // Learned attention weight alpha[to][from] between two experts.
  double AttentionWeight(const MetricKey& to, const MetricKey& from) const;
  // Runs the model over a (raw) feature series and returns every expert's
  // flattened hidden-state trajectory. This functional embedding is what the
  // Fig. 21 similarity analysis uses: experts with similar remember/forget
  // dynamics produce similar trajectories on the same probe input.
  std::map<MetricKey, std::vector<float>> HiddenTrajectories(
      const std::vector<std::vector<float>>& features) const;
  // Convenience: trajectories on the stored learning-phase features,
  // truncated to the first `windows` windows.
  std::map<MetricKey, std::vector<float>> HiddenTrajectoriesOnLearnData(size_t windows) const;

  // --- Scalability stats (paper section 6) ---
  size_t TotalParameters() const { return store_.TotalParameters(); }
  size_t expert_count() const { return experts_.size(); }
  double train_seconds() const { return train_seconds_; }
  const std::vector<float>& epoch_losses() const { return epoch_losses_; }

  // --- Reduced-precision inference / storage ---
  // Toggles int8 quantized batch inference (see EstimatorConfig). Rebuilds
  // the per-expert quantized weight cache; mutating call, serialize like
  // Learn.
  void SetQuantizedInference(bool enabled);
  bool quantized_inference() const { return config_.quantized_inference; }
  // Rounds every parameter to the nearest IEEE binary16 value in place
  // (ModelRegistry fp16 storage policy). Compute stays fp32; the warm-start
  // and quantized caches are refreshed against the rounded weights.
  // Mutating call, serialize like Learn.
  void CompressParametersToFp16();

  // --- Persistence ---
  bool Save(const std::string& path) const;
  bool Load(const std::string& path);
  bool SaveToStream(std::ostream& out) const;
  bool LoadFromStream(std::istream& in);

  // Deep copy with independent parameters, produced by an in-memory
  // serialization round-trip so the copy is exactly what Save+Load would
  // reconstruct. This is what ContinualLearner trains on: the published
  // snapshot stays immutable while its clone is fine-tuned and re-published
  // through the ModelRegistry. Training-only config (epochs, learning rate,
  // BPTT chunk) is inherited from this model.
  std::unique_ptr<DeepRestEstimator> Clone() const;

 private:
  struct Expert {
    MetricKey key;
    Tensor mask;   // D x 1 learnable API-aware mask logits
    GruCell gru;   // recurrent core (use_recurrence)
    Linear ff;     // feed-forward core (ablation)
    Linear head;   // (2H -> 3) output projection
    Linear skip;   // (D -> 3) linear bypass (use_linear_bypass)
    std::vector<float> initial_gru;  // snapshot at initialization (Fig. 21)
    double y_scale = 1.0;
  };

  // Int8 shadow of one expert's GEMV-heavy weights (input projections and
  // heads; never the recurrent U matrices). Rebuilt from the fp32 parameters
  // by RefreshQuantCache; empty unless config_.quantized_inference.
  struct QuantizedExpert {
    QuantizedMatrix wz, wk, wh;  // GRU input projections
    QuantizedMatrix ff;          // feed-forward core (ablation)
    QuantizedMatrix head;        // output head
    QuantizedMatrix skip;        // linear bypass
  };

  // Builds experts/attention for the given feature dim and resource list.
  void BuildModel(size_t feature_dim, const std::vector<MetricKey>& resources);
  // Shared training loop: chunked-BPTT quantile regression over a feature /
  // scaled-target series. Appends per-epoch losses to epoch_losses_.
  // `decay_masks` applies the sparsity pressure (initial training only).
  void RunTraining(const std::vector<std::vector<float>>& features,
                   const std::vector<std::vector<float>>& targets, size_t epochs,
                   float learning_rate, bool decay_masks);
  // One model step over all experts. `x` is the scaled feature column;
  // `hidden` is read and replaced. Returns per-expert 3x1 scaled outputs.
  // Dispatches to the fused or reference graph per config_.use_fused_graph;
  // both produce bit-identical values and gradients.
  std::vector<Tensor> StepAll(const Tensor& x, std::vector<Tensor>& hidden) const;
  std::vector<Tensor> StepAllFused(const Tensor& x, std::vector<Tensor>& hidden) const;
  std::vector<Tensor> StepAllReference(const Tensor& x, std::vector<Tensor>& hidden) const;
  // Scales a raw feature vector into a column tensor.
  Tensor ScaledInput(const std::vector<float>& raw) const;
  int ExpertIndex(const MetricKey& key) const;
  // Recomputes warm_hidden_ from learn_features_ and the quantized weight
  // shadow. Called by every mutation point (Learn, ContinueLearning,
  // TransferRecurrentWeightsFrom, LoadFromStream, SetQuantizedInference,
  // CompressParametersToFp16) so the const inference surface can read both
  // caches lock-free.
  void RefreshWarmStartCache();
  // Rebuilds quant_ from the current fp32 parameters (clears it when
  // quantized inference is off).
  void RefreshQuantCache();

  EstimatorConfig config_;
  FeatureExtractor extractor_;
  TraceSynthesizer synthesizer_;
  ParameterStore store_;
  std::vector<Expert> experts_;
  std::vector<QuantizedExpert> quant_;     // parallel to experts_; see above
  std::map<MetricKey, int> expert_index_;  // key -> experts_ position
  Tensor alpha_;           // E x E attention weights
  Matrix diag_zero_mask_;  // constant 0-diagonal / 1-elsewhere mask
  Tensor diag_mask_tensor_;  // the same mask as a constant leaf (fused path)
  std::vector<float> feature_scale_;
  std::vector<std::vector<float>> learn_features_;  // raw, for warm start
  // Warm-start hidden state after replaying learn_features_ (one H x 1
  // column per expert); zeros when warm_start is off. See WarmStartCache().
  std::vector<Matrix> warm_hidden_;
  double train_seconds_ = 0.0;
  std::vector<float> epoch_losses_;
};

}  // namespace deeprest

#endif  // SRC_CORE_ESTIMATOR_H_
