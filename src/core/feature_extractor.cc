#include "src/core/feature_extractor.h"

#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>

namespace deeprest {

namespace {

// Per-thread scratch for the prefix walk. Child lists are kept in CSR form
// (offsets into one flat span array) and every buffer keeps its capacity
// across traces, so the walk performs no allocator calls in steady state.
struct PrefixWalkScratch {
  std::vector<size_t> child_offset;   // n + 1 offsets into child_list
  std::vector<size_t> child_cursor;   // fill/iteration cursor per span
  std::vector<SpanIndex> child_list;  // children, grouped by parent
  InvocationPath path;
  std::vector<std::pair<SpanIndex, size_t>> stack;  // (span, child cursor)
  std::vector<TopologyNodeId> ids;    // node-id buffer for the extraction path
};

PrefixWalkScratch& WalkScratch() {
  thread_local PrefixWalkScratch scratch;
  return scratch;
}

// Walks the trace and invokes fn(path) for the prefix ending at each span,
// reusing one growing path buffer (equivalent to the recursive traversal of
// the paper's Algorithms 1 and 2 but iteration-friendly).
template <typename Fn>
void ForEachPrefix(const Trace& trace, const std::vector<TopologyNodeId>& ids, Fn&& fn) {
  const size_t n = trace.size();
  if (n == 0) {
    return;
  }
  // Counting-sort the parent->child edges into CSR: spans are scanned in
  // ascending order twice, so each parent's child list stays ascending —
  // the same visit order as per-parent child vectors.
  PrefixWalkScratch& s = WalkScratch();
  s.child_offset.assign(n + 1, 0);
  for (SpanIndex i = 0; i < n; ++i) {
    const SpanIndex parent = trace.spans()[i].parent;
    if (parent != kNoParent) {
      ++s.child_offset[parent + 1];
    }
  }
  for (size_t i = 1; i <= n; ++i) {
    s.child_offset[i] += s.child_offset[i - 1];
  }
  s.child_list.resize(s.child_offset[n]);
  s.child_cursor.assign(s.child_offset.begin(), s.child_offset.end() - 1);
  for (SpanIndex i = 0; i < n; ++i) {
    const SpanIndex parent = trace.spans()[i].parent;
    if (parent != kNoParent) {
      s.child_list[s.child_cursor[parent]++] = i;
    }
  }
  // Reset cursors for the traversal itself.
  s.child_cursor.assign(s.child_offset.begin(), s.child_offset.end() - 1);

  // Depth-first traversal from the root, maintaining the current path.
  s.path.clear();
  s.stack.clear();
  s.path.push_back(ids[0]);
  fn(s.path);
  s.stack.emplace_back(0, s.child_offset[0]);
  while (!s.stack.empty()) {
    auto& [span, cursor] = s.stack.back();
    if (cursor < s.child_offset[span + 1]) {
      const SpanIndex child = s.child_list[cursor];
      ++cursor;
      s.path.push_back(ids[child]);
      fn(s.path);
      s.stack.emplace_back(child, s.child_offset[child]);
    } else {
      s.path.pop_back();
      s.stack.pop_back();
    }
  }
}

}  // namespace

size_t FeatureExtractor::InternPath(const InvocationPath& path) {
  auto it = index_by_path_.find(path);
  if (it != index_by_path_.end()) {
    return it->second;
  }
  const size_t index = paths_.size();
  index_by_path_.emplace(path, index);
  paths_.push_back(path);
  api_counts_.emplace_back();
  return index;
}

bool FeatureExtractor::LookupPath(const InvocationPath& path, size_t& out) const {
  auto it = index_by_path_.find(path);
  if (it == index_by_path_.end()) {
    return false;
  }
  out = it->second;
  return true;
}

void FeatureExtractor::LearnTrace(const Trace& trace) {
  if (trace.empty()) {
    return;
  }
  topology_.Observe(trace);
  const std::vector<TopologyNodeId> ids = topology_.NodeIdsFor(trace);
  ForEachPrefix(trace, ids, [&](const InvocationPath& path) {
    const size_t feature = InternPath(path);
    ++api_counts_[feature][trace.api_name()];
  });
}

void FeatureExtractor::LearnRange(const TraceCollector& traces, size_t from, size_t to) {
  for (size_t w = from; w < to; ++w) {
    for (const Trace& t : traces.TracesAt(w)) {
      LearnTrace(t);
    }
  }
}

std::vector<float> FeatureExtractor::Extract(const std::vector<const Trace*>& traces) const {
  std::vector<float> features;
  ExtractInto(traces, features);
  return features;
}

void FeatureExtractor::ExtractInto(const std::vector<const Trace*>& traces,
                                   std::vector<float>& out) const {
  out.assign(dimension(), 0.0f);
  // The topology is frozen: spans naming unknown (component, operation) pairs
  // map to kUnknownNode, so paths through them fail LookupPath and are
  // skipped — matching the paper's fixed post-learning feature space.
  for (const Trace* trace : traces) {
    if (trace == nullptr || trace->empty()) {
      continue;
    }
    std::vector<TopologyNodeId>& ids = WalkScratch().ids;
    topology_.FrozenNodeIdsInto(*trace, ids);
    ForEachPrefix(*trace, ids, [&](const InvocationPath& path) {
      size_t feature = 0;
      if (LookupPath(path, feature)) {
        out[feature] += 1.0f;
      }
    });
  }
}

std::vector<float> FeatureExtractor::ExtractWindow(const TraceCollector& traces,
                                                   size_t window) const {
  thread_local std::vector<const Trace*> pointers;
  pointers.clear();
  const std::vector<Trace>& in_window = traces.TracesAt(window);
  pointers.reserve(in_window.size());
  for (const Trace& t : in_window) {
    pointers.push_back(&t);
  }
  return Extract(pointers);
}

std::vector<std::vector<float>> FeatureExtractor::ExtractSeries(const TraceCollector& traces,
                                                                size_t from, size_t to) const {
  std::vector<std::vector<float>> series;
  series.reserve(to > from ? to - from : 0);
  for (size_t w = from; w < to; ++w) {
    series.push_back(ExtractWindow(traces, w));
  }
  return series;
}

std::string FeatureExtractor::DescribePath(size_t feature) const {
  std::ostringstream os;
  const InvocationPath& path = paths_[feature];
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) {
      os << " > ";
    }
    os << topology_.label(path[i]);
  }
  return os.str();
}

std::string FeatureExtractor::DominantApiOf(size_t feature) const {
  const auto& counts = api_counts_[feature];
  std::string best;
  size_t best_count = 0;
  for (const auto& [api, count] : counts) {
    if (count > best_count) {
      best = api;
      best_count = count;
    }
  }
  return best;
}

std::vector<std::string> FeatureExtractor::KnownApis() const {
  std::map<std::string, bool> seen;
  for (const auto& counts : api_counts_) {
    for (const auto& [api, unused] : counts) {
      seen[api] = true;
    }
  }
  std::vector<std::string> apis;
  for (const auto& [api, unused] : seen) {
    apis.push_back(api);
  }
  return apis;
}

void FeatureExtractor::Save(std::ostream& out) const {
  auto write_u64 = [&](uint64_t v) { out.write(reinterpret_cast<const char*>(&v), 8); };
  auto write_str = [&](const std::string& s) {
    write_u64(s.size());
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
  };
  // Topology node labels, in id order, so ids can be re-interned identically.
  write_u64(topology_.node_count());
  for (TopologyNodeId id = 0; id < topology_.node_count(); ++id) {
    write_str(topology_.label(id));
  }
  write_u64(paths_.size());
  for (size_t f = 0; f < paths_.size(); ++f) {
    write_u64(paths_[f].size());
    for (TopologyNodeId id : paths_[f]) {
      write_u64(id);
    }
    write_u64(api_counts_[f].size());
    for (const auto& [api, count] : api_counts_[f]) {
      write_str(api);
      write_u64(count);
    }
  }
}

bool FeatureExtractor::Load(std::istream& in) {
  auto read_u64 = [&](uint64_t& v) {
    in.read(reinterpret_cast<char*>(&v), 8);
    return static_cast<bool>(in);
  };
  auto read_str = [&](std::string& s) {
    uint64_t len = 0;
    if (!read_u64(len) || len > (1u << 24)) {
      return false;
    }
    s.resize(len);
    in.read(s.data(), static_cast<std::streamsize>(len));
    return static_cast<bool>(in);
  };

  *this = FeatureExtractor();
  uint64_t node_count = 0;
  if (!read_u64(node_count)) {
    return false;
  }
  for (uint64_t i = 0; i < node_count; ++i) {
    std::string label;
    if (!read_str(label)) {
      return false;
    }
    // Labels are "component:operation"; split on the first ':'.
    const size_t colon = label.find(':');
    if (colon == std::string::npos) {
      return false;
    }
    topology_.Intern(label.substr(0, colon), label.substr(colon + 1));
  }
  uint64_t path_count = 0;
  if (!read_u64(path_count)) {
    return false;
  }
  for (uint64_t f = 0; f < path_count; ++f) {
    uint64_t len = 0;
    if (!read_u64(len) || len > (1u << 20)) {
      return false;
    }
    InvocationPath path(len);
    for (auto& id : path) {
      uint64_t v = 0;
      if (!read_u64(v)) {
        return false;
      }
      id = static_cast<TopologyNodeId>(v);
    }
    InternPath(path);
    uint64_t api_count = 0;
    if (!read_u64(api_count)) {
      return false;
    }
    for (uint64_t a = 0; a < api_count; ++a) {
      std::string api;
      uint64_t count = 0;
      if (!read_str(api) || !read_u64(count)) {
        return false;
      }
      api_counts_[f][api] = count;
    }
  }
  return true;
}

}  // namespace deeprest
