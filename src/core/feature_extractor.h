// Distributed-tracing feature extractor (paper section 4.1, Algorithms 1-2).
//
// Turns unstructured traces into fixed-width feature vectors: every distinct
// root-prefix of an invocation path observed during application learning gets
// one dimension, and the feature value at a time window is how many times
// that prefix occurred across the window's traces. Component and operation
// names are hashed before use (privacy-preserving design).
#ifndef SRC_CORE_FEATURE_EXTRACTOR_H_
#define SRC_CORE_FEATURE_EXTRACTOR_H_

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/trace/collector.h"
#include "src/trace/topology.h"

namespace deeprest {

class FeatureExtractor {
 public:
  // --- Application learning (Alg. 1: Construct-Feature-Space) ---

  // Registers every root-prefix of the trace into the path-to-feature map and
  // records the execution topology. Also attributes the trace's paths to its
  // originating API for later mask interpretation.
  void LearnTrace(const Trace& trace);

  // Convenience: learns from every trace in [from, to).
  void LearnRange(const TraceCollector& traces, size_t from, size_t to);

  // Dimensionality of the feature space (number of distinct path prefixes).
  size_t dimension() const { return paths_.size(); }

  // --- Feature extraction (Alg. 2: Extract-Feature) ---

  // Counts path-prefix occurrences over the given traces (one time window).
  // Prefixes never seen during learning are ignored, as in the paper (the
  // feature space is frozen after application learning).
  std::vector<float> Extract(const std::vector<const Trace*>& traces) const;

  // Same, writing into a caller-owned buffer (resized and zeroed here) so
  // per-window hot loops reuse its capacity instead of allocating.
  void ExtractInto(const std::vector<const Trace*>& traces, std::vector<float>& out) const;

  // Extracts the feature vector of a single window. Incremental entry point
  // for streaming ingestion (src/serve): the IngestPipeline features each
  // newly sealed window exactly once instead of rescanning history, so
  // ExtractWindow(c, w) == ExtractSeries(c, w, w + 1)[0] by construction.
  std::vector<float> ExtractWindow(const TraceCollector& traces, size_t window) const;

  // Extracts the whole feature time-series for windows [from, to).
  std::vector<std::vector<float>> ExtractSeries(const TraceCollector& traces, size_t from,
                                                size_t to) const;

  // --- Introspection ---

  const TopologyGraph& topology() const { return topology_; }

  // The invocation path for a feature dimension (root-first node ids).
  const InvocationPath& PathOf(size_t feature) const { return paths_[feature]; }

  // Human-readable description of a feature ("A:op1 > B:op2").
  std::string DescribePath(size_t feature) const;

  // The API that most often produced the given feature during learning
  // (empty if the feature was never attributed).
  std::string DominantApiOf(size_t feature) const;

  // All APIs observed during learning.
  std::vector<std::string> KnownApis() const;

  // --- Persistence ---
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  // Interns a path prefix; returns its feature index.
  size_t InternPath(const InvocationPath& path);
  // Looks up a frozen path; returns false if unknown.
  bool LookupPath(const InvocationPath& path, size_t& out) const;

  TopologyGraph topology_;
  std::map<InvocationPath, size_t> index_by_path_;
  std::vector<InvocationPath> paths_;
  // api_counts_[feature][api] = how many learning traces of `api` hit it.
  std::vector<std::map<std::string, size_t>> api_counts_;
};

}  // namespace deeprest

#endif  // SRC_CORE_FEATURE_EXTRACTOR_H_
