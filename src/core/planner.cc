#include "src/core/planner.h"

#include <algorithm>
#include <cmath>

namespace deeprest {

std::vector<ResourcePlan> AllocationPlanner::PlanResources(
    const EstimateMap& estimates) const {
  std::vector<ResourcePlan> plans;
  plans.reserve(estimates.size());
  for (const auto& [key, estimate] : estimates) {
    ResourcePlan plan;
    plan.key = key;
    for (size_t t = 0; t < estimate.expected.size(); ++t) {
      plan.peak_expected = std::max(plan.peak_expected, estimate.expected[t]);
      plan.peak_upper = std::max(plan.peak_upper, estimate.upper[t]);
    }
    plan.provision = plan.peak_upper * config_.headroom;
    plans.push_back(plan);
  }
  return plans;
}

ReplicaSchedule AllocationPlanner::PlanReplicas(const EstimateMap& estimates,
                                                const std::string& component) const {
  ReplicaSchedule schedule;
  schedule.component = component;
  auto it = estimates.find({component, ResourceKind::kCpu});
  if (it == estimates.end()) {
    return schedule;
  }
  const ResourceEstimate& estimate = it->second;

  // Raw demand per window, then hysteresis: scale up immediately, scale down
  // only after `scale_down_patience` consecutive windows of lower demand.
  std::vector<size_t> demand(estimate.upper.size());
  for (size_t t = 0; t < estimate.upper.size(); ++t) {
    const double cpu = estimate.upper[t] * config_.headroom;
    demand[t] = std::max(config_.min_replicas,
                         static_cast<size_t>(std::ceil(cpu / config_.cpu_per_replica)));
  }
  schedule.replicas.resize(demand.size());
  size_t current = config_.min_replicas;
  size_t below_count = 0;
  for (size_t t = 0; t < demand.size(); ++t) {
    if (demand[t] > current) {
      current = demand[t];
      below_count = 0;
    } else if (demand[t] < current) {
      ++below_count;
      if (below_count >= config_.scale_down_patience) {
        // Drop to the maximum demand seen during the patience window.
        size_t target = demand[t];
        for (size_t back = 1; back < config_.scale_down_patience && back <= t; ++back) {
          target = std::max(target, demand[t - back]);
        }
        current = std::max(target, config_.min_replicas);
        below_count = 0;
      }
    } else {
      below_count = 0;
    }
    schedule.replicas[t] = current;
    schedule.peak_replicas = std::max(schedule.peak_replicas, current);
  }

  if (!schedule.replicas.empty() && schedule.peak_replicas > 0) {
    double used = 0.0;
    for (size_t r : schedule.replicas) {
      used += static_cast<double>(r);
    }
    const double static_cost =
        static_cast<double>(schedule.peak_replicas) * static_cast<double>(demand.size());
    schedule.savings_fraction = 1.0 - used / static_cost;
  }
  return schedule;
}

StorageForecast AllocationPlanner::ForecastStorage(const EstimateMap& estimates,
                                                   const std::string& component) const {
  StorageForecast forecast;
  forecast.component = component;
  auto it = estimates.find({component, ResourceKind::kDiskUsage});
  if (it == estimates.end() || it->second.expected.empty()) {
    return forecast;
  }
  const ResourceEstimate& estimate = it->second;
  forecast.current_mb = estimate.expected.front();
  forecast.end_of_horizon_mb = estimate.upper.back() * config_.headroom;
  if (estimate.expected.size() > 1) {
    forecast.growth_mb_per_window =
        (estimate.expected.back() - estimate.expected.front()) /
        static_cast<double>(estimate.expected.size() - 1);
  }
  return forecast;
}

size_t StorageForecast::WindowsUntilFull(double capacity_mb) const {
  if (growth_mb_per_window <= 0.0 || capacity_mb <= current_mb) {
    return capacity_mb <= current_mb ? 0 : SIZE_MAX;
  }
  return static_cast<size_t>((capacity_mb - current_mb) / growth_mb_per_window);
}

}  // namespace deeprest
