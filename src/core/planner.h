// Allocation planning on top of resource estimates.
//
// The paper positions DeepRest as the estimator underneath schedule-based
// autoscaling (section 2): resources that cannot be scaled instantly (storage
// capacity, replicas) must be provisioned ahead of the predicted demand.
// AllocationPlanner turns an EstimateMap into actionable plans:
//   * per-resource provisioning targets (upper confidence bound + headroom),
//   * replica schedules for horizontally-scalable components,
//   * storage-capacity forecasts from the disk-usage trajectory.
#ifndef SRC_CORE_PLANNER_H_
#define SRC_CORE_PLANNER_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/estimator.h"
#include "src/telemetry/metrics.h"

namespace deeprest {

struct PlannerConfig {
  // Multiplicative safety margin on top of the estimate's upper bound.
  double headroom = 1.10;
  // CPU capacity of one replica, in the same percent units as the metrics.
  double cpu_per_replica = 80.0;
  // Replica churn damping: scale-downs are only taken when the lower demand
  // persists for this many consecutive windows (avoids flapping).
  size_t scale_down_patience = 4;
  // Never plan below this replica count.
  size_t min_replicas = 1;
};

// Provisioning target for one resource over the whole query horizon.
struct ResourcePlan {
  MetricKey key;
  double peak_expected = 0.0;
  double peak_upper = 0.0;
  // peak_upper * headroom: what to provision.
  double provision = 0.0;
};

// Replica count per window for one component.
struct ReplicaSchedule {
  std::string component;
  std::vector<size_t> replicas;
  size_t peak_replicas = 0;
  // Replica-windows saved vs. statically provisioning the peak everywhere.
  double savings_fraction = 0.0;
};

// Capacity forecast for a stateful component's volume.
struct StorageForecast {
  std::string component;
  double current_mb = 0.0;       // disk usage at the start of the horizon
  double end_of_horizon_mb = 0.0;  // provisioned (upper + headroom) at the end
  double growth_mb_per_window = 0.0;
  // Windows until `capacity_mb` is exhausted at the forecast growth rate
  // (SIZE_MAX when growth is non-positive or capacity is never reached).
  size_t WindowsUntilFull(double capacity_mb) const;
};

class AllocationPlanner {
 public:
  explicit AllocationPlanner(const PlannerConfig& config = {}) : config_(config) {}

  // Provisioning targets for every estimated resource.
  std::vector<ResourcePlan> PlanResources(const EstimateMap& estimates) const;

  // Replica schedule for one component from its CPU estimate: enough
  // replicas that per-replica CPU stays under cpu_per_replica, with
  // hysteresis on scale-downs.
  ReplicaSchedule PlanReplicas(const EstimateMap& estimates,
                               const std::string& component) const;

  // Storage forecast for a stateful component from its disk-usage estimate.
  StorageForecast ForecastStorage(const EstimateMap& estimates,
                                  const std::string& component) const;

 private:
  PlannerConfig config_;
};

}  // namespace deeprest

#endif  // SRC_CORE_PLANNER_H_
