#include "src/core/sanity.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

namespace deeprest {

std::vector<double> SanityChecker::ResourceScores(const ResourceEstimate& estimate,
                                                  const std::vector<double>& actual) {
  const size_t n = std::min(actual.size(), estimate.expected.size());
  // Normalize by the typical interval width so scores are comparable across
  // resources with wildly different units.
  double width_sum = 0.0;
  double level_sum = 0.0;
  for (size_t t = 0; t < n; ++t) {
    width_sum += estimate.upper[t] - estimate.lower[t];
    level_sum += estimate.expected[t];
  }
  const double denom =
      std::max({width_sum / std::max<size_t>(1, n), 0.05 * level_sum / std::max<size_t>(1, n),
                1e-9});

  std::vector<double> scores(n, 0.0);
  for (size_t t = 0; t < n; ++t) {
    double distance = 0.0;
    if (actual[t] > estimate.upper[t]) {
      distance = actual[t] - estimate.upper[t];
    } else if (actual[t] < estimate.lower[t]) {
      distance = estimate.lower[t] - actual[t];
    }
    scores[t] = std::min(distance / denom, 10.0);
  }
  return scores;
}

std::vector<double> SanityChecker::ComponentScores(const EstimateMap& estimates,
                                                   const MetricsStore& metrics,
                                                   const std::string& component, size_t from,
                                                   size_t to) const {
  std::vector<double> scores(to - from, 0.0);
  size_t resource_count = 0;
  for (const auto& [key, estimate] : estimates) {
    if (key.component != component) {
      continue;
    }
    const std::vector<double> actual = metrics.Series(key, from, to);
    const std::vector<double> resource_scores = ResourceScores(estimate, actual);
    for (size_t t = 0; t < resource_scores.size() && t < scores.size(); ++t) {
      scores[t] += resource_scores[t];
    }
    ++resource_count;
  }
  if (resource_count > 0) {
    for (double& s : scores) {
      s /= static_cast<double>(resource_count);
    }
  }
  return scores;
}

std::vector<AnomalyEvent> SanityChecker::Detect(const EstimateMap& estimates,
                                                const MetricsStore& metrics, size_t from,
                                                size_t to) const {
  return Detect(estimates, metrics, from, to, {});
}

std::vector<AnomalyEvent> SanityChecker::Detect(const EstimateMap& estimates,
                                                const MetricsStore& metrics, size_t from,
                                                size_t to,
                                                const std::vector<double>& quality) const {
  // Collect the component set from the estimates.
  std::set<std::string> components;
  for (const auto& [key, unused] : estimates) {
    components.insert(key.component);
  }

  // Overall per-window score = max over components (an attack on one
  // component should not be diluted by the healthy rest of the fleet).
  const size_t n = to - from;
  std::vector<double> overall(n, 0.0);
  std::map<std::string, std::vector<double>> per_component;
  for (const std::string& component : components) {
    auto scores = ComponentScores(estimates, metrics, component, from, to);
    for (size_t t = 0; t < n; ++t) {
      overall[t] = std::max(overall[t], scores[t]);
    }
    per_component.emplace(component, std::move(scores));
  }

  // Telemetry-quality tolerance widening: a window backed by degraded
  // telemetry (imputed features, renormalized volume, metric gaps) must
  // deviate proportionally harder before it counts as anomalous.
  if (!quality.empty() && config_.low_quality_widen > 0.0) {
    for (size_t w = 0; w < n && w < quality.size(); ++w) {
      const double q = std::clamp(quality[w], 0.0, 1.0);
      overall[w] /= 1.0 + config_.low_quality_widen * (1.0 - q);
    }
  }

  // Threshold into runs, merging runs separated by small gaps.
  std::vector<std::pair<size_t, size_t>> runs;
  size_t t = 0;
  while (t < n) {
    if (overall[t] <= config_.score_threshold) {
      ++t;
      continue;
    }
    size_t end = t + 1;
    while (end < n && overall[end] > config_.score_threshold) {
      ++end;
    }
    if (!runs.empty() && t - runs.back().second <= config_.merge_gap) {
      runs.back().second = end;
    } else {
      runs.emplace_back(t, end);
    }
    t = end;
  }

  std::vector<AnomalyEvent> events;
  for (const auto& [start, end] : runs) {
    if (end - start < config_.min_event_windows) {
      continue;
    }
    AnomalyEvent event;
    event.start_window = start;
    event.end_window = end;
    for (size_t w = start; w < end; ++w) {
      event.peak_score = std::max(event.peak_score, overall[w]);
    }
    // Per-resource mean deviation over the event, for interpretability.
    for (const auto& [key, estimate] : estimates) {
      const std::vector<double> actual = metrics.Series(key, from + start, from + end);
      double actual_sum = 0.0;
      double expected_sum = 0.0;
      for (size_t w = 0; w < actual.size(); ++w) {
        actual_sum += actual[w];
        expected_sum += estimate.expected[start + w];
      }
      if (expected_sum <= 1e-9) {
        continue;
      }
      const double deviation = 100.0 * (actual_sum - expected_sum) / expected_sum;
      if (std::fabs(deviation) >= 15.0) {
        event.deviations.push_back({key, deviation});
      }
    }
    std::sort(event.deviations.begin(), event.deviations.end(),
              [](const ResourceDeviation& a, const ResourceDeviation& b) {
                return std::fabs(a.deviation_pct) > std::fabs(b.deviation_pct);
              });
    events.push_back(std::move(event));
  }
  return events;
}

std::string AnomalyEvent::Describe(size_t windows_per_day) const {
  std::ostringstream os;
  // 1-based day numbering for the human-facing report.
  const size_t day_start = windows_per_day > 0 ? start_window / windows_per_day + 1 : 1;
  const size_t day_end = windows_per_day > 0 ? (end_window - 1) / windows_per_day + 1 : 1;
  os << "Anomalous Event\n";
  os << "  Windows: " << start_window << " - " << end_window << " (day " << day_start;
  if (day_end != day_start) {
    os << " - day " << day_end;
  }
  os << ")\n";
  os << "  Peak anomaly score: " << peak_score << "\n";
  std::string current_component;
  constexpr size_t kMaxReportedDeviations = 8;
  size_t reported = 0;
  for (const auto& deviation : deviations) {
    if (reported++ >= kMaxReportedDeviations) {
      os << "  (+" << deviations.size() - kMaxReportedDeviations
         << " further deviating resources)\n";
      break;
    }
    if (deviation.key.component != current_component) {
      current_component = deviation.key.component;
      os << "  Component: " << current_component << "\n";
    }
    const double pct = deviation.deviation_pct;
    os << "    " << ResourceKindName(deviation.key.resource) << ": " << std::fabs(pct)
       << (pct >= 0.0 ? "% higher" : "% lower") << " than expected\n";
  }
  return os.str();
}

}  // namespace deeprest
