// Application sanity checks (paper section 5.4).
//
// Feeds real traffic/traces through the trained estimator, compares the
// delta-confidence interval against the actual measurements, and turns
// sustained deviations into interpretable alerts (paper Fig. 19c): per-window
// anomaly scores per resource, an ensemble score per component, and event
// records listing how far each resource strayed from expectation.
#ifndef SRC_CORE_SANITY_H_
#define SRC_CORE_SANITY_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/estimator.h"
#include "src/telemetry/metrics.h"

namespace deeprest {

struct SanityConfig {
  // A window is anomalous when its ensemble score exceeds this. Calibrated
  // so slow benign drift (e.g. cache working sets growing past the learning
  // horizon) stays below it while attack signatures sit far above.
  double score_threshold = 0.8;
  // Events shorter than this many consecutive windows are dropped.
  size_t min_event_windows = 2;
  // Two anomalous runs separated by fewer than this many clean windows merge.
  size_t merge_gap = 2;
  // Telemetry-quality tolerance widening. A window whose telemetry quality is
  // q (in [0, 1], 1 = complete) has its anomaly score divided by
  // 1 + low_quality_widen * (1 - q): a fully degraded window needs a
  // (1 + low_quality_widen)x stronger deviation to alarm. Estimates computed
  // from imputed or renormalized features are expected to stray — widening
  // the tolerance on exactly those windows is what keeps degraded-but-honest
  // telemetry from firing false anomaly alarms (DESIGN.md "Failure model").
  double low_quality_widen = 4.0;
};

struct ResourceDeviation {
  MetricKey key;
  // Mean percentage deviation of actual from expected over the event
  // (positive = higher than expected).
  double deviation_pct = 0.0;
};

struct AnomalyEvent {
  size_t start_window = 0;  // inclusive, relative to the checked range
  size_t end_window = 0;    // exclusive
  double peak_score = 0.0;
  std::vector<ResourceDeviation> deviations;  // sorted by |deviation|, desc

  // Interpretable alert text in the spirit of paper Fig. 19c.
  std::string Describe(size_t windows_per_day) const;
};

class SanityChecker {
 public:
  explicit SanityChecker(const SanityConfig& config = {}) : config_(config) {}

  // Per-window anomaly score of one resource: normalized L2 distance of the
  // actual measurement outside the expected interval (0 when inside).
  static std::vector<double> ResourceScores(const ResourceEstimate& estimate,
                                            const std::vector<double>& actual);

  // Ensemble score per window for one component (mean over its resources),
  // the paper's triangulation across resources.
  std::vector<double> ComponentScores(const EstimateMap& estimates,
                                      const MetricsStore& metrics, const std::string& component,
                                      size_t from, size_t to) const;

  // Full detection pass: ensemble per component, threshold, merge runs into
  // events, attach per-resource deviations. Windows are reported relative to
  // `from`.
  std::vector<AnomalyEvent> Detect(const EstimateMap& estimates, const MetricsStore& metrics,
                                   size_t from, size_t to) const;

  // Quality-aware detection: `quality` holds one telemetry-quality score per
  // window of [from, to) (see src/serve/data_quality.h); low-quality windows
  // get their tolerance widened per SanityConfig::low_quality_widen. An empty
  // vector means full quality everywhere (identical to the overload above).
  std::vector<AnomalyEvent> Detect(const EstimateMap& estimates, const MetricsStore& metrics,
                                   size_t from, size_t to,
                                   const std::vector<double>& quality) const;

 private:
  SanityConfig config_;
};

}  // namespace deeprest

#endif  // SRC_CORE_SANITY_H_
