// Clang Thread Safety Analysis annotations and the annotated mutex types
// every concurrent subsystem uses.
//
// The locking discipline of the serving stack (sharded queues, RCU-style
// model hot swap, ingest folding, continual learning) used to live in header
// comments and TSan runs; this header moves it into the compiler. Each
// mutex-guarded field declares its guard with DEEPREST_GUARDED_BY, each
// lock-requiring function declares DEEPREST_REQUIRES, and a Clang build with
// -Wthread-safety (see the `lint` CMake preset, which promotes the analysis
// to -Werror=thread-safety-analysis) rejects any access that does not hold
// the declared capability. Under GCC every macro expands to nothing, so
// tier-1 builds are unaffected.
//
// Project rules enforced on top of the compiler analysis by
// tools/lint/deeprest_lint.cc (ctest label `lint`):
//   * every std::mutex / deeprest::Mutex member must have a matching
//     DEEPREST_GUARDED_BY field in the same class (rule
//     mutex-needs-guarded-by) — a mutex that guards nothing is either dead
//     or, worse, believed to guard something it does not;
//   * fields shared across threads without a guard must be std::atomic
//     (convention, checked by review + TSan; the analysis treats atomics as
//     unguarded by design).
//
// Lock hierarchy (documented here, asserted per-class with
// DEEPREST_ACQUIRED_BEFORE/AFTER where Clang supports it — see DESIGN.md
// "Concurrency invariants & lock hierarchy" for the full map):
//   * EstimationService: at most ONE Shard::mu is held at a time (enqueue,
//     steal and drain sweeps all lock shard-by-shard); the global depth
//     counter `queued_` is an atomic acquired-before nothing — it is CAS-
//     reserved before any shard lock and released under one, never wrapped
//     in a lock of its own.
//   * IngestPipeline: fold_mu_ -> Shard::mu and fold_mu_ -> rejected_mu_
//     (Fold drains shards and the rejection tallies while holding fold_mu_).
//     Producers take a single Shard::mu or rejected_mu_ and nothing else.
//   * ThreadPool (src/eval/parallel.cc): the single State::mu, no nesting.
#ifndef SRC_CORE_THREAD_ANNOTATIONS_H_
#define SRC_CORE_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Attribute macros. Active only when the compiler is Clang with the
// thread-safety attributes available; no-ops elsewhere (GCC, MSVC).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define DEEPREST_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DEEPREST_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

// Marks a class as a lockable capability ("mutex").
#define DEEPREST_CAPABILITY(name) DEEPREST_THREAD_ANNOTATION_(capability(name))

// Marks an RAII class that acquires a capability in its constructor and
// releases it in its destructor.
#define DEEPREST_SCOPED_CAPABILITY DEEPREST_THREAD_ANNOTATION_(scoped_lockable)

// Declares that a field may only be read or written while holding `x`.
#define DEEPREST_GUARDED_BY(x) DEEPREST_THREAD_ANNOTATION_(guarded_by(x))

// Declares that the data POINTED TO by a pointer field is guarded by `x`.
#define DEEPREST_PT_GUARDED_BY(x) DEEPREST_THREAD_ANNOTATION_(pt_guarded_by(x))

// Declares that a function must be called with `...` held (and does not
// acquire or release it).
#define DEEPREST_REQUIRES(...) \
  DEEPREST_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

// Declares that a function acquires / releases the capability.
#define DEEPREST_ACQUIRE(...) \
  DEEPREST_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define DEEPREST_RELEASE(...) \
  DEEPREST_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define DEEPREST_TRY_ACQUIRE(...) \
  DEEPREST_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Declares that a function must NOT be called with `...` held (deadlock
// prevention: the function acquires it internally).
#define DEEPREST_EXCLUDES(...) \
  DEEPREST_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Lock-ordering declarations (checked by newer Clangs, documentation
// otherwise).
#define DEEPREST_ACQUIRED_BEFORE(...) \
  DEEPREST_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define DEEPREST_ACQUIRED_AFTER(...) \
  DEEPREST_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// The function returns a reference to the named capability.
#define DEEPREST_RETURN_CAPABILITY(x) \
  DEEPREST_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: the function's body is exempt from the analysis. Use only
// with a comment explaining why the access is safe.
#define DEEPREST_NO_THREAD_SAFETY_ANALYSIS \
  DEEPREST_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace deeprest {

// ---------------------------------------------------------------------------
// Annotated mutex. A thin std::mutex wrapper carrying the `capability`
// attribute so Clang can track which functions hold it. Same cost as a bare
// std::mutex; std::condition_variable still works through MutexLock below.
// ---------------------------------------------------------------------------
class DEEPREST_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DEEPREST_ACQUIRE() { mu_.lock(); }
  void Unlock() DEEPREST_RELEASE() { mu_.unlock(); }
  bool TryLock() DEEPREST_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For MutexLock's condition-variable plumbing only; never lock it directly
  // around guarded state or the analysis loses track of the capability.
  std::mutex& native() { return mu_; }

 private:
  // The one intentionally unannotated mutex in the tree: it IS the
  // capability, it guards nothing of its own.
  std::mutex mu_;  // deeprest-lint: allow(mutex-needs-guarded-by)
};

// ---------------------------------------------------------------------------
// RAII lock for Mutex (the project's std::lock_guard / std::unique_lock).
// Scoped capability: constructing it acquires the mutex for the enclosing
// scope in the eyes of the analysis; Unlock() releases early.
//
// Condition-variable waits go through Wait/WaitFor/WaitUntil so the wait's
// internal unlock/relock stays inside the wrapper: the guarded-state
// invariant "lock held whenever the code observes state" is preserved, which
// is exactly the model the analysis assumes.
//
// NOTE for predicates: Clang's analysis does not propagate capabilities into
// lambda bodies, so condition-variable predicates over guarded state must be
// written as explicit `while (!cond) lock.Wait(cv);` loops inline in the
// locked scope, not as wait(lock, pred) lambdas.
// ---------------------------------------------------------------------------
class DEEPREST_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DEEPREST_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() DEEPREST_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Early release (e.g. to run promise continuations or rethrow outside the
  // critical section). The destructor then releases nothing.
  void Unlock() DEEPREST_RELEASE() { lock_.unlock(); }

  // Blocks until notified. The caller re-checks its condition in a loop.
  void Wait(std::condition_variable& cv) { cv.wait(lock_); }

  // Timed waits; return true when the wait TIMED OUT (caller stops waiting).
  template <typename Rep, typename Period>
  bool WaitFor(std::condition_variable& cv,
               const std::chrono::duration<Rep, Period>& d) {
    return cv.wait_for(lock_, d) == std::cv_status::timeout;
  }
  template <typename Clock, typename Duration>
  bool WaitUntil(std::condition_variable& cv,
                 const std::chrono::time_point<Clock, Duration>& t) {
    return cv.wait_until(lock_, t) == std::cv_status::timeout;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace deeprest

#endif  // SRC_CORE_THREAD_ANNOTATIONS_H_
