#include "src/core/trace_synthesizer.h"

#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>

namespace deeprest {

std::string TraceSynthesizer::ShapeKey(const Trace& trace) {
  std::ostringstream os;
  for (const Span& s : trace.spans()) {
    os << s.parent << '|' << s.component << '|' << s.operation << ';';
  }
  return os.str();
}

void TraceSynthesizer::LearnTrace(const Trace& trace) {
  if (trace.empty()) {
    return;
  }
  ApiTable& table = tables_[trace.api_name()];
  const std::string key = ShapeKey(trace);
  auto it = table.index_by_key.find(key);
  if (it == table.index_by_key.end()) {
    Shape shape;
    shape.spans = trace.spans();
    shape.count = 1;
    table.index_by_key.emplace(key, table.shapes.size());
    table.shapes.push_back(std::move(shape));
  } else {
    ++table.shapes[it->second].count;
  }
  ++table.total;
}

void TraceSynthesizer::LearnRange(const TraceCollector& traces, size_t from, size_t to) {
  for (size_t w = from; w < to; ++w) {
    for (const Trace& t : traces.TracesAt(w)) {
      LearnTrace(t);
    }
  }
}

size_t TraceSynthesizer::ShapeCountFor(const std::string& api) const {
  auto it = tables_.find(api);
  return it == tables_.end() ? 0 : it->second.shapes.size();
}

size_t TraceSynthesizer::TraceCountFor(const std::string& api) const {
  auto it = tables_.find(api);
  return it == tables_.end() ? 0 : it->second.total;
}

Trace TraceSynthesizer::Synthesize(const std::string& api, Rng& rng) const {
  auto it = tables_.find(api);
  if (it == tables_.end() || it->second.total == 0) {
    return Trace(0, api);
  }
  const ApiTable& table = it->second;
  // Multinomial draw over shapes by observed frequency.
  uint64_t target = rng.NextBelow(table.total);
  const Shape* chosen = &table.shapes.back();
  for (const Shape& shape : table.shapes) {
    if (target < shape.count) {
      chosen = &shape;
      break;
    }
    target -= shape.count;
  }
  Trace trace(rng.NextU64(), api);
  for (const Span& s : chosen->spans) {
    trace.AddSpan(s.component, s.operation, s.parent);
  }
  return trace;
}

void TraceSynthesizer::SynthesizeSeries(const TrafficSeries& traffic, size_t offset, Rng& rng,
                                        TraceCollector& out) const {
  for (size_t t = 0; t < traffic.windows(); ++t) {
    for (size_t a = 0; a < traffic.api_count(); ++a) {
      const int count = rng.NextPoisson(traffic.rate(t, a));
      for (int i = 0; i < count; ++i) {
        Trace trace = Synthesize(traffic.apis()[a], rng);
        if (!trace.empty()) {
          out.Collect(offset + t, std::move(trace));
        }
      }
    }
  }
}

void TraceSynthesizer::Save(std::ostream& out) const {
  auto write_u64 = [&](uint64_t v) { out.write(reinterpret_cast<const char*>(&v), 8); };
  auto write_str = [&](const std::string& s) {
    write_u64(s.size());
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
  };
  write_u64(tables_.size());
  for (const auto& [api, table] : tables_) {
    write_str(api);
    write_u64(table.shapes.size());
    for (const Shape& shape : table.shapes) {
      write_u64(shape.count);
      write_u64(shape.spans.size());
      for (const Span& s : shape.spans) {
        write_str(s.component);
        write_str(s.operation);
        write_u64(s.parent);
      }
    }
  }
}

bool TraceSynthesizer::Load(std::istream& in) {
  auto read_u64 = [&](uint64_t& v) {
    in.read(reinterpret_cast<char*>(&v), 8);
    return static_cast<bool>(in);
  };
  auto read_str = [&](std::string& s) {
    uint64_t len = 0;
    if (!read_u64(len) || len > (1u << 24)) {
      return false;
    }
    s.resize(len);
    in.read(s.data(), static_cast<std::streamsize>(len));
    return static_cast<bool>(in);
  };

  tables_.clear();
  uint64_t api_count = 0;
  if (!read_u64(api_count)) {
    return false;
  }
  for (uint64_t i = 0; i < api_count; ++i) {
    std::string api;
    uint64_t shape_count = 0;
    if (!read_str(api) || !read_u64(shape_count)) {
      return false;
    }
    ApiTable& table = tables_[api];
    for (uint64_t s = 0; s < shape_count; ++s) {
      Shape shape;
      uint64_t span_count = 0;
      if (!read_u64(shape.count) || !read_u64(span_count) || span_count > (1u << 20)) {
        return false;
      }
      shape.spans.resize(span_count);
      for (auto& span : shape.spans) {
        uint64_t parent = 0;
        if (!read_str(span.component) || !read_str(span.operation) || !read_u64(parent)) {
          return false;
        }
        span.parent = static_cast<SpanIndex>(parent);
      }
      table.total += shape.count;
      // Rebuild the dedup key from a temporary trace.
      Trace tmp(0, api);
      for (const Span& span : shape.spans) {
        tmp.AddSpan(span.component, span.operation, span.parent);
      }
      table.index_by_key.emplace(ShapeKey(tmp), table.shapes.size());
      table.shapes.push_back(std::move(shape));
    }
  }
  return true;
}

}  // namespace deeprest
