// Trace synthesizer (paper section 4.4).
//
// For resource-allocation queries the application has not served the traffic
// yet, so no real traces exist. The synthesizer learns the empirical
// distribution of trace shapes conditioned on each API during application
// learning — Prob(P | API) — and samples from it to convert a hypothetical
// RPS series into synthetic traces for the feature extractor.
#ifndef SRC_CORE_TRACE_SYNTHESIZER_H_
#define SRC_CORE_TRACE_SYNTHESIZER_H_

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/nn/rng.h"
#include "src/trace/collector.h"
#include "src/workload/traffic.h"

namespace deeprest {

class TraceSynthesizer {
 public:
  // Records one learning-phase trace under its originating API.
  void LearnTrace(const Trace& trace);
  // Learns from every trace in [from, to).
  void LearnRange(const TraceCollector& traces, size_t from, size_t to);

  // Number of distinct trace shapes learned for an API.
  size_t ShapeCountFor(const std::string& api) const;
  // Total learning traces observed for an API.
  size_t TraceCountFor(const std::string& api) const;

  // Samples one synthetic trace for the API (empty Trace if unknown API).
  Trace Synthesize(const std::string& api, Rng& rng) const;

  // Converts a whole query traffic series into synthetic traces, Poisson-
  // sampling the per-window request counts: windows [0, traffic.windows())
  // are written at offset + t.
  void SynthesizeSeries(const TrafficSeries& traffic, size_t offset, Rng& rng,
                        TraceCollector& out) const;

  // --- Persistence ---
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  // A trace shape: spans with parents, canonically serialized for dedup.
  struct Shape {
    std::vector<Span> spans;
    size_t count = 0;
  };
  struct ApiTable {
    std::vector<Shape> shapes;
    std::map<std::string, size_t> index_by_key;
    size_t total = 0;
  };

  static std::string ShapeKey(const Trace& trace);

  std::map<std::string, ApiTable> tables_;
};

}  // namespace deeprest

#endif  // SRC_CORE_TRACE_SYNTHESIZER_H_
