#include "src/eval/ascii.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace deeprest {

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string RenderSeries(const std::vector<std::string>& names,
                         const std::vector<std::vector<double>>& series, size_t height,
                         size_t width) {
  std::ostringstream os;
  if (series.empty() || series[0].empty()) {
    return "(empty series)\n";
  }
  double lo = 1e300;
  double hi = -1e300;
  size_t longest = 0;
  for (const auto& s : series) {
    for (double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    longest = std::max(longest, s.size());
  }
  if (hi <= lo) {
    hi = lo + 1.0;
  }

  // Legend.
  static const char kMarks[] = "abcdefghij";
  for (size_t i = 0; i < names.size() && i < series.size(); ++i) {
    os << "  [" << kMarks[i % 10] << "] " << names[i] << "\n";
  }

  // Down-sample each series to `width` columns by averaging.
  const size_t columns = std::min(width, longest);
  std::vector<std::vector<double>> sampled(series.size(), std::vector<double>(columns));
  for (size_t i = 0; i < series.size(); ++i) {
    for (size_t c = 0; c < columns; ++c) {
      const size_t begin = c * series[i].size() / columns;
      const size_t end = std::max(begin + 1, (c + 1) * series[i].size() / columns);
      double acc = 0.0;
      for (size_t t = begin; t < end && t < series[i].size(); ++t) {
        acc += series[i][t];
      }
      sampled[i][c] = acc / static_cast<double>(end - begin);
    }
  }

  std::vector<std::string> grid(height, std::string(columns, ' '));
  for (size_t i = 0; i < sampled.size(); ++i) {
    for (size_t c = 0; c < columns; ++c) {
      const double norm = (sampled[i][c] - lo) / (hi - lo);
      const size_t row =
          height - 1 -
          std::min(height - 1, static_cast<size_t>(norm * static_cast<double>(height - 1) + 0.5));
      grid[row][c] = kMarks[i % 10];
    }
  }
  os << FormatDouble(hi, 1) << "\n";
  for (const auto& line : grid) {
    os << "  |" << line << "\n";
  }
  os << FormatDouble(lo, 1) << "  +" << std::string(columns, '-') << "\n";
  return os.str();
}

std::string RenderHeatmap(const std::vector<std::string>& row_names,
                          const std::vector<std::string>& col_names,
                          const std::vector<std::vector<double>>& values,
                          const std::string& unit) {
  std::ostringstream os;
  size_t name_width = 4;
  for (const auto& name : row_names) {
    name_width = std::max(name_width, name.size());
  }
  size_t col_width = 8;
  for (const auto& name : col_names) {
    col_width = std::max(col_width, name.size() + 1);
  }

  os << std::string(name_width, ' ');
  for (const auto& name : col_names) {
    os << std::string(col_width - name.size(), ' ') << name;
  }
  os << "\n";
  for (size_t r = 0; r < row_names.size(); ++r) {
    os << row_names[r] << std::string(name_width - row_names[r].size(), ' ');
    for (size_t c = 0; c < values[r].size(); ++c) {
      std::string cell;
      if (std::isnan(values[r][c])) {
        cell = "-";
      } else {
        cell = FormatDouble(values[r][c], 1) + unit;
      }
      os << std::string(col_width > cell.size() ? col_width - cell.size() : 1, ' ') << cell;
    }
    os << "\n";
  }
  return os.str();
}

std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size());
  for (size_t c = 0; c < header.size(); ++c) {
    widths[c] = header[c].size();
  }
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "  ";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      os << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    os << "\n";
  };
  print_row(header);
  os << "  ";
  for (size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c], '-') << "  ";
  }
  os << "\n";
  for (const auto& row : rows) {
    print_row(row);
  }
  return os.str();
}

}  // namespace deeprest
