// Terminal rendering helpers so every benchmark can print the paper's curves
// and heatmaps directly to stdout.
#ifndef SRC_EVAL_ASCII_H_
#define SRC_EVAL_ASCII_H_

#include <string>
#include <vector>

namespace deeprest {

// Multi-series line chart: one character column per down-sampled step, one
// letter per series (legend printed above the chart).
std::string RenderSeries(const std::vector<std::string>& names,
                         const std::vector<std::vector<double>>& series, size_t height = 12,
                         size_t width = 96);

// Row/column heatmap of values (lower = better by default): buckets values
// into shade characters and prints a legend with the numeric range.
std::string RenderHeatmap(const std::vector<std::string>& row_names,
                          const std::vector<std::string>& col_names,
                          const std::vector<std::vector<double>>& values,
                          const std::string& unit = "%");

// Simple fixed-width table.
std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

// Formats a double with the given precision.
std::string FormatDouble(double value, int precision = 2);

}  // namespace deeprest

#endif  // SRC_EVAL_ASCII_H_
