#include "src/eval/autoscale_harness.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace deeprest {

ClosedLoopResult RunClosedLoop(const Application& app, const Simulator& base_sim,
                               size_t start_window, const TrafficSeries& traffic,
                               WhatIfSource* whatif, const ClosedLoopConfig& config,
                               const std::string& scenario_name) {
  ClosedLoopResult result;
  result.policy = PolicyKindName(config.policy);
  result.scenario = scenario_name;
  result.windows = traffic.windows();
  result.components = app.components().size();
  if (traffic.windows() == 0) {
    return result;
  }

  const auto model = std::make_shared<QueueingCapacityModel>(config.capacity);

  // Ground-truth pass: an identical simulator copy over the same scenario.
  // Replica counts do not change what a component is ASKED to do, only how
  // it copes, and the capacity path draws the same noise as the legacy path
  // — so this copy's demand is bit-exact with the closed-loop run below.
  Simulator truth_sim = base_sim;
  truth_sim.SetCapacityModel(model, config.default_capacity_cpu);
  truth_sim.Run(traffic, start_window, nullptr, nullptr);
  DemandSeries truth;
  truth.base = start_window;
  for (const auto& spec : app.components()) {
    std::vector<double>& series = truth.cpu[spec.name];
    series.reserve(traffic.windows());
    for (size_t t = 0; t < traffic.windows(); ++t) {
      const CapacityOutcome* o = truth_sim.OutcomeAt(spec.name, start_window + t);
      series.push_back(o != nullptr ? o->demand_cpu : spec.cpu_baseline);
    }
  }

  // One what-if query covers the whole scenario: the estimator is a pure
  // function of the traffic plan, so per-tick re-queries would return slices
  // of exactly this map.
  DemandSeries forecast;
  bool have_forecast = false;
  if (config.policy == PolicyKind::kPredictive && whatif != nullptr) {
    const EstimateMap estimates = whatif->Estimate(traffic, config.whatif_seed);
    if (!estimates.empty()) {
      forecast = ForecastFromEstimates(estimates, start_window,
                                       config.forecast_upper_weight);
      have_forecast = true;
    }
  }

  // One sizing source of truth: cells differ in policy, never in bounds.
  AutoscaleControllerConfig ctrl_config = config.controller;
  ctrl_config.sizing = config.policy_config.sizing;
  const std::unique_ptr<ScalingPolicy> policy =
      MakePolicy(config.policy, config.policy_config);
  AutoscaleController controller(*policy, ctrl_config);

  Simulator sim = base_sim;
  sim.SetCapacityModel(model, config.default_capacity_cpu);

  // Every policy starts from the same deployment, sized for the first
  // interval's true demand — differences in the metrics are then down to
  // control decisions, not starting handicaps.
  const size_t interval = std::max<size_t>(1, ctrl_config.control_interval);
  for (const auto& spec : app.components()) {
    ComponentObservation seed_obs;
    seed_obs.capacity_cpu = config.default_capacity_cpu;
    seed_obs.stateful = spec.stateful;
    const double first_demand = truth.MaxOver(
        spec.name, start_window, start_window + interval, spec.cpu_baseline);
    const ComponentTarget init =
        SizeForDemand(first_demand, seed_obs, ctrl_config.sizing,
                      ctrl_config.sizing.target_utilization);
    controller.AddComponent(spec.name, spec.stateful, init.replicas, init.capacity_cpu);
    sim.SetReplicas(spec.name, init.replicas);
    sim.SetReplicaCapacity(spec.name, init.capacity_cpu);
  }

  FaultInjector faults(config.faults);
  MetricsStore metrics;
  const double window_hours = 24.0 / std::max<size_t>(1, config.windows_per_day);
  const size_t n = traffic.windows();
  double weighted_violations = 0.0;
  double total_requests = 0.0;

  size_t t = 0;
  while (t < n) {
    if (t > 0) {
      // Control tick at the interval boundary, on evidence from the newest
      // simulated window. The scrape runs through the fault injector: a lost
      // sample is a blank observation, never a zero.
      const size_t evidence = start_window + t - 1;
      const std::map<std::string, ComponentScale> scale = controller.CurrentScale();
      std::map<std::string, ComponentObservation> observations;
      for (const auto& spec : app.components()) {
        const ComponentScale& s = scale.at(spec.name);
        ComponentObservation obs;
        obs.replicas = s.replicas;
        obs.capacity_cpu = s.capacity_cpu;
        obs.stateful = s.stateful;
        const MetricKey key{spec.name, ResourceKind::kCpu};
        const double util_pct = metrics.At(key, evidence);
        obs.blank = !faults.ProcessMetric(key, evidence, util_pct);
        obs.utilization = util_pct / 100.0;
        obs.demand_cpu =
            obs.utilization * static_cast<double>(s.replicas) * s.capacity_cpu;
        observations[spec.name] = obs;
      }

      PolicyInputs inputs;
      inputs.window = start_window + t;
      inputs.horizon = interval;
      inputs.lookahead = ctrl_config.lookahead;
      inputs.forecast = have_forecast ? &forecast : nullptr;
      inputs.truth = config.policy == PolicyKind::kOracle ? &truth : nullptr;

      const std::vector<ScalingAction> actions =
          controller.Tick(start_window + t, observations, inputs);
      for (const ScalingAction& action : actions) {
        sim.SetReplicas(action.component, action.replicas_after);
        sim.SetReplicaCapacity(action.component, action.capacity_after);
      }
    }

    const size_t span = std::min(interval, n - t);
    const TrafficSeries slice = SliceTraffic(traffic, t, t + span);
    sim.Run(slice, start_window + t, nullptr, &metrics);

    for (size_t w = t; w < t + span; ++w) {
      const double requests = std::max(1e-9, traffic.TotalAt(w));
      double worst_violation = 0.0;
      double provisioned_cpu = 0.0;
      double demand_cpu = 0.0;
      double replicas_total = 0.0;
      for (const auto& spec : app.components()) {
        const CapacityOutcome* o = sim.OutcomeAt(spec.name, start_window + w);
        if (o == nullptr) {
          continue;
        }
        worst_violation = std::max(worst_violation, o->violation_frac);
        provisioned_cpu += static_cast<double>(o->replicas) * o->capacity_cpu;
        demand_cpu += o->demand_cpu;
        replicas_total += static_cast<double>(o->replicas);
      }
      weighted_violations += worst_violation * requests;
      total_requests += requests;
      result.provisioned_core_hours += provisioned_cpu / 100.0 * window_hours;
      result.demand_core_hours += demand_cpu / 100.0 * window_hours;
      result.peak_replicas = std::max(result.peak_replicas, replicas_total);
    }
    t += span;
  }

  result.slo_violation_rate =
      total_requests > 0.0 ? weighted_violations / total_requests : 0.0;
  result.over_provision_ratio =
      result.demand_core_hours > 0.0
          ? result.provisioned_core_hours / result.demand_core_hours
          : 0.0;
  result.mean_utilization =
      result.provisioned_core_hours > 0.0
          ? result.demand_core_hours / result.provisioned_core_hours
          : 0.0;
  result.counters = controller.counters();
  result.actions = result.counters.scale_outs + result.counters.scale_ins +
                   result.counters.grows + result.counters.shrinks;
  result.action_log = controller.ActionLog();
  return result;
}

}  // namespace deeprest
