// Closed-loop autoscaling evaluation (ROADMAP item 1).
//
// RunClosedLoop forks a learned-state simulator (warm caches, grown disks —
// exactly the deployment the estimator was trained against), installs the
// capacity model so scaling actions change simulated utilization and SLO
// outcomes, and then alternates controller ticks with simulated intervals:
//
//   forecast (what-if) -> controller.Tick -> SetReplicas/SetReplicaCapacity
//     -> simulate control_interval windows -> scrape observations -> repeat
//
// Ground truth for the oracle policy and the demand-core-hours denominator
// comes from an identical simulator copy run over the same scenario up
// front: both copies draw the same RNG sequence, so "true demand" is
// bit-exact with what the closed-loop run experiences.
//
// Reported metrics follow the Sinan / DeepScaler evaluation axes:
//   * slo_violation_rate     — request-weighted, worst component per window
//     (a request traverses many components; the most overloaded one decides
//     whether it makes the deadline);
//   * provisioned/demand core-hours and their ratio — the cost axis;
//   * action counters — the thrash axis.
//
// Determinism: every cell is self-contained (own simulator copy, own
// controller, seeded fault injector; what-if queries against a shared
// immutable model are bit-exact under concurrency per the src/nn contract),
// so N cells run across N threads produce byte-identical results to a
// sequential run.
#ifndef SRC_EVAL_AUTOSCALE_HARNESS_H_
#define SRC_EVAL_AUTOSCALE_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/autoscale/controller.h"
#include "src/autoscale/policy.h"
#include "src/autoscale/scenario.h"
#include "src/serve/whatif.h"
#include "src/sim/capacity.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"

namespace deeprest {

struct ClosedLoopConfig {
  PolicyKind policy = PolicyKind::kReactive;
  PolicyConfig policy_config;
  AutoscaleControllerConfig controller;
  QueueingCapacityConfig capacity;
  // Per-replica capacity every component starts from (percent points of one
  // core; 50 = half-core replicas).
  double default_capacity_cpu = 50.0;
  size_t windows_per_day = 48;  // converts windows to hours for core-hours
  uint64_t whatif_seed = 7;
  // Risk appetite for the predictive forecast: the share of the CI spread
  // above the expected head to provision for (see ForecastFromEstimates).
  double forecast_upper_weight = 1.0;
  // Telemetry faults between the simulator and the controller's scrapes
  // (chaos tests): a lost scrape yields a blank observation. Default off.
  FaultInjectorConfig faults;
};

struct ClosedLoopResult {
  std::string policy;
  std::string scenario;
  size_t windows = 0;
  size_t components = 0;

  double slo_violation_rate = 0.0;     // request-weighted, in [0, 1]
  double provisioned_core_hours = 0.0;
  double demand_core_hours = 0.0;
  double over_provision_ratio = 0.0;   // provisioned / demand
  double mean_utilization = 0.0;       // demand / provisioned
  double peak_replicas = 0.0;          // max total replicas over the run

  ControllerCounters counters;
  uint64_t actions = 0;  // scale_outs + scale_ins + grows + shrinks
  std::vector<std::string> action_log;
};

// Runs one (policy, scenario) cell. `base_sim` is copied — the caller's
// simulator (typically ExperimentHarness::simulator() after the learning
// phase) is not advanced. `whatif` may be null for the reactive and oracle
// policies; the predictive policy falls back to reactive behaviour without
// it. `start_window` is the absolute window the scenario begins at (the
// learning phase length), matching the simulator's window axis.
ClosedLoopResult RunClosedLoop(const Application& app, const Simulator& base_sim,
                               size_t start_window, const TrafficSeries& traffic,
                               WhatIfSource* whatif, const ClosedLoopConfig& config,
                               const std::string& scenario_name);

}  // namespace deeprest

#endif  // SRC_EVAL_AUTOSCALE_HARNESS_H_
