#include "src/eval/harness.h"

#include <cstdio>
#include <functional>
#include <sstream>

#include "src/eval/parallel.h"

namespace deeprest {

namespace {

// The learning-phase API mix of the social network (weights sum to 1; the
// three representative APIs of the paper dominate).
std::vector<ApiShare> SocialMix() {
  return {
      {"/composePost", 0.22},  {"/readTimeline", 0.34}, {"/readUserTimeline", 0.10},
      {"/uploadMedia", 0.06},  {"/getMedia", 0.12},     {"/login", 0.05},
      {"/register", 0.005},    {"/followUser", 0.02},   {"/unfollowUser", 0.01},
      {"/searchUser", 0.035},  {"/readPost", 0.04},
  };
}

std::vector<ApiShare> HotelMix() {
  return {
      {"/searchHotels", 0.55},
      {"/recommend", 0.20},
      {"/reserve", 0.10},
      {"/login", 0.15},
  };
}

}  // namespace

ExperimentHarness::ExperimentHarness(const HarnessConfig& config)
    : config_(config),
      app_(config.app == HarnessConfig::AppKind::kSocialNetwork
               ? BuildSocialNetworkApp(config.seed)
               : BuildHotelReservationApp(config.seed)) {
  SimOptions sim_options;
  sim_options.seed = config_.seed;
  sim_ = std::make_unique<Simulator>(app_, sim_options);

  Rng traffic_rng(config_.seed * 7919 + 13);
  learn_traffic_ = GenerateTraffic(LearnSpec(), traffic_rng);
  sim_->Run(learn_traffic_, 0, &traces_, &metrics_);
  next_window_ = learn_windows();
}

TrafficSpec ExperimentHarness::LearnSpec() const {
  TrafficSpec spec;
  spec.days = config_.learn_days;
  spec.windows_per_day = config_.windows_per_day;
  spec.shape = config_.learn_shape;
  spec.base_requests_per_window = config_.base_requests_per_window;
  spec.mix = config_.app == HarnessConfig::AppKind::kSocialNetwork ? SocialMix() : HotelMix();
  return spec;
}

TrafficSpec ExperimentHarness::QuerySpec(size_t days) const {
  TrafficSpec spec = LearnSpec();
  spec.days = days;
  return spec;
}

ExperimentHarness::QueryResult ExperimentHarness::RunQuery(
    const TrafficSeries& query_traffic) {
  QueryResult result;
  result.traffic = query_traffic;
  result.from = next_window_;
  result.to = next_window_ + query_traffic.windows();
  sim_->Run(query_traffic, next_window_, &traces_, &metrics_);
  next_window_ = result.to;
  return result;
}

std::string ExperimentHarness::CacheFile() const {
  // Hash together everything the trained model depends on.
  std::ostringstream key;
  const EstimatorConfig& e = config_.estimator;
  key << app_.name() << '|' << ShapeKindName(config_.learn_shape) << '|'
      << config_.learn_days << '|' << config_.windows_per_day << '|'
      << config_.base_requests_per_window << '|' << config_.seed << '|' << e.hidden_dim << '|'
      << e.epochs << '|' << e.learning_rate << '|' << e.bptt_chunk << '|' << e.delta << '|'
      << e.seed << '|' << e.mask_decay << '|' << e.use_api_mask << e.use_attention
      << e.use_recurrence << e.warm_start << e.use_linear_bypass;
  const size_t hash = std::hash<std::string>{}(key.str());
  std::ostringstream path;
  path << config_.cache_dir << "/deeprest_model_" << std::hex << hash << ".bin";
  return path.str();
}

DeepRestEstimator& ExperimentHarness::deeprest() {
  if (!deeprest_) {
    EstimatorConfig estimator_config = config_.estimator;
    estimator_config.seed = estimator_config.seed == 1 ? config_.seed : estimator_config.seed;
    deeprest_ = std::make_unique<DeepRestEstimator>(estimator_config);
    const std::string cache = CacheFile();
    if (config_.cache_models && deeprest_->Load(cache)) {
      return *deeprest_;
    }
    deeprest_->Learn(traces_, metrics_, 0, learn_windows(), app_.MetricCatalog());
    if (config_.cache_models) {
      deeprest_->Save(cache);
    }
  }
  return *deeprest_;
}

void ExperimentHarness::TrainDeepRestParallel(
    const std::vector<ExperimentHarness*>& harnesses, size_t threads) {
  ParallelFor(
      harnesses.size(), [&](size_t i) { harnesses[i]->deeprest(); }, threads);
}

ResourceAwareDl& ExperimentHarness::resource_aware_dl() {
  if (!resource_aware_dl_) {
    ResourceAwareDlConfig baseline_config = config_.resource_aware_dl;
    baseline_config.seed = config_.seed;
    resource_aware_dl_ = std::make_unique<ResourceAwareDl>(baseline_config);
    resource_aware_dl_->Learn(metrics_, 0, learn_windows(), config_.windows_per_day,
                              app_.MetricCatalog());
  }
  return *resource_aware_dl_;
}

SimpleScaling& ExperimentHarness::simple_scaling() {
  if (!simple_scaling_) {
    simple_scaling_ = std::make_unique<SimpleScaling>();
    simple_scaling_->Learn(metrics_, learn_traffic_, 0, learn_windows(),
                           config_.windows_per_day, app_.MetricCatalog());
  }
  return *simple_scaling_;
}

ComponentAwareScaling& ExperimentHarness::component_aware_scaling() {
  if (!component_aware_scaling_) {
    component_aware_scaling_ = std::make_unique<ComponentAwareScaling>();
    component_aware_scaling_->Learn(metrics_, traces_, 0, learn_windows(),
                                    config_.windows_per_day, app_.MetricCatalog());
  }
  return *component_aware_scaling_;
}

EstimateMap ExperimentHarness::EstimateDeepRest(const QueryResult& query) {
  return deeprest().EstimateFromTraffic(query.traffic, config_.seed * 31 + query.from);
}

EstimateMap ExperimentHarness::EstimateDeepRestFromRealTraces(const QueryResult& query) {
  return deeprest().EstimateFromTraces(traces_, query.from, query.to);
}

EstimateMap ExperimentHarness::EstimateResourceAwareDl(const QueryResult& query) {
  return resource_aware_dl().Forecast(query.to - query.from);
}

EstimateMap ExperimentHarness::EstimateSimpleScaling(const QueryResult& query) {
  return simple_scaling().Estimate(query.traffic);
}

EstimateMap ExperimentHarness::EstimateComponentAwareScaling(const QueryResult& query) {
  // The component-aware baseline needs traces for the query traffic. Like
  // DeepRest's mode 1, it gets synthetic ones (the traffic has notionally not
  // been served yet); the synthesizer is DeepRest's, which only helps it.
  Rng rng(config_.seed * 77 + query.from);
  TraceCollector synthetic;
  deeprest().synthesizer().SynthesizeSeries(query.traffic, 0, rng, synthetic);
  return component_aware_scaling().Estimate(synthetic, 0, query.traffic.windows());
}

double ExperimentHarness::QueryMape(const EstimateMap& estimates, const QueryResult& query,
                                    const MetricKey& key) const {
  return ResourceMape(estimates, metrics_, key, query.from, query.to);
}

}  // namespace deeprest
