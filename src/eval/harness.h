// Experiment harness: the shared learn-phase / query-phase orchestration
// behind every benchmark and the end-to-end tests.
//
// A harness owns one application, simulates its 7-day (configurable)
// learning phase, trains the four estimation algorithms on the resulting
// telemetry, and then answers queries: a query's ground truth is produced by
// CONTINUING the same simulator (warm caches, grown disks) on the query
// traffic, exactly as the paper replays query traffic against the live
// deployment.
#ifndef SRC_EVAL_HARNESS_H_
#define SRC_EVAL_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/baselines.h"
#include "src/core/estimator.h"
#include "src/core/sanity.h"
#include "src/eval/metrics.h"
#include "src/sim/app.h"
#include "src/sim/simulator.h"

namespace deeprest {

struct HarnessConfig {
  enum class AppKind { kSocialNetwork, kHotelReservation };
  AppKind app = AppKind::kSocialNetwork;
  size_t learn_days = 7;
  size_t windows_per_day = 72;
  double base_requests_per_window = 120.0;
  // Diurnal shape of the learning phase (two-peak in the paper; the
  // flat->two-peak direction of Fig. 16 flips it).
  ShapeKind learn_shape = ShapeKind::kTwoPeak;
  uint64_t seed = 1;
  EstimatorConfig estimator;
  ResourceAwareDlConfig resource_aware_dl;
  // Persist trained DeepRest models next to the binary and reuse them across
  // runs with identical configurations (the learning phase is deterministic,
  // so a cached model is bit-identical to a retrained one).
  bool cache_models = true;
  std::string cache_dir = ".";
};

class ExperimentHarness {
 public:
  explicit ExperimentHarness(const HarnessConfig& config);

  // --- Learning phase ---
  const Application& app() const { return app_; }
  const HarnessConfig& config() const { return config_; }
  size_t learn_windows() const { return config_.learn_days * config_.windows_per_day; }
  const TrafficSeries& learn_traffic() const { return learn_traffic_; }
  const TraceCollector& traces() const { return traces_; }
  const MetricsStore& metrics() const { return metrics_; }
  Simulator& simulator() { return *sim_; }

  // Default traffic spec matching the learning phase (same mix and shape).
  TrafficSpec LearnSpec() const;
  // Query spec: learning defaults, `days` long; callers adjust scale / mix /
  // shape for the unseen-traffic scenarios.
  TrafficSpec QuerySpec(size_t days = 1) const;

  // --- Queries ---
  struct QueryResult {
    TrafficSeries traffic;
    size_t from = 0;  // absolute window range of the ground truth
    size_t to = 0;
  };

  // Continues the simulation on the query traffic; ground-truth metrics and
  // real traces land in metrics()/traces() at [result.from, result.to).
  QueryResult RunQuery(const TrafficSeries& query_traffic);

  // --- Algorithms (trained lazily on the learning phase) ---
  DeepRestEstimator& deeprest();
  // Trains the DeepRest estimators of several independent harnesses
  // concurrently on a worker pool (src/eval/parallel.h). Each harness owns a
  // distinct model, so this is safe per the src/nn threading contract and
  // bit-identical to calling h->deeprest() sequentially. threads == 0 uses
  // DefaultTrainThreads().
  static void TrainDeepRestParallel(const std::vector<ExperimentHarness*>& harnesses,
                                    size_t threads = 0);
  ResourceAwareDl& resource_aware_dl();
  SimpleScaling& simple_scaling();
  ComponentAwareScaling& component_aware_scaling();

  // --- Convenience estimation wrappers for one query ---
  // DeepRest mode 1: synthesize traces from the query traffic.
  EstimateMap EstimateDeepRest(const QueryResult& query);
  // DeepRest mode 2: use the real traces captured while serving the query.
  EstimateMap EstimateDeepRestFromRealTraces(const QueryResult& query);
  EstimateMap EstimateResourceAwareDl(const QueryResult& query);
  EstimateMap EstimateSimpleScaling(const QueryResult& query);
  EstimateMap EstimateComponentAwareScaling(const QueryResult& query);

  // MAPE of an algorithm's estimate against the query's ground truth.
  double QueryMape(const EstimateMap& estimates, const QueryResult& query,
                   const MetricKey& key) const;

 private:
  std::string CacheFile() const;

  HarnessConfig config_;
  Application app_;
  std::unique_ptr<Simulator> sim_;
  TrafficSeries learn_traffic_;
  TraceCollector traces_;
  MetricsStore metrics_;
  size_t next_window_ = 0;

  std::unique_ptr<DeepRestEstimator> deeprest_;
  std::unique_ptr<ResourceAwareDl> resource_aware_dl_;
  std::unique_ptr<SimpleScaling> simple_scaling_;
  std::unique_ptr<ComponentAwareScaling> component_aware_scaling_;
};

}  // namespace deeprest

#endif  // SRC_EVAL_HARNESS_H_
