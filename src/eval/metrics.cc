#include "src/eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace deeprest {

double Mape(const std::vector<double>& predicted, const std::vector<double>& actual) {
  const size_t n = std::min(predicted.size(), actual.size());
  if (n == 0) {
    return 0.0;
  }
  double mean = 0.0;
  for (size_t t = 0; t < n; ++t) {
    mean += actual[t];
  }
  mean /= static_cast<double>(n);
  const double floor = std::max(0.05 * mean, 1e-9);

  double total = 0.0;
  for (size_t t = 0; t < n; ++t) {
    total += std::fabs(predicted[t] - actual[t]) / std::max(actual[t], floor);
  }
  return 100.0 * total / static_cast<double>(n);
}

double ResourceMape(const EstimateMap& estimates, const MetricsStore& metrics,
                    const MetricKey& key, size_t from, size_t to) {
  auto it = estimates.find(key);
  if (it == estimates.end()) {
    return 100.0;
  }
  return Mape(it->second.expected, metrics.Series(key, from, to));
}

double IntervalCoverage(const ResourceEstimate& estimate, const std::vector<double>& actual) {
  const size_t n = std::min(actual.size(), estimate.expected.size());
  if (n == 0) {
    return 0.0;
  }
  size_t covered = 0;
  for (size_t t = 0; t < n; ++t) {
    if (actual[t] >= estimate.lower[t] && actual[t] <= estimate.upper[t]) {
      ++covered;
    }
  }
  return static_cast<double>(covered) / static_cast<double>(n);
}

double SynthesisQuality(const std::vector<std::vector<float>>& synthetic,
                        const std::vector<std::vector<float>>& real, size_t block_windows) {
  const size_t n = std::min(synthetic.size(), real.size());
  if (n == 0) {
    return 0.0;
  }
  block_windows = std::max<size_t>(1, block_windows);
  const size_t blocks = (n + block_windows - 1) / block_windows;
  double error_sum = 0.0;
  for (size_t b = 0; b < blocks; ++b) {
    const size_t begin = b * block_windows;
    const size_t end = std::min(n, begin + block_windows);
    const size_t dims = std::min(synthetic[begin].size(), real[begin].size());
    double l1 = 0.0;
    double mass = 0.0;
    for (size_t d = 0; d < dims; ++d) {
      double synth_sum = 0.0;
      double real_sum = 0.0;
      for (size_t t = begin; t < end; ++t) {
        synth_sum += synthetic[t][d];
        real_sum += real[t][d];
      }
      l1 += std::fabs(synth_sum - real_sum);
      mass += synth_sum + real_sum;
    }
    error_sum += mass > 0.0 ? l1 / mass : 0.0;
  }
  return 100.0 * (1.0 - error_sum / static_cast<double>(blocks));
}

}  // namespace deeprest
