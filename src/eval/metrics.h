// Evaluation metrics shared by tests and benchmarks.
#ifndef SRC_EVAL_METRICS_H_
#define SRC_EVAL_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/estimator.h"
#include "src/telemetry/metrics.h"

namespace deeprest {

// Mean absolute percentage error (paper's headline metric). The denominator
// is floored at 5% of the series mean so near-zero troughs do not explode
// the statistic.
double Mape(const std::vector<double>& predicted, const std::vector<double>& actual);

// MAPE of one resource's expected-value estimate against the metrics store.
double ResourceMape(const EstimateMap& estimates, const MetricsStore& metrics,
                    const MetricKey& key, size_t from, size_t to);

// Fraction of actual samples falling inside [lower, upper].
double IntervalCoverage(const ResourceEstimate& estimate, const std::vector<double>& actual);

// Trace-synthesis quality (paper Table 1): L1 similarity between the
// feature-vector histograms of synthetic and ground-truth traces, in percent
// (100 = identical histograms). Windows are aggregated into blocks of
// `block_windows` before comparison so that Poisson sampling noise on small
// per-window counts (present identically in both the synthetic and the real
// traces) does not dominate the distributional comparison.
double SynthesisQuality(const std::vector<std::vector<float>>& synthetic,
                        const std::vector<std::vector<float>>& real,
                        size_t block_windows = 4);

}  // namespace deeprest

#endif  // SRC_EVAL_METRICS_H_
