#include "src/eval/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>

#include "src/core/thread_annotations.h"

namespace deeprest {

size_t DefaultTrainThreads() {
  if (const char* env = std::getenv("DEEPREST_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

struct ThreadPool::State {
  // Jobs run with mu released, so nothing is ever acquired under it.
  Mutex mu;  // deeprest-lint: lock-level(leaf)
  std::condition_variable work_ready;   // workers wait for jobs / shutdown
  std::condition_variable work_done;    // Wait() waits for pending == 0
  std::deque<std::function<void()>> queue DEEPREST_GUARDED_BY(mu);
  // Queued + running jobs.
  size_t pending DEEPREST_GUARDED_BY(mu) = 0;
  bool shutdown DEEPREST_GUARDED_BY(mu) = false;
  std::exception_ptr first_error DEEPREST_GUARDED_BY(mu);
};

ThreadPool::ThreadPool(size_t threads) : state_(std::make_unique<State>()) {
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([state = state_.get()] {
      for (;;) {
        std::function<void()> job;
        {
          MutexLock lock(state->mu);
          while (!state->shutdown && state->queue.empty()) {
            lock.Wait(state->work_ready);
          }
          if (state->queue.empty()) {
            return;  // shutdown with nothing left to do
          }
          job = std::move(state->queue.front());
          state->queue.pop_front();
        }
        try {
          job();
        } catch (...) {
          MutexLock lock(state->mu);
          if (!state->first_error) {
            state->first_error = std::current_exception();
          }
        }
        {
          MutexLock lock(state->mu);
          if (--state->pending == 0) {
            state->work_done.notify_all();
          }
        }
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(state_->mu);
    state_->shutdown = true;
  }
  state_->work_ready.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    MutexLock lock(state_->mu);
    state_->queue.push_back(std::move(job));
    ++state_->pending;
  }
  state_->work_ready.notify_one();
}

void ThreadPool::Wait() {
  MutexLock lock(state_->mu);
  while (state_->pending != 0) {
    lock.Wait(state_->work_done);
  }
  if (state_->first_error) {
    std::exception_ptr error = state_->first_error;
    state_->first_error = nullptr;
    lock.Unlock();  // rethrow outside the critical section
    std::rethrow_exception(error);
  }
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn, size_t threads) {
  if (threads == 0) {
    threads = DefaultTrainThreads();
  }
  if (n <= 1 || threads <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  ThreadPool pool(std::min(threads, n));
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

std::vector<std::unique_ptr<DeepRestEstimator>> TrainEstimatorsParallel(
    const std::vector<TrainJob>& jobs, size_t threads) {
  std::vector<std::unique_ptr<DeepRestEstimator>> models(jobs.size());
  ParallelFor(
      jobs.size(),
      [&](size_t i) {
        const TrainJob& job = jobs[i];
        auto model = std::make_unique<DeepRestEstimator>(job.config);
        model->Learn(*job.traces, *job.metrics, job.from, job.to, job.resources);
        models[i] = std::move(model);
      },
      threads);
  return models;
}

}  // namespace deeprest
