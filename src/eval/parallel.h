// Parallel training utilities.
//
// The src/nn threading contract (tensor.h) allows DISTINCT models — disjoint
// parameter sets — to train concurrently: all autograd cross-thread state is
// thread-local or atomic, and training touches only the model's own nodes.
// This file provides the worker pool that exploits that: benchmarks and the
// eval harness train independent estimators (different seeds, configs, or
// resource subsets) across threads.
//
// Determinism: every job is self-contained (its own estimator, its own
// seeded RNG chain) and writes only to its own result slot, so an N-thread
// run is bit-identical to a 1-thread run — scheduling order cannot leak into
// the numerics.
#ifndef SRC_EVAL_PARALLEL_H_
#define SRC_EVAL_PARALLEL_H_

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/estimator.h"

namespace deeprest {

// Worker-thread count: the DEEPREST_THREADS environment variable when set to
// a positive integer, otherwise std::thread::hardware_concurrency() (>= 1).
size_t DefaultTrainThreads();

// Fixed-size pool of worker threads pulling jobs from one queue. Threads are
// joined in the destructor; Wait() blocks until every submitted job has run.
// A job's exception is captured and rethrown from Wait() (first one wins).
// The queue state lives in an annotated State struct (parallel.cc) whose
// fields are DEEPREST_GUARDED_BY its mutex — see src/core/thread_annotations.h.
class ThreadPool {
 public:
  explicit ThreadPool(size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> job);
  void Wait();

  size_t thread_count() const { return threads_.size(); }

 private:
  struct State;
  std::unique_ptr<State> state_;
  std::vector<std::thread> threads_;
};

// Runs fn(i) for every i in [0, n) across `threads` workers (0 = default).
// With threads == 1 (or n <= 1) everything runs on the calling thread.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn, size_t threads = 0);

// One independent training job: an estimator config plus the telemetry range
// it learns from. Pointers must outlive the TrainEstimatorsParallel call.
struct TrainJob {
  EstimatorConfig config;
  const TraceCollector* traces = nullptr;
  const MetricsStore* metrics = nullptr;
  size_t from = 0;
  size_t to = 0;
  std::vector<MetricKey> resources;
};

// Trains one estimator per job, concurrently across `threads` workers
// (0 = DefaultTrainThreads()). Results are index-aligned with `jobs` and
// bit-identical to training the jobs sequentially.
std::vector<std::unique_ptr<DeepRestEstimator>> TrainEstimatorsParallel(
    const std::vector<TrainJob>& jobs, size_t threads = 0);

}  // namespace deeprest

#endif  // SRC_EVAL_PARALLEL_H_
