#include "src/nn/batched.h"

#include <cassert>
#include <cmath>
#include <cstring>

#include "src/nn/simd/dispatch.h"

namespace deeprest {

void BatchedSigmoidMaskMul(const Matrix& mask, const Matrix& x, Matrix& sig, Matrix& out) {
  assert(mask.rows() == x.rows() && mask.cols() == 1);
  const size_t d = x.rows();
  const size_t b = x.cols();
  if (sig.rows() != d) {  // first step of the call: fill the per-expert cache
    sig.SetShape(d, 1);
    for (size_t i = 0; i < d; ++i) {
      sig[i] = 1.0f / (1.0f + std::exp(-mask[i]));
    }
  }
  out.SetShape(d, b);
  const float* xv = x.data();
  float* ov = out.data();
  for (size_t i = 0; i < d; ++i) {
    const float s = sig[i];
    const float* xrow = xv + i * b;
    float* orow = ov + i * b;
    for (size_t c = 0; c < b; ++c) {
      orow[c] = s * xrow[c];
    }
  }
}

void BatchedGruStep(const Matrix& x, const Matrix& h, const WeightView& wz, const Matrix& uz,
                    const Matrix& bz, const WeightView& wk, const Matrix& uk, const Matrix& bk,
                    const WeightView& wh, const Matrix& uh, const Matrix& bh, BatchedScratch& s,
                    Matrix& h_next) {
  assert(&h != &h_next);
  const size_t hd = h.rows();
  const size_t b = h.cols();
  assert(x.cols() == b);
  // z = sigmoid((wz@x + uz@h) + bz) — same association as the fused step.
  WeightMatMul(wz, x, s.ta, s.quant);
  MatMulInto(uz, h, s.tb);
  s.z.SetShape(hd, b);
  for (size_t i = 0; i < hd; ++i) {
    const float bias = bz[i];
    const float* ta = s.ta.data() + i * b;
    const float* tb = s.tb.data() + i * b;
    float* zr = s.z.data() + i * b;
    for (size_t c = 0; c < b; ++c) {
      zr[c] = 1.0f / (1.0f + std::exp(-((ta[c] + tb[c]) + bias)));
    }
  }
  WeightMatMul(wk, x, s.ta, s.quant);
  MatMulInto(uk, h, s.tb);
  s.kgate.SetShape(hd, b);
  for (size_t i = 0; i < hd; ++i) {
    const float bias = bk[i];
    const float* ta = s.ta.data() + i * b;
    const float* tb = s.tb.data() + i * b;
    float* kr = s.kgate.data() + i * b;
    for (size_t c = 0; c < b; ++c) {
      kr[c] = 1.0f / (1.0f + std::exp(-((ta[c] + tb[c]) + bias)));
    }
  }
  s.kh.SetShape(hd, b);
  if (GetKernelMode() == KernelMode::kSimd) {
    simd::Hadamard(s.kgate.data(), h.data(), s.kh.data(), hd * b);
  } else {
    const float* kv = s.kgate.data();
    const float* hv = h.data();
    float* khv = s.kh.data();
    for (size_t i = 0, e = hd * b; i < e; ++i) {
      khv[i] = kv[i] * hv[i];
    }
  }
  WeightMatMul(wh, x, s.ta, s.quant);
  MatMulInto(uh, s.kh, s.tb);
  s.hc.SetShape(hd, b);
  for (size_t i = 0; i < hd; ++i) {
    const float bias = bh[i];
    const float* ta = s.ta.data() + i * b;
    const float* tb = s.tb.data() + i * b;
    float* hcr = s.hc.data() + i * b;
    for (size_t c = 0; c < b; ++c) {
      hcr[c] = std::tanh((ta[c] + tb[c]) + bias);
    }
  }
  h_next.SetShape(hd, b);
  if (GetKernelMode() == KernelMode::kSimd) {
    simd::GruBlend(s.z.data(), h.data(), s.hc.data(), h_next.data(), hd * b);
  } else {
    const float* zv = s.z.data();
    const float* hv = h.data();
    const float* hcv = s.hc.data();
    float* ov = h_next.data();
    for (size_t i = 0, e = hd * b; i < e; ++i) {
      const float omz = -1.0f * zv[i] + 1.0f;
      ov[i] = (zv[i] * hv[i]) + (omz * hcv[i]);
    }
  }
}

void BatchedLinearTanh(const WeightView& w, const Matrix& bias, const Matrix& x,
                       BatchedScratch& s, Matrix& h_next) {
  const size_t hd = w.rows();
  const size_t b = x.cols();
  WeightMatMul(w, x, s.ta, s.quant);
  h_next.SetShape(hd, b);
  for (size_t i = 0; i < hd; ++i) {
    const float bi = bias[i];
    const float* ta = s.ta.data() + i * b;
    float* orow = h_next.data() + i * b;
    for (size_t c = 0; c < b; ++c) {
      orow[c] = std::tanh(ta[c] + bi);
    }
  }
}

void BatchedAttention(const Matrix& masked, const std::vector<Matrix>& hidden,
                      std::vector<Matrix>& attended) {
  const size_t e = hidden.size();
  assert(masked.rows() == e && masked.cols() == e);
  attended.resize(e);
  const size_t hd = hidden.empty() ? 0 : hidden[0].rows();
  const size_t b = hidden.empty() ? 0 : hidden[0].cols();
  const bool use_simd = GetKernelMode() == KernelMode::kSimd;
  for (size_t row = 0; row < e; ++row) {
    Matrix& out = attended[row];
    out.SetShape(hd, b);
    out.Zero();
    // Ascending-c accumulation: the per-element term order of the sequential
    // masked @ StackColumns(hidden) GEMM. Zero coefficients still multiply
    // (x + 0*y == x), matching the dense kernel. The simd Axpby computes the
    // identical mul-then-add sequence per element (in-place out == a is safe:
    // lanes never overlap), so this stays bit-exact in kSimd mode.
    for (size_t c = 0; c < e; ++c) {
      if (use_simd) {
        simd::Axpby(out.data(), hidden[c].data(), masked.At(row, c), out.data(), hd * b);
      } else {
        out.AddScaled(hidden[c], masked.At(row, c));
      }
    }
  }
}

void BatchedExpertHead(const Matrix* attended, const Matrix& h, const WeightView& head_w,
                       const Matrix& head_b, const Matrix* xm, const WeightView& skip_w,
                       const Matrix* skip_b, BatchedScratch& s, Matrix& out) {
  const size_t out_dim = head_w.rows();
  const size_t hd = h.rows();
  const size_t b = h.cols();
  const size_t na = head_w.cols() - hd;
  s.concat.SetShape(na + hd, b);
  if (attended != nullptr) {
    assert(attended->rows() == na && attended->cols() == b);
    std::memcpy(s.concat.data(), attended->data(), na * b * sizeof(float));
  } else {
    std::memset(s.concat.data(), 0, na * b * sizeof(float));
  }
  std::memcpy(s.concat.data() + na * b, h.data(), hd * b * sizeof(float));
  WeightMatMul(head_w, s.concat, s.ta, s.quant);
  out.SetShape(out_dim, b);
  if (skip_w.valid()) {
    WeightMatMul(skip_w, *xm, s.tb, s.quant);
    for (size_t i = 0; i < out_dim; ++i) {
      const float hb = head_b[i];
      const float sb = (*skip_b)[i];
      const float* ta = s.ta.data() + i * b;
      const float* tb = s.tb.data() + i * b;
      float* orow = out.data() + i * b;
      for (size_t c = 0; c < b; ++c) {
        orow[c] = (ta[c] + hb) + (tb[c] + sb);
      }
    }
  } else {
    for (size_t i = 0; i < out_dim; ++i) {
      const float hb = head_b[i];
      const float* ta = s.ta.data() + i * b;
      float* orow = out.data() + i * b;
      for (size_t c = 0; c < b; ++c) {
        orow[c] = ta[c] + hb;
      }
    }
  }
}

void ShrinkColumns(Matrix& m, size_t new_cols) {
  const size_t old_cols = m.cols();
  assert(new_cols <= old_cols);
  if (new_cols == old_cols) {
    return;
  }
  const size_t rows = m.rows();
  float* d = m.data();
  // Row r's destination [r*new, r*new + new) ends at or before its source
  // [r*old, r*old + new) starts being needed by later rows, so an in-place
  // forward compaction with memmove (overlap-safe) is correct.
  for (size_t r = 1; r < rows; ++r) {
    std::memmove(d + r * new_cols, d + r * old_cols, new_cols * sizeof(float));
  }
  m.SetShape(rows, new_cols);
}

}  // namespace deeprest
