// Column-batched, forward-only variants of the fused DeepRest step ops.
//
// Batch-major inference stacks B concurrent queries as the B columns of one
// activation matrix, so each GRU / attention / expert-head step becomes a
// (hidden_dim x input_dim) * (input_dim x B) GEMM instead of B separate
// GEMVs — the weight matrix streams through the cache once per step instead
// of once per query. These kernels operate on plain Matrix values (no
// autograd graph, no TensorNode allocation) and exist beside the Fused* ops
// in ops.h, which remain the training path.
//
// Bit-exactness contract: every scalar each of these kernels produces for
// column b is computed by the SAME sequence of float operations the
// sequential fused ops perform for a single query — the GEMM kernels in
// matrix.h keep each output element's k-reduction in ascending order, so a
// GEMM column is bit-identical to the corresponding GEMV, and all remaining
// arithmetic here copies the fused ops' association term for term (e.g. the
// GRU gates compute sigmoid((Wx + Uh) + b) with exactly that bracketing).
// Columns never interact, so a width-B batch returns, per query, the exact
// bits the width-1 path returns. batched_inference_test.cc enforces this.
#ifndef SRC_NN_BATCHED_H_
#define SRC_NN_BATCHED_H_

#include <cstddef>
#include <vector>

#include "src/nn/matrix.h"
#include "src/nn/quant.h"

namespace deeprest {

// Scratch buffers reused across steps so the steady-state step makes no
// allocator calls. One instance per estimation call; not thread-safe.
struct BatchedScratch {
  Matrix ta, tb;            // W@x / U@h products
  Matrix z, kgate, kh, hc;  // GRU internals
  Matrix concat;            // head input [attended ; hidden]
  QuantScratch quant;       // int8 activation packing (quantized mode only)
};

// out(d, b) = sigmoid(mask[d]) * x(d, b). `mask` is (D x 1) logits, `x` is
// (D x B). `sig` is a PER-EXPERT cache of the sigmoid column, filled on
// first use (pass it in empty at the start of a call; the logits are
// constant during inference so every step reuses the same column). Batched
// SigmoidMaskMul.
void BatchedSigmoidMaskMul(const Matrix& mask, const Matrix& x, Matrix& sig, Matrix& out);

// h_next(i, b) = one GRU step (paper Eq. 2) applied independently to every
// column of x (D x B) and h (H x B). Batched FusedGruStep; h_next must not
// alias h. The input projections wz/wk/wh are WeightViews so quantized
// inference can swap in int8 weights (a plain Matrix converts implicitly);
// the recurrent matrices uz/uk/uh stay fp32 — feedback through h compounds
// quantization error step over step, so they are never quantized.
void BatchedGruStep(const Matrix& x, const Matrix& h, const WeightView& wz, const Matrix& uz,
                    const Matrix& bz, const WeightView& wk, const Matrix& uk, const Matrix& bk,
                    const WeightView& wh, const Matrix& uh, const Matrix& bh, BatchedScratch& s,
                    Matrix& h_next);

// Feed-forward expert core (use_recurrence ablation):
// h_next(i, b) = tanh((w @ x)(i, b) + bias[i]).
void BatchedLinearTanh(const WeightView& w, const Matrix& bias, const Matrix& x,
                       BatchedScratch& s, Matrix& h_next);

// Cross-expert attention (paper Eq. 3) over batched hidden states:
// attended[e] = sum_c masked(e, c) * hidden[c], each (H x B), with the sum
// accumulated in ascending c — the per-element order of the sequential
// MatMulInto(masked, StackColumns(hidden)) product. `masked` is the
// precomputed alpha . diag_zero_mask (E x E). Batched FusedAttention.
void BatchedAttention(const Matrix& masked, const std::vector<Matrix>& hidden,
                      std::vector<Matrix>& attended);

// One expert's output head (paper Eq. 4) over B columns:
// out(i, b) = (head_w @ [attended ; h] + head_b) (+ skip_w @ xm + skip_b).
// `attended` may be null (attention ablation: the attended half of the concat
// is zero); an invalid (default) skip_w view means no bypass (skip_b/xm are
// then unused). Batched FusedExpertHead.
void BatchedExpertHead(const Matrix* attended, const Matrix& h, const WeightView& head_w,
                       const Matrix& head_b, const Matrix* xm, const WeightView& skip_w,
                       const Matrix* skip_b, BatchedScratch& s, Matrix& out);

// Keeps the leading `new_cols` columns of `m` in place (row-major
// compaction). Used to shrink the active batch as shorter queries finish:
// columns are ordered longest-first, so the still-active queries always
// occupy a prefix.
void ShrinkColumns(Matrix& m, size_t new_cols);

}  // namespace deeprest

#endif  // SRC_NN_BATCHED_H_
