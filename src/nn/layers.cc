#include "src/nn/layers.h"

#include <cassert>
#include <cmath>

#include "src/nn/rng.h"

namespace deeprest {

namespace {

// Xavier/Glorot uniform initialization.
Matrix XavierInit(size_t rows, size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const float bound = std::sqrt(6.0f / static_cast<float>(rows + cols));
  m.FillUniform(rng, bound);
  return m;
}

}  // namespace

Tensor ParameterStore::Create(const std::string& name, Matrix init) {
  Tensor t = Tensor::Parameter(std::move(init));
  entries_.push_back({name, t});
  return t;
}

size_t ParameterStore::TotalParameters() const {
  size_t total = 0;
  for (const auto& e : entries_) {
    total += e.tensor.value().size();
  }
  return total;
}

Tensor ParameterStore::Find(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) {
      return e.tensor;
    }
  }
  return Tensor();
}

void ParameterStore::ZeroGrad() {
  for (auto& e : entries_) {
    e.tensor.node()->EnsureGrad();
    e.tensor.mutable_grad().Zero();
  }
}

Linear::Linear(ParameterStore& store, const std::string& name, size_t in_dim, size_t out_dim,
               Rng& rng)
    : in_dim_(in_dim), out_dim_(out_dim) {
  weight_ = store.Create(name + ".W", XavierInit(out_dim, in_dim, rng));
  bias_ = store.Create(name + ".b", Matrix(out_dim, 1));
}

Tensor Linear::Forward(const Tensor& x) const {
  assert(x.rows() == in_dim_ && x.cols() == 1);
  return Add(MatMul(weight_, x), bias_);
}

GruCell::GruCell(ParameterStore& store, const std::string& name, size_t in_dim,
                 size_t hidden_dim, Rng& rng)
    : in_dim_(in_dim), hidden_dim_(hidden_dim) {
  wz_ = store.Create(name + ".Wz", XavierInit(hidden_dim, in_dim, rng));
  uz_ = store.Create(name + ".Uz", XavierInit(hidden_dim, hidden_dim, rng));
  bz_ = store.Create(name + ".bz", Matrix(hidden_dim, 1));
  wk_ = store.Create(name + ".Wk", XavierInit(hidden_dim, in_dim, rng));
  uk_ = store.Create(name + ".Uk", XavierInit(hidden_dim, hidden_dim, rng));
  bk_ = store.Create(name + ".bk", Matrix(hidden_dim, 1));
  wh_ = store.Create(name + ".Wh", XavierInit(hidden_dim, in_dim, rng));
  uh_ = store.Create(name + ".Uh", XavierInit(hidden_dim, hidden_dim, rng));
  bh_ = store.Create(name + ".bh", Matrix(hidden_dim, 1));
}

Tensor GruCell::Step(const Tensor& x, const Tensor& h_prev) const {
  assert(x.rows() == in_dim_ && h_prev.rows() == hidden_dim_);
  return FusedGruStep(x, h_prev, wz_, uz_, bz_, wk_, uk_, bk_, wh_, uh_, bh_);
}

Tensor GruCell::StepReference(const Tensor& x, const Tensor& h_prev) const {
  assert(x.rows() == in_dim_ && h_prev.rows() == hidden_dim_);
  Tensor z = Sigmoid(Add(Add(MatMul(wz_, x), MatMul(uz_, h_prev)), bz_));
  Tensor k = Sigmoid(Add(Add(MatMul(wk_, x), MatMul(uk_, h_prev)), bk_));
  Tensor h_candidate = Tanh(Add(Add(MatMul(wh_, x), MatMul(uh_, Hadamard(k, h_prev))), bh_));
  // h = z . h_prev + (1 - z) . h_candidate
  Tensor one_minus_z = Affine(z, -1.0f, 1.0f);
  return Add(Hadamard(z, h_prev), Hadamard(one_minus_z, h_candidate));
}

Tensor GruCell::InitialState() const { return Tensor::Constant(Matrix(hidden_dim_, 1)); }

std::vector<float> GruCell::FlattenedParameters() const {
  std::vector<float> out;
  for (const Tensor* t : {&wz_, &uz_, &bz_, &wk_, &uk_, &bk_, &wh_, &uh_, &bh_}) {
    const Matrix& m = t->value();
    out.insert(out.end(), m.data(), m.data() + m.size());
  }
  return out;
}

}  // namespace deeprest
