// Trainable layers used by the DeepRest experts and the baselines.
#ifndef SRC_NN_LAYERS_H_
#define SRC_NN_LAYERS_H_

#include <string>
#include <vector>

#include "src/nn/ops.h"
#include "src/nn/tensor.h"

namespace deeprest {

class Rng;

// Registry of named trainable parameters. Layers register their weights here
// so that optimizers and the serializer see a flat list.
class ParameterStore {
 public:
  // Registers a fresh parameter tensor with the given initial value.
  Tensor Create(const std::string& name, Matrix init);

  struct Entry {
    std::string name;
    Tensor tensor;
  };
  const std::vector<Entry>& entries() const { return entries_; }
  std::vector<Entry>& entries() { return entries_; }

  // Total scalar parameter count.
  size_t TotalParameters() const;
  // Finds a parameter by name; returns an undefined Tensor if absent.
  Tensor Find(const std::string& name) const;
  // Zeroes every parameter gradient.
  void ZeroGrad();

 private:
  std::vector<Entry> entries_;
};

// Fully connected layer: y = W x + b with x a column vector.
class Linear {
 public:
  Linear() = default;
  Linear(ParameterStore& store, const std::string& name, size_t in_dim, size_t out_dim,
         Rng& rng);

  Tensor Forward(const Tensor& x) const;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  size_t in_dim_ = 0;
  size_t out_dim_ = 0;
  Tensor weight_;
  Tensor bias_;
};

// Gated Recurrent Unit cell (paper Eq. 2):
//   z_t = sigmoid(Wz x + Uz h + bz)
//   k_t = sigmoid(Wk x + Uk h + bk)
//   h~  = tanh(Wh x + Uh (k_t . h) + bh)
//   h_t = z_t . h_{t-1} + (1 - z_t) . h~
class GruCell {
 public:
  GruCell() = default;
  GruCell(ParameterStore& store, const std::string& name, size_t in_dim, size_t hidden_dim,
          Rng& rng);

  // One recurrence step; x is (in_dim x 1), h_prev is (hidden_dim x 1).
  // Builds a single fused graph node (FusedGruStep); bit-identical to
  // StepReference in both values and gradients.
  Tensor Step(const Tensor& x, const Tensor& h_prev) const;

  // The same step as an explicit composition of elementary ops (~12 graph
  // nodes). Kept as the correctness oracle for the fused path.
  Tensor StepReference(const Tensor& x, const Tensor& h_prev) const;

  // Fresh zero hidden state.
  Tensor InitialState() const;

  size_t in_dim() const { return in_dim_; }
  size_t hidden_dim() const { return hidden_dim_; }

  // Read access to the nine parameter blocks, used by the batch-major
  // no-grad inference path (src/nn/batched.h) to run the same recurrence as
  // a column-batched GEMM sequence.
  const Tensor& wz() const { return wz_; }
  const Tensor& uz() const { return uz_; }
  const Tensor& bz() const { return bz_; }
  const Tensor& wk() const { return wk_; }
  const Tensor& uk() const { return uk_; }
  const Tensor& bk() const { return bk_; }
  const Tensor& wh() const { return wh_; }
  const Tensor& uh() const { return uh_; }
  const Tensor& bh() const { return bh_; }

  // Flattens all nine parameter blocks into one vector (used by the PCA
  // model-similarity analysis of paper Fig. 21).
  std::vector<float> FlattenedParameters() const;

 private:
  size_t in_dim_ = 0;
  size_t hidden_dim_ = 0;
  Tensor wz_, uz_, bz_;
  Tensor wk_, uk_, bk_;
  Tensor wh_, uh_, bh_;
};

}  // namespace deeprest

#endif  // SRC_NN_LAYERS_H_
