#include "src/nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/nn/rng.h"

namespace deeprest {

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) {
    return Matrix();
  }
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols_);
    for (size_t c = 0; c < m.cols_; ++c) {
      m.At(r, c) = rows[r][c];
    }
  }
  return m;
}

Matrix Matrix::Column(const std::vector<float>& values) {
  Matrix m(values.size(), 1);
  for (size_t i = 0; i < values.size(); ++i) {
    m[i] = values[i];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    m.At(i, i) = 1.0f;
  }
  return m;
}

void Matrix::Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::Add(const Matrix& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Matrix::AddScaled(const Matrix& other, float scale) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Matrix::Scale(float scale) {
  for (auto& v : data_) {
    v *= scale;
  }
}

void Matrix::FillUniform(Rng& rng, float bound) {
  for (auto& v : data_) {
    v = static_cast<float>(rng.Uniform(-bound, bound));
  }
}

void Matrix::FillGaussian(Rng& rng, float stddev) {
  for (auto& v : data_) {
    v = static_cast<float>(rng.Gaussian(0.0, stddev));
  }
}

float Matrix::Norm() const {
  double acc = 0.0;
  for (float v : data_) {
    acc += static_cast<double>(v) * v;
  }
  return static_cast<float>(std::sqrt(acc));
}

float Matrix::Sum() const {
  double acc = 0.0;
  for (float v : data_) {
    acc += v;
  }
  return static_cast<float>(acc);
}

float Matrix::Max() const {
  float best = data_.empty() ? 0.0f : data_[0];
  for (float v : data_) {
    best = std::max(best, v);
  }
  return best;
}

float Matrix::Min() const {
  float best = data_.empty() ? 0.0f : data_[0];
  for (float v : data_) {
    best = std::min(best, v);
  }
  return best;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  Matrix out;
  MatMulInto(*this, other, out);
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out.At(c, r) = At(r, c);
    }
  }
  return out;
}

std::string Matrix::DebugString() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [";
  for (size_t r = 0; r < rows_; ++r) {
    if (r > 0) {
      os << "; ";
    }
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) {
        os << " ";
      }
      os << At(r, c);
    }
  }
  os << "]";
  return os.str();
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  if (out.rows() != a.rows() || out.cols() != b.cols()) {
    out = Matrix(a.rows(), b.cols());
  } else {
    out.Zero();
  }
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.cols();
  // i-k-j loop order keeps the inner loop sequential over both b and out.
  for (size_t i = 0; i < n; ++i) {
    for (size_t kk = 0; kk < k; ++kk) {
      const float aik = a.At(i, kk);
      if (aik == 0.0f) {
        continue;
      }
      const float* brow = b.data() + kk * m;
      float* orow = out.data() + i * m;
      for (size_t j = 0; j < m; ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
}

void AccumulateATransposeB(const Matrix& a, const Matrix& b, Matrix& out) {
  // out (a.cols x b.cols) += a^T * b, where a is (n x p), b is (n x q).
  assert(a.rows() == b.rows());
  assert(out.rows() == a.cols() && out.cols() == b.cols());
  const size_t n = a.rows();
  const size_t p = a.cols();
  const size_t q = b.cols();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.data() + i * p;
    const float* brow = b.data() + i * q;
    for (size_t r = 0; r < p; ++r) {
      const float ar = arow[r];
      if (ar == 0.0f) {
        continue;
      }
      float* orow = out.data() + r * q;
      for (size_t c = 0; c < q; ++c) {
        orow[c] += ar * brow[c];
      }
    }
  }
}

void AccumulateABTranspose(const Matrix& a, const Matrix& b, Matrix& out) {
  // out (a.rows x b.rows) += a * b^T, where a is (n x k), b is (m x k).
  assert(a.cols() == b.cols());
  assert(out.rows() == a.rows() && out.cols() == b.rows());
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.rows();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.data() + i * k;
    for (size_t j = 0; j < m; ++j) {
      const float* brow = b.data() + j * k;
      double acc = 0.0;
      for (size_t c = 0; c < k; ++c) {
        acc += static_cast<double>(arow[c]) * brow[c];
      }
      out.At(i, j) += static_cast<float>(acc);
    }
  }
}

}  // namespace deeprest
