#include "src/nn/matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>

#include "src/nn/rng.h"
#include "src/nn/simd/dispatch.h"

namespace deeprest {

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) {
    return Matrix();
  }
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols_);
    for (size_t c = 0; c < m.cols_; ++c) {
      m.At(r, c) = rows[r][c];
    }
  }
  return m;
}

Matrix Matrix::Column(const std::vector<float>& values) {
  Matrix m(values.size(), 1);
  for (size_t i = 0; i < values.size(); ++i) {
    m[i] = values[i];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    m.At(i, i) = 1.0f;
  }
  return m;
}

void Matrix::Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::Add(const Matrix& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Matrix::AddScaled(const Matrix& other, float scale) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Matrix::Scale(float scale) {
  for (auto& v : data_) {
    v *= scale;
  }
}

void Matrix::FillUniform(Rng& rng, float bound) {
  for (auto& v : data_) {
    v = static_cast<float>(rng.Uniform(-bound, bound));
  }
}

void Matrix::FillGaussian(Rng& rng, float stddev) {
  for (auto& v : data_) {
    v = static_cast<float>(rng.Gaussian(0.0, stddev));
  }
}

float Matrix::Norm() const {
  double acc = 0.0;
  for (float v : data_) {
    acc += static_cast<double>(v) * v;
  }
  return static_cast<float>(std::sqrt(acc));
}

float Matrix::Sum() const {
  double acc = 0.0;
  for (float v : data_) {
    acc += v;
  }
  return static_cast<float>(acc);
}

float Matrix::Max() const {
  float best = data_.empty() ? 0.0f : data_[0];
  for (float v : data_) {
    best = std::max(best, v);
  }
  return best;
}

float Matrix::Min() const {
  float best = data_.empty() ? 0.0f : data_[0];
  for (float v : data_) {
    best = std::min(best, v);
  }
  return best;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  Matrix out;
  MatMulInto(*this, other, out);
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out.At(c, r) = At(r, c);
    }
  }
  return out;
}

std::string Matrix::DebugString() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [";
  for (size_t r = 0; r < rows_; ++r) {
    if (r > 0) {
      os << "; ";
    }
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) {
        os << " ";
      }
      os << At(r, c);
    }
  }
  os << "]";
  return os.str();
}

// ---- Kernel backend selection ----

namespace {
std::atomic<int> g_kernel_mode{static_cast<int>(KernelMode::kTiled)};
}  // namespace

void SetKernelMode(KernelMode mode) {
  g_kernel_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

KernelMode GetKernelMode() {
  return static_cast<KernelMode>(g_kernel_mode.load(std::memory_order_relaxed));
}

// ---- Reference (pre-tiling) kernels ----

namespace reference {

void MatMulInto(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  out.SetShape(a.rows(), b.cols());
  out.Zero();
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.cols();
  // i-k-j loop order keeps the inner loop sequential over both b and out.
  for (size_t i = 0; i < n; ++i) {
    for (size_t kk = 0; kk < k; ++kk) {
      const float aik = a.At(i, kk);
      if (aik == 0.0f) {
        continue;
      }
      const float* brow = b.data() + kk * m;
      float* orow = out.data() + i * m;
      for (size_t j = 0; j < m; ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
}

void AccumulateATransposeB(const Matrix& a, const Matrix& b, Matrix& out) {
  // out (a.cols x b.cols) += a^T * b, where a is (n x p), b is (n x q).
  assert(a.rows() == b.rows());
  assert(out.rows() == a.cols() && out.cols() == b.cols());
  const size_t n = a.rows();
  const size_t p = a.cols();
  const size_t q = b.cols();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.data() + i * p;
    const float* brow = b.data() + i * q;
    for (size_t r = 0; r < p; ++r) {
      const float ar = arow[r];
      if (ar == 0.0f) {
        continue;
      }
      float* orow = out.data() + r * q;
      for (size_t c = 0; c < q; ++c) {
        orow[c] += ar * brow[c];
      }
    }
  }
}

void AccumulateABTranspose(const Matrix& a, const Matrix& b, Matrix& out) {
  // out (a.rows x b.rows) += a * b^T, where a is (n x k), b is (m x k).
  assert(a.cols() == b.cols());
  assert(out.rows() == a.rows() && out.cols() == b.rows());
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.rows();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.data() + i * k;
    for (size_t j = 0; j < m; ++j) {
      const float* brow = b.data() + j * k;
      double acc = 0.0;
      for (size_t c = 0; c < k; ++c) {
        acc += static_cast<double>(arow[c]) * brow[c];
      }
      out.At(i, j) += static_cast<float>(acc);
    }
  }
}

}  // namespace reference

// ---- Tiled kernels ----
//
// Blocking is only over independent output rows/columns; every output element
// still sees its k-terms in ascending order, so results match the reference
// kernels bit for bit (see matrix.h). Four-way row blocks (mat-vec) and
// 16-wide column tiles (mat-mat) give the compiler independent accumulator
// chains to vectorize and hide FP latency behind.

void MatMulInto(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  const KernelMode mode = GetKernelMode();
  if (mode == KernelMode::kReference) {
    reference::MatMulInto(a, b, out);
    return;
  }
  if (mode == KernelMode::kSimd) {
    out.SetShape(a.rows(), b.cols());
    simd::MatMul(a.data(), b.data(), out.data(), a.rows(), a.cols(), b.cols());
    return;
  }
  out.SetShape(a.rows(), b.cols());
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.cols();
  const float* A = a.data();
  const float* B = b.data();
  float* O = out.data();
  if (m == 1) {
    // Mat-vec: one register accumulator per output row, four rows at a time.
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const float* a0 = A + (i + 0) * k;
      const float* a1 = A + (i + 1) * k;
      const float* a2 = A + (i + 2) * k;
      const float* a3 = A + (i + 3) * k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (size_t c = 0; c < k; ++c) {
        const float bv = B[c];
        acc0 += a0[c] * bv;
        acc1 += a1[c] * bv;
        acc2 += a2[c] * bv;
        acc3 += a3[c] * bv;
      }
      O[i + 0] = acc0;
      O[i + 1] = acc1;
      O[i + 2] = acc2;
      O[i + 3] = acc3;
    }
    for (; i < n; ++i) {
      const float* arow = A + i * k;
      float acc = 0.0f;
      for (size_t c = 0; c < k; ++c) {
        acc += arow[c] * B[c];
      }
      O[i] = acc;
    }
    return;
  }
  // Register micro-kernel: each output element accumulates in a register for
  // the whole k loop instead of the output row being re-loaded and re-stored
  // once per k step. Column tiles of kJTile keep the accumulator block inside
  // the vector register file; each element still sees its k terms in
  // ascending order (acc = 0, then += a(i,c)*b(c,j) for c = 0..k-1), the same
  // per-element sequence as the zero-filled accumulate loop it replaces.
  constexpr size_t kJTile = 16;
  for (size_t i = 0; i < n; ++i) {
    const float* arow = A + i * k;
    float* orow = O + i * m;
    size_t j0 = 0;
    for (; j0 + kJTile <= m; j0 += kJTile) {
      float acc[kJTile] = {0.0f};
      const float* btile = B + j0;
      for (size_t c = 0; c < k; ++c) {
        const float av = arow[c];
        const float* brow = btile + c * m;
        for (size_t j = 0; j < kJTile; ++j) {
          acc[j] += av * brow[j];
        }
      }
      for (size_t j = 0; j < kJTile; ++j) {
        orow[j0 + j] = acc[j];
      }
    }
    const size_t rem = m - j0;
    if (rem > 0) {
      float acc[kJTile] = {0.0f};
      const float* btile = B + j0;
      for (size_t c = 0; c < k; ++c) {
        const float av = arow[c];
        const float* brow = btile + c * m;
        for (size_t j = 0; j < rem; ++j) {
          acc[j] += av * brow[j];
        }
      }
      for (size_t j = 0; j < rem; ++j) {
        orow[j0 + j] = acc[j];
      }
    }
  }
}

void MatMulIntoSkipZeros(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  out.SetShape(a.rows(), b.cols());
  out.Zero();
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.cols();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.data() + i * k;
    float* orow = out.data() + i * m;
    for (size_t c = 0; c < k; ++c) {
      const float av = arow[c];
      if (av == 0.0f) {
        continue;
      }
      const float* brow = b.data() + c * m;
      for (size_t j = 0; j < m; ++j) {
        orow[j] += av * brow[j];
      }
    }
  }
}

void AccumulateATransposeB(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  assert(out.rows() == a.cols() && out.cols() == b.cols());
  const KernelMode mode = GetKernelMode();
  if (mode == KernelMode::kReference) {
    reference::AccumulateATransposeB(a, b, out);
    return;
  }
  if (mode == KernelMode::kSimd) {
    simd::AccumulateATransposeB(a.data(), b.data(), out.data(), a.rows(), a.cols(), b.cols());
    return;
  }
  const size_t n = a.rows();
  const size_t p = a.cols();
  const size_t q = b.cols();
  const float* A = a.data();
  const float* B = b.data();
  float* O = out.data();
  if (q == 1) {
    // out (p x 1) += a^T * b: one accumulator per output row. The registers
    // are seeded from (and stored back to) `out` so the rounding sequence per
    // element is exactly the reference kernel's out[r] += a(i,r)*b(i) chain.
    size_t r = 0;
    for (; r + 4 <= p; r += 4) {
      float acc0 = O[r + 0], acc1 = O[r + 1], acc2 = O[r + 2], acc3 = O[r + 3];
      for (size_t i = 0; i < n; ++i) {
        const float bv = B[i];
        const float* arow = A + i * p + r;
        acc0 += arow[0] * bv;
        acc1 += arow[1] * bv;
        acc2 += arow[2] * bv;
        acc3 += arow[3] * bv;
      }
      O[r + 0] = acc0;
      O[r + 1] = acc1;
      O[r + 2] = acc2;
      O[r + 3] = acc3;
    }
    for (; r < p; ++r) {
      float acc = O[r];
      for (size_t i = 0; i < n; ++i) {
        acc += A[i * p + r] * B[i];
      }
      O[r] = acc;
    }
    return;
  }
  size_t r = 0;
  for (; r + 4 <= p; r += 4) {
    float* o0 = O + (r + 0) * q;
    float* o1 = O + (r + 1) * q;
    float* o2 = O + (r + 2) * q;
    float* o3 = O + (r + 3) * q;
    for (size_t i = 0; i < n; ++i) {
      const float* arow = A + i * p + r;
      const float f0 = arow[0];
      const float f1 = arow[1];
      const float f2 = arow[2];
      const float f3 = arow[3];
      const float* brow = B + i * q;
      for (size_t c = 0; c < q; ++c) {
        const float bv = brow[c];
        o0[c] += f0 * bv;
        o1[c] += f1 * bv;
        o2[c] += f2 * bv;
        o3[c] += f3 * bv;
      }
    }
  }
  for (; r < p; ++r) {
    float* orow = O + r * q;
    for (size_t i = 0; i < n; ++i) {
      const float ar = A[i * p + r];
      const float* brow = B + i * q;
      for (size_t c = 0; c < q; ++c) {
        orow[c] += ar * brow[c];
      }
    }
  }
}

void AccumulateABTranspose(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  assert(out.rows() == a.rows() && out.cols() == b.rows());
  const KernelMode mode = GetKernelMode();
  if (mode == KernelMode::kReference) {
    reference::AccumulateABTranspose(a, b, out);
    return;
  }
  if (mode == KernelMode::kSimd) {
    simd::AccumulateABTranspose(a.data(), b.data(), out.data(), a.rows(), a.cols(), b.rows());
    return;
  }
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.rows();
  const float* A = a.data();
  const float* B = b.data();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = A + i * k;
    float* orow = out.data() + i * m;
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const float* b0 = B + (j + 0) * k;
      const float* b1 = B + (j + 1) * k;
      const float* b2 = B + (j + 2) * k;
      const float* b3 = B + (j + 3) * k;
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (size_t c = 0; c < k; ++c) {
        const double av = arow[c];
        acc0 += av * b0[c];
        acc1 += av * b1[c];
        acc2 += av * b2[c];
        acc3 += av * b3[c];
      }
      orow[j + 0] += static_cast<float>(acc0);
      orow[j + 1] += static_cast<float>(acc1);
      orow[j + 2] += static_cast<float>(acc2);
      orow[j + 3] += static_cast<float>(acc3);
    }
    for (; j < m; ++j) {
      const float* brow = B + j * k;
      double acc = 0.0;
      for (size_t c = 0; c < k; ++c) {
        acc += static_cast<double>(arow[c]) * brow[c];
      }
      orow[j] += static_cast<float>(acc);
    }
  }
}

// ---- Fused element-wise helpers ----

// The vectorized element-wise kernels compute one rounding per element in
// the same order as these loops, so routing through simd in kSimd mode is
// bit-exact; the branch exists purely for speed on wide activations.

void AddInto(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.SameShape(b));
  out.SetShape(a.rows(), a.cols());
  const float* av = a.data();
  const float* bv = b.data();
  float* ov = out.data();
  if (GetKernelMode() == KernelMode::kSimd) {
    simd::Add(av, bv, ov, a.size());
    return;
  }
  for (size_t i = 0, e = a.size(); i < e; ++i) {
    ov[i] = av[i] + bv[i];
  }
}

void AddScaledInto(const Matrix& a, const Matrix& b, float scale, Matrix& out) {
  assert(a.SameShape(b));
  out.SetShape(a.rows(), a.cols());
  const float* av = a.data();
  const float* bv = b.data();
  float* ov = out.data();
  if (GetKernelMode() == KernelMode::kSimd) {
    simd::Axpby(av, bv, scale, ov, a.size());
    return;
  }
  for (size_t i = 0, e = a.size(); i < e; ++i) {
    ov[i] = av[i] + scale * bv[i];
  }
}

void HadamardInto(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.SameShape(b));
  out.SetShape(a.rows(), a.cols());
  const float* av = a.data();
  const float* bv = b.data();
  float* ov = out.data();
  if (GetKernelMode() == KernelMode::kSimd) {
    simd::Hadamard(av, bv, ov, a.size());
    return;
  }
  for (size_t i = 0, e = a.size(); i < e; ++i) {
    ov[i] = av[i] * bv[i];
  }
}

}  // namespace deeprest
