// Dense row-major float matrix: the value type underneath autograd tensors.
//
// Deliberately minimal — just what the DeepRest model needs. All shapes are
// checked with assertions in debug builds; shape mismatches are programming
// errors, not runtime conditions.
#ifndef SRC_NN_MATRIX_H_
#define SRC_NN_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace deeprest {

class Rng;

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}
  Matrix(size_t rows, size_t cols, float fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  // Builds a matrix from a nested initializer-style vector (rows of values).
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);
  // Builds an n x 1 column vector.
  static Matrix Column(const std::vector<float>& values);
  // Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& At(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float& operator[](size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  float operator[](size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Reshapes in place, reusing the existing allocation when capacity allows.
  // Entry values after the call are unspecified (retained prefix keeps old
  // contents; any grown suffix is zero) — callers must overwrite or zero.
  // This is what lets recycled tensor nodes run a training step with O(1)
  // allocator calls.
  void SetShape(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  // In-place element-wise accumulation: *this += other. Shapes must match.
  void Add(const Matrix& other);
  // *this += scale * other.
  void AddScaled(const Matrix& other, float scale);
  // *this *= scale.
  void Scale(float scale);

  // Fills with samples from U(-bound, bound).
  void FillUniform(Rng& rng, float bound);
  // Fills with N(0, stddev) samples.
  void FillGaussian(Rng& rng, float stddev);

  // Frobenius / L2 norm of all entries.
  float Norm() const;
  float Sum() const;
  float Max() const;
  float Min() const;

  // Matrix product (rows_ x cols_) * (other.rows_ x other.cols_).
  Matrix MatMul(const Matrix& other) const;
  // Transpose copy.
  Matrix Transposed() const;

  std::string DebugString() const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

// ---- GEMM kernels ----
//
// The dense kernels below are register-blocked but keep the per-element
// accumulation order identical to a naive i-k-j triple loop: blocking is only
// over independent output rows/columns, never over the reduction dimension,
// so results are bit-identical to the reference kernels (floating-point
// addition is not associative; reassociating over k would change low bits).
// The one intentional difference is that the dense path no longer skips
// `a == 0.0f` entries — the branch costs more than the multiply on dense
// data, and `x + 0*y == x` for every finite x (a 0-row can flip +0 to -0,
// which still compares equal). Use MatMulIntoSkipZeros where the left operand
// is genuinely sparse (e.g. the zero-initialized, zero-diagonal attention
// matrix).

// out = a * b, reusing out's storage when capacity allows.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix& out);
// out = a * b with the left operand's zero entries skipped. Worth it only
// when a is mostly zeros; bit-compatible with MatMulInto up to the sign of
// zero results.
void MatMulIntoSkipZeros(const Matrix& a, const Matrix& b, Matrix& out);
// out += a^T * b.
void AccumulateATransposeB(const Matrix& a, const Matrix& b, Matrix& out);
// out += a * b^T.
void AccumulateABTranspose(const Matrix& a, const Matrix& b, Matrix& out);

// ---- Fused element-wise helpers (AXPY-style) ----
// out = a + b (out is reshaped; may not alias a or b).
void AddInto(const Matrix& a, const Matrix& b, Matrix& out);
// out = a + scale * b.
void AddScaledInto(const Matrix& a, const Matrix& b, float scale, Matrix& out);
// out = a . b (element-wise).
void HadamardInto(const Matrix& a, const Matrix& b, Matrix& out);

// ---- Kernel backend selection ----
// kReference dispatches the three GEMM entry points above to the pre-tiling
// naive kernels (kept verbatim in the deeprest::reference namespace). It
// exists so bench_kernels can measure an honest before/after on one binary
// and so tests can bound the (zero-sign-only) deviation. kSimd dispatches to
// the explicitly vectorized kernels in src/nn/simd/ (runtime ISA selection;
// see simd/dispatch.h). kSimd is bit-identical to kTiled on the mat-mat,
// AccumulateATransposeB, and element-wise paths, but its GEMV (m == 1) and
// AccumulateABTranspose paths use lane-parallel reductions and are only
// ULP-bounded — which is why kTiled stays the default for training
// determinism and kSimd is opt-in. Global, not thread-local: flip it only in
// single-threaded setup code.
enum class KernelMode { kTiled, kReference, kSimd };
void SetKernelMode(KernelMode mode);
KernelMode GetKernelMode();

namespace reference {
// Pre-optimization kernels, preserved for benchmarking and tolerance tests.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix& out);
void AccumulateATransposeB(const Matrix& a, const Matrix& b, Matrix& out);
void AccumulateABTranspose(const Matrix& a, const Matrix& b, Matrix& out);
}  // namespace reference

}  // namespace deeprest

#endif  // SRC_NN_MATRIX_H_
