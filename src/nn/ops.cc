#include "src/nn/ops.h"

#include <cassert>
#include <cmath>

namespace deeprest {

namespace {

// Accumulates `delta` into parent i of `node` if that parent tracks gradients.
void Accumulate(TensorNode& node, size_t i, const Matrix& delta) {
  TensorNode* p = node.parents[i].node();
  if (p->requires_grad) {
    p->AccumulateGrad(delta);
  }
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  assert(a.value().SameShape(b.value()));
  Matrix out = a.value();
  out.Add(b.value());
  return Tensor::FromOp(
      std::move(out), {a, b},
      [](TensorNode& node) {
        Accumulate(node, 0, node.grad);
        Accumulate(node, 1, node.grad);
      },
      "add");
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  assert(a.value().SameShape(b.value()));
  Matrix out = a.value();
  out.AddScaled(b.value(), -1.0f);
  return Tensor::FromOp(
      std::move(out), {a, b},
      [](TensorNode& node) {
        Accumulate(node, 0, node.grad);
        TensorNode* p = node.parents[1].node();
        if (p->requires_grad) {
          p->AccumulateGradScaled(node.grad, -1.0f);
        }
      },
      "sub");
}

Tensor Hadamard(const Tensor& a, const Tensor& b) {
  assert(a.value().SameShape(b.value()));
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] *= b.value()[i];
  }
  return Tensor::FromOp(
      std::move(out), {a, b},
      [](TensorNode& node) {
        TensorNode* pa = node.parents[0].node();
        TensorNode* pb = node.parents[1].node();
        if (pa->requires_grad) {
          pa->EnsureGrad();
          for (size_t i = 0; i < node.grad.size(); ++i) {
            pa->grad[i] += node.grad[i] * pb->value[i];
          }
        }
        if (pb->requires_grad) {
          pb->EnsureGrad();
          for (size_t i = 0; i < node.grad.size(); ++i) {
            pb->grad[i] += node.grad[i] * pa->value[i];
          }
        }
      },
      "hadamard");
}

Tensor Affine(const Tensor& a, float alpha, float beta) {
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = alpha * out[i] + beta;
  }
  return Tensor::FromOp(
      std::move(out), {a},
      [alpha](TensorNode& node) {
        TensorNode* p = node.parents[0].node();
        if (p->requires_grad) {
          p->AccumulateGradScaled(node.grad, alpha);
        }
      },
      "affine");
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Matrix out;
  MatMulInto(a.value(), b.value(), out);
  return Tensor::FromOp(
      std::move(out), {a, b},
      [](TensorNode& node) {
        TensorNode* pa = node.parents[0].node();
        TensorNode* pb = node.parents[1].node();
        // dL/dA = dL/dOut * B^T ; dL/dB = A^T * dL/dOut.
        if (pa->requires_grad) {
          pa->EnsureGrad();
          AccumulateABTranspose(node.grad, pb->value, pa->grad);
        }
        if (pb->requires_grad) {
          pb->EnsureGrad();
          AccumulateATransposeB(pa->value, node.grad, pb->grad);
        }
      },
      "matmul");
}

Tensor Sigmoid(const Tensor& a) {
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  }
  return Tensor::FromOp(
      std::move(out), {a},
      [](TensorNode& node) {
        TensorNode* p = node.parents[0].node();
        if (p->requires_grad) {
          p->EnsureGrad();
          for (size_t i = 0; i < node.grad.size(); ++i) {
            const float s = node.value[i];
            p->grad[i] += node.grad[i] * s * (1.0f - s);
          }
        }
      },
      "sigmoid");
}

Tensor Tanh(const Tensor& a) {
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = std::tanh(out[i]);
  }
  return Tensor::FromOp(
      std::move(out), {a},
      [](TensorNode& node) {
        TensorNode* p = node.parents[0].node();
        if (p->requires_grad) {
          p->EnsureGrad();
          for (size_t i = 0; i < node.grad.size(); ++i) {
            const float t = node.value[i];
            p->grad[i] += node.grad[i] * (1.0f - t * t);
          }
        }
      },
      "tanh");
}

Tensor Relu(const Tensor& a) {
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = out[i] > 0.0f ? out[i] : 0.0f;
  }
  return Tensor::FromOp(
      std::move(out), {a},
      [](TensorNode& node) {
        TensorNode* p = node.parents[0].node();
        if (p->requires_grad) {
          p->EnsureGrad();
          for (size_t i = 0; i < node.grad.size(); ++i) {
            if (node.value[i] > 0.0f) {
              p->grad[i] += node.grad[i];
            }
          }
        }
      },
      "relu");
}

Tensor Exp(const Tensor& a) {
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = std::exp(out[i]);
  }
  return Tensor::FromOp(
      std::move(out), {a},
      [](TensorNode& node) {
        TensorNode* p = node.parents[0].node();
        if (p->requires_grad) {
          p->EnsureGrad();
          for (size_t i = 0; i < node.grad.size(); ++i) {
            p->grad[i] += node.grad[i] * node.value[i];
          }
        }
      },
      "exp");
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.cols());
  Matrix out(a.rows() + b.rows(), a.cols());
  for (size_t i = 0; i < a.value().size(); ++i) {
    out[i] = a.value()[i];
  }
  for (size_t i = 0; i < b.value().size(); ++i) {
    out[a.value().size() + i] = b.value()[i];
  }
  return Tensor::FromOp(
      std::move(out), {a, b},
      [](TensorNode& node) {
        TensorNode* pa = node.parents[0].node();
        TensorNode* pb = node.parents[1].node();
        const size_t na = pa->value.size();
        if (pa->requires_grad) {
          pa->EnsureGrad();
          for (size_t i = 0; i < na; ++i) {
            pa->grad[i] += node.grad[i];
          }
        }
        if (pb->requires_grad) {
          pb->EnsureGrad();
          for (size_t i = 0; i < pb->value.size(); ++i) {
            pb->grad[i] += node.grad[na + i];
          }
        }
      },
      "concat_rows");
}

Tensor StackColumns(const std::vector<Tensor>& columns) {
  assert(!columns.empty());
  const size_t h = columns[0].rows();
  Matrix out(columns.size(), h);
  for (size_t r = 0; r < columns.size(); ++r) {
    assert(columns[r].rows() == h && columns[r].cols() == 1);
    for (size_t c = 0; c < h; ++c) {
      out.At(r, c) = columns[r].value().At(c, 0);
    }
  }
  return Tensor::FromOp(
      std::move(out), columns,
      [](TensorNode& node) {
        const size_t width = node.value.cols();
        for (size_t r = 0; r < node.parents.size(); ++r) {
          TensorNode* p = node.parents[r].node();
          if (!p->requires_grad) {
            continue;
          }
          p->EnsureGrad();
          for (size_t c = 0; c < width; ++c) {
            p->grad.At(c, 0) += node.grad.At(r, c);
          }
        }
      },
      "stack_columns");
}

Tensor RowAsColumn(const Tensor& a, size_t row) {
  assert(row < a.rows());
  Matrix out(a.cols(), 1);
  for (size_t c = 0; c < a.cols(); ++c) {
    out.At(c, 0) = a.value().At(row, c);
  }
  return Tensor::FromOp(
      std::move(out), {a},
      [row](TensorNode& node) {
        TensorNode* p = node.parents[0].node();
        if (p->requires_grad) {
          p->EnsureGrad();
          for (size_t c = 0; c < node.value.rows(); ++c) {
            p->grad.At(row, c) += node.grad.At(c, 0);
          }
        }
      },
      "row_as_column");
}

Tensor SumAll(const Tensor& a) {
  Matrix out(1, 1);
  out.At(0, 0) = a.value().Sum();
  return Tensor::FromOp(
      std::move(out), {a},
      [](TensorNode& node) {
        TensorNode* p = node.parents[0].node();
        if (p->requires_grad) {
          p->EnsureGrad();
          const float g = node.grad.At(0, 0);
          for (size_t i = 0; i < p->grad.size(); ++i) {
            p->grad[i] += g;
          }
        }
      },
      "sum_all");
}

Tensor MeanAll(const Tensor& a) {
  const float inv = 1.0f / static_cast<float>(a.value().size());
  Matrix out(1, 1);
  out.At(0, 0) = a.value().Sum() * inv;
  return Tensor::FromOp(
      std::move(out), {a},
      [inv](TensorNode& node) {
        TensorNode* p = node.parents[0].node();
        if (p->requires_grad) {
          p->EnsureGrad();
          const float g = node.grad.At(0, 0) * inv;
          for (size_t i = 0; i < p->grad.size(); ++i) {
            p->grad[i] += g;
          }
        }
      },
      "mean_all");
}

Tensor AddN(const std::vector<Tensor>& scalars) {
  assert(!scalars.empty());
  Matrix out(1, 1);
  for (const auto& t : scalars) {
    assert(t.rows() == 1 && t.cols() == 1);
    out.At(0, 0) += t.value().At(0, 0);
  }
  return Tensor::FromOp(
      std::move(out), scalars,
      [](TensorNode& node) {
        for (size_t i = 0; i < node.parents.size(); ++i) {
          Accumulate(node, i, node.grad);
        }
      },
      "add_n");
}

Tensor PinballLoss(const Tensor& pred, float target, const std::vector<float>& deltas) {
  assert(pred.cols() == 1 && pred.rows() == deltas.size());
  // Standard quantile convention: rho_q(u) with u = target - pred, so that
  // minimizing drives pred[i] to the deltas[i]-quantile of the target
  // distribution (delta < 0.5 -> lower bound, delta > 0.5 -> upper bound).
  // The paper's Eq. 5 writes Q(pred - target | delta); adopting that sign
  // verbatim would swap the lower/upper heads of Eq. 6.
  Matrix out(1, 1);
  for (size_t i = 0; i < deltas.size(); ++i) {
    const float u = target - pred.value().At(i, 0);
    const float q = deltas[i];
    out.At(0, 0) += u >= 0.0f ? q * u : (q - 1.0f) * u;
  }
  return Tensor::FromOp(
      std::move(out), {pred},
      [target, deltas](TensorNode& node) {
        TensorNode* p = node.parents[0].node();
        if (!p->requires_grad) {
          return;
        }
        p->EnsureGrad();
        const float g = node.grad.At(0, 0);
        for (size_t i = 0; i < deltas.size(); ++i) {
          const float u = target - p->value.At(i, 0);
          const float q = deltas[i];
          // Subgradient at u == 0 follows the u >= 0 branch, matching forward.
          p->grad.At(i, 0) += g * (u >= 0.0f ? -q : 1.0f - q);
        }
      },
      "pinball");
}

Tensor SquaredError(const Tensor& pred, const Matrix& target) {
  assert(pred.value().SameShape(target));
  Matrix out(1, 1);
  double acc = 0.0;
  for (size_t i = 0; i < target.size(); ++i) {
    const double d = pred.value()[i] - target[i];
    acc += 0.5 * d * d;
  }
  out.At(0, 0) = static_cast<float>(acc);
  return Tensor::FromOp(
      std::move(out), {pred},
      [target](TensorNode& node) {
        TensorNode* p = node.parents[0].node();
        if (!p->requires_grad) {
          return;
        }
        p->EnsureGrad();
        const float g = node.grad.At(0, 0);
        for (size_t i = 0; i < target.size(); ++i) {
          p->grad[i] += g * (p->value[i] - target[i]);
        }
      },
      "squared_error");
}

}  // namespace deeprest
