#include "src/nn/ops.h"

#include <cassert>
#include <cmath>

namespace deeprest {

namespace {

// Accumulates `delta` into parent i of `node` if that parent tracks gradients.
void Accumulate(TensorNode& node, size_t i, const Matrix& delta) {
  TensorNode* p = node.parents[i].node();
  if (p->requires_grad) {
    p->AccumulateGrad(delta);
  }
}

// Backward-pass scratch buffers, one set per thread. Backward functions run
// strictly sequentially within one Backward() sweep, so a single set per
// thread is enough; capacity is retained across steps.
struct FusedScratch {
  Matrix ta, tb;                               // forward GEMM temporaries
  Matrix d_omz, d_hc, d_pre, d_kh, d_k, d_z;   // fused GRU backward
  Matrix d_concat;                             // fused head backward
  Matrix d_masked, d_stacked;                  // fused attention backward
};

FusedScratch& Scratch() {
  thread_local FusedScratch scratch;
  return scratch;
}

// ---- Backward functions for the basic ops ----
// Plain function pointers: all state lives in the node (see tensor.h).

void AddBackward(TensorNode& node) {
  Accumulate(node, 0, node.grad);
  Accumulate(node, 1, node.grad);
}

void SubBackward(TensorNode& node) {
  Accumulate(node, 0, node.grad);
  TensorNode* p = node.parents[1].node();
  if (p->requires_grad) {
    p->AccumulateGradScaled(node.grad, -1.0f);
  }
}

void HadamardBackward(TensorNode& node) {
  TensorNode* pa = node.parents[0].node();
  TensorNode* pb = node.parents[1].node();
  if (pa->requires_grad) {
    pa->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      pa->grad[i] += node.grad[i] * pb->value[i];
    }
  }
  if (pb->requires_grad) {
    pb->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      pb->grad[i] += node.grad[i] * pa->value[i];
    }
  }
}

void AffineBackward(TensorNode& node) {
  TensorNode* p = node.parents[0].node();
  if (p->requires_grad) {
    p->AccumulateGradScaled(node.grad, node.aux0);
  }
}

void MatMulBackward(TensorNode& node) {
  TensorNode* pa = node.parents[0].node();
  TensorNode* pb = node.parents[1].node();
  // dL/dA = dL/dOut * B^T ; dL/dB = A^T * dL/dOut.
  if (pa->requires_grad) {
    pa->EnsureGrad();
    AccumulateABTranspose(node.grad, pb->value, pa->grad);
  }
  if (pb->requires_grad) {
    pb->EnsureGrad();
    AccumulateATransposeB(pa->value, node.grad, pb->grad);
  }
}

void SigmoidBackward(TensorNode& node) {
  TensorNode* p = node.parents[0].node();
  if (p->requires_grad) {
    p->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      const float s = node.value[i];
      p->grad[i] += node.grad[i] * s * (1.0f - s);
    }
  }
}

void TanhBackward(TensorNode& node) {
  TensorNode* p = node.parents[0].node();
  if (p->requires_grad) {
    p->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      const float t = node.value[i];
      p->grad[i] += node.grad[i] * (1.0f - t * t);
    }
  }
}

void ReluBackward(TensorNode& node) {
  TensorNode* p = node.parents[0].node();
  if (p->requires_grad) {
    p->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      if (node.value[i] > 0.0f) {
        p->grad[i] += node.grad[i];
      }
    }
  }
}

void ExpBackward(TensorNode& node) {
  TensorNode* p = node.parents[0].node();
  if (p->requires_grad) {
    p->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      p->grad[i] += node.grad[i] * node.value[i];
    }
  }
}

void ConcatRowsBackward(TensorNode& node) {
  TensorNode* pa = node.parents[0].node();
  TensorNode* pb = node.parents[1].node();
  const size_t na = pa->value.size();
  if (pa->requires_grad) {
    pa->EnsureGrad();
    for (size_t i = 0; i < na; ++i) {
      pa->grad[i] += node.grad[i];
    }
  }
  if (pb->requires_grad) {
    pb->EnsureGrad();
    for (size_t i = 0; i < pb->value.size(); ++i) {
      pb->grad[i] += node.grad[na + i];
    }
  }
}

void StackColumnsBackward(TensorNode& node) {
  const size_t width = node.value.cols();
  for (size_t r = 0; r < node.parents.size(); ++r) {
    TensorNode* p = node.parents[r].node();
    if (!p->requires_grad) {
      continue;
    }
    p->EnsureGrad();
    for (size_t c = 0; c < width; ++c) {
      p->grad.At(c, 0) += node.grad.At(r, c);
    }
  }
}

void RowAsColumnBackward(TensorNode& node) {
  TensorNode* p = node.parents[0].node();
  if (p->requires_grad) {
    p->EnsureGrad();
    const size_t row = node.aux_index;
    for (size_t c = 0; c < node.value.rows(); ++c) {
      p->grad.At(row, c) += node.grad.At(c, 0);
    }
  }
}

void SumAllBackward(TensorNode& node) {
  TensorNode* p = node.parents[0].node();
  if (p->requires_grad) {
    p->EnsureGrad();
    const float g = node.grad.At(0, 0);
    for (size_t i = 0; i < p->grad.size(); ++i) {
      p->grad[i] += g;
    }
  }
}

void MeanAllBackward(TensorNode& node) {
  TensorNode* p = node.parents[0].node();
  if (p->requires_grad) {
    p->EnsureGrad();
    const float g = node.grad.At(0, 0) * node.aux0;
    for (size_t i = 0; i < p->grad.size(); ++i) {
      p->grad[i] += g;
    }
  }
}

void AddNBackward(TensorNode& node) {
  for (size_t i = 0; i < node.parents.size(); ++i) {
    Accumulate(node, i, node.grad);
  }
}

void PinballBackward(TensorNode& node) {
  TensorNode* p = node.parents[0].node();
  if (!p->requires_grad) {
    return;
  }
  p->EnsureGrad();
  const float g = node.grad.At(0, 0);
  const float target = node.aux0;
  const Matrix& deltas = node.saved[0];
  for (size_t i = 0; i < deltas.size(); ++i) {
    const float u = target - p->value.At(i, 0);
    const float q = deltas[i];
    // Subgradient at u == 0 follows the u >= 0 branch, matching forward.
    p->grad.At(i, 0) += g * (u >= 0.0f ? -q : 1.0f - q);
  }
}

void SquaredErrorBackward(TensorNode& node) {
  TensorNode* p = node.parents[0].node();
  if (!p->requires_grad) {
    return;
  }
  p->EnsureGrad();
  const Matrix& target = node.saved[0];
  const float g = node.grad.At(0, 0);
  for (size_t i = 0; i < target.size(); ++i) {
    p->grad[i] += g * (p->value[i] - target[i]);
  }
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  assert(a.value().SameShape(b.value()));
  Tensor out = Tensor::NewOp(a.rows(), a.cols(), "add", AddBackward, a, b);
  AddInto(a.value(), b.value(), out.mutable_value());
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  assert(a.value().SameShape(b.value()));
  Tensor out = Tensor::NewOp(a.rows(), a.cols(), "sub", SubBackward, a, b);
  AddScaledInto(a.value(), b.value(), -1.0f, out.mutable_value());
  return out;
}

Tensor Hadamard(const Tensor& a, const Tensor& b) {
  assert(a.value().SameShape(b.value()));
  Tensor out = Tensor::NewOp(a.rows(), a.cols(), "hadamard", HadamardBackward, a, b);
  HadamardInto(a.value(), b.value(), out.mutable_value());
  return out;
}

Tensor Affine(const Tensor& a, float alpha, float beta) {
  Tensor out = Tensor::NewOp(a.rows(), a.cols(), "affine", AffineBackward, a);
  out.node()->aux0 = alpha;
  const Matrix& av = a.value();
  Matrix& ov = out.mutable_value();
  for (size_t i = 0; i < av.size(); ++i) {
    ov[i] = alpha * av[i] + beta;
  }
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor out = Tensor::NewOp(a.rows(), b.cols(), "matmul", MatMulBackward, a, b);
  MatMulInto(a.value(), b.value(), out.mutable_value());
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  Tensor out = Tensor::NewOp(a.rows(), a.cols(), "sigmoid", SigmoidBackward, a);
  const Matrix& av = a.value();
  Matrix& ov = out.mutable_value();
  for (size_t i = 0; i < av.size(); ++i) {
    ov[i] = 1.0f / (1.0f + std::exp(-av[i]));
  }
  return out;
}

Tensor Tanh(const Tensor& a) {
  Tensor out = Tensor::NewOp(a.rows(), a.cols(), "tanh", TanhBackward, a);
  const Matrix& av = a.value();
  Matrix& ov = out.mutable_value();
  for (size_t i = 0; i < av.size(); ++i) {
    ov[i] = std::tanh(av[i]);
  }
  return out;
}

Tensor Relu(const Tensor& a) {
  Tensor out = Tensor::NewOp(a.rows(), a.cols(), "relu", ReluBackward, a);
  const Matrix& av = a.value();
  Matrix& ov = out.mutable_value();
  for (size_t i = 0; i < av.size(); ++i) {
    ov[i] = av[i] > 0.0f ? av[i] : 0.0f;
  }
  return out;
}

Tensor Exp(const Tensor& a) {
  Tensor out = Tensor::NewOp(a.rows(), a.cols(), "exp", ExpBackward, a);
  const Matrix& av = a.value();
  Matrix& ov = out.mutable_value();
  for (size_t i = 0; i < av.size(); ++i) {
    ov[i] = std::exp(av[i]);
  }
  return out;
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.cols());
  Tensor out =
      Tensor::NewOp(a.rows() + b.rows(), a.cols(), "concat_rows", ConcatRowsBackward, a, b);
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  Matrix& ov = out.mutable_value();
  for (size_t i = 0; i < av.size(); ++i) {
    ov[i] = av[i];
  }
  for (size_t i = 0; i < bv.size(); ++i) {
    ov[av.size() + i] = bv[i];
  }
  return out;
}

Tensor StackColumns(const std::vector<Tensor>& columns) {
  assert(!columns.empty());
  const size_t h = columns[0].rows();
  Tensor out =
      Tensor::NewOpN(columns.size(), h, "stack_columns", StackColumnsBackward, columns);
  Matrix& ov = out.mutable_value();
  for (size_t r = 0; r < columns.size(); ++r) {
    assert(columns[r].rows() == h && columns[r].cols() == 1);
    const Matrix& col = columns[r].value();
    for (size_t c = 0; c < h; ++c) {
      ov.At(r, c) = col.At(c, 0);
    }
  }
  return out;
}

Tensor RowAsColumn(const Tensor& a, size_t row) {
  assert(row < a.rows());
  Tensor out = Tensor::NewOp(a.cols(), 1, "row_as_column", RowAsColumnBackward, a);
  out.node()->aux_index = row;
  const Matrix& av = a.value();
  Matrix& ov = out.mutable_value();
  for (size_t c = 0; c < av.cols(); ++c) {
    ov.At(c, 0) = av.At(row, c);
  }
  return out;
}

Tensor SumAll(const Tensor& a) {
  Tensor out = Tensor::NewOp(1, 1, "sum_all", SumAllBackward, a);
  out.mutable_value().At(0, 0) = a.value().Sum();
  return out;
}

Tensor MeanAll(const Tensor& a) {
  const float inv = 1.0f / static_cast<float>(a.value().size());
  Tensor out = Tensor::NewOp(1, 1, "mean_all", MeanAllBackward, a);
  out.node()->aux0 = inv;
  out.mutable_value().At(0, 0) = a.value().Sum() * inv;
  return out;
}

Tensor AddN(const std::vector<Tensor>& scalars) {
  assert(!scalars.empty());
  Tensor out = Tensor::NewOpN(1, 1, "add_n", AddNBackward, scalars);
  float acc = 0.0f;
  for (const auto& t : scalars) {
    assert(t.rows() == 1 && t.cols() == 1);
    acc += t.value().At(0, 0);
  }
  out.mutable_value().At(0, 0) = acc;
  return out;
}

Tensor PinballLoss(const Tensor& pred, float target, const std::vector<float>& deltas) {
  assert(pred.cols() == 1 && pred.rows() == deltas.size());
  // Standard quantile convention: rho_q(u) with u = target - pred, so that
  // minimizing drives pred[i] to the deltas[i]-quantile of the target
  // distribution (delta < 0.5 -> lower bound, delta > 0.5 -> upper bound).
  // The paper's Eq. 5 writes Q(pred - target | delta); adopting that sign
  // verbatim would swap the lower/upper heads of Eq. 6.
  Tensor out = Tensor::NewOp(1, 1, "pinball", PinballBackward, pred);
  float acc = 0.0f;
  for (size_t i = 0; i < deltas.size(); ++i) {
    const float u = target - pred.value().At(i, 0);
    const float q = deltas[i];
    acc += u >= 0.0f ? q * u : (q - 1.0f) * u;
  }
  out.mutable_value().At(0, 0) = acc;
  TensorNode* node = out.node();
  if (node->requires_grad) {
    node->aux0 = target;
    node->EnsureSaved(1);
    Matrix& saved = node->saved[0];
    saved.SetShape(deltas.size(), 1);
    for (size_t i = 0; i < deltas.size(); ++i) {
      saved[i] = deltas[i];
    }
  }
  return out;
}

Tensor SquaredError(const Tensor& pred, const Matrix& target) {
  assert(pred.value().SameShape(target));
  Tensor out = Tensor::NewOp(1, 1, "squared_error", SquaredErrorBackward, pred);
  double acc = 0.0;
  for (size_t i = 0; i < target.size(); ++i) {
    const double d = pred.value()[i] - target[i];
    acc += 0.5 * d * d;
  }
  out.mutable_value().At(0, 0) = static_cast<float>(acc);
  TensorNode* node = out.node();
  if (node->requires_grad) {
    node->EnsureSaved(1);
    Matrix& saved = node->saved[0];
    saved.SetShape(target.rows(), target.cols());
    for (size_t i = 0; i < target.size(); ++i) {
      saved[i] = target[i];
    }
  }
  return out;
}

// ---- Fused DeepRest step ops ----
//
// Bit-exactness discipline: floating-point addition is not associative, so
// each fused backward replays the unfused composition's accumulations into
// every destination buffer in the same order, with the same kernels, and
// with intermediate gradients stored at float32 precision exactly where the
// unfused graph stored them in node.grad matrices. Comments name the unfused
// node whose backward each block mirrors.

namespace {

void MaskedInputBackward(TensorNode& node) {
  // Mirrors Hadamard(Sigmoid(mask), x): the hadamard's pa-grad (g . x) is the
  // sigmoid node's incoming gradient, folded into mask.grad in one pass.
  TensorNode* mask = node.parents[0].node();
  TensorNode* x = node.parents[1].node();
  const Matrix& s = node.saved[0];
  if (x->requires_grad) {
    x->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      x->grad[i] += node.grad[i] * s[i];
    }
  }
  if (mask->requires_grad) {
    mask->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      const float ds = node.grad[i] * x->value[i];
      const float sv = s[i];
      mask->grad[i] += ds * sv * (1.0f - sv);
    }
  }
}

void FusedGruBackward(TensorNode& node) {
  // Unfused graph (StepReference):
  //   z  = Sigmoid(Add(Add(m1: wz@x, m2: uz@h), bz))
  //   k  = Sigmoid(Add(Add(m3: wk@x, m4: uk@h), bk))
  //   hc = Tanh(Add(Add(m5: wh@x, m6: uh@kh), bh)),  kh = k . h
  //   out = Add(p1: z . h, p2: (1 - z) . hc)
  // Reverse topological order of its interior nodes:
  //   out, p2, hc, a6, a5, m6, kh, k, a4, a3, m4, m3, m5, omz, p1, z, a2,
  //   a1, m2, m1 — replayed below.
  TensorNode* x = node.parents[0].node();
  TensorNode* h = node.parents[1].node();
  TensorNode* wz = node.parents[2].node();
  TensorNode* uz = node.parents[3].node();
  TensorNode* bz = node.parents[4].node();
  TensorNode* wk = node.parents[5].node();
  TensorNode* uk = node.parents[6].node();
  TensorNode* bk = node.parents[7].node();
  TensorNode* wh = node.parents[8].node();
  TensorNode* uh = node.parents[9].node();
  TensorNode* bh = node.parents[10].node();
  const Matrix& z = node.saved[0];
  const Matrix& k = node.saved[1];
  const Matrix& hc = node.saved[2];
  const Matrix& kh = node.saved[3];
  const Matrix& g = node.grad;
  const size_t hd = g.rows();
  FusedScratch& s = Scratch();

  // p2 = omz . hc (hadamard): d_omz = g . hc ; d_hc = g . omz.
  s.d_omz.SetShape(hd, 1);
  s.d_hc.SetShape(hd, 1);
  for (size_t i = 0; i < hd; ++i) {
    s.d_omz[i] = g[i] * hc[i];
  }
  for (size_t i = 0; i < hd; ++i) {
    const float omz = -1.0f * z[i] + 1.0f;
    s.d_hc[i] = g[i] * omz;
  }
  // hc = Tanh(a6): d_a6 = d_hc * (1 - hc^2). a6/a5 are pass-through Adds,
  // so d_pre doubles as d_m5 and d_m6.
  s.d_pre.SetShape(hd, 1);
  for (size_t i = 0; i < hd; ++i) {
    const float t = hc[i];
    s.d_pre[i] = s.d_hc[i] * (1.0f - t * t);
  }
  // a6 = Add(a5, bh).
  if (bh->requires_grad) {
    bh->AccumulateGrad(s.d_pre);
  }
  // m6 = MatMul(uh, kh).
  if (uh->requires_grad) {
    uh->EnsureGrad();
    AccumulateABTranspose(s.d_pre, kh, uh->grad);
  }
  s.d_kh.SetShape(hd, 1);
  s.d_kh.Zero();
  AccumulateATransposeB(uh->value, s.d_pre, s.d_kh);
  // kh = Hadamard(k, h).
  s.d_k.SetShape(hd, 1);
  for (size_t i = 0; i < hd; ++i) {
    s.d_k[i] = s.d_kh[i] * h->value[i];
  }
  if (h->requires_grad) {
    h->EnsureGrad();
    for (size_t i = 0; i < hd; ++i) {
      h->grad[i] += s.d_kh[i] * k[i];
    }
  }
  // k = Sigmoid(a4): d_a4 in place of d_k.
  for (size_t i = 0; i < hd; ++i) {
    const float sv = k[i];
    s.d_k[i] = s.d_k[i] * sv * (1.0f - sv);
  }
  // a4 = Add(a3, bk).
  if (bk->requires_grad) {
    bk->AccumulateGrad(s.d_k);
  }
  // m4 = MatMul(uk, h).
  if (uk->requires_grad) {
    uk->EnsureGrad();
    AccumulateABTranspose(s.d_k, h->value, uk->grad);
  }
  if (h->requires_grad) {
    AccumulateATransposeB(uk->value, s.d_k, h->grad);
  }
  // m3 = MatMul(wk, x).
  if (wk->requires_grad) {
    wk->EnsureGrad();
    AccumulateABTranspose(s.d_k, x->value, wk->grad);
  }
  if (x->requires_grad) {
    x->EnsureGrad();
    AccumulateATransposeB(wk->value, s.d_k, x->grad);
  }
  // m5 = MatMul(wh, x).
  if (wh->requires_grad) {
    wh->EnsureGrad();
    AccumulateABTranspose(s.d_pre, x->value, wh->grad);
  }
  if (x->requires_grad) {
    AccumulateATransposeB(wh->value, s.d_pre, x->grad);
  }
  // omz = Affine(z, -1, 1): z.grad += -1 * d_omz.
  s.d_z.SetShape(hd, 1);
  for (size_t i = 0; i < hd; ++i) {
    s.d_z[i] = -1.0f * s.d_omz[i];
  }
  // p1 = Hadamard(z, h).
  for (size_t i = 0; i < hd; ++i) {
    s.d_z[i] += g[i] * h->value[i];
  }
  if (h->requires_grad) {
    for (size_t i = 0; i < hd; ++i) {
      h->grad[i] += g[i] * z[i];
    }
  }
  // z = Sigmoid(a2): d_a2 in place of d_z.
  for (size_t i = 0; i < hd; ++i) {
    const float sv = z[i];
    s.d_z[i] = s.d_z[i] * sv * (1.0f - sv);
  }
  // a2 = Add(a1, bz).
  if (bz->requires_grad) {
    bz->AccumulateGrad(s.d_z);
  }
  // m2 = MatMul(uz, h).
  if (uz->requires_grad) {
    uz->EnsureGrad();
    AccumulateABTranspose(s.d_z, h->value, uz->grad);
  }
  if (h->requires_grad) {
    AccumulateATransposeB(uz->value, s.d_z, h->grad);
  }
  // m1 = MatMul(wz, x).
  if (wz->requires_grad) {
    wz->EnsureGrad();
    AccumulateABTranspose(s.d_z, x->value, wz->grad);
  }
  if (x->requires_grad) {
    AccumulateATransposeB(wz->value, s.d_z, x->grad);
  }
}

void FusedAttentionBackward(TensorNode& node) {
  // Mirrors attended = MatMul(masked: Hadamard(alpha, diag), stacked).
  TensorNode* alpha = node.parents[0].node();
  TensorNode* diag = node.parents[1].node();
  const Matrix& masked = node.saved[0];
  const Matrix& stacked = node.saved[1];
  FusedScratch& s = Scratch();
  // attended backward: pa = masked, pb = stacked.
  s.d_masked.SetShape(masked.rows(), masked.cols());
  s.d_masked.Zero();
  AccumulateABTranspose(node.grad, stacked, s.d_masked);
  s.d_stacked.SetShape(stacked.rows(), stacked.cols());
  s.d_stacked.Zero();
  AccumulateATransposeB(masked, node.grad, s.d_stacked);
  // stacked backward: row e scatters into hidden column e (parents[2 + e]).
  const size_t width = stacked.cols();
  for (size_t e = 2; e < node.parents.size(); ++e) {
    TensorNode* p = node.parents[e].node();
    if (!p->requires_grad) {
      continue;
    }
    p->EnsureGrad();
    for (size_t c = 0; c < width; ++c) {
      p->grad.At(c, 0) += s.d_stacked.At(e - 2, c);
    }
  }
  // masked backward (hadamard): alpha.grad += d_masked . diag.
  if (alpha->requires_grad) {
    alpha->EnsureGrad();
    for (size_t i = 0; i < s.d_masked.size(); ++i) {
      alpha->grad[i] += s.d_masked[i] * diag->value[i];
    }
  }
}

void FusedHeadBackward(TensorNode& node) {
  // Mirrors Add(head: Add(MatMul(head_w, concat), head_b),
  //             skip: Add(MatMul(skip_w, xm), skip_b))
  // with concat = ConcatRows(RowAsColumn(attended, row), h).
  TensorNode* attended = node.parents[0].node();  // May be null (ablation).
  TensorNode* h = node.parents[1].node();
  TensorNode* head_w = node.parents[2].node();
  TensorNode* head_b = node.parents[3].node();
  TensorNode* xm = node.parents[4].node();     // Null without the bypass.
  TensorNode* skip_w = node.parents[5].node();  // Null without the bypass.
  TensorNode* skip_b = node.parents[6].node();
  const Matrix& g = node.grad;
  const Matrix& concat = node.saved[0];
  FusedScratch& s = Scratch();
  if (skip_w != nullptr) {
    // skip_out = Add(m_skip, skip_b); m_skip = MatMul(skip_w, xm).
    if (skip_b->requires_grad) {
      skip_b->AccumulateGrad(g);
    }
    if (skip_w->requires_grad) {
      skip_w->EnsureGrad();
      AccumulateABTranspose(g, xm->value, skip_w->grad);
    }
    if (xm->requires_grad) {
      xm->EnsureGrad();
      AccumulateATransposeB(skip_w->value, g, xm->grad);
    }
  }
  // head_out = Add(m_head, head_b); m_head = MatMul(head_w, concat).
  if (head_b->requires_grad) {
    head_b->AccumulateGrad(g);
  }
  if (head_w->requires_grad) {
    head_w->EnsureGrad();
    AccumulateABTranspose(g, concat, head_w->grad);
  }
  s.d_concat.SetShape(concat.rows(), 1);
  s.d_concat.Zero();
  AccumulateATransposeB(head_w->value, g, s.d_concat);
  // concat backward: upper half -> attended row, lower half -> h.
  const size_t hd = h->value.rows();
  const size_t na = concat.rows() - hd;
  if (attended != nullptr && attended->requires_grad) {
    attended->EnsureGrad();
    const size_t row = node.aux_index;
    for (size_t c = 0; c < na; ++c) {
      attended->grad.At(row, c) += s.d_concat[c];
    }
  }
  if (h->requires_grad) {
    h->EnsureGrad();
    for (size_t i = 0; i < hd; ++i) {
      h->grad[i] += s.d_concat[na + i];
    }
  }
}

}  // namespace

Tensor SigmoidMaskMul(const Tensor& mask, const Tensor& x) {
  assert(mask.value().SameShape(x.value()));
  Tensor out =
      Tensor::NewOp(mask.rows(), mask.cols(), "sigmoid_mask_mul", MaskedInputBackward, mask, x);
  TensorNode* node = out.node();
  node->EnsureSaved(1);
  Matrix& s = node->saved[0];
  s.SetShape(mask.rows(), mask.cols());
  const Matrix& mv = mask.value();
  const Matrix& xv = x.value();
  Matrix& ov = out.mutable_value();
  for (size_t i = 0; i < mv.size(); ++i) {
    s[i] = 1.0f / (1.0f + std::exp(-mv[i]));
  }
  for (size_t i = 0; i < mv.size(); ++i) {
    ov[i] = s[i] * xv[i];
  }
  return out;
}

Tensor FusedGruStep(const Tensor& x, const Tensor& h_prev, const Tensor& wz,
                    const Tensor& uz, const Tensor& bz, const Tensor& wk, const Tensor& uk,
                    const Tensor& bk, const Tensor& wh, const Tensor& uh, const Tensor& bh) {
  const size_t hd = h_prev.rows();
  Tensor out = Tensor::NewOp(hd, 1, "fused_gru", FusedGruBackward, x, h_prev, wz, uz, bz,
                             wk, uk, bk, wh, uh, bh);
  TensorNode* node = out.node();
  node->EnsureSaved(4);
  Matrix& z = node->saved[0];
  Matrix& k = node->saved[1];
  Matrix& hc = node->saved[2];
  Matrix& kh = node->saved[3];
  z.SetShape(hd, 1);
  k.SetShape(hd, 1);
  hc.SetShape(hd, 1);
  kh.SetShape(hd, 1);
  const Matrix& hv = h_prev.value();
  FusedScratch& s = Scratch();
  // z = sigmoid((wz@x + uz@h) + bz) — same association as Add(Add(m1,m2),bz).
  MatMulInto(wz.value(), x.value(), s.ta);
  MatMulInto(uz.value(), hv, s.tb);
  {
    const Matrix& b = bz.value();
    for (size_t i = 0; i < hd; ++i) {
      z[i] = 1.0f / (1.0f + std::exp(-((s.ta[i] + s.tb[i]) + b[i])));
    }
  }
  MatMulInto(wk.value(), x.value(), s.ta);
  MatMulInto(uk.value(), hv, s.tb);
  {
    const Matrix& b = bk.value();
    for (size_t i = 0; i < hd; ++i) {
      k[i] = 1.0f / (1.0f + std::exp(-((s.ta[i] + s.tb[i]) + b[i])));
    }
  }
  for (size_t i = 0; i < hd; ++i) {
    kh[i] = k[i] * hv[i];
  }
  MatMulInto(wh.value(), x.value(), s.ta);
  MatMulInto(uh.value(), kh, s.tb);
  {
    const Matrix& b = bh.value();
    for (size_t i = 0; i < hd; ++i) {
      hc[i] = std::tanh((s.ta[i] + s.tb[i]) + b[i]);
    }
  }
  Matrix& ov = out.mutable_value();
  for (size_t i = 0; i < hd; ++i) {
    const float omz = -1.0f * z[i] + 1.0f;
    ov[i] = (z[i] * hv[i]) + (omz * hc[i]);
  }
  return out;
}

Tensor FusedAttention(const Tensor& alpha, const Tensor& diag_mask,
                      const std::vector<Tensor>& hidden) {
  assert(!hidden.empty());
  const size_t e = hidden.size();
  const size_t hd = hidden[0].rows();
  std::vector<Tensor> parents;
  parents.reserve(2 + e);
  parents.push_back(alpha);
  parents.push_back(diag_mask);
  for (const Tensor& h : hidden) {
    parents.push_back(h);
  }
  Tensor out = Tensor::NewOpN(e, hd, "fused_attention", FusedAttentionBackward, parents);
  TensorNode* node = out.node();
  node->EnsureSaved(2);
  Matrix& masked = node->saved[0];
  Matrix& stacked = node->saved[1];
  HadamardInto(alpha.value(), diag_mask.value(), masked);
  stacked.SetShape(e, hd);
  for (size_t r = 0; r < e; ++r) {
    assert(hidden[r].rows() == hd && hidden[r].cols() == 1);
    const Matrix& col = hidden[r].value();
    for (size_t c = 0; c < hd; ++c) {
      stacked.At(r, c) = col.At(c, 0);
    }
  }
  MatMulInto(masked, stacked, out.mutable_value());
  return out;
}

Tensor FusedExpertHead(const Tensor& attended, size_t row, const Tensor& h,
                       const Tensor& head_w, const Tensor& head_b, const Tensor& xm,
                       const Tensor& skip_w, const Tensor& skip_b) {
  const size_t out_dim = head_w.rows();
  const bool bypass = skip_w.defined();
  Tensor out = Tensor::NewOp(out_dim, 1, "fused_head", FusedHeadBackward, attended, h,
                             head_w, head_b, xm, skip_w, skip_b);
  TensorNode* node = out.node();
  node->aux_index = row;
  node->EnsureSaved(1);
  Matrix& concat = node->saved[0];
  const size_t hd = h.rows();
  const size_t na = head_w.cols() - hd;
  concat.SetShape(na + hd, 1);
  if (attended.defined()) {
    const Matrix& av = attended.value();
    for (size_t c = 0; c < na; ++c) {
      concat[c] = av.At(row, c);
    }
  } else {
    for (size_t c = 0; c < na; ++c) {
      concat[c] = 0.0f;
    }
  }
  {
    const Matrix& hv = h.value();
    for (size_t i = 0; i < hd; ++i) {
      concat[na + i] = hv[i];
    }
  }
  FusedScratch& s = Scratch();
  MatMulInto(head_w.value(), concat, s.ta);
  Matrix& ov = out.mutable_value();
  const Matrix& hb = head_b.value();
  if (bypass) {
    MatMulInto(skip_w.value(), xm.value(), s.tb);
    const Matrix& sb = skip_b.value();
    for (size_t i = 0; i < out_dim; ++i) {
      ov[i] = (s.ta[i] + hb[i]) + (s.tb[i] + sb[i]);
    }
  } else {
    for (size_t i = 0; i < out_dim; ++i) {
      ov[i] = s.ta[i] + hb[i];
    }
  }
  return out;
}

}  // namespace deeprest
