// Differentiable operations over Tensors.
//
// Shapes follow the paper's formulation: activations are column vectors
// (n x 1); weight matrices multiply from the left. The attention mechanism
// (Eq. 3) is expressed with StackColumns / MatMul / RowAsColumn so that one
// graph node per time step couples all experts.
//
// The Fused* ops at the bottom collapse the per-step DeepRest subgraphs
// (masked input, GRU cell, cross-expert attention, output head) into one
// graph node each. They are exact drop-in replacements: forward values and
// every gradient accumulation happen with the same kernels, in the same
// per-buffer order, as the unfused composition — results are bit-identical
// under the training loss topology (every step's output feeds the loss, so
// the reverse sweep processes steps as contiguous blocks in either graph).
// A loss that reads only the final state reorders the unfused graph's
// leaf-input matmuls across steps and the match is then ~1 ulp instead;
// see fused_ops_test.cc and DESIGN.md "Performance notes". Graphs are ~6x
// smaller either way.
#ifndef SRC_NN_OPS_H_
#define SRC_NN_OPS_H_

#include <vector>

#include "src/nn/tensor.h"

namespace deeprest {

// Element-wise a + b. Shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);
// Element-wise a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
// Element-wise (Hadamard) product.
Tensor Hadamard(const Tensor& a, const Tensor& b);
// Element-wise affine map: alpha * a + beta.
Tensor Affine(const Tensor& a, float alpha, float beta);
// Matrix product a (n x k) * b (k x m).
Tensor MatMul(const Tensor& a, const Tensor& b);

// Element-wise nonlinearities.
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
// Natural exponential, element-wise (used by softplus-style heads).
Tensor Exp(const Tensor& a);

// Vertically concatenates two tensors with equal column counts.
Tensor ConcatRows(const Tensor& a, const Tensor& b);
// Stacks k column vectors (h x 1 each) into a k x h matrix; row i is the
// transpose of input i.
Tensor StackColumns(const std::vector<Tensor>& columns);
// Extracts row `row` of a (k x h) as an (h x 1) column vector.
Tensor RowAsColumn(const Tensor& a, size_t row);

// Sum of all entries -> 1x1.
Tensor SumAll(const Tensor& a);
// Mean of all entries -> 1x1.
Tensor MeanAll(const Tensor& a);
// Sum of a list of scalars (1x1 tensors) -> 1x1. Avoids a deep Add chain.
Tensor AddN(const std::vector<Tensor>& scalars);

// Quantile (pinball) loss of paper Eq. 5-6, fused over the k prediction heads:
//   sum_i Q(pred[i] - target | delta[i])   with Q(d|q) = max(q*d, (q-1)*d).
// pred is (k x 1); deltas has k entries. Returns a 1x1 tensor.
Tensor PinballLoss(const Tensor& pred, float target, const std::vector<float>& deltas);

// Squared-error loss 0.5 * sum((pred - target)^2) with a constant target.
Tensor SquaredError(const Tensor& pred, const Matrix& target);

// ---- Fused DeepRest step ops ----

// sigmoid(mask) . x in one node (paper Eq. 1). Equivalent to
// Hadamard(Sigmoid(mask), x).
Tensor SigmoidMaskMul(const Tensor& mask, const Tensor& x);

// One full GRU recurrence step (paper Eq. 2) as a single node. Equivalent to
// the composition in GruCell::StepReference.
Tensor FusedGruStep(const Tensor& x, const Tensor& h_prev, const Tensor& wz,
                    const Tensor& uz, const Tensor& bz, const Tensor& wk, const Tensor& uk,
                    const Tensor& bk, const Tensor& wh, const Tensor& uh, const Tensor& bh);

// Cross-expert attention for one time step (paper Eq. 3): stacks the experts'
// hidden columns and computes (alpha . diag_mask) * stacked in one node.
// Equivalent to MatMul(Hadamard(alpha, diag_mask), StackColumns(hidden)).
Tensor FusedAttention(const Tensor& alpha, const Tensor& diag_mask,
                      const std::vector<Tensor>& hidden);

// One expert's output head (paper Eq. 4): head_w * concat(attended[row], h) +
// head_b, plus the optional linear bypass skip_w * xm + skip_b. `attended`
// may be undefined (attention ablation: the attended half of the concat is
// zero); skip_w/skip_b may be undefined (no bypass; xm is then unused).
Tensor FusedExpertHead(const Tensor& attended, size_t row, const Tensor& h,
                       const Tensor& head_w, const Tensor& head_b, const Tensor& xm,
                       const Tensor& skip_w, const Tensor& skip_b);

}  // namespace deeprest

#endif  // SRC_NN_OPS_H_
