// Differentiable operations over Tensors.
//
// Shapes follow the paper's formulation: activations are column vectors
// (n x 1); weight matrices multiply from the left. The attention mechanism
// (Eq. 3) is expressed with StackColumns / MatMul / RowAsColumn so that one
// graph node per time step couples all experts.
#ifndef SRC_NN_OPS_H_
#define SRC_NN_OPS_H_

#include <vector>

#include "src/nn/tensor.h"

namespace deeprest {

// Element-wise a + b. Shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);
// Element-wise a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
// Element-wise (Hadamard) product.
Tensor Hadamard(const Tensor& a, const Tensor& b);
// Element-wise affine map: alpha * a + beta.
Tensor Affine(const Tensor& a, float alpha, float beta);
// Matrix product a (n x k) * b (k x m).
Tensor MatMul(const Tensor& a, const Tensor& b);

// Element-wise nonlinearities.
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
// Natural exponential, element-wise (used by softplus-style heads).
Tensor Exp(const Tensor& a);

// Vertically concatenates two tensors with equal column counts.
Tensor ConcatRows(const Tensor& a, const Tensor& b);
// Stacks k column vectors (h x 1 each) into a k x h matrix; row i is the
// transpose of input i.
Tensor StackColumns(const std::vector<Tensor>& columns);
// Extracts row `row` of a (k x h) as an (h x 1) column vector.
Tensor RowAsColumn(const Tensor& a, size_t row);

// Sum of all entries -> 1x1.
Tensor SumAll(const Tensor& a);
// Mean of all entries -> 1x1.
Tensor MeanAll(const Tensor& a);
// Sum of a list of scalars (1x1 tensors) -> 1x1. Avoids a deep Add chain.
Tensor AddN(const std::vector<Tensor>& scalars);

// Quantile (pinball) loss of paper Eq. 5-6, fused over the k prediction heads:
//   sum_i Q(pred[i] - target | delta[i])   with Q(d|q) = max(q*d, (q-1)*d).
// pred is (k x 1); deltas has k entries. Returns a 1x1 tensor.
Tensor PinballLoss(const Tensor& pred, float target, const std::vector<float>& deltas);

// Squared-error loss 0.5 * sum((pred - target)^2) with a constant target.
Tensor SquaredError(const Tensor& pred, const Matrix& target);

}  // namespace deeprest

#endif  // SRC_NN_OPS_H_
