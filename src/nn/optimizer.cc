#include "src/nn/optimizer.h"

#include <cmath>

namespace deeprest {

float ClipGradNorm(ParameterStore& store, float max_norm) {
  double total = 0.0;
  for (auto& e : store.entries()) {
    e.tensor.node()->EnsureGrad();
    const Matrix& g = e.tensor.grad();
    for (size_t i = 0; i < g.size(); ++i) {
      total += static_cast<double>(g[i]) * g[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& e : store.entries()) {
      e.tensor.mutable_grad().Scale(scale);
    }
  }
  return norm;
}

SgdOptimizer::SgdOptimizer(ParameterStore& store, float learning_rate, float momentum)
    : store_(&store), learning_rate_(learning_rate), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(store.entries().size());
    for (const auto& e : store.entries()) {
      velocity_.emplace_back(e.tensor.value().rows(), e.tensor.value().cols());
    }
  }
}

void SgdOptimizer::Step() {
  auto& entries = store_->entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    Tensor& t = entries[i].tensor;
    t.node()->EnsureGrad();
    if (momentum_ != 0.0f) {
      // velocity = momentum * velocity + grad; param -= lr * velocity.
      Matrix& vel = velocity_[i];
      vel.Scale(momentum_);
      vel.Add(t.grad());
      t.mutable_value().AddScaled(vel, -learning_rate_);
    } else {
      t.mutable_value().AddScaled(t.grad(), -learning_rate_);
    }
  }
}

AdamOptimizer::AdamOptimizer(ParameterStore& store, float learning_rate, float beta1,
                             float beta2, float epsilon)
    : store_(&store),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  m_.reserve(store.entries().size());
  v_.reserve(store.entries().size());
  for (const auto& e : store.entries()) {
    m_.emplace_back(e.tensor.value().rows(), e.tensor.value().cols());
    v_.emplace_back(e.tensor.value().rows(), e.tensor.value().cols());
  }
}

void AdamOptimizer::Step() {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  auto& entries = store_->entries();
  // Parameters may have been created after the optimizer (not supported);
  // guard with an assert-equivalent size check in debug builds.
  for (size_t i = 0; i < entries.size() && i < m_.size(); ++i) {
    Tensor& t = entries[i].tensor;
    t.node()->EnsureGrad();
    const Matrix& g = t.grad();
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    Matrix& value = t.mutable_value();
    for (size_t j = 0; j < g.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      value[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

}  // namespace deeprest
