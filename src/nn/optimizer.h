// First-order optimizers over a ParameterStore.
#ifndef SRC_NN_OPTIMIZER_H_
#define SRC_NN_OPTIMIZER_H_

#include <vector>

#include "src/nn/layers.h"

namespace deeprest {

// Rescales all gradients so their global L2 norm is at most max_norm.
// Returns the pre-clip norm.
float ClipGradNorm(ParameterStore& store, float max_norm);

// Plain SGD with optional momentum, as used in the paper (SGD, lr = 0.001).
class SgdOptimizer {
 public:
  explicit SgdOptimizer(ParameterStore& store, float learning_rate, float momentum = 0.0f);

  void Step();
  void ZeroGrad() { store_->ZeroGrad(); }

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }

 private:
  ParameterStore* store_;
  float learning_rate_;
  float momentum_;
  std::vector<Matrix> velocity_;
};

// Adam optimizer; converges faster on the small simulated datasets and is
// used as the default trainer (the loss surface is the same as in the paper).
class AdamOptimizer {
 public:
  explicit AdamOptimizer(ParameterStore& store, float learning_rate, float beta1 = 0.9f,
                         float beta2 = 0.999f, float epsilon = 1e-8f);

  void Step();
  void ZeroGrad() { store_->ZeroGrad(); }

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }

 private:
  ParameterStore* store_;
  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  int step_count_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace deeprest

#endif  // SRC_NN_OPTIMIZER_H_
