#include "src/nn/pca.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace deeprest {

void SymmetricEigen(std::vector<double>& matrix, size_t n, std::vector<double>& eigenvalues,
                    std::vector<std::vector<double>>& eigenvectors) {
  assert(matrix.size() == n * n);
  // Cyclic Jacobi rotations; V accumulates the eigenvector basis.
  std::vector<double> v(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    v[i * n + i] = 1.0;
  }
  auto a = [&](size_t r, size_t c) -> double& { return matrix[r * n + c]; };
  auto vv = [&](size_t r, size_t c) -> double& { return v[r * n + c]; };

  const int kMaxSweeps = 100;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        off += a(p, q) * a(p, q);
      }
    }
    if (off < 1e-20) {
      break;
    }
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) < 1e-300) {
          continue;
        }
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) / (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = vv(k, p);
          const double vkq = vv(k, q);
          vv(k, p) = c * vkp - s * vkq;
          vv(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  eigenvalues.resize(n);
  for (size_t i = 0; i < n; ++i) {
    eigenvalues[i] = a(i, i);
  }
  // Sort descending by eigenvalue, permuting eigenvectors along.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](size_t l, size_t r) { return eigenvalues[l] > eigenvalues[r]; });
  std::vector<double> sorted_values(n);
  eigenvectors.assign(n, std::vector<double>(n));
  for (size_t rank = 0; rank < n; ++rank) {
    sorted_values[rank] = eigenvalues[idx[rank]];
    for (size_t k = 0; k < n; ++k) {
      eigenvectors[rank][k] = vv(k, idx[rank]);
    }
  }
  eigenvalues = std::move(sorted_values);
}

PcaResult ComputePca(const std::vector<std::vector<float>>& samples, size_t components) {
  PcaResult result;
  const size_t n = samples.size();
  if (n == 0) {
    return result;
  }
  const size_t d = samples[0].size();
  components = std::min(components, n);

  // Center the data.
  std::vector<double> mean(d, 0.0);
  for (const auto& row : samples) {
    assert(row.size() == d);
    for (size_t j = 0; j < d; ++j) {
      mean[j] += row[j];
    }
  }
  for (auto& m : mean) {
    m /= static_cast<double>(n);
  }

  // Gram matrix G = X_c X_c^T (n x n). Eigenvectors u of G give principal
  // directions via X_c^T u / ||.||; projections are simply u * sqrt(lambda).
  std::vector<double> gram(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < d; ++k) {
        acc += (samples[i][k] - mean[k]) * (samples[j][k] - mean[k]);
      }
      gram[i * n + j] = acc;
      gram[j * n + i] = acc;
    }
  }

  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> eigenvectors;
  SymmetricEigen(gram, n, eigenvalues, eigenvectors);

  double total_variance = 0.0;
  for (double ev : eigenvalues) {
    total_variance += std::max(ev, 0.0);
  }

  result.projections.assign(n, std::vector<float>(components, 0.0f));
  result.explained_variance_ratio.resize(components, 0.0f);
  for (size_t cidx = 0; cidx < components; ++cidx) {
    const double lambda = std::max(eigenvalues[cidx], 0.0);
    const double scale = std::sqrt(lambda);
    for (size_t i = 0; i < n; ++i) {
      result.projections[i][cidx] = static_cast<float>(eigenvectors[cidx][i] * scale);
    }
    result.explained_variance_ratio[cidx] =
        total_variance > 0.0 ? static_cast<float>(lambda / total_variance) : 0.0f;
  }
  return result;
}

}  // namespace deeprest
