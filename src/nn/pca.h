// Principal component analysis, used to reproduce paper Fig. 21 (projecting
// the GRU parameters of all experts onto 2D and observing that MongoDB
// experts cluster together).
#ifndef SRC_NN_PCA_H_
#define SRC_NN_PCA_H_

#include <cstddef>
#include <vector>

namespace deeprest {

struct PcaResult {
  // Projected coordinates: one row (of `components` values) per input sample.
  std::vector<std::vector<float>> projections;
  // Fraction of total variance captured by each kept component.
  std::vector<float> explained_variance_ratio;
};

// Projects `samples` (N rows x D columns, D may exceed N) onto the top
// `components` principal components. Uses the Gram-matrix trick so the cost is
// O(N^2 D + N^3) regardless of D, which is essential here because each expert
// flattens to tens of thousands of parameters.
PcaResult ComputePca(const std::vector<std::vector<float>>& samples, size_t components);

// Jacobi eigen-decomposition of a symmetric matrix given as flat row-major
// data (n x n). Returns eigenvalues (descending) and matching eigenvectors
// (each of length n). Exposed for testing.
void SymmetricEigen(std::vector<double>& matrix, size_t n, std::vector<double>& eigenvalues,
                    std::vector<std::vector<double>>& eigenvectors);

}  // namespace deeprest

#endif  // SRC_NN_PCA_H_
