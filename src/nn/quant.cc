#include "src/nn/quant.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "src/nn/simd/dispatch.h"

namespace deeprest {
namespace {

// Round-to-nearest-even without a libm call: adding and subtracting
// 1.5 * 2^23 forces the value onto the integer grid under the default
// rounding mode (exact for |v| <= 2^22; quantized values are in
// [-127, 127]). std::nearbyint and std::lrintf both stay out-of-line
// calls at -O2 because of math-errno, and this loop runs on every
// quantized inference call. Requires no -ffast-math (the project lint
// already forbids it) so the compiler cannot fold (v + m) - m to v.
inline int8_t RoundToInt8(float v) {
  const float clamped = std::max(-127.0f, std::min(127.0f, v));
  const float magic = 12582912.0f;  // 2^23 + 2^22
  const float rounded = (clamped + magic) - magic;
  return static_cast<int8_t>(rounded);
}

}  // namespace

uint16_t FloatToHalf(float value) {
  uint32_t f;
  std::memcpy(&f, &value, sizeof(f));
  const uint32_t sign = (f >> 16) & 0x8000u;
  const uint32_t abs = f & 0x7fffffffu;

  if (abs >= 0x7f800000u) {  // inf / NaN
    const uint32_t mantissa = abs > 0x7f800000u ? 0x0200u : 0u;  // quiet NaN keeps a payload bit
    return static_cast<uint16_t>(sign | 0x7c00u | mantissa);
  }
  if (abs >= 0x47800000u) {  // >= 65536: overflows half range, saturate to inf
    return static_cast<uint16_t>(sign | 0x7c00u);
  }
  if (abs < 0x38800000u) {  // < 2^-14: subnormal half (or zero)
    if (abs < 0x33000000u) {  // < 2^-25: rounds to zero
      return static_cast<uint16_t>(sign);
    }
    // Target is value * 2^24 (subnormal halves count in units of 2^-24);
    // with the implicit bit restored, that is the 24-bit mantissa shifted
    // down by 126 - biased_exponent (14 at the 2^-14 boundary, 24 at the
    // rounds-to-zero threshold).
    const int shift = 126 - static_cast<int>(abs >> 23);  // 14..24
    const uint32_t mantissa = (abs & 0x007fffffu) | 0x00800000u;
    const uint32_t shifted = mantissa >> shift;
    const uint32_t remainder = mantissa & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1);
    uint32_t result = shifted;
    if (remainder > halfway || (remainder == halfway && (shifted & 1u))) {
      ++result;  // round-to-nearest-even
    }
    return static_cast<uint16_t>(sign | result);
  }
  // Normal half: rebias exponent, round 13 dropped mantissa bits to nearest-even.
  uint32_t half = sign | ((abs - 0x38000000u) >> 13);
  const uint32_t dropped = abs & 0x1fffu;
  if (dropped > 0x1000u || (dropped == 0x1000u && (half & 1u))) {
    ++half;  // carries ripple into the exponent correctly (maps to inf at the top)
  }
  return static_cast<uint16_t>(half);
}

float HalfToFloat(uint16_t bits) {
  const uint32_t sign = static_cast<uint32_t>(bits & 0x8000u) << 16;
  const uint32_t exponent = (bits >> 10) & 0x1fu;
  const uint32_t mantissa = bits & 0x03ffu;
  uint32_t f;
  if (exponent == 0) {
    if (mantissa == 0) {
      f = sign;  // signed zero
    } else {
      // Subnormal half: normalize into a float exponent.
      int e = -1;
      uint32_t man = mantissa;
      do {
        ++e;
        man <<= 1;
      } while ((man & 0x0400u) == 0);
      f = sign | (static_cast<uint32_t>(127 - 15 - e) << 23) | ((man & 0x03ffu) << 13);
    }
  } else if (exponent == 0x1fu) {
    f = sign | 0x7f800000u | (mantissa << 13);  // inf / NaN
  } else {
    f = sign | ((exponent + 112) << 23) | (mantissa << 13);
  }
  float value;
  std::memcpy(&value, &f, sizeof(value));
  return value;
}

QuantizedMatrix QuantizeRowwise(const Matrix& m) {
  QuantizedMatrix q;
  q.rows = m.rows();
  q.cols = m.cols();
  q.data.resize(q.rows * q.cols);
  q.scales.resize(q.rows);
  for (size_t r = 0; r < q.rows; ++r) {
    const float* row = m.data() + r * q.cols;
    float maxabs = 0.0f;
    for (size_t c = 0; c < q.cols; ++c) {
      maxabs = std::max(maxabs, std::fabs(row[c]));
    }
    const float scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
    const float inv = 1.0f / scale;
    q.scales[r] = scale;
    int8_t* qrow = q.data.data() + r * q.cols;
    for (size_t c = 0; c < q.cols; ++c) {
      qrow[c] = RoundToInt8(row[c] * inv);
    }
  }
  return q;
}

Matrix Dequantize(const QuantizedMatrix& q) {
  Matrix m(q.rows, q.cols);
  for (size_t r = 0; r < q.rows; ++r) {
    const int8_t* qrow = q.data.data() + r * q.cols;
    const float scale = q.scales[r];
    float* row = m.data() + r * q.cols;
    for (size_t c = 0; c < q.cols; ++c) {
      row[c] = static_cast<float>(qrow[c]) * scale;
    }
  }
  return m;
}

void QuantizedMatMul(const QuantizedMatrix& w, const Matrix& x, Matrix& out,
                     QuantScratch& scratch) {
  assert(w.cols == x.rows());
  const size_t n = w.rows;
  const size_t k = w.cols;
  const size_t m = x.cols();
  scratch.x8.resize(k * m);
  scratch.xscale.resize(m);
  scratch.xinv.resize(m);
  // Quantize and transpose x (k x m, row-major) into packed columns: column b
  // occupies x8[b*k .. b*k + k), so both operands stream contiguously in the
  // O(n*k*m) kernel below. Both packing passes walk x ROW-major — contiguous
  // float loads the compiler can vectorize; the transpose happens on the
  // strided byte stores, which the store buffer absorbs. (Walking x
  // column-major instead costs ~4x: every scalar load touches a new cache
  // line.)
  const float* xv = x.data();
  float* colmax = scratch.xinv.data();
  std::fill(colmax, colmax + m, 0.0f);
  for (size_t c = 0; c < k; ++c) {
    const float* xrow = xv + c * m;
    for (size_t b = 0; b < m; ++b) {
      colmax[b] = std::max(colmax[b], std::fabs(xrow[b]));
    }
  }
  for (size_t b = 0; b < m; ++b) {
    const float scale = colmax[b] > 0.0f ? colmax[b] / 127.0f : 1.0f;
    scratch.xscale[b] = scale;
    scratch.xinv[b] = 1.0f / scale;
  }
  const float* xinv = scratch.xinv.data();
  for (size_t c = 0; c < k; ++c) {
    const float* xrow = xv + c * m;
    int8_t* x8row = scratch.x8.data() + c;
    for (size_t b = 0; b < m; ++b) {
      x8row[b * k] = RoundToInt8(xrow[b] * xinv[b]);
    }
  }
  out.SetShape(n, m);
  simd::Int8MatMul(w.data.data(), w.scales.data(), scratch.x8.data(), scratch.xscale.data(),
                   out.data(), n, k, m);
}

void WeightMatMul(const WeightView& view, const Matrix& x, Matrix& out, QuantScratch& scratch) {
  if (view.q8 != nullptr) {
    QuantizedMatMul(*view.q8, x, out, scratch);
  } else {
    MatMulInto(*view.w, x, out);
  }
}

HalfMatrix ToHalf(const Matrix& m) {
  HalfMatrix h;
  h.rows = m.rows();
  h.cols = m.cols();
  h.data.resize(m.size());
  const float* src = m.data();
  for (size_t i = 0; i < h.data.size(); ++i) {
    h.data[i] = FloatToHalf(src[i]);
  }
  return h;
}

Matrix FromHalf(const HalfMatrix& h) {
  Matrix m(h.rows, h.cols);
  float* dst = m.data();
  for (size_t i = 0; i < h.data.size(); ++i) {
    dst[i] = HalfToFloat(h.data[i]);
  }
  return m;
}

void RoundMatrixToHalf(Matrix& m) {
  float* d = m.data();
  for (size_t i = 0, e = m.size(); i < e; ++i) {
    d[i] = HalfToFloat(FloatToHalf(d[i]));
  }
}

}  // namespace deeprest
