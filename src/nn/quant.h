// Reduced-precision storage and inference kernels.
//
// Two independent mechanisms live here:
//
//  * int8 quantized GEMM for inference. Weights are quantized per ROW with a
//    symmetric scale (scale_i = max|row_i| / 127, no zero-point — weight
//    distributions are zero-centered, and symmetric quantization keeps the
//    int8 dot product free of correction terms). Activations are quantized
//    per COLUMN at call time (dynamic: scale_b = max|x[:,b]| / 127) and
//    packed column-major so both operands stream contiguously through the
//    int8 kernel. Accumulation is int32 and therefore EXACT: the only error
//    sources are the two rounding steps, bounded by one weight LSB and one
//    activation LSB. k * 127^2 stays far below 2^31 for every model shape.
//
//  * fp16 (IEEE binary16) storage for model parameters. Used two ways:
//    in-place rounding of a cloned model's parameters (ModelRegistry fp16
//    storage policy — compute stays fp32, storage precision drops to 11
//    significand bits), and half-width checkpoint serialization
//    (serialize.h format v2).
//
// The accuracy budget for both modes is enforced end-to-end by
// tests/core/quantized_inference_test.cc (quantile-loss delta vs fp32 under
// the bound documented in DESIGN.md §6).
#ifndef SRC_NN_QUANT_H_
#define SRC_NN_QUANT_H_

#include <cstdint>
#include <vector>

#include "src/nn/matrix.h"

namespace deeprest {

// ---- fp16 scalar conversions (portable bit-twiddle, no F16C needed) ----

// Round-to-nearest-even float -> binary16 bits. Overflow saturates to
// +/-inf; subnormal halves are produced for tiny magnitudes.
uint16_t FloatToHalf(float value);
float HalfToFloat(uint16_t bits);

// ---- int8 per-row quantized weights ----

struct QuantizedMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<int8_t> data;    // row-major, rows * cols
  std::vector<float> scales;   // per-row dequantization scale, size rows

  bool empty() const { return data.empty(); }
};

// Per-row symmetric quantization: data[r][c] = round(m[r][c] / scale_r),
// scale_r = max|row_r| / 127 (1.0 for an all-zero row).
QuantizedMatrix QuantizeRowwise(const Matrix& m);

// Dequantized copy, for error analysis in tests.
Matrix Dequantize(const QuantizedMatrix& q);

// Reused activation-quantization buffers (one per inference call path; not
// thread-safe, same discipline as BatchedScratch).
struct QuantScratch {
  std::vector<int8_t> x8;      // packed column-major quantized activations
  std::vector<float> xscale;   // per-column scales
  std::vector<float> xinv;     // per-column reciprocal scales (packing pass)
};

// out = dequant(w) @ x computed in int8: quantizes x per column into
// `scratch`, then runs the dispatch-selected Int8MatMul. Shapes follow
// MatMulInto: w is (n x k), x is (k x m), out becomes (n x m).
void QuantizedMatMul(const QuantizedMatrix& w, const Matrix& x, Matrix& out,
                     QuantScratch& scratch);

// A weight operand that is either fp32 or int8. The inference kernels take
// this view so one call site serves both modes; exactly one pointer is
// non-null.
struct WeightView {
  const Matrix* w = nullptr;
  const QuantizedMatrix* q8 = nullptr;

  WeightView() = default;
  // Implicit: an fp32 Matrix is a WeightView wherever one is expected.
  WeightView(const Matrix& m) : w(&m) {}  // NOLINT(runtime/explicit)
  WeightView(const QuantizedMatrix& q) : q8(&q) {}  // NOLINT(runtime/explicit)

  bool quantized() const { return q8 != nullptr; }
  // A default-constructed view stands for "absent" (e.g. no skip connection).
  bool valid() const { return w != nullptr || q8 != nullptr; }
  size_t rows() const { return q8 != nullptr ? q8->rows : w->rows(); }
  size_t cols() const { return q8 != nullptr ? q8->cols : w->cols(); }
};

// out = view @ x via MatMulInto (fp32) or QuantizedMatMul (int8).
void WeightMatMul(const WeightView& view, const Matrix& x, Matrix& out, QuantScratch& scratch);

// ---- fp16 matrices ----

struct HalfMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<uint16_t> data;  // row-major binary16 bits

  bool empty() const { return data.empty(); }
};

HalfMatrix ToHalf(const Matrix& m);
Matrix FromHalf(const HalfMatrix& h);

// In-place fp16 round-trip: every entry becomes the nearest binary16 value.
// This is the ModelRegistry storage policy — the matrix stays fp32 in
// memory layout but carries only half precision.
void RoundMatrixToHalf(Matrix& m);

}  // namespace deeprest

#endif  // SRC_NN_QUANT_H_
