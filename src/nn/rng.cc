#include "src/nn/rng.h"

#include <cmath>

namespace deeprest {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) {
    s = sm.Next();
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::NextBelow(uint64_t n) {
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = n * (UINT64_MAX / n);
  uint64_t v = NextU64();
  while (v >= limit) {
    v = NextU64();
  }
  return v % n;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) { return mean + stddev * NextGaussian(); }

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

int Rng::NextPoisson(double lambda) {
  if (lambda <= 0.0) {
    return 0;
  }
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double product = NextDouble();
    int count = 0;
    while (product > limit) {
      product *= NextDouble();
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double value = Gaussian(lambda, std::sqrt(lambda));
  return value < 0.0 ? 0 : static_cast<int>(value + 0.5);
}

Rng Rng::Split() { return Rng(NextU64()); }

}  // namespace deeprest
