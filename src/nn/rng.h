// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic piece of the repository (weight initialization, workload
// generation, trace sampling, simulator noise) draws from these generators so
// that a fixed seed reproduces a run bit-for-bit.
#ifndef SRC_NN_RNG_H_
#define SRC_NN_RNG_H_

#include <cstdint>

namespace deeprest {

// SplitMix64: tiny, high-quality 64-bit generator. Mainly used to seed
// Xoshiro256** and for cheap hashing-style randomness.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256**: the workhorse generator. Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit integer.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  // Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  // Gaussian with the given mean / standard deviation.
  double Gaussian(double mean, double stddev);

  // Bernoulli trial with probability p of returning true.
  bool NextBernoulli(double p);

  // Poisson-distributed count with the given mean (Knuth for small lambda,
  // normal approximation for large lambda).
  int NextPoisson(double lambda);

  // Splits off an independently-seeded child generator. Children derived from
  // the same parent in the same order are deterministic.
  Rng Split();

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace deeprest

#endif  // SRC_NN_RNG_H_
