#include "src/nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <ostream>
#include <vector>

#include "src/nn/quant.h"

namespace deeprest {

namespace {

constexpr uint32_t kMagic = 0x44525354;  // "DRST"
constexpr uint32_t kVersion = 1;        // fp32 tensor data
constexpr uint32_t kVersionFp16 = 2;    // binary16 tensor data

void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::istream& in, uint32_t& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(in);
}

}  // namespace

bool SaveParameters(const ParameterStore& store, std::ostream& out) {
  WriteU32(out, kMagic);
  WriteU32(out, kVersion);
  WriteU32(out, static_cast<uint32_t>(store.entries().size()));
  for (const auto& e : store.entries()) {
    WriteU32(out, static_cast<uint32_t>(e.name.size()));
    out.write(e.name.data(), static_cast<std::streamsize>(e.name.size()));
    const Matrix& m = e.tensor.value();
    WriteU32(out, static_cast<uint32_t>(m.rows()));
    WriteU32(out, static_cast<uint32_t>(m.cols()));
    out.write(reinterpret_cast<const char*>(m.data()),
              static_cast<std::streamsize>(m.size() * sizeof(float)));
  }
  return static_cast<bool>(out);
}

bool SaveParametersToFile(const ParameterStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  return out && SaveParameters(store, out);
}

bool SaveParametersFp16(const ParameterStore& store, std::ostream& out) {
  WriteU32(out, kMagic);
  WriteU32(out, kVersionFp16);
  WriteU32(out, static_cast<uint32_t>(store.entries().size()));
  for (const auto& e : store.entries()) {
    WriteU32(out, static_cast<uint32_t>(e.name.size()));
    out.write(e.name.data(), static_cast<std::streamsize>(e.name.size()));
    const HalfMatrix h = ToHalf(e.tensor.value());
    WriteU32(out, static_cast<uint32_t>(h.rows));
    WriteU32(out, static_cast<uint32_t>(h.cols));
    out.write(reinterpret_cast<const char*>(h.data.data()),
              static_cast<std::streamsize>(h.data.size() * sizeof(uint16_t)));
  }
  return static_cast<bool>(out);
}

bool SaveParametersFp16ToFile(const ParameterStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  return out && SaveParametersFp16(store, out);
}

bool LoadParameters(ParameterStore& store, std::istream& in) {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t count = 0;
  if (!ReadU32(in, magic) || magic != kMagic || !ReadU32(in, version) ||
      (version != kVersion && version != kVersionFp16) || !ReadU32(in, count)) {
    return false;
  }
  const bool fp16 = version == kVersionFp16;
  std::map<std::string, Matrix> loaded;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadU32(in, name_len) || name_len > (1u << 20)) {
      return false;
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t rows = 0;
    uint32_t cols = 0;
    if (!ReadU32(in, rows) || !ReadU32(in, cols)) {
      return false;
    }
    Matrix m;
    if (fp16) {
      HalfMatrix h;
      h.rows = rows;
      h.cols = cols;
      h.data.resize(static_cast<size_t>(rows) * cols);
      in.read(reinterpret_cast<char*>(h.data.data()),
              static_cast<std::streamsize>(h.data.size() * sizeof(uint16_t)));
      if (!in) {
        return false;
      }
      m = FromHalf(h);
    } else {
      m.SetShape(rows, cols);
      in.read(reinterpret_cast<char*>(m.data()),
              static_cast<std::streamsize>(m.size() * sizeof(float)));
      if (!in) {
        return false;
      }
    }
    loaded.emplace(std::move(name), std::move(m));
  }
  for (auto& e : store.entries()) {
    auto it = loaded.find(e.name);
    if (it == loaded.end() || !it->second.SameShape(e.tensor.value())) {
      return false;
    }
    e.tensor.mutable_value() = it->second;
  }
  return true;
}

bool LoadParametersFromFile(ParameterStore& store, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in && LoadParameters(store, in);
}

size_t SerializedSize(const ParameterStore& store) {
  size_t bytes = 12;  // magic + version + count
  for (const auto& e : store.entries()) {
    bytes += 4 + e.name.size() + 8 + e.tensor.value().size() * sizeof(float);
  }
  return bytes;
}

}  // namespace deeprest
