// Binary (de)serialization of a ParameterStore, so trained DeepRest models can
// be checkpointed and restored (the paper reports 801.5 kB per expert; the
// format below is a simple length-prefixed name/shape/data stream).
#ifndef SRC_NN_SERIALIZE_H_
#define SRC_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "src/nn/layers.h"

namespace deeprest {

// Writes all parameters (names, shapes, float data) to the stream.
// Returns false on I/O failure.
bool SaveParameters(const ParameterStore& store, std::ostream& out);
bool SaveParametersToFile(const ParameterStore& store, const std::string& path);

// Format v2: identical layout but every tensor is stored as IEEE binary16
// (half the bytes, 11 significand bits). The v1 fp32 writer above is left
// byte-for-byte untouched so existing checkpoints stay stable.
bool SaveParametersFp16(const ParameterStore& store, std::ostream& out);
bool SaveParametersFp16ToFile(const ParameterStore& store, const std::string& path);

// Restores parameter values by name into an already-constructed store. Every
// parameter present in the store must be found in the stream with a matching
// shape; extra entries in the stream are ignored. Accepts both format v1
// (fp32) and v2 (fp16; entries are widened back to fp32 on load). Returns
// false on mismatch or I/O failure.
bool LoadParameters(ParameterStore& store, std::istream& in);
bool LoadParametersFromFile(ParameterStore& store, const std::string& path);

// Serialized size in bytes (for the scalability study of paper section 6).
size_t SerializedSize(const ParameterStore& store);

}  // namespace deeprest

#endif  // SRC_NN_SERIALIZE_H_
