#include "src/nn/simd/dispatch.h"

#include <atomic>
#include <cstdlib>

#include "src/nn/simd/kernels.h"

namespace deeprest {
namespace simd {
namespace {

using detail::KernelTable;

const KernelTable* TableFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return detail::ScalarTable();
    case Isa::kAvx2:
      return detail::Avx2Table();
    case Isa::kAvx512:
      return detail::Avx512Table();
    case Isa::kNeon:
      return detail::NeonTable();
  }
  return nullptr;
}

bool HostSupports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      // The avx512 TU keeps its int8 kernel at 256 bits, so it needs the
      // AVX2+FMA encodings too (true of every shipped AVX-512 part, but
      // probe it rather than assume).
      return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx2") &&
             __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Isa::kNeon:
      // NEON presence is a compile-time fact on aarch64; the table is null
      // when the binary was not built for ARM.
      return detail::NeonTable() != nullptr;
  }
  return false;
}

// One rung down the ladder. kNeon has no vector rung below it.
Isa NextRungDown(Isa isa) {
  switch (isa) {
    case Isa::kAvx512:
      return Isa::kAvx2;
    case Isa::kAvx2:
    case Isa::kNeon:
    case Isa::kScalar:
      return Isa::kScalar;
  }
  return Isa::kScalar;
}

Isa ClampToSupported(Isa wanted) {
  Isa isa = wanted;
  while (isa != Isa::kScalar && !IsaSupported(isa)) {
    isa = NextRungDown(isa);
  }
  return isa;
}

// The selection is published as (isa, table) through a single pointer so a
// reader never sees a torn pair. -1 in g_active_isa means "not yet
// initialized"; first use runs the env-var default below.
std::atomic<int> g_active_isa{-1};
std::atomic<const KernelTable*> g_active_table{nullptr};

Isa DefaultIsa() {
  if (const char* spec = std::getenv("DEEPREST_SIMD")) {
    const std::string s(spec);
    if (s == "auto") return BestSupportedIsa();
    if (s == "scalar") return ClampToSupported(Isa::kScalar);
    if (s == "avx2") return ClampToSupported(Isa::kAvx2);
    if (s == "avx512") return ClampToSupported(Isa::kAvx512);
    if (s == "neon") return ClampToSupported(Isa::kNeon);
    // Unknown spec: ignore, same as SelectIsaFromSpec.
  }
  return BestSupportedIsa();
}

void Publish(Isa isa) {
  g_active_table.store(TableFor(isa), std::memory_order_release);
  g_active_isa.store(static_cast<int>(isa), std::memory_order_release);
}

const KernelTable& ActiveTable() {
  const KernelTable* table = g_active_table.load(std::memory_order_acquire);
  if (table == nullptr) {
    Publish(DefaultIsa());
    table = g_active_table.load(std::memory_order_acquire);
  }
  return *table;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

bool IsaSupported(Isa isa) { return HostSupports(isa) && TableFor(isa) != nullptr; }

Isa BestSupportedIsa() {
  for (Isa isa : {Isa::kAvx512, Isa::kAvx2, Isa::kNeon}) {
    if (IsaSupported(isa)) return isa;
  }
  return Isa::kScalar;
}

Isa ActiveIsa() {
  int raw = g_active_isa.load(std::memory_order_acquire);
  if (raw < 0) {
    Publish(DefaultIsa());
    raw = g_active_isa.load(std::memory_order_acquire);
  }
  return static_cast<Isa>(raw);
}

Isa ForceIsa(Isa wanted) {
  const Isa selected = ClampToSupported(wanted);
  Publish(selected);
  return selected;
}

bool SelectIsaFromSpec(const std::string& spec) {
  if (spec == "auto") {
    Publish(BestSupportedIsa());
    return true;
  }
  if (spec == "scalar") {
    ForceIsa(Isa::kScalar);
    return true;
  }
  if (spec == "avx2") {
    ForceIsa(Isa::kAvx2);
    return true;
  }
  if (spec == "avx512") {
    ForceIsa(Isa::kAvx512);
    return true;
  }
  if (spec == "neon") {
    ForceIsa(Isa::kNeon);
    return true;
  }
  return false;
}

void ResetIsa() { Publish(DefaultIsa()); }

void MatMul(const float* a, const float* b, float* out, size_t n, size_t k, size_t m) {
  ActiveTable().matmul(a, b, out, n, k, m);
}

void AccumulateATransposeB(const float* a, const float* b, float* out, size_t n, size_t p,
                           size_t q) {
  ActiveTable().acc_atb(a, b, out, n, p, q);
}

void AccumulateABTranspose(const float* a, const float* b, float* out, size_t n, size_t k,
                           size_t m) {
  ActiveTable().acc_abt(a, b, out, n, k, m);
}

void Add(const float* a, const float* b, float* out, size_t n) {
  ActiveTable().add(a, b, out, n);
}

void Axpby(const float* a, const float* b, float scale, float* out, size_t n) {
  ActiveTable().axpby(a, b, scale, out, n);
}

void Hadamard(const float* a, const float* b, float* out, size_t n) {
  ActiveTable().hadamard(a, b, out, n);
}

void GruBlend(const float* z, const float* h, const float* hc, float* out, size_t n) {
  ActiveTable().gru_blend(z, h, hc, out, n);
}

void Int8MatMul(const int8_t* w8, const float* wscale, const int8_t* x8, const float* xscale,
                float* out, size_t n, size_t k, size_t m) {
  ActiveTable().int8_matmul(w8, wscale, x8, xscale, out, n, k, m);
}

}  // namespace simd
}  // namespace deeprest
