// Runtime ISA dispatch for the explicitly vectorized kernels.
//
// The repo's portability stance (CMakeLists: -march=native is opt-in and OFF
// by default) means one binary must run correctly on whatever CPU a pod
// lands on — so vector kernels are selected at runtime, not compile time.
// Every ISA variant is compiled into the binary behind per-function target
// attributes (src/nn/simd/kernels_*.cc); this header is the selection layer:
//
//   ladder:   kAvx512 > kAvx2 > kScalar   (x86)
//             kNeon   > kScalar           (aarch64)
//
// BestSupportedIsa() probes the host once (CPUID via __builtin_cpu_supports
// on x86; compile-time on ARM) and ActiveIsa() starts there. ForceIsa()
// requests a specific rung and FALLS BACK DOWN the ladder when the host (or
// the build) lacks it — forcing kAvx512 on an AVX2-only box lands on kAvx2,
// never on an illegal-instruction crash. The DEEPREST_SIMD environment
// variable ("scalar", "avx2", "avx512", "neon", "auto") applies the same
// clamped forcing at first use, which is how CI pins the portable fallback
// path (tools/ci.sh simd-off leg).
//
// Numerics contract (tested in tests/nn/simd_kernels_test.cc):
//   * Element-wise kernels and every GEMM that blocks only over independent
//     output elements keep each element's reduction in ascending-k order and
//     round every multiply and add separately (no FMA contraction on those
//     paths) — results are BIT-IDENTICAL to the tiled kernels on every ISA.
//   * Lane-parallel reductions (the m == 1 GEMV path, AccumulateABTranspose's
//     double-pair dot products) reassociate across lanes for speed; they are
//     ULP-BOUNDED against the reference, not bit-exact. This is why
//     KernelMode::kSimd is a distinct, opt-in mode: kTiled keeps the strict
//     bit-exactness contract that training determinism relies on.
//
// Raw intrinsics live ONLY under src/nn/simd/ (lint rule
// intrinsics-only-in-simd); the rest of the tree calls through the function
// table below.
#ifndef SRC_NN_SIMD_DISPATCH_H_
#define SRC_NN_SIMD_DISPATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace deeprest {
namespace simd {

enum class Isa : int {
  kScalar = 0,  // portable C++, always available
  kAvx2 = 1,    // AVX2 + FMA (x86)
  kAvx512 = 2,  // AVX-512F (x86)
  kNeon = 3,    // ARM NEON / ASIMD
};

// Human-readable name ("scalar", "avx2", ...), for startup summaries and
// bench rows.
const char* IsaName(Isa isa);

// True when this host can execute `isa` AND the binary carries kernels for
// it. kScalar is always supported.
bool IsaSupported(Isa isa);

// The highest supported rung of the ladder on this host.
Isa BestSupportedIsa();

// The ISA the kSimd kernels currently dispatch to. Initialized on first use
// to BestSupportedIsa(), unless DEEPREST_SIMD names a rung (clamped the same
// way ForceIsa clamps). Global, not thread-local — flip it only in
// single-threaded setup code, like SetKernelMode.
Isa ActiveIsa();

// Requests `wanted` and returns what was actually selected: `wanted` when
// supported, otherwise the nearest supported rung BELOW it (x86 ladder
// kAvx512 -> kAvx2 -> kScalar; kNeon falls back to kScalar on non-ARM).
Isa ForceIsa(Isa wanted);

// Parses a spec string ("auto", "scalar", "avx2", "avx512", "neon") and
// applies it via ForceIsa ("auto" re-selects BestSupportedIsa). Returns
// false (selection unchanged) on an unknown spec. This is the single entry
// point behind both the DEEPREST_SIMD environment variable and the CLI
// --isa flag, so tests can exercise the env path in-process.
bool SelectIsaFromSpec(const std::string& spec);

// Resets the selection to the first-use default (DEEPREST_SIMD if set and
// valid, else BestSupportedIsa).
void ResetIsa();

// ---- Kernel entry points ----
// All matrices are dense row-major float buffers. Dispatch reads ActiveIsa()
// per call through a cached table lookup (two loads; noise next to a GEMM).

// out = a(n x k) * b(k x m). Overwrites out.
void MatMul(const float* a, const float* b, float* out, size_t n, size_t k, size_t m);
// out(p x q) += a(n x p)^T * b(n x q).
void AccumulateATransposeB(const float* a, const float* b, float* out, size_t n, size_t p,
                           size_t q);
// out(n x m) += a(n x k) * b(m x k)^T.
void AccumulateABTranspose(const float* a, const float* b, float* out, size_t n, size_t k,
                           size_t m);

// Element-wise kernels (bit-exact on every ISA: one rounding per element).
// out[i] = a[i] + b[i]
void Add(const float* a, const float* b, float* out, size_t n);
// out[i] = a[i] + scale * b[i]
void Axpby(const float* a, const float* b, float scale, float* out, size_t n);
// out[i] = a[i] * b[i]
void Hadamard(const float* a, const float* b, float* out, size_t n);
// out[i] = z[i]*h[i] + (1 - z[i])*hc[i], with (1 - z) computed as
// -1*z + 1 — the exact op sequence of the fused/batched GRU blend.
void GruBlend(const float* z, const float* h, const float* hc, float* out, size_t n);

// Row-quantized int8 GEMM: out(i, b) = wscale[i] * xscale[b] *
// sum_c w8(i, c) * x8(b, c), accumulated in int32. `w8` is row-major
// (n x k); `x8` is PACKED COLUMN-MAJOR (column b occupies x8[b*k .. b*k+k)),
// so both operands stream contiguously. Exact: int32 accumulation never
// rounds, and k * 127^2 stays far below 2^31 for every model shape.
void Int8MatMul(const int8_t* w8, const float* wscale, const int8_t* x8, const float* xscale,
                float* out, size_t n, size_t k, size_t m);

}  // namespace simd
}  // namespace deeprest

#endif  // SRC_NN_SIMD_DISPATCH_H_
