// Internal kernel-table interface between the dispatch layer and the
// per-ISA translation units. Not for use outside src/nn/simd/.
#ifndef SRC_NN_SIMD_KERNELS_H_
#define SRC_NN_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace deeprest {
namespace simd {
namespace detail {

// One function pointer per kernel entry point (signatures mirror
// dispatch.h). A translation unit that is compiled without support for its
// ISA (e.g. kernels_neon.cc on x86) returns nullptr from its Table()
// function, and the dispatch layer skips that rung.
struct KernelTable {
  void (*matmul)(const float* a, const float* b, float* out, size_t n, size_t k, size_t m);
  void (*acc_atb)(const float* a, const float* b, float* out, size_t n, size_t p, size_t q);
  void (*acc_abt)(const float* a, const float* b, float* out, size_t n, size_t k, size_t m);
  void (*add)(const float* a, const float* b, float* out, size_t n);
  void (*axpby)(const float* a, const float* b, float scale, float* out, size_t n);
  void (*hadamard)(const float* a, const float* b, float* out, size_t n);
  void (*gru_blend)(const float* z, const float* h, const float* hc, float* out, size_t n);
  void (*int8_matmul)(const int8_t* w8, const float* wscale, const int8_t* x8,
                      const float* xscale, float* out, size_t n, size_t k, size_t m);
};

// Each returns a pointer to a static table, or nullptr when the ISA was not
// compiled in (wrong architecture). Host *runtime* support is the dispatch
// layer's job, not these.
const KernelTable* ScalarTable();
const KernelTable* Avx2Table();
const KernelTable* Avx512Table();
const KernelTable* NeonTable();

}  // namespace detail
}  // namespace simd
}  // namespace deeprest

#endif  // SRC_NN_SIMD_KERNELS_H_
