// AVX2 + FMA kernels. Compiled unconditionally on x86 via per-function
// target attributes (no -mavx2 flag), so the binary stays runnable on
// pre-AVX2 hosts — the dispatch layer only routes here after a CPUID probe.
//
// Numerics per the dispatch.h contract:
//   * mat-mat MatMul, AccumulateATransposeB, and all element-wise kernels
//     use separate _mm256_mul_ps / _mm256_add_ps (never FMA): each lane is
//     one independent output element with its k-reduction in ascending
//     order, so results are bit-identical to the tiled kernels.
//   * the m == 1 GEMV path and AccumulateABTranspose use lane-parallel FMA
//     reductions (ULP-bounded, not bit-exact).
#include "src/nn/simd/kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#define DEEPREST_AVX2_TARGET __attribute__((target("avx2,fma")))

namespace deeprest {
namespace simd {
namespace detail {
namespace {

DEEPREST_AVX2_TARGET inline float HSum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

DEEPREST_AVX2_TARGET inline double HSum256d(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d s = _mm_add_pd(lo, hi);
  s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
  return _mm_cvtsd_f64(s);
}

DEEPREST_AVX2_TARGET void MatMulAvx2(const float* A, const float* B, float* O, size_t n,
                                     size_t k, size_t m) {
  if (m == 1) {
    // GEMV: lane-parallel FMA reduction per output row (ULP-bounded).
    for (size_t i = 0; i < n; ++i) {
      const float* arow = A + i * k;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      size_t c = 0;
      for (; c + 32 <= k; c += 32) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + c), _mm256_loadu_ps(B + c), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + c + 8), _mm256_loadu_ps(B + c + 8), acc1);
        acc2 =
            _mm256_fmadd_ps(_mm256_loadu_ps(arow + c + 16), _mm256_loadu_ps(B + c + 16), acc2);
        acc3 =
            _mm256_fmadd_ps(_mm256_loadu_ps(arow + c + 24), _mm256_loadu_ps(B + c + 24), acc3);
      }
      for (; c + 8 <= k; c += 8) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + c), _mm256_loadu_ps(B + c), acc0);
      }
      acc0 = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
      float acc = HSum256(acc0);
      for (; c < k; ++c) {
        acc += arow[c] * B[c];
      }
      O[i] = acc;
    }
    return;
  }
  // Mat-mat: lanes are independent output columns; mul+add keeps each
  // element's ascending-k reduction bit-identical to the tiled kernel.
  // Rows are blocked in fours purely for instruction-level parallelism:
  // four independent accumulator chains hide the add latency and share
  // every B-row load. Each output element still reduces in ascending k
  // with a separate multiply and add, so the blocking changes no rounding.
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* a0 = A + (i + 0) * k;
    const float* a1 = A + (i + 1) * k;
    const float* a2 = A + (i + 2) * k;
    const float* a3 = A + (i + 3) * k;
    float* o0 = O + (i + 0) * m;
    float* o1 = O + (i + 1) * m;
    float* o2 = O + (i + 2) * m;
    float* o3 = O + (i + 3) * m;
    size_t j = 0;
    for (; j + 16 <= m; j += 16) {
      __m256 acc00 = _mm256_setzero_ps();
      __m256 acc01 = _mm256_setzero_ps();
      __m256 acc10 = _mm256_setzero_ps();
      __m256 acc11 = _mm256_setzero_ps();
      __m256 acc20 = _mm256_setzero_ps();
      __m256 acc21 = _mm256_setzero_ps();
      __m256 acc30 = _mm256_setzero_ps();
      __m256 acc31 = _mm256_setzero_ps();
      const float* btile = B + j;
      for (size_t c = 0; c < k; ++c) {
        const float* brow = btile + c * m;
        const __m256 bv0 = _mm256_loadu_ps(brow);
        const __m256 bv1 = _mm256_loadu_ps(brow + 8);
        const __m256 av0 = _mm256_set1_ps(a0[c]);
        acc00 = _mm256_add_ps(acc00, _mm256_mul_ps(av0, bv0));
        acc01 = _mm256_add_ps(acc01, _mm256_mul_ps(av0, bv1));
        const __m256 av1 = _mm256_set1_ps(a1[c]);
        acc10 = _mm256_add_ps(acc10, _mm256_mul_ps(av1, bv0));
        acc11 = _mm256_add_ps(acc11, _mm256_mul_ps(av1, bv1));
        const __m256 av2 = _mm256_set1_ps(a2[c]);
        acc20 = _mm256_add_ps(acc20, _mm256_mul_ps(av2, bv0));
        acc21 = _mm256_add_ps(acc21, _mm256_mul_ps(av2, bv1));
        const __m256 av3 = _mm256_set1_ps(a3[c]);
        acc30 = _mm256_add_ps(acc30, _mm256_mul_ps(av3, bv0));
        acc31 = _mm256_add_ps(acc31, _mm256_mul_ps(av3, bv1));
      }
      _mm256_storeu_ps(o0 + j, acc00);
      _mm256_storeu_ps(o0 + j + 8, acc01);
      _mm256_storeu_ps(o1 + j, acc10);
      _mm256_storeu_ps(o1 + j + 8, acc11);
      _mm256_storeu_ps(o2 + j, acc20);
      _mm256_storeu_ps(o2 + j + 8, acc21);
      _mm256_storeu_ps(o3 + j, acc30);
      _mm256_storeu_ps(o3 + j + 8, acc31);
    }
    for (; j + 8 <= m; j += 8) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      const float* btile = B + j;
      for (size_t c = 0; c < k; ++c) {
        const __m256 bv = _mm256_loadu_ps(btile + c * m);
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(a0[c]), bv));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_set1_ps(a1[c]), bv));
        acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_set1_ps(a2[c]), bv));
        acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_set1_ps(a3[c]), bv));
      }
      _mm256_storeu_ps(o0 + j, acc0);
      _mm256_storeu_ps(o1 + j, acc1);
      _mm256_storeu_ps(o2 + j, acc2);
      _mm256_storeu_ps(o3 + j, acc3);
    }
    for (; j < m; ++j) {
      float s0 = 0.0f;
      float s1 = 0.0f;
      float s2 = 0.0f;
      float s3 = 0.0f;
      for (size_t c = 0; c < k; ++c) {
        const float bv = B[c * m + j];
        s0 += a0[c] * bv;
        s1 += a1[c] * bv;
        s2 += a2[c] * bv;
        s3 += a3[c] * bv;
      }
      o0[j] = s0;
      o1[j] = s1;
      o2[j] = s2;
      o3[j] = s3;
    }
  }
  for (; i < n; ++i) {
    const float* arow = A + i * k;
    float* orow = O + i * m;
    size_t j = 0;
    for (; j + 32 <= m; j += 32) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      const float* btile = B + j;
      for (size_t c = 0; c < k; ++c) {
        const __m256 av = _mm256_set1_ps(arow[c]);
        const float* brow = btile + c * m;
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(av, _mm256_loadu_ps(brow)));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 8)));
        acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 16)));
        acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 24)));
      }
      _mm256_storeu_ps(orow + j, acc0);
      _mm256_storeu_ps(orow + j + 8, acc1);
      _mm256_storeu_ps(orow + j + 16, acc2);
      _mm256_storeu_ps(orow + j + 24, acc3);
    }
    for (; j + 8 <= m; j += 8) {
      __m256 acc = _mm256_setzero_ps();
      const float* btile = B + j;
      for (size_t c = 0; c < k; ++c) {
        acc = _mm256_add_ps(acc,
                            _mm256_mul_ps(_mm256_set1_ps(arow[c]), _mm256_loadu_ps(btile + c * m)));
      }
      _mm256_storeu_ps(orow + j, acc);
    }
    for (; j < m; ++j) {
      float acc = 0.0f;
      for (size_t c = 0; c < k; ++c) {
        acc += arow[c] * B[c * m + j];
      }
      orow[j] = acc;
    }
  }
}

DEEPREST_AVX2_TARGET void AccATBAvx2(const float* A, const float* B, float* O, size_t n,
                                     size_t p, size_t q) {
  if (q == 1) {
    // Lanes are 8 consecutive output rows r; A + i*p + r loads contiguously.
    size_t r = 0;
    for (; r + 8 <= p; r += 8) {
      __m256 acc = _mm256_loadu_ps(O + r);
      for (size_t i = 0; i < n; ++i) {
        acc = _mm256_add_ps(
            acc, _mm256_mul_ps(_mm256_loadu_ps(A + i * p + r), _mm256_set1_ps(B[i])));
      }
      _mm256_storeu_ps(O + r, acc);
    }
    for (; r < p; ++r) {
      float acc = O[r];
      for (size_t i = 0; i < n; ++i) {
        acc += A[i * p + r] * B[i];
      }
      O[r] = acc;
    }
    return;
  }
  // Lanes are output columns of row r; broadcast A[i][r], stream B rows.
  for (size_t r = 0; r < p; ++r) {
    float* orow = O + r * q;
    size_t c = 0;
    for (; c + 16 <= q; c += 16) {
      __m256 acc0 = _mm256_loadu_ps(orow + c);
      __m256 acc1 = _mm256_loadu_ps(orow + c + 8);
      for (size_t i = 0; i < n; ++i) {
        const __m256 av = _mm256_set1_ps(A[i * p + r]);
        const float* brow = B + i * q + c;
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(av, _mm256_loadu_ps(brow)));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 8)));
      }
      _mm256_storeu_ps(orow + c, acc0);
      _mm256_storeu_ps(orow + c + 8, acc1);
    }
    for (; c + 8 <= q; c += 8) {
      __m256 acc = _mm256_loadu_ps(orow + c);
      for (size_t i = 0; i < n; ++i) {
        acc = _mm256_add_ps(
            acc, _mm256_mul_ps(_mm256_set1_ps(A[i * p + r]), _mm256_loadu_ps(B + i * q + c)));
      }
      _mm256_storeu_ps(orow + c, acc);
    }
    for (; c < q; ++c) {
      float acc = orow[c];
      for (size_t i = 0; i < n; ++i) {
        acc += A[i * p + r] * B[i * q + c];
      }
      orow[c] = acc;
    }
  }
}

DEEPREST_AVX2_TARGET void AccABTAvx2(const float* A, const float* B, float* O, size_t n,
                                     size_t k, size_t m) {
  if (k == 1) {
    // Rank-1 accumulate: out[i][j] += a[i] * b[j], with B (m x 1) contiguous.
    // Lane-parallel FMA over output columns — one rounding per element where
    // the reference rounds twice, comfortably inside the ULP envelope. The
    // general dot-per-element path below would spend all its time in setup
    // (the vector body needs k >= 4).
    for (size_t i = 0; i < n; ++i) {
      const __m256 av = _mm256_set1_ps(A[i]);
      float* orow = O + i * m;
      size_t j = 0;
      for (; j + 8 <= m; j += 8) {
        _mm256_storeu_ps(orow + j,
                         _mm256_fmadd_ps(av, _mm256_loadu_ps(B + j), _mm256_loadu_ps(orow + j)));
      }
      for (; j < m; ++j) {
        orow[j] += A[i] * B[j];
      }
    }
    return;
  }
  // Double-accumulated row-dot-row products, like the reference — but the
  // 4-wide double lanes reassociate the sum, so this is ULP-bounded.
  for (size_t i = 0; i < n; ++i) {
    const float* arow = A + i * k;
    float* orow = O + i * m;
    for (size_t j = 0; j < m; ++j) {
      const float* brow = B + j * k;
      __m256d acc = _mm256_setzero_pd();
      size_t c = 0;
      for (; c + 4 <= k; c += 4) {
        const __m256d av = _mm256_cvtps_pd(_mm_loadu_ps(arow + c));
        const __m256d bv = _mm256_cvtps_pd(_mm_loadu_ps(brow + c));
        acc = _mm256_fmadd_pd(av, bv, acc);
      }
      double sum = HSum256d(acc);
      for (; c < k; ++c) {
        sum += static_cast<double>(arow[c]) * brow[c];
      }
      orow[j] += static_cast<float>(sum);
    }
  }
}

DEEPREST_AVX2_TARGET void AddAvx2(const float* a, const float* b, float* out, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) {
    out[i] = a[i] + b[i];
  }
}

DEEPREST_AVX2_TARGET void AxpbyAvx2(const float* a, const float* b, float scale, float* out,
                                    size_t n) {
  const __m256 sv = _mm256_set1_ps(scale);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(sv, _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(a + i), prod));
  }
  for (; i < n; ++i) {
    out[i] = a[i] + scale * b[i];
  }
}

DEEPREST_AVX2_TARGET void HadamardAvx2(const float* a, const float* b, float* out, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) {
    out[i] = a[i] * b[i];
  }
}

DEEPREST_AVX2_TARGET void GruBlendAvx2(const float* z, const float* h, const float* hc,
                                       float* out, size_t n) {
  const __m256 ones = _mm256_set1_ps(1.0f);
  const __m256 negones = _mm256_set1_ps(-1.0f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 zv = _mm256_loadu_ps(z + i);
    const __m256 omz = _mm256_add_ps(_mm256_mul_ps(negones, zv), ones);
    const __m256 zh = _mm256_mul_ps(zv, _mm256_loadu_ps(h + i));
    const __m256 zc = _mm256_mul_ps(omz, _mm256_loadu_ps(hc + i));
    _mm256_storeu_ps(out + i, _mm256_add_ps(zh, zc));
  }
  for (; i < n; ++i) {
    const float omz = -1.0f * z[i] + 1.0f;
    out[i] = (z[i] * h[i]) + (omz * hc[i]);
  }
}

DEEPREST_AVX2_TARGET void Int8MatMulAvx2(const int8_t* w8, const float* wscale,
                                         const int8_t* x8, const float* xscale, float* out,
                                         size_t n, size_t k, size_t m) {
  for (size_t i = 0; i < n; ++i) {
    const int8_t* wrow = w8 + i * k;
    const float ws = wscale[i];
    float* orow = out + i * m;
    for (size_t b = 0; b < m; ++b) {
      const int8_t* xcol = x8 + b * k;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      size_t c = 0;
      for (; c + 32 <= k; c += 32) {
        // 16 int8 -> 16 int16 lanes; madd pairs into 8 exact int32 sums.
        // Two independent chains keep the madd pipeline full.
        const __m256i wv0 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(wrow + c)));
        const __m256i xv0 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(xcol + c)));
        acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(wv0, xv0));
        const __m256i wv1 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(wrow + c + 16)));
        const __m256i xv1 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(xcol + c + 16)));
        acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(wv1, xv1));
      }
      for (; c + 16 <= k; c += 16) {
        const __m256i wv = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(wrow + c)));
        const __m256i xv = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(xcol + c)));
        acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(wv, xv));
      }
      const __m256i acc = _mm256_add_epi32(acc0, acc1);
      const __m128i lo = _mm256_castsi256_si128(acc);
      const __m128i hi = _mm256_extracti128_si256(acc, 1);
      __m128i s = _mm_add_epi32(lo, hi);
      s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
      s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x55));
      int32_t sum = _mm_cvtsi128_si32(s);
      for (; c < k; ++c) {
        sum += static_cast<int32_t>(wrow[c]) * static_cast<int32_t>(xcol[c]);
      }
      orow[b] = static_cast<float>(sum) * (ws * xscale[b]);
    }
  }
}

const KernelTable kAvx2Table = {
    MatMulAvx2, AccATBAvx2,   AccABTAvx2,   AddAvx2,
    AxpbyAvx2,  HadamardAvx2, GruBlendAvx2, Int8MatMulAvx2,
};

}  // namespace

const KernelTable* Avx2Table() { return &kAvx2Table; }

}  // namespace detail
}  // namespace simd
}  // namespace deeprest

#else  // non-x86

namespace deeprest {
namespace simd {
namespace detail {

const KernelTable* Avx2Table() { return nullptr; }

}  // namespace detail
}  // namespace simd
}  // namespace deeprest

#endif
