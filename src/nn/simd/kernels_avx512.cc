// AVX-512F kernels (16-lane zmm). Same numerics contract as the AVX2 TU:
// mat-mat / AccumulateATransposeB / element-wise paths use separate mul+add
// per lane (bit-identical to tiled); the GEMV path and AccumulateABTranspose
// use FMA lane reductions (ULP-bounded). The int8 kernel stays at 256 bits
// (madd_epi16 needs AVX512BW to go wider); dispatch guarantees AVX2+FMA is
// present whenever this table is selected.
#include "src/nn/simd/kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

// GCC 12 flags the _mm512_undefined_pd() pass-through operand inside the
// header's own _mm512_cvtps_pd / _mm512_extractf64x4_pd as
// maybe-uninitialized; the lanes are fully overwritten (mask = -1).
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

#define DEEPREST_AVX512_TARGET __attribute__((target("avx512f")))
#define DEEPREST_AVX512_INT8_TARGET __attribute__((target("avx512f,avx2,fma")))

namespace deeprest {
namespace simd {
namespace detail {
namespace {

// Hand-rolled horizontal sums: GCC 12's _mm512_reduce_add_* go through
// _mm256_undefined_pd and trip -Wmaybe-uninitialized.
DEEPREST_AVX512_TARGET inline float HSum512(__m512 v) {
  const __m256 lo = _mm512_castps512_ps256(v);
  const __m256 hi = _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(v), 1));
  const __m256 s256 = _mm256_add_ps(lo, hi);
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(s256), _mm256_extractf128_ps(s256, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

DEEPREST_AVX512_TARGET inline double HSum512d(__m512d v) {
  const __m256d s256 = _mm256_add_pd(_mm512_castpd512_pd256(v), _mm512_extractf64x4_pd(v, 1));
  __m128d s = _mm_add_pd(_mm256_castpd256_pd128(s256), _mm256_extractf128_pd(s256, 1));
  s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
  return _mm_cvtsd_f64(s);
}

DEEPREST_AVX512_TARGET void MatMulAvx512(const float* A, const float* B, float* O, size_t n,
                                         size_t k, size_t m) {
  if (m == 1) {
    for (size_t i = 0; i < n; ++i) {
      const float* arow = A + i * k;
      __m512 acc0 = _mm512_setzero_ps();
      __m512 acc1 = _mm512_setzero_ps();
      size_t c = 0;
      for (; c + 32 <= k; c += 32) {
        acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(arow + c), _mm512_loadu_ps(B + c), acc0);
        acc1 =
            _mm512_fmadd_ps(_mm512_loadu_ps(arow + c + 16), _mm512_loadu_ps(B + c + 16), acc1);
      }
      for (; c + 16 <= k; c += 16) {
        acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(arow + c), _mm512_loadu_ps(B + c), acc0);
      }
      float acc = HSum512(_mm512_add_ps(acc0, acc1));
      for (; c < k; ++c) {
        acc += arow[c] * B[c];
      }
      O[i] = acc;
    }
    return;
  }
  // Mat-mat rows are blocked in fours purely for instruction-level
  // parallelism: four independent accumulator chains hide the add latency
  // and share every B-row load. Each output element still reduces in
  // ascending k with a separate multiply and add, so the blocking changes
  // no rounding — results stay bit-identical to the tiled kernel.
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* a0 = A + (i + 0) * k;
    const float* a1 = A + (i + 1) * k;
    const float* a2 = A + (i + 2) * k;
    const float* a3 = A + (i + 3) * k;
    float* o0 = O + (i + 0) * m;
    float* o1 = O + (i + 1) * m;
    float* o2 = O + (i + 2) * m;
    float* o3 = O + (i + 3) * m;
    size_t j = 0;
    for (; j + 16 <= m; j += 16) {
      __m512 acc0 = _mm512_setzero_ps();
      __m512 acc1 = _mm512_setzero_ps();
      __m512 acc2 = _mm512_setzero_ps();
      __m512 acc3 = _mm512_setzero_ps();
      const float* btile = B + j;
      for (size_t c = 0; c < k; ++c) {
        const __m512 bv = _mm512_loadu_ps(btile + c * m);
        acc0 = _mm512_add_ps(acc0, _mm512_mul_ps(_mm512_set1_ps(a0[c]), bv));
        acc1 = _mm512_add_ps(acc1, _mm512_mul_ps(_mm512_set1_ps(a1[c]), bv));
        acc2 = _mm512_add_ps(acc2, _mm512_mul_ps(_mm512_set1_ps(a2[c]), bv));
        acc3 = _mm512_add_ps(acc3, _mm512_mul_ps(_mm512_set1_ps(a3[c]), bv));
      }
      _mm512_storeu_ps(o0 + j, acc0);
      _mm512_storeu_ps(o1 + j, acc1);
      _mm512_storeu_ps(o2 + j, acc2);
      _mm512_storeu_ps(o3 + j, acc3);
    }
    if (j < m) {
      const __mmask16 tail = static_cast<__mmask16>((1u << (m - j)) - 1u);
      __m512 acc0 = _mm512_setzero_ps();
      __m512 acc1 = _mm512_setzero_ps();
      __m512 acc2 = _mm512_setzero_ps();
      __m512 acc3 = _mm512_setzero_ps();
      const float* btile = B + j;
      for (size_t c = 0; c < k; ++c) {
        const __m512 bv = _mm512_maskz_loadu_ps(tail, btile + c * m);
        acc0 = _mm512_add_ps(acc0, _mm512_mul_ps(_mm512_set1_ps(a0[c]), bv));
        acc1 = _mm512_add_ps(acc1, _mm512_mul_ps(_mm512_set1_ps(a1[c]), bv));
        acc2 = _mm512_add_ps(acc2, _mm512_mul_ps(_mm512_set1_ps(a2[c]), bv));
        acc3 = _mm512_add_ps(acc3, _mm512_mul_ps(_mm512_set1_ps(a3[c]), bv));
      }
      _mm512_mask_storeu_ps(o0 + j, tail, acc0);
      _mm512_mask_storeu_ps(o1 + j, tail, acc1);
      _mm512_mask_storeu_ps(o2 + j, tail, acc2);
      _mm512_mask_storeu_ps(o3 + j, tail, acc3);
    }
  }
  for (; i < n; ++i) {
    const float* arow = A + i * k;
    float* orow = O + i * m;
    size_t j = 0;
    for (; j + 32 <= m; j += 32) {
      __m512 acc0 = _mm512_setzero_ps();
      __m512 acc1 = _mm512_setzero_ps();
      const float* btile = B + j;
      for (size_t c = 0; c < k; ++c) {
        const __m512 av = _mm512_set1_ps(arow[c]);
        const float* brow = btile + c * m;
        acc0 = _mm512_add_ps(acc0, _mm512_mul_ps(av, _mm512_loadu_ps(brow)));
        acc1 = _mm512_add_ps(acc1, _mm512_mul_ps(av, _mm512_loadu_ps(brow + 16)));
      }
      _mm512_storeu_ps(orow + j, acc0);
      _mm512_storeu_ps(orow + j + 16, acc1);
    }
    for (; j + 16 <= m; j += 16) {
      __m512 acc = _mm512_setzero_ps();
      const float* btile = B + j;
      for (size_t c = 0; c < k; ++c) {
        acc = _mm512_add_ps(acc,
                            _mm512_mul_ps(_mm512_set1_ps(arow[c]), _mm512_loadu_ps(btile + c * m)));
      }
      _mm512_storeu_ps(orow + j, acc);
    }
    if (j < m) {
      // Masked tail: still one independent output element per active lane.
      const __mmask16 tail = static_cast<__mmask16>((1u << (m - j)) - 1u);
      __m512 acc = _mm512_setzero_ps();
      const float* btile = B + j;
      for (size_t c = 0; c < k; ++c) {
        const __m512 bv = _mm512_maskz_loadu_ps(tail, btile + c * m);
        acc = _mm512_add_ps(acc, _mm512_mul_ps(_mm512_set1_ps(arow[c]), bv));
      }
      _mm512_mask_storeu_ps(orow + j, tail, acc);
    }
  }
}

DEEPREST_AVX512_TARGET void AccATBAvx512(const float* A, const float* B, float* O, size_t n,
                                         size_t p, size_t q) {
  if (q == 1) {
    size_t r = 0;
    for (; r + 16 <= p; r += 16) {
      __m512 acc = _mm512_loadu_ps(O + r);
      for (size_t i = 0; i < n; ++i) {
        acc = _mm512_add_ps(
            acc, _mm512_mul_ps(_mm512_loadu_ps(A + i * p + r), _mm512_set1_ps(B[i])));
      }
      _mm512_storeu_ps(O + r, acc);
    }
    if (r < p) {
      const __mmask16 tail = static_cast<__mmask16>((1u << (p - r)) - 1u);
      __m512 acc = _mm512_maskz_loadu_ps(tail, O + r);
      for (size_t i = 0; i < n; ++i) {
        const __m512 av = _mm512_maskz_loadu_ps(tail, A + i * p + r);
        acc = _mm512_add_ps(acc, _mm512_mul_ps(av, _mm512_set1_ps(B[i])));
      }
      _mm512_mask_storeu_ps(O + r, tail, acc);
    }
    return;
  }
  for (size_t r = 0; r < p; ++r) {
    float* orow = O + r * q;
    size_t c = 0;
    for (; c + 16 <= q; c += 16) {
      __m512 acc = _mm512_loadu_ps(orow + c);
      for (size_t i = 0; i < n; ++i) {
        acc = _mm512_add_ps(
            acc, _mm512_mul_ps(_mm512_set1_ps(A[i * p + r]), _mm512_loadu_ps(B + i * q + c)));
      }
      _mm512_storeu_ps(orow + c, acc);
    }
    if (c < q) {
      const __mmask16 tail = static_cast<__mmask16>((1u << (q - c)) - 1u);
      __m512 acc = _mm512_maskz_loadu_ps(tail, orow + c);
      for (size_t i = 0; i < n; ++i) {
        const __m512 bv = _mm512_maskz_loadu_ps(tail, B + i * q + c);
        acc = _mm512_add_ps(acc, _mm512_mul_ps(_mm512_set1_ps(A[i * p + r]), bv));
      }
      _mm512_mask_storeu_ps(orow + c, tail, acc);
    }
  }
}

DEEPREST_AVX512_TARGET void AccABTAvx512(const float* A, const float* B, float* O, size_t n,
                                         size_t k, size_t m) {
  if (k == 1) {
    // Rank-1 accumulate: out[i][j] += a[i] * b[j], with B (m x 1) contiguous.
    // Lane-parallel FMA over output columns — one rounding per element where
    // the reference rounds twice, comfortably inside the ULP envelope. The
    // general dot-per-element path below would spend all its time in setup
    // (the vector body needs k >= 8).
    for (size_t i = 0; i < n; ++i) {
      const __m512 av = _mm512_set1_ps(A[i]);
      float* orow = O + i * m;
      size_t j = 0;
      for (; j + 16 <= m; j += 16) {
        _mm512_storeu_ps(
            orow + j, _mm512_fmadd_ps(av, _mm512_loadu_ps(B + j), _mm512_loadu_ps(orow + j)));
      }
      for (; j < m; ++j) {
        orow[j] += A[i] * B[j];
      }
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    const float* arow = A + i * k;
    float* orow = O + i * m;
    for (size_t j = 0; j < m; ++j) {
      const float* brow = B + j * k;
      __m512d acc = _mm512_setzero_pd();
      size_t c = 0;
      for (; c + 8 <= k; c += 8) {
        const __m512d av = _mm512_cvtps_pd(_mm256_loadu_ps(arow + c));
        const __m512d bv = _mm512_cvtps_pd(_mm256_loadu_ps(brow + c));
        acc = _mm512_fmadd_pd(av, bv, acc);
      }
      double sum = HSum512d(acc);
      for (; c < k; ++c) {
        sum += static_cast<double>(arow[c]) * brow[c];
      }
      orow[j] += static_cast<float>(sum);
    }
  }
}

DEEPREST_AVX512_TARGET void AddAvx512(const float* a, const float* b, float* out, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(out + i, _mm512_add_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i)));
  }
  for (; i < n; ++i) {
    out[i] = a[i] + b[i];
  }
}

DEEPREST_AVX512_TARGET void AxpbyAvx512(const float* a, const float* b, float scale, float* out,
                                        size_t n) {
  const __m512 sv = _mm512_set1_ps(scale);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 prod = _mm512_mul_ps(sv, _mm512_loadu_ps(b + i));
    _mm512_storeu_ps(out + i, _mm512_add_ps(_mm512_loadu_ps(a + i), prod));
  }
  for (; i < n; ++i) {
    out[i] = a[i] + scale * b[i];
  }
}

DEEPREST_AVX512_TARGET void HadamardAvx512(const float* a, const float* b, float* out,
                                           size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(out + i, _mm512_mul_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i)));
  }
  for (; i < n; ++i) {
    out[i] = a[i] * b[i];
  }
}

DEEPREST_AVX512_TARGET void GruBlendAvx512(const float* z, const float* h, const float* hc,
                                           float* out, size_t n) {
  const __m512 ones = _mm512_set1_ps(1.0f);
  const __m512 negones = _mm512_set1_ps(-1.0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 zv = _mm512_loadu_ps(z + i);
    const __m512 omz = _mm512_add_ps(_mm512_mul_ps(negones, zv), ones);
    const __m512 zh = _mm512_mul_ps(zv, _mm512_loadu_ps(h + i));
    const __m512 zc = _mm512_mul_ps(omz, _mm512_loadu_ps(hc + i));
    _mm512_storeu_ps(out + i, _mm512_add_ps(zh, zc));
  }
  for (; i < n; ++i) {
    const float omz = -1.0f * z[i] + 1.0f;
    out[i] = (z[i] * h[i]) + (omz * hc[i]);
  }
}

DEEPREST_AVX512_INT8_TARGET void Int8MatMulAvx512(const int8_t* w8, const float* wscale,
                                                  const int8_t* x8, const float* xscale,
                                                  float* out, size_t n, size_t k, size_t m) {
  for (size_t i = 0; i < n; ++i) {
    const int8_t* wrow = w8 + i * k;
    const float ws = wscale[i];
    float* orow = out + i * m;
    for (size_t b = 0; b < m; ++b) {
      const int8_t* xcol = x8 + b * k;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      size_t c = 0;
      for (; c + 32 <= k; c += 32) {
        const __m256i wv0 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(wrow + c)));
        const __m256i xv0 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(xcol + c)));
        acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(wv0, xv0));
        const __m256i wv1 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(wrow + c + 16)));
        const __m256i xv1 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(xcol + c + 16)));
        acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(wv1, xv1));
      }
      for (; c + 16 <= k; c += 16) {
        const __m256i wv = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(wrow + c)));
        const __m256i xv = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(xcol + c)));
        acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(wv, xv));
      }
      const __m256i acc = _mm256_add_epi32(acc0, acc1);
      const __m128i lo = _mm256_castsi256_si128(acc);
      const __m128i hi = _mm256_extracti128_si256(acc, 1);
      __m128i s = _mm_add_epi32(lo, hi);
      s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
      s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x55));
      int32_t sum = _mm_cvtsi128_si32(s);
      for (; c < k; ++c) {
        sum += static_cast<int32_t>(wrow[c]) * static_cast<int32_t>(xcol[c]);
      }
      orow[b] = static_cast<float>(sum) * (ws * xscale[b]);
    }
  }
}

const KernelTable kAvx512Table = {
    MatMulAvx512, AccATBAvx512,   AccABTAvx512,   AddAvx512,
    AxpbyAvx512,  HadamardAvx512, GruBlendAvx512, Int8MatMulAvx512,
};

}  // namespace

const KernelTable* Avx512Table() { return &kAvx512Table; }

}  // namespace detail
}  // namespace simd
}  // namespace deeprest

#else  // non-x86

namespace deeprest {
namespace simd {
namespace detail {

const KernelTable* Avx512Table() { return nullptr; }

}  // namespace detail
}  // namespace simd
}  // namespace deeprest

#endif
