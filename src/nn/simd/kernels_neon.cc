// NEON/ASIMD kernels for aarch64. Same numerics contract as the x86 TUs:
// mat-mat / AccumulateATransposeB / element-wise paths use separate
// vmulq+vaddq (bit-identical to tiled); the GEMV path and
// AccumulateABTranspose use fused-multiply lane reductions (ULP-bounded).
// On non-ARM builds this TU contributes only a null table.
#include "src/nn/simd/kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace deeprest {
namespace simd {
namespace detail {
namespace {

void MatMulNeon(const float* A, const float* B, float* O, size_t n, size_t k, size_t m) {
  if (m == 1) {
    for (size_t i = 0; i < n; ++i) {
      const float* arow = A + i * k;
      float32x4_t acc0 = vdupq_n_f32(0.0f);
      float32x4_t acc1 = vdupq_n_f32(0.0f);
      size_t c = 0;
      for (; c + 8 <= k; c += 8) {
        acc0 = vfmaq_f32(acc0, vld1q_f32(arow + c), vld1q_f32(B + c));
        acc1 = vfmaq_f32(acc1, vld1q_f32(arow + c + 4), vld1q_f32(B + c + 4));
      }
      for (; c + 4 <= k; c += 4) {
        acc0 = vfmaq_f32(acc0, vld1q_f32(arow + c), vld1q_f32(B + c));
      }
      float acc = vaddvq_f32(vaddq_f32(acc0, acc1));
      for (; c < k; ++c) {
        acc += arow[c] * B[c];
      }
      O[i] = acc;
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    const float* arow = A + i * k;
    float* orow = O + i * m;
    size_t j = 0;
    for (; j + 16 <= m; j += 16) {
      float32x4_t acc0 = vdupq_n_f32(0.0f);
      float32x4_t acc1 = vdupq_n_f32(0.0f);
      float32x4_t acc2 = vdupq_n_f32(0.0f);
      float32x4_t acc3 = vdupq_n_f32(0.0f);
      const float* btile = B + j;
      for (size_t c = 0; c < k; ++c) {
        const float32x4_t av = vdupq_n_f32(arow[c]);
        const float* brow = btile + c * m;
        acc0 = vaddq_f32(acc0, vmulq_f32(av, vld1q_f32(brow)));
        acc1 = vaddq_f32(acc1, vmulq_f32(av, vld1q_f32(brow + 4)));
        acc2 = vaddq_f32(acc2, vmulq_f32(av, vld1q_f32(brow + 8)));
        acc3 = vaddq_f32(acc3, vmulq_f32(av, vld1q_f32(brow + 12)));
      }
      vst1q_f32(orow + j, acc0);
      vst1q_f32(orow + j + 4, acc1);
      vst1q_f32(orow + j + 8, acc2);
      vst1q_f32(orow + j + 12, acc3);
    }
    for (; j + 4 <= m; j += 4) {
      float32x4_t acc = vdupq_n_f32(0.0f);
      const float* btile = B + j;
      for (size_t c = 0; c < k; ++c) {
        acc = vaddq_f32(acc, vmulq_f32(vdupq_n_f32(arow[c]), vld1q_f32(btile + c * m)));
      }
      vst1q_f32(orow + j, acc);
    }
    for (; j < m; ++j) {
      float acc = 0.0f;
      for (size_t c = 0; c < k; ++c) {
        acc += arow[c] * B[c * m + j];
      }
      orow[j] = acc;
    }
  }
}

void AccATBNeon(const float* A, const float* B, float* O, size_t n, size_t p, size_t q) {
  if (q == 1) {
    size_t r = 0;
    for (; r + 4 <= p; r += 4) {
      float32x4_t acc = vld1q_f32(O + r);
      for (size_t i = 0; i < n; ++i) {
        acc = vaddq_f32(acc, vmulq_f32(vld1q_f32(A + i * p + r), vdupq_n_f32(B[i])));
      }
      vst1q_f32(O + r, acc);
    }
    for (; r < p; ++r) {
      float acc = O[r];
      for (size_t i = 0; i < n; ++i) {
        acc += A[i * p + r] * B[i];
      }
      O[r] = acc;
    }
    return;
  }
  for (size_t r = 0; r < p; ++r) {
    float* orow = O + r * q;
    size_t c = 0;
    for (; c + 4 <= q; c += 4) {
      float32x4_t acc = vld1q_f32(orow + c);
      for (size_t i = 0; i < n; ++i) {
        acc = vaddq_f32(acc, vmulq_f32(vdupq_n_f32(A[i * p + r]), vld1q_f32(B + i * q + c)));
      }
      vst1q_f32(orow + c, acc);
    }
    for (; c < q; ++c) {
      float acc = orow[c];
      for (size_t i = 0; i < n; ++i) {
        acc += A[i * p + r] * B[i * q + c];
      }
      orow[c] = acc;
    }
  }
}

void AccABTNeon(const float* A, const float* B, float* O, size_t n, size_t k, size_t m) {
  for (size_t i = 0; i < n; ++i) {
    const float* arow = A + i * k;
    float* orow = O + i * m;
    for (size_t j = 0; j < m; ++j) {
      const float* brow = B + j * k;
      float64x2_t acc = vdupq_n_f64(0.0);
      size_t c = 0;
      for (; c + 2 <= k; c += 2) {
        const float64x2_t av = vcvt_f64_f32(vld1_f32(arow + c));
        const float64x2_t bv = vcvt_f64_f32(vld1_f32(brow + c));
        acc = vfmaq_f64(acc, av, bv);
      }
      double sum = vaddvq_f64(acc);
      for (; c < k; ++c) {
        sum += static_cast<double>(arow[c]) * brow[c];
      }
      orow[j] += static_cast<float>(sum);
    }
  }
}

void AddNeon(const float* a, const float* b, float* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) {
    out[i] = a[i] + b[i];
  }
}

void AxpbyNeon(const float* a, const float* b, float scale, float* out, size_t n) {
  const float32x4_t sv = vdupq_n_f32(scale);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t prod = vmulq_f32(sv, vld1q_f32(b + i));
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(a + i), prod));
  }
  for (; i < n; ++i) {
    out[i] = a[i] + scale * b[i];
  }
}

void HadamardNeon(const float* a, const float* b, float* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) {
    out[i] = a[i] * b[i];
  }
}

void GruBlendNeon(const float* z, const float* h, const float* hc, float* out, size_t n) {
  const float32x4_t ones = vdupq_n_f32(1.0f);
  const float32x4_t negones = vdupq_n_f32(-1.0f);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t zv = vld1q_f32(z + i);
    const float32x4_t omz = vaddq_f32(vmulq_f32(negones, zv), ones);
    const float32x4_t zh = vmulq_f32(zv, vld1q_f32(h + i));
    const float32x4_t zc = vmulq_f32(omz, vld1q_f32(hc + i));
    vst1q_f32(out + i, vaddq_f32(zh, zc));
  }
  for (; i < n; ++i) {
    const float omz = -1.0f * z[i] + 1.0f;
    out[i] = (z[i] * h[i]) + (omz * hc[i]);
  }
}

void Int8MatMulNeon(const int8_t* w8, const float* wscale, const int8_t* x8,
                    const float* xscale, float* out, size_t n, size_t k, size_t m) {
  for (size_t i = 0; i < n; ++i) {
    const int8_t* wrow = w8 + i * k;
    const float ws = wscale[i];
    float* orow = out + i * m;
    for (size_t b = 0; b < m; ++b) {
      const int8_t* xcol = x8 + b * k;
      int32x4_t acc = vdupq_n_s32(0);
      size_t c = 0;
      for (; c + 8 <= k; c += 8) {
        const int16x8_t prod = vmull_s8(vld1_s8(wrow + c), vld1_s8(xcol + c));
        acc = vpadalq_s16(acc, prod);
      }
      int32_t sum = vaddvq_s32(acc);
      for (; c < k; ++c) {
        sum += static_cast<int32_t>(wrow[c]) * static_cast<int32_t>(xcol[c]);
      }
      orow[b] = static_cast<float>(sum) * (ws * xscale[b]);
    }
  }
}

const KernelTable kNeonTable = {
    MatMulNeon, AccATBNeon,   AccABTNeon,   AddNeon,
    AxpbyNeon,  HadamardNeon, GruBlendNeon, Int8MatMulNeon,
};

}  // namespace

const KernelTable* NeonTable() { return &kNeonTable; }

}  // namespace detail
}  // namespace simd
}  // namespace deeprest

#else  // non-ARM

namespace deeprest {
namespace simd {
namespace detail {

const KernelTable* NeonTable() { return nullptr; }

}  // namespace detail
}  // namespace simd
}  // namespace deeprest

#endif
