// Portable fallback kernels — the kScalar rung of the dispatch ladder.
//
// These are plain C++ re-statements of the tiled kernels in matrix.cc over
// raw pointers: blocking only over independent output elements, every
// element's k-reduction in ascending order, one rounding per multiply and
// add. On this rung even the GEMV and AccumulateABTranspose paths keep the
// sequential reduction order, so kScalar is bit-identical to kTiled on every
// entry point — the property the ci.sh simd-off leg pins so the fallback
// path cannot rot.
#include "src/nn/simd/kernels.h"

#include <cmath>

namespace deeprest {
namespace simd {
namespace detail {
namespace {

void MatMulScalar(const float* A, const float* B, float* O, size_t n, size_t k, size_t m) {
  if (m == 1) {
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const float* a0 = A + (i + 0) * k;
      const float* a1 = A + (i + 1) * k;
      const float* a2 = A + (i + 2) * k;
      const float* a3 = A + (i + 3) * k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (size_t c = 0; c < k; ++c) {
        const float bv = B[c];
        acc0 += a0[c] * bv;
        acc1 += a1[c] * bv;
        acc2 += a2[c] * bv;
        acc3 += a3[c] * bv;
      }
      O[i + 0] = acc0;
      O[i + 1] = acc1;
      O[i + 2] = acc2;
      O[i + 3] = acc3;
    }
    for (; i < n; ++i) {
      const float* arow = A + i * k;
      float acc = 0.0f;
      for (size_t c = 0; c < k; ++c) {
        acc += arow[c] * B[c];
      }
      O[i] = acc;
    }
    return;
  }
  constexpr size_t kJTile = 16;
  for (size_t i = 0; i < n; ++i) {
    const float* arow = A + i * k;
    float* orow = O + i * m;
    size_t j0 = 0;
    for (; j0 + kJTile <= m; j0 += kJTile) {
      float acc[kJTile] = {0.0f};
      const float* btile = B + j0;
      for (size_t c = 0; c < k; ++c) {
        const float av = arow[c];
        const float* brow = btile + c * m;
        for (size_t j = 0; j < kJTile; ++j) {
          acc[j] += av * brow[j];
        }
      }
      for (size_t j = 0; j < kJTile; ++j) {
        orow[j0 + j] = acc[j];
      }
    }
    const size_t rem = m - j0;
    if (rem > 0) {
      float acc[kJTile] = {0.0f};
      const float* btile = B + j0;
      for (size_t c = 0; c < k; ++c) {
        const float av = arow[c];
        const float* brow = btile + c * m;
        for (size_t j = 0; j < rem; ++j) {
          acc[j] += av * brow[j];
        }
      }
      for (size_t j = 0; j < rem; ++j) {
        orow[j0 + j] = acc[j];
      }
    }
  }
}

void AccATBScalar(const float* A, const float* B, float* O, size_t n, size_t p, size_t q) {
  if (q == 1) {
    size_t r = 0;
    for (; r + 4 <= p; r += 4) {
      float acc0 = O[r + 0], acc1 = O[r + 1], acc2 = O[r + 2], acc3 = O[r + 3];
      for (size_t i = 0; i < n; ++i) {
        const float bv = B[i];
        const float* arow = A + i * p + r;
        acc0 += arow[0] * bv;
        acc1 += arow[1] * bv;
        acc2 += arow[2] * bv;
        acc3 += arow[3] * bv;
      }
      O[r + 0] = acc0;
      O[r + 1] = acc1;
      O[r + 2] = acc2;
      O[r + 3] = acc3;
    }
    for (; r < p; ++r) {
      float acc = O[r];
      for (size_t i = 0; i < n; ++i) {
        acc += A[i * p + r] * B[i];
      }
      O[r] = acc;
    }
    return;
  }
  size_t r = 0;
  for (; r + 4 <= p; r += 4) {
    float* o0 = O + (r + 0) * q;
    float* o1 = O + (r + 1) * q;
    float* o2 = O + (r + 2) * q;
    float* o3 = O + (r + 3) * q;
    for (size_t i = 0; i < n; ++i) {
      const float* arow = A + i * p + r;
      const float f0 = arow[0];
      const float f1 = arow[1];
      const float f2 = arow[2];
      const float f3 = arow[3];
      const float* brow = B + i * q;
      for (size_t c = 0; c < q; ++c) {
        const float bv = brow[c];
        o0[c] += f0 * bv;
        o1[c] += f1 * bv;
        o2[c] += f2 * bv;
        o3[c] += f3 * bv;
      }
    }
  }
  for (; r < p; ++r) {
    float* orow = O + r * q;
    for (size_t i = 0; i < n; ++i) {
      const float ar = A[i * p + r];
      const float* brow = B + i * q;
      for (size_t c = 0; c < q; ++c) {
        orow[c] += ar * brow[c];
      }
    }
  }
}

void AccABTScalar(const float* A, const float* B, float* O, size_t n, size_t k, size_t m) {
  for (size_t i = 0; i < n; ++i) {
    const float* arow = A + i * k;
    float* orow = O + i * m;
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const float* b0 = B + (j + 0) * k;
      const float* b1 = B + (j + 1) * k;
      const float* b2 = B + (j + 2) * k;
      const float* b3 = B + (j + 3) * k;
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (size_t c = 0; c < k; ++c) {
        const double av = arow[c];
        acc0 += av * b0[c];
        acc1 += av * b1[c];
        acc2 += av * b2[c];
        acc3 += av * b3[c];
      }
      orow[j + 0] += static_cast<float>(acc0);
      orow[j + 1] += static_cast<float>(acc1);
      orow[j + 2] += static_cast<float>(acc2);
      orow[j + 3] += static_cast<float>(acc3);
    }
    for (; j < m; ++j) {
      const float* brow = B + j * k;
      double acc = 0.0;
      for (size_t c = 0; c < k; ++c) {
        acc += static_cast<double>(arow[c]) * brow[c];
      }
      orow[j] += static_cast<float>(acc);
    }
  }
}

void AddScalar(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = a[i] + b[i];
  }
}

void AxpbyScalar(const float* a, const float* b, float scale, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = a[i] + scale * b[i];
  }
}

void HadamardScalar(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = a[i] * b[i];
  }
}

void GruBlendScalar(const float* z, const float* h, const float* hc, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const float omz = -1.0f * z[i] + 1.0f;
    out[i] = (z[i] * h[i]) + (omz * hc[i]);
  }
}

void Int8MatMulScalar(const int8_t* w8, const float* wscale, const int8_t* x8,
                      const float* xscale, float* out, size_t n, size_t k, size_t m) {
  for (size_t i = 0; i < n; ++i) {
    const int8_t* wrow = w8 + i * k;
    const float ws = wscale[i];
    float* orow = out + i * m;
    for (size_t b = 0; b < m; ++b) {
      const int8_t* xcol = x8 + b * k;
      int32_t acc = 0;
      for (size_t c = 0; c < k; ++c) {
        acc += static_cast<int32_t>(wrow[c]) * static_cast<int32_t>(xcol[c]);
      }
      orow[b] = static_cast<float>(acc) * (ws * xscale[b]);
    }
  }
}

const KernelTable kScalarTable = {
    MatMulScalar, AccATBScalar,    AccABTScalar,   AddScalar,
    AxpbyScalar,  HadamardScalar,  GruBlendScalar, Int8MatMulScalar,
};

}  // namespace

const KernelTable* ScalarTable() { return &kScalarTable; }

}  // namespace detail
}  // namespace simd
}  // namespace deeprest
