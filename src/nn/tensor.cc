#include "src/nn/tensor.h"

#include <cassert>
#include <utility>

namespace deeprest {

namespace {

std::atomic<uint64_t> g_sequence{0};

// Freelist of recycled nodes, one per thread. Nodes keep the capacity of
// their value/grad/saved matrices across lives, so steady-state training
// performs no allocator calls for graph construction. The cap bounds how
// much matrix capacity an idle thread can pin.
//
// This file is the ONLY translation unit allowed to `new`/`delete` a
// TensorNode (tools/lint rule no-raw-tensor-node-new, allowlisted here):
// a node allocated anywhere else would skip the freelist accounting and
// break the O(1)-allocations-per-step guarantee.
constexpr size_t kMaxPooledNodes = size_t{1} << 15;

struct NodePool {
  std::vector<TensorNode*> free;
  ~NodePool();
};

// Trivially-destructible flag that stays readable after the pool's own
// thread_local destructor has run (releases during late thread teardown then
// fall back to plain delete).
thread_local bool g_pool_destroyed = false;

NodePool& Pool() {
  thread_local NodePool pool;
  return pool;
}

NodePool::~NodePool() {
  g_pool_destroyed = true;
  for (TensorNode* n : free) {
    delete n;
  }
  free.clear();
}

}  // namespace

namespace detail {

TensorNode* AcquireNode() {
  NodePool& pool = Pool();
  TensorNode* node;
  if (!pool.free.empty()) {
    node = pool.free.back();
    pool.free.pop_back();
    node->grad.SetShape(0, 0);  // A recycled grad must not leak into this life.
    node->backward = nullptr;
    node->op_name = "leaf";
    node->aux0 = 0.0f;
    node->aux_index = 0;
    node->requires_grad = false;
    node->visited = false;
  } else {
    node = new TensorNode;
  }
  node->refs.store(1, std::memory_order_relaxed);
  node->sequence = g_sequence.fetch_add(1, std::memory_order_relaxed);
  return node;
}

void RecycleTree(TensorNode* root) {
  // Iterative teardown: dropping a 50k-step BPTT chain must not recurse.
  // Parent handles are detached by hand so their destructors never run the
  // recursive Release path.
  std::vector<TensorNode*> work;
  work.push_back(root);
  while (!work.empty()) {
    TensorNode* n = work.back();
    work.pop_back();
    for (Tensor& p : n->parents) {
      TensorNode* pn = p.node_;
      p.node_ = nullptr;
      if (pn != nullptr && pn->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        work.push_back(pn);
      }
    }
    n->parents.clear();
    if (g_pool_destroyed) {
      delete n;
      continue;
    }
    NodePool& pool = Pool();
    if (pool.free.size() < kMaxPooledNodes) {
      pool.free.push_back(n);
    } else {
      delete n;
    }
  }
}

}  // namespace detail

uint64_t TensorNodesCreated() { return g_sequence.load(std::memory_order_relaxed); }

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) { g_grad_enabled = false; }

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool NoGradGuard::GradEnabled() { return g_grad_enabled; }

Tensor Tensor::Constant(Matrix value) {
  TensorNode* node = detail::AcquireNode();
  node->value = std::move(value);
  return Tensor(node);
}

Tensor Tensor::NewConstant(size_t rows, size_t cols) {
  TensorNode* node = detail::AcquireNode();
  node->value.SetShape(rows, cols);
  return Tensor(node);
}

Tensor Tensor::Parameter(Matrix value) {
  TensorNode* node = detail::AcquireNode();
  node->value = std::move(value);
  node->requires_grad = true;
  return Tensor(node);
}

Tensor Tensor::NewOpN(size_t rows, size_t cols, const char* name, BackwardFn backward,
                      const std::vector<Tensor>& parents) {
  TensorNode* node = detail::AcquireNode();
  node->value.SetShape(rows, cols);
  node->op_name = name;
  bool needs_grad = false;
  if (NoGradGuard::GradEnabled()) {
    for (const Tensor& p : parents) {
      needs_grad = needs_grad || p.requires_grad();
    }
  }
  if (needs_grad) {
    node->requires_grad = true;
    node->backward = backward;
    node->parents = parents;
  }
  return Tensor(node);
}

const Matrix& Tensor::value() const& {
  assert(node_);
  return node_->value;
}

Matrix Tensor::value() && {
  assert(node_);
  return node_->value;
}

Matrix& Tensor::mutable_value() {
  assert(node_);
  return node_->value;
}

const Matrix& Tensor::grad() const {
  assert(node_);
  return node_->grad;
}

Matrix& Tensor::mutable_grad() {
  assert(node_);
  return node_->grad;
}

bool Tensor::requires_grad() const { return node_ && node_->requires_grad; }

const char* Tensor::op_name() const {
  assert(node_);
  return node_->op_name;
}

float Tensor::scalar() const {
  assert(node_ && node_->value.rows() == 1 && node_->value.cols() == 1);
  return node_->value.At(0, 0);
}

void TensorNode::EnsureGrad() {
  if (!grad.SameShape(value)) {
    grad.SetShape(value.rows(), value.cols());
    grad.Zero();
  }
}

void TensorNode::AccumulateGrad(const Matrix& delta) {
  EnsureGrad();
  grad.Add(delta);
}

void TensorNode::AccumulateGradScaled(const Matrix& delta, float scale) {
  EnsureGrad();
  grad.AddScaled(delta, scale);
}

void Tensor::Backward() const {
  assert(node_);
  assert(node_->value.rows() == 1 && node_->value.cols() == 1 &&
         "Backward() must start from a scalar loss");

  // Iterative post-order DFS producing a topological order. Recursion would
  // blow the stack on long BPTT chains, so an explicit stack is used.
  std::vector<TensorNode*> order;
  std::vector<std::pair<TensorNode*, size_t>> stack;
  if (!node_->visited && node_->requires_grad) {
    stack.emplace_back(node_, 0);
    node_->visited = true;
  }
  while (!stack.empty()) {
    auto& [n, idx] = stack.back();
    if (idx < n->parents.size()) {
      TensorNode* parent = n->parents[idx].node();
      ++idx;
      if (parent != nullptr && parent->requires_grad && !parent->visited) {
        parent->visited = true;
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }

  // Interior-node gradients are transient scratch space: zero them so that
  // repeated Backward() calls stay correct. Leaf gradients (parameters)
  // accumulate across calls, matching the usual autograd contract.
  for (TensorNode* n : order) {
    if (n->backward) {
      n->EnsureGrad();
      n->grad.Zero();
    }
  }

  // Seed d(loss)/d(loss) = 1 and sweep in reverse topological order.
  node_->EnsureGrad();
  node_->grad.At(0, 0) += 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorNode* n = *it;
    n->visited = false;  // Reset for the next Backward() call.
    if (n->backward) {
      n->backward(*n);
    }
  }
}

Tensor Tensor::Detach() const {
  assert(node_);
  Tensor out = NewConstant(node_->value.rows(), node_->value.cols());
  const Matrix& src = node_->value;
  Matrix& dst = out.mutable_value();
  for (size_t i = 0, e = src.size(); i < e; ++i) {
    dst[i] = src[i];
  }
  return out;
}

}  // namespace deeprest
