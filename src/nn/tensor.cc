#include "src/nn/tensor.h"

#include <atomic>
#include <cassert>

namespace deeprest {

namespace {

std::atomic<uint64_t> g_sequence{0};

std::shared_ptr<TensorNode> MakeNode(Matrix value, bool requires_grad) {
  auto node = std::make_shared<TensorNode>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  node->sequence = g_sequence.fetch_add(1, std::memory_order_relaxed);
  return node;
}

}  // namespace

uint64_t TensorNodesCreated() { return g_sequence.load(std::memory_order_relaxed); }

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) { g_grad_enabled = false; }

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool NoGradGuard::GradEnabled() { return g_grad_enabled; }

Tensor Tensor::Constant(Matrix value) { return Tensor(MakeNode(std::move(value), false)); }

Tensor Tensor::Parameter(Matrix value) { return Tensor(MakeNode(std::move(value), true)); }

Tensor Tensor::FromOp(Matrix value, std::vector<Tensor> parents,
                      std::function<void(TensorNode&)> backward, const char* op_name) {
  bool needs_grad = false;
  if (NoGradGuard::GradEnabled()) {
    for (const auto& p : parents) {
      needs_grad = needs_grad || p.requires_grad();
    }
  }
  auto node = MakeNode(std::move(value), needs_grad);
  node->op_name = op_name;
  if (needs_grad) {
    node->parents = std::move(parents);
    node->backward = std::move(backward);
  }
  return Tensor(std::move(node));
}

const Matrix& Tensor::value() const& {
  assert(node_);
  return node_->value;
}

Matrix Tensor::value() && {
  assert(node_);
  return node_->value;
}

Matrix& Tensor::mutable_value() {
  assert(node_);
  return node_->value;
}

const Matrix& Tensor::grad() const {
  assert(node_);
  return node_->grad;
}

Matrix& Tensor::mutable_grad() {
  assert(node_);
  return node_->grad;
}

bool Tensor::requires_grad() const { return node_ && node_->requires_grad; }

const char* Tensor::op_name() const {
  assert(node_);
  return node_->op_name;
}

float Tensor::scalar() const {
  assert(node_ && node_->value.rows() == 1 && node_->value.cols() == 1);
  return node_->value.At(0, 0);
}

void TensorNode::EnsureGrad() {
  if (!grad.SameShape(value)) {
    grad = Matrix(value.rows(), value.cols());
  }
}

void TensorNode::AccumulateGrad(const Matrix& delta) {
  EnsureGrad();
  grad.Add(delta);
}

void TensorNode::AccumulateGradScaled(const Matrix& delta, float scale) {
  EnsureGrad();
  grad.AddScaled(delta, scale);
}

void Tensor::Backward() const {
  assert(node_);
  assert(node_->value.rows() == 1 && node_->value.cols() == 1 &&
         "Backward() must start from a scalar loss");

  // Iterative post-order DFS producing a topological order. Recursion would
  // blow the stack on long BPTT chains, so an explicit stack is used.
  std::vector<TensorNode*> order;
  std::vector<std::pair<TensorNode*, size_t>> stack;
  if (!node_->visited && node_->requires_grad) {
    stack.emplace_back(node_.get(), 0);
    node_->visited = true;
  }
  while (!stack.empty()) {
    auto& [n, idx] = stack.back();
    if (idx < n->parents.size()) {
      TensorNode* parent = n->parents[idx].node();
      ++idx;
      if (parent != nullptr && parent->requires_grad && !parent->visited) {
        parent->visited = true;
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }

  // Interior-node gradients are transient scratch space: zero them so that
  // repeated Backward() calls stay correct. Leaf gradients (parameters)
  // accumulate across calls, matching the usual autograd contract.
  for (TensorNode* n : order) {
    if (n->backward) {
      n->EnsureGrad();
      n->grad.Zero();
    }
  }

  // Seed d(loss)/d(loss) = 1 and sweep in reverse topological order.
  node_->EnsureGrad();
  node_->grad.At(0, 0) += 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorNode* n = *it;
    n->visited = false;  // Reset for the next Backward() call.
    if (n->backward) {
      n->backward(*n);
    }
  }
}

Tensor Tensor::Detach() const {
  assert(node_);
  return Constant(node_->value);
}

}  // namespace deeprest
