// Reverse-mode automatic differentiation over Matrix values.
//
// A Tensor is a cheap handle (intrusively refcounted pointer) to a graph
// node. Operations in ops.h build the graph eagerly; Backward() on a scalar
// tensor runs a topological sweep that accumulates gradients into every node
// reachable from it that requires a gradient. This mirrors the define-by-run
// style of the PyTorch implementation the paper used.
//
// Node arena
// ----------
// Graph nodes are recycled through a thread-local freelist: releasing the
// last handle to a graph returns every node to the freelist of the releasing
// thread (iteratively — no recursion, so arbitrarily deep BPTT chains are
// fine), and node creation pops the freelist instead of calling the
// allocator. Recycled nodes keep the capacity of their value/grad/saved
// matrices, so in steady state a training step performs O(1) allocator calls
// instead of one (shared_ptr control block + matrix buffer + closure) per op.
// Backward functions are plain function pointers with their payloads stored
// in the node itself (saved/aux0/aux_index), never heap-allocated closures.
//
// Threading contract
// ------------------
// The library keeps three pieces of cross-thread state, and they define what
// is and is not safe to run concurrently:
//
//   * `g_grad_enabled` is thread_local: each thread carries its own NoGradGuard
//     nesting, so one thread running inference under a guard never disables
//     gradients for a thread that is training.
//   * `g_sequence` (node creation order) is a std::atomic, so node creation —
//     and therefore any op — is safe from any number of threads at once.
//   * The node freelist is thread_local and node refcounts are atomic: a node
//     created on one thread and released on another is simply recycled into
//     the releasing thread's freelist.
//
// Everything else is per-node and unsynchronized. The rules that follow:
//
//   * Concurrent INFERENCE on a shared, const model is safe: ops under a
//     NoGradGuard only read parameter values and produce fresh constant nodes
//     private to the calling thread, so any number of threads may evaluate
//     the same parameters simultaneously (this is what lets the serving layer
//     in src/serve fan EstimateFromFeatures out across a worker pool).
//   * TRAINING is single-threaded per model: Backward() mutates shared node
//     state (grad, visited) and optimizers write parameter values in place,
//     so no other thread may read or write those parameters while a training
//     step runs. To retrain a served model, train a clone and swap it in
//     (see DeepRestEstimator::Clone and serve::ModelRegistry).
//   * Distinct models with disjoint parameters may train in parallel (this is
//     what the eval harness's parallel pretraining relies on).
//
// Enforcement: this layer is deliberately mutex-free — its only cross-thread
// state is the atomics and thread_locals above, so there is nothing for the
// Clang thread-safety annotations (src/core/thread_annotations.h) to guard.
// What IS machine-checked is the arena ownership rule: tools/lint's
// no-raw-tensor-node-new rule rejects any `new`/`delete` of a TensorNode
// outside tensor.cc, so every node goes through AcquireNode/RecycleTree and
// the freelist accounting can never be bypassed.
#ifndef SRC_NN_TENSOR_H_
#define SRC_NN_TENSOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/nn/matrix.h"

namespace deeprest {

struct TensorNode;

namespace detail {
// Iteratively releases a whole subgraph whose refcounts dropped to zero,
// returning nodes to the calling thread's freelist.
void RecycleTree(TensorNode* root);
// Pops a fresh node off the freelist (or allocates); transient fields are
// reset, value/grad/saved keep their capacity.
TensorNode* AcquireNode();
}  // namespace detail

// Backward functions are plain function pointers: all per-op state lives in
// the TensorNode (parents, saved, aux0, aux_index), so building a node never
// heap-allocates a closure.
using BackwardFn = void (*)(TensorNode&);

class Tensor {
 public:
  Tensor() = default;
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept : node_(other.node_) { other.node_ = nullptr; }
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  // Leaf tensor holding a constant value (no gradient).
  static Tensor Constant(Matrix value);
  // Constant leaf with a (rows x cols) value buffer recycled from the arena;
  // entries are unspecified — the caller fills them via mutable_value().
  // Preferred over Constant() in hot loops: no Matrix allocation.
  static Tensor NewConstant(size_t rows, size_t cols);
  // Leaf tensor participating in optimization (gradient is accumulated).
  static Tensor Parameter(Matrix value);

  // Interior node produced by an op. The value buffer is recycled and shaped
  // (rows x cols) with unspecified contents; the op fills it in. Parent
  // links and the backward fn are attached only when some parent tracks
  // gradients (and gradients are enabled on this thread).
  template <typename... Parents>
  static Tensor NewOp(size_t rows, size_t cols, const char* name, BackwardFn backward,
                      const Parents&... parents);
  // Same, for a dynamic parent list.
  static Tensor NewOpN(size_t rows, size_t cols, const char* name, BackwardFn backward,
                       const std::vector<Tensor>& parents);

  bool defined() const { return node_ != nullptr; }
  // Lvalue-only: binding the returned reference to a temporary Tensor's
  // value would dangle once the temporary releases its node.
  const Matrix& value() const&;
  Matrix value() &&;
  Matrix& mutable_value();
  const Matrix& grad() const;
  Matrix& mutable_grad();
  bool requires_grad() const;
  const char* op_name() const;
  size_t rows() const { return value().rows(); }
  size_t cols() const { return value().cols(); }

  // Scalar convenience accessor; requires a 1x1 tensor.
  float scalar() const;

  // Runs reverse-mode differentiation from this (scalar) tensor. Seeds the
  // gradient with 1 and accumulates into all parameters/leaves that require
  // gradients. Gradients from earlier Backward() calls are kept (accumulate
  // semantics); call ZeroGradTree or the optimizer's ZeroGrad between steps.
  void Backward() const;

  // Detaches the value into a fresh constant leaf (used to truncate BPTT).
  Tensor Detach() const;

  TensorNode* node() const { return node_; }
  bool SameNode(const Tensor& other) const { return node_ == other.node_; }

 private:
  friend void detail::RecycleTree(TensorNode* root);
  // Takes ownership of one reference.
  explicit Tensor(TensorNode* node) : node_(node) {}
  static void Retain(TensorNode* node);
  static void Release(TensorNode* node);
  TensorNode* node_ = nullptr;
};

struct TensorNode {
  Matrix value;
  Matrix grad;  // Lazily sized on first accumulation.
  std::vector<Tensor> parents;
  // Forward intermediates stashed for fused backward passes (e.g. the GRU
  // gates). Capacity survives recycling; use EnsureSaved to size it.
  std::vector<Matrix> saved;
  BackwardFn backward = nullptr;  // Null for leaves.
  const char* op_name = "leaf";
  uint64_t sequence = 0;   // Creation order, used for graph-size tests.
  float aux0 = 0.0f;       // Small op payloads (Affine alpha, pinball target, ...).
  size_t aux_index = 0;    // Index payload (RowAsColumn row, expert index, ...).
  bool requires_grad = false;
  bool visited = false;    // Scratch flag for the backward sweep.
  std::atomic<uint32_t> refs{0};

  // Ensures grad has the right shape (zeroing it if it had to be reshaped)
  // and accumulates delta into it.
  void AccumulateGrad(const Matrix& delta);
  void AccumulateGradScaled(const Matrix& delta, float scale);
  void EnsureGrad();
  // Grows `saved` to at least n slots (existing matrices keep capacity).
  void EnsureSaved(size_t n) {
    if (saved.size() < n) {
      saved.resize(n);
    }
  }
};

inline Tensor::Tensor(const Tensor& other) : node_(other.node_) { Retain(node_); }

inline Tensor& Tensor::operator=(const Tensor& other) {
  if (node_ != other.node_) {
    TensorNode* old = node_;
    node_ = other.node_;
    Retain(node_);
    Release(old);
  }
  return *this;
}

inline Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this != &other) {
    TensorNode* old = node_;
    node_ = other.node_;
    other.node_ = nullptr;
    Release(old);
  }
  return *this;
}

inline Tensor::~Tensor() { Release(node_); }

inline void Tensor::Retain(TensorNode* node) {
  if (node != nullptr) {
    node->refs.fetch_add(1, std::memory_order_relaxed);
  }
}

inline void Tensor::Release(TensorNode* node) {
  if (node != nullptr && node->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    detail::RecycleTree(node);
  }
}

// Number of nodes created since process start; useful for graph-size tests.
uint64_t TensorNodesCreated();

// RAII guard that disables gradient tracking on the current thread. Ops
// executed under the guard produce constant tensors with no parent links,
// which keeps long inference runs O(1) in graph memory.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  static bool GradEnabled();

 private:
  bool previous_;
};

template <typename... Parents>
Tensor Tensor::NewOp(size_t rows, size_t cols, const char* name, BackwardFn backward,
                     const Parents&... parents) {
  TensorNode* node = detail::AcquireNode();
  node->value.SetShape(rows, cols);
  node->op_name = name;
  if (NoGradGuard::GradEnabled() && (parents.requires_grad() || ...)) {
    node->requires_grad = true;
    node->backward = backward;
    node->parents.reserve(sizeof...(parents));
    (node->parents.push_back(parents), ...);
  }
  return Tensor(node);
}

}  // namespace deeprest

#endif  // SRC_NN_TENSOR_H_
