// Reverse-mode automatic differentiation over Matrix values.
//
// A Tensor is a cheap handle (shared_ptr) to a graph node. Operations in
// ops.h build the graph eagerly; Backward() on a scalar tensor runs a
// topological sweep that accumulates gradients into every node reachable from
// it that requires a gradient. This mirrors the define-by-run style of the
// PyTorch implementation the paper used.
//
// Threading contract
// ------------------
// The library keeps exactly two pieces of cross-thread state, and they define
// what is and is not safe to run concurrently:
//
//   * `g_grad_enabled` is thread_local: each thread carries its own NoGradGuard
//     nesting, so one thread running inference under a guard never disables
//     gradients for a thread that is training.
//   * `g_sequence` (node creation order) is a std::atomic, so node creation —
//     and therefore any op — is safe from any number of threads at once.
//
// Everything else is per-node and unsynchronized. The rules that follow:
//
//   * Concurrent INFERENCE on a shared, const model is safe: ops under a
//     NoGradGuard only read parameter values and produce fresh constant nodes
//     private to the calling thread, so any number of threads may evaluate
//     the same parameters simultaneously (this is what lets the serving layer
//     in src/serve fan EstimateFromFeatures out across a worker pool).
//   * TRAINING is single-threaded per model: Backward() mutates shared node
//     state (grad, visited) and optimizers write parameter values in place,
//     so no other thread may read or write those parameters while a training
//     step runs. To retrain a served model, train a clone and swap it in
//     (see DeepRestEstimator::Clone and serve::ModelRegistry).
//   * Distinct models with disjoint parameters may train in parallel.
#ifndef SRC_NN_TENSOR_H_
#define SRC_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/matrix.h"

namespace deeprest {

struct TensorNode;

class Tensor {
 public:
  Tensor() = default;

  // Leaf tensor holding a constant value (no gradient).
  static Tensor Constant(Matrix value);
  // Leaf tensor participating in optimization (gradient is accumulated).
  static Tensor Parameter(Matrix value);
  // Interior node produced by an op.
  static Tensor FromOp(Matrix value, std::vector<Tensor> parents,
                       std::function<void(TensorNode&)> backward, const char* op_name);

  bool defined() const { return node_ != nullptr; }
  // Lvalue-only: binding the returned reference to a temporary Tensor's
  // value would dangle once the temporary releases its node.
  const Matrix& value() const&;
  Matrix value() &&;
  Matrix& mutable_value();
  const Matrix& grad() const;
  Matrix& mutable_grad();
  bool requires_grad() const;
  const char* op_name() const;
  size_t rows() const { return value().rows(); }
  size_t cols() const { return value().cols(); }

  // Scalar convenience accessor; requires a 1x1 tensor.
  float scalar() const;

  // Runs reverse-mode differentiation from this (scalar) tensor. Seeds the
  // gradient with 1 and accumulates into all parameters/leaves that require
  // gradients. Gradients from earlier Backward() calls are kept (accumulate
  // semantics); call ZeroGradTree or the optimizer's ZeroGrad between steps.
  void Backward() const;

  // Detaches the value into a fresh constant leaf (used to truncate BPTT).
  Tensor Detach() const;

  TensorNode* node() const { return node_.get(); }
  bool SameNode(const Tensor& other) const { return node_ == other.node_; }

 private:
  explicit Tensor(std::shared_ptr<TensorNode> node) : node_(std::move(node)) {}
  std::shared_ptr<TensorNode> node_;
};

struct TensorNode {
  Matrix value;
  Matrix grad;  // Lazily sized on first accumulation.
  bool requires_grad = false;
  std::vector<Tensor> parents;
  std::function<void(TensorNode&)> backward;  // May be empty for leaves.
  const char* op_name = "leaf";
  uint64_t sequence = 0;  // Creation order, used for topological sorting.
  bool visited = false;   // Scratch flag for the backward sweep.

  // Ensures grad has the right shape and accumulates delta into it.
  void AccumulateGrad(const Matrix& delta);
  void AccumulateGradScaled(const Matrix& delta, float scale);
  void EnsureGrad();
};

// Number of nodes created since process start; useful for graph-size tests.
uint64_t TensorNodesCreated();

// RAII guard that disables gradient tracking on the current thread. Ops
// executed under the guard produce constant tensors with no parent links,
// which keeps long inference runs O(1) in graph memory.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  static bool GradEnabled();

 private:
  bool previous_;
};

}  // namespace deeprest

#endif  // SRC_NN_TENSOR_H_
