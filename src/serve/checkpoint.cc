#include "src/serve/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

namespace deeprest {

namespace {

constexpr char kMagic[8] = {'D', 'R', 'C', 'K', 'P', 'T', '0', '1'};

void AppendU64(std::string& out, uint64_t v) {
  char bytes[sizeof(v)];
  std::memcpy(bytes, &v, sizeof(v));
  out.append(bytes, sizeof(v));
}

bool ParseU64(const std::string& in, size_t& offset, uint64_t* v) {
  if (offset + sizeof(*v) > in.size()) {
    return false;
  }
  std::memcpy(v, in.data() + offset, sizeof(*v));
  offset += sizeof(*v);
  return true;
}

// Writes the full buffer to a fresh file and fsyncs it before close, so the
// bytes are durable before the rename makes them visible.
bool WriteFileDurable(const std::string& path, const std::string& bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return false;
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return false;
    }
    written += static_cast<size_t>(n);
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  return synced;
}

// Fsync the containing directory so the rename itself is durable.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

bool WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  if (!WriteFileDurable(tmp, bytes)) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  SyncParentDir(path);
  return true;
}

bool ReadFileAll(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

const char* RecoverySourceName(RecoverySource source) {
  switch (source) {
    case RecoverySource::kNone:
      return "none";
    case RecoverySource::kPrimary:
      return "primary";
    case RecoverySource::kPrevious:
      return "previous";
  }
  return "unknown";
}

uint64_t Fnv1a64(const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 1469598103934665603ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

bool WriteCheckpoint(const std::string& path, const CheckpointData& data) {
  if (data.model == nullptr) {
    return false;
  }
  std::ostringstream model_stream;
  if (!data.model->SaveToStream(model_stream)) {
    return false;
  }
  const std::string model_bytes = model_stream.str();

  std::string payload;
  payload.reserve(3 * sizeof(uint64_t) + model_bytes.size());
  AppendU64(payload, data.version);
  AppendU64(payload, data.trained_through);
  AppendU64(payload, static_cast<uint64_t>(model_bytes.size()));
  payload += model_bytes;

  std::string file;
  file.reserve(sizeof(kMagic) + 2 * sizeof(uint64_t) + payload.size());
  file.append(kMagic, sizeof(kMagic));
  AppendU64(file, static_cast<uint64_t>(payload.size()));
  AppendU64(file, Fnv1a64(payload.data(), payload.size()));
  file += payload;

  const std::string tmp = path + ".tmp";
  if (!WriteFileDurable(tmp, file)) {
    std::remove(tmp.c_str());
    return false;
  }
  // Rotate the current checkpoint to .prev, then swing the new one in. A
  // crash between the renames leaves only .prev — which recovery handles.
  const std::string prev = path + ".prev";
  std::rename(path.c_str(), prev.c_str());  // ENOENT on first write is fine
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  SyncParentDir(path);
  return true;
}

bool ReadCheckpoint(const std::string& path, CheckpointData* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string file = buffer.str();

  if (file.size() < sizeof(kMagic) + 2 * sizeof(uint64_t) ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  size_t offset = sizeof(kMagic);
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
  if (!ParseU64(file, offset, &payload_size) || !ParseU64(file, offset, &checksum)) {
    return false;
  }
  if (file.size() - offset != payload_size) {
    return false;  // truncated or trailing garbage
  }
  if (Fnv1a64(file.data() + offset, payload_size) != checksum) {
    return false;  // torn / corrupted payload
  }

  CheckpointData data;
  uint64_t model_size = 0;
  if (!ParseU64(file, offset, &data.version) || !ParseU64(file, offset, &data.trained_through) ||
      !ParseU64(file, offset, &model_size)) {
    return false;
  }
  if (file.size() - offset != model_size) {
    return false;
  }
  std::istringstream model_stream(file.substr(offset));
  auto model = std::make_unique<DeepRestEstimator>();
  if (!model->LoadFromStream(model_stream)) {
    return false;
  }
  data.model = std::shared_ptr<const DeepRestEstimator>(std::move(model));
  *out = std::move(data);
  return true;
}

RecoverySource RecoverCheckpoint(const std::string& path, CheckpointData* out) {
  if (ReadCheckpoint(path, out)) {
    return RecoverySource::kPrimary;
  }
  if (ReadCheckpoint(path + ".prev", out)) {
    return RecoverySource::kPrevious;
  }
  return RecoverySource::kNone;
}

}  // namespace deeprest
