// Crash-safe checkpointing of the serving model state.
//
// A checkpoint captures the ModelRegistry head (model weights + version) and
// the ContinualLearner's progress (trained_through), so a restarted service
// resumes from the last published fine-tune instead of retraining from
// scratch. Writes are atomic in the classic write-temp + fsync + rename
// sequence, and the previous checkpoint is rotated to `<path>.prev` before
// the rename — at every instant there is a complete checkpoint on disk:
//
//   serialize -> <path>.tmp -> fsync -> rename(<path>, <path>.prev)
//             -> rename(<path>.tmp, <path>) -> fsync(dir)
//
// Every file carries a magic tag, the payload size, and an FNV-1a checksum
// over the payload; recovery validates all three and falls back to
// `<path>.prev` when the primary is truncated, torn, or corrupt (see the
// kill-and-restart test in tests/serve/checkpoint_test.cc).
#ifndef SRC_SERVE_CHECKPOINT_H_
#define SRC_SERVE_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "src/core/estimator.h"

namespace deeprest {

struct CheckpointData {
  uint64_t version = 0;         // registry version the model was published as
  uint64_t trained_through = 0; // learner progress (windows [0, n) trained)
  std::shared_ptr<const DeepRestEstimator> model;
};

// Where a recovered checkpoint came from.
enum class RecoverySource {
  kNone,      // neither file was readable/valid
  kPrimary,   // <path>
  kPrevious,  // <path>.prev (primary missing or failed validation)
};

const char* RecoverySourceName(RecoverySource source);

// FNV-1a 64-bit over a byte buffer (checkpoint integrity checksum).
uint64_t Fnv1a64(const void* data, size_t size);

// Atomic small-file replacement: write-temp + fsync + rename + dir-fsync,
// the same discipline WriteCheckpoint uses (minus the .prev rotation). At
// every instant `path` is either absent, the old contents, or the complete
// new contents — never a torn write. Exported for the state-cache disk slab
// superblock and the DiskSnapshotStore (state_cache.h).
bool WriteFileAtomic(const std::string& path, const std::string& bytes);

// Reads the whole file into *out; false when it cannot be opened.
bool ReadFileAll(const std::string& path, std::string* out);

// Atomically replaces the checkpoint at `path` (rotating any existing one to
// `<path>.prev`). Returns false — leaving the previous checkpoint intact —
// on serialization or I/O failure.
bool WriteCheckpoint(const std::string& path, const CheckpointData& data);

// Reads and validates exactly `path` (magic, size, checksum, deserializable
// model). Returns false without touching `*out` on any mismatch.
bool ReadCheckpoint(const std::string& path, CheckpointData* out);

// Recovery policy: try `path`, then `<path>.prev`. The first file that
// passes full validation wins.
RecoverySource RecoverCheckpoint(const std::string& path, CheckpointData* out);

}  // namespace deeprest

#endif  // SRC_SERVE_CHECKPOINT_H_
