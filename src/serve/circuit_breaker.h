// Reusable circuit breaker for the serving stack's self-protection paths.
//
// Extracted from ContinualLearner's validation gate (PR 2) so the same
// mechanism can guard any repeatedly-failing operation: model fine-tunes,
// what-if estimation through the service front door, or anything else whose
// failures are cheap to detect and expensive to keep retrying.
//
// State machine (deterministic, attempt-counted — no wall clock, so chaos
// tests can assert exact transitions):
//
//   kClosed    every Allow() passes; `trip_failures` CONSECUTIVE recorded
//              failures trip the breaker to kOpen. trip_failures == 0 is
//              gate-only mode: failures are counted but the breaker never
//              opens — this is the learner's historical validation-gate
//              behavior, preserved bit-exactly.
//   kOpen      Allow() rejects (and counts the rejection); after
//              `open_rejections` rejected attempts the breaker moves to
//              kHalfOpen and lets exactly one probe through.
//   kHalfOpen  the probe's RecordSuccess closes the breaker (failure streak
//              reset); its RecordFailure re-opens it for another full
//              open_rejections round.
//
// Thread-safety: all methods may be called concurrently (one internal
// mutex). In kHalfOpen only the first Allow() wins the probe slot; racing
// callers are rejected like kOpen, so at most one probe is ever in flight.
#ifndef SRC_SERVE_CIRCUIT_BREAKER_H_
#define SRC_SERVE_CIRCUIT_BREAKER_H_

#include <cstddef>
#include <cstdint>

#include "src/core/thread_annotations.h"

namespace deeprest {

enum class BreakerState { kClosed = 0, kOpen, kHalfOpen };

inline const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

struct CircuitBreakerConfig {
  // Consecutive failures that trip the breaker open. 0 = gate-only: count
  // failures but never open (the pre-extraction learner behavior).
  size_t trip_failures = 0;
  // Allow() calls rejected while open before one half-open probe is let
  // through. Attempt-counted rather than timed so transitions are exact
  // under test; callers that poll on a timer get time-based recovery for
  // free.
  size_t open_rejections = 8;
};

// Lifetime tallies, snapshot under the breaker's lock.
struct CircuitBreakerCounters {
  uint64_t successes = 0;
  uint64_t failures = 0;
  uint64_t trips = 0;       // closed -> open transitions (incl. re-opens)
  uint64_t rejections = 0;  // Allow() calls denied while open/half-open
  BreakerState state = BreakerState::kClosed;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(const CircuitBreakerConfig& config = {}) : config_(config) {}

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  // The validation-regression decision the learner's breaker gates on, kept
  // as one pure function so the learner, the tests, and any future caller
  // share a single definition of "regressed". The epsilon keeps a bit-equal
  // candidate (base_error == next_error == 0) from tripping on rounding.
  static bool ValidationRegressed(double base_error, double candidate_error, double factor) {
    return factor > 0.0 && candidate_error > factor * base_error + 1e-12;
  }

  // May the protected operation run now? A denial is counted and advances
  // the open -> half-open countdown.
  bool Allow() {
    MutexLock lock(mu_);
    switch (state_) {
      case BreakerState::kClosed:
        return true;
      case BreakerState::kHalfOpen:
        if (probe_in_flight_) {
          ++rejections_;
          return false;
        }
        probe_in_flight_ = true;
        return true;
      case BreakerState::kOpen:
        ++rejections_;
        ++open_denials_;
        if (open_denials_ >= config_.open_rejections) {
          state_ = BreakerState::kHalfOpen;
          probe_in_flight_ = false;
        }
        return false;
    }
    return true;
  }

  // The protected operation was allowed but never actually ran (e.g. an
  // allocation failed before the attempt). Returns the half-open probe slot
  // so the breaker cannot wedge waiting on a probe that will never report.
  void AbandonProbe() {
    MutexLock lock(mu_);
    probe_in_flight_ = false;
  }

  void RecordSuccess() {
    MutexLock lock(mu_);
    ++successes_;
    streak_ = 0;
    state_ = BreakerState::kClosed;
    probe_in_flight_ = false;
  }

  void RecordFailure() {
    MutexLock lock(mu_);
    ++failures_;
    ++streak_;
    if (state_ == BreakerState::kHalfOpen) {
      Trip();
      return;
    }
    if (config_.trip_failures > 0 && state_ == BreakerState::kClosed &&
        streak_ >= config_.trip_failures) {
      Trip();
    }
  }

  BreakerState state() const {
    MutexLock lock(mu_);
    return state_;
  }

  CircuitBreakerCounters counters() const {
    MutexLock lock(mu_);
    CircuitBreakerCounters out;
    out.successes = successes_;
    out.failures = failures_;
    out.trips = trips_;
    out.rejections = rejections_;
    out.state = state_;
    return out;
  }

  uint64_t failures() const {
    MutexLock lock(mu_);
    return failures_;
  }

 private:
  void Trip() DEEPREST_REQUIRES(mu_) {
    state_ = BreakerState::kOpen;
    open_denials_ = 0;
    streak_ = 0;
    probe_in_flight_ = false;
    ++trips_;
  }

  const CircuitBreakerConfig config_;
  mutable Mutex mu_;  // deeprest-lint: lock-level(leaf)
  BreakerState state_ DEEPREST_GUARDED_BY(mu_) = BreakerState::kClosed;
  size_t streak_ DEEPREST_GUARDED_BY(mu_) = 0;        // consecutive failures
  size_t open_denials_ DEEPREST_GUARDED_BY(mu_) = 0;  // since the last trip
  bool probe_in_flight_ DEEPREST_GUARDED_BY(mu_) = false;
  uint64_t successes_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t failures_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t trips_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t rejections_ DEEPREST_GUARDED_BY(mu_) = 0;
};

}  // namespace deeprest

#endif  // SRC_SERVE_CIRCUIT_BREAKER_H_
