#include "src/serve/continual_learner.h"

namespace deeprest {

ContinualLearner::ContinualLearner(ModelRegistry& registry, IngestPipeline& pipeline,
                                   size_t start_window, const ContinualLearnerConfig& config)
    : registry_(registry), pipeline_(pipeline), config_(config),
      trained_through_(start_window) {}

ContinualLearner::~ContinualLearner() { Stop(); }

void ContinualLearner::Start() {
  if (thread_.joinable()) {
    return;
  }
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void ContinualLearner::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) {
    thread_.join();
  }
}

void ContinualLearner::Loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    RefreshOnce();
    std::this_thread::sleep_for(config_.poll_interval);
  }
}

uint64_t ContinualLearner::RefreshOnce() {
  std::lock_guard<std::mutex> refresh_lock(refresh_mu_);
  // Live watermark: the frontier window may still be receiving events.
  const size_t frontier = pipeline_.WindowFrontier();
  const size_t watermark = frontier > 0 ? frontier - 1 : 0;
  pipeline_.Fold(watermark);

  const size_t from = trained_through_.load(std::memory_order_acquire);
  if (watermark < from + config_.min_new_windows) {
    return 0;
  }
  const ModelSnapshot base = registry_.Current();
  if (!base.valid()) {
    return 0;
  }

  // Stable copies: training must not hold pipeline locks (it is slow) and
  // must not race with producers appending to the live stores.
  const TraceCollector traces = pipeline_.TracesCopy(from, watermark);
  const MetricsStore metrics = pipeline_.MetricsCopy();

  std::unique_ptr<DeepRestEstimator> next = base.model->Clone();
  if (next == nullptr) {
    return 0;
  }
  next->ContinueLearning(traces, metrics, from, watermark, config_.epochs);
  const uint64_t version = registry_.Publish(std::move(next));
  trained_through_.store(watermark, std::memory_order_release);
  refreshes_.fetch_add(1, std::memory_order_relaxed);
  return version;
}

}  // namespace deeprest
