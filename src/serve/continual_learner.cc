#include "src/serve/continual_learner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "src/serve/checkpoint.h"

namespace deeprest {

double ValidationError(const DeepRestEstimator& model,
                       const std::vector<std::vector<float>>& features,
                       const MetricsStore& metrics, size_t from, size_t to) {
  if (features.empty() || to <= from) {
    return 0.0;
  }
  const EstimateMap estimates = model.EstimateFromFeatures(features);
  double error_sum = 0.0;
  size_t resource_count = 0;
  for (const auto& [key, estimate] : estimates) {
    const std::vector<double> actual = metrics.Series(key, from, to);
    const size_t n = std::min(actual.size(), estimate.expected.size());
    if (n == 0) {
      continue;
    }
    double abs_error = 0.0;
    double abs_actual = 0.0;
    for (size_t t = 0; t < n; ++t) {
      abs_error += std::fabs(actual[t] - estimate.expected[t]);
      abs_actual += std::fabs(actual[t]);
    }
    // WAPE: scale-free like MAPE but stable when individual windows sit
    // near zero.
    error_sum += abs_error / std::max(abs_actual, 1e-9);
    ++resource_count;
  }
  return resource_count == 0 ? 0.0 : error_sum / static_cast<double>(resource_count);
}

ContinualLearner::ContinualLearner(ModelRegistry& registry, IngestPipeline& pipeline,
                                   size_t start_window, const ContinualLearnerConfig& config)
    : registry_(registry), pipeline_(pipeline), config_(config),
      trained_through_(start_window), breaker_(config.breaker) {
  if (config_.health != nullptr) {
    health_ = config_.health->Register(config_.health_name, config_.stall_threshold_us);
  }
}

ContinualLearner::~ContinualLearner() { Stop(); }

void ContinualLearner::Start() {
  MutexLock lock(lifecycle_mu_);
  if (thread_.joinable()) {
    return;
  }
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void ContinualLearner::Stop() {
  // The stop flag flips under lifecycle_mu_ so a racing Start cannot clear
  // it between our store and the join (which would leave Stop joining a
  // thread that never exits).
  MutexLock lock(lifecycle_mu_);
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) {
    thread_.join();
  }
  health_.MarkStopped();
}

void ContinualLearner::Loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    health_.Heartbeat();
    RefreshOnce();
    std::this_thread::sleep_for(config_.poll_interval);
  }
}

uint64_t ContinualLearner::RefreshOnce() {
  MutexLock refresh_lock(refresh_mu_);
  // Live watermark: the frontier window may still be receiving events.
  const size_t frontier = pipeline_.WindowFrontier();
  const size_t watermark = frontier > 0 ? frontier - 1 : 0;
  pipeline_.Fold(watermark);

  const size_t from = trained_through_.load(std::memory_order_acquire);
  if (watermark < from + config_.min_new_windows) {
    return 0;
  }
  const ModelSnapshot base = registry_.Current();
  if (!base.valid()) {
    return 0;
  }

  // Breaker open: skip the expensive clone+train without consuming the
  // stretch — the windows stay pending for the half-open probe.
  if (!breaker_.Allow()) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }

  // Stable copies: training must not hold pipeline locks (it is slow) and
  // must not race with producers appending to the live stores.
  const TraceCollector traces = pipeline_.TracesCopy(from, watermark);
  const MetricsStore metrics = pipeline_.MetricsCopy();

  if (config_.alloc_fail_hook && config_.alloc_fail_hook()) {
    alloc_failures_.fetch_add(1, std::memory_order_relaxed);
    breaker_.AbandonProbe();
    return 0;
  }
  std::unique_ptr<DeepRestEstimator> next = base.model->Clone();
  if (next == nullptr) {
    alloc_failures_.fetch_add(1, std::memory_order_relaxed);
    breaker_.AbandonProbe();
    return 0;
  }
  next->ContinueLearning(traces, metrics, from, watermark, config_.epochs);

  // Circuit breaker: a fine-tune trained on a degraded stretch must not
  // replace a model that fits the same windows better. Either way the
  // stretch counts as consumed — retraining deterministically on the same
  // windows would loop forever.
  if (config_.validation_regression_factor > 0.0) {
    const std::vector<std::vector<float>> features = pipeline_.FeatureSlice(from, watermark);
    const double base_error = ValidationError(*base.model, features, metrics, from, watermark);
    const double next_error = ValidationError(*next, features, metrics, from, watermark);
    if (CircuitBreaker::ValidationRegressed(base_error, next_error,
                                            config_.validation_regression_factor)) {
      breaker_.RecordFailure();
      trained_through_.store(watermark, std::memory_order_release);
      return 0;
    }
  }

  // Last point where the clone is still mutable: apply the registry's fp16
  // storage policy (no-op when off) before it becomes an immutable snapshot.
  registry_.ApplyStoragePolicy(*next);
  std::shared_ptr<const DeepRestEstimator> published(std::move(next));
  const uint64_t version = registry_.Publish(published);
  trained_through_.store(watermark, std::memory_order_release);
  refreshes_.fetch_add(1, std::memory_order_relaxed);
  breaker_.RecordSuccess();

  if (!config_.checkpoint_path.empty()) {
    CheckpointData data;
    data.version = version;
    data.trained_through = watermark;
    data.model = published;
    if (WriteCheckpoint(config_.checkpoint_path, data)) {
      checkpoints_.fetch_add(1, std::memory_order_relaxed);
    } else {
      checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return version;
}

}  // namespace deeprest
