// Background model refresh for the online estimation service.
//
// A single learner thread periodically folds the ingest pipeline, and once
// enough new sealed windows have accumulated it clones the currently
// published model, fine-tunes the clone with ContinueLearning over exactly
// the new windows, and publishes the result through the ModelRegistry. The
// published model is never touched: training happens entirely on the
// private clone against stable telemetry copies, so in-flight requests keep
// reading their snapshot while the swap happens (zero-downtime refresh).
//
// Robustness (DESIGN.md "Failure model"):
//   * Circuit breaker — before publishing, the candidate's validation error
//     over the new windows is compared against the base model's; a candidate
//     that regressed past validation_regression_factor is rejected (the old
//     model keeps serving, `models_rejected()` counts it). Fine-tuning on a
//     degraded telemetry stretch must never replace a good model with a
//     worse one.
//   * Checkpointing — every successful publish is atomically checkpointed
//     (see checkpoint.h) when checkpoint_path is set, so a crashed service
//     recovers the last published version instead of retraining.
#ifndef SRC_SERVE_CONTINUAL_LEARNER_H_
#define SRC_SERVE_CONTINUAL_LEARNER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/thread_annotations.h"
#include "src/serve/circuit_breaker.h"
#include "src/serve/health.h"
#include "src/serve/ingest_pipeline.h"
#include "src/serve/model_registry.h"

namespace deeprest {

struct ContinualLearnerConfig {
  // Retrain once this many new sealed windows exist beyond trained_through.
  size_t min_new_windows = 24;
  // Fine-tuning epochs per refresh (ContinueLearning's reduced-rate loop).
  size_t epochs = 4;
  // How often the background thread polls the pipeline.
  std::chrono::milliseconds poll_interval{20};
  // Circuit breaker: reject a fine-tuned candidate whose validation error
  // over the new windows exceeds base_error * validation_regression_factor.
  // <= 0 disables validation (always publish).
  double validation_regression_factor = 1.5;
  // Breaker trip/recovery shape (CircuitBreaker). The default trip_failures
  // of 0 is gate-only — every stretch is validated but refreshes never stop,
  // the historical behavior. >0 trips the breaker after that many
  // CONSECUTIVE rejected fine-tunes: RefreshOnce then skips the expensive
  // clone+train entirely (without advancing trained_through) until the
  // half-open probe, so a telemetry stream gone persistently bad stops
  // burning train cycles on candidates that keep failing validation.
  CircuitBreakerConfig breaker;
  // Atomic checkpoint written after every successful publish; empty disables.
  std::string checkpoint_path;
  // Supervision: when set, the background loop heartbeats into the registry
  // under this component name. Must outlive the learner.
  HealthRegistry* health = nullptr;
  std::string health_name = "continual-learner";
  uint64_t stall_threshold_us = 500000;
  // Chaos hook: returning true makes this refresh behave as if cloning the
  // base model failed (allocation failure) — the refresh is skipped and
  // alloc_failures() counts it.
  std::function<bool()> alloc_fail_hook;
};

// Mean absolute error normalized by mean actual magnitude (WAPE), averaged
// over the model's resources, for windows [from, to) of the feature series.
// The circuit breaker's fitness measure; exposed for tests.
double ValidationError(const DeepRestEstimator& model,
                       const std::vector<std::vector<float>>& features,
                       const MetricsStore& metrics, size_t from, size_t to);

class ContinualLearner {
 public:
  // `start_window`: first live window this learner is responsible for
  // (everything before it was covered by the initial Learn phase, or by the
  // checkpoint recovered at startup). The registry and pipeline must outlive
  // the learner.
  ContinualLearner(ModelRegistry& registry, IngestPipeline& pipeline, size_t start_window,
                   const ContinualLearnerConfig& config = {});
  ~ContinualLearner();

  ContinualLearner(const ContinualLearner&) = delete;
  ContinualLearner& operator=(const ContinualLearner&) = delete;

  void Start();
  void Stop();

  // One synchronous refresh attempt (also what the background thread runs):
  // folds the pipeline and retrains if enough new windows are sealed.
  // Returns the newly published version, or 0 when skipped or rejected by
  // the circuit breaker.
  uint64_t RefreshOnce();

  size_t trained_through() const { return trained_through_.load(std::memory_order_acquire); }
  uint64_t refreshes_published() const {
    return refreshes_.load(std::memory_order_relaxed);
  }
  // Fine-tunes rejected by the validation circuit breaker. A rejected
  // stretch still advances trained_through (retraining deterministically on
  // the same bad windows would loop forever). Counted by the breaker: every
  // rejection is a recorded failure, every publish a recorded success.
  uint64_t models_rejected() const { return breaker_.failures(); }
  uint64_t checkpoints_written() const { return checkpoints_.load(std::memory_order_relaxed); }
  uint64_t checkpoint_failures() const {
    return checkpoint_failures_.load(std::memory_order_relaxed);
  }
  // Refreshes skipped because the breaker was open (trip_failures > 0 only).
  uint64_t refreshes_suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }
  // Refreshes skipped by the alloc_fail chaos hook or a failed Clone.
  uint64_t alloc_failures() const { return alloc_failures_.load(std::memory_order_relaxed); }
  // The validation breaker guarding the fine-tune path (read-only view).
  const CircuitBreaker& validation_breaker() const { return breaker_; }

 private:
  void Loop();

  ModelRegistry& registry_;
  IngestPipeline& pipeline_;
  ContinualLearnerConfig config_;
  // Serializes RefreshOnce vs. the background tick. Guards no field of its
  // own: the refresh state it protects is the fold/train/publish sequence
  // against the pipeline and registry (each internally locked), plus the
  // atomics below, whose ordering only RefreshOnce writes.
  // deeprest-lint: lock-level(before IngestPipeline::fold_mu_, ModelRegistry::mu_)
  Mutex refresh_mu_;  // deeprest-lint: allow(mutex-needs-guarded-by)
  // Serializes Start/Stop/destruction: thread_ (spawn, joinable check, join)
  // was previously unguarded, so Start racing Stop could double-spawn or
  // double-join (found while annotating). The learner thread itself never
  // takes this mutex, so Stop can join while holding it.
  Mutex lifecycle_mu_;  // deeprest-lint: lock-level(leaf)
  std::thread thread_ DEEPREST_GUARDED_BY(lifecycle_mu_);
  std::atomic<size_t> trained_through_;
  std::atomic<uint64_t> refreshes_{0};
  std::atomic<uint64_t> suppressed_{0};
  std::atomic<uint64_t> alloc_failures_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> checkpoint_failures_{0};
  std::atomic<bool> stop_{false};
  // The extracted validation gate (src/serve/circuit_breaker.h). Gate-only
  // by default: identical accept/reject decisions and counts as the
  // pre-extraction inline breaker, bit for bit.
  CircuitBreaker breaker_;
  HealthHandle health_;
};

}  // namespace deeprest

#endif  // SRC_SERVE_CONTINUAL_LEARNER_H_
