// Per-window telemetry quality, attached to every sealed feature window.
//
// DeepRest's answers are only as trustworthy as the telemetry behind them.
// When the ingest pipeline seals a window it records how complete that
// window's evidence was: the fraction of traces that survived admission
// control, the fraction of metric series that actually scraped, and whether
// the feature vector had to be imputed (carry-forward) or renormalized
// (observed API mix rescaled to the expected volume). The composite score
// flows with every estimate and sanity result so downstream consumers can
// widen tolerances on degraded windows instead of raising false anomaly
// alarms (DESIGN.md "Failure model").
#ifndef SRC_SERVE_DATA_QUALITY_H_
#define SRC_SERVE_DATA_QUALITY_H_

#include <algorithm>
#include <vector>

namespace deeprest {

struct DataQuality {
  // Composite quality in [0, 1]: trace_coverage * metric_coverage. 1 = the
  // window's telemetry arrived complete; 0 = nothing trustworthy arrived and
  // the features are pure imputation.
  double score = 1.0;
  // Fraction of the window's traces that passed admission control, relative
  // to what was observed arriving (rejections are detectable; silent drops
  // are folded in via the expected-volume ratio when renormalization is on).
  double trace_coverage = 1.0;
  // Fraction of known metric series that delivered a sample this window.
  double metric_coverage = 1.0;
  // The window arrived empty and its features were carried forward.
  bool imputed = false;
  // The window arrived partial and its features were rescaled to the
  // expected volume (API-mix renormalization).
  bool renormalized = false;

  bool degraded() const { return score < 1.0 || imputed || renormalized; }
};

// Composite scores of a quality slice, aligned with the windows it was taken
// over. The sanity checker consumes this to widen per-window tolerances.
inline std::vector<double> QualityScores(const std::vector<DataQuality>& quality) {
  std::vector<double> scores;
  scores.reserve(quality.size());
  for (const DataQuality& q : quality) {
    scores.push_back(std::clamp(q.score, 0.0, 1.0));
  }
  return scores;
}

// Minimum composite score over a slice (1.0 when empty).
inline double MinQuality(const std::vector<DataQuality>& quality) {
  double min = 1.0;
  for (const DataQuality& q : quality) {
    min = std::min(min, q.score);
  }
  return min;
}

}  // namespace deeprest

#endif  // SRC_SERVE_DATA_QUALITY_H_
