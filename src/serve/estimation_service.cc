#include "src/serve/estimation_service.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace deeprest {

const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kShed:
      return "shed";
    case RequestStatus::kExpired:
      return "expired";
    case RequestStatus::kRejectedStopped:
      return "rejected-stopped";
    case RequestStatus::kHedgedDuplicate:
      return "hedged-duplicate";
  }
  return "unknown";
}

EstimationService::EstimationService(ModelRegistry& registry, IngestPipeline& pipeline,
                                     const EstimationServiceConfig& config)
    : registry_(registry), pipeline_(pipeline), config_(config) {
  config_.workers = std::max<size_t>(1, config_.workers);
  config_.max_batch = std::max<size_t>(1, config_.max_batch);
  shards_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  worker_state_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; ++i) {
    worker_state_.push_back(std::make_unique<WorkerState>());
    if (config_.health != nullptr) {
      worker_state_.back()->health = config_.health->Register(
          "estimation-worker-" + std::to_string(i), config_.worker_stall_threshold_us);
    }
  }
  workers_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  if (config_.hedge.enabled && config_.workers > 1) {
    if (config_.health != nullptr) {
      hedge_health_ = config_.health->Register("hedge-monitor",
                                               config_.worker_stall_threshold_us);
    }
    hedge_thread_ = std::thread([this] { HedgeLoop(); });
  }
}

EstimationService::~EstimationService() { Stop(); }

std::future<EstimationService::EstimateResult> EstimationService::SubmitTraffic(
    TrafficSeries traffic, uint64_t seed, std::chrono::milliseconds deadline) {
  Request request;
  request.kind = RequestKind::kTraffic;
  request.traffic = std::move(traffic);
  request.seed = seed;
  return SubmitEstimate(std::move(request), deadline);
}

std::future<EstimationService::EstimateResult> EstimationService::SubmitFeatures(
    std::vector<std::vector<float>> features, std::chrono::milliseconds deadline) {
  Request request;
  request.kind = RequestKind::kFeatures;
  request.features = std::move(features);
  return SubmitEstimate(std::move(request), deadline);
}

std::future<EstimationService::EstimateResult> EstimationService::SubmitStreamFeatures(
    uint64_t stream_id, std::vector<std::vector<float>> features,
    std::chrono::milliseconds deadline) {
  Request request;
  request.kind = RequestKind::kFeatures;
  request.features = std::move(features);
  // Without a cache the stream id would silently mean "stateless anyway";
  // dropping it here keeps the hedging eligibility logic honest.
  request.stream_id = config_.stream_states != nullptr ? stream_id : 0;
  return SubmitEstimate(std::move(request), deadline);
}

std::future<EstimationService::EstimateResult> EstimationService::SubmitStreamTraffic(
    uint64_t stream_id, TrafficSeries traffic, uint64_t seed,
    std::chrono::milliseconds deadline) {
  Request request;
  request.kind = RequestKind::kTraffic;
  request.traffic = std::move(traffic);
  request.seed = seed;
  request.stream_id = config_.stream_states != nullptr ? stream_id : 0;
  return SubmitEstimate(std::move(request), deadline);
}

std::future<EstimationService::EstimateResult> EstimationService::SubmitEstimate(
    Request request, std::chrono::milliseconds deadline) {
  // Stream requests are never hedged: the forward pass advances the stream's
  // cached state (a side effect), so a duplicate pass would double-step the
  // stream and the copies would return different estimates.
  if (!config_.hedge.enabled || shards_.size() < 2 || request.stream_id != 0) {
    std::future<EstimateResult> future = request.estimate_promise.get_future();
    Enqueue(std::move(request), deadline);
    return future;
  }

  // Hedge-eligible: both copies share one result slot; the caller's future
  // comes from the shared promise, not from either copy's own.
  auto state = std::make_shared<HedgeState>();
  request.hedge = state;
  std::future<EstimateResult> future = state->promise.get_future();

  // Build the duplicate BEFORE the primary is moved away: same payload, and
  // (after Enqueue stamps the primary below — both copies are stamped here
  // so they agree) the same submission time and absolute deadline, so a
  // hedge can never outlive the deadline its caller asked for.
  StampSubmission(request, deadline);
  Request duplicate;
  duplicate.kind = request.kind;
  duplicate.features = request.features;
  duplicate.traffic = request.traffic;
  duplicate.seed = request.seed;
  duplicate.submitted = request.submitted;
  duplicate.deadline = request.deadline;
  duplicate.has_deadline = request.has_deadline;
  duplicate.hedge = state;
  duplicate.hedge_copy = true;

  const auto delay = HedgeDelay();
  const auto fire_at = request.submitted + delay;
  const size_t index = Enqueue(std::move(request), deadline);
  if (index == SIZE_MAX) {
    return future;  // resolved at the door (shed / rejected): nothing to hedge
  }
  if (duplicate.has_deadline && fire_at >= duplicate.deadline) {
    return future;  // the hedge would fire into a dead request
  }
  PendingHedge pending;
  pending.duplicate = std::move(duplicate);
  pending.fire_at = fire_at;
  pending.sibling = (index + 1) % shards_.size();
  {
    MutexLock lock(hedge_mu_);
    hedge_pending_.push_back(std::move(pending));
  }
  hedge_cv_.notify_one();
  return future;
}

std::future<EstimationService::SanityResult> EstimationService::SubmitSanityCheck(
    size_t from, size_t to, std::chrono::milliseconds deadline) {
  Request request;
  request.kind = RequestKind::kSanity;
  request.from = from;
  request.to = to;
  std::future<SanityResult> future = request.sanity_promise.get_future();
  Enqueue(std::move(request), deadline);
  return future;
}

bool EstimationService::ClaimResolution(Request& request) {
  return request.hedge == nullptr || !request.hedge->claimed.exchange(true);
}

void EstimationService::FinishUnserved(Request& request, RequestStatus status) {
  if (!ClaimResolution(request)) {
    // The other copy of a hedged pair already resolved the caller; this
    // copy's terminal status is just a duplicate tally.
    stats_.RecordHedgedDuplicate();
    return;
  }
  switch (status) {
    case RequestStatus::kShed:
      stats_.RecordShed();
      break;
    case RequestStatus::kExpired:
      stats_.RecordExpired();
      break;
    case RequestStatus::kRejectedStopped:
      stats_.RecordRejected();
      break;
    case RequestStatus::kOk:
    case RequestStatus::kHedgedDuplicate:
      break;  // not unserved statuses; nothing to tally
  }
  if (request.kind == RequestKind::kSanity) {
    SanityResult result;
    result.status = status;
    request.sanity_promise.set_value(std::move(result));
  } else {
    EstimateResult result;
    result.status = status;
    if (request.hedge != nullptr) {
      request.hedge->promise.set_value(std::move(result));
    } else {
      request.estimate_promise.set_value(std::move(result));
    }
  }
}

bool EstimationService::TryPush(Shard& target, Request& request, size_t& backlog) {
  MutexLock lock(target.mu);
  if (stopping_.load()) {
    return false;
  }
  target.queue.push_back(std::move(request));
  backlog = target.queue.size();
  return true;
}

void EstimationService::NotifyAfterPush(Shard& target, size_t index, size_t backlog) {
  target.cv.notify_one();
  // A backlog behind the fresh push means the shard owner is likely mid-batch:
  // flag one sibling so an idle worker steals on demand instead of waiting out
  // its poll interval.
  if (backlog > 1 && shards_.size() > 1) {
    Shard& helper = *shards_[(index + 1) % shards_.size()];
    {
      MutexLock lock(helper.mu);
      helper.steal_hint = true;
    }
    helper.cv.notify_one();
  }
}

void EstimationService::StampSubmission(Request& request,
                                        std::chrono::milliseconds deadline) const {
  if (request.submitted != std::chrono::steady_clock::time_point{}) {
    return;  // a hedged pair was stamped at submission so both copies agree
  }
  request.submitted = std::chrono::steady_clock::now();
  const std::chrono::milliseconds budget =
      deadline.count() > 0 ? deadline : config_.default_deadline;
  if (budget.count() > 0) {
    request.deadline = request.submitted + budget;
    request.has_deadline = true;
  }
}

size_t EstimationService::Enqueue(Request request, std::chrono::milliseconds deadline) {
  StampSubmission(request, deadline);
  stats_.RecordSubmitted();

  const size_t shard_count = shards_.size();
  const size_t index = next_shard_.fetch_add(1, std::memory_order_relaxed) % shard_count;
  Shard& target = *shards_[index];

  for (;;) {
    if (stopping_.load()) {
      FinishUnserved(request, RequestStatus::kRejectedStopped);
      return SIZE_MAX;
    }
    // Reserve a slot under the global bound before touching any shard: the
    // compare-exchange makes max_queue an exact cap — N submitters racing
    // into different shards cannot all slip past a near-full bound.
    bool reserved = true;
    if (config_.max_queue > 0) {
      size_t depth = queued_.load();
      reserved = false;
      while (depth < config_.max_queue) {
        if (queued_.compare_exchange_weak(depth, depth + 1)) {
          reserved = true;
          break;
        }
      }
    } else {
      queued_.fetch_add(1);
    }
    if (reserved) {
      size_t backlog = 0;
      if (!TryPush(target, request, backlog)) {
        // Stop() won the race for this shard; hand the slot back.
        queued_.fetch_sub(1);
        FinishUnserved(request, RequestStatus::kRejectedStopped);
        return SIZE_MAX;
      }
      NotifyAfterPush(target, index, backlog);
      return index;
    }

    // Bound is full. Degraded mode (supervisor escalation) forces the
    // reject-new policy: under a fault storm the service protects in-flight
    // work instead of churning the queue.
    const ShedPolicy policy = degraded_.load(std::memory_order_acquire)
                                  ? ShedPolicy::kRejectNew
                                  : config_.shed_policy;
    if (policy == ShedPolicy::kRejectNew) {
      FinishUnserved(request, RequestStatus::kShed);
      return SIZE_MAX;
    }
    // kDropOldest: evict one queued request and hand its reserved slot to the
    // newcomer — no counter traffic, so the bound is never overshot. With
    // several shards "oldest" is shard-local: this shard's front if it has
    // one, else the front of the first non-empty sibling (see the ShedPolicy
    // comment in the header).
    Request evicted;
    bool have_evicted = false;
    for (size_t off = 0; off < shard_count && !have_evicted; ++off) {
      Shard& victim = *shards_[(index + off) % shard_count];
      MutexLock lock(victim.mu);
      if (victim.queue.empty()) {
        continue;
      }
      evicted = std::move(victim.queue.front());
      victim.queue.pop_front();
      have_evicted = true;
    }
    if (!have_evicted) {
      // Every shard drained between the failed reservation and the scan, so
      // the depth is back under the bound: retry the reservation.
      continue;
    }
    size_t backlog = 0;
    const bool pushed = TryPush(target, request, backlog);
    // The evicted promise resolves after the locks are released: fulfilling
    // it can run arbitrary continuation code.
    FinishUnserved(evicted, RequestStatus::kShed);
    if (!pushed) {
      queued_.fetch_sub(1);  // the slot inherited from the evicted request
      FinishUnserved(request, RequestStatus::kRejectedStopped);
      return SIZE_MAX;
    }
    NotifyAfterPush(target, index, backlog);
    return index;
  }
}

void EstimationService::Stop() {
  // stop_mu_ serializes concurrent Stop()/destruction (a second stopper used
  // to race the first on workers_, a latent double-join). Workers never take
  // stop_mu_, so joining under it cannot deadlock.
  MutexLock stop_lock(stop_mu_);
  stopping_.store(true);  // seq_cst, per the shutdown protocol in the header
  if (workers_.empty()) {
    return;  // already stopped
  }
  // Lock/unlock every shard: any submission that read the flag as false has
  // finished its push by the time we pass its shard, so the drain sees it.
  for (auto& shard : shards_) {
    { MutexLock lock(shard->mu); }
    shard->cv.notify_all();
  }
  // Retire the hedge monitor first: no new duplicates land in the shards
  // while the workers run their final sweeps. Armed-but-unfired hedges are
  // simply dropped — the primary copy still resolves (served or rejected in
  // the leftover sweep below), so no caller is left hanging.
  {
    { MutexLock lock(hedge_mu_); }
    hedge_cv_.notify_all();
  }
  if (hedge_thread_.joinable()) {
    hedge_thread_.join();
  }
  {
    MutexLock lock(hedge_mu_);
    hedge_pending_.clear();
  }
  hedge_health_.MarkStopped();
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
  // Belt and braces: the workers' exit protocol drains every shard before
  // the last one leaves, but the "no request is ever left unresolved"
  // contract must hold unconditionally — sweep once more and reject
  // anything left behind.
  std::vector<Request> leftovers;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    while (!shard->queue.empty()) {
      leftovers.push_back(std::move(shard->queue.front()));
      shard->queue.pop_front();
    }
  }
  if (!leftovers.empty()) {
    queued_.fetch_sub(leftovers.size());
    for (auto& request : leftovers) {
      FinishUnserved(request, RequestStatus::kRejectedStopped);
    }
  }
}

bool EstimationService::RestartWorker(size_t index) {
  MutexLock lock(stop_mu_);
  if (stopping_.load() || index >= worker_state_.size() || index >= workers_.size()) {
    return false;
  }
  WorkerState& state = *worker_state_[index];
  if (!state.exited.load(std::memory_order_acquire)) {
    return false;  // still running (e.g. stalled): a live thread can't be restarted
  }
  if (workers_[index].joinable()) {
    workers_[index].join();
  }
  state.exited.store(false, std::memory_order_release);
  // Fresh lease before the thread is scheduled, so the watchdog's next scan
  // sees the revival instead of instantly re-flagging a stale stamp.
  state.health.Heartbeat();
  workers_[index] = std::thread([this, index] { WorkerLoop(index); });
  stats_.RecordWorkerRestart();
  return true;
}

bool EstimationService::WorkerExited(size_t index) const {
  return index < worker_state_.size() &&
         worker_state_[index]->exited.load(std::memory_order_acquire);
}

void EstimationService::SetDegraded(bool degraded) {
  degraded_.store(degraded, std::memory_order_release);
}

void EstimationService::WorkerLoop(size_t self) {
  Shard& shard = *shards_[self];
  WorkerState& state = *worker_state_[self];
  const bool can_steal = shards_.size() > 1;
  constexpr std::chrono::milliseconds kMinSweepWait{1};
  constexpr std::chrono::milliseconds kMaxSweepWait{64};
  std::chrono::milliseconds sweep_wait = kMinSweepWait;
  for (;;) {
    // Liveness stamp at the top of every sweep (idle waits below are capped,
    // so the stamp refreshes at least every kMaxSweepWait); staleness past
    // the registered threshold is what the watchdog keys recovery off.
    state.health.Heartbeat();
    if (config_.worker_fault_hook) {
      const WorkerFault fault = config_.worker_fault_hook(self);
      if (fault == WorkerFault::kCrash) {
        // Simulated death at a sweep boundary: no batch is in hand, so no
        // promise is stranded. The thread exits WITHOUT MarkStopped — the
        // watchdog must see the corpse go stale. RestartWorker revives it.
        stats_.RecordWorkerCrash();
        state.exited.store(true, std::memory_order_release);
        return;
      }
      if (fault == WorkerFault::kStall) {
        stats_.RecordWorkerStall();  // the hook blocked inside the call
      }
    }
    // Read the stop flag BEFORE sweeping. Enqueue re-checks the flag under
    // the shard lock it pushes into, so once the flag is set no push can
    // land behind a sweep that starts after this load — coming up empty
    // then means empty for good, and exiting cannot strand a request.
    const bool stop_observed = stopping_.load();
    std::vector<Request> batch;
    bool hinted = false;
    {
      // The wait conditions are written as explicit loops (not wait(lock,
      // pred) lambdas) so the thread-safety analysis can see that every read
      // of shard.queue / shard.steal_hint happens with shard.mu held.
      MutexLock lock(shard.mu);
      if (can_steal) {
        // Timed wait so an idle worker still sweeps its siblings for
        // stealable work; steal hints wake it on demand and the exponential
        // backoff below keeps the fallback from becoming a busy-poll.
        const auto sweep_deadline = std::chrono::steady_clock::now() + sweep_wait;
        while (!stopping_.load() && shard.queue.empty() && !shard.steal_hint) {
          if (lock.WaitUntil(shard.cv, sweep_deadline)) {
            break;  // timed out: run the steal sweep anyway
          }
        }
      } else {
        // Timed even without siblings to steal from: heartbeats must keep
        // flowing while idle, or an empty-queue service looks dead to the
        // watchdog.
        const auto idle_deadline = std::chrono::steady_clock::now() + kMaxSweepWait;
        while (!stopping_.load() && shard.queue.empty() && !shard.steal_hint) {
          if (lock.WaitUntil(shard.cv, idle_deadline)) {
            break;  // timed out: loop around for a fresh heartbeat
          }
        }
      }
      hinted = shard.steal_hint;
      shard.steal_hint = false;
      if (!shard.queue.empty()) {
        // Micro-batch linger: hold the first request briefly so bursts
        // coalesce; a full batch or shutdown releases the wait early.
        if (config_.max_batch > 1 && config_.batch_wait.count() > 0 && !stopping_.load() &&
            shard.queue.size() < config_.max_batch) {
          const auto linger_deadline = std::chrono::steady_clock::now() + config_.batch_wait;
          while (!stopping_.load() && shard.queue.size() < config_.max_batch) {
            if (lock.WaitUntil(shard.cv, linger_deadline)) {
              break;
            }
          }
        }
        const size_t take = std::min(shard.queue.size(), config_.max_batch);
        batch.reserve(take);
        for (size_t i = 0; i < take; ++i) {
          batch.push_back(std::move(shard.queue.front()));
          shard.queue.pop_front();
        }
        queued_.fetch_sub(take);
      }
    }
    if (batch.empty() && can_steal) {
      StealBatch(self, batch);
    }
    if (!batch.empty()) {
      sweep_wait = kMinSweepWait;
      ServeBatch(std::move(batch));
      continue;
    }
    if (stop_observed) {
      // The flag was set before this sweep began and the sweep (own shard
      // plus every sibling, each under its lock) found nothing: nothing can
      // arrive anymore, so it is safe to exit. If the flag flipped only
      // mid-sweep, stop_observed is still false and the next iteration runs
      // one more full sweep before exiting.
      state.health.MarkStopped();  // clean exit, not watchdog food
      state.exited.store(true, std::memory_order_release);
      return;
    }
    if (can_steal && !hinted) {
      // Idle and nothing stealable anywhere: back off the sweep cadence so
      // an idle N-worker service doesn't spend ~N*(N-1) cross-shard lock
      // acquisitions per millisecond polling empty queues.
      sweep_wait = std::min(sweep_wait * 2, kMaxSweepWait);
    }
  }
}

bool EstimationService::StealBatch(size_t self, std::vector<Request>& batch) {
  const size_t shard_count = shards_.size();
  for (size_t off = 1; off < shard_count; ++off) {
    Shard& victim = *shards_[(self + off) % shard_count];
    MutexLock lock(victim.mu);
    if (victim.queue.empty()) {
      continue;
    }
    const size_t take = std::min(victim.queue.size(), config_.max_batch);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(victim.queue.front()));
      victim.queue.pop_front();
    }
    queued_.fetch_sub(take);
    return true;
  }
  return false;
}

void EstimationService::ServeBatch(std::vector<Request> batch) {
  // Deadline gate before any model work: a request that has already expired
  // must not spend a forward pass. Expired requests resolve here; the batch
  // shrinks to the still-live ones.
  const auto now = std::chrono::steady_clock::now();
  size_t live = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    if (request.has_deadline && now > request.deadline) {
      FinishUnserved(request, RequestStatus::kExpired);
      continue;
    }
    if (live != i) {
      batch[live] = std::move(request);
    }
    ++live;
  }
  batch.resize(live);
  if (batch.empty()) {
    return;
  }

  stats_.RecordBatch(batch.size());
  const ModelSnapshot snapshot = registry_.Current();
  const auto finish = [&](Request& request, EstimateMap estimates) {
    const double latency_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  request.submitted)
            .count();
    if (request.kind == RequestKind::kSanity) {
      SanityResult result;
      result.model_version = snapshot.version;
      result.from = request.from;
      result.to = request.to;  // clamped at series-build time
      if (snapshot.valid() && result.to > result.from) {
        const MetricsStore actuals = pipeline_.MetricsCopy();
        result.quality = pipeline_.QualitySlice(result.from, result.to);
        result.min_quality = MinQuality(result.quality);
        SanityChecker checker(config_.sanity);
        result.events = checker.Detect(estimates, actuals, result.from, result.to,
                                       QualityScores(result.quality));
      }
      stats_.RecordServed(/*is_sanity=*/true, latency_ms);
      request.sanity_promise.set_value(std::move(result));
    } else {
      if (!ClaimResolution(request)) {
        // The sibling copy of this hedged pair got there first; the forward
        // pass is sunk cost and the result is discarded.
        stats_.RecordHedgedDuplicate();
        return;
      }
      EstimateResult result;
      result.model_version = snapshot.version;
      result.estimates = std::move(estimates);
      stats_.RecordServed(/*is_sanity=*/false, latency_ms);
      if (request.hedge_copy) {
        stats_.RecordHedgeWon();
      }
      if (request.hedge != nullptr) {
        request.hedge->promise.set_value(std::move(result));
      } else {
        request.estimate_promise.set_value(std::move(result));
      }
    }
  };

  if (!snapshot.valid()) {
    for (auto& request : batch) {
      finish(request, {});
    }
    return;
  }

  // Materialize one feature series per request, all against the same
  // snapshot's frozen feature space.
  std::vector<std::vector<std::vector<float>>> series(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    switch (request.kind) {
      case RequestKind::kFeatures:
        series[i] = std::move(request.features);
        break;
      case RequestKind::kTraffic: {
        Rng rng(request.seed);
        TraceCollector synthetic;
        snapshot.model->synthesizer().SynthesizeSeries(request.traffic, 0, rng, synthetic);
        series[i] =
            snapshot.model->features().ExtractSeries(synthetic, 0, request.traffic.windows());
        break;
      }
      case RequestKind::kSanity: {
        // Seal the requested range if producers have already delivered it;
        // otherwise check the available prefix.
        if (pipeline_.featured_windows() < request.to) {
          pipeline_.Fold(std::min(request.to, pipeline_.WindowFrontier()));
        }
        request.to = std::min(request.to, pipeline_.featured_windows());
        request.from = std::min(request.from, request.to);
        series[i] = pipeline_.FeatureSlice(request.from, request.to);
        break;
      }
    }
  }

  bool any_stream = false;
  if (config_.stream_states != nullptr) {
    for (const Request& request : batch) {
      if (request.stream_id != 0) {
        any_stream = true;
        break;
      }
    }
  }

  // One coalesced forward pass: the batch runs as column-stacked GEMMs from
  // the cached warm-start state (see EstimateFromFeaturesBatch). With
  // batch_major off, each request replays the sequential reference path —
  // bit-identical results, kept as a benchmark baseline. A batch carrying
  // stream requests takes the resume path instead: same batch-major math,
  // but cursor-seeded and round-split for duplicate streams.
  std::vector<EstimateMap> estimates;
  if (any_stream) {
    estimates = ServeStreamRounds(batch, series, snapshot);
  } else if (config_.batch_major) {
    std::vector<const std::vector<std::vector<float>>*> pointers;
    pointers.reserve(series.size());
    for (const auto& s : series) {
      pointers.push_back(&s);
    }
    estimates = snapshot.model->EstimateFromFeaturesBatch(pointers);
  } else {
    estimates.resize(series.size());
    for (size_t i = 0; i < series.size(); ++i) {
      estimates[i] = snapshot.model->EstimateFromFeaturesReference(series[i]);
    }
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    finish(batch[i], std::move(estimates[i]));
  }
}

std::vector<EstimateMap> EstimationService::ServeStreamRounds(
    std::vector<Request>& batch, const std::vector<std::vector<std::vector<float>>>& series,
    const ModelSnapshot& snapshot) {
  StateCache& cache = *config_.stream_states;

  // Duplicate-stream requests in one batch cannot share a forward pass —
  // the second must resume exactly where the first left off — so request i
  // runs in round k = its occurrence index among same-stream requests, in
  // submission order. Stateless passengers ride in round 0. Each round is
  // one coalesced batch-major resume pass.
  std::vector<size_t> round_of(batch.size(), 0);
  size_t rounds = 1;
  {
    std::unordered_map<uint64_t, size_t> occurrence;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].stream_id == 0) {
        continue;
      }
      round_of[i] = occurrence[batch[i].stream_id]++;
      rounds = std::max(rounds, round_of[i] + 1);
    }
  }

  // Lease every distinct stream in ascending key order — the documented
  // deadlock-free order for the cache's blocking exclusive lease (another
  // worker leasing an overlapping set cannot form a cycle).
  std::vector<uint64_t> keys;
  keys.reserve(batch.size());
  for (const Request& request : batch) {
    if (request.stream_id != 0) {
      keys.push_back(request.stream_id);
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  std::vector<StateCache::Lease> leases;
  leases.reserve(keys.size());
  std::vector<DeepRestEstimator::StreamCursor> cursors(keys.size());
  std::unordered_map<uint64_t, size_t> cursor_of;
  cursor_of.reserve(keys.size());
  for (size_t k = 0; k < keys.size(); ++k) {
    leases.push_back(cache.AcquireOrCreate(keys[k]));
    StreamState& state = leases.back().state();
    // A hidden state produced under an older model's weights is meaningless
    // under this snapshot: warm-restart the stream (counted) rather than mix
    // versions within one series.
    if (state.model_version != 0 && state.model_version != snapshot.version) {
      state.hidden.clear();
      state.steps = 0;
      stats_.RecordStateReset();
    }
    cursors[k].hidden = state.hidden;
    cursors[k].steps = state.steps;
    cursor_of[keys[k]] = k;
  }

  std::vector<EstimateMap> estimates(batch.size());
  for (size_t r = 0; r < rounds; ++r) {
    std::vector<const std::vector<std::vector<float>>*> round_pointers;
    std::vector<DeepRestEstimator::StreamCursor*> round_cursors;
    std::vector<size_t> round_index;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (round_of[i] != r) {
        continue;
      }
      round_pointers.push_back(&series[i]);
      round_cursors.push_back(batch[i].stream_id == 0
                                  ? nullptr
                                  : &cursors[cursor_of[batch[i].stream_id]]);
      round_index.push_back(i);
    }
    if (round_pointers.empty()) {
      continue;
    }
    std::vector<EstimateMap> round_estimates =
        snapshot.model->EstimateFromFeaturesBatchResume(round_pointers, round_cursors);
    for (size_t j = 0; j < round_index.size(); ++j) {
      estimates[round_index[j]] = std::move(round_estimates[j]);
    }
  }

  // Write the advanced states back under the leases, then let the leases
  // release (re-accounting the grown entries against the budget — which may
  // trigger eviction of OTHER, unpinned streams).
  for (size_t k = 0; k < keys.size(); ++k) {
    StreamState& state = leases[k].state();
    state.hidden = std::move(cursors[k].hidden);
    state.steps = cursors[k].steps;
    state.model_version = snapshot.version;
  }
  return estimates;
}

std::chrono::microseconds EstimationService::HedgeDelay() const {
  const double p_ms =
      stats_.LatencyQuantileMs(config_.hedge.quantile, config_.hedge.min_samples);
  if (p_ms <= 0.0) {
    // Cold start: hedge conservatively until the latency population is in.
    return config_.hedge.max_delay;
  }
  const auto learned = std::chrono::microseconds(static_cast<int64_t>(p_ms * 1000.0));
  return std::clamp(learned, config_.hedge.min_delay, config_.hedge.max_delay);
}

void EstimationService::HedgeLoop() {
  for (;;) {
    PendingHedge due;
    bool have_due = false;
    {
      MutexLock lock(hedge_mu_);
      while (!stopping_.load() && hedge_pending_.empty()) {
        lock.Wait(hedge_cv_);
      }
      if (stopping_.load()) {
        return;  // Stop() clears the pending list; primaries resolve anyway
      }
      hedge_health_.Heartbeat();
      // Earliest-firing entry; the list is short (bounded by in-flight
      // hedge-eligible requests), so a linear scan beats a heap's churn.
      size_t earliest = 0;
      for (size_t i = 1; i < hedge_pending_.size(); ++i) {
        if (hedge_pending_[i].fire_at < hedge_pending_[earliest].fire_at) {
          earliest = i;
        }
      }
      const auto now = std::chrono::steady_clock::now();
      if (hedge_pending_[earliest].fire_at > now) {
        lock.WaitUntil(hedge_cv_, hedge_pending_[earliest].fire_at);
        continue;  // re-evaluate: new entries or stop may have arrived
      }
      due = std::move(hedge_pending_[earliest]);
      hedge_pending_.erase(hedge_pending_.begin() +
                           static_cast<ptrdiff_t>(earliest));
      have_due = true;
    }
    if (!have_due) {
      continue;
    }
    if (due.duplicate.hedge->claimed.load(std::memory_order_acquire)) {
      stats_.RecordHedgeCancelled();  // primary won the wait; nothing to do
      continue;
    }
    if (due.duplicate.has_deadline &&
        std::chrono::steady_clock::now() > due.duplicate.deadline) {
      stats_.RecordHedgeCancelled();
      continue;
    }
    // Reserve a queue slot under the same exact bound as Enqueue — but a
    // full queue SKIPS the hedge instead of shedding real work for it.
    if (config_.max_queue > 0) {
      size_t depth = queued_.load();
      bool reserved = false;
      while (depth < config_.max_queue) {
        if (queued_.compare_exchange_weak(depth, depth + 1)) {
          reserved = true;
          break;
        }
      }
      if (!reserved) {
        stats_.RecordHedgeSkippedFull();
        continue;
      }
    } else {
      queued_.fetch_add(1);
    }
    Shard& target = *shards_[due.sibling];
    size_t backlog = 0;
    if (!TryPush(target, due.duplicate, backlog)) {
      queued_.fetch_sub(1);
      continue;  // stopping; the primary resolves through the drain
    }
    stats_.RecordSubmitted();  // the duplicate is a real queue occupant
    stats_.RecordHedgeLaunched();
    NotifyAfterPush(target, due.sibling, backlog);
  }
}

ServiceCounters EstimationService::Counters() const {
  ServiceCounters counters = stats_.Snapshot();
  counters.queue_depth = queued_.load();
  counters.ingest_lag_windows = pipeline_.IngestLag();
  counters.traces_rejected = pipeline_.rejected_traces();
  counters.traces_deduplicated = pipeline_.duplicate_traces();
  counters.imputed_windows = pipeline_.imputed_windows();
  counters.renormalized_windows = pipeline_.renormalized_windows();
  counters.imputed_metrics = pipeline_.imputed_metrics();
  counters.models_published = registry_.publish_count();
  counters.model_version = registry_.version();
  counters.degraded_mode = degraded_.load(std::memory_order_acquire) ? 1 : 0;
  if (config_.stream_states != nullptr) {
    counters.state_cache_attached = true;
    const StateCacheCounters cache_counters = config_.stream_states->Counters();
    counters.state_hot_hits = cache_counters.hot_hits;
    counters.state_cold_hits = cache_counters.cold_hits;
    counters.state_misses = cache_counters.misses;
    counters.state_evictions = cache_counters.evictions;
    counters.state_spills = cache_counters.spills;
    counters.state_drops = cache_counters.drops;
    counters.state_resident_bytes =
        cache_counters.hot_resident_bytes + cache_counters.cold_resident_bytes;
    const MemoryBudget* budget = config_.stream_states->budget();
    if (budget != nullptr) {
      counters.memory_budget_bytes = budget->budget();
      counters.memory_used_bytes = budget->used();
    }
    const ModelRegistry::RetentionCounters retention = registry_.retention_counters();
    counters.retained_clones = retention.retained;
    counters.retained_clone_bytes = retention.retained_bytes;
  }
  return counters;
}

}  // namespace deeprest
