#include "src/serve/estimation_service.h"

#include <algorithm>
#include <utility>

namespace deeprest {

const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kShed:
      return "shed";
    case RequestStatus::kExpired:
      return "expired";
    case RequestStatus::kRejectedStopped:
      return "rejected-stopped";
  }
  return "unknown";
}

EstimationService::EstimationService(ModelRegistry& registry, IngestPipeline& pipeline,
                                     const EstimationServiceConfig& config)
    : registry_(registry), pipeline_(pipeline), config_(config) {
  config_.workers = std::max<size_t>(1, config_.workers);
  config_.max_batch = std::max<size_t>(1, config_.max_batch);
  shards_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

EstimationService::~EstimationService() { Stop(); }

std::future<EstimationService::EstimateResult> EstimationService::SubmitTraffic(
    TrafficSeries traffic, uint64_t seed, std::chrono::milliseconds deadline) {
  Request request;
  request.kind = RequestKind::kTraffic;
  request.traffic = std::move(traffic);
  request.seed = seed;
  std::future<EstimateResult> future = request.estimate_promise.get_future();
  Enqueue(std::move(request), deadline);
  return future;
}

std::future<EstimationService::EstimateResult> EstimationService::SubmitFeatures(
    std::vector<std::vector<float>> features, std::chrono::milliseconds deadline) {
  Request request;
  request.kind = RequestKind::kFeatures;
  request.features = std::move(features);
  std::future<EstimateResult> future = request.estimate_promise.get_future();
  Enqueue(std::move(request), deadline);
  return future;
}

std::future<EstimationService::SanityResult> EstimationService::SubmitSanityCheck(
    size_t from, size_t to, std::chrono::milliseconds deadline) {
  Request request;
  request.kind = RequestKind::kSanity;
  request.from = from;
  request.to = to;
  std::future<SanityResult> future = request.sanity_promise.get_future();
  Enqueue(std::move(request), deadline);
  return future;
}

void EstimationService::FinishUnserved(Request& request, RequestStatus status) {
  if (request.kind == RequestKind::kSanity) {
    SanityResult result;
    result.status = status;
    request.sanity_promise.set_value(std::move(result));
  } else {
    EstimateResult result;
    result.status = status;
    request.estimate_promise.set_value(std::move(result));
  }
}

bool EstimationService::TryPush(Shard& target, Request& request, size_t& backlog) {
  MutexLock lock(target.mu);
  if (stopping_.load()) {
    return false;
  }
  target.queue.push_back(std::move(request));
  backlog = target.queue.size();
  return true;
}

void EstimationService::NotifyAfterPush(Shard& target, size_t index, size_t backlog) {
  target.cv.notify_one();
  // A backlog behind the fresh push means the shard owner is likely mid-batch:
  // flag one sibling so an idle worker steals on demand instead of waiting out
  // its poll interval.
  if (backlog > 1 && shards_.size() > 1) {
    Shard& helper = *shards_[(index + 1) % shards_.size()];
    {
      MutexLock lock(helper.mu);
      helper.steal_hint = true;
    }
    helper.cv.notify_one();
  }
}

void EstimationService::Enqueue(Request request, std::chrono::milliseconds deadline) {
  request.submitted = std::chrono::steady_clock::now();
  const std::chrono::milliseconds budget =
      deadline.count() > 0 ? deadline : config_.default_deadline;
  if (budget.count() > 0) {
    request.deadline = request.submitted + budget;
    request.has_deadline = true;
  }
  stats_.RecordSubmitted();

  const size_t shard_count = shards_.size();
  const size_t index = next_shard_.fetch_add(1, std::memory_order_relaxed) % shard_count;
  Shard& target = *shards_[index];

  for (;;) {
    if (stopping_.load()) {
      stats_.RecordRejected();
      FinishUnserved(request, RequestStatus::kRejectedStopped);
      return;
    }
    // Reserve a slot under the global bound before touching any shard: the
    // compare-exchange makes max_queue an exact cap — N submitters racing
    // into different shards cannot all slip past a near-full bound.
    bool reserved = true;
    if (config_.max_queue > 0) {
      size_t depth = queued_.load();
      reserved = false;
      while (depth < config_.max_queue) {
        if (queued_.compare_exchange_weak(depth, depth + 1)) {
          reserved = true;
          break;
        }
      }
    } else {
      queued_.fetch_add(1);
    }
    if (reserved) {
      size_t backlog = 0;
      if (!TryPush(target, request, backlog)) {
        // Stop() won the race for this shard; hand the slot back.
        queued_.fetch_sub(1);
        stats_.RecordRejected();
        FinishUnserved(request, RequestStatus::kRejectedStopped);
        return;
      }
      NotifyAfterPush(target, index, backlog);
      return;
    }

    // Bound is full.
    if (config_.shed_policy == ShedPolicy::kRejectNew) {
      stats_.RecordShed();
      FinishUnserved(request, RequestStatus::kShed);
      return;
    }
    // kDropOldest: evict one queued request and hand its reserved slot to the
    // newcomer — no counter traffic, so the bound is never overshot. With
    // several shards "oldest" is shard-local: this shard's front if it has
    // one, else the front of the first non-empty sibling (see the ShedPolicy
    // comment in the header).
    Request evicted;
    bool have_evicted = false;
    for (size_t off = 0; off < shard_count && !have_evicted; ++off) {
      Shard& victim = *shards_[(index + off) % shard_count];
      MutexLock lock(victim.mu);
      if (victim.queue.empty()) {
        continue;
      }
      evicted = std::move(victim.queue.front());
      victim.queue.pop_front();
      have_evicted = true;
    }
    if (!have_evicted) {
      // Every shard drained between the failed reservation and the scan, so
      // the depth is back under the bound: retry the reservation.
      continue;
    }
    size_t backlog = 0;
    const bool pushed = TryPush(target, request, backlog);
    // The evicted promise resolves after the locks are released: fulfilling
    // it can run arbitrary continuation code.
    stats_.RecordShed();
    FinishUnserved(evicted, RequestStatus::kShed);
    if (!pushed) {
      queued_.fetch_sub(1);  // the slot inherited from the evicted request
      stats_.RecordRejected();
      FinishUnserved(request, RequestStatus::kRejectedStopped);
      return;
    }
    NotifyAfterPush(target, index, backlog);
    return;
  }
}

void EstimationService::Stop() {
  // stop_mu_ serializes concurrent Stop()/destruction (a second stopper used
  // to race the first on workers_, a latent double-join). Workers never take
  // stop_mu_, so joining under it cannot deadlock.
  MutexLock stop_lock(stop_mu_);
  stopping_.store(true);  // seq_cst, per the shutdown protocol in the header
  if (workers_.empty()) {
    return;  // already stopped
  }
  // Lock/unlock every shard: any submission that read the flag as false has
  // finished its push by the time we pass its shard, so the drain sees it.
  for (auto& shard : shards_) {
    { MutexLock lock(shard->mu); }
    shard->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
  // Belt and braces: the workers' exit protocol drains every shard before
  // the last one leaves, but the "no request is ever left unresolved"
  // contract must hold unconditionally — sweep once more and reject
  // anything left behind.
  std::vector<Request> leftovers;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    while (!shard->queue.empty()) {
      leftovers.push_back(std::move(shard->queue.front()));
      shard->queue.pop_front();
    }
  }
  if (!leftovers.empty()) {
    queued_.fetch_sub(leftovers.size());
    for (auto& request : leftovers) {
      stats_.RecordRejected();
      FinishUnserved(request, RequestStatus::kRejectedStopped);
    }
  }
}

void EstimationService::WorkerLoop(size_t self) {
  Shard& shard = *shards_[self];
  const bool can_steal = shards_.size() > 1;
  constexpr std::chrono::milliseconds kMinSweepWait{1};
  constexpr std::chrono::milliseconds kMaxSweepWait{64};
  std::chrono::milliseconds sweep_wait = kMinSweepWait;
  for (;;) {
    // Read the stop flag BEFORE sweeping. Enqueue re-checks the flag under
    // the shard lock it pushes into, so once the flag is set no push can
    // land behind a sweep that starts after this load — coming up empty
    // then means empty for good, and exiting cannot strand a request.
    const bool stop_observed = stopping_.load();
    std::vector<Request> batch;
    bool hinted = false;
    {
      // The wait conditions are written as explicit loops (not wait(lock,
      // pred) lambdas) so the thread-safety analysis can see that every read
      // of shard.queue / shard.steal_hint happens with shard.mu held.
      MutexLock lock(shard.mu);
      if (can_steal) {
        // Timed wait so an idle worker still sweeps its siblings for
        // stealable work; steal hints wake it on demand and the exponential
        // backoff below keeps the fallback from becoming a busy-poll.
        const auto sweep_deadline = std::chrono::steady_clock::now() + sweep_wait;
        while (!stopping_.load() && shard.queue.empty() && !shard.steal_hint) {
          if (lock.WaitUntil(shard.cv, sweep_deadline)) {
            break;  // timed out: run the steal sweep anyway
          }
        }
      } else {
        while (!stopping_.load() && shard.queue.empty() && !shard.steal_hint) {
          lock.Wait(shard.cv);
        }
      }
      hinted = shard.steal_hint;
      shard.steal_hint = false;
      if (!shard.queue.empty()) {
        // Micro-batch linger: hold the first request briefly so bursts
        // coalesce; a full batch or shutdown releases the wait early.
        if (config_.max_batch > 1 && config_.batch_wait.count() > 0 && !stopping_.load() &&
            shard.queue.size() < config_.max_batch) {
          const auto linger_deadline = std::chrono::steady_clock::now() + config_.batch_wait;
          while (!stopping_.load() && shard.queue.size() < config_.max_batch) {
            if (lock.WaitUntil(shard.cv, linger_deadline)) {
              break;
            }
          }
        }
        const size_t take = std::min(shard.queue.size(), config_.max_batch);
        batch.reserve(take);
        for (size_t i = 0; i < take; ++i) {
          batch.push_back(std::move(shard.queue.front()));
          shard.queue.pop_front();
        }
        queued_.fetch_sub(take);
      }
    }
    if (batch.empty() && can_steal) {
      StealBatch(self, batch);
    }
    if (!batch.empty()) {
      sweep_wait = kMinSweepWait;
      ServeBatch(std::move(batch));
      continue;
    }
    if (stop_observed) {
      // The flag was set before this sweep began and the sweep (own shard
      // plus every sibling, each under its lock) found nothing: nothing can
      // arrive anymore, so it is safe to exit. If the flag flipped only
      // mid-sweep, stop_observed is still false and the next iteration runs
      // one more full sweep before exiting.
      return;
    }
    if (can_steal && !hinted) {
      // Idle and nothing stealable anywhere: back off the sweep cadence so
      // an idle N-worker service doesn't spend ~N*(N-1) cross-shard lock
      // acquisitions per millisecond polling empty queues.
      sweep_wait = std::min(sweep_wait * 2, kMaxSweepWait);
    }
  }
}

bool EstimationService::StealBatch(size_t self, std::vector<Request>& batch) {
  const size_t shard_count = shards_.size();
  for (size_t off = 1; off < shard_count; ++off) {
    Shard& victim = *shards_[(self + off) % shard_count];
    MutexLock lock(victim.mu);
    if (victim.queue.empty()) {
      continue;
    }
    const size_t take = std::min(victim.queue.size(), config_.max_batch);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(victim.queue.front()));
      victim.queue.pop_front();
    }
    queued_.fetch_sub(take);
    return true;
  }
  return false;
}

void EstimationService::ServeBatch(std::vector<Request> batch) {
  // Deadline gate before any model work: a request that has already expired
  // must not spend a forward pass. Expired requests resolve here; the batch
  // shrinks to the still-live ones.
  const auto now = std::chrono::steady_clock::now();
  size_t live = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    if (request.has_deadline && now > request.deadline) {
      stats_.RecordExpired();
      FinishUnserved(request, RequestStatus::kExpired);
      continue;
    }
    if (live != i) {
      batch[live] = std::move(request);
    }
    ++live;
  }
  batch.resize(live);
  if (batch.empty()) {
    return;
  }

  stats_.RecordBatch(batch.size());
  const ModelSnapshot snapshot = registry_.Current();
  const auto finish = [&](Request& request, EstimateMap estimates) {
    const double latency_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  request.submitted)
            .count();
    if (request.kind == RequestKind::kSanity) {
      SanityResult result;
      result.model_version = snapshot.version;
      result.from = request.from;
      result.to = request.to;  // clamped at series-build time
      if (snapshot.valid() && result.to > result.from) {
        const MetricsStore actuals = pipeline_.MetricsCopy();
        result.quality = pipeline_.QualitySlice(result.from, result.to);
        result.min_quality = MinQuality(result.quality);
        SanityChecker checker(config_.sanity);
        result.events = checker.Detect(estimates, actuals, result.from, result.to,
                                       QualityScores(result.quality));
      }
      stats_.RecordServed(/*is_sanity=*/true, latency_ms);
      request.sanity_promise.set_value(std::move(result));
    } else {
      EstimateResult result;
      result.model_version = snapshot.version;
      result.estimates = std::move(estimates);
      stats_.RecordServed(/*is_sanity=*/false, latency_ms);
      request.estimate_promise.set_value(std::move(result));
    }
  };

  if (!snapshot.valid()) {
    for (auto& request : batch) {
      finish(request, {});
    }
    return;
  }

  // Materialize one feature series per request, all against the same
  // snapshot's frozen feature space.
  std::vector<std::vector<std::vector<float>>> series(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    switch (request.kind) {
      case RequestKind::kFeatures:
        series[i] = std::move(request.features);
        break;
      case RequestKind::kTraffic: {
        Rng rng(request.seed);
        TraceCollector synthetic;
        snapshot.model->synthesizer().SynthesizeSeries(request.traffic, 0, rng, synthetic);
        series[i] =
            snapshot.model->features().ExtractSeries(synthetic, 0, request.traffic.windows());
        break;
      }
      case RequestKind::kSanity: {
        // Seal the requested range if producers have already delivered it;
        // otherwise check the available prefix.
        if (pipeline_.featured_windows() < request.to) {
          pipeline_.Fold(std::min(request.to, pipeline_.WindowFrontier()));
        }
        request.to = std::min(request.to, pipeline_.featured_windows());
        request.from = std::min(request.from, request.to);
        series[i] = pipeline_.FeatureSlice(request.from, request.to);
        break;
      }
    }
  }

  std::vector<const std::vector<std::vector<float>>*> pointers;
  pointers.reserve(series.size());
  for (const auto& s : series) {
    pointers.push_back(&s);
  }
  // One coalesced forward pass: the batch runs as column-stacked GEMMs from
  // the cached warm-start state (see EstimateFromFeaturesBatch). With
  // batch_major off, each request replays the sequential reference path —
  // bit-identical results, kept as a benchmark baseline.
  std::vector<EstimateMap> estimates;
  if (config_.batch_major) {
    estimates = snapshot.model->EstimateFromFeaturesBatch(pointers);
  } else {
    estimates.resize(series.size());
    for (size_t i = 0; i < series.size(); ++i) {
      estimates[i] = snapshot.model->EstimateFromFeaturesReference(series[i]);
    }
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    finish(batch[i], std::move(estimates[i]));
  }
}

ServiceCounters EstimationService::Counters() const {
  ServiceCounters counters = stats_.Snapshot();
  counters.queue_depth = queued_.load();
  counters.ingest_lag_windows = pipeline_.IngestLag();
  counters.traces_rejected = pipeline_.rejected_traces();
  counters.traces_deduplicated = pipeline_.duplicate_traces();
  counters.imputed_windows = pipeline_.imputed_windows();
  counters.renormalized_windows = pipeline_.renormalized_windows();
  counters.imputed_metrics = pipeline_.imputed_metrics();
  counters.models_published = registry_.publish_count();
  counters.model_version = registry_.version();
  return counters;
}

}  // namespace deeprest
