#include "src/serve/estimation_service.h"

#include <algorithm>
#include <utility>

namespace deeprest {

const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kShed:
      return "shed";
    case RequestStatus::kExpired:
      return "expired";
    case RequestStatus::kRejectedStopped:
      return "rejected-stopped";
  }
  return "unknown";
}

EstimationService::EstimationService(ModelRegistry& registry, IngestPipeline& pipeline,
                                     const EstimationServiceConfig& config)
    : registry_(registry), pipeline_(pipeline), config_(config) {
  config_.workers = std::max<size_t>(1, config_.workers);
  config_.max_batch = std::max<size_t>(1, config_.max_batch);
  shards_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

EstimationService::~EstimationService() { Stop(); }

std::future<EstimationService::EstimateResult> EstimationService::SubmitTraffic(
    TrafficSeries traffic, uint64_t seed, std::chrono::milliseconds deadline) {
  Request request;
  request.kind = RequestKind::kTraffic;
  request.traffic = std::move(traffic);
  request.seed = seed;
  std::future<EstimateResult> future = request.estimate_promise.get_future();
  Enqueue(std::move(request), deadline);
  return future;
}

std::future<EstimationService::EstimateResult> EstimationService::SubmitFeatures(
    std::vector<std::vector<float>> features, std::chrono::milliseconds deadline) {
  Request request;
  request.kind = RequestKind::kFeatures;
  request.features = std::move(features);
  std::future<EstimateResult> future = request.estimate_promise.get_future();
  Enqueue(std::move(request), deadline);
  return future;
}

std::future<EstimationService::SanityResult> EstimationService::SubmitSanityCheck(
    size_t from, size_t to, std::chrono::milliseconds deadline) {
  Request request;
  request.kind = RequestKind::kSanity;
  request.from = from;
  request.to = to;
  std::future<SanityResult> future = request.sanity_promise.get_future();
  Enqueue(std::move(request), deadline);
  return future;
}

void EstimationService::FinishUnserved(Request& request, RequestStatus status) {
  if (request.kind == RequestKind::kSanity) {
    SanityResult result;
    result.status = status;
    request.sanity_promise.set_value(std::move(result));
  } else {
    EstimateResult result;
    result.status = status;
    request.estimate_promise.set_value(std::move(result));
  }
}

void EstimationService::Enqueue(Request request, std::chrono::milliseconds deadline) {
  request.submitted = std::chrono::steady_clock::now();
  const std::chrono::milliseconds budget =
      deadline.count() > 0 ? deadline : config_.default_deadline;
  if (budget.count() > 0) {
    request.deadline = request.submitted + budget;
    request.has_deadline = true;
  }
  stats_.RecordSubmitted();

  // Requests evicted under a lock resolve after it is released: fulfilling
  // a promise can run arbitrary continuation code.
  const size_t shard_count = shards_.size();
  const size_t index = next_shard_.fetch_add(1, std::memory_order_relaxed) % shard_count;
  Shard& target = *shards_[index];
  bool rejected_stopped = false;
  bool shed_new = false;       // the newcomer itself is shed (kRejectNew)
  bool have_evicted = false;   // an older queued request is shed (kDropOldest)
  bool need_cross_evict = false;
  Request evicted;
  {
    std::lock_guard<std::mutex> lock(target.mu);
    if (stopping_.load()) {
      rejected_stopped = true;
      evicted = std::move(request);
    } else if (config_.max_queue > 0 && queued_.load() >= config_.max_queue) {
      if (config_.shed_policy == ShedPolicy::kDropOldest) {
        // The new request always enters; the oldest queued one leaves. With
        // several shards "oldest" is shard-local: this shard's front if it
        // has one, else the front of the first non-empty sibling.
        if (!target.queue.empty()) {
          evicted = std::move(target.queue.front());
          target.queue.pop_front();
          have_evicted = true;
        } else {
          need_cross_evict = true;
          queued_.fetch_add(1);
        }
        target.queue.push_back(std::move(request));
      } else {
        shed_new = true;
        evicted = std::move(request);
      }
    } else {
      target.queue.push_back(std::move(request));
      queued_.fetch_add(1);
    }
  }
  if (rejected_stopped) {
    stats_.RecordRejected();
    FinishUnserved(evicted, RequestStatus::kRejectedStopped);
    return;
  }
  if (shed_new) {
    stats_.RecordShed();
    FinishUnserved(evicted, RequestStatus::kShed);
    return;  // nothing new entered the queue
  }
  if (need_cross_evict) {
    for (size_t off = 1; off < shard_count && !have_evicted; ++off) {
      Shard& victim = *shards_[(index + off) % shard_count];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (victim.queue.empty()) {
        continue;
      }
      evicted = std::move(victim.queue.front());
      victim.queue.pop_front();
      queued_.fetch_sub(1);
      have_evicted = true;
    }
    // If every sibling drained in the meantime, the total depth is back
    // under the bound and nothing needs shedding after all.
  }
  if (have_evicted) {
    stats_.RecordShed();
    FinishUnserved(evicted, RequestStatus::kShed);
  }
  target.cv.notify_one();
}

void EstimationService::Stop() {
  if (stopping_.exchange(true) && workers_.empty()) {
    return;
  }
  // Lock/unlock every shard: any submission that read the flag as false has
  // finished its push by the time we pass its shard, so the drain sees it.
  for (auto& shard : shards_) {
    { std::lock_guard<std::mutex> lock(shard->mu); }
    shard->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
}

void EstimationService::WorkerLoop(size_t self) {
  Shard& shard = *shards_[self];
  const bool can_steal = shards_.size() > 1;
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      const auto ready = [&] { return stopping_.load() || !shard.queue.empty(); };
      if (can_steal) {
        // Timed wait so an idle worker periodically sweeps its siblings for
        // stealable work instead of sleeping through their backlog.
        shard.cv.wait_for(lock, std::chrono::milliseconds(1), ready);
      } else {
        shard.cv.wait(lock, ready);
      }
      if (!shard.queue.empty()) {
        // Micro-batch linger: hold the first request briefly so bursts
        // coalesce; a full batch or shutdown releases the wait early.
        if (config_.max_batch > 1 && config_.batch_wait.count() > 0 && !stopping_.load() &&
            shard.queue.size() < config_.max_batch) {
          shard.cv.wait_for(lock, config_.batch_wait, [&] {
            return stopping_.load() || shard.queue.size() >= config_.max_batch;
          });
        }
        const size_t take = std::min(shard.queue.size(), config_.max_batch);
        batch.reserve(take);
        for (size_t i = 0; i < take; ++i) {
          batch.push_back(std::move(shard.queue.front()));
          shard.queue.pop_front();
        }
        queued_.fetch_sub(take);
      }
    }
    if (batch.empty() && can_steal) {
      StealBatch(self, batch);
    }
    if (!batch.empty()) {
      ServeBatch(std::move(batch));
      continue;
    }
    if (stopping_.load()) {
      // Own shard drained and a full sweep found nothing stealable. Safe to
      // exit: no push can land after this point without observing the flag
      // (see the shutdown-safety note in the header).
      return;
    }
  }
}

bool EstimationService::StealBatch(size_t self, std::vector<Request>& batch) {
  const size_t shard_count = shards_.size();
  for (size_t off = 1; off < shard_count; ++off) {
    Shard& victim = *shards_[(self + off) % shard_count];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.queue.empty()) {
      continue;
    }
    const size_t take = std::min(victim.queue.size(), config_.max_batch);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(victim.queue.front()));
      victim.queue.pop_front();
    }
    queued_.fetch_sub(take);
    return true;
  }
  return false;
}

void EstimationService::ServeBatch(std::vector<Request> batch) {
  // Deadline gate before any model work: a request that has already expired
  // must not spend a forward pass. Expired requests resolve here; the batch
  // shrinks to the still-live ones.
  const auto now = std::chrono::steady_clock::now();
  size_t live = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    if (request.has_deadline && now > request.deadline) {
      stats_.RecordExpired();
      FinishUnserved(request, RequestStatus::kExpired);
      continue;
    }
    if (live != i) {
      batch[live] = std::move(request);
    }
    ++live;
  }
  batch.resize(live);
  if (batch.empty()) {
    return;
  }

  stats_.RecordBatch(batch.size());
  const ModelSnapshot snapshot = registry_.Current();
  const auto finish = [&](Request& request, EstimateMap estimates) {
    const double latency_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  request.submitted)
            .count();
    if (request.kind == RequestKind::kSanity) {
      SanityResult result;
      result.model_version = snapshot.version;
      result.from = request.from;
      result.to = request.to;  // clamped at series-build time
      if (snapshot.valid() && result.to > result.from) {
        const MetricsStore actuals = pipeline_.MetricsCopy();
        result.quality = pipeline_.QualitySlice(result.from, result.to);
        result.min_quality = MinQuality(result.quality);
        SanityChecker checker(config_.sanity);
        result.events = checker.Detect(estimates, actuals, result.from, result.to,
                                       QualityScores(result.quality));
      }
      stats_.RecordServed(/*is_sanity=*/true, latency_ms);
      request.sanity_promise.set_value(std::move(result));
    } else {
      EstimateResult result;
      result.model_version = snapshot.version;
      result.estimates = std::move(estimates);
      stats_.RecordServed(/*is_sanity=*/false, latency_ms);
      request.estimate_promise.set_value(std::move(result));
    }
  };

  if (!snapshot.valid()) {
    for (auto& request : batch) {
      finish(request, {});
    }
    return;
  }

  // Materialize one feature series per request, all against the same
  // snapshot's frozen feature space.
  std::vector<std::vector<std::vector<float>>> series(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    switch (request.kind) {
      case RequestKind::kFeatures:
        series[i] = std::move(request.features);
        break;
      case RequestKind::kTraffic: {
        Rng rng(request.seed);
        TraceCollector synthetic;
        snapshot.model->synthesizer().SynthesizeSeries(request.traffic, 0, rng, synthetic);
        series[i] =
            snapshot.model->features().ExtractSeries(synthetic, 0, request.traffic.windows());
        break;
      }
      case RequestKind::kSanity: {
        // Seal the requested range if producers have already delivered it;
        // otherwise check the available prefix.
        if (pipeline_.featured_windows() < request.to) {
          pipeline_.Fold(std::min(request.to, pipeline_.WindowFrontier()));
        }
        request.to = std::min(request.to, pipeline_.featured_windows());
        request.from = std::min(request.from, request.to);
        series[i] = pipeline_.FeatureSlice(request.from, request.to);
        break;
      }
    }
  }

  std::vector<const std::vector<std::vector<float>>*> pointers;
  pointers.reserve(series.size());
  for (const auto& s : series) {
    pointers.push_back(&s);
  }
  // One coalesced forward pass: the batch runs as column-stacked GEMMs from
  // the cached warm-start state (see EstimateFromFeaturesBatch). With
  // batch_major off, each request replays the sequential reference path —
  // bit-identical results, kept as a benchmark baseline.
  std::vector<EstimateMap> estimates;
  if (config_.batch_major) {
    estimates = snapshot.model->EstimateFromFeaturesBatch(pointers);
  } else {
    estimates.resize(series.size());
    for (size_t i = 0; i < series.size(); ++i) {
      estimates[i] = snapshot.model->EstimateFromFeaturesReference(series[i]);
    }
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    finish(batch[i], std::move(estimates[i]));
  }
}

ServiceCounters EstimationService::Counters() const {
  ServiceCounters counters = stats_.Snapshot();
  counters.queue_depth = queued_.load();
  counters.ingest_lag_windows = pipeline_.IngestLag();
  counters.traces_rejected = pipeline_.rejected_traces();
  counters.traces_deduplicated = pipeline_.duplicate_traces();
  counters.imputed_windows = pipeline_.imputed_windows();
  counters.renormalized_windows = pipeline_.renormalized_windows();
  counters.imputed_metrics = pipeline_.imputed_metrics();
  counters.models_published = registry_.publish_count();
  counters.model_version = registry_.version();
  return counters;
}

}  // namespace deeprest
