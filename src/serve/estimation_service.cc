#include "src/serve/estimation_service.h"

#include <algorithm>
#include <utility>

namespace deeprest {

const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kShed:
      return "shed";
    case RequestStatus::kExpired:
      return "expired";
    case RequestStatus::kRejectedStopped:
      return "rejected-stopped";
  }
  return "unknown";
}

EstimationService::EstimationService(ModelRegistry& registry, IngestPipeline& pipeline,
                                     const EstimationServiceConfig& config)
    : registry_(registry), pipeline_(pipeline), config_(config) {
  config_.workers = std::max<size_t>(1, config_.workers);
  config_.max_batch = std::max<size_t>(1, config_.max_batch);
  workers_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

EstimationService::~EstimationService() { Stop(); }

std::future<EstimationService::EstimateResult> EstimationService::SubmitTraffic(
    TrafficSeries traffic, uint64_t seed, std::chrono::milliseconds deadline) {
  Request request;
  request.kind = RequestKind::kTraffic;
  request.traffic = std::move(traffic);
  request.seed = seed;
  std::future<EstimateResult> future = request.estimate_promise.get_future();
  Enqueue(std::move(request), deadline);
  return future;
}

std::future<EstimationService::EstimateResult> EstimationService::SubmitFeatures(
    std::vector<std::vector<float>> features, std::chrono::milliseconds deadline) {
  Request request;
  request.kind = RequestKind::kFeatures;
  request.features = std::move(features);
  std::future<EstimateResult> future = request.estimate_promise.get_future();
  Enqueue(std::move(request), deadline);
  return future;
}

std::future<EstimationService::SanityResult> EstimationService::SubmitSanityCheck(
    size_t from, size_t to, std::chrono::milliseconds deadline) {
  Request request;
  request.kind = RequestKind::kSanity;
  request.from = from;
  request.to = to;
  std::future<SanityResult> future = request.sanity_promise.get_future();
  Enqueue(std::move(request), deadline);
  return future;
}

void EstimationService::FinishUnserved(Request& request, RequestStatus status) {
  if (request.kind == RequestKind::kSanity) {
    SanityResult result;
    result.status = status;
    request.sanity_promise.set_value(std::move(result));
  } else {
    EstimateResult result;
    result.status = status;
    request.estimate_promise.set_value(std::move(result));
  }
}

void EstimationService::Enqueue(Request request, std::chrono::milliseconds deadline) {
  request.submitted = std::chrono::steady_clock::now();
  const std::chrono::milliseconds budget =
      deadline.count() > 0 ? deadline : config_.default_deadline;
  if (budget.count() > 0) {
    request.deadline = request.submitted + budget;
    request.has_deadline = true;
  }
  stats_.RecordSubmitted();

  // Requests evicted under the lock resolve after it is released: fulfilling
  // a promise can run arbitrary continuation code.
  bool rejected_stopped = false;
  bool shed = false;
  Request evicted;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      rejected_stopped = true;
      evicted = std::move(request);
    } else if (config_.max_queue > 0 && queue_.size() >= config_.max_queue) {
      shed = true;
      if (config_.shed_policy == ShedPolicy::kDropOldest) {
        evicted = std::move(queue_.front());
        queue_.pop_front();
        queue_.push_back(std::move(request));
      } else {
        evicted = std::move(request);
      }
    } else {
      queue_.push_back(std::move(request));
    }
  }
  if (rejected_stopped) {
    stats_.RecordRejected();
    FinishUnserved(evicted, RequestStatus::kRejectedStopped);
    return;
  }
  if (shed) {
    stats_.RecordShed();
    FinishUnserved(evicted, RequestStatus::kShed);
    if (config_.shed_policy == ShedPolicy::kRejectNew) {
      return;  // nothing new entered the queue
    }
  }
  queue_cv_.notify_one();
}

void EstimationService::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_ && workers_.empty()) {
      return;
    }
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
}

void EstimationService::WorkerLoop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and fully drained
      }
      // Micro-batch linger: hold the first request briefly so bursts
      // coalesce; a full batch or shutdown releases the wait early.
      if (config_.max_batch > 1 && config_.batch_wait.count() > 0 && !stopping_ &&
          queue_.size() < config_.max_batch) {
        queue_cv_.wait_for(lock, config_.batch_wait, [this] {
          return stopping_ || queue_.size() >= config_.max_batch;
        });
      }
      const size_t take = std::min(queue_.size(), config_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    ServeBatch(std::move(batch));
  }
}

void EstimationService::ServeBatch(std::vector<Request> batch) {
  // Deadline gate before any model work: a request that has already expired
  // must not spend a forward pass. Expired requests resolve here; the batch
  // shrinks to the still-live ones.
  const auto now = std::chrono::steady_clock::now();
  size_t live = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    if (request.has_deadline && now > request.deadline) {
      stats_.RecordExpired();
      FinishUnserved(request, RequestStatus::kExpired);
      continue;
    }
    if (live != i) {
      batch[live] = std::move(request);
    }
    ++live;
  }
  batch.resize(live);
  if (batch.empty()) {
    return;
  }

  stats_.RecordBatch(batch.size());
  const ModelSnapshot snapshot = registry_.Current();
  const auto finish = [&](Request& request, EstimateMap estimates) {
    const double latency_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  request.submitted)
            .count();
    if (request.kind == RequestKind::kSanity) {
      SanityResult result;
      result.model_version = snapshot.version;
      result.from = request.from;
      result.to = request.to;  // clamped at series-build time
      if (snapshot.valid() && result.to > result.from) {
        const MetricsStore actuals = pipeline_.MetricsCopy();
        result.quality = pipeline_.QualitySlice(result.from, result.to);
        result.min_quality = MinQuality(result.quality);
        SanityChecker checker(config_.sanity);
        result.events = checker.Detect(estimates, actuals, result.from, result.to,
                                       QualityScores(result.quality));
      }
      stats_.RecordServed(/*is_sanity=*/true, latency_ms);
      request.sanity_promise.set_value(std::move(result));
    } else {
      EstimateResult result;
      result.model_version = snapshot.version;
      result.estimates = std::move(estimates);
      stats_.RecordServed(/*is_sanity=*/false, latency_ms);
      request.estimate_promise.set_value(std::move(result));
    }
  };

  if (!snapshot.valid()) {
    for (auto& request : batch) {
      finish(request, {});
    }
    return;
  }

  // Materialize one feature series per request, all against the same
  // snapshot's frozen feature space.
  std::vector<std::vector<std::vector<float>>> series(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    switch (request.kind) {
      case RequestKind::kFeatures:
        series[i] = std::move(request.features);
        break;
      case RequestKind::kTraffic: {
        Rng rng(request.seed);
        TraceCollector synthetic;
        snapshot.model->synthesizer().SynthesizeSeries(request.traffic, 0, rng, synthetic);
        series[i] =
            snapshot.model->features().ExtractSeries(synthetic, 0, request.traffic.windows());
        break;
      }
      case RequestKind::kSanity: {
        // Seal the requested range if producers have already delivered it;
        // otherwise check the available prefix.
        if (pipeline_.featured_windows() < request.to) {
          pipeline_.Fold(std::min(request.to, pipeline_.WindowFrontier()));
        }
        request.to = std::min(request.to, pipeline_.featured_windows());
        request.from = std::min(request.from, request.to);
        series[i] = pipeline_.FeatureSlice(request.from, request.to);
        break;
      }
    }
  }

  std::vector<const std::vector<std::vector<float>>*> pointers;
  pointers.reserve(series.size());
  for (const auto& s : series) {
    pointers.push_back(&s);
  }
  // One coalesced forward pass: the warm-start replay runs once for the
  // whole batch (see EstimateFromFeaturesBatch).
  std::vector<EstimateMap> estimates = snapshot.model->EstimateFromFeaturesBatch(pointers);
  for (size_t i = 0; i < batch.size(); ++i) {
    finish(batch[i], std::move(estimates[i]));
  }
}

ServiceCounters EstimationService::Counters() const {
  ServiceCounters counters = stats_.Snapshot();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    counters.queue_depth = queue_.size();
  }
  counters.ingest_lag_windows = pipeline_.IngestLag();
  counters.traces_rejected = pipeline_.rejected_traces();
  counters.traces_deduplicated = pipeline_.duplicate_traces();
  counters.imputed_windows = pipeline_.imputed_windows();
  counters.renormalized_windows = pipeline_.renormalized_windows();
  counters.imputed_metrics = pipeline_.imputed_metrics();
  counters.models_published = registry_.publish_count();
  counters.model_version = registry_.version();
  return counters;
}

}  // namespace deeprest
