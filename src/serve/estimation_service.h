// Concurrent, micro-batching front door of the online estimator.
//
// Clients submit estimation and sanity-check requests and get futures back.
// Each worker thread owns a private queue shard: submissions round-robin
// across shards with an atomic counter, so batch assembly never serializes
// every worker on one mutex, and a worker whose shard runs dry steals a
// batch from a sibling so no queued request is ever stranded behind a busy
// or unlucky worker. A worker that picks up a request lingers briefly
// (batch_wait) to coalesce up to max_batch queued requests from its shard
// into one forward pass via DeepRestEstimator::EstimateFromFeaturesBatch —
// with batch_major on (default), the batch runs as one column-stacked GEMM
// pass from the cached warm-start state; off, each request replays the
// sequential reference path (the pre-batch-major behavior).
//
// Shutdown safety: Stop() flips the (seq_cst) stopping flag, then
// locks/unlocks every shard so any submission that saw the flag unset has
// finished its push, then wakes and joins the workers. A worker reads the
// flag BEFORE each sweep and exits only when a sweep that *started* with
// the flag already set — own shard plus a full steal pass, each under its
// shard lock — comes up empty. Enqueue re-checks the flag under the shard
// lock it pushes into, so no push can land behind such a sweep: a racing
// submission either completed its push before the sweep reached that shard
// (and the sweep took it) or observes the flag and rejects. After joining,
// Stop() sweeps every shard once more and resolves anything left with
// kRejectedStopped, so no request is ever left unresolved, unconditionally.
//
// Snapshot discipline: a batch grabs ONE ModelSnapshot from the registry and
// serves every request in the batch against it, so a request never observes
// weights from two model versions even while the ContinualLearner publishes
// mid-flight. Each result carries the version that produced it.
//
// Overload protection (DESIGN.md "Failure model"): the request queue is
// bounded (max_queue) and sheds under pressure instead of growing without
// limit — either the new arrival (kRejectNew) or the oldest queued request
// (kDropOldest) resolves immediately with status kShed. Requests may carry a
// deadline; a request whose deadline passed before a worker reached it
// resolves with kExpired without paying for a forward pass. Every result
// carries a RequestStatus, and a request submitted after Stop() resolves with
// kRejectedStopped rather than hanging or crashing.
//
// Self-healing (DESIGN.md "Failure model", supervision tree): with a
// HealthRegistry wired in, every worker heartbeats at the top of each sweep
// so a watchdog (supervisor.h) can spot a stalled or dead worker by
// staleness alone. A worker that "crashes" (its thread exits, e.g. via the
// chaos hook) is revived by RestartWorker on the same shard; SetDegraded is
// the supervisor's escalation lever, forcing reject-new shedding. Hedged
// estimate requests (HedgeConfig) re-submit a still-pending request to the
// sibling shard after a learned p99 delay; the two copies share one result
// slot claimed atomically, so exactly one resolves the caller's future and
// the loser is discarded as kHedgedDuplicate — tail latency insurance that
// also routes around a wedged worker without waiting for the watchdog.
#ifndef SRC_SERVE_ESTIMATION_SERVICE_H_
#define SRC_SERVE_ESTIMATION_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/estimator.h"
#include "src/core/sanity.h"
#include "src/core/thread_annotations.h"
#include "src/serve/data_quality.h"
#include "src/serve/health.h"
#include "src/serve/ingest_pipeline.h"
#include "src/serve/model_registry.h"
#include "src/serve/state_cache.h"
#include "src/serve/stats.h"
#include "src/workload/traffic.h"

namespace deeprest {

// Terminal state of one request. Anything other than kOk means the request
// did not run a forward pass and its payload fields are empty.
enum class RequestStatus {
  kOk = 0,
  kShed,             // bounded queue was full; load-shedding policy dropped it
  kExpired,          // deadline passed before a worker served it
  kRejectedStopped,  // submitted after Stop()
  kHedgedDuplicate,  // the losing copy of a hedged pair (winner resolved first)
};

// Number of RequestStatus enumerators. Keep in lockstep with the enum: the
// exhaustiveness test asserts RequestStatusName knows exactly this many
// distinct statuses and returns "unknown" immediately past the count.
inline constexpr size_t kRequestStatusCount = 5;

const char* RequestStatusName(RequestStatus status);

// What to evict when the bounded queue is full. max_queue is an exact cap:
// submission reserves a slot with a compare-exchange on the global depth
// counter before touching any shard, so concurrent submitters to different
// shards cannot collectively overshoot the bound. With several shards,
// kDropOldest's "oldest" is approximate — the victim is the front of the
// submission's target shard if it has one, else the front of the first
// non-empty sibling — so a strictly older request parked in another shard
// may outlive a younger victim.
enum class ShedPolicy {
  kRejectNew,   // newest arrival is shed (favors in-flight work)
  kDropOldest,  // oldest queued request is shed (favors fresh requests)
};

// Tail-latency insurance for estimate requests: after a learned delay the
// still-unresolved request is re-submitted to the NEXT shard, and whichever
// copy finishes first resolves the caller's future (the loser is counted as
// kHedgedDuplicate and its result discarded — duplicate-safe by an atomic
// claim on the shared result slot). The delay tracks the service's own p99
// latency so hedges fire only for genuine stragglers, not the common case.
struct HedgeConfig {
  bool enabled = false;
  // Hedge when the primary has been pending for this service-latency
  // quantile (learned from the live latency samples).
  double quantile = 0.99;
  // Clamp on the learned delay; the floor also serves as the cold-start
  // delay until min_samples latencies have been observed.
  std::chrono::microseconds min_delay{500};
  std::chrono::microseconds max_delay{50000};
  size_t min_samples = 32;
};

// Chaos hook outcome, consulted by each worker at the top of every sweep
// (estimation_service is fault-injection-agnostic: the sim layer's chaos
// schedule is bridged in through the hook at bench/CLI level).
enum class WorkerFault {
  kNone = 0,
  kStall,  // the hook blocked inside the call; counted, sweep continues
  kCrash,  // the worker thread exits as if it died; RestartWorker revives it
};

struct EstimationServiceConfig {
  size_t workers = 4;
  // Requests coalesced into one forward pass. 1 disables micro-batching.
  size_t max_batch = 8;
  // How long the first request of a batch waits for company. Zero serves
  // whatever is queued without lingering.
  std::chrono::microseconds batch_wait{200};
  // Queue bound; 0 = unbounded (the pre-overload-protection behavior).
  size_t max_queue = 0;
  ShedPolicy shed_policy = ShedPolicy::kRejectNew;
  // Deadline applied to requests submitted without one; 0 = no deadline.
  std::chrono::milliseconds default_deadline{0};
  // Serve each batch as one column-stacked batch-major forward pass (the
  // fast path). Off, every request replays the sequential reference path —
  // same results bit for bit, kept as a benchmark baseline and escape hatch.
  bool batch_major = true;
  SanityConfig sanity;
  // Hedged estimate requests (needs >= 2 workers to have a sibling shard).
  HedgeConfig hedge;
  // When set, every worker registers as "estimation-worker-<i>" and
  // heartbeats each sweep, so the watchdog can detect stalls and crashes.
  // Must outlive the service.
  HealthRegistry* health = nullptr;
  // Staleness past which a worker counts as stuck (registry registration).
  uint64_t worker_stall_threshold_us = 200000;
  // Chaos hook: called by worker `i` at the top of each sweep. May block
  // (that IS a stall); kCrash makes the worker thread exit.
  std::function<WorkerFault(size_t)> worker_fault_hook;
  // Soft-memory tiered per-stream warm-start state (state_cache.h). When
  // set, requests submitted with a nonzero stream id resume that stream's
  // cached hidden state instead of warm-starting from scratch and write the
  // advanced state back after the pass. Must outlive the service. Stream
  // requests are never hedged: advancing a stream is a side effect, so a
  // duplicate pass would double-step it.
  StateCache* stream_states = nullptr;
};

class EstimationService {
 public:
  struct EstimateResult {
    RequestStatus status = RequestStatus::kOk;
    uint64_t model_version = 0;  // 0 = no model was published yet
    EstimateMap estimates;
  };
  struct SanityResult {
    RequestStatus status = RequestStatus::kOk;
    uint64_t model_version = 0;
    size_t from = 0;
    size_t to = 0;  // actually checked range (clamped to featured windows)
    std::vector<AnomalyEvent> events;
    // Telemetry quality of the checked windows, index-aligned with
    // [from, to). min_quality is the worst window; anything below 1.0 means
    // the detector ran with widened tolerances on the degraded windows.
    std::vector<DataQuality> quality;
    double min_quality = 1.0;
  };

  // The registry and pipeline must outlive the service.
  EstimationService(ModelRegistry& registry, IngestPipeline& pipeline,
                    const EstimationServiceConfig& config = {});
  ~EstimationService();

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  // --- Client side (any thread) ---
  // A nonzero `deadline` overrides config.default_deadline for this request;
  // it is a budget measured from submission.

  // Mode 1 (resource allocation): hypothetical traffic, synthesized into
  // traces by the serving snapshot's synthesizer.
  std::future<EstimateResult> SubmitTraffic(TrafficSeries traffic, uint64_t seed,
                                            std::chrono::milliseconds deadline = {});

  // Direct estimation from a prebuilt feature series.
  std::future<EstimateResult> SubmitFeatures(std::vector<std::vector<float>> features,
                                             std::chrono::milliseconds deadline = {});

  // Stream variants: a nonzero `stream_id` resumes that stream's cached
  // hidden state (config.stream_states) and advances it by this request's
  // windows, so a long series can be served as many short requests with
  // bit-identical results to one unbroken submission. Stateless behavior
  // when stream_id is 0 or no cache is wired. Stream requests bypass
  // hedging (see EstimationServiceConfig::stream_states).
  std::future<EstimateResult> SubmitStreamFeatures(
      uint64_t stream_id, std::vector<std::vector<float>> features,
      std::chrono::milliseconds deadline = {});
  std::future<EstimateResult> SubmitStreamTraffic(uint64_t stream_id, TrafficSeries traffic,
                                                  uint64_t seed,
                                                  std::chrono::milliseconds deadline = {});

  // Mode 2 (sanity check) over ingested windows [from, to): expected
  // consumption from the pipeline's feature series vs the ingested actuals,
  // with the windows' DataQuality widening detector tolerances.
  std::future<SanityResult> SubmitSanityCheck(size_t from, size_t to,
                                              std::chrono::milliseconds deadline = {});

  // Drains the queue, then stops and joins the workers. Idempotent; called
  // by the destructor. Submitting after (or racing with) Stop is safe: the
  // request resolves with status kRejectedStopped.
  void Stop();

  // --- Supervision side (watchdog / operator) ---

  // Revives worker `index` after its thread exited (a kCrash fault). Joins
  // the dead thread and respawns it on the same shard. Returns false when
  // the worker is still running (a stall cannot be restarted — the incident
  // closes when its heartbeats resume), the index is bad, or the service is
  // stopping. Safe to call from the supervisor's scan thread.
  bool RestartWorker(size_t index);

  // True once worker `index`'s thread has exited (crash fault or Stop).
  bool WorkerExited(size_t index) const;

  // Escalation target: degraded mode forces kRejectNew shedding (newest
  // arrivals resolve kShed immediately when the bounded queue is full)
  // regardless of the configured policy. Sticky until cleared.
  void SetDegraded(bool degraded);
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  // Live counters (queue depth, ingest lag, pipeline admission-control
  // tallies, and registry state filled in).
  ServiceCounters Counters() const;

 private:
  enum class RequestKind { kFeatures, kTraffic, kSanity };

  // Shared result slot of a hedged pair. Both copies race to flip `claimed`;
  // the winner alone sets `promise` (the per-copy promises go unused), so a
  // double-set can never happen no matter how the copies interleave.
  struct HedgeState {
    std::atomic<bool> claimed{false};
    std::promise<EstimateResult> promise;
  };

  struct Request {
    RequestKind kind = RequestKind::kFeatures;
    std::vector<std::vector<float>> features;  // kFeatures
    TrafficSeries traffic;                     // kTraffic
    uint64_t seed = 0;                         // kTraffic
    uint64_t stream_id = 0;                    // nonzero: stateful stream request
    size_t from = 0;                           // kSanity
    size_t to = 0;                             // kSanity
    std::promise<EstimateResult> estimate_promise;
    std::promise<SanityResult> sanity_promise;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    // Non-null for hedge-eligible estimate requests; shared by both copies.
    std::shared_ptr<HedgeState> hedge;
    bool hedge_copy = false;  // true on the re-submitted duplicate
  };

  // A hedge armed at submission, waiting out its delay on the monitor
  // thread. The duplicate request is fully built (same payload, same
  // submission timestamp and deadline as the primary) so firing is just a
  // push into the sibling shard.
  struct PendingHedge {
    Request duplicate;
    std::chrono::steady_clock::time_point fire_at;
    size_t sibling = 0;
  };

  // Per-worker supervision state. Fixed after construction (unique_ptr
  // indirection), so workers and the supervisor thread can reach it without
  // synchronization beyond the atomics themselves.
  struct WorkerState {
    std::atomic<bool> exited{false};
    HealthHandle health;
  };

  // One worker's private slice of the request queue. Submissions round-robin
  // across shards; only batch assembly for the same shard ever contends on
  // its mutex. Lock hierarchy: at most ONE Shard::mu is ever held at a time
  // (enqueue, eviction scan, steal sweep and drain all go shard-by-shard);
  // the global depth counter queued_ is atomic and never sits under a lock.
  struct Shard {
    Mutex mu;  // deeprest-lint: lock-level(leaf)
    std::condition_variable cv;
    std::deque<Request> queue DEEPREST_GUARDED_BY(mu);
    // Set by Enqueue (guarded by mu) when some shard has a backlog its owner
    // is not keeping up with; wakes this worker to run a steal sweep on
    // demand instead of waiting out its idle poll interval.
    bool steal_hint DEEPREST_GUARDED_BY(mu) = false;
  };

  // Sets submitted / deadline / has_deadline; no-op if already stamped (a
  // hedged pair is stamped once so both copies agree).
  void StampSubmission(Request& request, std::chrono::milliseconds deadline) const;
  // Stamps submission time and deadline; records the submission. Then
  // queues into a round-robin shard. Returns the shard index the request
  // landed in, or SIZE_MAX when it resolved without queuing (shed/rejected).
  size_t Enqueue(Request request, std::chrono::milliseconds deadline);
  // Shared tail of SubmitTraffic/SubmitFeatures: arms a hedge when enabled.
  std::future<EstimateResult> SubmitEstimate(Request request,
                                             std::chrono::milliseconds deadline);
  // Pushes under the shard lock unless stopping_ is set; reports the shard's
  // post-push depth. Returns false (request untouched) when stopping.
  bool TryPush(Shard& target, Request& request, size_t& backlog)
      DEEPREST_EXCLUDES(target.mu);
  // Wakes the shard owner and, when the push left a backlog, flags one
  // sibling to steal.
  void NotifyAfterPush(Shard& target, size_t index, size_t backlog);
  // True when this copy owns its request's resolution: always for unhedged
  // requests, first-past-the-post for a hedged pair.
  static bool ClaimResolution(Request& request);
  // Resolves a request that will never be served and records the matching
  // counter (a hedged loser records kHedgedDuplicate instead).
  void FinishUnserved(Request& request, RequestStatus status);
  void WorkerLoop(size_t self);
  // Monitor thread: fires armed hedges whose delay elapsed and whose
  // primary is still unresolved; respects the queue bound (a full queue
  // skips the hedge rather than evicting real work).
  void HedgeLoop();
  // The learned hedge delay: the service's own `quantile` latency, clamped
  // to [min_delay, max_delay]; max_delay until min_samples are in.
  std::chrono::microseconds HedgeDelay() const;
  // Pops up to max_batch requests from the first non-empty sibling shard.
  // Holds at most one shard lock at a time. Returns false if every sibling
  // was empty.
  bool StealBatch(size_t self, std::vector<Request>& batch);
  void ServeBatch(std::vector<Request> batch);
  // Streamful tail of ServeBatch: splits duplicate-stream requests into
  // sequential rounds, leases every distinct stream in ascending key order,
  // runs each round as one cursor-seeded batch-major resume pass, and writes
  // the advanced states back before the leases release.
  std::vector<EstimateMap> ServeStreamRounds(
      std::vector<Request>& batch,
      const std::vector<std::vector<std::vector<float>>>& series,
      const ModelSnapshot& snapshot);

  ModelRegistry& registry_;
  IngestPipeline& pipeline_;
  EstimationServiceConfig config_;

  // Shard structs never move after construction (unique_ptr indirection), so
  // workers and submitters can hold references without synchronization.
  std::vector<std::unique_ptr<Shard>> shards_;
  // Round-robin submission cursor.
  std::atomic<size_t> next_shard_{0};
  // Total queued requests across all shards; backs Counters().queue_depth
  // and enforces max_queue exactly: submitters reserve a slot here (CAS
  // against the bound) before pushing into any shard, and workers release
  // slots as they pop under the shard lock. Never exceeds max_queue when the
  // bound is on.
  std::atomic<size_t> queued_{0};
  // seq_cst on purpose: the shutdown-safety argument in the header comment
  // leans on a single total order of the flag's loads and stores.
  std::atomic<bool> stopping_{false};

  // Forced reject-new shedding; flipped by the supervisor's escalation.
  std::atomic<bool> degraded_{false};

  ServiceStats stats_;
  // Serializes Stop() against concurrent Stop()/destruction: joining and
  // clearing workers_ from two threads at once was a latent double-join
  // (found while annotating — the thread-safety analysis has no lock to
  // attribute workers_ to otherwise). Workers never take this mutex, so
  // Stop() can join them while holding it. RestartWorker joins/respawns a
  // single worker under the same mutex, so it serializes against Stop too.
  Mutex stop_mu_;  // deeprest-lint: lock-level(root)
  std::vector<std::thread> workers_ DEEPREST_GUARDED_BY(stop_mu_);

  // Per-worker exit flags + health handles; the structs never move after
  // construction (see WorkerState).
  std::vector<std::unique_ptr<WorkerState>> worker_state_;

  // Hedge monitor state. Leaf lock: nothing is acquired while holding it
  // (the fire path pops the due entry first, then pushes into a Shard::mu).
  Mutex hedge_mu_;  // deeprest-lint: lock-level(leaf)
  std::condition_variable hedge_cv_;
  std::deque<PendingHedge> hedge_pending_ DEEPREST_GUARDED_BY(hedge_mu_);
  std::thread hedge_thread_ DEEPREST_GUARDED_BY(stop_mu_);
  HealthHandle hedge_health_;
};

}  // namespace deeprest

#endif  // SRC_SERVE_ESTIMATION_SERVICE_H_
