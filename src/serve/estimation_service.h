// Concurrent, micro-batching front door of the online estimator.
//
// Clients submit estimation and sanity-check requests and get futures back.
// A fixed-size pool of worker threads drains a shared request queue; a
// worker that picks up a request lingers briefly (batch_wait) to coalesce up
// to max_batch queued requests into one forward pass via
// DeepRestEstimator::EstimateFromFeaturesBatch, amortizing the per-call
// warm-start replay and feature scaling across the batch.
//
// Snapshot discipline: a batch grabs ONE ModelSnapshot from the registry and
// serves every request in the batch against it, so a request never observes
// weights from two model versions even while the ContinualLearner publishes
// mid-flight. Each result carries the version that produced it.
#ifndef SRC_SERVE_ESTIMATION_SERVICE_H_
#define SRC_SERVE_ESTIMATION_SERVICE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/estimator.h"
#include "src/core/sanity.h"
#include "src/serve/ingest_pipeline.h"
#include "src/serve/model_registry.h"
#include "src/serve/stats.h"
#include "src/workload/traffic.h"

namespace deeprest {

struct EstimationServiceConfig {
  size_t workers = 4;
  // Requests coalesced into one forward pass. 1 disables micro-batching.
  size_t max_batch = 8;
  // How long the first request of a batch waits for company. Zero serves
  // whatever is queued without lingering.
  std::chrono::microseconds batch_wait{200};
  SanityConfig sanity;
};

class EstimationService {
 public:
  struct EstimateResult {
    uint64_t model_version = 0;  // 0 = no model was published yet
    EstimateMap estimates;
  };
  struct SanityResult {
    uint64_t model_version = 0;
    size_t from = 0;
    size_t to = 0;  // actually checked range (clamped to featured windows)
    std::vector<AnomalyEvent> events;
  };

  // The registry and pipeline must outlive the service.
  EstimationService(ModelRegistry& registry, IngestPipeline& pipeline,
                    const EstimationServiceConfig& config = {});
  ~EstimationService();

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  // --- Client side (any thread) ---

  // Mode 1 (resource allocation): hypothetical traffic, synthesized into
  // traces by the serving snapshot's synthesizer.
  std::future<EstimateResult> SubmitTraffic(TrafficSeries traffic, uint64_t seed);

  // Direct estimation from a prebuilt feature series.
  std::future<EstimateResult> SubmitFeatures(std::vector<std::vector<float>> features);

  // Mode 2 (sanity check) over ingested windows [from, to): expected
  // consumption from the pipeline's feature series vs the ingested actuals.
  std::future<SanityResult> SubmitSanityCheck(size_t from, size_t to);

  // Drains the queue, then stops and joins the workers. Idempotent; called
  // by the destructor. Submit must not race with Stop.
  void Stop();

  // Live counters (queue depth, ingest lag, and registry state filled in).
  ServiceCounters Counters() const;

 private:
  enum class RequestKind { kFeatures, kTraffic, kSanity };

  struct Request {
    RequestKind kind = RequestKind::kFeatures;
    std::vector<std::vector<float>> features;  // kFeatures
    TrafficSeries traffic;                     // kTraffic
    uint64_t seed = 0;                         // kTraffic
    size_t from = 0;                           // kSanity
    size_t to = 0;                             // kSanity
    std::promise<EstimateResult> estimate_promise;
    std::promise<SanityResult> sanity_promise;
    std::chrono::steady_clock::time_point submitted;
  };

  void Enqueue(Request request);
  void WorkerLoop();
  void ServeBatch(std::vector<Request> batch);

  ModelRegistry& registry_;
  IngestPipeline& pipeline_;
  EstimationServiceConfig config_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;

  ServiceStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace deeprest

#endif  // SRC_SERVE_ESTIMATION_SERVICE_H_
