// Concurrent, micro-batching front door of the online estimator.
//
// Clients submit estimation and sanity-check requests and get futures back.
// Each worker thread owns a private queue shard: submissions round-robin
// across shards with an atomic counter, so batch assembly never serializes
// every worker on one mutex, and a worker whose shard runs dry steals a
// batch from a sibling so no queued request is ever stranded behind a busy
// or unlucky worker. A worker that picks up a request lingers briefly
// (batch_wait) to coalesce up to max_batch queued requests from its shard
// into one forward pass via DeepRestEstimator::EstimateFromFeaturesBatch —
// with batch_major on (default), the batch runs as one column-stacked GEMM
// pass from the cached warm-start state; off, each request replays the
// sequential reference path (the pre-batch-major behavior).
//
// Shutdown safety: Stop() flips the (seq_cst) stopping flag, then
// locks/unlocks every shard so any submission that saw the flag unset has
// finished its push, then wakes and joins the workers. A worker reads the
// flag BEFORE each sweep and exits only when a sweep that *started* with
// the flag already set — own shard plus a full steal pass, each under its
// shard lock — comes up empty. Enqueue re-checks the flag under the shard
// lock it pushes into, so no push can land behind such a sweep: a racing
// submission either completed its push before the sweep reached that shard
// (and the sweep took it) or observes the flag and rejects. After joining,
// Stop() sweeps every shard once more and resolves anything left with
// kRejectedStopped, so no request is ever left unresolved, unconditionally.
//
// Snapshot discipline: a batch grabs ONE ModelSnapshot from the registry and
// serves every request in the batch against it, so a request never observes
// weights from two model versions even while the ContinualLearner publishes
// mid-flight. Each result carries the version that produced it.
//
// Overload protection (DESIGN.md "Failure model"): the request queue is
// bounded (max_queue) and sheds under pressure instead of growing without
// limit — either the new arrival (kRejectNew) or the oldest queued request
// (kDropOldest) resolves immediately with status kShed. Requests may carry a
// deadline; a request whose deadline passed before a worker reached it
// resolves with kExpired without paying for a forward pass. Every result
// carries a RequestStatus, and a request submitted after Stop() resolves with
// kRejectedStopped rather than hanging or crashing.
#ifndef SRC_SERVE_ESTIMATION_SERVICE_H_
#define SRC_SERVE_ESTIMATION_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/estimator.h"
#include "src/core/sanity.h"
#include "src/core/thread_annotations.h"
#include "src/serve/data_quality.h"
#include "src/serve/ingest_pipeline.h"
#include "src/serve/model_registry.h"
#include "src/serve/stats.h"
#include "src/workload/traffic.h"

namespace deeprest {

// Terminal state of one request. Anything other than kOk means the request
// did not run a forward pass and its payload fields are empty.
enum class RequestStatus {
  kOk = 0,
  kShed,             // bounded queue was full; load-shedding policy dropped it
  kExpired,          // deadline passed before a worker served it
  kRejectedStopped,  // submitted after Stop()
};

const char* RequestStatusName(RequestStatus status);

// What to evict when the bounded queue is full. max_queue is an exact cap:
// submission reserves a slot with a compare-exchange on the global depth
// counter before touching any shard, so concurrent submitters to different
// shards cannot collectively overshoot the bound. With several shards,
// kDropOldest's "oldest" is approximate — the victim is the front of the
// submission's target shard if it has one, else the front of the first
// non-empty sibling — so a strictly older request parked in another shard
// may outlive a younger victim.
enum class ShedPolicy {
  kRejectNew,   // newest arrival is shed (favors in-flight work)
  kDropOldest,  // oldest queued request is shed (favors fresh requests)
};

struct EstimationServiceConfig {
  size_t workers = 4;
  // Requests coalesced into one forward pass. 1 disables micro-batching.
  size_t max_batch = 8;
  // How long the first request of a batch waits for company. Zero serves
  // whatever is queued without lingering.
  std::chrono::microseconds batch_wait{200};
  // Queue bound; 0 = unbounded (the pre-overload-protection behavior).
  size_t max_queue = 0;
  ShedPolicy shed_policy = ShedPolicy::kRejectNew;
  // Deadline applied to requests submitted without one; 0 = no deadline.
  std::chrono::milliseconds default_deadline{0};
  // Serve each batch as one column-stacked batch-major forward pass (the
  // fast path). Off, every request replays the sequential reference path —
  // same results bit for bit, kept as a benchmark baseline and escape hatch.
  bool batch_major = true;
  SanityConfig sanity;
};

class EstimationService {
 public:
  struct EstimateResult {
    RequestStatus status = RequestStatus::kOk;
    uint64_t model_version = 0;  // 0 = no model was published yet
    EstimateMap estimates;
  };
  struct SanityResult {
    RequestStatus status = RequestStatus::kOk;
    uint64_t model_version = 0;
    size_t from = 0;
    size_t to = 0;  // actually checked range (clamped to featured windows)
    std::vector<AnomalyEvent> events;
    // Telemetry quality of the checked windows, index-aligned with
    // [from, to). min_quality is the worst window; anything below 1.0 means
    // the detector ran with widened tolerances on the degraded windows.
    std::vector<DataQuality> quality;
    double min_quality = 1.0;
  };

  // The registry and pipeline must outlive the service.
  EstimationService(ModelRegistry& registry, IngestPipeline& pipeline,
                    const EstimationServiceConfig& config = {});
  ~EstimationService();

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  // --- Client side (any thread) ---
  // A nonzero `deadline` overrides config.default_deadline for this request;
  // it is a budget measured from submission.

  // Mode 1 (resource allocation): hypothetical traffic, synthesized into
  // traces by the serving snapshot's synthesizer.
  std::future<EstimateResult> SubmitTraffic(TrafficSeries traffic, uint64_t seed,
                                            std::chrono::milliseconds deadline = {});

  // Direct estimation from a prebuilt feature series.
  std::future<EstimateResult> SubmitFeatures(std::vector<std::vector<float>> features,
                                             std::chrono::milliseconds deadline = {});

  // Mode 2 (sanity check) over ingested windows [from, to): expected
  // consumption from the pipeline's feature series vs the ingested actuals,
  // with the windows' DataQuality widening detector tolerances.
  std::future<SanityResult> SubmitSanityCheck(size_t from, size_t to,
                                              std::chrono::milliseconds deadline = {});

  // Drains the queue, then stops and joins the workers. Idempotent; called
  // by the destructor. Submitting after (or racing with) Stop is safe: the
  // request resolves with status kRejectedStopped.
  void Stop();

  // Live counters (queue depth, ingest lag, pipeline admission-control
  // tallies, and registry state filled in).
  ServiceCounters Counters() const;

 private:
  enum class RequestKind { kFeatures, kTraffic, kSanity };

  struct Request {
    RequestKind kind = RequestKind::kFeatures;
    std::vector<std::vector<float>> features;  // kFeatures
    TrafficSeries traffic;                     // kTraffic
    uint64_t seed = 0;                         // kTraffic
    size_t from = 0;                           // kSanity
    size_t to = 0;                             // kSanity
    std::promise<EstimateResult> estimate_promise;
    std::promise<SanityResult> sanity_promise;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
  };

  // One worker's private slice of the request queue. Submissions round-robin
  // across shards; only batch assembly for the same shard ever contends on
  // its mutex. Lock hierarchy: at most ONE Shard::mu is ever held at a time
  // (enqueue, eviction scan, steal sweep and drain all go shard-by-shard);
  // the global depth counter queued_ is atomic and never sits under a lock.
  struct Shard {
    Mutex mu;
    std::condition_variable cv;
    std::deque<Request> queue DEEPREST_GUARDED_BY(mu);
    // Set by Enqueue (guarded by mu) when some shard has a backlog its owner
    // is not keeping up with; wakes this worker to run a steal sweep on
    // demand instead of waiting out its idle poll interval.
    bool steal_hint DEEPREST_GUARDED_BY(mu) = false;
  };

  void Enqueue(Request request, std::chrono::milliseconds deadline);
  // Pushes under the shard lock unless stopping_ is set; reports the shard's
  // post-push depth. Returns false (request untouched) when stopping.
  bool TryPush(Shard& target, Request& request, size_t& backlog)
      DEEPREST_EXCLUDES(target.mu);
  // Wakes the shard owner and, when the push left a backlog, flags one
  // sibling to steal.
  void NotifyAfterPush(Shard& target, size_t index, size_t backlog);
  // Resolves a request that will never be served with the given status.
  static void FinishUnserved(Request& request, RequestStatus status);
  void WorkerLoop(size_t self);
  // Pops up to max_batch requests from the first non-empty sibling shard.
  // Holds at most one shard lock at a time. Returns false if every sibling
  // was empty.
  bool StealBatch(size_t self, std::vector<Request>& batch);
  void ServeBatch(std::vector<Request> batch);

  ModelRegistry& registry_;
  IngestPipeline& pipeline_;
  EstimationServiceConfig config_;

  // Shard structs never move after construction (unique_ptr indirection), so
  // workers and submitters can hold references without synchronization.
  std::vector<std::unique_ptr<Shard>> shards_;
  // Round-robin submission cursor.
  std::atomic<size_t> next_shard_{0};
  // Total queued requests across all shards; backs Counters().queue_depth
  // and enforces max_queue exactly: submitters reserve a slot here (CAS
  // against the bound) before pushing into any shard, and workers release
  // slots as they pop under the shard lock. Never exceeds max_queue when the
  // bound is on.
  std::atomic<size_t> queued_{0};
  // seq_cst on purpose: the shutdown-safety argument in the header comment
  // leans on a single total order of the flag's loads and stores.
  std::atomic<bool> stopping_{false};

  ServiceStats stats_;
  // Serializes Stop() against concurrent Stop()/destruction: joining and
  // clearing workers_ from two threads at once was a latent double-join
  // (found while annotating — the thread-safety analysis has no lock to
  // attribute workers_ to otherwise). Workers never take this mutex, so
  // Stop() can join them while holding it.
  Mutex stop_mu_;
  std::vector<std::thread> workers_ DEEPREST_GUARDED_BY(stop_mu_);
};

}  // namespace deeprest

#endif  // SRC_SERVE_ESTIMATION_SERVICE_H_
