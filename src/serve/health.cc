#include "src/serve/health.h"

namespace deeprest {

const char* HealthStatusName(HealthStatus status) {
  switch (status) {
    case HealthStatus::kHealthy:
      return "healthy";
    case HealthStatus::kSuspect:
      return "suspect";
    case HealthStatus::kRestarting:
      return "restarting";
    case HealthStatus::kStopped:
      return "stopped";
  }
  return "unknown";
}

// Mark values for Component::mark.
namespace {
constexpr int kMarkActive = 0;
constexpr int kMarkRestarting = 1;
constexpr int kMarkStopped = 2;
}  // namespace

struct HealthHandle::Component {
  std::string name;
  uint64_t stall_threshold_us = 0;
  std::atomic<uint64_t> last_beat_us{0};
  std::atomic<uint64_t> heartbeats{0};
  std::atomic<int> mark{kMarkActive};
};

void HealthHandle::Heartbeat() {
  if (component_ == nullptr) {
    return;
  }
  component_->last_beat_us.store(clock_->NowMicros(), std::memory_order_release);
  component_->heartbeats.fetch_add(1, std::memory_order_relaxed);
  component_->mark.store(kMarkActive, std::memory_order_release);
}

void HealthHandle::MarkStopped() {
  if (component_ == nullptr) {
    return;
  }
  component_->mark.store(kMarkStopped, std::memory_order_release);
}

HealthRegistry::HealthRegistry(HealthClock* clock)
    : clock_(clock != nullptr ? clock : &default_clock_) {}

HealthRegistry::~HealthRegistry() = default;

HealthHandle HealthRegistry::Register(const std::string& name, uint64_t stall_threshold_us) {
  MutexLock lock(mu_);
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i]->name == name) {
      return HealthHandle(components_[i].get(), clock_, i);
    }
  }
  auto component = std::make_unique<HealthHandle::Component>();
  component->name = name;
  component->stall_threshold_us = stall_threshold_us;
  component->last_beat_us.store(clock_->NowMicros(), std::memory_order_release);
  components_.push_back(std::move(component));
  return HealthHandle(components_.back().get(), clock_, components_.size() - 1);
}

void HealthRegistry::MarkRestarting(size_t id) {
  MutexLock lock(mu_);
  if (id < components_.size()) {
    components_[id]->mark.store(kMarkRestarting, std::memory_order_release);
  }
}

void HealthRegistry::MarkStopped(size_t id) {
  MutexLock lock(mu_);
  if (id < components_.size()) {
    components_[id]->mark.store(kMarkStopped, std::memory_order_release);
  }
}

ComponentHealth HealthRegistry::HealthLocked(size_t id, uint64_t now_us) const {
  ComponentHealth out;
  if (id >= components_.size()) {
    return out;
  }
  const HealthHandle::Component& c = *components_[id];
  out.name = c.name;
  out.stall_threshold_us = c.stall_threshold_us;
  out.last_heartbeat_us = c.last_beat_us.load(std::memory_order_acquire);
  out.heartbeats = c.heartbeats.load(std::memory_order_relaxed);
  const int mark = c.mark.load(std::memory_order_acquire);
  if (mark == kMarkStopped) {
    out.status = HealthStatus::kStopped;
    return out;
  }
  out.staleness_us = now_us > out.last_heartbeat_us ? now_us - out.last_heartbeat_us : 0;
  if (mark == kMarkRestarting) {
    out.status = HealthStatus::kRestarting;
  } else if (out.staleness_us > c.stall_threshold_us) {
    out.status = HealthStatus::kSuspect;
  } else {
    out.status = HealthStatus::kHealthy;
  }
  return out;
}

ComponentHealth HealthRegistry::Health(size_t id) const {
  const uint64_t now = clock_->NowMicros();
  MutexLock lock(mu_);
  return HealthLocked(id, now);
}

std::vector<ComponentHealth> HealthRegistry::Snapshot() const {
  const uint64_t now = clock_->NowMicros();
  MutexLock lock(mu_);
  std::vector<ComponentHealth> out;
  out.reserve(components_.size());
  for (size_t i = 0; i < components_.size(); ++i) {
    out.push_back(HealthLocked(i, now));
  }
  return out;
}

size_t HealthRegistry::size() const {
  MutexLock lock(mu_);
  return components_.size();
}

}  // namespace deeprest
