// Process-wide liveness registry for the serving stack's long-lived actors.
//
// Every background thread that is supposed to keep making progress — the
// estimation workers, the ContinualLearner, the AutoscaleLoop, the hedge
// monitor, the watchdog itself — registers a named component and then stamps
// a heartbeat at the top of each work cycle. The registry turns those stamps
// into staleness-tagged status: a component whose last heartbeat is older
// than its declared stall threshold is kSuspect, which is what the Watchdog
// (supervisor.h) keys recovery off.
//
// Heartbeats are the hot path (one per worker sweep, one per ingest batch),
// so they are a single lock-free atomic store through a HealthHandle that
// points at registration-time storage; the registry mutex is only taken to
// register components and to snapshot.
//
// Time is injectable: SteadyHealthClock for production, ManualHealthClock
// for deterministic tests, and SkewedHealthClock layered on either to model
// the `clock_skew` chaos fault (a supervisor reading a skewed clock sees
// phantom staleness — exactly the false-positive storm the restart budget
// has to absorb).
//
// Lock hierarchy (DESIGN.md "Concurrency invariants & lock hierarchy"):
// HealthRegistry::mu_ is a leaf — nothing is acquired under it, and
// heartbeat stamping never takes it.
#ifndef SRC_SERVE_HEALTH_H_
#define SRC_SERVE_HEALTH_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/thread_annotations.h"

namespace deeprest {

// Monotone time source for staleness math. Implementations must be safe to
// call from any thread.
class HealthClock {
 public:
  virtual ~HealthClock() = default;
  virtual uint64_t NowMicros() = 0;
};

class SteadyHealthClock : public HealthClock {
 public:
  uint64_t NowMicros() override {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                     std::chrono::steady_clock::now().time_since_epoch())
                                     .count());
  }
};

// Hand-advanced clock for deterministic supervision tests.
class ManualHealthClock : public HealthClock {
 public:
  explicit ManualHealthClock(uint64_t start_us = 1) : now_us_(start_us) {}
  void Advance(uint64_t us) { now_us_.fetch_add(us, std::memory_order_acq_rel); }
  void Set(uint64_t us) { now_us_.store(us, std::memory_order_release); }
  uint64_t NowMicros() override { return now_us_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint64_t> now_us_;
};

// Adds a settable offset to a base clock — the `clock_skew` chaos fault.
// Positive skew makes every component look staler than it is.
class SkewedHealthClock : public HealthClock {
 public:
  explicit SkewedHealthClock(HealthClock& base) : base_(&base) {}
  void SetSkewMicros(int64_t skew_us) { skew_us_.store(skew_us, std::memory_order_release); }
  int64_t skew_micros() const { return skew_us_.load(std::memory_order_acquire); }
  uint64_t NowMicros() override {
    const int64_t now = static_cast<int64_t>(base_->NowMicros()) +
                        skew_us_.load(std::memory_order_acquire);
    return now > 0 ? static_cast<uint64_t>(now) : 0;
  }

 private:
  HealthClock* base_;
  std::atomic<int64_t> skew_us_{0};
};

enum class HealthStatus {
  kHealthy = 0,   // heartbeat within the stall threshold
  kSuspect,       // heartbeat older than the stall threshold — watchdog food
  kRestarting,    // supervisor marked it mid-recovery
  kStopped,       // deliberately stopped; exempt from watchdog scans
};

const char* HealthStatusName(HealthStatus status);

// One component's view at snapshot time.
struct ComponentHealth {
  std::string name;
  HealthStatus status = HealthStatus::kHealthy;
  uint64_t last_heartbeat_us = 0;
  uint64_t staleness_us = 0;  // now - last_heartbeat (0 when stopped)
  uint64_t stall_threshold_us = 0;
  uint64_t heartbeats = 0;
};

class HealthRegistry;

// Lock-free stamping handle returned by Register(). Copyable; valid for the
// registry's lifetime. A default-constructed handle is inert (Heartbeat is a
// no-op), so components can carry one unconditionally and only wire it up
// when supervision is enabled.
class HealthHandle {
 public:
  HealthHandle() = default;

  bool valid() const { return component_ != nullptr; }
  size_t id() const { return id_; }

  // Stamps "alive now". Also clears a kStopped/kRestarting mark: a restarted
  // component's first beat returns it to watchdog coverage.
  void Heartbeat();
  // Declares a clean shutdown so the watchdog does not chase a corpse.
  void MarkStopped();

 private:
  friend class HealthRegistry;
  struct Component;
  HealthHandle(Component* component, HealthClock* clock, size_t id)
      : component_(component), clock_(clock), id_(id) {}

  Component* component_ = nullptr;
  HealthClock* clock_ = nullptr;
  size_t id_ = 0;
};

class HealthRegistry {
 public:
  // `clock` must outlive the registry; nullptr selects the built-in steady
  // clock.
  explicit HealthRegistry(HealthClock* clock = nullptr);
  ~HealthRegistry();

  HealthRegistry(const HealthRegistry&) = delete;
  HealthRegistry& operator=(const HealthRegistry&) = delete;

  // Registers a component and returns its stamping handle, pre-stamped with
  // the current time so a freshly registered component is healthy. The
  // stall threshold is the staleness past which the component counts as
  // stuck. Registering an existing name returns the existing component's
  // handle (thresholds are not updated).
  HealthHandle Register(const std::string& name, uint64_t stall_threshold_us);

  // Id-addressed variants of the handle operations (the supervisor works in
  // ids).
  void MarkRestarting(size_t id);
  void MarkStopped(size_t id);

  ComponentHealth Health(size_t id) const;
  std::vector<ComponentHealth> Snapshot() const;
  size_t size() const;
  uint64_t NowMicros() const { return clock_->NowMicros(); }
  HealthClock* clock() const { return clock_; }

 private:
  ComponentHealth HealthLocked(size_t id, uint64_t now_us) const DEEPREST_REQUIRES(mu_);

  HealthClock* clock_;
  SteadyHealthClock default_clock_;
  // Leaf lock: guards the component table's growth only. The per-component
  // stamps are atomics written through HealthHandle without any lock (the
  // unique_ptr indirection keeps them address-stable across push_back).
  mutable Mutex mu_;  // deeprest-lint: lock-level(leaf)
  std::vector<std::unique_ptr<HealthHandle::Component>> components_ DEEPREST_GUARDED_BY(mu_);
};

}  // namespace deeprest

#endif  // SRC_SERVE_HEALTH_H_
