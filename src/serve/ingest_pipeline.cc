#include "src/serve/ingest_pipeline.h"

#include <algorithm>
#include <cassert>

namespace deeprest {

IngestPipeline::IngestPipeline(FeatureExtractor extractor, const IngestPipelineConfig& config)
    : extractor_(std::move(extractor)) {
  const size_t shard_count = std::max<size_t>(1, config.shards);
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

IngestPipeline::Shard& IngestPipeline::ShardForTrace(const Trace& trace) {
  // Traces are self-contained events: any shard works, so spread them
  // round-robin to keep producer contention low regardless of trace_id
  // distribution.
  (void)trace;
  const size_t index = next_trace_shard_.fetch_add(1, std::memory_order_relaxed);
  return *shards_[index % shards_.size()];
}

IngestPipeline::Shard& IngestPipeline::ShardForKey(const MetricKey& key) {
  // Metric samples use Record (set) semantics, so a given series must always
  // land on the same shard for the accumulate-fold to reconstruct it exactly.
  const size_t hash = std::hash<std::string>{}(key.component) * 31 +
                      static_cast<size_t>(key.resource);
  return *shards_[hash % shards_.size()];
}

void IngestPipeline::IngestTrace(size_t window, Trace trace) {
  Shard& shard = ShardForTrace(trace);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.traces.Collect(window, std::move(trace));
  }
  ingested_traces_.fetch_add(1, std::memory_order_relaxed);
  size_t frontier = frontier_.load(std::memory_order_relaxed);
  while (window + 1 > frontier &&
         !frontier_.compare_exchange_weak(frontier, window + 1, std::memory_order_release,
                                          std::memory_order_relaxed)) {
  }
}

void IngestPipeline::IngestMetric(const MetricKey& key, size_t window, double value) {
  Shard& shard = ShardForKey(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.metrics.Record(key, window, value);
  }
  size_t frontier = frontier_.load(std::memory_order_relaxed);
  while (window + 1 > frontier &&
         !frontier_.compare_exchange_weak(frontier, window + 1, std::memory_order_release,
                                          std::memory_order_relaxed)) {
  }
}

size_t IngestPipeline::Fold(size_t watermark) {
  std::lock_guard<std::mutex> fold_lock(fold_mu_);
  const size_t sealed = features_.size();
  for (auto& shard : shards_) {
    TraceCollector traces;
    MetricsStore metrics;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      traces = std::move(shard->traces);
      shard->traces = TraceCollector();
      metrics = std::move(shard->metrics);
      shard->metrics = MetricsStore();
    }
    // Traces for already-sealed windows keep the ground truth complete but
    // cannot change the frozen feature vectors.
    uint64_t late = 0;
    for (size_t w = 0; w < sealed && w < traces.window_count(); ++w) {
      late += traces.TracesAt(w).size();
    }
    if (late > 0) {
      late_.fetch_add(late, std::memory_order_relaxed);
    }
    collector_.MergeFrom(std::move(traces));
    metrics_.AccumulateFrom(metrics);
  }
  while (features_.size() < watermark) {
    features_.push_back(extractor_.ExtractWindow(collector_, features_.size()));
  }
  featured_.store(features_.size(), std::memory_order_release);
  return features_.size();
}

size_t IngestPipeline::IngestLag() const {
  const size_t frontier = WindowFrontier();
  const size_t featured = featured_windows();
  return frontier > featured ? frontier - featured : 0;
}

std::vector<std::vector<float>> IngestPipeline::FeatureSlice(size_t from, size_t to) const {
  std::lock_guard<std::mutex> lock(fold_mu_);
  assert(to <= features_.size() && "FeatureSlice past the featured prefix; Fold first");
  std::vector<std::vector<float>> slice;
  slice.reserve(to > from ? to - from : 0);
  for (size_t w = from; w < to && w < features_.size(); ++w) {
    slice.push_back(features_[w]);
  }
  return slice;
}

MetricsStore IngestPipeline::MetricsCopy() const {
  std::lock_guard<std::mutex> lock(fold_mu_);
  return metrics_;
}

TraceCollector IngestPipeline::TracesCopy(size_t from, size_t to) const {
  std::lock_guard<std::mutex> lock(fold_mu_);
  return collector_.CopyRange(from, to);
}

}  // namespace deeprest
