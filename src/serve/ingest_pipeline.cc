#include "src/serve/ingest_pipeline.h"

#include <algorithm>
#include <cassert>

namespace deeprest {

IngestPipeline::IngestPipeline(FeatureExtractor extractor, const IngestPipelineConfig& config)
    : extractor_(std::move(extractor)), config_(config) {
  const size_t shard_count = std::max<size_t>(1, config.shards);
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

IngestPipeline::Shard& IngestPipeline::ShardForTrace(const Trace& trace) {
  if (config_.dedupe_traces && trace.trace_id() != 0) {
    // Dedup needs a given trace_id to always land on the same shard, so the
    // shard-local seen set is authoritative for that id.
    return *shards_[trace.trace_id() % shards_.size()];
  }
  // Traces are self-contained events: any shard works, so spread them
  // round-robin to keep producer contention low regardless of trace_id
  // distribution.
  const size_t index = next_trace_shard_.fetch_add(1, std::memory_order_relaxed);
  return *shards_[index % shards_.size()];
}

IngestPipeline::Shard& IngestPipeline::ShardForKey(const MetricKey& key) {
  // Metric samples use Record (set) semantics, so a given series must always
  // land on the same shard for the accumulate-fold to reconstruct it exactly.
  const size_t hash = std::hash<std::string>{}(key.component) * 31 +
                      static_cast<size_t>(key.resource);
  return *shards_[hash % shards_.size()];
}

bool IngestPipeline::IngestTrace(size_t window, Trace trace) {
  // Advance the frontier even for rejected traces: an all-corrupt window
  // still exists and must be sealed (as a degraded one), not stall the fold.
  const auto advance_frontier = [this](size_t w) {
    size_t frontier = frontier_.load(std::memory_order_relaxed);
    while (w + 1 > frontier &&
           !frontier_.compare_exchange_weak(frontier, w + 1, std::memory_order_release,
                                            std::memory_order_relaxed)) {
    }
  };

  if (ValidateTrace(trace) != TraceDefect::kNone) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(rejected_mu_);
      ++rejected_by_window_[window];
    }
    advance_frontier(window);
    return false;
  }

  Shard& shard = ShardForTrace(trace);
  {
    MutexLock lock(shard.mu);
    if (config_.dedupe_traces && trace.trace_id() != 0 &&
        !shard.seen_ids.insert(trace.trace_id()).second) {
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      advance_frontier(window);
      return false;
    }
    shard.traces.Collect(window, std::move(trace));
  }
  ingested_traces_.fetch_add(1, std::memory_order_relaxed);
  advance_frontier(window);
  return true;
}

void IngestPipeline::IngestMetric(const MetricKey& key, size_t window, double value) {
  Shard& shard = ShardForKey(key);
  {
    MutexLock lock(shard.mu);
    shard.metrics.Record(key, window, value);
    shard.sample_log.emplace_back(key, window);
  }
  size_t frontier = frontier_.load(std::memory_order_relaxed);
  while (window + 1 > frontier &&
         !frontier_.compare_exchange_weak(frontier, window + 1, std::memory_order_release,
                                          std::memory_order_relaxed)) {
  }
}

size_t IngestPipeline::Fold(size_t watermark) {
  MutexLock fold_lock(fold_mu_);
  const size_t sealed = features_.size();
  for (auto& shard : shards_) {
    TraceCollector traces;
    MetricsStore metrics;
    std::vector<std::pair<MetricKey, size_t>> sample_log;
    {
      MutexLock lock(shard->mu);
      traces = std::move(shard->traces);
      shard->traces = TraceCollector();
      metrics = std::move(shard->metrics);
      shard->metrics = MetricsStore();
      sample_log = std::move(shard->sample_log);
      shard->sample_log.clear();
    }
    // Presence bookkeeping must run before the accumulate: a late sample for
    // a window whose value was imputed replaces the imputation (reset the
    // folded slot to zero so the accumulate reconstructs the actual value).
    for (const auto& [key, w] : sample_log) {
      std::vector<char>& recorded = recorded_[key];
      if (recorded.size() <= w) {
        recorded.resize(w + 1, 0);
      }
      const auto [first_it, inserted] = first_recorded_.try_emplace(key, w);
      if (!inserted && w < first_it->second) {
        first_it->second = w;
      }
      auto imputed_it = imputed_at_.find(key);
      if (imputed_it != imputed_at_.end() && w < imputed_it->second.size() &&
          imputed_it->second[w]) {
        metrics_.Record(key, w, 0.0);
        imputed_it->second[w] = 0;
      }
      recorded[w] = 1;
    }
    // Traces for already-sealed windows keep the ground truth complete but
    // cannot change the frozen feature vectors.
    uint64_t late = 0;
    for (size_t w = 0; w < sealed && w < traces.window_count(); ++w) {
      late += traces.TracesAt(w).size();
    }
    if (late > 0) {
      late_.fetch_add(late, std::memory_order_relaxed);
    }
    collector_.MergeFrom(std::move(traces));
    metrics_.AccumulateFrom(metrics);
  }

  std::map<size_t, uint64_t> rejected_by_window;
  {
    MutexLock lock(rejected_mu_);
    rejected_by_window = rejected_by_window_;
    // Tallies for windows sealed in this fold are consumed; drop them so the
    // map stays bounded (late rejections for sealed windows are uncountable
    // against features anyway).
    rejected_by_window_.erase(rejected_by_window_.begin(),
                              rejected_by_window_.lower_bound(watermark));
  }
  while (features_.size() < watermark) {
    SealWindowLocked(features_.size(), rejected_by_window);
  }
  featured_.store(features_.size(), std::memory_order_release);
  return features_.size();
}

void IngestPipeline::SealWindowLocked(size_t window,
                                      const std::map<size_t, uint64_t>& rejected_by_window) {
  const double accepted = static_cast<double>(collector_.TracesAt(window).size());
  const auto rejected_it = rejected_by_window.find(window);
  const double rejected =
      rejected_it == rejected_by_window.end() ? 0.0 : static_cast<double>(rejected_it->second);

  std::vector<float> features = extractor_.ExtractWindow(collector_, window);
  DataQuality quality;
  if (accepted + rejected > 0.0) {
    quality.trace_coverage = accepted / (accepted + rejected);
  }

  const bool expectation_known = expected_traces_ >= 1.0;
  if (config_.impute && expectation_known && accepted <= 0.0) {
    // Collector outage: nothing arrived for a window the volume history says
    // should have traffic. Carry the previous window's features forward and
    // mark the window untrustworthy.
    if (!features_.empty()) {
      features = features_.back();
    }
    quality.imputed = true;
    quality.trace_coverage = 0.0;
    imputed_windows_.fetch_add(1, std::memory_order_relaxed);
  } else if (config_.impute && config_.renorm_threshold > 0.0 && expectation_known &&
             accepted < config_.renorm_threshold * expected_traces_) {
    // Partial window: keep the observed API mix, rescale to the expected
    // volume. The mix is real evidence; the magnitude is not.
    const float scale = static_cast<float>(expected_traces_ / accepted);
    for (float& f : features) {
      f *= scale;
    }
    quality.renormalized = true;
    quality.trace_coverage = std::min(quality.trace_coverage, accepted / expected_traces_);
    renormalized_windows_.fetch_add(1, std::memory_order_relaxed);
  }
  // Update the expected volume only from windows that were not repaired: a
  // long outage must not drag the expectation toward zero.
  if (accepted > 0.0 && !quality.imputed && !quality.renormalized) {
    expected_traces_ = expected_traces_ <= 0.0
                           ? accepted
                           : config_.ewma_alpha * accepted +
                                 (1.0 - config_.ewma_alpha) * expected_traces_;
  }

  // Metric-gap repair: every known series either scraped this window or gets
  // the previous window's value carried forward (a missing scrape folds to a
  // literal zero otherwise, which the sanity checker would read as a crash).
  size_t present = 0;
  size_t known = 0;
  for (const auto& [key, recorded] : recorded_) {
    const auto first_it = first_recorded_.find(key);
    if (first_it == first_recorded_.end() || window < first_it->second) {
      continue;  // series not started yet — nothing was expected this window
    }
    ++known;
    const bool has_sample = window < recorded.size() && recorded[window];
    if (has_sample) {
      ++present;
      continue;
    }
    if (config_.impute && window > 0) {
      metrics_.Record(key, window, metrics_.At(key, window - 1));
      std::vector<char>& imputed = imputed_at_[key];
      if (imputed.size() <= window) {
        imputed.resize(window + 1, 0);
      }
      imputed[window] = 1;
      imputed_metrics_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (known > 0) {
    quality.metric_coverage = static_cast<double>(present) / static_cast<double>(known);
  }

  quality.score = std::clamp(quality.trace_coverage * quality.metric_coverage, 0.0, 1.0);
  features_.push_back(std::move(features));
  quality_.push_back(quality);
}

size_t IngestPipeline::IngestLag() const {
  const size_t frontier = WindowFrontier();
  const size_t featured = featured_windows();
  return frontier > featured ? frontier - featured : 0;
}

std::vector<std::vector<float>> IngestPipeline::FeatureSlice(size_t from, size_t to) const {
  MutexLock lock(fold_mu_);
  assert(to <= features_.size() && "FeatureSlice past the featured prefix; Fold first");
  std::vector<std::vector<float>> slice;
  slice.reserve(to > from ? to - from : 0);
  for (size_t w = from; w < to && w < features_.size(); ++w) {
    slice.push_back(features_[w]);
  }
  return slice;
}

std::vector<DataQuality> IngestPipeline::QualitySlice(size_t from, size_t to) const {
  MutexLock lock(fold_mu_);
  std::vector<DataQuality> slice;
  slice.reserve(to > from ? to - from : 0);
  for (size_t w = from; w < to && w < quality_.size(); ++w) {
    slice.push_back(quality_[w]);
  }
  return slice;
}

MetricsStore IngestPipeline::MetricsCopy() const {
  MutexLock lock(fold_mu_);
  return metrics_;
}

TraceCollector IngestPipeline::TracesCopy(size_t from, size_t to) const {
  MutexLock lock(fold_mu_);
  return collector_.CopyRange(from, to);
}

}  // namespace deeprest
