// Streaming telemetry ingestion for the online estimation service.
//
// Producer threads push completed traces and metric samples into sharded,
// mutex-guarded buffers (one short lock per event, no contention across
// shards). A single folder — the ContinualLearner tick or an on-demand
// Fold() — drains the shards into the global TraceCollector / MetricsStore
// and extends an incrementally maintained feature series: each window is
// featured exactly once when the watermark passes it, so queries and
// retraining never rescan history from window 0.
//
// Lock ownership (see DESIGN.md section "src/serve"):
//   * Shard::mu   — producers, one push at a time; Fold swaps buffers out.
//   * fold_mu_    — the folded state (collector_, metrics_, features_);
//                   held by Fold while folding and by the query-side copy
//                   accessors, never while training or serving a request.
//
// Window/watermark semantics: producers tag every event with its absolute
// window index. Windows strictly below the watermark passed to Fold() are
// sealed — their feature vectors are final. Events that arrive for an
// already-sealed window are still folded into the collector/metrics (the
// ground truth stays complete) but the feature series is not recomputed;
// `late_events()` counts them.
#ifndef SRC_SERVE_INGEST_PIPELINE_H_
#define SRC_SERVE_INGEST_PIPELINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/feature_extractor.h"
#include "src/telemetry/metrics.h"
#include "src/trace/collector.h"

namespace deeprest {

struct IngestPipelineConfig {
  size_t shards = 4;
};

class IngestPipeline {
 public:
  // The pipeline owns a copy of the (frozen) feature space it features
  // windows with. ContinueLearning never grows the feature space, so the
  // series stays valid across model hot-swaps.
  IngestPipeline(FeatureExtractor extractor, const IngestPipelineConfig& config = {});

  // --- Producer side (any thread, concurrently) ---
  void IngestTrace(size_t window, Trace trace);
  void IngestMetric(const MetricKey& key, size_t window, double value);

  // One past the highest window index any producer has touched (0 when
  // nothing was ingested yet). With monotone producers the highest window
  // may still be receiving events, so the natural live watermark to pass to
  // Fold() is WindowFrontier() - 1; pass WindowFrontier() itself for the
  // final fold once producers have stopped.
  size_t WindowFrontier() const { return frontier_.load(std::memory_order_acquire); }

  // --- Folder side (one thread at a time) ---

  // Drains every shard into the folded stores and features all not-yet-
  // featured windows in [0, watermark). Returns the featured-prefix length.
  size_t Fold(size_t watermark);

  // Featured-prefix length: windows [0, featured_windows()) have final
  // feature vectors.
  size_t featured_windows() const { return featured_.load(std::memory_order_acquire); }

  // Ingested-but-not-yet-featured distance, the service's freshness metric.
  size_t IngestLag() const;

  uint64_t late_events() const { return late_.load(std::memory_order_relaxed); }
  uint64_t total_traces() const { return ingested_traces_.load(std::memory_order_relaxed); }

  // --- Query side (any thread; copies out under the fold lock) ---

  // Feature vectors for windows [from, to); to must be <= featured_windows().
  std::vector<std::vector<float>> FeatureSlice(size_t from, size_t to) const;

  // Stable copies for sanity checks / background training, so callers never
  // hold pipeline locks while running a model.
  MetricsStore MetricsCopy() const;
  TraceCollector TracesCopy(size_t from, size_t to) const;

  const FeatureExtractor& extractor() const { return extractor_; }

 private:
  struct Shard {
    std::mutex mu;
    TraceCollector traces;
    MetricsStore metrics;
  };

  Shard& ShardForTrace(const Trace& trace);
  Shard& ShardForKey(const MetricKey& key);

  FeatureExtractor extractor_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> next_trace_shard_{0};
  std::atomic<size_t> frontier_{0};  // one past the highest ingested window
  std::atomic<size_t> featured_{0};
  std::atomic<uint64_t> late_{0};
  std::atomic<uint64_t> ingested_traces_{0};

  mutable std::mutex fold_mu_;
  TraceCollector collector_;
  MetricsStore metrics_;
  std::vector<std::vector<float>> features_;  // [0, featured_) prefix
};

}  // namespace deeprest

#endif  // SRC_SERVE_INGEST_PIPELINE_H_
