// Streaming telemetry ingestion for the online estimation service.
//
// Producer threads push completed traces and metric samples into sharded,
// mutex-guarded buffers (one short lock per event, no contention across
// shards). A single folder — the ContinualLearner tick or an on-demand
// Fold() — drains the shards into the global TraceCollector / MetricsStore
// and extends an incrementally maintained feature series: each window is
// featured exactly once when the watermark passes it, so queries and
// retraining never rescan history from window 0.
//
// Production telemetry is NOT trusted. Admission control rejects traces that
// are structurally broken or carry absurd timestamps (ValidateTrace) and —
// when dedupe_traces is on — duplicates re-delivered by an at-least-once
// transport. Sealing a window additionally runs degraded-mode repair: a
// window that arrived empty gets its features carried forward from the
// previous window; a window far below the expected trace volume gets its
// observed API mix renormalized up to that volume; metric series that missed
// a scrape are carry-forward imputed. Every sealed window carries a
// DataQuality record describing how much of this happened, which the service
// propagates into estimates and the sanity checker uses to widen tolerances
// (see DESIGN.md "Failure model").
//
// Lock ownership (see DESIGN.md section "src/serve"):
//   * Shard::mu   — producers, one push at a time; Fold swaps buffers out.
//   * rejected_mu_— per-window rejection tallies from producers.
//   * fold_mu_    — the folded state (collector_, metrics_, features_,
//                   quality_); held by Fold while folding and by the
//                   query-side copy accessors, never while training or
//                   serving a request.
//
// Window/watermark semantics: producers tag every event with its absolute
// window index. Windows strictly below the watermark passed to Fold() are
// sealed — their feature vectors and quality records are final. Events that
// arrive for an already-sealed window are still folded into the
// collector/metrics (the ground truth stays complete) but the feature series
// is not recomputed; `late_events()` counts them.
#ifndef SRC_SERVE_INGEST_PIPELINE_H_
#define SRC_SERVE_INGEST_PIPELINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/core/feature_extractor.h"
#include "src/core/thread_annotations.h"
#include "src/serve/data_quality.h"
#include "src/telemetry/metrics.h"
#include "src/trace/collector.h"

namespace deeprest {

struct IngestPipelineConfig {
  size_t shards = 4;
  // Drop re-delivered traces (same nonzero trace_id) instead of double
  // counting them. Off by default: the offline replay paths intentionally
  // re-ingest known traces (e.g. late-event tests); a live deployment behind
  // an at-least-once transport should turn it on.
  bool dedupe_traces = false;
  // Degraded-mode repair at seal time. Carry-forward of fully-empty windows
  // and metric-gap imputation are always on when true.
  bool impute = true;
  // A window whose accepted-trace count falls below this fraction of the
  // expected per-window volume (EWMA over previously sealed windows) has its
  // features renormalized: observed API mix, expected magnitude. 0 disables
  // renormalization — the right default, because a genuine traffic dip is
  // indistinguishable from uniform telemetry loss by volume alone; enable it
  // for deployments whose collectors fail bursty rather than uniformly.
  double renorm_threshold = 0.0;
  // EWMA smoothing for the expected per-window trace volume.
  double ewma_alpha = 0.2;
};

class IngestPipeline {
 public:
  // The pipeline owns a copy of the (frozen) feature space it features
  // windows with. ContinueLearning never grows the feature space, so the
  // series stays valid across model hot-swaps.
  IngestPipeline(FeatureExtractor extractor, const IngestPipelineConfig& config = {});

  // --- Producer side (any thread, concurrently) ---

  // Returns false when the trace was rejected at the door (malformed
  // structure, absurd timestamps, or a duplicate under dedupe_traces);
  // rejected traces never reach the collector or the feature series but are
  // counted per window so the sealed DataQuality reflects the loss.
  bool IngestTrace(size_t window, Trace trace);
  void IngestMetric(const MetricKey& key, size_t window, double value);

  // One past the highest window index any producer has touched (0 when
  // nothing was ingested yet). With monotone producers the highest window
  // may still be receiving events, so the natural live watermark to pass to
  // Fold() is WindowFrontier() - 1; pass WindowFrontier() itself for the
  // final fold once producers have stopped.
  size_t WindowFrontier() const { return frontier_.load(std::memory_order_acquire); }

  // --- Folder side (one thread at a time) ---

  // Drains every shard into the folded stores and features all not-yet-
  // featured windows in [0, watermark). Returns the featured-prefix length.
  size_t Fold(size_t watermark);

  // Featured-prefix length: windows [0, featured_windows()) have final
  // feature vectors.
  size_t featured_windows() const { return featured_.load(std::memory_order_acquire); }

  // Ingested-but-not-yet-featured distance, the service's freshness metric.
  size_t IngestLag() const;

  uint64_t late_events() const { return late_.load(std::memory_order_relaxed); }
  uint64_t total_traces() const { return ingested_traces_.load(std::memory_order_relaxed); }
  // Admission-control and degraded-mode counters (stats.h surfaces them).
  uint64_t rejected_traces() const { return rejected_.load(std::memory_order_relaxed); }
  uint64_t duplicate_traces() const { return duplicates_.load(std::memory_order_relaxed); }
  uint64_t imputed_windows() const { return imputed_windows_.load(std::memory_order_relaxed); }
  uint64_t renormalized_windows() const {
    return renormalized_windows_.load(std::memory_order_relaxed);
  }
  uint64_t imputed_metrics() const { return imputed_metrics_.load(std::memory_order_relaxed); }

  // --- Query side (any thread; copies out under the fold lock) ---

  // Feature vectors for windows [from, to); to must be <= featured_windows().
  std::vector<std::vector<float>> FeatureSlice(size_t from, size_t to) const;

  // Quality records for sealed windows [from, to), index-aligned with
  // FeatureSlice over the same range.
  std::vector<DataQuality> QualitySlice(size_t from, size_t to) const;

  // Stable copies for sanity checks / background training, so callers never
  // hold pipeline locks while running a model.
  MetricsStore MetricsCopy() const;
  TraceCollector TracesCopy(size_t from, size_t to) const;

  const FeatureExtractor& extractor() const { return extractor_; }

 private:
  struct Shard {
    // Lock hierarchy: fold_mu_ -> mu (Fold drains every shard while holding
    // fold_mu_); producers take mu alone.
    Mutex mu;  // deeprest-lint: lock-level(after IngestPipeline::fold_mu_)
    TraceCollector traces DEEPREST_GUARDED_BY(mu);
    MetricsStore metrics DEEPREST_GUARDED_BY(mu);
    // (key, window) of every sample since the last fold, so the folder can
    // tell a recorded zero from a missing scrape.
    std::vector<std::pair<MetricKey, size_t>> sample_log DEEPREST_GUARDED_BY(mu);
    // Trace ids ever accepted by this shard (dedupe_traces routes a given id
    // to a fixed shard, so shard-local dedup is global dedup).
    std::unordered_set<uint64_t> seen_ids DEEPREST_GUARDED_BY(mu);
  };

  Shard& ShardForTrace(const Trace& trace);
  Shard& ShardForKey(const MetricKey& key);
  // Seals one window under fold_mu_: extracts features, applies degraded-mode
  // repair, and appends the DataQuality record.
  void SealWindowLocked(size_t window, const std::map<size_t, uint64_t>& rejected_by_window)
      DEEPREST_REQUIRES(fold_mu_);

  FeatureExtractor extractor_;
  IngestPipelineConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> next_trace_shard_{0};
  std::atomic<size_t> frontier_{0};  // one past the highest ingested window
  std::atomic<size_t> featured_{0};
  std::atomic<uint64_t> late_{0};
  std::atomic<uint64_t> ingested_traces_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> duplicates_{0};
  std::atomic<uint64_t> imputed_windows_{0};
  std::atomic<uint64_t> renormalized_windows_{0};
  std::atomic<uint64_t> imputed_metrics_{0};

  // Per-window rejection tallies (producers write, folder drains). Hierarchy:
  // fold_mu_ -> rejected_mu_; producers take rejected_mu_ alone.
  Mutex rejected_mu_ DEEPREST_ACQUIRED_AFTER(fold_mu_);
  // deeprest-lint: bounded(drained into the sealed window by the folder; keys span only windows not yet sealed)
  std::map<size_t, uint64_t> rejected_by_window_ DEEPREST_GUARDED_BY(rejected_mu_);

  mutable Mutex fold_mu_;
  TraceCollector collector_ DEEPREST_GUARDED_BY(fold_mu_);
  MetricsStore metrics_ DEEPREST_GUARDED_BY(fold_mu_);
  // [0, featured_) prefix.
  std::vector<std::vector<float>> features_ DEEPREST_GUARDED_BY(fold_mu_);
  // Aligned with features_.
  std::vector<DataQuality> quality_ DEEPREST_GUARDED_BY(fold_mu_);
  // Which (key, window) pairs actually scraped, vs. were imputed.
  // deeprest-lint: bounded(one entry per metric series; the series set is the app topology x metric kinds, fixed at deploy)
  std::map<MetricKey, std::vector<char>> recorded_ DEEPREST_GUARDED_BY(fold_mu_);
  // deeprest-lint: bounded(same key space as recorded_: topology x metric kinds)
  std::map<MetricKey, std::vector<char>> imputed_at_ DEEPREST_GUARDED_BY(fold_mu_);
  // Earliest window each series ever scraped: windows before a series starts
  // are not gaps (nothing was expected yet), so they are neither imputed nor
  // held against metric_coverage.
  // deeprest-lint: bounded(same key space as recorded_: topology x metric kinds)
  std::map<MetricKey, size_t> first_recorded_ DEEPREST_GUARDED_BY(fold_mu_);
  // EWMA of accepted traces per sealed window.
  double expected_traces_ DEEPREST_GUARDED_BY(fold_mu_) = 0.0;
};

}  // namespace deeprest

#endif  // SRC_SERVE_INGEST_PIPELINE_H_
