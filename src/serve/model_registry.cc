#include "src/serve/model_registry.h"

namespace deeprest {

uint64_t ModelRegistry::Publish(std::shared_ptr<const DeepRestEstimator> model) {
  MutexLock lock(mu_);
  current_.model = std::move(model);
  return ++current_.version;
}

void ModelRegistry::SetFp16Storage(bool enabled) {
  MutexLock lock(mu_);
  fp16_storage_ = enabled;
}

bool ModelRegistry::fp16_storage() const {
  MutexLock lock(mu_);
  return fp16_storage_;
}

void ModelRegistry::ApplyStoragePolicy(DeepRestEstimator& model) const {
  if (fp16_storage()) {
    model.CompressParametersToFp16();
  }
}

bool ModelRegistry::Restore(std::shared_ptr<const DeepRestEstimator> model, uint64_t version) {
  MutexLock lock(mu_);
  if (model == nullptr || version == 0 || version <= current_.version) {
    return false;
  }
  current_.model = std::move(model);
  current_.version = version;
  return true;
}

ModelSnapshot ModelRegistry::Current() const {
  MutexLock lock(mu_);
  return current_;
}

uint64_t ModelRegistry::version() const {
  MutexLock lock(mu_);
  return current_.version;
}

uint64_t ModelRegistry::publish_count() const { return version(); }

}  // namespace deeprest
