#include "src/serve/model_registry.h"

#include <sstream>
#include <utility>

namespace deeprest {

uint64_t ModelRegistry::Publish(std::shared_ptr<const DeepRestEstimator> model) {
  ModelSnapshot replaced;
  uint64_t version = 0;
  {
    MutexLock lock(mu_);
    replaced = current_;
    current_.model = std::move(model);
    version = ++current_.version;
  }
  // Retain the model this publish displaced — outside mu_, so serializing a
  // multi-megabyte clone never stalls Current() readers.
  if (replaced.valid()) {
    RetainClone(replaced.model, replaced.version);
  }
  return version;
}

void ModelRegistry::SetFp16Storage(bool enabled) {
  MutexLock lock(mu_);
  fp16_storage_ = enabled;
}

bool ModelRegistry::fp16_storage() const {
  MutexLock lock(mu_);
  return fp16_storage_;
}

void ModelRegistry::ApplyStoragePolicy(DeepRestEstimator& model) const {
  if (fp16_storage()) {
    model.CompressParametersToFp16();
  }
}

bool ModelRegistry::Restore(std::shared_ptr<const DeepRestEstimator> model, uint64_t version) {
  {
    MutexLock lock(mu_);
    if (model == nullptr || version == 0 || version <= current_.version) {
      return false;
    }
    current_.model = std::move(model);
    current_.version = version;
  }
  // Purge every retained pre-restore clone: a restored registry must not be
  // able to rematerialize stale experts, and the store's budget charge is
  // released here exactly once (Clear is idempotent; the version index is
  // cleared with it). The barrier closes the race with an in-flight
  // Publish's RetainClone: every pre-restore version is <= version - 1.
  MutexLock lock(retain_mu_);
  if (restore_barrier_ < version - 1) {
    restore_barrier_ = version - 1;
  }
  if (store_ != nullptr) {
    store_->Clear();
  }
  retained_versions_.clear();
  return true;
}

ModelSnapshot ModelRegistry::Current() const {
  MutexLock lock(mu_);
  return current_;
}

uint64_t ModelRegistry::version() const {
  MutexLock lock(mu_);
  return current_.version;
}

uint64_t ModelRegistry::publish_count() const { return version(); }

void ModelRegistry::SetRetention(SnapshotStore* store, size_t max_retained) {
  MutexLock lock(retain_mu_);
  if (store_ != nullptr && store_ != store) {
    store_->Clear();
  }
  retained_versions_.clear();
  store_ = store;
  max_retained_ = max_retained;
}

void ModelRegistry::RetainClone(const std::shared_ptr<const DeepRestEstimator>& model,
                                uint64_t version) {
  {
    MutexLock lock(retain_mu_);
    if (store_ == nullptr || max_retained_ == 0 || version <= restore_barrier_) {
      return;
    }
  }
  std::ostringstream out;
  if (!model->SaveToStream(out)) {
    return;
  }
  std::string bytes = out.str();
  MutexLock lock(retain_mu_);
  // Re-check after the unlocked serialization: a Restore may have raised
  // the barrier (this clone is now stale) or retention was reconfigured.
  if (store_ == nullptr || max_retained_ == 0 || version <= restore_barrier_) {
    return;
  }
  if (!store_->Put(version, std::move(bytes))) {
    return;
  }
  retained_versions_.push_back(version);
  while (retained_versions_.size() > max_retained_) {
    store_->Erase(retained_versions_.front());
    retained_versions_.pop_front();
    ++retain_evictions_;
  }
}

ModelSnapshot ModelRegistry::Snapshot(uint64_t version) const {
  ModelSnapshot current = Current();
  if (version == 0 || version == current.version) {
    return version == current.version ? current : ModelSnapshot{};
  }
  std::string bytes;
  {
    MutexLock lock(retain_mu_);
    if (store_ == nullptr || !store_->Get(version, &bytes)) {
      ++retain_misses_;
      return {};
    }
  }
  // Deserialize outside retain_mu_ — rematerializing a clone is the slow
  // part and must not block Publish/Restore bookkeeping.
  std::istringstream in(bytes);
  auto model = std::make_unique<DeepRestEstimator>();
  if (!model->LoadFromStream(in)) {
    MutexLock lock(retain_mu_);
    ++retain_misses_;
    return {};
  }
  {
    MutexLock lock(retain_mu_);
    ++retain_hits_;
  }
  ModelSnapshot snapshot;
  snapshot.version = version;
  snapshot.model = std::shared_ptr<const DeepRestEstimator>(std::move(model));
  return snapshot;
}

ModelRegistry::RetentionCounters ModelRegistry::retention_counters() const {
  MutexLock lock(retain_mu_);
  RetentionCounters counters;
  counters.retained = retained_versions_.size();
  counters.retain_hits = retain_hits_;
  counters.retain_misses = retain_misses_;
  counters.retain_evictions = retain_evictions_;
  counters.retained_bytes = store_ != nullptr ? store_->resident_bytes() : 0;
  return counters;
}

}  // namespace deeprest
