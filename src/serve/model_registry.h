// Hot-swappable registry of versioned, immutable DeepRest model snapshots.
//
// RCU-style publication: readers grab a shared_ptr to the current snapshot
// (a short critical section copying one pointer) and then use it lock-free
// for as long as they like; writers build a complete replacement model off
// to the side and publish it with one pointer swap. A snapshot is never
// mutated after publication — the const DeepRestEstimator inference surface
// is multi-thread safe (see tensor.h) — so a request that captured version N
// keeps computing against version N even while N+1 is being served to new
// requests, and N is freed when its last in-flight reader drops the pointer.
// This is what guarantees no request ever mixes weights from two versions.
#ifndef SRC_SERVE_MODEL_REGISTRY_H_
#define SRC_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <memory>

#include "src/core/estimator.h"
#include "src/core/thread_annotations.h"

namespace deeprest {

// One published model version. Copyable value: the estimator is shared and
// immutable.
struct ModelSnapshot {
  uint64_t version = 0;
  std::shared_ptr<const DeepRestEstimator> model;

  bool valid() const { return model != nullptr; }
};

class ModelRegistry {
 public:
  // Publishes a new current model; returns its version (1, 2, ...). The
  // model must be trained and must not be mutated afterwards.
  uint64_t Publish(std::shared_ptr<const DeepRestEstimator> model);
  // The unique_ptr overload still owns a mutable model, so it is the one
  // place the registry can apply its storage policy before the snapshot
  // becomes immutable.
  uint64_t Publish(std::unique_ptr<DeepRestEstimator> model) {
    if (model != nullptr) {
      ApplyStoragePolicy(*model);
    }
    return Publish(std::shared_ptr<const DeepRestEstimator>(std::move(model)));
  }

  // fp16 storage policy for models published through this registry: when
  // enabled, ApplyStoragePolicy rounds a model's parameters to binary16
  // precision in place (src/nn/quant.h) before publication — halving the
  // effective parameter precision (and the checkpoint size via the fp16
  // serialization format) while compute stays fp32. Only affects models
  // passed through the mutable publication paths (the unique_ptr Publish
  // overload and ContinualLearner's clone pipeline); a shared_ptr publish or
  // Restore is already immutable and is installed as-is.
  void SetFp16Storage(bool enabled);
  bool fp16_storage() const;
  // Applies the current policy to a still-mutable model (no-op when off).
  // Callers that train a clone apply this BEFORE converting to
  // shared_ptr<const> — see ContinualLearner.
  void ApplyStoragePolicy(DeepRestEstimator& model) const;

  // Startup recovery: installs a checkpointed model under its original
  // version number. Forward-only — fails (returns false) when the registry
  // already serves an equal-or-newer version, so a stale checkpoint can never
  // roll a live registry backwards. Subsequent Publish calls continue from
  // the restored version.
  bool Restore(std::shared_ptr<const DeepRestEstimator> model, uint64_t version);

  // The current snapshot (invalid before the first Publish). Readers hold
  // the returned shared_ptr for the full lifetime of one request.
  ModelSnapshot Current() const;

  uint64_t version() const;        // 0 before the first Publish
  uint64_t publish_count() const;  // == version(): total swaps so far

 private:
  mutable Mutex mu_;
  // The RCU publication point: writers replace it wholesale, readers copy it
  // out; the pointed-to estimator is immutable after publication, so only
  // the snapshot value itself needs the guard.
  ModelSnapshot current_ DEEPREST_GUARDED_BY(mu_);
  bool fp16_storage_ DEEPREST_GUARDED_BY(mu_) = false;
};

}  // namespace deeprest

#endif  // SRC_SERVE_MODEL_REGISTRY_H_
