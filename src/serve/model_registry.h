// Hot-swappable registry of versioned, immutable DeepRest model snapshots.
//
// RCU-style publication: readers grab a shared_ptr to the current snapshot
// (a short critical section copying one pointer) and then use it lock-free
// for as long as they like; writers build a complete replacement model off
// to the side and publish it with one pointer swap. A snapshot is never
// mutated after publication — the const DeepRestEstimator inference surface
// is multi-thread safe (see tensor.h) — so a request that captured version N
// keeps computing against version N even while N+1 is being served to new
// requests, and N is freed when its last in-flight reader drops the pointer.
// This is what guarantees no request ever mixes weights from two versions.
#ifndef SRC_SERVE_MODEL_REGISTRY_H_
#define SRC_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "src/core/estimator.h"
#include "src/core/thread_annotations.h"
#include "src/serve/state_cache.h"

namespace deeprest {

// One published model version. Copyable value: the estimator is shared and
// immutable.
struct ModelSnapshot {
  uint64_t version = 0;
  std::shared_ptr<const DeepRestEstimator> model;

  bool valid() const { return model != nullptr; }
};

class ModelRegistry {
 public:
  // Publishes a new current model; returns its version (1, 2, ...). The
  // model must be trained and must not be mutated afterwards.
  uint64_t Publish(std::shared_ptr<const DeepRestEstimator> model);
  // The unique_ptr overload still owns a mutable model, so it is the one
  // place the registry can apply its storage policy before the snapshot
  // becomes immutable.
  uint64_t Publish(std::unique_ptr<DeepRestEstimator> model) {
    if (model != nullptr) {
      ApplyStoragePolicy(*model);
    }
    return Publish(std::shared_ptr<const DeepRestEstimator>(std::move(model)));
  }

  // fp16 storage policy for models published through this registry: when
  // enabled, ApplyStoragePolicy rounds a model's parameters to binary16
  // precision in place (src/nn/quant.h) before publication — halving the
  // effective parameter precision (and the checkpoint size via the fp16
  // serialization format) while compute stays fp32. Only affects models
  // passed through the mutable publication paths (the unique_ptr Publish
  // overload and ContinualLearner's clone pipeline); a shared_ptr publish or
  // Restore is already immutable and is installed as-is.
  void SetFp16Storage(bool enabled);
  bool fp16_storage() const;
  // Applies the current policy to a still-mutable model (no-op when off).
  // Callers that train a clone apply this BEFORE converting to
  // shared_ptr<const> — see ContinualLearner.
  void ApplyStoragePolicy(DeepRestEstimator& model) const;

  // Startup recovery: installs a checkpointed model under its original
  // version number. Forward-only — fails (returns false) when the registry
  // already serves an equal-or-newer version, so a stale checkpoint can never
  // roll a live registry backwards. Subsequent Publish calls continue from
  // the restored version.
  bool Restore(std::shared_ptr<const DeepRestEstimator> model, uint64_t version);

  // The current snapshot (invalid before the first Publish). Readers hold
  // the returned shared_ptr for the full lifetime of one request.
  ModelSnapshot Current() const;

  uint64_t version() const;        // 0 before the first Publish
  uint64_t publish_count() const;  // == version(): total swaps so far

  // --- Retained-clone tiering (pluggable storage; ROADMAP refactor hook) ---
  //
  // With retention enabled, each Publish serializes the model it replaces
  // into `store` (SnapshotStore: in-RAM budget-charged or on-disk
  // checksummed — see state_cache.h) keyed by version, keeping at most
  // `max_retained` versions (oldest erased first). Snapshot(version)
  // rematerializes a retained clone by deserializing it — so expert clones
  // no longer pin live model objects in RAM, only their (fp16-format, when
  // the storage policy is on) serialized bytes, and those can spill to disk
  // or drop under pressure; a dropped version is a counted miss, never
  // wrong data. Restore() purges every retained clone (the store's budget
  // charge is released exactly once): a checkpoint restore must not leave
  // stale pre-restore experts resurrectable.
  struct RetentionCounters {
    uint64_t retained = 0;        // versions currently indexed
    uint64_t retain_hits = 0;     // Snapshot(version) served from the store
    uint64_t retain_misses = 0;   // version unknown or dropped by the store
    uint64_t retain_evictions = 0;  // max_retained displacements
    size_t retained_bytes = 0;    // store->resident_bytes()
  };
  // `store` must outlive the registry; nullptr disables retention.
  void SetRetention(SnapshotStore* store, size_t max_retained)
      DEEPREST_EXCLUDES(mu_, retain_mu_);
  // Current() when `version` is current; otherwise a clone rematerialized
  // from the retention store (invalid snapshot on a miss).
  ModelSnapshot Snapshot(uint64_t version) const DEEPREST_EXCLUDES(mu_, retain_mu_);
  RetentionCounters retention_counters() const DEEPREST_EXCLUDES(retain_mu_);

 private:
  // Serializes `model` into the retention store under `version`, evicting
  // past max_retained. Skips versions at or below the restore barrier so a
  // Publish racing a Restore cannot resurrect a pre-restore clone.
  void RetainClone(const std::shared_ptr<const DeepRestEstimator>& model,
                   uint64_t version) DEEPREST_EXCLUDES(mu_, retain_mu_);

  mutable Mutex mu_;
  // The RCU publication point: writers replace it wholesale, readers copy it
  // out; the pointed-to estimator is immutable after publication, so only
  // the snapshot value itself needs the guard.
  ModelSnapshot current_ DEEPREST_GUARDED_BY(mu_);
  bool fp16_storage_ DEEPREST_GUARDED_BY(mu_) = false;

  // Retention state. Lock order: mu_ before retain_mu_ (Publish installs
  // the new model under mu_, then retains the old one under retain_mu_
  // only); serialization/deserialization never runs under mu_, so readers
  // are not stalled by a multi-megabyte clone write.
  mutable Mutex retain_mu_ DEEPREST_ACQUIRED_AFTER(mu_);
  SnapshotStore* store_ DEEPREST_GUARDED_BY(retain_mu_) = nullptr;
  size_t max_retained_ DEEPREST_GUARDED_BY(retain_mu_) = 0;
  // Versions currently in the store, oldest first (bounded by max_retained_).
  std::deque<uint64_t> retained_versions_ DEEPREST_GUARDED_BY(retain_mu_);
  // Restore() raises this to its version: RetainClone drops anything at or
  // below it, closing the Publish-vs-Restore race window.
  uint64_t restore_barrier_ DEEPREST_GUARDED_BY(retain_mu_) = 0;
  mutable uint64_t retain_hits_ DEEPREST_GUARDED_BY(retain_mu_) = 0;
  mutable uint64_t retain_misses_ DEEPREST_GUARDED_BY(retain_mu_) = 0;
  uint64_t retain_evictions_ DEEPREST_GUARDED_BY(retain_mu_) = 0;
};

}  // namespace deeprest

#endif  // SRC_SERVE_MODEL_REGISTRY_H_
