#include "src/serve/state_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/nn/quant.h"
#include "src/serve/checkpoint.h"

namespace deeprest {

namespace {

constexpr uint64_t kSlotMagic = 0x44525354534C4231ULL;  // "DRSTSLB1"
constexpr uint64_t kSnapMagic = 0x4452534E41503031ULL;  // "DRSNAP01"

// Slab superblock region: one page holding {magic, slot payload bytes, slot
// count}; slots start right after it.
constexpr size_t kSuperblockBytes = 4096;

// Fixed per-entry overhead charged on top of the payload: map node, Entry
// struct, ring slot. An estimate, not an exact malloc audit — the gauge is
// soft memory, what matters is that 10^6 entries register as ~10^6 * (128 +
// overhead) bytes, not as zero.
constexpr size_t kHotEntryOverhead = 112;
constexpr size_t kColdEntryOverhead = 64;

size_t SerializedStateBytes(const StreamState& state) {
  return 2 * sizeof(uint64_t) + state.hidden.size() * sizeof(float);
}

void SerializeState(const StreamState& state, std::string* out) {
  out->clear();
  out->reserve(SerializedStateBytes(state));
  uint64_t words[2] = {state.steps, state.model_version};
  out->append(reinterpret_cast<const char*>(words), sizeof(words));
  out->append(reinterpret_cast<const char*>(state.hidden.data()),
              state.hidden.size() * sizeof(float));
}

bool DeserializeState(const std::string& bytes, StreamState* out) {
  if (bytes.size() < 2 * sizeof(uint64_t) ||
      (bytes.size() - 2 * sizeof(uint64_t)) % sizeof(float) != 0) {
    return false;
  }
  uint64_t words[2];
  std::memcpy(words, bytes.data(), sizeof(words));
  out->steps = words[0];
  out->model_version = words[1];
  const size_t floats = (bytes.size() - sizeof(words)) / sizeof(float);
  out->hidden.resize(floats);
  std::memcpy(out->hidden.data(), bytes.data() + sizeof(words), floats * sizeof(float));
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// MemoryBudget
// ---------------------------------------------------------------------------

size_t MemoryBudget::overage() const {
  const size_t budget = budget_.load(std::memory_order_relaxed);
  if (budget == 0) {
    return 0;
  }
  const size_t used = used_.load(std::memory_order_relaxed);
  return used > budget ? used - budget : 0;
}

void MemoryBudget::CheckPressure() {
  if (overage() == 0) {
    return;
  }
  MutexLock lock(mu_);
  // Re-check under the lock: a concurrent CheckPressure may already have
  // shrunk the tiers below budget.
  // Bounded passes: each pass asks every callback to cover the remaining
  // overage; a pass that frees nothing means everything left is pinned and
  // the gauge is allowed to overshoot (soft memory).
  for (int pass = 0; pass < 8; ++pass) {
    size_t need = overage();
    if (need == 0) {
      return;
    }
    pressure_events_.fetch_add(1, std::memory_order_relaxed);
    size_t freed_this_pass = 0;
    for (const auto& entry : callbacks_) {
      const size_t freed = entry.second(need);
      freed_this_pass += freed;
      need = overage();
      if (need == 0) {
        return;
      }
    }
    if (freed_this_pass == 0) {
      return;
    }
  }
}

size_t MemoryBudget::RegisterPressure(PressureFn fn) {
  MutexLock lock(mu_);
  const size_t id = next_callback_id_++;
  callbacks_.emplace_back(id, std::move(fn));
  return id;
}

void MemoryBudget::UnregisterPressure(size_t id) {
  MutexLock lock(mu_);
  for (size_t i = 0; i < callbacks_.size(); ++i) {
    if (callbacks_[i].first == id) {
      callbacks_.erase(callbacks_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// ColdTier names
// ---------------------------------------------------------------------------

const char* ColdTierName(ColdTier tier) {
  switch (tier) {
    case ColdTier::kFp16:
      return "fp16";
    case ColdTier::kDisk:
      return "disk";
    case ColdTier::kRecompute:
      return "recompute";
  }
  return "unknown";
}

bool ParseColdTier(const std::string& name, ColdTier* out) {
  if (name == "fp16") {
    *out = ColdTier::kFp16;
  } else if (name == "disk") {
    *out = ColdTier::kDisk;
  } else if (name == "recompute") {
    *out = ColdTier::kRecompute;
  } else {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// SlabFile
// ---------------------------------------------------------------------------

bool SlabFile::Open(const std::string& path, size_t slot_payload_bytes, size_t slot_count) {
  Close();
  if (slot_payload_bytes == 0 || slot_count == 0) {
    return false;
  }
  // Seed the file with an atomically-written superblock (the checkpoint
  // write-temp + fsync + rename discipline), then reopen read-write and
  // reserve the full slot region. A crash mid-create leaves either no slab
  // or a complete superblock — never a half-written one.
  std::string superblock;
  const uint64_t words[3] = {kSlotMagic, slot_payload_bytes, slot_count};
  superblock.append(reinterpret_cast<const char*>(words), sizeof(words));
  superblock.resize(kSuperblockBytes, '\0');
  if (!WriteFileAtomic(path, superblock)) {
    return false;
  }
  const int fd = ::open(path.c_str(), O_RDWR, 0644);
  if (fd < 0) {
    return false;
  }
  const size_t stride = sizeof(SlotHeader) + slot_payload_bytes;
  if (::ftruncate(fd, static_cast<off_t>(kSuperblockBytes + stride * slot_count)) != 0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  slot_payload_bytes_ = slot_payload_bytes;
  slot_count_ = slot_count;
  path_ = path;
  return true;
}

void SlabFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  slot_payload_bytes_ = 0;
  slot_count_ = 0;
}

bool SlabFile::WriteSlot(size_t slot, uint64_t key, const void* payload,
                         size_t payload_bytes) {
  if (fd_ < 0 || slot >= slot_count_ || payload_bytes > slot_payload_bytes_) {
    return false;
  }
  SlotHeader header;
  header.magic = kSlotMagic;
  header.key = key;
  header.payload_bytes = payload_bytes;
  header.checksum = Fnv1a64(payload, payload_bytes);
  std::string buffer;
  buffer.reserve(sizeof(header) + payload_bytes);
  buffer.append(reinterpret_cast<const char*>(&header), sizeof(header));
  buffer.append(static_cast<const char*>(payload), payload_bytes);
  const size_t stride = sizeof(SlotHeader) + slot_payload_bytes_;
  const off_t offset = static_cast<off_t>(kSuperblockBytes + stride * slot);
  size_t written = 0;
  while (written < buffer.size()) {
    const ssize_t n = ::pwrite(fd_, buffer.data() + written, buffer.size() - written,
                               offset + static_cast<off_t>(written));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

bool SlabFile::ReadSlot(size_t slot, uint64_t expected_key, std::string* out) const {
  if (fd_ < 0 || slot >= slot_count_) {
    return false;
  }
  const size_t stride = sizeof(SlotHeader) + slot_payload_bytes_;
  const off_t offset = static_cast<off_t>(kSuperblockBytes + stride * slot);
  std::vector<char> buffer(stride, '\0');
  size_t got = 0;
  while (got < stride) {
    const ssize_t n =
        ::pread(fd_, buffer.data() + got, stride - got, offset + static_cast<off_t>(got));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      return false;  // truncated file
    }
    got += static_cast<size_t>(n);
  }
  SlotHeader header;
  std::memcpy(&header, buffer.data(), sizeof(header));
  if (header.magic != kSlotMagic || header.key != expected_key ||
      header.payload_bytes > slot_payload_bytes_) {
    return false;
  }
  const char* payload = buffer.data() + sizeof(header);
  if (Fnv1a64(payload, header.payload_bytes) != header.checksum) {
    return false;  // torn slot: fail closed, the cache treats it as a miss
  }
  out->append(payload, header.payload_bytes);
  return true;
}

// ---------------------------------------------------------------------------
// StateCache
// ---------------------------------------------------------------------------

StateCache::Lease& StateCache::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = other.cache_;
    key_ = other.key_;
    state_ = other.state_;
    other.cache_ = nullptr;
    other.state_ = nullptr;
  }
  return *this;
}

void StateCache::Lease::Release() {
  if (cache_ != nullptr) {
    cache_->ReleaseLease(key_);
    cache_ = nullptr;
    state_ = nullptr;
  }
}

StateCache::StateCache(const StateCacheConfig& config) : config_(config) {
  if (config_.cold_tier == ColdTier::kDisk && !config_.slab_path.empty()) {
    MutexLock lock(mu_);
    if (slab_.Open(config_.slab_path, config_.slab_slot_payload_bytes, config_.slab_slots)) {
      disk_ok_.store(true, std::memory_order_relaxed);
      free_slots_.reserve(config_.slab_slots);
      for (size_t slot = config_.slab_slots; slot > 0; --slot) {
        free_slots_.push_back(slot - 1);
      }
    }
  }
  if (config_.budget != nullptr) {
    pressure_callback_id_ = config_.budget->RegisterPressure(
        [this](size_t bytes) { return ShrinkHot(bytes); });
  }
}

StateCache::~StateCache() {
  if (config_.budget != nullptr) {
    config_.budget->UnregisterPressure(pressure_callback_id_);
    // Return everything this cache still holds against the gauge.
    MutexLock lock(mu_);
    config_.budget->Release(hot_resident_ + cold_resident_);
  }
}

void StateCache::SetRecompute(RecomputeFn fn) { recompute_ = std::move(fn); }

size_t StateCache::EntryBytes(const StreamState& state) {
  return kHotEntryOverhead + state.hidden.size() * sizeof(float);
}

StateCache::Lease StateCache::Acquire(uint64_t key) { return AcquireImpl(key, false); }

StateCache::Lease StateCache::AcquireOrCreate(uint64_t key) {
  return AcquireImpl(key, true);
}

StateCache::Lease StateCache::AcquireImpl(uint64_t key, bool create) {
  size_t charge = 0;   // applied to the gauge after unlock
  size_t release = 0;  // cold-tier RAM freed by promotion, ditto
  Lease lease;
  bool try_recompute = false;
  {
    MutexLock lock(mu_);
    for (;;) {
      auto it = hot_.find(key);
      if (it == hot_.end()) {
        break;
      }
      Entry* entry = it->second.get();
      if (!entry->pinned) {
        entry->pinned = true;
        entry->ref = true;
        hot_hits_.fetch_add(1, std::memory_order_relaxed);
        return Lease(this, key, &entry->state);
      }
      // Exclusive lease held elsewhere: wait, then re-find — the entry may
      // have been released (and stayed hot; pinned entries are never
      // evicted, but the release itself may have raced a Clear()).
      lock.Wait(lease_cv_);
    }
    // Cold tier promotion.
    auto cold_it = cold_.find(key);
    if (cold_it != cold_.end()) {
      StreamState state;
      bool ok = false;
      if (config_.cold_tier == ColdTier::kFp16) {
        state.steps = cold_it->second.steps;
        state.model_version = cold_it->second.model_version;
        state.hidden.resize(cold_it->second.half.size());
        for (size_t i = 0; i < state.hidden.size(); ++i) {
          state.hidden[i] = HalfToFloat(cold_it->second.half[i]);
        }
        ok = true;
      } else if (config_.cold_tier == ColdTier::kDisk) {
        std::string bytes;
        ok = slab_.ReadSlot(cold_it->second.slot, key, &bytes) &&
             DeserializeState(bytes, &state);
        if (!ok) {
          drops_.fetch_add(1, std::memory_order_relaxed);  // torn slot
        }
      }
      release += EraseColdLocked(key);
      if (ok) {
        cold_hits_.fetch_add(1, std::memory_order_relaxed);
        InsertHotLocked(key, std::move(state), /*pinned=*/true);
        Entry* entry = hot_.find(key)->second.get();
        charge = entry->charged_bytes;
        lease = Lease(this, key, &entry->state);
      }
    }
    if (!lease.valid()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      try_recompute = recompute_ != nullptr;
      if (!try_recompute && create) {
        InsertHotLocked(key, StreamState{}, /*pinned=*/true);
        Entry* entry = hot_.find(key)->second.get();
        charge = entry->charged_bytes;
        lease = Lease(this, key, &entry->state);
      }
    }
  }
  if (!lease.valid() && try_recompute) {
    // Recompute outside the lock — the callback may be an estimator replay.
    StreamState rebuilt;
    const bool ok = recompute_(key, &rebuilt);
    MutexLock lock(mu_);
    // Re-check: a concurrent acquirer may have installed the key meanwhile.
    auto it = hot_.find(key);
    if (it != hot_.end()) {
      Entry* entry = it->second.get();
      while (entry->pinned) {
        lock.Wait(lease_cv_);
        it = hot_.find(key);
        if (it == hot_.end()) {
          break;
        }
        entry = it->second.get();
      }
      if (it != hot_.end()) {
        entry->pinned = true;
        entry->ref = true;
        hot_hits_.fetch_add(1, std::memory_order_relaxed);
        lease = Lease(this, key, &entry->state);
      }
    }
    if (!lease.valid() && (ok || create)) {
      if (ok) {
        recomputes_.fetch_add(1, std::memory_order_relaxed);
      }
      InsertHotLocked(key, ok ? std::move(rebuilt) : StreamState{}, /*pinned=*/true);
      Entry* entry = hot_.find(key)->second.get();
      charge = entry->charged_bytes;
      lease = Lease(this, key, &entry->state);
    }
  }
  if (config_.budget != nullptr) {
    if (release > 0) {
      config_.budget->Release(release);
    }
    if (charge > 0) {
      config_.budget->Reserve(charge);
    }
  }
  if (lease.valid()) {
    // Enforce the local hot cap outside the budget path too (a cache can
    // run without a global gauge).
    ShrinkHotToCap();
  }
  return lease;
}

void StateCache::ShrinkHotToCap() {
  size_t released = 0;
  {
    MutexLock lock(mu_);
    while (hot_resident_ > config_.hot_bytes) {
      const size_t freed = EvictOneLocked();
      if (freed == 0) {
        break;  // everything unpinned is gone; pinned overshoot allowed
      }
      released += freed;
    }
  }
  if (released > 0 && config_.budget != nullptr) {
    config_.budget->Release(released);
  }
}

void StateCache::ReleaseLease(uint64_t key) {
  size_t charge = 0;
  size_t release = 0;
  {
    MutexLock lock(mu_);
    auto it = hot_.find(key);
    assert(it != hot_.end());
    Entry* entry = it->second.get();
    entry->pinned = false;
    // Re-account: the state may have grown (fresh stream's first pass) or
    // shrunk while leased.
    const size_t now = EntryBytes(entry->state);
    if (now > entry->charged_bytes) {
      charge = now - entry->charged_bytes;
      hot_resident_ += charge;
    } else {
      release = entry->charged_bytes - now;
      hot_resident_ -= release;
    }
    entry->charged_bytes = now;
  }
  lease_cv_.notify_all();
  if (config_.budget != nullptr) {
    if (release > 0) {
      config_.budget->Release(release);
    }
    if (charge > 0) {
      config_.budget->Reserve(charge);
    }
  }
  ShrinkHotToCap();
}

void StateCache::InsertHotLocked(uint64_t key, StreamState state, bool pinned) {
  auto entry = std::make_unique<Entry>();
  entry->key = key;
  entry->state = std::move(state);
  entry->charged_bytes = EntryBytes(entry->state);
  entry->pinned = pinned;
  entry->ref = true;
  entry->ring_pos = ring_.size();
  hot_resident_ += entry->charged_bytes;
  ring_.push_back(entry.get());
  hot_.emplace(key, std::move(entry));
}

void StateCache::RemoveFromRingLocked(Entry* entry) {
  const size_t pos = entry->ring_pos;
  assert(pos < ring_.size() && ring_[pos] == entry);
  ring_[pos] = ring_.back();
  ring_[pos]->ring_pos = pos;
  ring_.pop_back();
  if (hand_ >= ring_.size()) {
    hand_ = 0;
  }
}

size_t StateCache::EvictOneLocked() {
  if (ring_.empty()) {
    return 0;
  }
  // CLOCK: give every referenced entry a second chance; two full sweeps
  // guarantee either a victim or proof that everything left is pinned.
  for (size_t scanned = 0; scanned < 2 * ring_.size(); ++scanned) {
    if (hand_ >= ring_.size()) {
      hand_ = 0;
    }
    Entry* candidate = ring_[hand_];
    if (candidate->pinned) {
      ++hand_;
      continue;
    }
    if (candidate->ref) {
      candidate->ref = false;
      ++hand_;
      continue;
    }
    const uint64_t victim_key = candidate->key;  // copied: erase frees the entry
    const size_t hot_freed = candidate->charged_bytes;
    size_t cold_freed = 0;
    const size_t cold_charged = DemoteLocked(*candidate, &cold_freed);
    RemoveFromRingLocked(candidate);
    hot_resident_ -= hot_freed;
    hot_.erase(victim_key);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    const size_t gained = hot_freed + cold_freed;
    return gained > cold_charged ? gained - cold_charged : 0;
  }
  return 0;
}

size_t StateCache::DemoteLocked(Entry& entry, size_t* cold_freed) {
  switch (config_.cold_tier) {
    case ColdTier::kFp16: {
      ColdEntry cold;
      cold.steps = entry.state.steps;
      cold.model_version = entry.state.model_version;
      cold.half.resize(entry.state.hidden.size());
      for (size_t i = 0; i < cold.half.size(); ++i) {
        cold.half[i] = FloatToHalf(entry.state.hidden[i]);
      }
      cold.charged_bytes = kColdEntryOverhead + cold.half.size() * sizeof(uint16_t);
      cold.seq = ++cold_seq_;
      const size_t charged = cold.charged_bytes;
      const uint64_t seq = cold.seq;
      cold_resident_ += charged;
      *cold_freed += EraseColdLocked(entry.key);  // replace any stale cold copy
      cold_.emplace(entry.key, std::move(cold));
      cold_fifo_.emplace_back(entry.key, seq);
      CompactColdFifoLocked();
      compressions_.fetch_add(1, std::memory_order_relaxed);
      *cold_freed += EnforceColdCapLocked();
      return charged;
    }
    case ColdTier::kDisk: {
      if (!slab_.is_open()) {
        drops_.fetch_add(1, std::memory_order_relaxed);
        return 0;
      }
      std::string bytes;
      SerializeState(entry.state, &bytes);
      if (bytes.size() > slab_.slot_payload_bytes()) {
        drops_.fetch_add(1, std::memory_order_relaxed);
        return 0;
      }
      size_t slot;
      uint64_t victim = 0;
      if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
      } else if (PopColdVictimLocked(&victim)) {
        // Slab full: reclaim the oldest spilled entry's slot (that entry is
        // lost — counted — and its next access recomputes or warm-restarts).
        auto victim_it = cold_.find(victim);
        assert(victim_it != cold_.end());
        slot = victim_it->second.slot;
        *cold_freed += EraseColdLocked(victim);  // 0: disk entries hold no RAM
        free_slots_.pop_back();  // EraseColdLocked pushed the slot back
        drops_.fetch_add(1, std::memory_order_relaxed);
      } else {
        drops_.fetch_add(1, std::memory_order_relaxed);
        return 0;
      }
      if (!slab_.WriteSlot(slot, entry.key, bytes.data(), bytes.size())) {
        free_slots_.push_back(slot);
        drops_.fetch_add(1, std::memory_order_relaxed);
        return 0;
      }
      ColdEntry cold;
      cold.slot = slot;
      cold.steps = entry.state.steps;
      cold.model_version = entry.state.model_version;
      cold.seq = ++cold_seq_;
      const uint64_t seq = cold.seq;
      *cold_freed += EraseColdLocked(entry.key);
      cold_.emplace(entry.key, std::move(cold));
      cold_fifo_.emplace_back(entry.key, seq);
      CompactColdFifoLocked();
      spills_.fetch_add(1, std::memory_order_relaxed);
      return 0;  // disk holds the bytes; no RAM charge
    }
    case ColdTier::kRecompute:
      drops_.fetch_add(1, std::memory_order_relaxed);
      return 0;
  }
  return 0;
}

size_t StateCache::EnforceColdCapLocked() {
  size_t freed = 0;
  uint64_t victim = 0;
  while (cold_resident_ > config_.cold_bytes && PopColdVictimLocked(&victim)) {
    freed += EraseColdLocked(victim);
    drops_.fetch_add(1, std::memory_order_relaxed);
  }
  return freed;
}

size_t StateCache::EraseColdLocked(uint64_t key) {
  auto it = cold_.find(key);
  if (it == cold_.end()) {
    return 0;
  }
  const size_t freed = it->second.charged_bytes;
  cold_resident_ -= freed;
  if (config_.cold_tier == ColdTier::kDisk) {
    free_slots_.push_back(it->second.slot);
  }
  // The fifo record is left behind as stale (its seq no longer resolves);
  // PopColdVictimLocked / CompactColdFifoLocked discard it later. Scanning
  // the deque here would make every promotion O(cold entries).
  cold_.erase(it);
  return freed;
}

bool StateCache::PopColdVictimLocked(uint64_t* key) {
  while (!cold_fifo_.empty()) {
    const std::pair<uint64_t, uint64_t> front = cold_fifo_.front();
    cold_fifo_.pop_front();
    auto it = cold_.find(front.first);
    if (it != cold_.end() && it->second.seq == front.second) {
      *key = front.first;
      return true;
    }
  }
  return false;
}

void StateCache::CompactColdFifoLocked() {
  // Stale records accumulate one per promotion / re-demotion; rebuild the
  // fifo once they dominate so it stays O(live cold entries).
  if (cold_fifo_.size() <= 2 * cold_.size() + 64) {
    return;
  }
  std::deque<std::pair<uint64_t, uint64_t>> live;
  for (const auto& record : cold_fifo_) {
    auto it = cold_.find(record.first);
    if (it != cold_.end() && it->second.seq == record.second) {
      live.push_back(record);
    }
  }
  cold_fifo_.swap(live);
}

size_t StateCache::ShrinkHot(size_t bytes) {
  pressure_shrinks_.fetch_add(1, std::memory_order_relaxed);
  size_t released = 0;
  {
    MutexLock lock(mu_);
    while (released < bytes) {
      const size_t freed = EvictOneLocked();
      if (freed == 0 && ring_.empty()) {
        break;
      }
      if (freed == 0) {
        // Either everything unpinned is gone or the eviction net-charged
        // the cold tier as much as it freed; stop rather than spin.
        break;
      }
      released += freed;
    }
  }
  // Called from the budget's pressure chain (atomic-only accounting there):
  // report the release to the gauge ourselves.
  if (released > 0 && config_.budget != nullptr) {
    config_.budget->Release(released);
  }
  return released;
}

void StateCache::Clear() {
  size_t released = 0;
  {
    MutexLock lock(mu_);
    // Drop every unpinned hot entry straight out (no demotion) plus the
    // whole cold tier. Pinned entries survive — their leases still point at
    // them.
    std::vector<uint64_t> victims;
    victims.reserve(hot_.size());
    for (const auto& entry : hot_) {
      if (!entry.second->pinned) {
        victims.push_back(entry.first);
      }
    }
    for (uint64_t key : victims) {
      Entry* entry = hot_.find(key)->second.get();
      RemoveFromRingLocked(entry);
      hot_resident_ -= entry->charged_bytes;
      released += entry->charged_bytes;
      hot_.erase(key);
      drops_.fetch_add(1, std::memory_order_relaxed);
    }
    released += cold_resident_;
    cold_resident_ = 0;
    if (config_.cold_tier == ColdTier::kDisk) {
      for (const auto& cold : cold_) {
        free_slots_.push_back(cold.second.slot);
      }
    }
    drops_.fetch_add(cold_.size(), std::memory_order_relaxed);
    cold_.clear();
    cold_fifo_.clear();
  }
  if (released > 0 && config_.budget != nullptr) {
    config_.budget->Release(released);
  }
}

StateCacheCounters StateCache::Counters() const {
  StateCacheCounters counters;
  counters.hot_hits = hot_hits_.load(std::memory_order_relaxed);
  counters.cold_hits = cold_hits_.load(std::memory_order_relaxed);
  counters.misses = misses_.load(std::memory_order_relaxed);
  counters.recomputes = recomputes_.load(std::memory_order_relaxed);
  counters.evictions = evictions_.load(std::memory_order_relaxed);
  counters.compressions = compressions_.load(std::memory_order_relaxed);
  counters.spills = spills_.load(std::memory_order_relaxed);
  counters.drops = drops_.load(std::memory_order_relaxed);
  counters.pressure_shrinks = pressure_shrinks_.load(std::memory_order_relaxed);
  MutexLock lock(mu_);
  counters.hot_entries = hot_.size();
  counters.cold_entries = cold_.size();
  counters.hot_resident_bytes = hot_resident_;
  counters.cold_resident_bytes = cold_resident_;
  return counters;
}

// ---------------------------------------------------------------------------
// InMemorySnapshotStore
// ---------------------------------------------------------------------------

InMemorySnapshotStore::InMemorySnapshotStore(size_t max_bytes, MemoryBudget* budget)
    : max_bytes_(max_bytes), budget_(budget) {
  if (budget_ != nullptr) {
    pressure_callback_id_ = budget_->RegisterPressure([this](size_t bytes) {
      MutexLock lock(mu_);
      size_t freed = 0;
      while (freed < bytes && !blobs_.empty()) {
        freed += DropOldestLocked();
      }
      if (freed > 0) {
        budget_->Release(freed);
      }
      return freed;
    });
  }
}

InMemorySnapshotStore::~InMemorySnapshotStore() {
  if (budget_ != nullptr) {
    budget_->UnregisterPressure(pressure_callback_id_);
    MutexLock lock(mu_);
    budget_->Release(resident_);
  }
}

size_t InMemorySnapshotStore::DropOldestLocked() {
  if (blobs_.empty()) {
    return 0;
  }
  auto oldest = blobs_.begin();
  const size_t bytes = oldest->second.size();
  resident_ -= bytes;
  blobs_.erase(oldest);
  dropped_.fetch_add(1, std::memory_order_relaxed);
  return bytes;
}

bool InMemorySnapshotStore::Put(uint64_t version, std::string bytes) {
  if (bytes.size() > max_bytes_) {
    return false;
  }
  size_t charge = 0;
  size_t release = 0;
  {
    MutexLock lock(mu_);
    auto it = blobs_.find(version);
    if (it != blobs_.end()) {
      release += it->second.size();
      resident_ -= it->second.size();
      blobs_.erase(it);
    }
    while (resident_ + bytes.size() > max_bytes_ && !blobs_.empty()) {
      release += DropOldestLocked();
    }
    resident_ += bytes.size();
    charge = bytes.size();
    blobs_.emplace(version, std::move(bytes));
  }
  if (budget_ != nullptr) {
    if (release > 0) {
      budget_->Release(release);
    }
    budget_->Reserve(charge);
  }
  return true;
}

bool InMemorySnapshotStore::Get(uint64_t version, std::string* bytes) {
  MutexLock lock(mu_);
  auto it = blobs_.find(version);
  if (it == blobs_.end()) {
    return false;
  }
  *bytes = it->second;
  return true;
}

void InMemorySnapshotStore::Erase(uint64_t version) {
  size_t release = 0;
  {
    MutexLock lock(mu_);
    auto it = blobs_.find(version);
    if (it == blobs_.end()) {
      return;
    }
    release = it->second.size();
    resident_ -= release;
    blobs_.erase(it);
  }
  if (budget_ != nullptr && release > 0) {
    budget_->Release(release);
  }
}

void InMemorySnapshotStore::Clear() {
  size_t release = 0;
  {
    MutexLock lock(mu_);
    release = resident_;
    resident_ = 0;
    blobs_.clear();
  }
  if (budget_ != nullptr && release > 0) {
    budget_->Release(release);
  }
}

size_t InMemorySnapshotStore::resident_bytes() const {
  MutexLock lock(mu_);
  return resident_;
}

// ---------------------------------------------------------------------------
// DiskSnapshotStore
// ---------------------------------------------------------------------------

DiskSnapshotStore::DiskSnapshotStore(std::string dir) : dir_(std::move(dir)) {}

DiskSnapshotStore::~DiskSnapshotStore() { Clear(); }

std::string DiskSnapshotStore::PathFor(uint64_t version) const {
  return dir_ + "/clone-" + std::to_string(version) + ".bin";
}

bool DiskSnapshotStore::Put(uint64_t version, std::string bytes) {
  std::string file;
  file.reserve(3 * sizeof(uint64_t) + bytes.size());
  const uint64_t words[3] = {kSnapMagic, version,
                             Fnv1a64(bytes.data(), bytes.size())};
  file.append(reinterpret_cast<const char*>(words), sizeof(words));
  file += bytes;
  if (!WriteFileAtomic(PathFor(version), file)) {
    return false;
  }
  MutexLock lock(mu_);
  sizes_[version] = file.size();
  return true;
}

bool DiskSnapshotStore::Get(uint64_t version, std::string* bytes) {
  {
    MutexLock lock(mu_);
    if (sizes_.find(version) == sizes_.end()) {
      return false;
    }
  }
  std::string file;
  if (!ReadFileAll(PathFor(version), &file) || file.size() < 3 * sizeof(uint64_t)) {
    return false;
  }
  uint64_t words[3];
  std::memcpy(words, file.data(), sizeof(words));
  const char* payload = file.data() + sizeof(words);
  const size_t payload_bytes = file.size() - sizeof(words);
  if (words[0] != kSnapMagic || words[1] != version ||
      Fnv1a64(payload, payload_bytes) != words[2]) {
    return false;  // torn or mismatched file: a miss, never wrong bytes
  }
  bytes->assign(payload, payload_bytes);
  return true;
}

void DiskSnapshotStore::Erase(uint64_t version) {
  {
    MutexLock lock(mu_);
    if (sizes_.erase(version) == 0) {
      return;
    }
  }
  std::remove(PathFor(version).c_str());
}

void DiskSnapshotStore::Clear() {
  std::vector<uint64_t> versions;
  {
    MutexLock lock(mu_);
    versions.reserve(sizes_.size());
    for (const auto& entry : sizes_) {
      versions.push_back(entry.first);
    }
    sizes_.clear();
  }
  for (uint64_t version : versions) {
    std::remove(PathFor(version).c_str());
  }
}

size_t DiskSnapshotStore::resident_bytes() const {
  MutexLock lock(mu_);
  size_t total = 0;
  for (const auto& entry : sizes_) {
    total += entry.second;
  }
  return total;
}

}  // namespace deeprest
