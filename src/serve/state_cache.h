// Soft-memory tiered state: bounded-RAM caching of per-stream hidden states
// and retained model clones.
//
// Serving millions of concurrent streams means millions of per-API-context
// GRU hidden states (and several retained expert-model clones) that cannot
// all stay hot in RAM. This file provides the reclaimable cache layer
// (ROADMAP item 3, in the spirit of Midas soft memory): caches that shrink
// under pressure without correctness loss, because every tier transition is
// either lossless (disk spill stores raw float bits), precision-bounded
// (fp16 round-to-nearest-even via src/nn/quant.h), or recoverable
// (recompute-on-miss / warm-restart). Eviction is never a correctness event.
//
// Components:
//
//  * MemoryBudget — process-wide soft-memory gauge. Consumers Charge/Release
//    bytes as they allocate and free; Reserve additionally runs registered
//    pressure callbacks until usage is back under budget (or every callback
//    declines). The gauge is what lets several caches share one bound.
//
//  * StateCache — the two-tier per-stream state cache:
//      hot tier:  live StreamState entries (fp32), byte-budgeted, CLOCK
//                 eviction with reference bits; pinned (leased) entries are
//                 never evicted.
//      cold tier: one of
//        kFp16      — evicted states compressed in place to binary16
//                     (round-to-nearest-even; promotion decompresses).
//        kDisk      — evicted states spilled to a fixed-slot slab file with
//                     per-slot FNV-1a checksums (bit-exact round trip; a
//                     torn slot reads as a miss, never as wrong data).
//        kRecompute — evicted states are dropped; the registered recompute
//                     callback (or the consumer's warm-restart fallback)
//                     rebuilds them on the next access.
//    Access is by exclusive pin/lease: Acquire/AcquireOrCreate return a
//    Lease that pins the entry for its lifetime, so eviction can never free
//    state a reader still borrows. A second Acquire of the same key blocks
//    until the lease returns.
//
//  * SnapshotStore — pluggable cold storage for ModelRegistry's retained
//    model clones (the ROADMAP "make ModelRegistry storage pluggable"
//    refactor hook): InMemorySnapshotStore (budget-charged, FIFO-evicting)
//    or DiskSnapshotStore (one checksummed file per version, written with
//    the checkpoint.h atomic-replace discipline).
//
// Lock hierarchy (TSA-annotated; see DESIGN.md "Soft-memory tiered state"):
//
//   MemoryBudget::mu_  →  StateCache::mu_ / InMemorySnapshotStore::mu_
//
//   * Pressure callbacks run WITH MemoryBudget::mu_ held and take the
//     cache's own mutex inside — so no component may call Reserve(),
//     CheckPressure(), RegisterPressure() or UnregisterPressure() while
//     holding a cache mutex (that is the cycle). Charge()/Release() are
//     atomic-only and safe anywhere.
//   * StateCache public entry points do their map work under mu_, then
//     charge the budget AFTER unlocking; the gauge lags an in-flight
//     operation by at most one entry (soft memory, soft accounting).
//   * Consumers holding several leases at once (EstimationService batches)
//     must acquire them in ascending key order — the documented
//     deadlock-free order for the blocking exclusive lease.
#ifndef SRC_SERVE_STATE_CACHE_H_
#define SRC_SERVE_STATE_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/thread_annotations.h"

namespace deeprest {

// ---------------------------------------------------------------------------
// MemoryBudget — process-wide soft-memory gauge with pressure callbacks.
// ---------------------------------------------------------------------------
class MemoryBudget {
 public:
  // budget_bytes == 0 means unlimited (the gauge still counts usage).
  explicit MemoryBudget(size_t budget_bytes = 0) : budget_(budget_bytes) {}

  void SetBudget(size_t bytes) { budget_.store(bytes, std::memory_order_relaxed); }
  size_t budget() const { return budget_.load(std::memory_order_relaxed); }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  // Bytes over budget right now (0 when unlimited or under).
  size_t overage() const;

  // Atomic-only accounting; never runs callbacks, safe to call anywhere
  // (including from inside a pressure callback).
  void Charge(size_t bytes) { used_.fetch_add(bytes, std::memory_order_relaxed); }
  void Release(size_t bytes) { used_.fetch_sub(bytes, std::memory_order_relaxed); }

  // Charge + CheckPressure: the normal allocation path. Must NOT be called
  // while holding any cache mutex (see the lock hierarchy above).
  void Reserve(size_t bytes) DEEPREST_EXCLUDES(mu_) {
    Charge(bytes);
    CheckPressure();
  }

  // Runs pressure callbacks while usage exceeds the budget. Stops when a
  // full pass frees nothing (everything evictable is pinned — soft
  // overshoot is allowed by design) or after a bounded number of passes.
  void CheckPressure() DEEPREST_EXCLUDES(mu_);

  // A pressure callback frees up to `bytes_to_free` bytes (by shrinking its
  // tier) and returns how many it actually released from the gauge. Runs
  // with MemoryBudget::mu_ held; it may Charge/Release but must not call
  // Reserve/CheckPressure/Register/Unregister (lock cycle).
  using PressureFn = std::function<size_t(size_t bytes_to_free)>;
  size_t RegisterPressure(PressureFn fn) DEEPREST_EXCLUDES(mu_);
  void UnregisterPressure(size_t id) DEEPREST_EXCLUDES(mu_);

  // How many times CheckPressure found the gauge over budget and ran the
  // callback chain.
  uint64_t pressure_events() const {
    return pressure_events_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<size_t> budget_;
  std::atomic<size_t> used_{0};
  std::atomic<uint64_t> pressure_events_{0};
  // Pressure callbacks run under this mutex and take the stores' mutexes
  // (drop-oldest / evict paths) — hence the acquired-before edges, and hence
  // why Reserve() while holding a cache or store mutex is a deadlock.
  // deeprest-lint: lock-level(before StateCache::mu_, InMemorySnapshotStore::mu_)
  mutable Mutex mu_;
  std::vector<std::pair<size_t, PressureFn>> callbacks_ DEEPREST_GUARDED_BY(mu_);
  size_t next_callback_id_ DEEPREST_GUARDED_BY(mu_) = 1;
};

// ---------------------------------------------------------------------------
// StateCache — two-tier cache of per-stream estimator continuation state.
// ---------------------------------------------------------------------------

// One stream's continuation state: the flattened hidden state (expert-major,
// expert_count * hidden_dim floats — the layout DeepRestEstimator::
// StreamCursor uses), the number of windows the stream has consumed, and the
// model version that produced the state. An empty `hidden` means "fresh":
// the next pass starts from the model's warm-start cache.
struct StreamState {
  std::vector<float> hidden;
  uint64_t steps = 0;
  uint64_t model_version = 0;
};

enum class ColdTier {
  kFp16,       // compress evicted states to binary16 in RAM
  kDisk,       // spill raw float bits to the slab file (bit-exact)
  kRecompute,  // drop; recompute callback / consumer warm-restart rebuilds
};

const char* ColdTierName(ColdTier tier);
// Parses "fp16" / "disk" / "recompute"; false on anything else.
bool ParseColdTier(const std::string& name, ColdTier* out);

struct StateCacheConfig {
  // Hot-tier byte cap: CLOCK eviction starts when resident fp32 state
  // exceeds this. Always enforced, independent of the global gauge.
  size_t hot_bytes = size_t{64} << 20;
  ColdTier cold_tier = ColdTier::kFp16;
  // kFp16: byte cap of the compressed tier (oldest entries drop past it).
  size_t cold_bytes = size_t{32} << 20;
  // kDisk: slab geometry. slot_payload_bytes must fit a serialized
  // StreamState (16 bytes of steps/version + 4 per hidden float); entries
  // that do not fit are dropped (counted), never truncated.
  std::string slab_path;
  size_t slab_slot_payload_bytes = 256;
  size_t slab_slots = 1 << 16;
  // Optional process gauge. The cache Charges/Releases its resident bytes
  // against it and registers a pressure callback that shrinks the hot tier.
  // Must outlive the cache.
  MemoryBudget* budget = nullptr;
};

// Per-tier activity counters (monotonic except the resident/entry gauges).
struct StateCacheCounters {
  uint64_t hot_hits = 0;       // served straight from the hot tier
  uint64_t cold_hits = 0;      // promoted from fp16/disk cold tier
  uint64_t misses = 0;         // not in any tier (fresh stream or dropped)
  uint64_t recomputes = 0;     // misses rebuilt by the recompute callback
  uint64_t evictions = 0;      // hot-tier CLOCK demotions
  uint64_t compressions = 0;   // demotions that landed in the fp16 tier
  uint64_t spills = 0;         // demotions written to a disk slab slot
  uint64_t drops = 0;          // states lost entirely (cold overflow, torn
                               // slot, oversized entry, kRecompute demotion)
  uint64_t pressure_shrinks = 0;  // pressure-callback invocations
  size_t hot_entries = 0;
  size_t cold_entries = 0;
  size_t hot_resident_bytes = 0;
  size_t cold_resident_bytes = 0;  // RAM held by the fp16 tier (disk is free)
};

// Fixed-slot spill file for evicted stream states. Every slot carries a
// {magic, key, payload size, FNV-1a checksum} header; a read validates all
// four, so a torn or reused slot fails closed as a miss — the slab can lose
// data (it is a cache) but can never return wrong bytes. The superblock is
// written with the checkpoint.h atomic-replace discipline; slot writes are
// plain pwrites guarded by their checksums. Not internally synchronized:
// StateCache serializes access under its own mutex.
class SlabFile {
 public:
  SlabFile() = default;
  ~SlabFile() { Close(); }
  SlabFile(const SlabFile&) = delete;
  SlabFile& operator=(const SlabFile&) = delete;

  // Creates/truncates the slab (states are recomputable; the slab never
  // needs to outlive the process). False on I/O failure — the cache then
  // degrades to dropping evicted entries.
  bool Open(const std::string& path, size_t slot_payload_bytes, size_t slot_count);
  void Close();
  bool is_open() const { return fd_ >= 0; }
  size_t slot_payload_bytes() const { return slot_payload_bytes_; }
  size_t slot_count() const { return slot_count_; }

  // False when the payload does not fit or the pwrite fails.
  bool WriteSlot(size_t slot, uint64_t key, const void* payload, size_t payload_bytes);
  // Validates magic/key/size/checksum; appends the payload to *out. False
  // on any mismatch (torn write, stale slot, wrong key).
  bool ReadSlot(size_t slot, uint64_t expected_key, std::string* out) const;

 private:
  struct SlotHeader {
    uint64_t magic = 0;
    uint64_t key = 0;
    uint64_t payload_bytes = 0;
    uint64_t checksum = 0;
  };

  int fd_ = -1;
  size_t slot_payload_bytes_ = 0;
  size_t slot_count_ = 0;
  std::string path_;
};

class StateCache {
 public:
  // Exclusive pin on one entry. While a Lease is alive its entry cannot be
  // evicted, demoted, or concurrently leased; state() is freely mutable.
  // Destruction (or explicit release) unpins, re-accounts the entry's bytes
  // (states grow on first use), and wakes blocked acquirers.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { Release(); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    bool valid() const { return cache_ != nullptr; }
    uint64_t key() const { return key_; }
    StreamState& state() { return *state_; }
    const StreamState& state() const { return *state_; }
    void Release();

   private:
    friend class StateCache;
    Lease(StateCache* cache, uint64_t key, StreamState* state)
        : cache_(cache), key_(key), state_(state) {}

    StateCache* cache_ = nullptr;
    uint64_t key_ = 0;
    StreamState* state_ = nullptr;
  };

  explicit StateCache(const StateCacheConfig& config);
  ~StateCache();
  StateCache(const StateCache&) = delete;
  StateCache& operator=(const StateCache&) = delete;

  // Rebuilds a dropped entry on miss (kRecompute tier, or any tier after a
  // cold-side loss). Returns false when the key cannot be rebuilt. Called
  // WITHOUT the cache mutex held; must not touch this cache.
  using RecomputeFn = std::function<bool(uint64_t key, StreamState* out)>;
  void SetRecompute(RecomputeFn fn);

  // Looks the key up hot → cold → recompute. Invalid lease on a full miss.
  // Blocks while another thread holds the key's lease.
  Lease Acquire(uint64_t key) DEEPREST_EXCLUDES(mu_);
  // Acquire, creating a fresh (empty-hidden) entry on a full miss — the
  // serving path's entry point: a fresh entry means "start from the model's
  // warm-start state". Always returns a valid lease.
  Lease AcquireOrCreate(uint64_t key) DEEPREST_EXCLUDES(mu_);

  // Pressure hook (also directly testable): demotes unpinned hot entries in
  // CLOCK order until `bytes` have left the hot tier or nothing unpinned
  // remains. Returns the RAM actually released from the gauge's view (hot
  // bytes freed minus cold bytes newly occupied).
  size_t ShrinkHot(size_t bytes) DEEPREST_EXCLUDES(mu_);

  // Drops every unpinned entry in both tiers (leased entries survive).
  void Clear() DEEPREST_EXCLUDES(mu_);

  StateCacheCounters Counters() const DEEPREST_EXCLUDES(mu_);
  const StateCacheConfig& config() const { return config_; }
  const MemoryBudget* budget() const { return config_.budget; }
  // False when kDisk was configured but the slab failed to open (the cache
  // then behaves like kRecompute and counts demotions as drops).
  bool disk_ok() const { return disk_ok_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    uint64_t key = 0;
    StreamState state;
    size_t charged_bytes = 0;  // what this entry holds against the gauge
    bool pinned = false;
    bool ref = false;    // CLOCK reference bit
    size_t ring_pos = 0;  // position in ring_
  };
  // fp16-compressed cold entry (kFp16) or slab slot handle (kDisk).
  struct ColdEntry {
    std::vector<uint16_t> half;  // kFp16: RNE-rounded hidden state
    size_t slot = 0;             // kDisk
    uint64_t steps = 0;
    uint64_t model_version = 0;
    size_t charged_bytes = 0;  // RAM charge (0 for disk entries)
    // Matches this entry's cold_fifo_ record; a fifo record whose seq no
    // longer matches is stale (the key was promoted or re-demoted since)
    // and is skipped lazily — erasure never scans the fifo.
    uint64_t seq = 0;
  };

  friend class Lease;
  void ReleaseLease(uint64_t key) DEEPREST_EXCLUDES(mu_);

  // Shared Acquire/AcquireOrCreate body. Map bookkeeping happens under mu_;
  // budget charges are applied after unlock (see the hierarchy note on top).
  Lease AcquireImpl(uint64_t key, bool create) DEEPREST_EXCLUDES(mu_);
  // Evicts until the hot tier fits config_.hot_bytes (pinned overshoot
  // allowed); reports freed RAM to the gauge.
  void ShrinkHotToCap() DEEPREST_EXCLUDES(mu_);
  void InsertHotLocked(uint64_t key, StreamState state, bool pinned)
      DEEPREST_REQUIRES(mu_);
  void RemoveFromRingLocked(Entry* entry) DEEPREST_REQUIRES(mu_);
  // One CLOCK eviction: demotes the first unpinned hand candidate to the
  // cold tier. Returns net RAM released (0 when everything is pinned).
  size_t EvictOneLocked() DEEPREST_REQUIRES(mu_);
  // Demotion into the configured cold tier; returns RAM newly charged by
  // the cold side (fp16 bytes; 0 for disk/recompute) and adds any RAM it
  // freed cold-side (stale copies, FIFO cap drops) to *cold_freed — both
  // flow back to the gauge through the caller.
  size_t DemoteLocked(Entry& entry, size_t* cold_freed) DEEPREST_REQUIRES(mu_);
  // Drops cold entries (FIFO) until the fp16 tier fits its cap; returns the
  // RAM freed.
  size_t EnforceColdCapLocked() DEEPREST_REQUIRES(mu_);
  // Returns the erased entry's RAM charge (0 on miss / disk entries) so the
  // caller can return it to the gauge.
  size_t EraseColdLocked(uint64_t key) DEEPREST_REQUIRES(mu_);
  // Pops fifo records until one matches a live cold entry; that key is the
  // FIFO victim. False when the cold tier is empty.
  bool PopColdVictimLocked(uint64_t* key) DEEPREST_REQUIRES(mu_);
  // Drops stale fifo records wholesale once they outnumber live entries.
  void CompactColdFifoLocked() DEEPREST_REQUIRES(mu_);
  static size_t EntryBytes(const StreamState& state);

  const StateCacheConfig config_;
  RecomputeFn recompute_;  // set before serving starts; then read-only
  std::atomic<bool> disk_ok_{false};
  size_t pressure_callback_id_ = 0;  // registration with config_.budget

  mutable Mutex mu_;  // deeprest-lint: lock-level(after MemoryBudget::mu_)
  std::condition_variable lease_cv_;
  // Hot tier. Byte-budgeted via hot_resident_ + CLOCK over ring_; never
  // grows past config_.hot_bytes except by pinned-entry overshoot.
  // deeprest-lint: bounded(hot tier is byte-budgeted: EvictOneLocked keeps hot_resident_ under config_.hot_bytes)
  std::unordered_map<uint64_t, std::unique_ptr<Entry>> hot_ DEEPREST_GUARDED_BY(mu_);
  std::vector<Entry*> ring_ DEEPREST_GUARDED_BY(mu_);  // CLOCK order
  size_t hand_ DEEPREST_GUARDED_BY(mu_) = 0;
  // Cold tier (fp16 entries capped by cold_bytes; disk entries capped by
  // slab slots — both enforced FIFO by cold_fifo_, which holds {key, seq}
  // records and tolerates stale ones; see ColdEntry::seq).
  // deeprest-lint: bounded(cold tier is capped by cold_bytes / slab slots; EnforceColdCapLocked drops FIFO overflow)
  std::unordered_map<uint64_t, ColdEntry> cold_ DEEPREST_GUARDED_BY(mu_);
  std::deque<std::pair<uint64_t, uint64_t>> cold_fifo_ DEEPREST_GUARDED_BY(mu_);
  uint64_t cold_seq_ DEEPREST_GUARDED_BY(mu_) = 0;
  std::vector<size_t> free_slots_ DEEPREST_GUARDED_BY(mu_);
  SlabFile slab_ DEEPREST_GUARDED_BY(mu_);
  size_t hot_resident_ DEEPREST_GUARDED_BY(mu_) = 0;
  size_t cold_resident_ DEEPREST_GUARDED_BY(mu_) = 0;

  // Counters are atomics so Counters() mid-eviction-storm never blocks the
  // serving path for long.
  std::atomic<uint64_t> hot_hits_{0}, cold_hits_{0}, misses_{0}, recomputes_{0};
  std::atomic<uint64_t> evictions_{0}, compressions_{0}, spills_{0}, drops_{0};
  std::atomic<uint64_t> pressure_shrinks_{0};
};

// ---------------------------------------------------------------------------
// SnapshotStore — pluggable cold storage for retained ModelRegistry clones.
// ---------------------------------------------------------------------------
class SnapshotStore {
 public:
  virtual ~SnapshotStore() = default;
  // Stores the serialized model for `version` (replacing any previous
  // bytes). False when the store could not hold it.
  virtual bool Put(uint64_t version, std::string bytes) = 0;
  // Copies the bytes out. False on miss — including entries the store
  // silently dropped under pressure (it is a cache, not a log).
  virtual bool Get(uint64_t version, std::string* bytes) = 0;
  virtual void Erase(uint64_t version) = 0;
  virtual void Clear() = 0;
  virtual size_t resident_bytes() const = 0;
};

// Serialized clones kept in RAM, charged against an optional MemoryBudget;
// oldest-version entries drop under pressure or past max_bytes.
class InMemorySnapshotStore : public SnapshotStore {
 public:
  explicit InMemorySnapshotStore(size_t max_bytes = size_t{256} << 20,
                                 MemoryBudget* budget = nullptr);
  ~InMemorySnapshotStore() override;

  bool Put(uint64_t version, std::string bytes) override DEEPREST_EXCLUDES(mu_);
  bool Get(uint64_t version, std::string* bytes) override DEEPREST_EXCLUDES(mu_);
  void Erase(uint64_t version) override DEEPREST_EXCLUDES(mu_);
  void Clear() override DEEPREST_EXCLUDES(mu_);
  size_t resident_bytes() const override DEEPREST_EXCLUDES(mu_);
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  size_t DropOldestLocked() DEEPREST_REQUIRES(mu_);  // returns bytes freed

  const size_t max_bytes_;
  MemoryBudget* const budget_;
  size_t pressure_callback_id_ = 0;
  std::atomic<uint64_t> dropped_{0};
  mutable Mutex mu_;  // deeprest-lint: lock-level(after MemoryBudget::mu_)
  // deeprest-lint: bounded(capped at max_bytes_: Put/pressure drop oldest versions FIFO)
  std::map<uint64_t, std::string> blobs_ DEEPREST_GUARDED_BY(mu_);
  size_t resident_ DEEPREST_GUARDED_BY(mu_) = 0;
};

// One checksummed file per retained version under `dir`, written with the
// checkpoint.h atomic-replace discipline; Get validates magic + FNV-1a, so
// a torn file reads as a miss. Holds no RAM beyond the index.
class DiskSnapshotStore : public SnapshotStore {
 public:
  explicit DiskSnapshotStore(std::string dir);
  ~DiskSnapshotStore() override;

  bool Put(uint64_t version, std::string bytes) override DEEPREST_EXCLUDES(mu_);
  bool Get(uint64_t version, std::string* bytes) override DEEPREST_EXCLUDES(mu_);
  void Erase(uint64_t version) override DEEPREST_EXCLUDES(mu_);
  void Clear() override DEEPREST_EXCLUDES(mu_);
  size_t resident_bytes() const override DEEPREST_EXCLUDES(mu_);  // disk bytes

 private:
  std::string PathFor(uint64_t version) const;

  const std::string dir_;
  mutable Mutex mu_;  // deeprest-lint: lock-level(leaf)
  // deeprest-lint: bounded(capped by ModelRegistry retention (max_retained); Restore clears it)
  std::map<uint64_t, size_t> sizes_ DEEPREST_GUARDED_BY(mu_);
};

}  // namespace deeprest

#endif  // SRC_SERVE_STATE_CACHE_H_
