#include "src/serve/stats.h"

#include <algorithm>
#include <cstdio>

namespace deeprest {

namespace {

// Enough samples for exact p99 over any realistic bench run while bounding
// memory; past the cap new samples overwrite a rotating slot so long-running
// services keep a recent-ish population instead of freezing the percentiles.
constexpr size_t kMaxLatencySamples = 1 << 18;

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  const size_t rank = std::min(samples.size() - 1,
                               static_cast<size_t>(q * static_cast<double>(samples.size())));
  std::nth_element(samples.begin(), samples.begin() + static_cast<ptrdiff_t>(rank),
                   samples.end());
  return samples[rank];
}

std::string FormatCount(uint64_t v) { return std::to_string(v); }

std::string FormatMs(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f ms", v);
  return buffer;
}

}  // namespace

void ServiceStats::RecordSubmitted() {
  MutexLock lock(mu_);
  ++submitted_;
}

void ServiceStats::RecordBatch(size_t batch_size) {
  MutexLock lock(mu_);
  ++batches_;
  batched_requests_ += batch_size;
  max_batch_ = std::max(max_batch_, batch_size);
}

void ServiceStats::RecordServed(bool is_sanity, double latency_ms) {
  MutexLock lock(mu_);
  ++served_;
  if (is_sanity) {
    ++sanity_served_;
  } else {
    ++estimate_served_;
  }
  if (latencies_ms_.size() < kMaxLatencySamples) {
    latencies_ms_.push_back(latency_ms);
  } else {
    latencies_ms_[served_ % kMaxLatencySamples] = latency_ms;
  }
}

void ServiceStats::RecordShed() {
  MutexLock lock(mu_);
  ++shed_;
}

void ServiceStats::RecordExpired() {
  MutexLock lock(mu_);
  ++expired_;
}

void ServiceStats::RecordRejected() {
  MutexLock lock(mu_);
  ++rejected_;
}

void ServiceStats::RecordHedgeLaunched() {
  MutexLock lock(mu_);
  ++hedges_launched_;
}

void ServiceStats::RecordHedgeWon() {
  MutexLock lock(mu_);
  ++hedges_won_;
}

void ServiceStats::RecordHedgedDuplicate() {
  MutexLock lock(mu_);
  ++hedged_duplicates_;
}

void ServiceStats::RecordHedgeCancelled() {
  MutexLock lock(mu_);
  ++hedges_cancelled_;
}

void ServiceStats::RecordHedgeSkippedFull() {
  MutexLock lock(mu_);
  ++hedges_skipped_full_;
}

void ServiceStats::RecordWorkerStall() {
  MutexLock lock(mu_);
  ++worker_stalls_;
}

void ServiceStats::RecordWorkerCrash() {
  MutexLock lock(mu_);
  ++worker_crashes_;
}

void ServiceStats::RecordWorkerRestart() {
  MutexLock lock(mu_);
  ++worker_restarts_;
}

void ServiceStats::RecordStateReset() {
  MutexLock lock(mu_);
  ++state_resets_;
}

double ServiceStats::LatencyQuantileMs(double q, size_t min_samples) const {
  MutexLock lock(mu_);
  if (latencies_ms_.size() < std::max<size_t>(1, min_samples)) {
    return 0.0;
  }
  return Percentile(latencies_ms_, q);
}

ServiceCounters ServiceStats::Snapshot() const {
  MutexLock lock(mu_);
  ServiceCounters counters;
  counters.requests_submitted = submitted_;
  counters.requests_served = served_;
  counters.estimate_requests = estimate_served_;
  counters.sanity_requests = sanity_served_;
  counters.requests_shed = shed_;
  counters.requests_expired = expired_;
  counters.requests_rejected = rejected_;
  counters.batches_dispatched = batches_;
  counters.max_batch_size = max_batch_;
  counters.mean_batch_size =
      batches_ == 0 ? 0.0
                    : static_cast<double>(batched_requests_) / static_cast<double>(batches_);
  counters.p50_latency_ms = Percentile(latencies_ms_, 0.50);
  counters.p99_latency_ms = Percentile(latencies_ms_, 0.99);
  counters.hedges_launched = hedges_launched_;
  counters.hedges_won = hedges_won_;
  counters.hedged_duplicates = hedged_duplicates_;
  counters.hedges_cancelled = hedges_cancelled_;
  counters.hedges_skipped_full = hedges_skipped_full_;
  counters.worker_stalls = worker_stalls_;
  counters.worker_crashes = worker_crashes_;
  counters.worker_restarts = worker_restarts_;
  counters.state_resets = state_resets_;
  return counters;
}

std::string FormatBytes(size_t bytes) {
  char buffer[32];
  if (bytes >= (size_t{1} << 20)) {
    std::snprintf(buffer, sizeof(buffer), "%.1f MB",
                  static_cast<double>(bytes) / static_cast<double>(size_t{1} << 20));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f KB",
                  static_cast<double>(bytes) / 1024.0);
  }
  return buffer;
}

std::vector<std::pair<std::string, std::string>> ServiceCounters::Rows() const {
  char mean[32];
  std::snprintf(mean, sizeof(mean), "%.2f", mean_batch_size);
  std::vector<std::pair<std::string, std::string>> rows = {
      {"requests submitted", FormatCount(requests_submitted)},
      {"requests served", FormatCount(requests_served)},
      {"  estimate", FormatCount(estimate_requests)},
      {"  sanity check", FormatCount(sanity_requests)},
      {"requests shed", FormatCount(requests_shed)},
      {"requests expired", FormatCount(requests_expired)},
      {"requests rejected (stopped)", FormatCount(requests_rejected)},
      {"batches dispatched", FormatCount(batches_dispatched)},
      {"mean batch size", mean},
      {"max batch size", FormatCount(max_batch_size)},
      {"queue depth", FormatCount(queue_depth)},
      {"p50 latency", FormatMs(p50_latency_ms)},
      {"p99 latency", FormatMs(p99_latency_ms)},
      {"ingest lag (windows)", FormatCount(ingest_lag_windows)},
      {"traces rejected", FormatCount(traces_rejected)},
      {"traces deduplicated", FormatCount(traces_deduplicated)},
      {"imputed windows", FormatCount(imputed_windows)},
      {"renormalized windows", FormatCount(renormalized_windows)},
      {"imputed metric samples", FormatCount(imputed_metrics)},
      {"models published", FormatCount(models_published)},
      {"serving model version", FormatCount(model_version)},
      {"hedges launched", FormatCount(hedges_launched)},
      {"  hedge wins", FormatCount(hedges_won)},
      {"  hedged duplicates", FormatCount(hedged_duplicates)},
      {"  hedges cancelled", FormatCount(hedges_cancelled)},
      {"  hedges skipped (queue full)", FormatCount(hedges_skipped_full)},
      {"worker stalls", FormatCount(worker_stalls)},
      {"worker crashes", FormatCount(worker_crashes)},
      {"worker restarts", FormatCount(worker_restarts)},
      {"degraded mode", FormatCount(degraded_mode)},
  };
  if (state_cache_attached) {
    rows.emplace_back("stream-state hot hits", FormatCount(state_hot_hits));
    rows.emplace_back("stream-state cold hits", FormatCount(state_cold_hits));
    rows.emplace_back("stream-state misses", FormatCount(state_misses));
    rows.emplace_back("stream-state evictions", FormatCount(state_evictions));
    rows.emplace_back("stream-state spills", FormatCount(state_spills));
    rows.emplace_back("stream-state drops", FormatCount(state_drops));
    rows.emplace_back("stream-state version resets", FormatCount(state_resets));
    rows.emplace_back("stream-state resident", FormatBytes(state_resident_bytes));
    rows.emplace_back("memory gauge",
                      FormatBytes(memory_used_bytes) + " / " +
                          (memory_budget_bytes == 0 ? std::string("unlimited")
                                                    : FormatBytes(memory_budget_bytes)));
    rows.emplace_back("retained model clones", FormatCount(retained_clones));
    rows.emplace_back("retained clone bytes", FormatBytes(retained_clone_bytes));
  }
  return rows;
}

}  // namespace deeprest
