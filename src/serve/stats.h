// Per-service counters for the online estimation service.
//
// ServiceStats is the thread-safe recorder the service and its workers write
// into; ServiceCounters is the plain snapshot struct handed to callers (and
// rendered by `deeprest serve`). Latencies are kept as raw samples (capped)
// so the percentiles are exact rather than bucketed.
#ifndef SRC_SERVE_STATS_H_
#define SRC_SERVE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/thread_annotations.h"

namespace deeprest {

// Immutable snapshot of the service's lifetime counters.
struct ServiceCounters {
  uint64_t requests_submitted = 0;
  uint64_t requests_served = 0;
  uint64_t estimate_requests = 0;
  uint64_t sanity_requests = 0;
  // Overload / fault handling (see DESIGN.md "Failure model"):
  uint64_t requests_shed = 0;      // rejected by the bounded queue
  uint64_t requests_expired = 0;   // deadline passed before serving
  uint64_t requests_rejected = 0;  // submitted after Stop()
  uint64_t batches_dispatched = 0;
  size_t max_batch_size = 0;
  double mean_batch_size = 0.0;
  size_t queue_depth = 0;  // at snapshot time
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  size_t ingest_lag_windows = 0;  // ingested but not yet featured
  // Ingest admission control / degraded-mode repair (from IngestPipeline):
  uint64_t traces_rejected = 0;      // failed validation at the door
  uint64_t traces_deduplicated = 0;  // duplicate deliveries dropped
  uint64_t imputed_windows = 0;      // feature vectors carried forward
  uint64_t renormalized_windows = 0; // API mix rescaled to expected volume
  uint64_t imputed_metrics = 0;      // metric gaps carry-forward filled
  uint64_t models_published = 0;  // registry swap count
  uint64_t model_version = 0;     // currently served version
  // Hedged requests (tail-latency insurance; see EstimationService):
  uint64_t hedges_launched = 0;    // duplicates actually enqueued
  uint64_t hedges_won = 0;         // pairs the duplicate resolved first
  uint64_t hedged_duplicates = 0;  // losing copies discarded
  uint64_t hedges_cancelled = 0;   // armed hedges whose primary won the wait
  uint64_t hedges_skipped_full = 0;  // queue bound left no room for a hedge
  // Supervision (watchdog-driven recovery; see supervisor.h):
  uint64_t worker_stalls = 0;    // injected stalls observed by workers
  uint64_t worker_crashes = 0;   // worker threads that exited on a fault
  uint64_t worker_restarts = 0;  // successful RestartWorker revivals
  uint64_t degraded_mode = 0;    // 1 while escalated to reject-new shedding
  // Soft-memory tiered stream-state cache (state_cache.h). Rows render only
  // when a StateCache is wired into the service.
  bool state_cache_attached = false;
  uint64_t state_hot_hits = 0;     // streams resumed straight from the hot tier
  uint64_t state_cold_hits = 0;    // streams promoted from the fp16/disk tier
  uint64_t state_misses = 0;       // fresh streams + states lost cold-side
  uint64_t state_evictions = 0;    // hot-tier CLOCK demotions
  uint64_t state_spills = 0;       // disk-slab slot writes
  uint64_t state_drops = 0;        // states lost entirely (cold overflow etc.)
  uint64_t state_resets = 0;       // model-version-mismatch warm restarts
  size_t state_resident_bytes = 0; // hot + cold RAM held by the cache
  // Global soft-memory gauge (0 budget = unlimited) and retained-clone tier.
  size_t memory_budget_bytes = 0;
  size_t memory_used_bytes = 0;
  uint64_t retained_clones = 0;       // model versions in the snapshot store
  uint64_t retained_clone_bytes = 0;  // bytes the store holds for them

  // Two-column "counter | value" table (rendered with eval/ascii elsewhere).
  std::vector<std::pair<std::string, std::string>> Rows() const;
};

// "12.5 MB" / "640.0 KB" — shared by the counter table and the CLI's
// budgeted-serving summary row.
std::string FormatBytes(size_t bytes);

// Thread-safe recorder. All methods may be called concurrently.
class ServiceStats {
 public:
  void RecordSubmitted();
  void RecordBatch(size_t batch_size);
  // One request completed; kind tallies and latency sample.
  void RecordServed(bool is_sanity, double latency_ms);
  // Overload outcomes: shed by the bounded queue, expired past its deadline,
  // or rejected because the service was already stopped.
  void RecordShed();
  void RecordExpired();
  void RecordRejected();
  // Hedging outcomes.
  void RecordHedgeLaunched();
  void RecordHedgeWon();
  void RecordHedgedDuplicate();
  void RecordHedgeCancelled();
  void RecordHedgeSkippedFull();
  // Supervision events.
  void RecordWorkerStall();
  void RecordWorkerCrash();
  void RecordWorkerRestart();
  // A stream's cached state was discarded because it was produced by an
  // older model version (warm restart on the new model).
  void RecordStateReset();

  // Exact latency quantile over the retained samples; 0.0 until at least
  // min_samples have been recorded. Feeds the learned hedge delay.
  double LatencyQuantileMs(double q, size_t min_samples) const;

  // Counters accumulated so far. Queue depth / ingest lag / registry fields
  // are owned by other components; EstimationService::Counters() fills them.
  ServiceCounters Snapshot() const;

 private:
  mutable Mutex mu_;  // deeprest-lint: lock-level(leaf)
  uint64_t submitted_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t served_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t estimate_served_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t sanity_served_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t shed_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t expired_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t rejected_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t batches_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t batched_requests_ DEEPREST_GUARDED_BY(mu_) = 0;
  size_t max_batch_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t hedges_launched_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t hedges_won_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t hedged_duplicates_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t hedges_cancelled_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t hedges_skipped_full_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t worker_stalls_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t worker_crashes_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t worker_restarts_ DEEPREST_GUARDED_BY(mu_) = 0;
  uint64_t state_resets_ DEEPREST_GUARDED_BY(mu_) = 0;
  // Capped at kMaxLatencySamples.
  std::vector<double> latencies_ms_ DEEPREST_GUARDED_BY(mu_);
};

}  // namespace deeprest

#endif  // SRC_SERVE_STATS_H_
