#include "src/serve/supervisor.h"

#include <algorithm>
#include <utility>

namespace deeprest {

Supervisor::Supervisor(HealthRegistry& registry, const SupervisorConfig& config)
    : registry_(registry), config_(config) {}

void Supervisor::Watch(size_t id, std::function<bool()> restart, size_t restart_budget) {
  MutexLock lock(mu_);
  Watched w;
  w.id = id;
  w.restart = std::move(restart);
  w.budget = restart_budget > 0 ? restart_budget : config_.restart_budget;
  watched_.push_back(std::move(w));
}

void Supervisor::SetEscalationHandler(std::function<void(const std::string&)> handler) {
  MutexLock lock(mu_);
  escalate_ = std::move(handler);
}

size_t Supervisor::ScanOnce() {
  MutexLock scan_lock(scan_mu_);
  // Pass 1 (under mu_): read health, advance per-incident state machines,
  // and COLLECT the callbacks that are due. Pass 2 (outside mu_): run them.
  // Restarts take component locks (EstimationService::stop_mu_, learner
  // lifecycle_mu_), which must never nest under the supervision tables.
  std::vector<std::function<bool()>> restarts;
  std::vector<std::pair<std::function<void(const std::string&)>, std::string>> escalations;
  {
    MutexLock lock(mu_);
    const uint64_t now = registry_.NowMicros();
    for (auto& w : watched_) {
      const ComponentHealth health = registry_.Health(w.id);
      if (health.status == HealthStatus::kStopped) {
        // Deliberate shutdown mid-incident: stop chasing it. The incident
        // stays on record unrecovered.
        w.unhealthy = false;
        w.escalated = false;
        w.attempts = 0;
        continue;
      }
      const bool fresh = health.staleness_us <= health.stall_threshold_us;
      if (!w.unhealthy && !fresh) {
        // New incident. The MTTR clock starts at the last heartbeat — the
        // moment the component actually went quiet — not at detection.
        w.unhealthy = true;
        w.escalated = false;
        w.attempts = 0;
        w.backoff = std::chrono::duration_cast<std::chrono::microseconds>(config_.base_backoff);
        w.next_attempt_us = now;  // first attempt on this very scan
        w.incident = incidents_.size();
        RecoveryIncident incident;
        incident.component = health.name;
        incident.quiet_since_us = health.last_heartbeat_us;
        incident.detected_at_us = now;
        incidents_.push_back(std::move(incident));
        ++counters_.incidents_opened;
      }
      if (!w.unhealthy) {
        continue;
      }
      if (fresh) {
        // Heartbeats resumed: incident closed, budget restored.
        incidents_[w.incident].recovered_at_us = now;
        ++counters_.incidents_recovered;
        w.unhealthy = false;
        w.escalated = false;
        w.attempts = 0;
        continue;
      }
      if (w.escalated) {
        continue;  // budget burned; degraded mode owns this now
      }
      if (w.attempts >= w.budget) {
        w.escalated = true;
        incidents_[w.incident].escalated = true;
        ++counters_.escalations;
        degraded_.store(true, std::memory_order_release);
        if (escalate_) {
          escalations.emplace_back(escalate_, health.name);
        }
        continue;
      }
      if (now >= w.next_attempt_us && w.restart) {
        ++w.attempts;
        incidents_[w.incident].restart_attempts = w.attempts;
        ++counters_.restarts_attempted;
        registry_.MarkRestarting(w.id);
        restarts.push_back(w.restart);
        w.next_attempt_us =
            now + static_cast<uint64_t>(w.backoff.count());
        w.backoff = std::min(
            w.backoff * 2,
            std::chrono::duration_cast<std::chrono::microseconds>(config_.max_backoff));
      }
    }
  }

  const size_t attempted = restarts.size();
  for (auto& restart : restarts) {
    const bool ok = restart();
    MutexLock lock(mu_);
    if (ok) {
      ++counters_.restarts_succeeded;
    } else {
      ++counters_.restarts_failed;
    }
  }
  for (auto& [handler, name] : escalations) {
    handler(name);
  }
  return attempted;
}

SupervisorCounters Supervisor::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

std::vector<RecoveryIncident> Supervisor::Incidents() const {
  MutexLock lock(mu_);
  return incidents_;
}

Watchdog::Watchdog(Supervisor& supervisor, HealthRegistry& registry,
                   const WatchdogConfig& config)
    : supervisor_(supervisor), config_(config),
      self_(registry.Register(config.name, config.self_stall_threshold_us)) {}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Start() {
  MutexLock lock(lifecycle_mu_);
  if (thread_.joinable()) {
    return;
  }
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void Watchdog::Stop() {
  // Same shape as ContinualLearner::Stop: the flag flips under lifecycle_mu_
  // so a racing Start cannot clear it between the store and the join.
  MutexLock lock(lifecycle_mu_);
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) {
    thread_.join();
  }
  self_.MarkStopped();
}

void Watchdog::Loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    self_.Heartbeat();
    supervisor_.ScanOnce();
    scans_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(config_.poll_interval);
  }
}

}  // namespace deeprest
