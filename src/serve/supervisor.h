// Watchdog-driven recovery for the serving stack's supervised components.
//
// The HealthRegistry (health.h) says who is alive; this layer decides what
// to do about the ones that are not. A Supervisor holds, per watched
// component, a restart callback, a restart budget, and capped-exponential
// backoff state. Each ScanOnce() pass:
//
//   * opens an incident the first time a component's staleness crosses its
//     stall threshold (recording when it went quiet — the MTTR clock starts
//     at the FAULT, not at detection);
//   * drives restart attempts through the callback, spacing them by
//     base_backoff * 2^n capped at max_backoff, until the component
//     heartbeats again (incident closed, budget restored) or the per-
//     incident budget is exhausted;
//   * on budget exhaustion escalates exactly once: the escalation handler
//     runs (wired to degraded mode — EstimationService::SetDegraded's
//     reject-new shedding and AutoscaleLoop::SetFailStatic's scale-hold)
//     and the supervisor turns sticky-degraded until ClearDegraded().
//
// Restart semantics are honest about what C++ threads allow: a CRASHED
// worker (thread exited) can be respawned, so its restart callback returns
// true and recovery is fast; a STALLED worker cannot be killed, so its
// callback returns false and the incident closes only when the stall ends
// and heartbeats resume — the attempts meanwhile burn budget, which is what
// eventually escalates a permanent livelock instead of restarting forever.
//
// The Watchdog is the thread that turns scans into a loop: it heartbeats
// itself into the same registry it scans (a stuck watchdog is visible in
// the snapshot like any other corpse) and calls Supervisor::ScanOnce every
// poll interval. Tests drive ScanOnce directly with a ManualHealthClock for
// exact, sleep-free transitions.
//
// Lock hierarchy (DESIGN.md "Concurrency invariants & lock hierarchy"):
//   Supervisor::scan_mu_ -> Supervisor::mu_ -> HealthRegistry::mu_.
// Restart and escalation callbacks run with only scan_mu_ held, so they may
// freely take component locks (EstimationService::stop_mu_, learner
// lifecycle_mu_, ...); nothing in this module is acquired inside them.
#ifndef SRC_SERVE_SUPERVISOR_H_
#define SRC_SERVE_SUPERVISOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/thread_annotations.h"
#include "src/serve/health.h"

namespace deeprest {

struct SupervisorConfig {
  // Delay before the second restart attempt of an incident; doubles per
  // attempt up to max_backoff. The first attempt fires on the detection
  // scan itself.
  std::chrono::milliseconds base_backoff{10};
  std::chrono::milliseconds max_backoff{500};
  // Restart attempts per incident before escalating to degraded mode.
  // Recovery restores the full budget for the next incident.
  size_t restart_budget = 4;
};

// One detected-fault-to-recovery episode of one component.
struct RecoveryIncident {
  std::string component;
  uint64_t quiet_since_us = 0;   // last heartbeat before the fault
  uint64_t detected_at_us = 0;   // scan that crossed the stall threshold
  uint64_t recovered_at_us = 0;  // 0 while the incident is open
  size_t restart_attempts = 0;
  bool escalated = false;

  bool recovered() const { return recovered_at_us != 0; }
  // Detection latency: fault (heartbeats stop) -> watchdog notices.
  uint64_t detect_us() const { return detected_at_us - quiet_since_us; }
  // Full mean-time-to-recovery clock: fault -> service restored.
  uint64_t mttr_us() const {
    return recovered() ? recovered_at_us - quiet_since_us : 0;
  }
};

struct SupervisorCounters {
  uint64_t incidents_opened = 0;
  uint64_t incidents_recovered = 0;
  uint64_t restarts_attempted = 0;
  uint64_t restarts_succeeded = 0;
  uint64_t restarts_failed = 0;
  uint64_t escalations = 0;
};

class Supervisor {
 public:
  // The registry must outlive the supervisor.
  explicit Supervisor(HealthRegistry& registry, const SupervisorConfig& config = {});

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Puts a registered component (by registry id) under supervision.
  // `restart` attempts recovery and reports whether it did anything (a
  // stalled-but-alive thread cannot be restarted -> false). budget 0 uses
  // the config default.
  void Watch(size_t id, std::function<bool()> restart, size_t restart_budget = 0);

  // Runs once per exhausted budget; wired to degraded mode by the caller.
  void SetEscalationHandler(std::function<void(const std::string&)> handler);

  // One deterministic scan over every watched component (what the Watchdog
  // thread runs). Returns the number of restart attempts driven.
  size_t ScanOnce();

  // Sticky once any budget has been exhausted; cleared by the operator.
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  void ClearDegraded() { degraded_.store(false, std::memory_order_release); }

  SupervisorCounters counters() const;
  std::vector<RecoveryIncident> Incidents() const;

 private:
  struct Watched {
    size_t id = 0;
    std::function<bool()> restart;
    size_t budget = 0;
    // Per-incident state, reset when the incident closes.
    bool unhealthy = false;
    bool escalated = false;
    size_t attempts = 0;
    uint64_t next_attempt_us = 0;
    std::chrono::microseconds backoff{0};
    size_t incident = 0;  // index into incidents_ while unhealthy
  };

  HealthRegistry& registry_;
  const SupervisorConfig config_;

  // Serializes whole scans (state pass + callbacks + result pass) so two
  // ScanOnce callers cannot double-fire a restart between each other's
  // passes. Guards no field of its own; the scan state lives under mu_.
  Mutex scan_mu_;  // deeprest-lint: allow(mutex-needs-guarded-by)
  // Guards the supervision tables. Held only for state passes — restart and
  // escalation callbacks run outside it (they take component locks).
  // Acquired after scan_mu_, before HealthRegistry::mu_.
  mutable Mutex mu_ DEEPREST_ACQUIRED_AFTER(scan_mu_);
  std::vector<Watched> watched_ DEEPREST_GUARDED_BY(mu_);
  std::vector<RecoveryIncident> incidents_ DEEPREST_GUARDED_BY(mu_);
  std::function<void(const std::string&)> escalate_ DEEPREST_GUARDED_BY(mu_);
  SupervisorCounters counters_ DEEPREST_GUARDED_BY(mu_);

  std::atomic<bool> degraded_{false};
};

struct WatchdogConfig {
  std::chrono::milliseconds poll_interval{5};
  // The watchdog's own registry entry: a wedged watchdog shows up kSuspect
  // in snapshots even though nothing restarts it (top of the tree).
  std::string name = "watchdog";
  uint64_t self_stall_threshold_us = 1000000;
};

class Watchdog {
 public:
  // Registry and supervisor must outlive the watchdog.
  Watchdog(Supervisor& supervisor, HealthRegistry& registry,
           const WatchdogConfig& config = {});
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void Start();
  void Stop();

  uint64_t scans() const { return scans_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  Supervisor& supervisor_;
  WatchdogConfig config_;
  HealthHandle self_;

  // Start/Stop/destruction only (same pattern as ContinualLearner: the loop
  // thread never takes this mutex, so Stop can join while holding it).
  Mutex lifecycle_mu_;  // deeprest-lint: lock-level(leaf)
  std::thread thread_ DEEPREST_GUARDED_BY(lifecycle_mu_);

  std::atomic<uint64_t> scans_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace deeprest

#endif  // SRC_SERVE_SUPERVISOR_H_
