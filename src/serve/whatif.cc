#include "src/serve/whatif.h"

#include <utility>

namespace deeprest {

EstimateMap ServiceWhatIf::Estimate(const TrafficSeries& traffic, uint64_t seed) {
  auto future = service_->SubmitTraffic(traffic, seed, deadline_);
  EstimationService::EstimateResult result = future.get();
  if (result.status != RequestStatus::kOk) {
    return {};
  }
  return std::move(result.estimates);
}

}  // namespace deeprest
