#include "src/serve/whatif.h"

#include <utility>

namespace deeprest {

EstimateMap ServiceWhatIf::Estimate(const TrafficSeries& traffic, uint64_t seed) {
  if (!breaker_.Allow()) {
    return {};
  }
  auto future = service_->SubmitTraffic(traffic, seed, deadline_);
  EstimationService::EstimateResult result = future.get();
  if (result.status != RequestStatus::kOk || result.estimates.empty()) {
    breaker_.RecordFailure();
    return {};
  }
  breaker_.RecordSuccess();
  return std::move(result.estimates);
}

}  // namespace deeprest
