// What-if query plumbing for the autoscale controller.
//
// The controller's predictive policy needs one thing from the estimation
// stack: "given this hypothetical traffic, what will each resource consume?"
// (the paper's mode-1 resource-allocation query). WhatIfSource abstracts
// where the answer comes from, so the closed-loop evaluation harness can run
// directly against an in-process model while a live deployment routes the
// same query through the EstimationService front door — micro-batching,
// overload shedding, model hot-swaps and all.
#ifndef SRC_SERVE_WHATIF_H_
#define SRC_SERVE_WHATIF_H_

#include <chrono>

#include "src/core/estimator.h"
#include "src/serve/circuit_breaker.h"
#include "src/serve/estimation_service.h"
#include "src/workload/traffic.h"

namespace deeprest {

class WhatIfSource {
 public:
  virtual ~WhatIfSource() = default;

  // Estimates resource consumption for hypothetical traffic. Returns an
  // empty map when no estimate is available (no model published, request
  // shed or expired); callers must treat that as "no forecast", not zeros.
  // Implementations must be safe to call from multiple threads: the
  // estimator's const inference surface already is, and the service path is
  // a thread-safe submit.
  virtual EstimateMap Estimate(const TrafficSeries& traffic, uint64_t seed) = 0;
};

// Directly against an in-process model (bench / eval path: no service
// stack). The model must outlive the source and never be mutated while
// queries run — same contract as a published ModelRegistry snapshot.
class EstimatorWhatIf : public WhatIfSource {
 public:
  explicit EstimatorWhatIf(const DeepRestEstimator& model) : model_(&model) {}

  EstimateMap Estimate(const TrafficSeries& traffic, uint64_t seed) override {
    return model_->EstimateFromTraffic(traffic, seed);
  }

 private:
  const DeepRestEstimator* model_;
};

// Through the EstimationService front door: submit-and-wait on a mode-1
// traffic query. A shed, expired, or rejected request degrades to an empty
// map — the controller then holds scale rather than acting on nothing.
//
// The optional CircuitBreaker (default gate-only: never opens, identical
// behavior to the unguarded path) stops a persistently failing service from
// being hammered with doomed queries: after `trip_failures` consecutive
// empty answers the source returns empty immediately without submitting,
// until the attempt-counted half-open probe sees a success.
class ServiceWhatIf : public WhatIfSource {
 public:
  explicit ServiceWhatIf(EstimationService& service,
                         std::chrono::milliseconds deadline = {},
                         const CircuitBreakerConfig& breaker = {})
      : service_(&service), deadline_(deadline), breaker_(breaker) {}

  EstimateMap Estimate(const TrafficSeries& traffic, uint64_t seed) override;

  const CircuitBreaker& breaker() const { return breaker_; }

 private:
  EstimationService* service_;
  std::chrono::milliseconds deadline_;
  CircuitBreaker breaker_;
};

}  // namespace deeprest

#endif  // SRC_SERVE_WHATIF_H_
