#include "src/sim/app.h"

#include <functional>

namespace deeprest {

void Application::AddComponent(ComponentSpec spec) { components_.push_back(std::move(spec)); }

void Application::AddApi(ApiEndpoint api) { apis_.push_back(std::move(api)); }

const ComponentSpec* Application::FindComponent(const std::string& name) const {
  for (const auto& c : components_) {
    if (c.name == name) {
      return &c;
    }
  }
  return nullptr;
}

const ApiEndpoint* Application::FindApi(const std::string& name) const {
  for (const auto& a : apis_) {
    if (a.name == name) {
      return &a;
    }
  }
  return nullptr;
}

std::vector<std::string> Application::ApiNames() const {
  std::vector<std::string> names;
  names.reserve(apis_.size());
  for (const auto& a : apis_) {
    names.push_back(a.name);
  }
  return names;
}

std::vector<MetricKey> Application::MetricCatalog() const {
  std::vector<MetricKey> keys;
  for (const auto& c : components_) {
    keys.push_back({c.name, ResourceKind::kCpu});
    keys.push_back({c.name, ResourceKind::kMemory});
    if (c.stateful) {
      keys.push_back({c.name, ResourceKind::kWriteIops});
      keys.push_back({c.name, ResourceKind::kWriteThroughput});
      keys.push_back({c.name, ResourceKind::kDiskUsage});
    }
  }
  return keys;
}

std::string Application::Validate() const {
  std::function<std::string(const OpNode&, const std::string&)> check =
      [&](const OpNode& node, const std::string& api) -> std::string {
    if (FindComponent(node.component) == nullptr) {
      return "API " + api + " references unknown component " + node.component;
    }
    if (node.probability < 0.0 || node.probability > 1.0) {
      return "API " + api + " node " + node.component + ":" + node.operation +
             " has probability outside [0, 1]";
    }
    const ComponentSpec* spec = FindComponent(node.component);
    for (const auto& cost : node.costs) {
      if (IsStatefulOnly(cost.resource) && !spec->stateful) {
        return "API " + api + " charges " + ResourceKindName(cost.resource) +
               " on stateless component " + node.component;
      }
    }
    for (const auto& child : node.children) {
      std::string problem = check(child, api);
      if (!problem.empty()) {
        return problem;
      }
    }
    return "";
  };
  for (const auto& api : apis_) {
    std::string problem = check(api.root, api.name);
    if (!problem.empty()) {
      return problem;
    }
  }
  return "";
}

}  // namespace deeprest
