// Microservice application model.
//
// An Application is the DeathStarBench stand-in: a set of components plus,
// for every API endpoint, a generative template of how a request traverses
// components (probabilistic fan-out, payload-gated branches) and what each
// touched operation costs in CPU / memory / IO terms. The simulator samples
// these templates to produce distributed traces and resource metrics with the
// same causal structure the paper's testbed exhibits.
#ifndef SRC_SIM_APP_H_
#define SRC_SIM_APP_H_

#include <functional>
#include <string>
#include <vector>

#include "src/nn/rng.h"
#include "src/telemetry/metrics.h"

namespace deeprest {

// One resource contribution of executing an operation once. The cost is
//   base * (attr.empty() ? 1 : attr_scale * attrs[attr])
// in the unit of the resource (CPU: percentage points, memory: MiB,
// write IOps: operations, write throughput / disk: KiB).
struct CostTerm {
  ResourceKind resource = ResourceKind::kCpu;
  double base = 0.0;
  std::string attr;
  double attr_scale = 1.0;
  // Cacheable costs shrink when the component's cache is warm (reads served
  // from memory). Models the caching behaviour the paper calls out as a
  // learning challenge (section 7 / Fig. 12 memory row).
  bool cacheable = false;
};

// A node of an API's invocation-template tree.
struct OpNode {
  std::string component;
  std::string operation;
  // Executes with this probability (conditioned on the parent executing).
  double probability = 1.0;
  // If non-empty, executes only when the request attribute is > 0.5.
  std::string gate_attr;
  std::vector<CostTerm> costs;
  std::vector<OpNode> children;
};

// Per-request attribute sampler, e.g. media size or follower fan-out.
using AttributeSampler = std::function<double(Rng&)>;

struct ApiEndpoint {
  std::string name;
  OpNode root;
  std::vector<std::pair<std::string, AttributeSampler>> attributes;
};

struct ComponentSpec {
  std::string name;
  bool stateful = false;
  // Idle consumption floors.
  double cpu_baseline = 2.0;     // percent
  double memory_baseline = 64.0;  // MiB
  // CPU queueing model: above `queue_knee` percentage points of request
  // load, an extra queue_gain * (load - knee)^2 term models contention, so
  // 2x traffic can cost more than 2x CPU (paper section 5.3 takeaway).
  double queue_knee = 55.0;
  double queue_gain = 0.004;
  // Stateful-component extras.
  double cache_capacity_mb = 0.0;  // cap on the cache working set
  double initial_disk_mb = 0.0;    // dataset size at simulation start
  // Baseline write activity (compaction, journaling) so IO metrics never sit
  // at exactly zero overnight.
  double write_noise_ops = 0.0;
  double write_noise_kb = 0.0;
};

class Application {
 public:
  explicit Application(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void AddComponent(ComponentSpec spec);
  void AddApi(ApiEndpoint api);

  const std::vector<ComponentSpec>& components() const { return components_; }
  const std::vector<ApiEndpoint>& apis() const { return apis_; }

  const ComponentSpec* FindComponent(const std::string& name) const;
  const ApiEndpoint* FindApi(const std::string& name) const;
  std::vector<std::string> ApiNames() const;

  // CPU + memory for every component; write IOps / throughput / disk usage
  // for stateful components (matches the paper's 76- and 54-resource
  // inventories for the two benchmark applications).
  std::vector<MetricKey> MetricCatalog() const;

  // Verifies that every OpNode references a declared component and that
  // probabilities are in [0, 1]. Returns a description of the first problem,
  // or an empty string when the application is well-formed.
  std::string Validate() const;

 private:
  std::string name_;
  std::vector<ComponentSpec> components_;
  std::vector<ApiEndpoint> apis_;
};

// The two benchmark applications from DeathStarBench, reconstructed at the
// fidelity the paper's evaluation depends on.
//
// Social network (paper Fig. 1): 23 stateless + 6 stateful components,
// 11 API endpoints. `user_count` sizes the synthetic social graph driving
// /composePost fan-out costs.
Application BuildSocialNetworkApp(uint64_t seed = 1, size_t user_count = 2000);

// Hotel reservation (paper Fig. 7): 12 stateless + 6 stateful components,
// 4 API endpoints.
Application BuildHotelReservationApp(uint64_t seed = 1);

}  // namespace deeprest

#endif  // SRC_SIM_APP_H_
