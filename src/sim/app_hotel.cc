// Hotel reservation application (DeathStarBench, paper Fig. 7): 12 stateless
// and 6 stateful components serving 4 API endpoints for searching, getting
// recommendations, and reserving hotels.
#include "src/sim/app.h"

namespace deeprest {

namespace {

ComponentSpec HotelService(const std::string& name, double cpu_base = 2.0,
                           double mem_base = 64.0) {
  ComponentSpec spec;
  spec.name = name;
  spec.stateful = false;
  spec.cpu_baseline = cpu_base;
  spec.memory_baseline = mem_base;
  return spec;
}

ComponentSpec HotelCache(const std::string& name, double capacity_mb) {
  ComponentSpec spec;
  spec.name = name;
  spec.stateful = false;
  spec.cpu_baseline = 1.5;
  spec.memory_baseline = 40.0;
  spec.cache_capacity_mb = capacity_mb;
  return spec;
}

ComponentSpec HotelMongo(const std::string& name, double initial_disk_mb) {
  ComponentSpec spec;
  spec.name = name;
  spec.stateful = true;
  spec.cpu_baseline = 2.5;
  spec.memory_baseline = 128.0;
  spec.cache_capacity_mb = 128.0;
  spec.initial_disk_mb = initial_disk_mb;
  spec.write_noise_ops = 0.5;
  spec.write_noise_kb = 5.0;
  spec.queue_knee = 45.0;
  spec.queue_gain = 0.006;
  return spec;
}

CostTerm HCpu(double base, const std::string& attr = "", double scale = 1.0,
              bool cacheable = false) {
  CostTerm t;
  t.resource = ResourceKind::kCpu;
  t.base = base;
  t.attr = attr;
  t.attr_scale = scale;
  t.cacheable = cacheable;
  return t;
}

CostTerm HMem(double base) {
  CostTerm t;
  t.resource = ResourceKind::kMemory;
  t.base = base;
  return t;
}

CostTerm HIops(double base) {
  CostTerm t;
  t.resource = ResourceKind::kWriteIops;
  t.base = base;
  return t;
}

CostTerm HWriteKb(double base) {
  CostTerm t;
  t.resource = ResourceKind::kWriteThroughput;
  t.base = base;
  return t;
}

}  // namespace

Application BuildHotelReservationApp(uint64_t seed) {
  (void)seed;  // All attribute samplers draw from the simulator RNG.
  Application app("hotel_reservation");

  // --- 12 stateless components ---
  app.AddComponent(HotelService("FrontendService", 3.0, 80.0));
  app.AddComponent(HotelService("SearchService", 2.5, 96.0));
  app.AddComponent(HotelService("GeoService", 2.0, 72.0));
  app.AddComponent(HotelService("RateService", 2.0, 72.0));
  app.AddComponent(HotelService("ProfileService", 2.0, 88.0));
  app.AddComponent(HotelService("RecommendService", 2.0, 96.0));
  app.AddComponent(HotelService("ReservationService", 2.0, 72.0));
  app.AddComponent(HotelService("UserService", 1.5, 56.0));
  app.AddComponent(HotelCache("GeoMemcached", 96.0));
  app.AddComponent(HotelCache("RateMemcached", 128.0));
  app.AddComponent(HotelCache("ProfileMemcached", 160.0));
  app.AddComponent(HotelCache("ReservationMemcached", 96.0));

  // --- 6 stateful components ---
  app.AddComponent(HotelMongo("GeoMongoDB", 150.0));
  app.AddComponent(HotelMongo("RateMongoDB", 220.0));
  app.AddComponent(HotelMongo("ProfileMongoDB", 340.0));
  app.AddComponent(HotelMongo("RecommendMongoDB", 120.0));
  app.AddComponent(HotelMongo("ReservationMongoDB", 260.0));
  app.AddComponent(HotelMongo("UserMongoDB", 90.0));

  // --- /searchHotels ---
  {
    ApiEndpoint api;
    api.name = "/searchHotels";
    api.attributes = {
        {"results", [](Rng& r) { return 3.0 + r.NextBelow(8); }},
    };
    OpNode geo_db{"GeoMongoDB", "find", 0.3, "", {HCpu(0.026, "", 1.0, true)}, {}};
    OpNode geo_cache{"GeoMemcached", "get", 1.0, "", {HCpu(0.010, "", 1.0, true)}, {}};
    OpNode geo{"GeoService", "nearby", 1.0, "", {HCpu(0.038)}, {geo_cache, geo_db}};
    OpNode rate_db{"RateMongoDB", "find", 0.35, "",
                   {HCpu(0.024, "", 1.0, true), HCpu(0.0015, "results", 1.0)}, {}};
    OpNode rate_cache{"RateMemcached", "multiGet", 1.0, "",
                      {HCpu(0.009, "", 1.0, true)}, {}};
    OpNode rate{"RateService", "getRates", 1.0, "",
                {HCpu(0.028), HCpu(0.0018, "results", 1.0)}, {rate_cache, rate_db}};
    OpNode search{"SearchService", "nearby", 1.0, "",
                  {HCpu(0.042), HCpu(0.002, "results", 1.0), HMem(0.015)}, {geo, rate}};
    OpNode profile_db{"ProfileMongoDB", "find", 0.3, "",
                      {HCpu(0.024, "", 1.0, true), HCpu(0.0015, "results", 1.0)}, {}};
    OpNode profile_cache{"ProfileMemcached", "multiGet", 1.0, "",
                         {HCpu(0.010, "", 1.0, true)}, {}};
    OpNode profile{"ProfileService", "getProfiles", 1.0, "",
                   {HCpu(0.026), HCpu(0.0016, "results", 1.0)},
                   {profile_cache, profile_db}};
    api.root = OpNode{"FrontendService", "searchHotels", 1.0, "",
                      {HCpu(0.055)}, {search, profile}};
    app.AddApi(api);
  }

  // --- /recommend ---
  {
    ApiEndpoint api;
    api.name = "/recommend";
    api.attributes = {
        {"results", [](Rng& r) { return 2.0 + r.NextBelow(6); }},
    };
    OpNode rec_db{"RecommendMongoDB", "find", 0.5, "",
                  {HCpu(0.028, "", 1.0, true)}, {}};
    OpNode rec{"RecommendService", "getRecommendations", 1.0, "",
               {HCpu(0.050), HCpu(0.002, "results", 1.0), HMem(0.02)}, {rec_db}};
    OpNode profile_db{"ProfileMongoDB", "find", 0.3, "",
                      {HCpu(0.022, "", 1.0, true)}, {}};
    OpNode profile_cache{"ProfileMemcached", "multiGet", 1.0, "",
                         {HCpu(0.009, "", 1.0, true)}, {}};
    OpNode profile{"ProfileService", "getProfiles", 1.0, "",
                   {HCpu(0.024), HCpu(0.0014, "results", 1.0)},
                   {profile_cache, profile_db}};
    api.root = OpNode{"FrontendService", "recommend", 1.0, "",
                      {HCpu(0.05)}, {rec, profile}};
    app.AddApi(api);
  }

  // --- /reserve ---
  {
    ApiEndpoint api;
    api.name = "/reserve";
    OpNode user_db{"UserMongoDB", "find", 0.4, "", {HCpu(0.020, "", 1.0, true)}, {}};
    OpNode user{"UserService", "checkUser", 1.0, "", {HCpu(0.024)}, {user_db}};
    OpNode res_db{"ReservationMongoDB", "insert", 1.0, "",
                  {HCpu(0.030), HIops(1.3), HWriteKb(1.0)}, {}};
    OpNode res_cache{"ReservationMemcached", "update", 1.0, "", {HCpu(0.012)}, {}};
    OpNode rate_db{"RateMongoDB", "find", 0.3, "", {HCpu(0.022, "", 1.0, true)}, {}};
    OpNode rate{"RateService", "verifyRate", 1.0, "", {HCpu(0.02)}, {rate_db}};
    OpNode reserve{"ReservationService", "makeReservation", 1.0, "",
                   {HCpu(0.045), HMem(0.015)}, {user, rate, res_db, res_cache}};
    api.root = OpNode{"FrontendService", "reserve", 1.0, "", {HCpu(0.05)}, {reserve}};
    app.AddApi(api);
  }

  // --- /login ---
  {
    ApiEndpoint api;
    api.name = "/login";
    OpNode user_db{"UserMongoDB", "find", 0.5, "", {HCpu(0.022, "", 1.0, true)}, {}};
    OpNode user{"UserService", "login", 1.0, "", {HCpu(0.032)}, {user_db}};
    api.root = OpNode{"FrontendService", "login", 1.0, "", {HCpu(0.04)}, {user}};
    app.AddApi(api);
  }

  return app;
}

}  // namespace deeprest
