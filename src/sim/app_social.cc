// Social network application (DeathStarBench, paper Fig. 1): 23 stateless and
// 6 stateful components collectively serving 11 API endpoints.
//
// Cost constants are synthetic but structured to preserve every causal
// relationship the paper's evaluation leans on:
//  * /composePost drives ComposePostService CPU and PostStorageMongoDB
//    write IOps / throughput / disk (Figs. 10, 22),
//  * /readTimeline touches PostStorageMongoDB CPU but never its write path,
//    and never touches ComposePostService (Fig. 11),
//  * /uploadMedia alone moves MediaMongoDB memory and disk (Fig. 22),
//  * caches absorb a warmth-dependent share of read costs (section 7),
//  * /composePost fan-out cost scales with the author's follower count
//    sampled from a heavy-tailed social graph (content-dependent cost).
#include <memory>

#include "src/sim/app.h"
#include "src/workload/social_graph.h"

namespace deeprest {

namespace {

ComponentSpec Service(const std::string& name, double cpu_base = 2.0,
                      double mem_base = 72.0) {
  ComponentSpec spec;
  spec.name = name;
  spec.stateful = false;
  spec.cpu_baseline = cpu_base;
  spec.memory_baseline = mem_base;
  return spec;
}

ComponentSpec Cache(const std::string& name, double capacity_mb) {
  ComponentSpec spec;
  spec.name = name;
  spec.stateful = false;
  spec.cpu_baseline = 1.5;
  spec.memory_baseline = 48.0;
  spec.cache_capacity_mb = capacity_mb;
  return spec;
}

ComponentSpec Mongo(const std::string& name, double initial_disk_mb,
                    double cache_capacity_mb = 192.0) {
  ComponentSpec spec;
  spec.name = name;
  spec.stateful = true;
  spec.cpu_baseline = 2.5;
  spec.memory_baseline = 160.0;
  spec.cache_capacity_mb = cache_capacity_mb;
  spec.initial_disk_mb = initial_disk_mb;
  spec.write_noise_ops = 0.6;
  spec.write_noise_kb = 6.0;
  spec.queue_knee = 45.0;
  spec.queue_gain = 0.006;
  return spec;
}

CostTerm Cpu(double base, const std::string& attr = "", double scale = 1.0,
             bool cacheable = false) {
  CostTerm t;
  t.resource = ResourceKind::kCpu;
  t.base = base;
  t.attr = attr;
  t.attr_scale = scale;
  t.cacheable = cacheable;
  return t;
}

CostTerm Mem(double base, const std::string& attr = "", double scale = 1.0) {
  CostTerm t;
  t.resource = ResourceKind::kMemory;
  t.base = base;
  t.attr = attr;
  t.attr_scale = scale;
  return t;
}

CostTerm Iops(double base) {
  CostTerm t;
  t.resource = ResourceKind::kWriteIops;
  t.base = base;
  return t;
}

CostTerm WriteKb(double base, const std::string& attr = "", double scale = 1.0) {
  CostTerm t;
  t.resource = ResourceKind::kWriteThroughput;
  t.base = base;
  t.attr = attr;
  t.attr_scale = scale;
  return t;
}

}  // namespace

Application BuildSocialNetworkApp(uint64_t seed, size_t user_count) {
  Application app("social_network");

  // --- 23 stateless components ---
  app.AddComponent(Service("FrontendNGINX", 3.0, 64.0));
  app.AddComponent(Service("MediaNGINX", 2.5, 64.0));
  app.AddComponent(Service("ComposePostService", 2.0, 96.0));
  app.AddComponent(Service("TextService"));
  app.AddComponent(Service("UrlShortenService"));
  app.AddComponent(Service("UserMentionService"));
  app.AddComponent(Service("UniqueIdService", 1.5, 40.0));
  app.AddComponent(Service("MediaService", 2.0, 128.0));
  app.AddComponent(Service("UserService"));
  app.AddComponent(Service("SocialGraphService"));
  app.AddComponent(Service("HomeTimelineService", 2.5, 96.0));
  app.AddComponent(Service("UserTimelineService", 2.0, 96.0));
  app.AddComponent(Service("PostStorageService", 2.5, 96.0));
  app.AddComponent(Service("SearchService", 2.0, 112.0));
  app.AddComponent(Service("WriteHomeTimelineService"));
  app.AddComponent(Service("AuthService", 1.5, 56.0));
  app.AddComponent(Cache("PostStorageMemcached", 256.0));
  app.AddComponent(Cache("UserMemcached", 96.0));
  app.AddComponent(Cache("MediaMemcached", 256.0));
  app.AddComponent(Cache("UrlShortenMemcached", 48.0));
  app.AddComponent(Cache("HomeTimelineRedis", 224.0));
  app.AddComponent(Cache("SocialGraphRedis", 128.0));
  app.AddComponent(Cache("UserTimelineRedis", 192.0));

  // --- 6 stateful components ---
  app.AddComponent(Mongo("PostStorageMongoDB", 900.0, 256.0));
  app.AddComponent(Mongo("UserTimelineMongoDB", 420.0));
  app.AddComponent(Mongo("SocialGraphMongoDB", 260.0));
  app.AddComponent(Mongo("UrlShortenMongoDB", 90.0, 64.0));
  app.AddComponent(Mongo("MediaMongoDB", 1400.0, 320.0));
  app.AddComponent(Mongo("UserMongoDB", 180.0, 96.0));

  // Shared synthetic social graph drives follower fan-out for /composePost.
  Rng graph_rng(seed);
  auto graph = std::make_shared<SocialGraph>(user_count, 2.2, 800, graph_rng);

  // --- /composePost ---
  {
    ApiEndpoint api;
    api.name = "/composePost";
    api.attributes = {
        {"text_kb", [](Rng& r) { return SamplePostLength(r) / 250.0; }},
        {"has_media", [](Rng& r) { return r.NextBernoulli(0.25) ? 1.0 : 0.0; }},
        {"has_urls", [](Rng& r) { return r.NextBernoulli(0.30) ? 1.0 : 0.0; }},
        {"has_mention", [](Rng& r) { return r.NextBernoulli(0.40) ? 1.0 : 0.0; }},
        {"followers",
         [graph](Rng& r) { return static_cast<double>(graph->SampleFollowerCount(r)); }},
    };

    OpNode unique_id{"UniqueIdService", "generate", 1.0, "", {Cpu(0.012)}, {}};
    OpNode mention_db{"UserMongoDB", "find", 1.0, "", {Cpu(0.016, "", 1.0, true)}, {}};
    OpNode mention{"UserMentionService", "parse", 1.0, "has_mention",
                   {Cpu(0.018)}, {mention_db}};
    OpNode shorten_db{"UrlShortenMongoDB",
                      "insert",
                      1.0,
                      "",
                      {Cpu(0.014), Iops(1.0), WriteKb(0.4)},
                      {}};
    OpNode shorten{"UrlShortenService", "shorten", 1.0, "has_urls",
                   {Cpu(0.02)}, {shorten_db}};
    OpNode text{"TextService", "processText", 1.0, "",
                {Cpu(0.012), Cpu(0.02, "text_kb", 1.0)}, {mention, shorten}};
    OpNode media_attach{"MediaService", "attachMedia", 1.0, "has_media", {Cpu(0.02)}, {}};
    OpNode post_db{"PostStorageMongoDB",
                   "insert",
                   1.0,
                   "",
                   {Cpu(0.030), Iops(1.2), WriteKb(0.9), WriteKb(1.2, "text_kb", 1.0)},
                   {}};
    OpNode post_store{"PostStorageService", "storePost", 1.0, "",
                      {Cpu(0.030)}, {post_db}};
    OpNode ut_db{"UserTimelineMongoDB",
                 "insert",
                 1.0,
                 "",
                 {Cpu(0.018), Iops(1.0), WriteKb(0.3)},
                 {}};
    OpNode ut_redis{"UserTimelineRedis", "update", 1.0, "", {Cpu(0.012)}, {}};
    OpNode user_timeline{"UserTimelineService", "writeTimeline", 1.0, "",
                         {Cpu(0.02)}, {ut_db, ut_redis}};
    OpNode sg_redis{"SocialGraphRedis", "readFollowers", 1.0, "",
                    {Cpu(0.012, "", 1.0, true)}, {}};
    OpNode social_graph{"SocialGraphService", "getFollowers", 1.0, "",
                        {Cpu(0.014)}, {sg_redis}};
    OpNode ht_redis{"HomeTimelineRedis", "update", 1.0, "",
                    {Cpu(0.004), Cpu(0.0018, "followers", 1.0)}, {}};
    OpNode ht_writer{"WriteHomeTimelineService",
                     "fanout",
                     1.0,
                     "",
                     {Cpu(0.008), Cpu(0.0012, "followers", 1.0)},
                     {ht_redis}};
    OpNode home_timeline{"HomeTimelineService", "writeHomeTimeline", 1.0, "",
                         {Cpu(0.010)}, {ht_writer}};
    OpNode compose{"ComposePostService",
                   "composePost",
                   1.0,
                   "",
                   {Cpu(0.075), Cpu(0.03, "text_kb", 1.0), Mem(0.010)},
                   {unique_id, text, media_attach, post_store, user_timeline, social_graph,
                    home_timeline}};
    api.root = OpNode{"FrontendNGINX", "composePost", 1.0, "", {Cpu(0.045)}, {compose}};
    app.AddApi(api);
  }

  // --- /readTimeline (home timeline; never touches ComposePostService or the
  // PostStorageMongoDB write path) ---
  {
    ApiEndpoint api;
    api.name = "/readTimeline";
    api.attributes = {
        {"posts", [](Rng& r) { return 5.0 + r.NextBelow(16); }},
    };
    OpNode ht_redis{"HomeTimelineRedis", "range", 1.0, "",
                    {Cpu(0.012, "", 1.0, true), Cpu(0.0008, "posts", 1.0)}, {}};
    OpNode ps_cache{"PostStorageMemcached", "multiGet", 1.0, "",
                    {Cpu(0.010, "", 1.0, true), Cpu(0.0006, "posts", 1.0)}, {}};
    OpNode ps_db{"PostStorageMongoDB",
                 "find",
                 0.35,
                 "",
                 {Cpu(0.028, "", 1.0, true), Cpu(0.0022, "posts", 1.0)},
                 {}};
    OpNode ps{"PostStorageService", "getPosts", 1.0, "",
              {Cpu(0.022), Cpu(0.0012, "posts", 1.0)}, {ps_cache, ps_db}};
    OpNode ht{"HomeTimelineService", "readTimeline", 1.0, "",
              {Cpu(0.028), Cpu(0.0015, "posts", 1.0)}, {ht_redis, ps}};
    api.root = OpNode{"FrontendNGINX", "readTimeline", 1.0, "", {Cpu(0.045)}, {ht}};
    app.AddApi(api);
  }

  // --- /readUserTimeline ---
  {
    ApiEndpoint api;
    api.name = "/readUserTimeline";
    api.attributes = {
        {"posts", [](Rng& r) { return 4.0 + r.NextBelow(12); }},
    };
    OpNode ut_redis{"UserTimelineRedis", "range", 1.0, "",
                    {Cpu(0.010, "", 1.0, true)}, {}};
    OpNode ut_db{"UserTimelineMongoDB", "find", 0.4, "",
                 {Cpu(0.024, "", 1.0, true)}, {}};
    OpNode ps_cache{"PostStorageMemcached", "multiGet", 1.0, "",
                    {Cpu(0.009, "", 1.0, true), Cpu(0.0006, "posts", 1.0)}, {}};
    OpNode ps_db{"PostStorageMongoDB", "find", 0.3, "",
                 {Cpu(0.026, "", 1.0, true), Cpu(0.0018, "posts", 1.0)}, {}};
    OpNode ps{"PostStorageService", "getPosts", 1.0, "",
              {Cpu(0.02), Cpu(0.001, "posts", 1.0)}, {ps_cache, ps_db}};
    OpNode ut{"UserTimelineService", "readTimeline", 1.0, "",
              {Cpu(0.026)}, {ut_redis, ut_db, ps}};
    api.root = OpNode{"FrontendNGINX", "readUserTimeline", 1.0, "", {Cpu(0.04)}, {ut}};
    app.AddApi(api);
  }

  // --- /uploadMedia (the only API moving MediaMongoDB memory + disk) ---
  {
    ApiEndpoint api;
    api.name = "/uploadMedia";
    api.attributes = {
        {"media_kb", [](Rng& r) { return SampleMediaSizeKb(r); }},
    };
    OpNode media_db{"MediaMongoDB",
                    "store",
                    1.0,
                    "",
                    {Cpu(0.028), Cpu(0.00006, "media_kb", 1.0), Iops(1.6),
                     WriteKb(2.0), WriteKb(1.0, "media_kb", 1.0), Mem(0.02)},
                    {}};
    OpNode media{"MediaService",
                 "processMedia",
                 1.0,
                 "",
                 {Cpu(0.035), Cpu(0.00025, "media_kb", 1.0), Mem(0.03)},
                 {media_db}};
    api.root = OpNode{"MediaNGINX", "uploadMedia", 1.0, "",
                      {Cpu(0.05), Cpu(0.0001, "media_kb", 1.0)}, {media}};
    app.AddApi(api);
  }

  // --- /getMedia ---
  {
    ApiEndpoint api;
    api.name = "/getMedia";
    api.attributes = {
        {"media_kb", [](Rng& r) { return SampleMediaSizeKb(r); }},
    };
    OpNode cache{"MediaMemcached", "get", 1.0, "", {Cpu(0.012, "", 1.0, true)}, {}};
    OpNode db{"MediaMongoDB", "find", 0.3, "",
              {Cpu(0.030, "", 1.0, true), Cpu(0.00005, "media_kb", 1.0)}, {}};
    OpNode media{"MediaService", "serveMedia", 1.0, "",
                 {Cpu(0.02), Cpu(0.00008, "media_kb", 1.0)}, {cache, db}};
    api.root = OpNode{"MediaNGINX", "getMedia", 1.0, "",
                      {Cpu(0.035), Cpu(0.00006, "media_kb", 1.0)}, {media}};
    app.AddApi(api);
  }

  // --- /login ---
  {
    ApiEndpoint api;
    api.name = "/login";
    OpNode user_db{"UserMongoDB", "find", 0.4, "", {Cpu(0.022, "", 1.0, true)}, {}};
    OpNode user_cache{"UserMemcached", "get", 1.0, "", {Cpu(0.010, "", 1.0, true)}, {}};
    OpNode user{"UserService", "verifyCredentials", 1.0, "",
                {Cpu(0.030)}, {user_cache, user_db}};
    OpNode auth{"AuthService", "issueToken", 1.0, "", {Cpu(0.020)}, {user}};
    api.root = OpNode{"FrontendNGINX", "login", 1.0, "", {Cpu(0.035)}, {auth}};
    app.AddApi(api);
  }

  // --- /register ---
  {
    ApiEndpoint api;
    api.name = "/register";
    OpNode user_db{"UserMongoDB", "insert", 1.0, "",
                   {Cpu(0.024), Iops(1.0), WriteKb(0.6)}, {}};
    OpNode sg_db{"SocialGraphMongoDB", "insert", 1.0, "",
                 {Cpu(0.02), Iops(0.8), WriteKb(0.25)}, {}};
    OpNode sg{"SocialGraphService", "initUser", 1.0, "", {Cpu(0.016)}, {sg_db}};
    OpNode user{"UserService", "createUser", 1.0, "", {Cpu(0.034)}, {user_db, sg}};
    OpNode auth{"AuthService", "hashPassword", 1.0, "", {Cpu(0.045)}, {user}};
    api.root = OpNode{"FrontendNGINX", "register", 1.0, "", {Cpu(0.035)}, {auth}};
    app.AddApi(api);
  }

  // --- /followUser ---
  {
    ApiEndpoint api;
    api.name = "/followUser";
    OpNode sg_db{"SocialGraphMongoDB", "update", 1.0, "",
                 {Cpu(0.022), Iops(1.0), WriteKb(0.3)}, {}};
    OpNode sg_redis{"SocialGraphRedis", "update", 1.0, "", {Cpu(0.012)}, {}};
    OpNode sg{"SocialGraphService", "follow", 1.0, "", {Cpu(0.02)}, {sg_db, sg_redis}};
    api.root = OpNode{"FrontendNGINX", "followUser", 1.0, "", {Cpu(0.032)}, {sg}};
    app.AddApi(api);
  }

  // --- /unfollowUser ---
  {
    ApiEndpoint api;
    api.name = "/unfollowUser";
    OpNode sg_db{"SocialGraphMongoDB", "update", 1.0, "",
                 {Cpu(0.020), Iops(1.0), WriteKb(0.25)}, {}};
    OpNode sg_redis{"SocialGraphRedis", "update", 1.0, "", {Cpu(0.012)}, {}};
    OpNode sg{"SocialGraphService", "unfollow", 1.0, "", {Cpu(0.02)}, {sg_db, sg_redis}};
    api.root = OpNode{"FrontendNGINX", "unfollowUser", 1.0, "", {Cpu(0.032)}, {sg}};
    app.AddApi(api);
  }

  // --- /searchUser ---
  {
    ApiEndpoint api;
    api.name = "/searchUser";
    api.attributes = {
        {"candidates", [](Rng& r) { return 2.0 + r.NextBelow(10); }},
    };
    OpNode user_db{"UserMongoDB", "find", 0.5, "",
                   {Cpu(0.02, "", 1.0, true), Cpu(0.0015, "candidates", 1.0)}, {}};
    OpNode user_cache{"UserMemcached", "multiGet", 1.0, "",
                      {Cpu(0.008, "", 1.0, true)}, {}};
    OpNode search{"SearchService", "searchUser", 1.0, "",
                  {Cpu(0.045), Cpu(0.002, "candidates", 1.0), Mem(0.02)},
                  {user_cache, user_db}};
    api.root = OpNode{"FrontendNGINX", "searchUser", 1.0, "", {Cpu(0.035)}, {search}};
    app.AddApi(api);
  }

  // --- /readPost (single post, may expand shortened URLs) ---
  {
    ApiEndpoint api;
    api.name = "/readPost";
    OpNode url_db{"UrlShortenMongoDB", "find", 0.4, "",
                  {Cpu(0.016, "", 1.0, true)}, {}};
    OpNode url_cache{"UrlShortenMemcached", "get", 1.0, "",
                     {Cpu(0.008, "", 1.0, true)}, {}};
    OpNode url{"UrlShortenService", "expand", 0.3, "", {Cpu(0.014)}, {url_cache, url_db}};
    OpNode ps_cache{"PostStorageMemcached", "get", 1.0, "",
                    {Cpu(0.010, "", 1.0, true)}, {}};
    OpNode ps_db{"PostStorageMongoDB", "find", 0.3, "",
                 {Cpu(0.024, "", 1.0, true)}, {}};
    OpNode ps{"PostStorageService", "getPost", 1.0, "",
              {Cpu(0.02)}, {ps_cache, ps_db, url}};
    api.root = OpNode{"FrontendNGINX", "readPost", 1.0, "", {Cpu(0.035)}, {ps}};
    app.AddApi(api);
  }

  return app;
}

}  // namespace deeprest
