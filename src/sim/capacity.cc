#include "src/sim/capacity.h"

#include <algorithm>

namespace deeprest {

CapacityOutcome QueueingCapacityModel::Evaluate(double demand_cpu, size_t replicas,
                                                double capacity_cpu) const {
  CapacityOutcome outcome;
  outcome.demand_cpu = std::max(0.0, demand_cpu);
  outcome.replicas = std::max<size_t>(1, replicas);
  outcome.capacity_cpu = std::max(1e-9, capacity_cpu);

  const double provisioned =
      static_cast<double>(outcome.replicas) * outcome.capacity_cpu;
  outcome.utilization = outcome.demand_cpu / provisioned;

  // M/M/1-flavored inflation per replica; capped so an overloaded window has
  // a large-but-finite factor instead of a singularity.
  const double rho = std::min(outcome.utilization, 1.0 - 1e-6);
  outcome.latency_factor = std::min(config_.max_latency_factor, 1.0 / (1.0 - rho));

  if (outcome.utilization <= config_.slo_knee) {
    outcome.violation_frac = 0.0;
  } else if (outcome.utilization >= config_.saturation) {
    outcome.violation_frac = 1.0;
  } else {
    outcome.violation_frac = (outcome.utilization - config_.slo_knee) /
                             (config_.saturation - config_.slo_knee);
  }
  return outcome;
}

}  // namespace deeprest
