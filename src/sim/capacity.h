// Pluggable capacity / SLO model for closed-loop autoscaling (ROADMAP item 1).
//
// The base simulator emits per-component *demand*: the CPU percentage points
// (of one core-equivalent) the offered load wants in a window. A
// CapacityModel maps that demand plus a deployment decision — replica count
// and per-replica capacity — to the outcomes an operator actually cares
// about: per-replica utilization, queueing-driven latency inflation, and the
// fraction of requests that blow the SLO. Installing one on a Simulator
// (Simulator::SetCapacityModel) makes scaling actions observable: the
// recorded CPU metric switches from raw demand to the per-replica
// utilization a cAdvisor scrape of the scaled deployment would show
// (saturating at 100%), and every (component, window) gets a CapacityOutcome
// the autoscale evaluation harness reads as ground truth.
#ifndef SRC_SIM_CAPACITY_H_
#define SRC_SIM_CAPACITY_H_

#include <cstddef>

namespace deeprest {

// What one component experienced in one window under a given deployment.
struct CapacityOutcome {
  double demand_cpu = 0.0;      // offered load, percent-of-one-core points
  size_t replicas = 1;
  double capacity_cpu = 100.0;  // per-replica capacity, percent points
  double utilization = 0.0;     // demand / (replicas * capacity), NOT capped
  double latency_factor = 1.0;  // service-time inflation from queueing
  double violation_frac = 0.0;  // fraction of this window's requests over SLO
};

class CapacityModel {
 public:
  virtual ~CapacityModel() = default;

  // Pure function of its arguments: the closed-loop harness relies on
  // identical inputs producing identical outcomes across runs and threads.
  virtual CapacityOutcome Evaluate(double demand_cpu, size_t replicas,
                                   double capacity_cpu) const = 0;
};

// Default model: replicas split the demand evenly (ideal load balancing), and
// queueing kicks in as per-replica utilization rho approaches 1. Below
// slo_knee requests meet the SLO; between slo_knee and saturation the
// violating fraction ramps linearly to 1 (an M/M/c wait-probability curve
// flattened to something a test can reason about exactly); past saturation
// the deployment is overloaded and every request violates.
struct QueueingCapacityConfig {
  double slo_knee = 0.85;           // rho where violations begin
  double saturation = 1.15;         // rho where every request violates
  double max_latency_factor = 25.0; // cap on the 1/(1-rho) blow-up
};

class QueueingCapacityModel : public CapacityModel {
 public:
  explicit QueueingCapacityModel(const QueueingCapacityConfig& config = {})
      : config_(config) {}

  CapacityOutcome Evaluate(double demand_cpu, size_t replicas,
                           double capacity_cpu) const override;

  const QueueingCapacityConfig& config() const { return config_; }

 private:
  QueueingCapacityConfig config_;
};

}  // namespace deeprest

#endif  // SRC_SIM_CAPACITY_H_
