#include "src/sim/chaos_schedule.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace deeprest {

const char* ChaosFaultKindName(ChaosFaultKind kind) {
  switch (kind) {
    case ChaosFaultKind::kWorkerStall:
      return "worker_stall";
    case ChaosFaultKind::kWorkerCrash:
      return "worker_crash";
    case ChaosFaultKind::kClockSkew:
      return "clock_skew";
    case ChaosFaultKind::kAllocFail:
      return "alloc_fail";
    case ChaosFaultKind::kTraceDrop:
      return "trace_drop";
    case ChaosFaultKind::kTraceCorrupt:
      return "trace_corrupt";
    case ChaosFaultKind::kTraceTruncate:
      return "trace_truncate";
    case ChaosFaultKind::kTraceDelay:
      return "trace_delay";
    case ChaosFaultKind::kTraceDuplicate:
      return "trace_duplicate";
    case ChaosFaultKind::kMetricGap:
      return "metric_gap";
    case ChaosFaultKind::kOutage:
      return "outage";
  }
  return "unknown";
}

bool ParseChaosFaultKind(const std::string& token, ChaosFaultKind* out) {
  for (size_t i = 0; i < kChaosFaultKindCount; ++i) {
    const ChaosFaultKind kind = static_cast<ChaosFaultKind>(i);
    if (token == ChaosFaultKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

double ChaosEvent::EffectiveMagnitude() const {
  if (magnitude > 0.0) {
    return magnitude;
  }
  switch (kind) {
    case ChaosFaultKind::kWorkerStall:
      return 50.0;  // ms per stalled sweep
    case ChaosFaultKind::kClockSkew:
      return 100000.0;  // +100 ms
    case ChaosFaultKind::kTraceDrop:
    case ChaosFaultKind::kTraceCorrupt:
    case ChaosFaultKind::kTraceTruncate:
    case ChaosFaultKind::kTraceDelay:
    case ChaosFaultKind::kTraceDuplicate:
    case ChaosFaultKind::kMetricGap:
      return 1.0;  // certain fault
    case ChaosFaultKind::kWorkerCrash:
    case ChaosFaultKind::kAllocFail:
    case ChaosFaultKind::kOutage:
      return 0.0;  // magnitude-free kinds
  }
  return 0.0;
}

size_t ChaosSchedule::end_window() const {
  size_t end = 0;
  for (const ChaosEvent& event : events) {
    end = std::max(end, event.end_window);
  }
  return end;
}

std::vector<const ChaosEvent*> ChaosSchedule::ActiveAt(size_t window) const {
  std::vector<const ChaosEvent*> active;
  for (const ChaosEvent& event : events) {
    if (event.ActiveAt(window)) {
      active.push_back(&event);
    }
  }
  return active;
}

namespace {

bool Fail(std::string* error, const std::string& reason) {
  if (error != nullptr) {
    *error = reason;
  }
  return false;
}

// Parses an unsigned decimal; rejects empty / trailing garbage.
bool ParseSize(const std::string& text, size_t* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) {
    return false;
  }
  *out = static_cast<size_t>(value);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    return false;
  }
  *out = value;
  return true;
}

std::string Trimmed(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) {
    return "";
  }
  const size_t last = text.find_last_not_of(" \t");
  return text.substr(begin, last - begin + 1);
}

bool ParseEvent(const std::string& spec, ChaosEvent* out, std::string* error) {
  const size_t at = spec.find('@');
  if (at == std::string::npos) {
    return Fail(error, "event '" + spec + "' missing '@start'");
  }
  ChaosEvent event;
  if (!ParseChaosFaultKind(spec.substr(0, at), &event.kind)) {
    return Fail(error, "unknown fault kind '" + spec.substr(0, at) + "'");
  }

  std::string rest = spec.substr(at + 1);
  // Peel the optional suffixes back-to-front so '-' inside the window range
  // never collides with them.
  const size_t star = rest.find('*');
  if (star != std::string::npos) {
    if (!ParseDouble(rest.substr(star + 1), &event.magnitude) || event.magnitude < 0.0) {
      return Fail(error, "bad magnitude in '" + spec + "'");
    }
    rest = rest.substr(0, star);
  }
  const size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    size_t target = 0;
    if (!ParseSize(rest.substr(colon + 1), &target)) {
      return Fail(error, "bad target in '" + spec + "'");
    }
    event.target = static_cast<int>(target);
    rest = rest.substr(0, colon);
  }
  const size_t dash = rest.find('-');
  if (dash != std::string::npos) {
    if (!ParseSize(rest.substr(0, dash), &event.start_window) ||
        !ParseSize(rest.substr(dash + 1), &event.end_window)) {
      return Fail(error, "bad window range in '" + spec + "'");
    }
    if (event.end_window <= event.start_window) {
      return Fail(error, "empty window range in '" + spec + "'");
    }
  } else {
    if (!ParseSize(rest, &event.start_window)) {
      return Fail(error, "bad start window in '" + spec + "'");
    }
    event.end_window = event.start_window + 1;
  }
  *out = event;
  return true;
}

}  // namespace

bool ParseChaosSchedule(const std::string& text, ChaosSchedule* out, std::string* error) {
  ChaosSchedule schedule;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t sep = text.find(';', pos);
    if (sep == std::string::npos) {
      sep = text.size();
    }
    const std::string spec = Trimmed(text.substr(pos, sep - pos));
    pos = sep + 1;
    if (spec.empty()) {
      continue;  // tolerate empty segments ("a;;b", trailing ';')
    }
    ChaosEvent event;
    if (!ParseEvent(spec, &event, error)) {
      return false;
    }
    schedule.events.push_back(event);
  }
  *out = std::move(schedule);
  return true;
}

std::string FormatChaosSchedule(const ChaosSchedule& schedule) {
  std::ostringstream out;
  for (size_t i = 0; i < schedule.events.size(); ++i) {
    const ChaosEvent& event = schedule.events[i];
    if (i > 0) {
      out << ';';
    }
    out << ChaosFaultKindName(event.kind) << '@' << event.start_window;
    if (event.end_window != event.start_window + 1) {
      out << '-' << event.end_window;
    }
    if (event.target >= 0) {
      out << ':' << event.target;
    }
    if (event.magnitude > 0.0) {
      out << '*' << event.magnitude;
    }
  }
  return out.str();
}

}  // namespace deeprest
