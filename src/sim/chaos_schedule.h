// Scripted chaos schedules: timelines of fault windows for resilience runs.
//
// A schedule is a list of events, each activating one fault kind over a
// half-open window range [start, end), optionally pinned to one target
// (a worker index) and carrying a kind-specific magnitude. The bench and the
// CLI parse schedules from a compact text form so a chaos run is one flag:
//
//   kind@start[-end][:target][*magnitude] ; kind@start ...
//
//   worker_stall@10-14:0*50      stall worker 0 for 50 ms per sweep over
//                                windows [10, 14)
//   worker_crash@20:1            kill worker 1 once at window 20
//   metric_gap@5-30*0.2          drop 20% of metric scrapes over [5, 30)
//   clock_skew@8-12*250000       skew the health clock +250 ms
//   outage@40-44                 total trace-collector outage
//
// Omitted end means a one-window event ([start, start+1)); omitted target
// means "all targets"; omitted magnitude picks the kind's default (full
// probability for stream faults, 50 ms stalls, 100 ms skew).
//
// FaultInjector consumes the stream-fault kinds (drop/corrupt/truncate/
// delay/duplicate/metric_gap/outage) as window-scoped probability overrides,
// and exposes the process-fault kinds (worker_stall/worker_crash/clock_skew/
// alloc_fail) as queries the serving harness polls each sweep.
#ifndef SRC_SIM_CHAOS_SCHEDULE_H_
#define SRC_SIM_CHAOS_SCHEDULE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace deeprest {

enum class ChaosFaultKind {
  kWorkerStall = 0,  // a worker loop sleeps `magnitude` ms every sweep
  kWorkerCrash,      // a worker thread exits (fires once per event)
  kClockSkew,        // health clock jumps forward `magnitude` microseconds
  kAllocFail,        // model clone / fine-tune allocation fails
  kTraceDrop,        // stream faults: probability override = magnitude
  kTraceCorrupt,
  kTraceTruncate,
  kTraceDelay,
  kTraceDuplicate,
  kMetricGap,
  kOutage,  // total trace loss over the event's windows
};

inline constexpr size_t kChaosFaultKindCount = 11;

// Stable token used by the schedule text format and bench JSON keys.
const char* ChaosFaultKindName(ChaosFaultKind kind);
// Inverse of ChaosFaultKindName; returns false on an unknown token.
bool ParseChaosFaultKind(const std::string& token, ChaosFaultKind* out);

struct ChaosEvent {
  ChaosFaultKind kind = ChaosFaultKind::kWorkerStall;
  size_t start_window = 0;
  size_t end_window = 0;  // half-open; parse fills start+1 when omitted
  // Worker index for stall/crash; -1 = every target.
  int target = -1;
  // Kind-specific: probability for stream faults, ms for stalls, us for
  // clock skew. 0 = kind default.
  double magnitude = 0.0;

  bool ActiveAt(size_t window) const {
    return window >= start_window && window < end_window;
  }
  // The magnitude with the kind's default applied.
  double EffectiveMagnitude() const;
  bool Targets(int candidate) const { return target < 0 || target == candidate; }
};

struct ChaosSchedule {
  std::vector<ChaosEvent> events;

  bool empty() const { return events.empty(); }
  // One past the last window any event covers (0 for an empty schedule).
  size_t end_window() const;
  // Events active at `window`, in schedule order.
  std::vector<const ChaosEvent*> ActiveAt(size_t window) const;
};

// Parses the text form described above. On failure returns false and leaves
// a human-readable reason in *error (when non-null); *out is untouched.
bool ParseChaosSchedule(const std::string& text, ChaosSchedule* out,
                        std::string* error = nullptr);

// Canonical text form (round-trips through ParseChaosSchedule).
std::string FormatChaosSchedule(const ChaosSchedule& schedule);

}  // namespace deeprest

#endif  // SRC_SIM_CHAOS_SCHEDULE_H_
