#include "src/sim/fault_injector.h"

#include <algorithm>
#include <utility>

namespace deeprest {

void FaultCounters::Merge(const FaultCounters& other) {
  traces_in += other.traces_in;
  delivered += other.delivered;
  dropped += other.dropped;
  corrupted += other.corrupted;
  truncated += other.truncated;
  delayed += other.delayed;
  duplicated += other.duplicated;
  metrics_in += other.metrics_in;
  metric_gaps += other.metric_gaps;
  worker_stalls += other.worker_stalls;
  worker_crashes += other.worker_crashes;
  clock_skews += other.clock_skews;
  alloc_fails += other.alloc_fails;
}

void FaultCounters::Reset() { *this = FaultCounters(); }

FaultInjector::FaultInjector(const FaultInjectorConfig& config)
    : FaultInjector(config, ChaosSchedule()) {}

FaultInjector::FaultInjector(const FaultInjectorConfig& config, ChaosSchedule schedule)
    : config_(config), schedule_(std::move(schedule)), rng_(config.seed),
      crash_fired_(schedule_.events.size(), false),
      skew_counted_(schedule_.events.size(), false) {}

Trace FaultInjector::Truncate(const Trace& trace, Rng& rng) const {
  // Keep a non-empty prefix of the span list. Parents always precede their
  // children, so a prefix is still a well-formed tree — the trace passes
  // admission control but describes a shorter invocation path, exactly what a
  // span batch lost mid-flight looks like.
  const size_t keep = 1 + static_cast<size_t>(rng.NextBelow(trace.size() - 1));
  Trace out(trace.trace_id(), trace.api_name());
  for (size_t i = 0; i < keep; ++i) {
    const Span& span = trace.spans()[i];
    const SpanIndex idx = out.AddSpan(span.component, span.operation, span.parent);
    out.SetSpanTiming(idx, span.start_us, span.end_us);
  }
  return out;
}

Trace FaultInjector::Corrupt(const Trace& trace, Rng& rng) {
  Trace out(trace.trace_id(), trace.api_name());
  for (const Span& span : trace.spans()) {
    const SpanIndex idx = out.AddSpan(span.component, span.operation, span.parent);
    out.SetSpanTiming(idx, span.start_us, span.end_us);
  }
  // Two timestamp corruptions a broken clock or a torn encode produces: a
  // span that ends before it starts, or a child that starts before its
  // parent. Both are caught by ValidateTrace at the ingestion door.
  const SpanIndex victim = static_cast<SpanIndex>(rng.NextBelow(out.size()));
  const Span& v = out.spans()[victim];
  if (victim > 0 && rng.NextBernoulli(0.5)) {
    const Span& parent = out.spans()[v.parent];
    const uint64_t before = parent.start_us > 0 ? parent.start_us - 1 : 0;
    out.SetSpanTiming(victim, before, parent.start_us + 1);
    if (parent.start_us == 0) {
      // Parent already starts at zero; fall back to a negative duration.
      out.SetSpanTiming(victim, v.end_us + 1, v.start_us);
    }
  } else {
    out.SetSpanTiming(victim, v.end_us + 1, v.start_us);
  }
  return out;
}

double FaultInjector::EffectiveProb(double base, ChaosFaultKind kind,
                                    size_t window) const {
  double prob = base;
  for (const ChaosEvent& event : schedule_.events) {
    if (event.kind == kind && event.ActiveAt(window)) {
      prob = std::max(prob, std::min(1.0, event.EffectiveMagnitude()));
    }
  }
  return prob;
}

bool FaultInjector::InOutage(size_t window) const {
  if (window >= config_.outage_start && window < config_.outage_end) {
    return true;
  }
  for (const ChaosEvent& event : schedule_.events) {
    if (event.kind == ChaosFaultKind::kOutage && event.ActiveAt(window)) {
      return true;
    }
  }
  return false;
}

std::vector<FaultInjector::TimedTrace> FaultInjector::ProcessTrace(size_t window,
                                                                   const Trace& trace) {
  MutexLock lock(mu_);
  ++counters_.traces_in;
  std::vector<TimedTrace> out;
  if (InOutage(window)) {
    ++counters_.dropped;
    return out;
  }
  if (rng_.NextBernoulli(EffectiveProb(config_.drop_prob, ChaosFaultKind::kTraceDrop,
                                       window))) {
    ++counters_.dropped;
    return out;
  }

  TimedTrace event;
  event.window = window;
  if (trace.size() > 0 &&
      rng_.NextBernoulli(
          EffectiveProb(config_.corrupt_prob, ChaosFaultKind::kTraceCorrupt, window))) {
    event.trace = Corrupt(trace, rng_);
    ++counters_.corrupted;
  } else if (trace.size() > 1 &&
             rng_.NextBernoulli(EffectiveProb(config_.truncate_prob,
                                              ChaosFaultKind::kTraceTruncate, window))) {
    event.trace = Truncate(trace, rng_);
    ++counters_.truncated;
  } else {
    event.trace = trace;
  }
  if (rng_.NextBernoulli(
          EffectiveProb(config_.delay_prob, ChaosFaultKind::kTraceDelay, window))) {
    event.window = window + 1 + static_cast<size_t>(rng_.NextBelow(2));
    ++counters_.delayed;
  }
  if (rng_.NextBernoulli(EffectiveProb(config_.duplicate_prob,
                                       ChaosFaultKind::kTraceDuplicate, window))) {
    out.push_back(event);
    ++counters_.duplicated;
  }
  out.push_back(std::move(event));
  counters_.delivered += out.size();
  return out;
}

bool FaultInjector::ProcessMetric(const MetricKey& key, size_t window, double value) {
  (void)key;
  (void)value;
  MutexLock lock(mu_);
  ++counters_.metrics_in;
  if (rng_.NextBernoulli(
          EffectiveProb(config_.metric_gap_prob, ChaosFaultKind::kMetricGap, window))) {
    ++counters_.metric_gaps;
    return false;
  }
  return true;
}

bool FaultInjector::TakeCrash(size_t window, int target) {
  MutexLock lock(mu_);
  for (size_t i = 0; i < schedule_.events.size(); ++i) {
    const ChaosEvent& event = schedule_.events[i];
    if (event.kind == ChaosFaultKind::kWorkerCrash && event.ActiveAt(window) &&
        event.Targets(target) && !crash_fired_[i]) {
      crash_fired_[i] = true;
      ++counters_.worker_crashes;
      return true;
    }
  }
  return false;
}

bool FaultInjector::TakeStall(size_t window, int target, double* stall_ms) {
  MutexLock lock(mu_);
  for (const ChaosEvent& event : schedule_.events) {
    if (event.kind == ChaosFaultKind::kWorkerStall && event.ActiveAt(window) &&
        event.Targets(target)) {
      if (stall_ms != nullptr) {
        *stall_ms = event.EffectiveMagnitude();
      }
      ++counters_.worker_stalls;
      return true;
    }
  }
  return false;
}

uint64_t FaultInjector::ClockSkewUs(size_t window) {
  MutexLock lock(mu_);
  uint64_t skew = 0;
  for (size_t i = 0; i < schedule_.events.size(); ++i) {
    const ChaosEvent& event = schedule_.events[i];
    if (event.kind == ChaosFaultKind::kClockSkew && event.ActiveAt(window)) {
      skew = std::max(skew, static_cast<uint64_t>(event.EffectiveMagnitude()));
      if (!skew_counted_[i]) {
        skew_counted_[i] = true;
        ++counters_.clock_skews;
      }
    }
  }
  return skew;
}

bool FaultInjector::TakeAllocFail(size_t window) {
  MutexLock lock(mu_);
  for (const ChaosEvent& event : schedule_.events) {
    if (event.kind == ChaosFaultKind::kAllocFail && event.ActiveAt(window)) {
      ++counters_.alloc_fails;
      return true;
    }
  }
  return false;
}

FaultCounters FaultInjector::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

}  // namespace deeprest
