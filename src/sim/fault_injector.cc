#include "src/sim/fault_injector.h"

#include <algorithm>

namespace deeprest {

FaultInjector::FaultInjector(const FaultInjectorConfig& config)
    : config_(config), rng_(config.seed) {}

Trace FaultInjector::Truncate(const Trace& trace, Rng& rng) const {
  // Keep a non-empty prefix of the span list. Parents always precede their
  // children, so a prefix is still a well-formed tree — the trace passes
  // admission control but describes a shorter invocation path, exactly what a
  // span batch lost mid-flight looks like.
  const size_t keep = 1 + static_cast<size_t>(rng.NextBelow(trace.size() - 1));
  Trace out(trace.trace_id(), trace.api_name());
  for (size_t i = 0; i < keep; ++i) {
    const Span& span = trace.spans()[i];
    const SpanIndex idx = out.AddSpan(span.component, span.operation, span.parent);
    out.SetSpanTiming(idx, span.start_us, span.end_us);
  }
  return out;
}

Trace FaultInjector::Corrupt(const Trace& trace, Rng& rng) {
  Trace out(trace.trace_id(), trace.api_name());
  for (const Span& span : trace.spans()) {
    const SpanIndex idx = out.AddSpan(span.component, span.operation, span.parent);
    out.SetSpanTiming(idx, span.start_us, span.end_us);
  }
  // Two timestamp corruptions a broken clock or a torn encode produces: a
  // span that ends before it starts, or a child that starts before its
  // parent. Both are caught by ValidateTrace at the ingestion door.
  const SpanIndex victim = static_cast<SpanIndex>(rng.NextBelow(out.size()));
  const Span& v = out.spans()[victim];
  if (victim > 0 && rng.NextBernoulli(0.5)) {
    const Span& parent = out.spans()[v.parent];
    const uint64_t before = parent.start_us > 0 ? parent.start_us - 1 : 0;
    out.SetSpanTiming(victim, before, parent.start_us + 1);
    if (parent.start_us == 0) {
      // Parent already starts at zero; fall back to a negative duration.
      out.SetSpanTiming(victim, v.end_us + 1, v.start_us);
    }
  } else {
    out.SetSpanTiming(victim, v.end_us + 1, v.start_us);
  }
  return out;
}

std::vector<FaultInjector::TimedTrace> FaultInjector::ProcessTrace(size_t window,
                                                                   const Trace& trace) {
  MutexLock lock(mu_);
  ++counters_.traces_in;
  std::vector<TimedTrace> out;
  if (window >= config_.outage_start && window < config_.outage_end) {
    ++counters_.dropped;
    return out;
  }
  if (rng_.NextBernoulli(config_.drop_prob)) {
    ++counters_.dropped;
    return out;
  }

  TimedTrace event;
  event.window = window;
  if (trace.size() > 0 && rng_.NextBernoulli(config_.corrupt_prob)) {
    event.trace = Corrupt(trace, rng_);
    ++counters_.corrupted;
  } else if (trace.size() > 1 && rng_.NextBernoulli(config_.truncate_prob)) {
    event.trace = Truncate(trace, rng_);
    ++counters_.truncated;
  } else {
    event.trace = trace;
  }
  if (rng_.NextBernoulli(config_.delay_prob)) {
    event.window = window + 1 + static_cast<size_t>(rng_.NextBelow(2));
    ++counters_.delayed;
  }
  if (rng_.NextBernoulli(config_.duplicate_prob)) {
    out.push_back(event);
    ++counters_.duplicated;
  }
  out.push_back(std::move(event));
  counters_.delivered += out.size();
  return out;
}

bool FaultInjector::ProcessMetric(const MetricKey& key, size_t window, double value) {
  (void)key;
  (void)window;
  (void)value;
  MutexLock lock(mu_);
  ++counters_.metrics_in;
  if (rng_.NextBernoulli(config_.metric_gap_prob)) {
    ++counters_.metric_gaps;
    return false;
  }
  return true;
}

FaultCounters FaultInjector::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

}  // namespace deeprest
