// Deterministic telemetry fault injection for resilience testing.
//
// Sits between a telemetry source (the simulator, a replayed trace log) and
// the serving-side IngestPipeline, mangling the stream the way production
// collectors do: traces get dropped, duplicated, delayed into later windows,
// truncated mid-flight, or corrupted (absurd timestamps, torn span trees),
// and metric scrapes are skipped. Every decision draws from one seeded
// generator, so a chaos run is reproducible bit-for-bit — which is what lets
// the chaos tests assert exact counters and bounded estimation error instead
// of "it didn't crash".
//
// Thread-safety: all methods may be called concurrently (one internal mutex
// around the generator). Determinism holds for a fixed sequence of calls;
// with concurrent producers the interleaving decides which event draws which
// fault, so multi-threaded chaos tests assert rates and invariants, not
// per-event outcomes.
#ifndef SRC_SIM_FAULT_INJECTOR_H_
#define SRC_SIM_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/thread_annotations.h"
#include "src/nn/rng.h"
#include "src/sim/chaos_schedule.h"
#include "src/telemetry/metrics.h"
#include "src/trace/span.h"

namespace deeprest {

struct FaultInjectorConfig {
  uint64_t seed = 1;
  // Per-trace fault probabilities, applied in this order (mutually exclusive
  // per trace except duplication, which re-delivers the possibly-mangled
  // trace a second time).
  double drop_prob = 0.0;      // trace vanishes entirely
  double corrupt_prob = 0.0;   // timestamps / structure mangled -> rejected downstream
  double truncate_prob = 0.0;  // tail spans lost (still well-formed, paths shortened)
  double delay_prob = 0.0;     // attributed to a later window (1-2 windows late)
  double duplicate_prob = 0.0; // delivered twice (at-least-once transport)
  // Per-sample probability that a metric scrape is lost.
  double metric_gap_prob = 0.0;
  // Windows in [outage_start, outage_end) lose their ENTIRE trace stream — a
  // collector outage, the worst case degraded-mode ingestion must absorb.
  size_t outage_start = 0;
  size_t outage_end = 0;
};

struct FaultCounters {
  uint64_t traces_in = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  uint64_t corrupted = 0;
  uint64_t truncated = 0;
  uint64_t delayed = 0;
  uint64_t duplicated = 0;
  uint64_t metrics_in = 0;
  uint64_t metric_gaps = 0;
  // Process faults dealt from a chaos schedule (see chaos_schedule.h).
  uint64_t worker_stalls = 0;   // stalled sweeps
  uint64_t worker_crashes = 0;  // crash events fired
  uint64_t clock_skews = 0;     // skew events entered
  uint64_t alloc_fails = 0;     // failed allocations dealt

  // Accumulates another counter block into this one — for scorecards that
  // aggregate per-schedule or per-shard injectors.
  void Merge(const FaultCounters& other);
  // Zeros every counter.
  void Reset();
};

class FaultInjector {
 public:
  struct TimedTrace {
    size_t window = 0;
    Trace trace;
  };

  explicit FaultInjector(const FaultInjectorConfig& config);
  // With a chaos schedule: stream-fault events act as window-scoped
  // probability floors (effective prob = max(config prob, event magnitude);
  // `outage` events extend the config outage range), and process-fault
  // events are dealt through the Take*/Active queries below.
  FaultInjector(const FaultInjectorConfig& config, ChaosSchedule schedule);

  // Runs one trace through the fault model. Returns 0..2 delivery events
  // (empty = dropped); the caller forwards each to IngestPipeline::IngestTrace
  // under the returned window.
  std::vector<TimedTrace> ProcessTrace(size_t window, const Trace& trace);

  // Runs one metric sample through the fault model. Returns false when the
  // scrape is lost (the caller must not deliver it).
  bool ProcessMetric(const MetricKey& key, size_t window, double value);

  // Process-fault queries, polled by the serving harness. All are
  // deterministic functions of (schedule, window, prior Take calls).
  //
  // True when a worker_crash event targeting `target` covers `window` and
  // has not fired yet — each crash event kills its target exactly once.
  bool TakeCrash(size_t window, int target);
  // True while a worker_stall event targeting `target` covers `window`;
  // *stall_ms receives the stall duration. Counts every stalled sweep.
  bool TakeStall(size_t window, int target, double* stall_ms);
  // Clock-skew to apply at `window` (microseconds; 0 = none). Each skew
  // event is counted once, on its first active query.
  uint64_t ClockSkewUs(size_t window);
  // True while an alloc_fail event covers `window`. Counts every deal.
  bool TakeAllocFail(size_t window);

  const ChaosSchedule& schedule() const { return schedule_; }

  FaultCounters counters() const;

 private:
  Trace Truncate(const Trace& trace, Rng& rng) const;
  Trace Corrupt(const Trace& trace, Rng& rng);
  // max(config probability, active schedule-event magnitude) for `kind`.
  double EffectiveProb(double base, ChaosFaultKind kind, size_t window) const
      DEEPREST_REQUIRES(mu_);
  bool InOutage(size_t window) const DEEPREST_REQUIRES(mu_);

  FaultInjectorConfig config_;
  const ChaosSchedule schedule_;
  mutable Mutex mu_;  // deeprest-lint: lock-level(leaf)
  // One generator for every decision (determinism), one counter block: both
  // only ever touched under mu_.
  Rng rng_ DEEPREST_GUARDED_BY(mu_);
  FaultCounters counters_ DEEPREST_GUARDED_BY(mu_);
  // Per-event one-shot latches, parallel to schedule_.events.
  std::vector<bool> crash_fired_ DEEPREST_GUARDED_BY(mu_);
  std::vector<bool> skew_counted_ DEEPREST_GUARDED_BY(mu_);
};

}  // namespace deeprest

#endif  // SRC_SIM_FAULT_INJECTOR_H_
