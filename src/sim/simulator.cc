#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace deeprest {

Simulator::Simulator(const Application& app, const SimOptions& options)
    : app_(&app), options_(options), rng_(options.seed) {
  assert(app.Validate().empty() && "application template is malformed");
  for (const auto& c : app.components()) {
    ComponentState state;
    state.disk_mb = c.initial_disk_mb;
    state_.emplace(c.name, state);
  }
}

void Simulator::AddAttack(const AttackSpec& attack) { attacks_.push_back(attack); }

double Simulator::Noisy(double value) {
  return value * std::max(0.0, 1.0 + rng_.Gaussian(0.0, options_.noise_frac));
}

void Simulator::ExecuteNode(const OpNode& node, const AttrMap& attrs, SpanIndex parent,
                            Trace& trace, std::map<std::string, WindowAccumulator>& window) {
  if (!node.gate_attr.empty()) {
    auto it = attrs.find(node.gate_attr);
    if (it == attrs.end() || it->second <= 0.5) {
      return;
    }
  }
  if (node.probability < 1.0 && !rng_.NextBernoulli(node.probability)) {
    return;
  }

  const SpanIndex span = trace.AddSpan(node.component, node.operation, parent);
  WindowAccumulator& acc = window[node.component];
  ComponentState& state = state_.at(node.component);
  for (const CostTerm& cost : node.costs) {
    double value = cost.base;
    if (!cost.attr.empty()) {
      auto it = attrs.find(cost.attr);
      const double attr_value = it == attrs.end() ? 0.0 : it->second;
      value *= cost.attr_scale * attr_value;
    }
    if (cost.cacheable) {
      acc.cacheable_reads += 1.0;
      // Warm caches absorb up to 60% of the read cost.
      value *= 1.0 - 0.6 * state.warmth;
    }
    switch (cost.resource) {
      case ResourceKind::kCpu:
        acc.cpu += value;
        break;
      case ResourceKind::kMemory:
        acc.memory += value;
        break;
      case ResourceKind::kWriteIops:
        acc.write_ops += value;
        break;
      case ResourceKind::kWriteThroughput:
        acc.write_kb += value;
        break;
      case ResourceKind::kDiskUsage:
        // Disk growth is driven by write throughput; explicit disk cost terms
        // are applied directly as extra KiB written.
        acc.write_kb += value;
        break;
    }
  }
  for (const OpNode& child : node.children) {
    ExecuteNode(child, attrs, span, trace, window);
  }
}

void Simulator::ApplyAttacks(size_t absolute_window,
                             std::map<std::string, WindowAccumulator>& window) {
  for (const AttackSpec& attack : attacks_) {
    if (absolute_window < attack.start_window || absolute_window >= attack.end_window) {
      continue;
    }
    WindowAccumulator& acc = window[attack.component];
    switch (attack.kind) {
      case AttackSpec::Kind::kRansomware:
        acc.cpu += 30.0 * attack.intensity;
        acc.write_ops += 55.0 * attack.intensity;
        acc.write_kb += 2800.0 * attack.intensity;
        acc.memory += 60.0 * attack.intensity;
        break;
      case AttackSpec::Kind::kCryptojacking:
        acc.cpu += 45.0 * attack.intensity;
        break;
    }
  }
}

void Simulator::FinishWindow(size_t absolute_window,
                             std::map<std::string, WindowAccumulator>& window,
                             MetricsStore* metrics) {
  for (const auto& spec : app_->components()) {
    ComponentState& state = state_.at(spec.name);
    WindowAccumulator acc;  // zero defaults for untouched components
    auto it = window.find(spec.name);
    if (it != window.end()) {
      acc = it->second;
    }

    double cpu;
    if (capacity_model_ != nullptr) {
      // Deployment-aware mode: raw demand (no single-instance amplification
      // — queueing is the capacity model's job) evaluated against the
      // current replica count; the recorded metric is the per-replica
      // utilization a scrape of the scaled deployment shows, saturating at
      // 100 like any real utilization gauge.
      const CapacityOutcome outcome = capacity_model_->Evaluate(
          spec.cpu_baseline + acc.cpu, state.replicas, state.capacity_cpu);
      outcomes_[spec.name][absolute_window] = outcome;
      cpu = std::clamp(Noisy(100.0 * std::min(outcome.utilization, 1.0)), 0.0, 100.0);
    } else {
      // CPU with queueing amplification above the knee.
      double cpu_load = acc.cpu;
      if (cpu_load > spec.queue_knee) {
        const double over = cpu_load - spec.queue_knee;
        cpu_load += spec.queue_gain * over * over;
      }
      cpu = std::clamp(Noisy(spec.cpu_baseline + cpu_load), 0.0, 100.0);
    }

    // Background write churn (journaling/compaction) keeps IO series alive.
    double write_ops = acc.write_ops;
    double write_kb = acc.write_kb;
    if (spec.stateful) {
      write_ops += spec.write_noise_ops * std::max(0.0, 1.0 + rng_.Gaussian(0.0, 0.3));
      write_kb += spec.write_noise_kb * std::max(0.0, 1.0 + rng_.Gaussian(0.0, 0.3));
    }

    // Cache dynamics: warmth follows recent read pressure; the working set
    // saturates toward the configured cache capacity as data gets touched.
    const double read_pressure = acc.cacheable_reads / (acc.cacheable_reads + 50.0);
    state.warmth = 0.85 * state.warmth + 0.15 * read_pressure;
    if (spec.cache_capacity_mb > 0.0) {
      state.cum_access_kb += write_kb + acc.cacheable_reads * 8.0;
      const double scale = spec.cache_capacity_mb * 1024.0 * 4.0;
      state.working_set_mb =
          spec.cache_capacity_mb * (1.0 - std::exp(-state.cum_access_kb / scale));
    }

    const double memory = Noisy(spec.memory_baseline + state.working_set_mb + acc.memory);

    if (metrics != nullptr) {
      metrics->Record({spec.name, ResourceKind::kCpu}, absolute_window, cpu);
      metrics->Record({spec.name, ResourceKind::kMemory}, absolute_window, memory);
      if (spec.stateful) {
        state.disk_mb += write_kb / 1024.0;
        metrics->Record({spec.name, ResourceKind::kWriteIops}, absolute_window,
                        Noisy(write_ops));
        metrics->Record({spec.name, ResourceKind::kWriteThroughput}, absolute_window,
                        Noisy(write_kb));
        metrics->Record({spec.name, ResourceKind::kDiskUsage}, absolute_window,
                        state.disk_mb);
      }
    } else if (spec.stateful) {
      state.disk_mb += write_kb / 1024.0;
    }
  }
}

void Simulator::Run(const TrafficSeries& traffic, size_t offset, TraceCollector* traces,
                    MetricsStore* metrics) {
  for (size_t t = 0; t < traffic.windows(); ++t) {
    const size_t absolute_window = offset + t;
    std::map<std::string, WindowAccumulator> window;
    for (size_t a = 0; a < traffic.api_count(); ++a) {
      const ApiEndpoint* api = app_->FindApi(traffic.apis()[a]);
      assert(api != nullptr && "traffic references unknown API");
      const int request_count = rng_.NextPoisson(traffic.rate(t, a));
      for (int r = 0; r < request_count; ++r) {
        AttrMap attrs;
        for (const auto& [name, sampler] : api->attributes) {
          attrs[name] = sampler(rng_);
        }
        Trace trace(next_trace_id_++, api->name);
        ExecuteNode(api->root, attrs, kNoParent, trace, window);
        if (!trace.empty() && traces != nullptr) {
          traces->Collect(absolute_window, std::move(trace));
        }
      }
    }
    ApplyAttacks(absolute_window, window);
    FinishWindow(absolute_window, window, metrics);
  }
}

void Simulator::SetCapacityModel(std::shared_ptr<const CapacityModel> model,
                                 double default_capacity_cpu) {
  capacity_model_ = std::move(model);
  for (auto& [name, state] : state_) {
    state.capacity_cpu = default_capacity_cpu;
  }
}

void Simulator::SetReplicas(const std::string& component, size_t replicas) {
  auto it = state_.find(component);
  if (it != state_.end()) {
    it->second.replicas = std::max<size_t>(1, replicas);
  }
}

void Simulator::SetReplicaCapacity(const std::string& component, double capacity_cpu) {
  auto it = state_.find(component);
  if (it != state_.end()) {
    it->second.capacity_cpu = std::max(1e-9, capacity_cpu);
  }
}

size_t Simulator::Replicas(const std::string& component) const {
  auto it = state_.find(component);
  return it == state_.end() ? 1 : it->second.replicas;
}

double Simulator::ReplicaCapacity(const std::string& component) const {
  auto it = state_.find(component);
  return it == state_.end() ? 0.0 : it->second.capacity_cpu;
}

const CapacityOutcome* Simulator::OutcomeAt(const std::string& component,
                                            size_t window) const {
  auto comp = outcomes_.find(component);
  if (comp == outcomes_.end()) {
    return nullptr;
  }
  auto it = comp->second.find(window);
  return it == comp->second.end() ? nullptr : &it->second;
}

double Simulator::DiskUsageMb(const std::string& component) const {
  auto it = state_.find(component);
  return it == state_.end() ? 0.0 : it->second.disk_mb;
}

double Simulator::CacheWarmth(const std::string& component) const {
  auto it = state_.find(component);
  return it == state_.end() ? 0.0 : it->second.warmth;
}

}  // namespace deeprest
