// Discrete-time simulation engine.
//
// Samples an Application's API templates against a TrafficSeries, producing
// exactly the two artifacts the paper's telemetry server exposes: distributed
// traces (into a TraceCollector) and windowed resource metrics (into a
// MetricsStore). Also hosts the attack injectors used by the application
// sanity-check experiments (paper section 5.4): attacks consume resources
// WITHOUT emitting traces, which is precisely the signature DeepRest detects.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/rng.h"
#include "src/sim/app.h"
#include "src/sim/capacity.h"
#include "src/telemetry/metrics.h"
#include "src/trace/collector.h"
#include "src/workload/traffic.h"

namespace deeprest {

struct SimOptions {
  uint64_t seed = 1;
  // Multiplicative Gaussian measurement noise on CPU/memory/IO metrics.
  double noise_frac = 0.02;
};

struct AttackSpec {
  enum class Kind {
    // Encrypt-and-rewrite of the stored data: CPU burst plus a large write
    // throughput / IOps surge on the target component.
    kRansomware,
    // Resident miner: sustained CPU theft, nothing else.
    kCryptojacking,
  };
  Kind kind = Kind::kCryptojacking;
  std::string component;
  size_t start_window = 0;
  size_t end_window = 0;  // exclusive
  double intensity = 1.0;
};

class Simulator {
 public:
  Simulator(const Application& app, const SimOptions& options);

  // Registers an attack; windows are absolute (same axis as Run offsets).
  void AddAttack(const AttackSpec& attack);

  // Simulates `traffic`, writing window t of the series to absolute window
  // offset + t. Traces and metrics may be null if not needed.
  void Run(const TrafficSeries& traffic, size_t offset, TraceCollector* traces,
           MetricsStore* metrics);

  // Persistent per-component state, exposed for tests.
  double DiskUsageMb(const std::string& component) const;
  double CacheWarmth(const std::string& component) const;

  // --- Closed-loop capacity hook (src/autoscale) ---
  // Installing a model turns on deployment-aware accounting: FinishWindow
  // evaluates each component's raw demand against the current replica count
  // and per-replica capacity, records a CapacityOutcome, and the CPU metric
  // switches to observed per-replica utilization (percent, saturating at
  // 100) — what a scrape of the scaled deployment shows. The single-instance
  // queueing amplification (queue_knee/queue_gain) is bypassed: queueing
  // becomes the capacity model's job. Without a model, nothing changes.
  // `default_capacity_cpu` seeds every component's per-replica capacity.
  void SetCapacityModel(std::shared_ptr<const CapacityModel> model,
                        double default_capacity_cpu = 100.0);
  // Horizontal / vertical scaling actions; take effect from the next
  // simulated window. Unknown components are ignored.
  void SetReplicas(const std::string& component, size_t replicas);
  void SetReplicaCapacity(const std::string& component, double capacity_cpu);
  size_t Replicas(const std::string& component) const;
  double ReplicaCapacity(const std::string& component) const;
  // Outcome recorded for an absolute window, or nullptr when that window was
  // simulated without a capacity model (or not simulated at all).
  const CapacityOutcome* OutcomeAt(const std::string& component, size_t window) const;

 private:
  struct ComponentState {
    double disk_mb = 0.0;
    double warmth = 0.0;           // cache warmth in [0, 1)
    double cum_access_kb = 0.0;    // total data touched, drives working set
    double working_set_mb = 0.0;
    // Deployment decision the capacity model evaluates demand against.
    size_t replicas = 1;
    double capacity_cpu = 100.0;
  };

  struct WindowAccumulator {
    double cpu = 0.0;
    double memory = 0.0;
    double write_ops = 0.0;
    double write_kb = 0.0;
    double cacheable_reads = 0.0;
  };

  using AttrMap = std::map<std::string, double>;

  void ExecuteNode(const OpNode& node, const AttrMap& attrs, SpanIndex parent, Trace& trace,
                   std::map<std::string, WindowAccumulator>& window);
  void ApplyAttacks(size_t absolute_window, std::map<std::string, WindowAccumulator>& window);
  void FinishWindow(size_t absolute_window, std::map<std::string, WindowAccumulator>& window,
                    MetricsStore* metrics);
  double Noisy(double value);

  const Application* app_;
  SimOptions options_;
  Rng rng_;
  uint64_t next_trace_id_ = 1;
  std::map<std::string, ComponentState> state_;
  std::vector<AttackSpec> attacks_;
  std::shared_ptr<const CapacityModel> capacity_model_;
  std::map<std::string, std::map<size_t, CapacityOutcome>> outcomes_;
};

}  // namespace deeprest

#endif  // SRC_SIM_SIMULATOR_H_
