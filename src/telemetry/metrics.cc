#include "src/telemetry/metrics.h"
#include <algorithm>

#include <sstream>

namespace deeprest {

const std::vector<ResourceKind>& AllResourceKinds() {
  static const std::vector<ResourceKind> kAll = {
      ResourceKind::kCpu, ResourceKind::kMemory, ResourceKind::kWriteIops,
      ResourceKind::kWriteThroughput, ResourceKind::kDiskUsage};
  return kAll;
}

std::string ResourceKindName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu:
      return "cpu";
    case ResourceKind::kMemory:
      return "memory";
    case ResourceKind::kWriteIops:
      return "write_iops";
    case ResourceKind::kWriteThroughput:
      return "write_throughput";
    case ResourceKind::kDiskUsage:
      return "disk_usage";
  }
  return "unknown";
}

bool IsStatefulOnly(ResourceKind kind) {
  return kind == ResourceKind::kWriteIops || kind == ResourceKind::kWriteThroughput ||
         kind == ResourceKind::kDiskUsage;
}

void MetricsStore::Register(const MetricKey& key) { series_.try_emplace(key); }

void MetricsStore::Record(const MetricKey& key, size_t window, double value) {
  auto& series = series_[key];
  if (series.size() <= window) {
    series.resize(window + 1, 0.0);
  }
  series[window] = value;
  window_count_ = std::max(window_count_, window + 1);
}

void MetricsStore::Accumulate(const MetricKey& key, size_t window, double value) {
  auto& series = series_[key];
  if (series.size() <= window) {
    series.resize(window + 1, 0.0);
  }
  series[window] += value;
  window_count_ = std::max(window_count_, window + 1);
}

void MetricsStore::AccumulateFrom(const MetricsStore& other) {
  for (const auto& [key, values] : other.series_) {
    auto& series = series_[key];
    if (series.size() < values.size()) {
      series.resize(values.size(), 0.0);
    }
    for (size_t w = 0; w < values.size(); ++w) {
      series[w] += values[w];
    }
  }
  window_count_ = std::max(window_count_, other.window_count_);
}

bool MetricsStore::Has(const MetricKey& key) const { return series_.count(key) > 0; }

double MetricsStore::At(const MetricKey& key, size_t window) const {
  auto it = series_.find(key);
  if (it == series_.end() || window >= it->second.size()) {
    return 0.0;
  }
  return it->second[window];
}

std::vector<double> MetricsStore::Series(const MetricKey& key, size_t from, size_t to) const {
  std::vector<double> out;
  out.reserve(to > from ? to - from : 0);
  for (size_t w = from; w < to; ++w) {
    out.push_back(At(key, w));
  }
  return out;
}

std::vector<MetricKey> MetricsStore::Keys() const {
  std::vector<MetricKey> keys;
  keys.reserve(series_.size());
  for (const auto& [key, unused] : series_) {
    keys.push_back(key);
  }
  return keys;
}

std::string MetricsStore::ToCsv() const {
  std::ostringstream os;
  os << "window";
  for (const auto& [key, unused] : series_) {
    os << "," << key.ToString();
  }
  os << "\n";
  for (size_t w = 0; w < window_count_; ++w) {
    os << w;
    for (const auto& [key, series] : series_) {
      os << "," << (w < series.size() ? series[w] : 0.0);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace deeprest
