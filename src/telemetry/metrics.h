// Resource-metric primitives (Prometheus/cAdvisor stand-in).
//
// The paper's prototype tracks CPU and memory on every component, plus write
// IOps, write throughput, and disk usage on stateful components, averaged
// over a fixed scrape window. MetricsStore holds exactly that: one series of
// per-window values for each (component, resource) pair.
#ifndef SRC_TELEMETRY_METRICS_H_
#define SRC_TELEMETRY_METRICS_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace deeprest {

enum class ResourceKind {
  kCpu,              // utilization, percent of one core-equivalent
  kMemory,           // resident set, MiB
  kWriteIops,        // write operations per second
  kWriteThroughput,  // bytes written per second, KiB/s
  kDiskUsage,        // cumulative volume usage, MiB
};

// All kinds in a stable order (rows of the paper's Fig. 12 heatmap).
const std::vector<ResourceKind>& AllResourceKinds();

// Short human-readable name ("cpu", "memory", ...).
std::string ResourceKindName(ResourceKind kind);

// True for the resources that only exist on stateful components.
bool IsStatefulOnly(ResourceKind kind);

struct MetricKey {
  std::string component;
  ResourceKind resource;

  bool operator<(const MetricKey& other) const {
    if (component != other.component) {
      return component < other.component;
    }
    return resource < other.resource;
  }
  bool operator==(const MetricKey& other) const {
    return component == other.component && resource == other.resource;
  }
  std::string ToString() const { return component + "/" + ResourceKindName(resource); }
};

class MetricsStore {
 public:
  // Registers a series; recording to an unregistered key auto-registers it.
  void Register(const MetricKey& key);

  // Appends/overwrites the value for `key` at time window `window`.
  // Series are padded with zeros for skipped windows.
  void Record(const MetricKey& key, size_t window, double value);

  // Adds `value` on top of whatever is already recorded at `window`.
  void Accumulate(const MetricKey& key, size_t window, double value);

  // Adds every sample of `other` on top of this store's series (union of
  // keys, per-window sum). The fold step of the sharded ingest pipeline
  // (src/serve): samples are partitioned by key across shard-local stores,
  // so accumulating the shards reconstructs the global store exactly.
  void AccumulateFrom(const MetricsStore& other);

  bool Has(const MetricKey& key) const;
  // Value at a window (0.0 when beyond the recorded range).
  double At(const MetricKey& key, size_t window) const;
  // Copy of the series clipped to [from, to).
  std::vector<double> Series(const MetricKey& key, size_t from, size_t to) const;

  // All registered keys in deterministic (sorted) order.
  std::vector<MetricKey> Keys() const;
  size_t window_count() const { return window_count_; }

  // Writes all series as CSV (window, key columns) for offline inspection.
  std::string ToCsv() const;

 private:
  std::map<MetricKey, std::vector<double>> series_;
  size_t window_count_ = 0;
};

}  // namespace deeprest

#endif  // SRC_TELEMETRY_METRICS_H_
