#include "src/trace/collector.h"

namespace deeprest {

void TraceCollector::Collect(size_t window, Trace trace) {
  if (window >= windows_.size()) {
    windows_.resize(window + 1);
  }
  windows_[window].push_back(std::move(trace));
  ++total_;
}

const std::vector<Trace>& TraceCollector::TracesAt(size_t window) const {
  if (window >= windows_.size()) {
    return empty_;
  }
  return windows_[window];
}

std::vector<const Trace*> TraceCollector::Range(size_t from, size_t to) const {
  std::vector<const Trace*> out;
  for (size_t w = from; w < to && w < windows_.size(); ++w) {
    for (const Trace& t : windows_[w]) {
      out.push_back(&t);
    }
  }
  return out;
}

void TraceCollector::Clear() {
  windows_.clear();
  total_ = 0;
}

}  // namespace deeprest
