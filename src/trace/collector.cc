#include "src/trace/collector.h"

namespace deeprest {

void TraceCollector::Collect(size_t window, Trace trace) {
  if (window >= windows_.size()) {
    windows_.resize(window + 1);
  }
  windows_[window].push_back(std::move(trace));
  ++total_;
}

const std::vector<Trace>& TraceCollector::TracesAt(size_t window) const {
  if (window >= windows_.size()) {
    return empty_;
  }
  return windows_[window];
}

std::vector<const Trace*> TraceCollector::Range(size_t from, size_t to) const {
  std::vector<const Trace*> out;
  for (size_t w = from; w < to && w < windows_.size(); ++w) {
    for (const Trace& t : windows_[w]) {
      out.push_back(&t);
    }
  }
  return out;
}

void TraceCollector::MergeFrom(TraceCollector&& other) {
  if (other.windows_.size() > windows_.size()) {
    windows_.resize(other.windows_.size());
  }
  for (size_t w = 0; w < other.windows_.size(); ++w) {
    auto& src = other.windows_[w];
    if (src.empty()) {
      continue;
    }
    auto& dst = windows_[w];
    dst.reserve(dst.size() + src.size());
    for (Trace& t : src) {
      dst.push_back(std::move(t));
    }
  }
  total_ += other.total_;
  other.Clear();
}

TraceCollector TraceCollector::CopyRange(size_t from, size_t to) const {
  TraceCollector out;
  for (size_t w = from; w < to && w < windows_.size(); ++w) {
    for (const Trace& t : windows_[w]) {
      out.Collect(w, t);
    }
  }
  return out;
}

void TraceCollector::Clear() {
  windows_.clear();
  total_ = 0;
}

}  // namespace deeprest
