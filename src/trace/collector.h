// Windowed trace storage: the telemetry-server role of Jaeger in the paper's
// deployment. Traces are partitioned by the same fixed time windows as
// resource metrics (paper section 4.1) so that feature vectors and
// utilization samples line up one-to-one.
#ifndef SRC_TRACE_COLLECTOR_H_
#define SRC_TRACE_COLLECTOR_H_

#include <cstddef>
#include <vector>

#include "src/trace/span.h"

namespace deeprest {

class TraceCollector {
 public:
  // Stores a completed trace under the given time-window index. Windows may
  // arrive out of order; storage grows to fit.
  void Collect(size_t window, Trace trace);

  // Number of windows spanned (highest window index + 1).
  size_t window_count() const { return windows_.size(); }

  // All traces captured in one window. Empty vector for windows beyond range.
  const std::vector<Trace>& TracesAt(size_t window) const;

  // Total trace count across all windows.
  size_t total_traces() const { return total_; }

  // Concatenated view over [from, to) used by the learning phase.
  std::vector<const Trace*> Range(size_t from, size_t to) const;

  // Moves every trace of `other` into this collector, keeping window
  // alignment; `other` is left empty. This is the fold step of the sharded
  // ingest pipeline (src/serve): producer threads batch traces into
  // shard-local collectors and a single folder merges them in.
  void MergeFrom(TraceCollector&& other);

  // Ranged copy of [from, to) at the same absolute window indices (earlier
  // windows stay empty). Used to hand a stable telemetry slice to a
  // background learner without holding ingest locks during training.
  TraceCollector CopyRange(size_t from, size_t to) const;

  void Clear();

 private:
  std::vector<std::vector<Trace>> windows_;
  std::vector<Trace> empty_;
  size_t total_ = 0;
};

}  // namespace deeprest

#endif  // SRC_TRACE_COLLECTOR_H_
