#include "src/trace/json_export.h"

#include <cctype>
#include <sstream>

namespace deeprest {

namespace {

void AppendEscaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

// Minimal recursive-descent JSON scanner, sufficient for the shapes this
// module emits (objects, arrays, strings, unsigned integers).
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(char expected) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char expected) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == expected;
  }

  bool ReadString(std::string& out) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          default:
            c = esc;
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool ReadUint(uint64_t& out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    // Accept -1 as the no-parent sentinel.
    bool negative = false;
    if (text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return false;
    }
    uint64_t value = 0;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + static_cast<uint64_t>(text_[pos_++] - '0');
    }
    out = negative ? UINT64_MAX : value;
    return true;
  }

  // Reads a key and the following ':'.
  bool ReadKey(const std::string& expected) {
    std::string key;
    return ReadString(key) && key == expected && Consume(':');
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool ParseTraceObject(JsonScanner& scanner, Trace& out, uint64_t* window) {
  if (!scanner.Consume('{')) {
    return false;
  }
  uint64_t trace_id = 0;
  std::string api;
  if (window != nullptr) {
    if (!scanner.ReadKey("window") || !scanner.ReadUint(*window) || !scanner.Consume(',')) {
      return false;
    }
  }
  if (!scanner.ReadKey("traceID") || !scanner.ReadUint(trace_id) || !scanner.Consume(',') ||
      !scanner.ReadKey("api") || !scanner.ReadString(api) || !scanner.Consume(',') ||
      !scanner.ReadKey("spans") || !scanner.Consume('[')) {
    return false;
  }
  out = Trace(trace_id, api);
  bool first = true;
  while (!scanner.Peek(']')) {
    if (!first && !scanner.Consume(',')) {
      return false;
    }
    first = false;
    std::string component;
    std::string operation;
    uint64_t parent = 0;
    if (!scanner.Consume('{') || !scanner.ReadKey("component") ||
        !scanner.ReadString(component) || !scanner.Consume(',') ||
        !scanner.ReadKey("operation") || !scanner.ReadString(operation) ||
        !scanner.Consume(',') || !scanner.ReadKey("parent") || !scanner.ReadUint(parent) ||
        !scanner.Consume('}')) {
      return false;
    }
    const SpanIndex parent_index =
        parent == UINT64_MAX ? kNoParent : static_cast<SpanIndex>(parent);
    // AddSpan asserts parent validity in debug; validate here for release.
    if (parent_index != kNoParent && parent_index >= out.size()) {
      return false;
    }
    if (parent_index == kNoParent && !out.empty()) {
      return false;
    }
    out.AddSpan(component, operation, parent_index);
  }
  return scanner.Consume(']') && scanner.Consume('}');
}

}  // namespace

std::string TraceToJson(const Trace& trace) {
  std::ostringstream os;
  os << "{\"traceID\":" << trace.trace_id() << ",\"api\":";
  AppendEscaped(os, trace.api_name());
  os << ",\"spans\":[";
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    const Span& span = trace.spans()[i];
    os << "{\"component\":";
    AppendEscaped(os, span.component);
    os << ",\"operation\":";
    AppendEscaped(os, span.operation);
    os << ",\"parent\":";
    if (span.parent == kNoParent) {
      os << -1;
    } else {
      os << span.parent;
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::string CollectorToJson(const TraceCollector& collector, size_t from, size_t to) {
  std::ostringstream os;
  os << '[';
  bool first = true;
  for (size_t w = from; w < to; ++w) {
    for (const Trace& trace : collector.TracesAt(w)) {
      if (!first) {
        os << ',';
      }
      first = false;
      const std::string body = TraceToJson(trace);
      // Prefix with the window index: {"window":W, <rest of object>.
      os << "{\"window\":" << w << ',' << body.substr(1);
    }
  }
  os << ']';
  return os.str();
}

bool TraceFromJson(const std::string& json, Trace& out) {
  JsonScanner scanner(json);
  return ParseTraceObject(scanner, out, nullptr) && scanner.AtEnd();
}

bool CollectorFromJson(const std::string& json, TraceCollector& out) {
  JsonScanner scanner(json);
  if (!scanner.Consume('[')) {
    return false;
  }
  bool first = true;
  while (!scanner.Peek(']')) {
    if (!first && !scanner.Consume(',')) {
      return false;
    }
    first = false;
    Trace trace;
    uint64_t window = 0;
    if (!ParseTraceObject(scanner, trace, &window)) {
      return false;
    }
    out.Collect(window, std::move(trace));
  }
  return scanner.Consume(']') && scanner.AtEnd();
}

}  // namespace deeprest
