// Jaeger-style JSON import/export for traces.
//
// Real deployments would feed DeepRest from a Jaeger query API; this module
// provides the interchange surface: traces serialize to a compact JSON form
// ({"traceID", "api", "spans": [{"component", "operation", "parent"}]}) and
// parse back, so telemetry captured elsewhere can be replayed through the
// estimator and simulated telemetry can be inspected with standard tools.
#ifndef SRC_TRACE_JSON_EXPORT_H_
#define SRC_TRACE_JSON_EXPORT_H_

#include <string>
#include <vector>

#include "src/trace/collector.h"
#include "src/trace/span.h"

namespace deeprest {

// Serializes one trace as a single-line JSON object.
std::string TraceToJson(const Trace& trace);

// Serializes a window range of the collector as a JSON array, one trace per
// element, annotated with its window index.
std::string CollectorToJson(const TraceCollector& collector, size_t from, size_t to);

// Parses a trace produced by TraceToJson. Returns false on malformed input;
// `out` is left in an unspecified state on failure.
bool TraceFromJson(const std::string& json, Trace& out);

// Parses CollectorToJson output back into a collector (appending).
bool CollectorFromJson(const std::string& json, TraceCollector& out);

}  // namespace deeprest

#endif  // SRC_TRACE_JSON_EXPORT_H_
