#include "src/trace/span.h"

#include <cassert>

namespace deeprest {

SpanIndex Trace::AddSpan(const std::string& component, const std::string& operation,
                         SpanIndex parent) {
  assert((parent == kNoParent && spans_.empty()) ||
         (parent != kNoParent && parent < spans_.size()));
  Span span;
  span.component = component;
  span.operation = operation;
  span.parent = parent;
  spans_.push_back(std::move(span));
  return static_cast<SpanIndex>(spans_.size() - 1);
}

std::vector<SpanIndex> Trace::ChildrenOf(SpanIndex i) const {
  std::vector<SpanIndex> children;
  for (SpanIndex s = 0; s < spans_.size(); ++s) {
    if (spans_[s].parent == i) {
      children.push_back(s);
    }
  }
  return children;
}

uint64_t HashName(const std::string& name) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace deeprest
